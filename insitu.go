package tess

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/nbody"
)

// InSituConfig describes a coupled simulation + analysis run: the N-body
// configuration, the tessellation configuration, how many steps to run, and
// how often to tessellate — the in situ cosmology-tools pattern of the
// paper's Figure 4 (analysis invoked at selected time steps, results saved
// to storage for postprocessing).
type InSituConfig struct {
	// Sim configures the particle-mesh N-body run (the HACC stand-in).
	Sim nbody.Config
	// Tess configures each tessellation pass. Its Domain must match the
	// simulation box; RunInSitu enforces this.
	Tess Config
	// Steps is the total number of simulation time steps.
	Steps int
	// Every invokes the tessellation after every Every-th step (and always
	// after the final step). Every <= 0 tessellates only at the end.
	Every int
	// Blocks is the number of parallel blocks (ranks).
	Blocks int
	// OutputDir, when non-empty, writes each snapshot's tessellation to
	// OutputDir/tess-step-NNNN.out.
	OutputDir string
}

// Snapshot is the result of one in situ analysis invocation.
type Snapshot struct {
	// Step is the simulation step after which the analysis ran.
	Step int
	// Output is the tessellation result for this step.
	Output *Output
	// SimTime is the simulation wall time since the previous snapshot.
	SimTime time.Duration
	// TessTime is this snapshot's tessellation wall time.
	TessTime time.Duration
}

// RunInSitu runs the simulation with the tessellation embedded at selected
// time steps. hook, when non-nil, is invoked after each snapshot (the
// run-time analysis attachment point). It returns all snapshots in step
// order.
func RunInSitu(cfg InSituConfig, hook func(Snapshot)) ([]Snapshot, error) {
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("tess: non-positive step count %d", cfg.Steps)
	}
	if cfg.Blocks <= 0 {
		return nil, fmt.Errorf("tess: non-positive block count %d", cfg.Blocks)
	}
	if cfg.Tess.Domain.Size() != (Vec3{X: cfg.Sim.BoxSize, Y: cfg.Sim.BoxSize, Z: cfg.Sim.BoxSize}) {
		return nil, fmt.Errorf("tess: tessellation domain %v does not match simulation box %g",
			cfg.Tess.Domain.Size(), cfg.Sim.BoxSize)
	}
	if cfg.OutputDir != "" {
		if err := os.MkdirAll(cfg.OutputDir, 0o755); err != nil {
			return nil, err
		}
	}
	sim, err := nbody.New(cfg.Sim)
	if err != nil {
		return nil, err
	}

	var snaps []Snapshot
	simStart := time.Now()
	var runErr error
	analyze := func(s *nbody.Simulation) {
		if runErr != nil {
			return
		}
		simTime := time.Since(simStart)
		tcfg := cfg.Tess
		if cfg.OutputDir != "" {
			tcfg.OutputPath = filepath.Join(cfg.OutputDir, fmt.Sprintf("tess-step-%04d.out", s.Step))
		}
		t0 := time.Now()
		out, err := Tessellate(tcfg, ParticlesFromSim(s), cfg.Blocks)
		if err != nil {
			runErr = fmt.Errorf("tess: step %d: %w", s.Step, err)
			return
		}
		snap := Snapshot{Step: s.Step, Output: out, SimTime: simTime, TessTime: time.Since(t0)}
		snaps = append(snaps, snap)
		if hook != nil {
			hook(snap)
		}
		simStart = time.Now()
	}

	sim.Run(cfg.Steps, func(s *nbody.Simulation) {
		if runErr != nil {
			return
		}
		atInterval := cfg.Every > 0 && s.Step%cfg.Every == 0
		last := s.Step == cfg.Steps
		if atInterval || (last && (cfg.Every <= 0 || cfg.Steps%cfg.Every != 0)) {
			analyze(s)
		}
	})
	if runErr != nil {
		return nil, runErr
	}
	return snaps, nil
}

package tess

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/geom"
	"repro/internal/nbody"
)

// InSituConfig describes a coupled simulation + analysis run: the N-body
// configuration, the tessellation configuration, how many steps to run, and
// how often to tessellate — the in situ cosmology-tools pattern of the
// paper's Figure 4 (analysis invoked at selected time steps, results saved
// to storage for postprocessing).
type InSituConfig struct {
	// Sim configures the particle-mesh N-body run (the HACC stand-in).
	Sim nbody.Config
	// Tess configures each tessellation pass. Its Domain must match the
	// simulation box; RunInSitu enforces this.
	Tess Config
	// Steps is the total number of simulation time steps.
	Steps int
	// Every invokes the tessellation after every Every-th step (and always
	// after the final step). Every <= 0 tessellates only at the end.
	Every int
	// Blocks is the number of parallel blocks (ranks).
	Blocks int
	// OutputDir, when non-empty, writes each snapshot's tessellation to
	// OutputDir/tess-step-NNNN.out.
	OutputDir string
}

// Snapshot is the result of one in situ analysis invocation.
type Snapshot struct {
	// Step is the simulation step after which the analysis ran.
	Step int
	// Output is the tessellation result for this step. It is a deep copy
	// owned by the snapshot (safe to keep across later steps).
	Output *Output
	// SimTime is the simulation wall time since the previous snapshot.
	SimTime time.Duration
	// TessTime is this snapshot's tessellation wall time.
	TessTime time.Duration
}

// RunInSitu runs the simulation with the tessellation embedded at selected
// time steps, through one persistent Session whose world, decomposition,
// and buffers are reused by every selected step. hook, when non-nil, is
// invoked after each snapshot (the run-time analysis attachment point); a
// non-nil hook error aborts the run cleanly — the session is closed, the
// simulation stops at that step, and the error is returned wrapped with
// the step it occurred at. It returns all snapshots in step order.
func RunInSitu(cfg InSituConfig, hook func(Snapshot) error) ([]Snapshot, error) {
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("tess: non-positive step count %d", cfg.Steps)
	}
	if cfg.Blocks <= 0 {
		return nil, fmt.Errorf("tess: non-positive block count %d", cfg.Blocks)
	}
	simBox := geom.NewBox(geom.V(0, 0, 0), geom.V(cfg.Sim.BoxSize, cfg.Sim.BoxSize, cfg.Sim.BoxSize))
	if cfg.Tess.Domain != simBox {
		return nil, fmt.Errorf("tess: tessellation domain %+v does not match simulation box %+v",
			cfg.Tess.Domain, simBox)
	}
	if cfg.OutputDir != "" {
		if err := os.MkdirAll(cfg.OutputDir, 0o755); err != nil {
			return nil, err
		}
	}
	sim, err := nbody.New(cfg.Sim)
	if err != nil {
		return nil, err
	}
	sess, err := Open(cfg.Tess, cfg.Blocks)
	if err != nil {
		return nil, err
	}
	defer sess.Close()

	var snaps []Snapshot
	simStart := time.Now()
	var runErr error
	analyze := func(s *nbody.Simulation) {
		if runErr != nil {
			return
		}
		simTime := time.Since(simStart)
		outputPath := cfg.Tess.OutputPath
		if cfg.OutputDir != "" {
			outputPath = filepath.Join(cfg.OutputDir, fmt.Sprintf("tess-step-%04d.out", s.Step))
		}
		t0 := time.Now()
		out, err := sess.Step(ParticlesFromSim(s), WithOutputPath(outputPath))
		if err != nil {
			runErr = fmt.Errorf("tess: step %d: %w", s.Step, err)
			return
		}
		// Snapshots outlive the session's per-step output loan; clone.
		snap := Snapshot{Step: s.Step, Output: out.Clone(), SimTime: simTime, TessTime: time.Since(t0)}
		snaps = append(snaps, snap)
		if hook != nil {
			if err := hook(snap); err != nil {
				runErr = fmt.Errorf("tess: step %d: hook: %w", s.Step, err)
				return
			}
		}
		simStart = time.Now()
	}

	sim.Run(cfg.Steps, func(s *nbody.Simulation) {
		if runErr != nil {
			return
		}
		atInterval := cfg.Every > 0 && s.Step%cfg.Every == 0
		last := s.Step == cfg.Steps
		if atInterval || (last && (cfg.Every <= 0 || cfg.Steps%cfg.Every != 0)) {
			analyze(s)
		}
	})
	if runErr != nil {
		return nil, runErr
	}
	return snaps, nil
}

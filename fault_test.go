package tess

import (
	"errors"
	"testing"
	"time"
)

// The public contract of the failure model: an injected rank crash at any
// pipeline step comes back from tess.Run as an error carrying a
// *RankError (and the ErrWorldAborted sentinel) — the host simulation's
// process survives, for both a small and a larger decomposition.
func TestRunContainsInjectedCrash(t *testing.T) {
	ps := testParticles(50, 8, 10)
	for _, blocks := range []int{2, 8} {
		for step := 1; step <= 4; step++ {
			cfg := NewPeriodicConfig(10)
			cfg.GhostSize = 3
			cfg.StallTimeout = 2 * time.Second
			cfg.Faults = &FaultPlan{Seed: 11, CrashRank: 0, CrashStep: step}
			_, err := Run(cfg, ps, blocks)
			if err == nil {
				t.Fatalf("blocks=%d step=%d: no error from crashed run", blocks, step)
			}
			var re *RankError
			if !errors.As(err, &re) || re.Rank != 0 {
				t.Fatalf("blocks=%d step=%d: err %v, want *RankError for rank 0", blocks, step, err)
			}
			var crash *FaultCrash
			if !errors.As(err, &crash) || crash.Step != step {
				t.Fatalf("blocks=%d step=%d: err %v lacks the injected crash", blocks, step, err)
			}
			if !errors.Is(err, ErrWorldAborted) {
				t.Errorf("blocks=%d step=%d: err %v does not match ErrWorldAborted", blocks, step, err)
			}
		}
	}
}

// A fault-free config (Faults nil) and an inert plan behave identically:
// Run and Tessellate agree cell for cell.
func TestRunMatchesTessellate(t *testing.T) {
	ps := testParticles(51, 6, 10)
	cfg := NewPeriodicConfig(10)
	cfg.GhostSize = 3
	a, err := Tessellate(cfg, ps, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = &FaultPlan{Seed: 1} // present but injecting nothing
	cfg.StallTimeout = time.Second
	b, err := Run(cfg, ps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts != b.Counts {
		t.Fatalf("counts diverge: %+v vs %+v", a.Counts, b.Counts)
	}
	rep := CompareAccuracy(a.Summaries(), b.Summaries(), 0)
	if rep.Accuracy != 1 {
		t.Fatalf("accuracy %v, want 1", rep.Accuracy)
	}
}

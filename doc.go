// Package tess is a parallel 3D Voronoi tessellation library for analyzing
// particle data in situ with cosmological N-body simulations — a
// from-scratch Go reproduction of Peterka et al., "Meshing the Universe:
// Integrating Analysis in Cosmological Simulations" (SC 2012).
//
// The library computes the Voronoi tessellation of a periodic (or bounded)
// particle set across many blocks in parallel: each block exchanges a ghost
// region of particles with its 26-connected neighborhood (with periodic
// boundary transforms), computes the Voronoi cells of its own particles
// locally, deletes cells that cannot be proven correct, culls cells outside
// a volume threshold (with a cheap conservative pre-pass), derives cell
// geometry through a Quickhull pass, and writes all blocks collectively to
// a single file.
//
// # Modes
//
// Standalone mode tessellates an in-memory particle set in one call:
//
//	cfg := tess.NewPeriodicConfig(64) // 64^3 box, ghost size auto
//	out, err := tess.Run(cfg, particles, 8)
//
// Repeated passes over the same domain (the in situ loop) keep a
// persistent Session open instead, so the world, decomposition, and all
// per-rank buffers are set up once and reused — byte-identical output, a
// fraction of the per-step cost:
//
//	sess, err := tess.Open(cfg, 8)
//	defer sess.Close()
//	for step := range steps {
//		out, err := sess.Step(particlesAt(step)) // loaned until the next Step
//		...
//	}
//
// In situ mode runs the tessellation at selected time steps of the built-in
// particle-mesh N-body simulation (the HACC stand-in), through one such
// session; the hook may return an error to abort the run cleanly:
//
//	res, err := tess.RunInSitu(tess.InSituConfig{
//		Sim:    nbody.DefaultConfig(32),
//		Tess:   tess.NewPeriodicConfig(32),
//		Steps:  100,
//		Every:  10,
//		Blocks: 8,
//	}, nil)
//
// # Parallelism
//
// Work is parallel on two levels: blocks run as concurrent ranks (the
// paper's MPI processes), and within each rank the cell-compute phase fans
// out over Config.Workers goroutines with per-worker reusable scratch
// buffers, so the clipping kernels allocate almost nothing in steady
// state. Workers defaults to GOMAXPROCS divided among the concurrent
// ranks. Results are bit-identical for every worker count: cells are
// gathered in site order and no cell's arithmetic depends on the fan-out.
//
// # Postprocessing
//
// Output files are read back with ReadTessFile; FindVoids applies a volume
// threshold and connected-component labeling to identify cosmological
// voids, and each component carries its Minkowski functionals (volume,
// surface area, integrated mean curvature, Euler characteristic) and
// shapefinders (thickness, breadth, length).
//
// The substrates live in internal/ packages: geom (geometry kernel), qhull
// (Quickhull convex hulls), voronoi (cell clipping), delaunay
// (tetrahedralization), dtfe (density estimation), fft/cosmo/nbody (the
// simulation), comm/diy (message passing and block parallelism), meshio
// (data model and storage), voids (void analysis), and stats (histograms
// and moments).
package tess

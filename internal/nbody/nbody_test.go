package nbody

import (
	"math"
	"testing"

	"repro/internal/cosmo"
	"repro/internal/geom"
)

func TestNewValidation(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Ng = 7
	if _, err := New(cfg); err == nil {
		t.Error("non-pow2 Ng accepted")
	}
	cfg = DefaultConfig(8)
	cfg.BoxSize = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero box accepted")
	}
	cfg = DefaultConfig(8)
	cfg.Dt = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative dt accepted")
	}
}

func TestNewFromParticlesWrapsAndCopies(t *testing.T) {
	cfg := DefaultConfig(8)
	pos := []geom.Vec3{geom.V(9, -1, 3)}
	s, err := NewFromParticles(cfg, pos, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Pos[0] != geom.V(1, 7, 3) {
		t.Errorf("position not wrapped: %v", s.Pos[0])
	}
	pos[0] = geom.V(0, 0, 0)
	if s.Pos[0] == geom.V(0, 0, 0) {
		t.Error("simulation aliased caller's slice")
	}
	if _, err := NewFromParticles(cfg, make([]geom.Vec3, 3), make([]geom.Vec3, 2)); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestDepositCICConservation(t *testing.T) {
	cfg := DefaultConfig(8)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := s.DepositCIC()
	// Density contrast must average to zero (mass conservation).
	var sum float64
	for _, v := range g.Data {
		sum += real(v)
		if math.Abs(imag(v)) > 1e-12 {
			t.Fatal("imaginary density")
		}
	}
	if math.Abs(sum/float64(len(g.Data))) > 1e-10 {
		t.Errorf("mean delta = %v, want 0", sum/float64(len(g.Data)))
	}
}

func TestUniformLatticeHasNoForce(t *testing.T) {
	// Particles exactly on the lattice give delta == 0 everywhere, so all
	// accelerations vanish.
	cfg := DefaultConfig(8)
	pos := cosmo.LatticePositions(cfg.Ng, cfg.BoxSize)
	s, err := NewFromParticles(cfg, pos, nil)
	if err != nil {
		t.Fatal(err)
	}
	acc := s.Accelerations()
	for i, a := range acc {
		if a.Norm() > 1e-8 {
			t.Fatalf("lattice particle %d has acceleration %v", i, a)
		}
	}
}

func TestPairAttraction(t *testing.T) {
	// Two overdense particles embedded in a mean background should
	// accelerate toward each other along their separation axis.
	cfg := DefaultConfig(16)
	cfg.G = 10
	pos := cosmo.LatticePositions(cfg.Ng, cfg.BoxSize)
	// Add two extra particles separated along x, away from lattice sites.
	a := geom.V(6.2, 8.1, 8.1)
	b := geom.V(10.3, 8.1, 8.1)
	pos = append(pos, a, b)
	s, err := NewFromParticles(cfg, pos, nil)
	if err != nil {
		t.Fatal(err)
	}
	acc := s.Accelerations()
	fa := acc[len(acc)-2]
	fb := acc[len(acc)-1]
	if fa.X <= 0 {
		t.Errorf("particle a should accelerate toward +x, got %v", fa)
	}
	if fb.X >= 0 {
		t.Errorf("particle b should accelerate toward -x, got %v", fb)
	}
	// Transverse components are small compared to the axial pull.
	if math.Abs(fa.Y) > 0.5*math.Abs(fa.X) || math.Abs(fa.Z) > 0.5*math.Abs(fa.X) {
		t.Errorf("force not along separation: %v", fa)
	}
}

func TestMomentumConservation(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Cosmo.Seed = 21
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p0 := s.Momentum()
	for i := 0; i < 5; i++ {
		s.StepOnce()
	}
	p1 := s.Momentum()
	// PM forces are internal; total momentum drift should be tiny relative
	// to the total |velocity| scale.
	var scale float64
	for _, v := range s.Vel {
		scale += v.Norm()
	}
	if p1.Sub(p0).Norm() > 1e-6*math.Max(scale, 1) {
		t.Errorf("momentum drifted: %v -> %v", p0, p1)
	}
}

func TestStepAdvancesAndStaysInBox(t *testing.T) {
	cfg := DefaultConfig(8)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(3, nil)
	if s.Step != 3 {
		t.Errorf("Step = %d, want 3", s.Step)
	}
	for _, p := range s.Pos {
		if p.X < 0 || p.X >= cfg.BoxSize || p.Y < 0 || p.Y >= cfg.BoxSize || p.Z < 0 || p.Z >= cfg.BoxSize {
			t.Fatalf("particle escaped box: %v", p)
		}
		if !p.IsFinite() {
			t.Fatal("non-finite position")
		}
	}
}

func TestRunHook(t *testing.T) {
	cfg := DefaultConfig(8)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var steps []int
	s.Run(4, func(sim *Simulation) { steps = append(steps, sim.Step) })
	if len(steps) != 4 || steps[0] != 1 || steps[3] != 4 {
		t.Errorf("hook steps = %v", steps)
	}
}

func TestClusteringGrows(t *testing.T) {
	// Gravity should amplify density fluctuations over time.
	cfg := DefaultConfig(16)
	cfg.Cosmo.Seed = 22
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := s.ClusteringAmplitude()
	s.Run(30, nil)
	after := s.ClusteringAmplitude()
	if after <= before {
		t.Errorf("clustering did not grow: %v -> %v", before, after)
	}
	if after > 100 {
		t.Errorf("clustering blew up: %v", after)
	}
}

func TestCICWeightsPartitionOfUnity(t *testing.T) {
	for _, x := range []float64{0, 0.1, 0.499, 0.5, 0.51, 3.7, 7.99} {
		i0, i1, w0, w1 := cicWeights(x, 1, 8)
		if math.Abs(w0+w1-1) > 1e-12 {
			t.Errorf("weights at %v don't sum to 1: %v + %v", x, w0, w1)
		}
		if w0 < 0 || w1 < 0 {
			t.Errorf("negative weight at %v: %v, %v", x, w0, w1)
		}
		if i0 < 0 || i0 > 7 || i1 < 0 || i1 > 7 {
			t.Errorf("index out of range at %v: %d, %d", x, i0, i1)
		}
	}
}

func TestCICWeightsCellCenterIsDelta(t *testing.T) {
	// A particle exactly at a cell center deposits all its mass in that
	// cell.
	i0, _, w0, w1 := cicWeights(2.5, 1, 8)
	if i0 != 2 || math.Abs(w0-1) > 1e-12 || math.Abs(w1) > 1e-12 {
		t.Errorf("center weights: i0=%d w0=%v w1=%v", i0, w0, w1)
	}
}

func BenchmarkStep16(b *testing.B) {
	cfg := DefaultConfig(16)
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.StepOnce()
	}
}

func TestPowerSpectrumGrowsUnderGravity(t *testing.T) {
	// Integration across substrates: evolving the PM simulation amplifies
	// the large-scale matter power spectrum (linear growth).
	cfg := DefaultConfig(16)
	cfg.Cosmo.Seed = 134
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before, err := cosmo.PowerSpectrum(s.Pos, cfg.Ng, cfg.BoxSize, 5)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(40, nil)
	after, err := cosmo.PowerSpectrum(s.Pos, cfg.Ng, cfg.BoxSize, 5)
	if err != nil {
		t.Fatal(err)
	}
	if after[0].P <= before[0].P {
		t.Errorf("low-k power did not grow: %.4f -> %.4f", before[0].P, after[0].P)
	}
}

func TestPotentialEnergy(t *testing.T) {
	// A uniform lattice has zero fluctuation potential.
	cfg := DefaultConfig(8)
	lattice, err := NewFromParticles(cfg, cosmo.LatticePositions(cfg.Ng, cfg.BoxSize), nil)
	if err != nil {
		t.Fatal(err)
	}
	if u := lattice.PotentialEnergy(); math.Abs(u) > 1e-8 {
		t.Errorf("lattice potential = %v, want ~0", u)
	}
	// A clustered state is gravitationally bound: U < 0, and collapsing
	// further makes it more negative.
	cfg.Cosmo.Seed = 138
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u0 := s.PotentialEnergy()
	if u0 >= 0 {
		t.Errorf("perturbed IC potential = %v, want negative", u0)
	}
	s.Run(30, nil)
	u1 := s.PotentialEnergy()
	if u1 >= u0 {
		t.Errorf("potential did not deepen under collapse: %v -> %v", u0, u1)
	}
}

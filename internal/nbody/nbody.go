// Package nbody implements the particle-mesh (PM) gravity solver that
// stands in for HACC in this reproduction. It evolves equal-mass dark
// matter tracer particles in a periodic box using cloud-in-cell (CIC) mass
// assignment, an FFT Poisson solve for the potential, finite-difference
// gradients for the mesh force, CIC force interpolation back to particles,
// and a kick-drift-kick leapfrog integrator.
//
// The paper's tessellation analysis needs a particle distribution that
// evolves from a gently perturbed lattice into clustered structure (halos,
// filaments, voids); a PM solver is the spectral particle-mesh component of
// HACC's own force solver and produces exactly that morphology.
package nbody

import (
	"fmt"
	"math"

	"repro/internal/cosmo"
	"repro/internal/fft"
	"repro/internal/geom"
)

// Config describes a simulation.
type Config struct {
	// Ng is the number of grid points (and particles) per dimension; must
	// be a power of two.
	Ng int
	// BoxSize is the periodic box side length. The paper's convention is
	// BoxSize == Ng so particles start 1 Mpc/h apart.
	BoxSize float64
	// Dt is the integrator time step.
	Dt float64
	// G scales the gravitational acceleration; it absorbs 4*pi*G*rho_bar
	// and the time units. Larger values cluster faster.
	G float64
	// Cosmo parameterizes the initial conditions.
	Cosmo cosmo.Params
}

// DefaultConfig returns a configuration matching the paper's setup scaled
// to laptop size: ng = np per dimension, box size equal to ng, and the
// coupling tuned (together with cosmo.DefaultParams' IC amplitude) so that
// the density contrast evolves on the paper's schedule — quasi-linear
// around step ~11, mildly nonlinear by step ~31, deeply clustered with
// distinct voids by step ~100 (Figures 8, 9, 11).
func DefaultConfig(ng int) Config {
	return Config{
		Ng:      ng,
		BoxSize: float64(ng),
		Dt:      0.1,
		G:       0.5,
		Cosmo:   cosmo.DefaultParams(),
	}
}

// Simulation evolves particles under PM gravity.
type Simulation struct {
	Config Config
	Pos    []geom.Vec3
	Vel    []geom.Vec3
	Step   int

	rho       *fft.Grid3 // scratch: density/potential grid
	gridForce [3][]float64
}

// New creates a simulation with Zel'dovich initial conditions.
func New(cfg Config) (*Simulation, error) {
	if !fft.IsPow2(cfg.Ng) {
		return nil, fmt.Errorf("nbody: Ng = %d is not a power of two", cfg.Ng)
	}
	if cfg.BoxSize <= 0 {
		return nil, fmt.Errorf("nbody: non-positive box size %g", cfg.BoxSize)
	}
	if cfg.Dt <= 0 {
		return nil, fmt.Errorf("nbody: non-positive time step %g", cfg.Dt)
	}
	pos, vel, err := cosmo.ZeldovichIC(cfg.Cosmo, cfg.Ng, cfg.BoxSize, 1)
	if err != nil {
		return nil, err
	}
	s := &Simulation{Config: cfg, Pos: pos, Vel: vel}
	s.alloc()
	return s, nil
}

// NewFromParticles creates a simulation from explicit particle state
// (positions are wrapped into the box). Velocities may be nil for a cold
// start.
func NewFromParticles(cfg Config, pos, vel []geom.Vec3) (*Simulation, error) {
	if !fft.IsPow2(cfg.Ng) {
		return nil, fmt.Errorf("nbody: Ng = %d is not a power of two", cfg.Ng)
	}
	if vel == nil {
		vel = make([]geom.Vec3, len(pos))
	}
	if len(pos) != len(vel) {
		return nil, fmt.Errorf("nbody: %d positions but %d velocities", len(pos), len(vel))
	}
	p := make([]geom.Vec3, len(pos))
	for i := range pos {
		p[i] = cosmo.Wrap(pos[i], cfg.BoxSize)
	}
	v := append([]geom.Vec3(nil), vel...)
	s := &Simulation{Config: cfg, Pos: p, Vel: v}
	s.alloc()
	return s, nil
}

func (s *Simulation) alloc() {
	s.rho = fft.NewGrid3(s.Config.Ng)
	n3 := s.Config.Ng * s.Config.Ng * s.Config.Ng
	for j := range s.gridForce {
		s.gridForce[j] = make([]float64, n3)
	}
}

// NumParticles returns the particle count.
func (s *Simulation) NumParticles() int { return len(s.Pos) }

// cicWeights returns the base cell index and linear weight for coordinate x
// on a grid of n cells with spacing h, for cell-centered CIC assignment.
func cicWeights(x, h float64, n int) (i0, i1 int, w0, w1 float64) {
	// Cell centers are at (i + 0.5) * h.
	u := x/h - 0.5
	i := int(math.Floor(u))
	f := u - float64(i)
	i0 = ((i % n) + n) % n
	i1 = (i0 + 1) % n
	return i0, i1, 1 - f, f
}

// DepositCIC builds the density contrast grid from the particle positions:
// rho[cell] = count[cell]/meanCount - 1, where each particle's unit mass is
// distributed over the 8 nearest cells with trilinear (CIC) weights.
func (s *Simulation) DepositCIC() *fft.Grid3 {
	n := s.Config.Ng
	h := s.Config.BoxSize / float64(n)
	for i := range s.rho.Data {
		s.rho.Data[i] = 0
	}
	for _, p := range s.Pos {
		xi0, xi1, wx0, wx1 := cicWeights(p.X, h, n)
		yi0, yi1, wy0, wy1 := cicWeights(p.Y, h, n)
		zi0, zi1, wz0, wz1 := cicWeights(p.Z, h, n)
		for _, zc := range [2]struct {
			i int
			w float64
		}{{zi0, wz0}, {zi1, wz1}} {
			for _, yc := range [2]struct {
				i int
				w float64
			}{{yi0, wy0}, {yi1, wy1}} {
				base := (zc.i*n + yc.i) * n
				w := zc.w * yc.w
				s.rho.Data[base+xi0] += complex(w*wx0, 0)
				s.rho.Data[base+xi1] += complex(w*wx1, 0)
			}
		}
	}
	mean := float64(len(s.Pos)) / float64(n*n*n)
	if mean > 0 {
		inv := complex(1/mean, 0)
		for i := range s.rho.Data {
			s.rho.Data[i] = s.rho.Data[i]*inv - 1
		}
	}
	return s.rho
}

// solveForces computes the mesh force field -grad(phi) from the current
// particle distribution, storing the three components in s.gridForce.
func (s *Simulation) solveForces() {
	n := s.Config.Ng
	h := s.Config.BoxSize / float64(n)
	s.DepositCIC()
	// Scale density contrast by G: del^2 phi = G * delta.
	g := complex(s.Config.G, 0)
	for i := range s.rho.Data {
		s.rho.Data[i] *= g
	}
	fft.SolvePoisson(s.rho, s.Config.BoxSize)
	// Central differences with periodic wrap: F = -grad(phi).
	inv2h := 1 / (2 * h)
	for z := 0; z < n; z++ {
		zp, zm := (z+1)%n, (z-1+n)%n
		for y := 0; y < n; y++ {
			yp, ym := (y+1)%n, (y-1+n)%n
			for x := 0; x < n; x++ {
				xp, xm := (x+1)%n, (x-1+n)%n
				idx := s.rho.Index(x, y, z)
				s.gridForce[0][idx] = -(real(s.rho.At(xp, y, z)) - real(s.rho.At(xm, y, z))) * inv2h
				s.gridForce[1][idx] = -(real(s.rho.At(x, yp, z)) - real(s.rho.At(x, ym, z))) * inv2h
				s.gridForce[2][idx] = -(real(s.rho.At(x, y, zp)) - real(s.rho.At(x, y, zm))) * inv2h
			}
		}
	}
}

// ForceAt interpolates the mesh force at position p with CIC weights.
// solveForces must have been called for the current particle state; Step
// does this internally.
func (s *Simulation) forceAt(p geom.Vec3) geom.Vec3 {
	n := s.Config.Ng
	h := s.Config.BoxSize / float64(n)
	xi0, xi1, wx0, wx1 := cicWeights(p.X, h, n)
	yi0, yi1, wy0, wy1 := cicWeights(p.Y, h, n)
	zi0, zi1, wz0, wz1 := cicWeights(p.Z, h, n)
	var f geom.Vec3
	for _, zc := range [2]struct {
		i int
		w float64
	}{{zi0, wz0}, {zi1, wz1}} {
		for _, yc := range [2]struct {
			i int
			w float64
		}{{yi0, wy0}, {yi1, wy1}} {
			base := (zc.i*n + yc.i) * n
			for _, xc := range [2]struct {
				i int
				w float64
			}{{xi0, wx0}, {xi1, wx1}} {
				w := zc.w * yc.w * xc.w
				idx := base + xc.i
				f.X += w * s.gridForce[0][idx]
				f.Y += w * s.gridForce[1][idx]
				f.Z += w * s.gridForce[2][idx]
			}
		}
	}
	return f
}

// Accelerations returns the current PM acceleration for every particle.
func (s *Simulation) Accelerations() []geom.Vec3 {
	s.solveForces()
	acc := make([]geom.Vec3, len(s.Pos))
	for i, p := range s.Pos {
		acc[i] = s.forceAt(p)
	}
	return acc
}

// StepOnce advances the simulation by one kick-drift-kick leapfrog step.
func (s *Simulation) StepOnce() {
	dt := s.Config.Dt
	half := dt / 2

	s.solveForces()
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Add(s.forceAt(s.Pos[i]).Scale(half))
	}
	for i := range s.Pos {
		s.Pos[i] = cosmo.Wrap(s.Pos[i].Add(s.Vel[i].Scale(dt)), s.Config.BoxSize)
	}
	s.solveForces()
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Add(s.forceAt(s.Pos[i]).Scale(half))
	}
	s.Step++
}

// Run advances the simulation by n steps, invoking each hook after the step
// it is registered for. Hooks receive the simulation in a read-consistent
// state (between steps); this is the in situ analysis attachment point used
// by the tess framework.
func (s *Simulation) Run(n int, hook func(*Simulation)) {
	for i := 0; i < n; i++ {
		s.StepOnce()
		if hook != nil {
			hook(s)
		}
	}
}

// Momentum returns the total particle momentum (equal masses of 1).
func (s *Simulation) Momentum() geom.Vec3 {
	var m geom.Vec3
	for _, v := range s.Vel {
		m = m.Add(v)
	}
	return m
}

// KineticEnergy returns the total kinetic energy (unit masses).
func (s *Simulation) KineticEnergy() float64 {
	var e float64
	for _, v := range s.Vel {
		e += v.Norm2() / 2
	}
	return e
}

// ClusteringAmplitude returns the RMS of the CIC density contrast, a cheap
// proxy for how evolved the structure is (sigma of delta grows with time in
// the linear regime and beyond).
func (s *Simulation) ClusteringAmplitude() float64 {
	g := s.DepositCIC()
	var sum2 float64
	for _, v := range g.Data {
		sum2 += real(v) * real(v)
	}
	return math.Sqrt(sum2 / float64(len(g.Data)))
}

// PotentialEnergy returns the total PM potential energy
// U = (1/2) sum_i phi(x_i) (unit masses), with phi the mesh potential of
// the current particle distribution interpolated to the particles with CIC
// weights. Together with KineticEnergy it gives the energy diagnostics a
// production N-body code reports each step.
func (s *Simulation) PotentialEnergy() float64 {
	n := s.Config.Ng
	h := s.Config.BoxSize / float64(n)
	s.DepositCIC()
	g := complex(s.Config.G, 0)
	for i := range s.rho.Data {
		s.rho.Data[i] *= g
	}
	fft.SolvePoisson(s.rho, s.Config.BoxSize)
	var u float64
	for _, p := range s.Pos {
		xi0, xi1, wx0, wx1 := cicWeights(p.X, h, n)
		yi0, yi1, wy0, wy1 := cicWeights(p.Y, h, n)
		zi0, zi1, wz0, wz1 := cicWeights(p.Z, h, n)
		for _, zc := range [2]struct {
			i int
			w float64
		}{{zi0, wz0}, {zi1, wz1}} {
			for _, yc := range [2]struct {
				i int
				w float64
			}{{yi0, wy0}, {yi1, wy1}} {
				base := (zc.i*n + yc.i) * n
				w := zc.w * yc.w
				u += w * wx0 * real(s.rho.Data[base+xi0])
				u += w * wx1 * real(s.rho.Data[base+xi1])
			}
		}
	}
	return u / 2
}

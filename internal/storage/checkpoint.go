package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"maps"
	"math"
	"os"
	"path/filepath"
	"slices"

	"repro/internal/diy"
	"repro/internal/geom"
)

// Checkpoint directory layout:
//
//	decomp.bin    — diy.Decomposition.MarshalBinary bytes
//	prev.bin      — per-rank warm-baseline site sets (diy block layout,
//	                one section per rank, each: magic, count, then
//	                id int64 + pos 3 x float64 sorted by id)
//	meshes.bin    — per-block mesh-v2 payloads of the checkpointed step
//	                (diy block layout; opaque bytes to this package)
//	manifest.json — Manifest, written LAST via rename
//
// The manifest is the commit record: it is written atomically (temp
// file + rename) after every other artifact is on disk, so
// HasCheckpoint(dir) — "manifest exists" — implies the checkpoint is
// complete. A crash mid-checkpoint leaves either the previous complete
// checkpoint (stale manifest, untouched until the new one commits —
// artifacts are written to temp names and renamed too) or no manifest.

// ManifestVersion is the checkpoint format version this package writes.
const ManifestVersion = 1

// Manifest is the checkpoint's commit record and compatibility
// fingerprint: Resume validates the caller's config against it instead
// of silently producing a mesh the uninterrupted run would not have.
type Manifest struct {
	Version   int  `json:"version"`
	Steps     int  `json:"steps"`
	NumBlocks int  `json:"num_blocks"`
	Periodic  bool `json:"periodic"`
	// Domain is min xyz then max xyz.
	Domain [6]float64 `json:"domain"`
	Ghost  float64    `json:"ghost"`
	// Decomp names the decomposition kind ("grid" or "rcb").
	Decomp string `json:"decomp"`
	// Rebalances counts warm re-decompositions up to the checkpoint.
	Rebalances int `json:"rebalances"`
	// LastImbalance is the imbalance ratio observed at the
	// checkpointed step (feeds the next step's rebalance decision).
	LastImbalance float64 `json:"last_imbalance"`
	// WarmSites/ColdSites are the per-rank cumulative warm/cold site
	// counters, so WarmStats stays continuous across a resume.
	WarmSites []int64 `json:"warm_sites"`
	ColdSites []int64 `json:"cold_sites"`
}

// Checkpoint is one complete session checkpoint in memory.
type Checkpoint struct {
	Manifest Manifest
	// Decomp is the marshaled decomposition (diy.MarshalBinary).
	Decomp []byte
	// Prev holds each rank's warm-baseline sites (id -> position).
	Prev []map[int64]geom.Vec3
	// Meshes holds each block's encoded mesh at the checkpointed step.
	Meshes [][]byte
}

const (
	manifestName = "manifest.json"
	decompName   = "decomp.bin"
	prevName     = "prev.bin"
	meshesName   = "meshes.bin"
)

// HasCheckpoint reports whether dir holds a committed checkpoint.
func HasCheckpoint(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// Save writes c into dir, creating it if needed. Artifacts land under
// temp names first and the manifest is renamed into place last, so a
// crash at any point leaves dir either without a committed manifest or
// with the previous complete checkpoint intact.
func Save(dir string, c *Checkpoint) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: checkpoint dir: %w", err)
	}
	if err := writeRenamed(dir, decompName, func(path string) error {
		_, err := diy.WriteBlocks(path, [][]byte{c.Decomp})
		return err
	}); err != nil {
		return err
	}
	prev := make([][]byte, len(c.Prev))
	for i, m := range c.Prev {
		prev[i] = encodeSites(m)
	}
	if err := writeRenamed(dir, prevName, func(path string) error {
		_, err := diy.WriteBlocks(path, prev)
		return err
	}); err != nil {
		return err
	}
	if err := writeRenamed(dir, meshesName, func(path string) error {
		_, err := diy.WriteBlocks(path, c.Meshes)
		return err
	}); err != nil {
		return err
	}
	man := c.Manifest
	man.Version = ManifestVersion
	raw, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return fmt.Errorf("storage: manifest: %w", err)
	}
	return writeRenamed(dir, manifestName, func(path string) error {
		return os.WriteFile(path, append(raw, '\n'), 0o644)
	})
}

// writeRenamed produces dir/name via a temp file + rename so readers
// never observe a half-written artifact.
func writeRenamed(dir, name string, write func(path string) error) error {
	tmp := filepath.Join(dir, name+".tmp")
	if err := write(tmp); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, name))
}

// LoadManifest reads just the committed manifest in dir — the cheap
// compatibility probe for deciding whether a checkpoint is resumable
// without staging its meshes.
func LoadManifest(dir string) (Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return Manifest{}, fmt.Errorf("storage: no checkpoint in %s: %w", dir, err)
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return Manifest{}, fmt.Errorf("storage: manifest: %w", err)
	}
	if man.Version != ManifestVersion {
		return Manifest{}, fmt.Errorf("storage: checkpoint version %d, want %d", man.Version, ManifestVersion)
	}
	return man, nil
}

// Load reads the committed checkpoint in dir.
func Load(dir string) (*Checkpoint, error) {
	man, err := LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	c := &Checkpoint{Manifest: man}
	decomp, err := diy.ReadAllBlocks(filepath.Join(dir, decompName))
	if err != nil {
		return nil, err
	}
	if len(decomp) != 1 {
		return nil, fmt.Errorf("storage: %s holds %d sections, want 1", decompName, len(decomp))
	}
	c.Decomp = decomp[0]
	prev, err := diy.ReadAllBlocks(filepath.Join(dir, prevName))
	if err != nil {
		return nil, err
	}
	c.Prev = make([]map[int64]geom.Vec3, len(prev))
	for i, raw := range prev {
		if c.Prev[i], err = decodeSites(raw); err != nil {
			return nil, fmt.Errorf("storage: prev sites rank %d: %w", i, err)
		}
	}
	if c.Meshes, err = diy.ReadAllBlocks(filepath.Join(dir, meshesName)); err != nil {
		return nil, err
	}
	if len(c.Meshes) != c.Manifest.NumBlocks || len(c.Prev) != c.Manifest.NumBlocks {
		return nil, fmt.Errorf("storage: checkpoint holds %d meshes / %d prev sets for %d blocks",
			len(c.Meshes), len(c.Prev), c.Manifest.NumBlocks)
	}
	return c, nil
}

const sitesMagic uint64 = 0x7465737353495431 // "tessSIT1"

// encodeSites serializes one rank's warm-baseline site map, sorted by
// ID so the bytes are independent of map iteration order.
func encodeSites(m map[int64]geom.Vec3) []byte {
	ids := slices.Sorted(maps.Keys(m))
	buf := make([]byte, 16+32*len(ids))
	binary.LittleEndian.PutUint64(buf[0:], sitesMagic)
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(ids)))
	off := 16
	for _, id := range ids {
		p := m[id]
		binary.LittleEndian.PutUint64(buf[off:], uint64(id))
		binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(p.X))
		binary.LittleEndian.PutUint64(buf[off+16:], math.Float64bits(p.Y))
		binary.LittleEndian.PutUint64(buf[off+24:], math.Float64bits(p.Z))
		off += 32
	}
	return buf
}

func decodeSites(data []byte) (map[int64]geom.Vec3, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("truncated at %d bytes", len(data))
	}
	if magic := binary.LittleEndian.Uint64(data[0:]); magic != sitesMagic {
		return nil, fmt.Errorf("bad magic %#x", magic)
	}
	n := binary.LittleEndian.Uint64(data[8:])
	if uint64(len(data)-16) != n*32 {
		return nil, fmt.Errorf("size %d does not match %d sites", len(data), n)
	}
	m := make(map[int64]geom.Vec3, n)
	off := 16
	for i := uint64(0); i < n; i++ {
		id := int64(binary.LittleEndian.Uint64(data[off:]))
		m[id] = geom.Vec3{
			X: math.Float64frombits(binary.LittleEndian.Uint64(data[off+8:])),
			Y: math.Float64frombits(binary.LittleEndian.Uint64(data[off+16:])),
			Z: math.Float64frombits(binary.LittleEndian.Uint64(data[off+24:])),
		}
		off += 32
	}
	return m, nil
}

// Package storage is the out-of-core layer of the tessellation
// pipeline: snapshot particle sources that stream block-windowed chunks
// through the diy single-file block layout instead of holding a whole
// snapshot resident, and the on-disk checkpoint format that lets a
// session resume at step N instead of rerunning the simulation
// (ROADMAP: out-of-core snapshots + compact mesh interchange).
//
// A Source supplies one snapshot as an ordered sequence of particle
// chunks. Consumers (core.Session.StepFrom) load a chunk, partition its
// particles into per-rank sends, and release it before touching the
// next, so the resident set is bounded by the source's window rather
// than the snapshot size. Chunk order is part of the contract: the
// concatenation of all chunks IS the snapshot, in snapshot order, which
// is what makes a windowed FileSource byte-identical to an inline
// SliceSource over the same particles.
package storage

import (
	"fmt"

	"repro/internal/diy"
)

// Source supplies one snapshot's particles as an ordered sequence of
// chunks. Implementations need not be safe for concurrent use; the
// session consumes chunks sequentially.
type Source interface {
	// Chunks returns the number of chunks in the snapshot.
	Chunks() int
	// Chunk returns chunk i's particles. The slice is owned by the
	// source and valid only until Release(i); callers must not retain
	// or mutate it.
	Chunk(i int) ([]diy.Particle, error)
	// Release declares chunk i consumed, allowing the source to evict
	// it from its resident window.
	Release(i int)
	// Stats reports the source's load/evict accounting.
	Stats() SourceStats
}

// SourceStats is the accounting every Source keeps: it is how the
// out-of-core tests *prove* the full particle set was never resident
// (PeakResidentParticles < TotalParticles) rather than assuming it.
type SourceStats struct {
	// Loads counts chunk decodes (a chunk re-loaded after eviction
	// counts again).
	Loads int
	// Evictions counts chunks dropped from the resident window.
	Evictions int
	// PeakResidentChunks is the largest number of simultaneously
	// resident chunks.
	PeakResidentChunks int
	// PeakResidentParticles is the largest number of simultaneously
	// resident particles.
	PeakResidentParticles int
	// TotalParticles is the snapshot's full particle count.
	TotalParticles int
}

// SliceSource adapts an in-memory particle slice to the Source
// interface: one chunk, permanently resident. It is the path every
// inline Step takes, so test boxes and memory-exceeding boxes share one
// code path.
type SliceSource struct {
	parts []diy.Particle
	stats SourceStats
}

// NewSliceSource wraps ps (not copied) as a single-chunk Source.
func NewSliceSource(ps []diy.Particle) *SliceSource {
	return &SliceSource{
		parts: ps,
		stats: SourceStats{
			Loads:                 1,
			PeakResidentChunks:    1,
			PeakResidentParticles: len(ps),
			TotalParticles:        len(ps),
		},
	}
}

// Chunks returns 1: the whole slice is one chunk.
func (s *SliceSource) Chunks() int { return 1 }

// Chunk returns the wrapped slice.
func (s *SliceSource) Chunk(i int) ([]diy.Particle, error) {
	if i != 0 {
		return nil, fmt.Errorf("storage: chunk %d out of range [0, 1)", i)
	}
	return s.parts, nil
}

// Release is a no-op: the caller owns the backing slice.
func (s *SliceSource) Release(int) {}

// Stats reports the (trivial) accounting of the inline source.
func (s *SliceSource) Stats() SourceStats { return s.stats }

package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"repro/internal/diy"
	"repro/internal/geom"
)

// Snapshot files reuse the diy single-file block layout (payload
// sections + footer index + trailer), with one particle chunk per
// section. Each chunk payload is:
//
//	magic  uint64 ("tessSNP1")
//	count  uint64
//	per particle: id int64, pos 3 x float64
//
// The fixed-width header means a FileSource can learn every chunk's
// particle count from 16-byte reads at open time, without decoding any
// chunk.

const snapMagic uint64 = 0x74657373534e5031 // "tessSNP1"

const snapHeaderSize = 16
const snapRecSize = 8 + 24

// WriteSnapshot writes ps as a snapshot file of the given number of
// chunks, split into contiguous equal-length runs in slice order (the
// order contract of Source).
func WriteSnapshot(path string, ps []diy.Particle, chunks int) error {
	if chunks <= 0 {
		return fmt.Errorf("storage: cannot write snapshot with %d chunks", chunks)
	}
	payloads := make([][]byte, chunks)
	for c := 0; c < chunks; c++ {
		lo := len(ps) * c / chunks
		hi := len(ps) * (c + 1) / chunks
		payloads[c] = encodeChunk(ps[lo:hi])
	}
	_, err := diy.WriteBlocks(path, payloads)
	return err
}

func encodeChunk(ps []diy.Particle) []byte {
	buf := make([]byte, snapHeaderSize+snapRecSize*len(ps))
	binary.LittleEndian.PutUint64(buf[0:], snapMagic)
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(ps)))
	off := snapHeaderSize
	for _, p := range ps {
		binary.LittleEndian.PutUint64(buf[off:], uint64(p.ID))
		binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(p.Pos.X))
		binary.LittleEndian.PutUint64(buf[off+16:], math.Float64bits(p.Pos.Y))
		binary.LittleEndian.PutUint64(buf[off+24:], math.Float64bits(p.Pos.Z))
		off += snapRecSize
	}
	return buf
}

func decodeChunk(data []byte) ([]diy.Particle, error) {
	if len(data) < snapHeaderSize {
		return nil, fmt.Errorf("storage: chunk truncated at %d bytes", len(data))
	}
	if magic := binary.LittleEndian.Uint64(data[0:]); magic != snapMagic {
		return nil, fmt.Errorf("storage: bad chunk magic %#x", magic)
	}
	n := binary.LittleEndian.Uint64(data[8:])
	if uint64(len(data)-snapHeaderSize) != n*snapRecSize {
		return nil, fmt.Errorf("storage: chunk size %d does not match %d particles", len(data), n)
	}
	ps := make([]diy.Particle, n)
	off := snapHeaderSize
	for i := range ps {
		ps[i].ID = int64(binary.LittleEndian.Uint64(data[off:]))
		ps[i].Pos = geom.Vec3{
			X: math.Float64frombits(binary.LittleEndian.Uint64(data[off+8:])),
			Y: math.Float64frombits(binary.LittleEndian.Uint64(data[off+16:])),
			Z: math.Float64frombits(binary.LittleEndian.Uint64(data[off+24:])),
		}
		off += snapRecSize
	}
	return ps, nil
}

// FileSource streams a snapshot file chunk by chunk with a bounded
// resident window: at most window chunks are decoded at once, and
// released chunks are evicted least-recently-used when the window is
// full. A pinned chunk (handed out by Chunk, not yet Released) is never
// evicted, so the window must be at least the number of chunks the
// consumer holds concurrently (the session holds one).
type FileSource struct {
	path   string
	f      *os.File
	idx    *diy.BlockIndex
	counts []int // per-chunk particle counts, from the fixed headers
	window int

	resident map[int]*residentChunk
	clock    int
	stats    SourceStats
}

type residentChunk struct {
	parts   []diy.Particle
	pinned  bool
	lastUse int
}

// OpenFileSource opens a snapshot file written by WriteSnapshot. window
// is the resident-window budget in chunks; window <= 0 (or >= the chunk
// count) means the whole snapshot may be resident. Chunk particle
// counts are read from the fixed headers, so opening touches 16 bytes
// per chunk, not the payloads.
func OpenFileSource(path string, window int) (*FileSource, error) {
	idx, err := diy.ReadIndex(path)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s := &FileSource{
		path:     path,
		f:        f,
		idx:      idx,
		counts:   make([]int, len(idx.Offsets)),
		window:   window,
		resident: make(map[int]*residentChunk),
	}
	var hdr [snapHeaderSize]byte
	for i := range idx.Offsets {
		if idx.Sizes[i] < snapHeaderSize {
			f.Close()
			return nil, fmt.Errorf("storage: %s chunk %d truncated", path, i)
		}
		if _, err := f.ReadAt(hdr[:], idx.Offsets[i]); err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: %s chunk %d header: %w", path, i, err)
		}
		if magic := binary.LittleEndian.Uint64(hdr[0:]); magic != snapMagic {
			f.Close()
			return nil, fmt.Errorf("storage: %s chunk %d has bad magic %#x", path, i, magic)
		}
		s.counts[i] = int(binary.LittleEndian.Uint64(hdr[8:]))
		s.stats.TotalParticles += s.counts[i]
	}
	return s, nil
}

// Chunks returns the snapshot's chunk count.
func (s *FileSource) Chunks() int { return len(s.counts) }

// TotalParticles returns the snapshot's full particle count (known from
// the chunk headers without decoding any chunk).
func (s *FileSource) TotalParticles() int { return s.stats.TotalParticles }

// Chunk loads (or returns the resident) chunk i and pins it until
// Release(i).
func (s *FileSource) Chunk(i int) ([]diy.Particle, error) {
	if i < 0 || i >= len(s.counts) {
		return nil, fmt.Errorf("storage: chunk %d out of range [0, %d)", i, len(s.counts))
	}
	s.clock++
	if rc, ok := s.resident[i]; ok {
		rc.pinned = true
		rc.lastUse = s.clock
		return rc.parts, nil
	}
	s.evictFor(1)
	buf := make([]byte, s.idx.Sizes[i])
	if _, err := s.f.ReadAt(buf, s.idx.Offsets[i]); err != nil {
		return nil, fmt.Errorf("storage: %s chunk %d: %w", s.path, i, err)
	}
	parts, err := decodeChunk(buf)
	if err != nil {
		return nil, fmt.Errorf("storage: %s chunk %d: %w", s.path, i, err)
	}
	s.resident[i] = &residentChunk{parts: parts, pinned: true, lastUse: s.clock}
	s.stats.Loads++
	s.noteResident()
	return parts, nil
}

// Release unpins chunk i, making it evictable.
func (s *FileSource) Release(i int) {
	if rc, ok := s.resident[i]; ok {
		rc.pinned = false
	}
}

// Stats reports the source's accounting.
func (s *FileSource) Stats() SourceStats { return s.stats }

// Close releases the file handle and drops every resident chunk.
func (s *FileSource) Close() error {
	s.resident = make(map[int]*residentChunk)
	return s.f.Close()
}

// evictFor evicts least-recently-used unpinned chunks until loading n
// more chunks would fit the window. With no window (<= 0) it is a
// no-op; if every resident chunk is pinned the load proceeds over
// budget (the caller is holding more chunks than the window allows,
// which the peak accounting will expose).
func (s *FileSource) evictFor(n int) {
	if s.window <= 0 {
		return
	}
	for len(s.resident)+n > s.window {
		victim, oldest := -1, 0
		for i, rc := range s.resident {
			if rc.pinned {
				continue
			}
			if victim < 0 || rc.lastUse < oldest {
				victim, oldest = i, rc.lastUse
			}
		}
		if victim < 0 {
			return
		}
		delete(s.resident, victim)
		s.stats.Evictions++
	}
}

func (s *FileSource) noteResident() {
	if n := len(s.resident); n > s.stats.PeakResidentChunks {
		s.stats.PeakResidentChunks = n
	}
	parts := 0
	for _, rc := range s.resident {
		parts += len(rc.parts)
	}
	if parts > s.stats.PeakResidentParticles {
		s.stats.PeakResidentParticles = parts
	}
}

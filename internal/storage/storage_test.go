package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/diy"
	"repro/internal/geom"
)

func testParticles(seed int64, n int) []diy.Particle {
	rng := rand.New(rand.NewSource(seed))
	ps := make([]diy.Particle, n)
	for i := range ps {
		ps[i] = diy.Particle{ID: int64(i), Pos: geom.V(rng.Float64()*8, rng.Float64()*8, rng.Float64()*8)}
	}
	return ps
}

// drain reads every chunk in order, releasing each before the next (the
// session's consumption pattern), and returns the concatenation.
func drain(t *testing.T, src Source) []diy.Particle {
	t.Helper()
	var all []diy.Particle
	for c := 0; c < src.Chunks(); c++ {
		parts, err := src.Chunk(c)
		if err != nil {
			t.Fatalf("chunk %d: %v", c, err)
		}
		all = append(all, parts...)
		src.Release(c)
	}
	return all
}

func TestSnapshotRoundTrip(t *testing.T) {
	ps := testParticles(1, 1000)
	path := filepath.Join(t.TempDir(), "snap.bin")
	for _, chunks := range []int{1, 4, 7, 16} {
		if err := WriteSnapshot(path, ps, chunks); err != nil {
			t.Fatalf("chunks=%d: %v", chunks, err)
		}
		src, err := OpenFileSource(path, 0)
		if err != nil {
			t.Fatalf("chunks=%d: %v", chunks, err)
		}
		if src.Chunks() != chunks {
			t.Fatalf("Chunks() = %d, want %d", src.Chunks(), chunks)
		}
		if src.TotalParticles() != len(ps) {
			t.Fatalf("TotalParticles() = %d, want %d", src.TotalParticles(), len(ps))
		}
		got := drain(t, src)
		if len(got) != len(ps) {
			t.Fatalf("chunks=%d: drained %d particles, want %d", chunks, len(got), len(ps))
		}
		for i := range ps {
			if got[i] != ps[i] {
				t.Fatalf("chunks=%d: particle %d = %+v, want %+v", chunks, i, got[i], ps[i])
			}
		}
		src.Close()
	}
	if err := WriteSnapshot(path, ps, 0); err == nil {
		t.Fatal("zero chunk count accepted")
	}
}

func TestFileSourceWindowAccounting(t *testing.T) {
	ps := testParticles(2, 800)
	path := filepath.Join(t.TempDir(), "snap.bin")
	const chunks = 8
	if err := WriteSnapshot(path, ps, chunks); err != nil {
		t.Fatal(err)
	}
	src, err := OpenFileSource(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	drain(t, src)
	st := src.Stats()
	if st.Loads != chunks {
		t.Errorf("Loads = %d, want %d", st.Loads, chunks)
	}
	if st.PeakResidentChunks > 2 {
		t.Errorf("PeakResidentChunks = %d exceeds window 2", st.PeakResidentChunks)
	}
	if st.PeakResidentParticles >= st.TotalParticles {
		t.Errorf("peak resident %d not below total %d — the window did not bound staging",
			st.PeakResidentParticles, st.TotalParticles)
	}
	if st.Evictions != chunks-2 {
		t.Errorf("Evictions = %d, want %d", st.Evictions, chunks-2)
	}

	// A re-read after eviction decodes again (counted as a new load) and
	// still returns the right particles.
	first, err := src.Chunk(0)
	if err != nil {
		t.Fatal(err)
	}
	if src.Stats().Loads != chunks+1 {
		t.Errorf("reload not counted: Loads = %d", src.Stats().Loads)
	}
	if first[0] != ps[0] {
		t.Errorf("reloaded chunk 0 starts with %+v, want %+v", first[0], ps[0])
	}
	src.Release(0)

	// A pinned chunk survives pressure from later loads.
	pinned, err := src.Chunk(1)
	if err != nil {
		t.Fatal(err)
	}
	for c := 2; c < chunks; c++ {
		if _, err := src.Chunk(c); err != nil {
			t.Fatal(err)
		}
		src.Release(c)
	}
	again, err := src.Chunk(1)
	if err != nil {
		t.Fatal(err)
	}
	if &pinned[0] != &again[0] {
		t.Error("pinned chunk was evicted under window pressure")
	}
}

func TestFileSourceErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	if err := WriteSnapshot(path, testParticles(3, 64), 4); err != nil {
		t.Fatal(err)
	}
	src, err := OpenFileSource(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if _, err := src.Chunk(-1); err == nil {
		t.Error("negative chunk index accepted")
	}
	if _, err := src.Chunk(4); err == nil {
		t.Error("out-of-range chunk index accepted")
	}
	if _, err := OpenFileSource(filepath.Join(dir, "missing.bin"), 0); err == nil {
		t.Error("missing file accepted")
	}
	// A block file whose sections are not snapshot chunks must be
	// rejected at open (the header probe).
	other := filepath.Join(dir, "other.bin")
	if _, err := diy.WriteBlocks(other, [][]byte{make([]byte, 32)}); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileSource(other, 0); err == nil {
		t.Error("non-snapshot block file accepted")
	}
}

func TestSliceSource(t *testing.T) {
	ps := testParticles(4, 10)
	src := NewSliceSource(ps)
	if src.Chunks() != 1 {
		t.Fatalf("Chunks() = %d", src.Chunks())
	}
	got, err := src.Chunk(0)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &ps[0] {
		t.Error("SliceSource copied the slice")
	}
	src.Release(0)
	if _, err := src.Chunk(1); err == nil {
		t.Error("chunk 1 of a slice source accepted")
	}
	st := src.Stats()
	if st.TotalParticles != 10 || st.PeakResidentParticles != 10 || st.Loads != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func testCheckpoint(blocks int) *Checkpoint {
	c := &Checkpoint{
		Manifest: Manifest{
			Steps:         3,
			NumBlocks:     blocks,
			Periodic:      true,
			Domain:        [6]float64{0, 0, 0, 8, 8, 8},
			Ghost:         3,
			Decomp:        "grid",
			Rebalances:    1,
			LastImbalance: 1.25,
			WarmSites:     make([]int64, blocks),
			ColdSites:     make([]int64, blocks),
		},
		Decomp: []byte{1, 2, 3, 4},
	}
	for r := 0; r < blocks; r++ {
		c.Manifest.WarmSites[r] = int64(10 * r)
		c.Manifest.ColdSites[r] = int64(r)
		m := map[int64]geom.Vec3{}
		for i := 0; i < 5; i++ {
			m[int64(r*100+i)] = geom.V(float64(i), float64(r), 0.5)
		}
		c.Prev = append(c.Prev, m)
		c.Meshes = append(c.Meshes, []byte{byte(r), 0xaa, byte(r)})
	}
	return c
}

func TestCheckpointSaveLoad(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	if HasCheckpoint(dir) {
		t.Fatal("empty dir reports a checkpoint")
	}
	want := testCheckpoint(3)
	if err := Save(dir, want); err != nil {
		t.Fatal(err)
	}
	if !HasCheckpoint(dir) {
		t.Fatal("saved checkpoint not detected")
	}
	man, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Steps != 3 || man.NumBlocks != 3 || man.Version != ManifestVersion {
		t.Fatalf("manifest = %+v", man)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Manifest.Domain != want.Manifest.Domain || got.Manifest.LastImbalance != 1.25 {
		t.Errorf("manifest round trip: %+v", got.Manifest)
	}
	if string(got.Decomp) != string(want.Decomp) {
		t.Errorf("decomp bytes differ")
	}
	for r := range want.Prev {
		if len(got.Prev[r]) != len(want.Prev[r]) {
			t.Fatalf("rank %d prev size %d, want %d", r, len(got.Prev[r]), len(want.Prev[r]))
		}
		for id, p := range want.Prev[r] {
			if got.Prev[r][id] != p {
				t.Fatalf("rank %d site %d = %+v, want %+v", r, id, got.Prev[r][id], p)
			}
		}
		if string(got.Meshes[r]) != string(want.Meshes[r]) {
			t.Errorf("rank %d mesh bytes differ", r)
		}
	}

	// Overwriting with a deeper checkpoint commits cleanly.
	want.Manifest.Steps = 7
	if err := Save(dir, want); err != nil {
		t.Fatal(err)
	}
	if man, _ := LoadManifest(dir); man.Steps != 7 {
		t.Errorf("overwrite: steps = %d, want 7", man.Steps)
	}
}

func TestCheckpointLoadRejectsCorruption(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	if err := Save(dir, testCheckpoint(2)); err != nil {
		t.Fatal(err)
	}
	// Version skew.
	bad := []byte(`{"version": 99, "num_blocks": 2}`)
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("version-skewed manifest accepted")
	}
	// Manifest/artifact inconsistency: blocks claim does not match the
	// mesh file.
	bad = []byte(`{"version": 1, "num_blocks": 5}`)
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("block-count mismatch accepted")
	}
	// Unparseable manifest.
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("truncated manifest accepted")
	}
	// Corrupt prev sites payload.
	if err := Save(dir, testCheckpoint(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := diy.WriteBlocks(filepath.Join(dir, "prev.bin"), [][]byte{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("corrupt prev sites accepted")
	}
	// Missing checkpoint directory.
	if _, err := Load(filepath.Join(dir, "nope")); err == nil {
		t.Error("missing dir accepted")
	}
}

func TestSitesRoundTripDeterministic(t *testing.T) {
	m := map[int64]geom.Vec3{}
	for i := 0; i < 64; i++ {
		m[int64(i*7%64)] = geom.V(float64(i), -float64(i), 0.25*float64(i))
	}
	enc := encodeSites(m)
	// Map iteration order must not leak into the bytes.
	for i := 0; i < 8; i++ {
		if string(encodeSites(m)) != string(enc) {
			t.Fatal("encodeSites is nondeterministic")
		}
	}
	dec, err := decodeSites(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(m) {
		t.Fatalf("decoded %d sites, want %d", len(dec), len(m))
	}
	for id, p := range m {
		if dec[id] != p {
			t.Fatalf("site %d = %+v, want %+v", id, dec[id], p)
		}
	}
	if _, err := decodeSites(enc[:8]); err == nil {
		t.Error("truncated sites accepted")
	}
	if _, err := decodeSites(enc[8:]); err == nil {
		t.Error("bad magic accepted")
	}
	enc[20]++ // corrupt a payload byte: size check still passes, values differ
	if _, err := decodeSites(enc[:len(enc)-32]); err == nil {
		t.Error("size mismatch accepted")
	}
}

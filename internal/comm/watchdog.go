package comm

import (
	"sync"
	"time"
)

// The stall watchdog (armed with WithWatchdog) turns a silent hang into a
// structured abort. Every unbounded blocking operation registers its wait
// (who waits on whom, in which op, with which tag) in a per-rank slot; a
// monitor goroutine started by Run samples the slots and declares a
// global stall when every rank has been continuously blocked (or has
// exited) with zero state changes for the configured timeout.
//
// Soundness: a stall is declared only from a state that cannot resolve
// itself. Registered waits are unbounded channel/condvar operations, so
// they complete only through another rank's action; if every rank is
// blocked in one (or has exited) and no slot's sequence number changed
// across the whole window, no rank acted, and none ever will — the state
// is absorbing. Slow compute, time.Sleep, injected delays, and
// timeout-bounded waits (RecvTimeout/SendTimeout) are deliberately NOT
// registered: a rank in any of those samples as "running", which
// suppresses the verdict. The watchdog therefore never aborts a world
// that is merely slow.

type waitOp uint8

const (
	waitNone waitOp = iota // running (not in a registered blocking op)
	waitSend
	waitRecv
	waitBarrier
	waitExited // rank's body returned
)

func (op waitOp) String() string {
	switch op {
	case waitSend:
		return "send"
	case waitRecv:
		return "recv"
	case waitBarrier:
		return "barrier"
	case waitExited:
		return "exited"
	default:
		return "running"
	}
}

// waitSlot is one rank's published blocked state. Each slot is written
// only by its own rank's goroutine and read by the monitor; the mutex
// makes each (op, peer, tag, since, seq) tuple atomic as a unit.
type waitSlot struct {
	mu    sync.Mutex
	op    waitOp
	peer  int
	tag   int
	since time.Time
	// seq increments on every state change, so the monitor can tell "the
	// same wait, still pending" from "a new wait that looks identical".
	seq uint64

	_ [64]byte // keep adjacent ranks' slots off one cache line
}

type watchdog struct {
	w       *World
	timeout time.Duration
	slots   []waitSlot
}

func newWatchdog(w *World, timeout time.Duration) *watchdog {
	return &watchdog{w: w, timeout: timeout, slots: make([]waitSlot, w.size)}
}

// reset marks every rank running; Run calls it before launching bodies so
// slots left "exited" by a previous Run do not leak into this one.
func (wd *watchdog) reset() {
	for i := range wd.slots {
		s := &wd.slots[i]
		s.mu.Lock()
		s.op = waitNone
		s.seq++
		s.mu.Unlock()
	}
}

// enterWait publishes that rank is about to block in op. Safe on a nil
// watchdog (the disabled fast path).
func (wd *watchdog) enterWait(rank int, op waitOp, peer, tag int) {
	if wd == nil {
		return
	}
	s := &wd.slots[rank]
	s.mu.Lock()
	s.op, s.peer, s.tag, s.since = op, peer, tag, time.Now()
	s.seq++
	s.mu.Unlock()
}

// exitWait publishes that rank's blocking op completed (or unwound).
func (wd *watchdog) exitWait(rank int) {
	if wd == nil {
		return
	}
	s := &wd.slots[rank]
	s.mu.Lock()
	s.op = waitNone
	s.seq++
	s.mu.Unlock()
}

// markExited records that rank's body returned; an exited rank can never
// unblock a peer, so it participates in the stall verdict.
func (wd *watchdog) markExited(rank int) {
	if wd == nil {
		return
	}
	s := &wd.slots[rank]
	s.mu.Lock()
	s.op = waitExited
	s.seq++
	s.mu.Unlock()
}

// sample reads every slot once and reports whether all ranks are blocked
// or exited, whether at least one is blocked, the per-rank sequence
// numbers, and the wait-for rows for a potential dump.
func (wd *watchdog) sample(now time.Time, seqs []uint64, waits []RankWait) (allStuck, anyBlocked bool) {
	allStuck = true
	for i := range wd.slots {
		s := &wd.slots[i]
		s.mu.Lock()
		op, peer, tag, since, seq := s.op, s.peer, s.tag, s.since, s.seq
		s.mu.Unlock()
		seqs[i] = seq
		rw := RankWait{Rank: i, State: op.String(), Peer: -1}
		switch op {
		case waitNone:
			allStuck = false
		case waitExited:
		default:
			anyBlocked = true
			rw.For = now.Sub(since)
			if op != waitBarrier {
				rw.Peer, rw.Tag = peer, tag
			}
		}
		waits[i] = rw
	}
	return allStuck, anyBlocked
}

// start launches the monitor goroutine and returns a function that stops
// it and waits for it to exit (so a finished Run leaves no monitor
// behind).
func (wd *watchdog) start() (stop func()) {
	stopCh := make(chan struct{})
	exited := make(chan struct{})
	go wd.monitor(stopCh, exited)
	return func() {
		close(stopCh)
		//lint:ignore donesel the monitor's select always observes the stop close (or the done close) and exits via defer, so this receive cannot hang
		<-exited
	}
}

func (wd *watchdog) monitor(stop <-chan struct{}, exited chan<- struct{}) {
	defer close(exited)
	interval := wd.timeout / 8
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	n := len(wd.slots)
	seqs := make([]uint64, n)
	prev := make([]uint64, n)
	waits := make([]RankWait, n)
	var stuckSince time.Time // zero: not currently in an all-stuck window
	havePrev := false

	for {
		select {
		case <-stop:
			return
		case <-wd.w.done:
			return
		case <-ticker.C:
		}
		now := time.Now()
		allStuck, anyBlocked := wd.sample(now, seqs, waits)
		unchanged := havePrev
		for i := range seqs {
			if !havePrev || seqs[i] != prev[i] {
				unchanged = false
			}
		}
		copy(prev, seqs)
		havePrev = true

		if !(allStuck && anyBlocked && unchanged) {
			stuckSince = time.Time{}
			continue
		}
		if stuckSince.IsZero() {
			stuckSince = now
			continue
		}
		if now.Sub(stuckSince) < wd.timeout {
			continue
		}
		dump := make([]RankWait, n)
		copy(dump, waits)
		wd.w.Abort(&StallError{Timeout: wd.timeout, Waits: dump})
		return
	}
}

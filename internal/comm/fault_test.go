package comm

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// One rank aborting must unblock every other rank, however it was
// blocked: recv, send into a full queue, or the barrier.
func TestAbortUnblocksAllRanks(t *testing.T) {
	const P = 4
	cause := errors.New("rank 0 gave up")
	w := NewWorld(P, WithMailboxCapacity(1))
	err := w.Run(func(rank int) {
		switch rank {
		case 0:
			time.Sleep(10 * time.Millisecond)
			w.Abort(cause)
		case 1:
			w.Recv(1, 2, 99) // rank 2 never sends with tag for this wait to resolve
		case 2:
			// Fill the pair queue, then block on the second send: rank 3
			// never receives.
			w.Send(2, 3, 5, []int{1})
			w.Send(2, 3, 5, []int{2})
		case 3:
			w.Barrier()
		}
	})
	if err == nil {
		t.Fatal("aborted world returned nil from Run")
	}
	if !errors.Is(err, ErrWorldAborted) {
		t.Fatalf("err %v does not match ErrWorldAborted", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("err %v lost the abort cause", err)
	}
	if w.Err() == nil {
		t.Fatal("Err() nil after abort")
	}
	select {
	case <-w.Done():
	default:
		t.Fatal("Done() not closed after abort")
	}
}

// A panic in one rank's body must come back from Run as a *RankError
// (rank, value, stack) with the peers unblocked — never a process crash.
func TestPanicContainedAsRankError(t *testing.T) {
	const P = 3
	w := NewWorld(P)
	err := w.Run(func(rank int) {
		if rank == 1 {
			panic("tessellation invariant violated")
		}
		w.Recv(rank, 1, 7) // would hang forever without the abort
	})
	if err == nil {
		t.Fatal("Run returned nil despite a rank panic")
	}
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("err %v carries no *RankError", err)
	}
	if re.Rank != 1 {
		t.Errorf("RankError.Rank = %d, want 1", re.Rank)
	}
	if re.Value != "tessellation invariant violated" {
		t.Errorf("RankError.Value = %v", re.Value)
	}
	if len(re.Stack) == 0 || !strings.Contains(string(re.Stack), "fault_test") {
		t.Errorf("RankError.Stack does not capture the failing goroutine")
	}
	if !errors.Is(err, ErrWorldAborted) {
		t.Errorf("contained panic error %v does not match ErrWorldAborted", err)
	}
}

// A rank panicking with an error value keeps that error matchable through
// the containment layers via errors.Is/As.
func TestRankErrorUnwrapsErrorValue(t *testing.T) {
	sentinel := errors.New("disk full")
	w := NewWorld(2)
	err := w.Run(func(rank int) {
		if rank == 0 {
			panic(sentinel)
		}
		w.Recv(rank, 0, 1)
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err %v lost the panicked error value", err)
	}
}

// The watchdog must convert a mismatched collective (one rank missing)
// into a StallError wait-for dump instead of a hang, promptly.
func TestWatchdogDetectsMismatchedCollective(t *testing.T) {
	const P = 3
	w := NewWorld(P, WithWatchdog(50*time.Millisecond))
	start := time.Now()
	err := w.Run(func(rank int) {
		if rank == 2 {
			return // "forgot" to join the collective
		}
		Allgather(w, rank, rank)
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("mismatched collective did not abort")
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err %v carries no *StallError", err)
	}
	if !errors.Is(err, ErrWorldAborted) {
		t.Errorf("stall error %v does not match ErrWorldAborted", err)
	}
	if len(se.Waits) != P {
		t.Fatalf("stall dump has %d rows, want %d", len(se.Waits), P)
	}
	if se.Waits[2].State != "exited" {
		t.Errorf("rank 2 state %q, want exited", se.Waits[2].State)
	}
	blocked := 0
	for _, rw := range se.Waits[:2] {
		if rw.State == "send" || rw.State == "recv" {
			blocked++
			if rw.Peer < 0 || rw.Peer >= P {
				t.Errorf("blocked rank %d has no peer attribution: %+v", rw.Rank, rw)
			}
		}
	}
	if blocked == 0 {
		t.Errorf("no blocked rank in dump: %v", se)
	}
	if !strings.Contains(err.Error(), "wait-for graph") {
		t.Errorf("error text lacks the wait-for dump: %v", err)
	}
	// Detection must be bounded: ~timeout plus sampling slack, not minutes.
	if elapsed > 5*time.Second {
		t.Errorf("stall detection took %v", elapsed)
	}
}

// A slow rank (compute, sleep) must NOT trip the watchdog even when the
// quiet period far exceeds the timeout: slow is not stalled.
func TestWatchdogNoFalsePositiveOnSlowRank(t *testing.T) {
	const P = 3
	w := NewWorld(P, WithWatchdog(20*time.Millisecond))
	err := w.Run(func(rank int) {
		if rank == 0 {
			time.Sleep(120 * time.Millisecond) // 6x the timeout
		}
		got := Allgather(w, rank, rank)
		if len(got) != P {
			t.Errorf("rank %d: allgather %v", rank, got)
		}
	})
	if err != nil {
		t.Fatalf("watchdog aborted a merely slow world: %v", err)
	}
}

// A timeout-bounded wait must not register as a stall either: RecvTimeout
// self-resolves.
func TestWatchdogIgnoresBoundedWaits(t *testing.T) {
	w := NewWorld(2, WithWatchdog(20*time.Millisecond))
	err := w.Run(func(rank int) {
		if rank == 0 {
			// Bounded wait far longer than the watchdog window; rank 1 is
			// asleep the whole time, so nothing arrives and nothing is
			// blocked unboundedly — the world is healthy throughout.
			if _, err := w.RecvTimeout(0, 1, 99, 100*time.Millisecond); err == nil ||
				!strings.Contains(err.Error(), "timed out") {
				t.Errorf("rank 0: bounded wait err = %v", err)
			}
		} else {
			time.Sleep(150 * time.Millisecond)
		}
		w.Sendrecv(rank, 1-rank, 1-rank, 7, []int{rank})
	})
	if err != nil {
		t.Fatalf("bounded wait tripped the watchdog: %v", err)
	}
}

// A second Run on the same (healthy) world must not inherit stale
// "exited" watchdog state from the first.
func TestWatchdogAcrossRuns(t *testing.T) {
	w := NewWorld(2, WithWatchdog(25*time.Millisecond))
	for i := 0; i < 2; i++ {
		err := w.Run(func(rank int) {
			time.Sleep(60 * time.Millisecond)
			w.Barrier()
		})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}

// Self-send overflow is a guaranteed deadlock and must fail fast with an
// actionable diagnostic instead of blocking forever.
func TestSelfSendOverflowPanics(t *testing.T) {
	w := NewWorld(2, WithMailboxCapacity(2))
	err := w.Run(func(rank int) {
		if rank != 0 {
			return
		}
		for i := 0; i < 3; i++ {
			w.Send(0, 0, 1, []int{i}) // third send overflows capacity 2
		}
	})
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("self-send overflow err %v carries no *RankError", err)
	}
	msg, ok := re.Value.(string)
	if !ok || !strings.Contains(msg, "self-send overflow") ||
		!strings.Contains(msg, "WithMailboxCapacity") {
		t.Fatalf("diagnostic %v lacks the overflow guidance", re.Value)
	}
}

func TestMailboxCapacityOption(t *testing.T) {
	if got := NewWorld(2).MailboxCapacity(); got != DefaultMailboxCapacity {
		t.Errorf("default capacity %d, want %d", got, DefaultMailboxCapacity)
	}
	w := NewWorld(2, WithMailboxCapacity(3))
	if got := w.MailboxCapacity(); got != 3 {
		t.Errorf("capacity %d, want 3", got)
	}
	// A rank can post exactly `capacity` sends to one peer without blocking
	// even when the peer is not yet receiving.
	err := w.Run(func(rank int) {
		if rank == 0 {
			for i := 0; i < 3; i++ {
				w.Send(0, 1, 1, []int{i})
			}
		} else {
			time.Sleep(10 * time.Millisecond)
			for i := 0; i < 3; i++ {
				got := w.Recv(1, 0, 1).([]int)
				if got[0] != i {
					t.Errorf("message %d out of order: %v", i, got)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWithMailboxCapacityRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WithMailboxCapacity(0) did not panic")
		}
	}()
	WithMailboxCapacity(0)
}

func TestWithWatchdogRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WithWatchdog(0) did not panic")
		}
	}()
	WithWatchdog(0)
}

func TestSendTimeout(t *testing.T) {
	w := NewWorld(2, WithMailboxCapacity(1))
	err := w.Run(func(rank int) {
		if rank != 0 {
			time.Sleep(30 * time.Millisecond)
			if got := w.Recv(1, 0, 1).([]int); got[0] != 1 {
				t.Errorf("recv %v, want [1]", got)
			}
			return
		}
		// First send fits the queue and succeeds immediately.
		if err := w.SendTimeout(0, 1, 1, []int{1}, time.Millisecond); err != nil {
			t.Errorf("first send: %v", err)
		}
		// Second send finds the queue full and must time out, not hang.
		start := time.Now()
		err := w.SendTimeout(0, 1, 1, []int{2}, 5*time.Millisecond)
		if err == nil || !strings.Contains(err.Error(), "timed out") {
			t.Errorf("full-queue send err = %v", err)
		}
		if time.Since(start) > time.Second {
			t.Errorf("timeout send blocked %v", time.Since(start))
		}
		// Self-send overflow is an immediate error.
		w.Send(0, 0, 2, []int{0})
		if err := w.SendTimeout(0, 0, 2, []int{1}, time.Millisecond); err == nil ||
			!strings.Contains(err.Error(), "self-send overflow") {
			t.Errorf("self-send overflow err = %v", err)
		}
		w.Recv(0, 0, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// SendTimeout on an aborted world must return the abort error promptly.
func TestSendTimeoutAbort(t *testing.T) {
	w := NewWorld(2, WithMailboxCapacity(1))
	err := w.Run(func(rank int) {
		if rank == 1 {
			time.Sleep(10 * time.Millisecond)
			w.Abort(errors.New("peer died"))
			return
		}
		w.Send(0, 1, 1, nil) // fill the queue
		err := w.SendTimeout(0, 1, 1, nil, time.Minute)
		if !errors.Is(err, ErrWorldAborted) {
			t.Errorf("send on aborted world: %v", err)
		}
	})
	if !errors.Is(err, ErrWorldAborted) {
		t.Fatalf("run err %v", err)
	}
}

// Regression for the RecvTimeout accounting bug: a tag-mismatched message
// was dropped without being counted, breaking conservation, and the error
// hid what was dropped.
func TestRecvTimeoutTagMismatchCounted(t *testing.T) {
	const P = 2
	w := NewWorld(P)
	rec := obs.NewRecorder(P)
	w.SetRecorder(rec)
	err := w.Run(func(rank int) {
		if rank == 0 {
			w.Send(0, 1, 5, []int64{42}) // protocol slip: rank 1 expects tag 6
			return
		}
		_, err := w.RecvTimeout(1, 0, 6, time.Second)
		if err == nil {
			t.Error("tag mismatch not reported")
			return
		}
		msg := err.Error()
		if !strings.Contains(msg, "expected tag 6") || !strings.Contains(msg, "got 5") {
			t.Errorf("mismatch error lacks tags: %v", err)
		}
		if !strings.Contains(msg, "dropping payload") || !strings.Contains(msg, "42") {
			t.Errorf("mismatch error lacks the dropped payload: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s := rec.Snapshot()
	if s.TotalSentMsgs != 1 || s.TotalRecvdMsgs != 1 {
		t.Errorf("conservation broken on the mismatch path: sent %d msgs, received %d",
			s.TotalSentMsgs, s.TotalRecvdMsgs)
	}
	if s.TotalSentBytes != s.TotalRecvdBytes {
		t.Errorf("sent %d bytes, received %d", s.TotalSentBytes, s.TotalRecvdBytes)
	}
}

func TestRecvTimeoutTimesOut(t *testing.T) {
	w := NewWorld(2)
	_, err := w.RecvTimeout(0, 1, 1, 5*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v", err)
	}
}

// RecvTimeout on an aborted world returns the abort error instead of
// waiting out its deadline.
func TestRecvTimeoutAbort(t *testing.T) {
	w := NewWorld(2)
	w.Abort(nil)
	start := time.Now()
	_, err := w.RecvTimeout(0, 1, 1, time.Minute)
	if !errors.Is(err, ErrWorldAborted) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("abort took %v to surface", time.Since(start))
	}
}

// Abort is idempotent: only the first cause wins.
func TestAbortFirstCauseWins(t *testing.T) {
	w := NewWorld(2)
	first := errors.New("first")
	w.Abort(first)
	w.Abort(errors.New("second"))
	if !errors.Is(w.Err(), first) {
		t.Fatalf("Err() = %v, want first cause", w.Err())
	}
}

// With the watchdog disabled and no recorder, the point-to-point fast
// path must not allocate (the containment machinery is free when idle).
func TestDisabledFaultPathZeroAlloc(t *testing.T) {
	w := NewWorld(1)
	payload := any([]int64{1, 2, 3}) // pre-boxed: the payload's own boxing is not comm's cost
	allocs := testing.AllocsPerRun(1000, func() {
		w.Send(0, 0, 1, payload)
		w.Recv(0, 0, 1)
	})
	if allocs != 0 {
		t.Errorf("disabled-watchdog send/recv pair allocates %g objects, want 0", allocs)
	}
}

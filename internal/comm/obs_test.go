package comm

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// The recorder hooks must count every point-to-point message and every
// collective, with bytes conserved between the send and receive sides.
func TestWorldRecorderCounts(t *testing.T) {
	const P = 4
	w := NewWorld(P)
	rec := obs.NewRecorder(P)
	w.SetRecorder(rec)
	if w.Recorder() != rec {
		t.Fatal("Recorder() did not return the attached recorder")
	}

	w.Run(func(rank int) {
		// Ring exchange: each rank sends 10 int64s to the next rank.
		next := (rank + 1) % P
		prev := (rank + P - 1) % P
		payload := make([]int64, 10)
		w.Send(rank, next, 7, payload)
		got := w.Recv(rank, prev, 7).([]int64)
		if len(got) != 10 {
			t.Errorf("rank %d: got %d elems", rank, len(got))
		}
		w.BarrierRank(rank)
		sum := Allreduce(w, rank, int64(rank), SumInt64)
		if sum != P*(P-1)/2 {
			t.Errorf("rank %d: allreduce = %d", rank, sum)
		}
	})

	s := rec.Snapshot()
	if s.TotalSentBytes != s.TotalRecvdBytes {
		t.Errorf("sent %d bytes but received %d", s.TotalSentBytes, s.TotalRecvdBytes)
	}
	if s.TotalSentMsgs != s.TotalRecvdMsgs {
		t.Errorf("sent %d msgs but received %d", s.TotalSentMsgs, s.TotalRecvdMsgs)
	}
	// Pairwise conservation: what src posted to dst, dst consumed from src.
	for src := 0; src < P; src++ {
		for dst := 0; dst < P; dst++ {
			if s.SendBytes[src][dst] != s.RecvBytes[dst][src] {
				t.Errorf("pair (%d -> %d): sent %d, received %d",
					src, dst, s.SendBytes[src][dst], s.RecvBytes[dst][src])
			}
		}
	}
	// The ring leg alone moved 10 int64s per rank; with the Allreduce's
	// internal gather/bcast on top the totals must be strictly larger.
	if s.TotalSentBytes <= int64(P*10*8) {
		t.Errorf("total bytes %d do not include collective traffic", s.TotalSentBytes)
	}
	// Every rank participated in the Allgather (gather+bcast) collectives.
	for _, m := range s.PerRank {
		if m.Collectives == 0 {
			t.Errorf("rank %d recorded no collectives", m.Rank)
		}
	}
}

// Collective accounting convention: exactly one CountCollective per rank
// per collective (two for the composed Allgather/Allreduce), recorded with
// the rank's own payload size — so per-rank participation counts are
// decomposition-independent and conservation extends to collectives.
func TestCollectiveAccountingConvention(t *testing.T) {
	const P = 4
	for _, tc := range []struct {
		name string
		body func(w *World, rank int)
		want int64 // collectives recorded per rank
	}{
		{"gather", func(w *World, rank int) { Gather(w, rank, 1, int64(rank)) }, 1},
		{"bcast", func(w *World, rank int) { Bcast(w, rank, 2, int64(7)) }, 1},
		{"allgather", func(w *World, rank int) { Allgather(w, rank, int64(rank)) }, 2},
		{"allreduce", func(w *World, rank int) { Allreduce(w, rank, int64(1), SumInt64) }, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := NewWorld(P)
			rec := obs.NewRecorder(P)
			w.SetRecorder(rec)
			if err := w.Run(func(rank int) { tc.body(w, rank) }); err != nil {
				t.Fatal(err)
			}
			s := rec.Snapshot()
			for _, m := range s.PerRank {
				if m.Collectives != tc.want {
					t.Errorf("rank %d recorded %d collectives, want %d", m.Rank, m.Collectives, tc.want)
				}
				if m.CollectiveBytes <= 0 {
					t.Errorf("rank %d recorded %d collective bytes", m.Rank, m.CollectiveBytes)
				}
			}
			// The point-to-point legs under the collectives stay conserved.
			if s.TotalSentMsgs != s.TotalRecvdMsgs || s.TotalSentBytes != s.TotalRecvdBytes {
				t.Errorf("conservation broken: %d/%d msgs, %d/%d bytes",
					s.TotalSentMsgs, s.TotalRecvdMsgs, s.TotalSentBytes, s.TotalRecvdBytes)
			}
		})
	}
}

// BarrierRank must record wait time for the rank that arrives early.
func TestBarrierRankRecordsWait(t *testing.T) {
	w := NewWorld(2)
	rec := obs.NewRecorder(2)
	w.SetRecorder(rec)
	w.Run(func(rank int) {
		if rank == 1 {
			time.Sleep(20 * time.Millisecond)
		}
		w.BarrierRank(rank)
	})
	s := rec.Snapshot()
	if s.PerRank[0].BarrierWait < 10*time.Millisecond {
		t.Errorf("rank 0 barrier wait %v, want >= 10ms", s.PerRank[0].BarrierWait)
	}
	if s.PerRank[1].BarrierWait > 15*time.Millisecond {
		t.Errorf("rank 1 (late arriver) barrier wait %v, want small", s.PerRank[1].BarrierWait)
	}
}

// BarrierRank without a recorder must still synchronize.
func TestBarrierRankNoRecorder(t *testing.T) {
	w := NewWorld(3)
	w.Run(func(rank int) {
		w.BarrierRank(rank)
	})
}

func TestSetRecorderSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size-mismatched recorder did not panic")
		}
	}()
	NewWorld(2).SetRecorder(obs.NewRecorder(3))
}

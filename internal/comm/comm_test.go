package comm

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewWorldPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewWorld(0)
}

func TestRunExecutesAllRanks(t *testing.T) {
	w := NewWorld(8)
	var count int32
	seen := make([]int32, 8)
	w.Run(func(rank int) {
		atomic.AddInt32(&count, 1)
		atomic.StoreInt32(&seen[rank], 1)
	})
	if count != 8 {
		t.Errorf("ran %d ranks, want 8", count)
	}
	for r, s := range seen {
		if s != 1 {
			t.Errorf("rank %d did not run", r)
		}
	}
}

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(rank int) {
		if rank == 0 {
			w.Send(0, 1, 7, []int{1, 2, 3})
		} else {
			got := w.Recv(1, 0, 7).([]int)
			if len(got) != 3 || got[2] != 3 {
				t.Errorf("got %v", got)
			}
		}
	})
}

func TestPairwiseOrdering(t *testing.T) {
	w := NewWorld(2)
	const n = 100
	w.Run(func(rank int) {
		if rank == 0 {
			for i := 0; i < n; i++ {
				w.Send(0, 1, 1, i)
			}
		} else {
			for i := 0; i < n; i++ {
				got := w.Recv(1, 0, 1).(int)
				if got != i {
					t.Errorf("message %d arrived as %d", i, got)
					return
				}
			}
		}
	})
}

func TestRecvTagMismatchPanics(t *testing.T) {
	w := NewWorld(2)
	w.Send(0, 1, 5, "x")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on tag mismatch")
		}
	}()
	w.Recv(1, 0, 6)
}

func TestRecvTimeout(t *testing.T) {
	w := NewWorld(2)
	if _, err := w.RecvTimeout(1, 0, 0, 10*time.Millisecond); err == nil {
		t.Error("expected timeout error")
	}
	w.Send(0, 1, 3, 42)
	v, err := w.RecvTimeout(1, 0, 3, time.Second)
	if err != nil || v.(int) != 42 {
		t.Errorf("got %v, %v", v, err)
	}
}

func TestSendrecvRing(t *testing.T) {
	const p = 5
	w := NewWorld(p)
	results := make([]int, p)
	w.Run(func(rank int) {
		dst := (rank + 1) % p
		src := (rank - 1 + p) % p
		got := w.Sendrecv(rank, dst, src, 9, rank).(int)
		results[rank] = got
	})
	for r := 0; r < p; r++ {
		want := (r - 1 + p) % p
		if results[r] != want {
			t.Errorf("rank %d received %d, want %d", r, results[r], want)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const p = 6
	w := NewWorld(p)
	var phase1 int32
	fail := make(chan string, p)
	w.Run(func(rank int) {
		if rank == 0 {
			time.Sleep(20 * time.Millisecond) // straggler
		}
		atomic.AddInt32(&phase1, 1)
		w.Barrier()
		if got := atomic.LoadInt32(&phase1); got != p {
			fail <- "barrier released before all ranks arrived"
		}
	})
	select {
	case msg := <-fail:
		t.Error(msg)
	default:
	}
}

func TestBarrierReusable(t *testing.T) {
	const p = 4
	w := NewWorld(p)
	var counter int32
	w.Run(func(rank int) {
		for round := 0; round < 10; round++ {
			atomic.AddInt32(&counter, 1)
			w.Barrier()
			want := int32((round + 1) * p)
			if got := atomic.LoadInt32(&counter); got != want {
				t.Errorf("round %d: counter %d, want %d", round, got, want)
				return
			}
			w.Barrier()
		}
	})
}

func TestGather(t *testing.T) {
	const p = 5
	w := NewWorld(p)
	var mu sync.Mutex
	var rootResult []int
	w.Run(func(rank int) {
		res := Gather(w, rank, 2, rank*10)
		if rank == 2 {
			mu.Lock()
			rootResult = res
			mu.Unlock()
		} else if res != nil {
			t.Errorf("non-root rank %d got %v", rank, res)
		}
	})
	for r := 0; r < p; r++ {
		if rootResult[r] != r*10 {
			t.Errorf("gathered[%d] = %d", r, rootResult[r])
		}
	}
}

func TestBcast(t *testing.T) {
	const p = 7
	w := NewWorld(p)
	got := make([]string, p)
	w.Run(func(rank int) {
		v := "default"
		if rank == 3 {
			v = "hello"
		}
		got[rank] = Bcast(w, rank, 3, v)
	})
	for r := 0; r < p; r++ {
		if got[r] != "hello" {
			t.Errorf("rank %d got %q", r, got[r])
		}
	}
}

func TestAllgather(t *testing.T) {
	const p = 4
	w := NewWorld(p)
	results := make([][]int, p)
	w.Run(func(rank int) {
		results[rank] = Allgather(w, rank, rank+1)
	})
	for r := 0; r < p; r++ {
		for i := 0; i < p; i++ {
			if results[r][i] != i+1 {
				t.Errorf("rank %d: allgather[%d] = %d", r, i, results[r][i])
			}
		}
	}
}

func TestAllreduce(t *testing.T) {
	const p = 6
	w := NewWorld(p)
	results := make([]int64, p)
	w.Run(func(rank int) {
		results[rank] = Allreduce(w, rank, int64(rank), SumInt64)
	})
	want := int64(0 + 1 + 2 + 3 + 4 + 5)
	for r, v := range results {
		if v != want {
			t.Errorf("rank %d: allreduce = %d, want %d", r, v, want)
		}
	}
}

func TestAllreduceMaxDuration(t *testing.T) {
	const p = 3
	w := NewWorld(p)
	results := make([]time.Duration, p)
	w.Run(func(rank int) {
		results[rank] = Allreduce(w, rank, time.Duration(rank)*time.Second, MaxDuration)
	})
	for r, v := range results {
		if v != 2*time.Second {
			t.Errorf("rank %d: max = %v", r, v)
		}
	}
}

func TestManyRanksStress(t *testing.T) {
	const p = 32
	w := NewWorld(p)
	rng := rand.New(rand.NewSource(23))
	delays := make([]time.Duration, p)
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(3)) * time.Millisecond
	}
	sums := make([]int64, p)
	w.Run(func(rank int) {
		time.Sleep(delays[rank])
		// Everyone exchanges with everyone via allgather; then reduce.
		all := Allgather(w, rank, int64(rank*rank))
		var s int64
		for _, v := range all {
			s += v
		}
		sums[rank] = s
	})
	var want int64
	for r := 0; r < p; r++ {
		want += int64(r * r)
	}
	for r, s := range sums {
		if s != want {
			t.Errorf("rank %d: sum %d, want %d", r, s, want)
		}
	}
}

func TestRankRangeChecks(t *testing.T) {
	w := NewWorld(2)
	for _, fn := range []func(){
		func() { w.Send(0, 5, 0, nil) },
		func() { w.Send(-1, 0, 0, nil) },
		func() { w.Recv(0, 9, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range rank")
				}
			}()
			fn()
		}()
	}
}

// A persistent tessellation session reuses one world across many
// collective passes; repeated Run calls must leave no residue — mailboxes
// drained, barrier generations consistent, the watchdog re-armed — so a
// later pass behaves exactly like a first one.
func TestWorldReusedAcrossRuns(t *testing.T) {
	w := NewWorld(4, WithWatchdog(2*time.Second))
	for pass := 0; pass < 5; pass++ {
		var sum int64
		err := w.Run(func(rank int) {
			next := (rank + 1) % 4
			w.Send(rank, next, 9, rank*10+pass)
			got := w.Recv(rank, (rank+3)%4, 9).(int)
			w.BarrierRank(rank)
			total := Allreduce(w, rank, int64(got), SumInt64)
			if rank == 0 {
				atomic.StoreInt64(&sum, total)
			}
		})
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		want := int64(0+10+20+30) + int64(4*pass)
		if got := atomic.LoadInt64(&sum); got != want {
			t.Errorf("pass %d: allreduce sum %d, want %d", pass, got, want)
		}
	}
}

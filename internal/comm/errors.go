package comm

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// ErrWorldAborted is the sentinel every unblocked operation's error chain
// ends in once a world has been aborted: errors.Is(err, ErrWorldAborted)
// identifies "this rank did not fail, the world died under it" regardless
// of the original cause (a peer's panic, a stall, an explicit Abort).
var ErrWorldAborted = errors.New("comm: world aborted")

// AbortError is the structured error carried by an aborted world: the
// original cause (typically a *RankError or *StallError) wrapped so that
// both errors.Is(err, ErrWorldAborted) and errors.As against the cause
// type succeed.
type AbortError struct {
	// Cause is the first error that aborted the world.
	Cause error
}

func (e *AbortError) Error() string {
	if e.Cause == nil {
		return ErrWorldAborted.Error()
	}
	return ErrWorldAborted.Error() + ": " + e.Cause.Error()
}

// Is matches the ErrWorldAborted sentinel.
func (e *AbortError) Is(target error) bool { return target == ErrWorldAborted }

// Unwrap exposes the cause for errors.As / errors.Is chains.
func (e *AbortError) Unwrap() error { return e.Cause }

// RankError reports the failure of one rank: the value it panicked with
// (or the error it returned to the driver) and, for panics, the stack of
// the failing goroutine. World.Run converts contained panics into this
// type so a single rank's crash becomes an error return instead of a
// process exit.
type RankError struct {
	// Rank is the failing rank.
	Rank int
	// Value is the recovered panic value, or the error the rank reported.
	Value any
	// Stack is the failing goroutine's stack trace (nil when the rank
	// reported an error instead of panicking).
	Stack []byte
}

func (e *RankError) Error() string {
	return fmt.Sprintf("comm: rank %d failed: %v", e.Rank, e.Value)
}

// Unwrap exposes Value when it is itself an error, so injected faults and
// pipeline errors stay matchable through the containment layer.
func (e *RankError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// RankWait is one rank's row of a stall dump: what the rank was doing
// when the watchdog declared the world stalled.
type RankWait struct {
	Rank int
	// State is "running", "exited", or the blocked operation: "send",
	// "recv", or "barrier".
	State string
	// Peer is the rank waited on (-1 when not applicable: running,
	// exited, barrier).
	Peer int
	// Tag is the message tag of a blocked send/recv (0 otherwise).
	Tag int
	// For is how long the rank had been blocked at the time of the dump.
	For time.Duration
}

func (rw RankWait) String() string {
	switch rw.State {
	case "running", "exited":
		return fmt.Sprintf("rank %d: %s", rw.Rank, rw.State)
	case "barrier":
		return fmt.Sprintf("rank %d: blocked %v in barrier", rw.Rank, rw.For.Round(time.Millisecond))
	default:
		return fmt.Sprintf("rank %d: blocked %v in %s (peer %d, tag %d)",
			rw.Rank, rw.For.Round(time.Millisecond), rw.State, rw.Peer, rw.Tag)
	}
}

// StallError is the watchdog's diagnosis of a global stall: every rank
// blocked in an unbounded communication operation (or exited) with no
// progress for the configured timeout. Waits is the wait-for graph dump,
// one row per rank.
type StallError struct {
	// Timeout is the no-progress window that triggered the abort.
	Timeout time.Duration
	// Waits holds one row per rank, in rank order.
	Waits []RankWait
}

func (e *StallError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "comm: global stall: no progress for %v; wait-for graph:", e.Timeout)
	for _, rw := range e.Waits {
		b.WriteString("\n  ")
		b.WriteString(rw.String())
	}
	return b.String()
}

// Package comm is the message-passing substrate that stands in for MPI in
// this reproduction. A World of P ranks runs one goroutine per rank; each
// rank owns its data privately and all inter-rank data movement goes through
// explicit messages, mirroring the distributed-memory discipline of the
// paper's Blue Gene/P runs.
//
// Payloads are passed by reference for speed, but by convention the sender
// relinquishes ownership of a sent buffer — the helpers in the diy package
// always send freshly allocated slices, so no two ranks ever mutate the same
// memory. Collectives (Barrier, Allreduce, Allgather, Gather, Bcast) are
// built from the same point-to-point layer.
//
// # Failure model
//
// Because the tessellation runs in situ inside a host simulation, the
// substrate must never take the whole process down or hang it silently:
//
//   - A world can be aborted (explicitly via Abort, or implicitly when a
//     rank's body panics inside Run, or by the stall watchdog). Aborting
//     closes a world-level done channel that every blocking operation —
//     Send, Recv, the collectives, the barrier — selects on, so one rank's
//     failure unblocks every other rank instead of deadlocking it.
//   - Run recovers per-rank panics into a *RankError (rank, value, stack),
//     aborts the world so peers unwind, and returns the abort cause as an
//     error. The process survives.
//   - An opt-in stall watchdog (WithWatchdog) samples per-rank blocked
//     state and aborts with a *StallError carrying a wait-for-graph dump
//     when no rank has made progress for the configured timeout.
//
// Operations that unblock due to an abort panic with the world's
// *AbortError; Run recognizes and swallows those secondary unwinds, so the
// only error that surfaces is the original cause.
//
// The //tess:abortable marker below opts this package into the donesel
// analyzer: every blocking channel operation here must select on the done
// channel (or a default), so the abort guarantee stays mechanical.
//
//tess:abortable
package comm

import (
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/obs"
)

// DefaultMailboxCapacity is the per-pair message queue depth used when
// NewWorld is not given WithMailboxCapacity. Sends block (abortably) when
// the pair's queue is full, so "post sends first, then receive" patterns
// are deadlock-free only while each rank's outstanding traffic to one peer
// stays within this bound.
const DefaultMailboxCapacity = 64

// World is a communicator over Size ranks. Create one with NewWorld, then
// launch one goroutine per rank with Run.
type World struct {
	size     int
	capacity int
	// mail[dst][src] is the queue of messages from src to dst. Per-pair
	// queues preserve MPI's pairwise ordering guarantee.
	mail []map[int]chan message

	barrier *barrier

	// done is closed by the first Abort; every blocking operation selects
	// on it so an aborted world unblocks all ranks.
	done      chan struct{}
	abortOnce sync.Once
	// abortErr is written exactly once (inside abortOnce, before done is
	// closed, which publishes it) and read only after observing done
	// closed.
	abortErr *AbortError

	// wd is the opt-in stall watchdog (nil when disabled: the hot path
	// then costs one pointer test per operation).
	wd *watchdog

	// sendDelay, when set (fault injection), returns an artificial
	// delivery delay applied before each Send enqueues its message.
	sendDelay func(src, dst, tag int) time.Duration

	// rec, when set, counts every message and collective through the
	// observability layer. A nil recorder costs one pointer test per
	// operation (obs methods no-op on nil receivers).
	rec *obs.Recorder
}

type message struct {
	tag     int
	payload any
}

// Option configures a World at construction time.
type Option func(*World)

// WithMailboxCapacity sets the per-pair message queue depth (default
// DefaultMailboxCapacity). It panics if n <= 0: a zero-capacity queue
// would make every "send first, then receive" pattern a rendezvous and
// deadlock the exchange idioms this package's clients rely on.
func WithMailboxCapacity(n int) Option {
	if n <= 0 {
		panic(fmt.Sprintf("comm: mailbox capacity %d", n))
	}
	return func(w *World) { w.capacity = n }
}

// WithWatchdog arms the stall watchdog: a monitor goroutine (started by
// Run) that samples which ranks are blocked in which operation and aborts
// the world with a *StallError wait-for dump when every rank has been
// blocked (or exited) with no progress for the given timeout. Timeout
// must be positive.
//
// The watchdog only ever fires on a genuine deadlock: it requires every
// rank to sit in an unbounded blocking operation (send, recv, or
// rank-attributed barrier) or to have exited, continuously, for the whole
// window. A rank that is merely slow — computing, sleeping, or in a
// timeout-bounded wait — counts as running and suppresses the abort.
func WithWatchdog(timeout time.Duration) Option {
	if timeout <= 0 {
		panic(fmt.Sprintf("comm: watchdog timeout %v", timeout))
	}
	return func(w *World) { w.wd = newWatchdog(w, timeout) }
}

// WithSendDelay installs a delivery-delay hook consulted before every
// Send enqueues its message: the fault-injection layer uses it to model
// slow links deterministically. The hook runs on the sending rank's
// goroutine; a nil hook or zero return means no delay.
func WithSendDelay(f func(src, dst, tag int) time.Duration) Option {
	return func(w *World) { w.sendDelay = f }
}

// NewWorld returns a communicator for size ranks. It panics if size <= 0.
func NewWorld(size int, opts ...Option) *World {
	if size <= 0 {
		panic(fmt.Sprintf("comm: world size %d", size))
	}
	w := &World{
		size:     size,
		capacity: DefaultMailboxCapacity,
		barrier:  newBarrier(size),
		done:     make(chan struct{}),
	}
	for _, opt := range opts {
		opt(w)
	}
	w.mail = make([]map[int]chan message, size)
	for dst := 0; dst < size; dst++ {
		m := make(map[int]chan message, size)
		for src := 0; src < size; src++ {
			m[src] = make(chan message, w.capacity)
		}
		w.mail[dst] = m
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// MailboxCapacity returns the per-pair message queue depth.
func (w *World) MailboxCapacity() int { return w.capacity }

// SetRecorder attaches an observability recorder sized for this world;
// pass nil to disable. Set it before Run starts — the field is read
// concurrently by every rank afterwards. It panics on a size mismatch,
// which indicates the recorder was built for a different world.
func (w *World) SetRecorder(r *obs.Recorder) {
	if r != nil && r.Ranks() != w.size {
		panic(fmt.Sprintf("comm: recorder for %d ranks attached to world of %d", r.Ranks(), w.size))
	}
	w.rec = r
}

// Recorder returns the attached observability recorder (nil when disabled).
func (w *World) Recorder() *obs.Recorder { return w.rec }

// Abort kills the world: the first call records cause (wrapped in an
// *AbortError) and unblocks every rank waiting in a Send, Recv,
// collective, or barrier; those operations unwind their goroutines by
// panicking with the *AbortError, which Run recognizes and swallows.
// Later calls are no-ops. A nil cause records the bare sentinel.
func (w *World) Abort(cause error) {
	w.abortOnce.Do(func() {
		w.abortErr = &AbortError{Cause: cause}
		close(w.done)
		w.barrier.abort()
	})
}

// Err returns the abort error (*AbortError) if the world has been
// aborted, nil otherwise.
func (w *World) Err() error {
	select {
	case <-w.done:
		return w.abortErr
	default:
		return nil
	}
}

// Done exposes the abort channel: closed once the world is aborted.
// Long-running rank bodies can select on it to stop early.
func (w *World) Done() <-chan struct{} { return w.done }

// abortUnwind panics with the world's abort error; called only after
// observing done closed, so Err is never nil here.
func (w *World) abortUnwind() {
	panic(w.abortErr)
}

// Run executes body(rank) on size goroutines, one per rank, and waits for
// all of them to finish. It is the moral equivalent of mpiexec, with the
// fault containment mpiexec does not give you: a panic in one rank's body
// is recovered into a *RankError, the world is aborted so every other
// rank unblocks, and the abort cause is returned. Run returns nil when
// all ranks complete normally. (Callers that predate the failure model
// may ignore the return value; a fault-free run behaves exactly as
// before.)
func (w *World) Run(body func(rank int)) error {
	if w.wd != nil {
		w.wd.reset()
		stopMonitor := w.wd.start()
		defer stopMonitor()
	}
	var wg sync.WaitGroup
	wg.Add(w.size)
	for r := 0; r < w.size; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if w.wd != nil {
					w.wd.markExited(rank)
				}
				v := recover()
				if v == nil {
					return
				}
				if ae, ok := v.(*AbortError); ok && ae == w.Err() {
					return // secondary unwind of an already-aborted world
				}
				w.Abort(&RankError{Rank: rank, Value: v, Stack: debug.Stack()})
			}()
			body(rank)
		}(r)
	}
	wg.Wait()
	return w.Err()
}

// Send delivers payload from rank src to rank dst with the given tag.
// It blocks (abortably) when the per-pair queue is full. A self-send into
// a full queue is a guaranteed deadlock — the sender is the only consumer
// of its own mailbox — and panics immediately with a diagnostic instead
// of hanging.
func (w *World) Send(src, dst, tag int, payload any) {
	w.checkRank(src)
	w.checkRank(dst)
	if w.sendDelay != nil {
		if d := w.sendDelay(src, dst, tag); d > 0 {
			w.sleepAbortable(d)
		}
	}
	if w.rec != nil {
		w.rec.CountSend(src, dst, obs.PayloadBytes(payload))
	}
	ch := w.mail[dst][src]
	select {
	case ch <- message{tag: tag, payload: payload}:
		return
	default:
	}
	// Queue full: the blocking path.
	if src == dst {
		panic(fmt.Sprintf("comm: rank %d self-send overflow: its own mailbox is full "+
			"(capacity %d, tag %d) and the sender is the queue's only consumer — guaranteed deadlock; "+
			"drain with Recv before posting more, or raise WithMailboxCapacity", src, w.capacity, tag))
	}
	w.wd.enterWait(src, waitSend, dst, tag)
	select {
	case ch <- message{tag: tag, payload: payload}:
		w.wd.exitWait(src)
	case <-w.done:
		w.wd.exitWait(src)
		w.abortUnwind()
	}
}

// SendTimeout is Send with a deadline: it returns an error instead of
// blocking longer than d on a full queue, and returns the world's abort
// error if the world dies while it waits. The message is counted (and
// ownership transfers) only when it is actually enqueued. Self-send
// overflow is an immediate error, as in Send.
func (w *World) SendTimeout(src, dst, tag int, payload any, d time.Duration) error {
	w.checkRank(src)
	w.checkRank(dst)
	ch := w.mail[dst][src]
	enqueued := false
	select {
	case ch <- message{tag: tag, payload: payload}:
		enqueued = true
	default:
	}
	if !enqueued {
		if src == dst {
			return fmt.Errorf("comm: rank %d self-send overflow: mailbox full (capacity %d, tag %d) with no other consumer",
				src, w.capacity, tag)
		}
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case ch <- message{tag: tag, payload: payload}:
		case <-w.done:
			return w.Err()
		case <-timer.C:
			return fmt.Errorf("comm: rank %d timed out sending to %d (tag %d) after %v: queue full", src, dst, tag, d)
		}
	}
	if w.rec != nil {
		w.rec.CountSend(src, dst, obs.PayloadBytes(payload))
	}
	return nil
}

// Recv receives the next message from src addressed to dst with the given
// tag. Messages between a fixed (src, dst) pair are received in send order;
// a tag mismatch panics, as it indicates a protocol error in the caller
// (this substrate has no out-of-order matching, and none is needed by DIY's
// regular exchange patterns). The receive is counted before the tag check,
// so the byte/message conservation invariant (Σ sent == Σ received per
// pair) holds even on the error path. If the world is aborted while Recv
// blocks, it unwinds with the abort error instead of hanging.
func (w *World) Recv(dst, src, tag int) any {
	w.checkRank(src)
	w.checkRank(dst)
	ch := w.mail[dst][src]
	var msg message
	select {
	case msg = <-ch:
	default:
		w.wd.enterWait(dst, waitRecv, src, tag)
		select {
		case msg = <-ch:
			w.wd.exitWait(dst)
		case <-w.done:
			w.wd.exitWait(dst)
			w.abortUnwind()
		}
	}
	if w.rec != nil {
		w.rec.CountRecv(dst, src, obs.PayloadBytes(msg.payload))
	}
	if msg.tag != tag {
		panic(fmt.Sprintf("comm: rank %d expected tag %d from %d, got %d", dst, tag, src, msg.tag))
	}
	return msg.payload
}

// RecvTimeout is Recv with a deadline, used by tests and diagnostics to
// bound a wait. Like Recv it counts a consumed message before checking the
// tag — a mismatched message still moved bytes, and skipping the count
// would break the conservation invariant — and the mismatch error carries
// the dropped payload so the protocol slip is diagnosable. A timed-out
// wait does not register with the stall watchdog (it self-resolves, so it
// is not evidence of deadlock).
func (w *World) RecvTimeout(dst, src, tag int, d time.Duration) (any, error) {
	w.checkRank(src)
	w.checkRank(dst)
	ch := w.mail[dst][src]
	var msg message
	select {
	case msg = <-ch:
	default:
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case msg = <-ch:
		case <-w.done:
			return nil, w.Err()
		case <-timer.C:
			return nil, fmt.Errorf("comm: rank %d timed out waiting for %d (tag %d)", dst, src, tag)
		}
	}
	if w.rec != nil {
		w.rec.CountRecv(dst, src, obs.PayloadBytes(msg.payload))
	}
	if msg.tag != tag {
		return nil, fmt.Errorf("comm: rank %d expected tag %d from %d, got %d; dropping payload %T(%v)",
			dst, tag, src, msg.tag, msg.payload, msg.payload)
	}
	return msg.payload, nil
}

// Sendrecv sends to dst and receives from src. Posting the send first
// keeps the pattern deadlock-free as long as the pair queue has space
// (the send only blocks once the per-pair queue — see
// WithMailboxCapacity — is full); a blocked send remains abortable, so a
// protocol slip degrades into an abort diagnostic rather than a silent
// hang.
func (w *World) Sendrecv(rank, dst, src, tag int, payload any) any {
	w.Send(rank, dst, tag, payload)
	return w.Recv(rank, src, tag)
}

// sleepAbortable sleeps for d or until the world aborts, whichever comes
// first (an injected delay must not outlive the world it delays).
func (w *World) sleepAbortable(d time.Duration) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-w.done:
		w.abortUnwind()
	}
}

func (w *World) checkRank(r int) {
	if r < 0 || r >= w.size {
		panic(fmt.Sprintf("comm: rank %d out of range [0, %d)", r, w.size))
	}
}

// Barrier blocks until all ranks have entered it (or unwinds if the world
// aborts). Use BarrierRank when the caller's rank is known so the wait
// time lands in the observability layer and the stall watchdog can
// attribute the wait.
func (w *World) Barrier() {
	if !w.barrier.await() {
		w.abortUnwind()
	}
}

// BarrierRank is Barrier with the calling rank identified: the time this
// rank spends blocked (its load-imbalance exposure) is recorded as barrier
// wait when a recorder is attached, and the wait is visible to the stall
// watchdog.
func (w *World) BarrierRank(rank int) {
	w.checkRank(rank)
	if w.rec == nil {
		w.wd.enterWait(rank, waitBarrier, -1, 0)
		ok := w.barrier.await()
		w.wd.exitWait(rank)
		if !ok {
			w.abortUnwind()
		}
		return
	}
	t0 := time.Now()
	w.wd.enterWait(rank, waitBarrier, -1, 0)
	ok := w.barrier.await()
	w.wd.exitWait(rank)
	if !ok {
		w.abortUnwind()
	}
	w.rec.AddBarrierWait(rank, time.Since(t0))
}

type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	size    int
	count   int
	gen     int
	aborted bool
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await returns true when the barrier completed and false when the world
// was aborted while waiting (callers unwind).
func (b *barrier) await() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		return false
	}
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return true
	}
	for gen == b.gen && !b.aborted {
		b.cond.Wait()
	}
	return gen != b.gen // generation advanced: completed before any abort
}

// abort wakes every waiter; they observe the flag and unwind.
func (b *barrier) abort() {
	b.mu.Lock()
	b.aborted = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Collective tags occupy a reserved range well above user tags.
const (
	tagGather = 1 << 20
	tagBcast  = 1<<20 + 1
)

// Collective accounting convention: every rank records exactly one
// CountCollective per collective operation, firing when the rank's role
// in the transfer completes, with the byte size of the rank's own payload
// in that operation — its contributed value for Gather (root included),
// the broadcast value for Bcast. Allgather and Allreduce are composed of
// one Gather plus one Bcast and therefore record two participations per
// rank.

// Gather collects each rank's value at root, in rank order. Non-root ranks
// receive nil.
func Gather[T any](w *World, rank, root int, value T) []T {
	if rank != root {
		w.Send(rank, root, tagGather, value)
		if w.rec != nil {
			w.rec.CountCollective(rank, obs.PayloadBytes(value))
		}
		return nil
	}
	out := make([]T, w.size)
	out[root] = value
	for src := 0; src < w.size; src++ {
		if src == root {
			continue
		}
		out[src] = w.Recv(root, src, tagGather).(T)
	}
	if w.rec != nil {
		w.rec.CountCollective(rank, obs.PayloadBytes(value))
	}
	return out
}

// Bcast distributes root's value to every rank and returns it.
func Bcast[T any](w *World, rank, root int, value T) T {
	if rank == root {
		for dst := 0; dst < w.size; dst++ {
			if dst != root {
				w.Send(root, dst, tagBcast, value)
			}
		}
		if w.rec != nil {
			w.rec.CountCollective(rank, obs.PayloadBytes(value))
		}
		return value
	}
	v := w.Recv(rank, root, tagBcast).(T)
	if w.rec != nil {
		w.rec.CountCollective(rank, obs.PayloadBytes(v))
	}
	return v
}

// Allgather collects each rank's value on every rank, in rank order.
func Allgather[T any](w *World, rank int, value T) []T {
	all := Gather(w, rank, 0, value)
	return Bcast(w, rank, 0, all)
}

// Allreduce combines every rank's value with op and returns the result on
// all ranks. Evaluation is a left fold in fixed ascending rank order —
// identical on every rank — so op must be associative for the result to
// be grouping-independent, but it need not be commutative: operands are
// never reordered.
func Allreduce[T any](w *World, rank int, value T, op func(a, b T) T) T {
	all := Allgather(w, rank, value)
	acc := all[0]
	for _, v := range all[1:] {
		acc = op(acc, v)
	}
	return acc
}

// MaxDuration is an Allreduce operator for the common "slowest rank"
// timing reduction used by the performance harness.
func MaxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// SumInt64 is an Allreduce operator for totals.
func SumInt64(a, b int64) int64 { return a + b }

// Package comm is the message-passing substrate that stands in for MPI in
// this reproduction. A World of P ranks runs one goroutine per rank; each
// rank owns its data privately and all inter-rank data movement goes through
// explicit messages, mirroring the distributed-memory discipline of the
// paper's Blue Gene/P runs.
//
// Payloads are passed by reference for speed, but by convention the sender
// relinquishes ownership of a sent buffer — the helpers in the diy package
// always send freshly allocated slices, so no two ranks ever mutate the same
// memory. Collectives (Barrier, Allreduce, Allgather, Gather, Bcast) are
// built from the same point-to-point layer.
package comm

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// World is a communicator over Size ranks. Create one with NewWorld, then
// launch one goroutine per rank with Run.
type World struct {
	size int
	// mail[dst][src] is the queue of messages from src to dst. Per-pair
	// queues preserve MPI's pairwise ordering guarantee.
	mail []map[int]chan message

	barrier *barrier

	// rec, when set, counts every message and collective through the
	// observability layer. A nil recorder costs one pointer test per
	// operation (obs methods no-op on nil receivers).
	rec *obs.Recorder
}

type message struct {
	tag     int
	payload any
}

// NewWorld returns a communicator for size ranks. It panics if size <= 0.
func NewWorld(size int) *World {
	if size <= 0 {
		panic(fmt.Sprintf("comm: world size %d", size))
	}
	w := &World{size: size, barrier: newBarrier(size)}
	w.mail = make([]map[int]chan message, size)
	for dst := 0; dst < size; dst++ {
		m := make(map[int]chan message, size)
		for src := 0; src < size; src++ {
			m[src] = make(chan message, 64)
		}
		w.mail[dst] = m
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// SetRecorder attaches an observability recorder sized for this world;
// pass nil to disable. Set it before Run starts — the field is read
// concurrently by every rank afterwards. It panics on a size mismatch,
// which indicates the recorder was built for a different world.
func (w *World) SetRecorder(r *obs.Recorder) {
	if r != nil && r.Ranks() != w.size {
		panic(fmt.Sprintf("comm: recorder for %d ranks attached to world of %d", r.Ranks(), w.size))
	}
	w.rec = r
}

// Recorder returns the attached observability recorder (nil when disabled).
func (w *World) Recorder() *obs.Recorder { return w.rec }

// Run executes body(rank) on size goroutines, one per rank, and waits for
// all of them to finish. It is the moral equivalent of mpiexec.
func (w *World) Run(body func(rank int)) {
	var wg sync.WaitGroup
	wg.Add(w.size)
	for r := 0; r < w.size; r++ {
		go func(rank int) {
			defer wg.Done()
			body(rank)
		}(r)
	}
	wg.Wait()
}

// Send delivers payload from rank src to rank dst with the given tag.
// It blocks only if the per-pair queue is full.
func (w *World) Send(src, dst, tag int, payload any) {
	w.checkRank(src)
	w.checkRank(dst)
	if w.rec != nil {
		w.rec.CountSend(src, dst, obs.PayloadBytes(payload))
	}
	w.mail[dst][src] <- message{tag: tag, payload: payload}
}

// Recv receives the next message from src addressed to dst with the given
// tag. Messages between a fixed (src, dst) pair are received in send order;
// a tag mismatch panics, as it indicates a protocol error in the caller
// (this substrate has no out-of-order matching, and none is needed by DIY's
// regular exchange patterns).
func (w *World) Recv(dst, src, tag int) any {
	w.checkRank(src)
	w.checkRank(dst)
	msg := <-w.mail[dst][src]
	if msg.tag != tag {
		panic(fmt.Sprintf("comm: rank %d expected tag %d from %d, got %d", dst, tag, src, msg.tag))
	}
	if w.rec != nil {
		w.rec.CountRecv(dst, src, obs.PayloadBytes(msg.payload))
	}
	return msg.payload
}

// RecvTimeout is Recv with a deadline, used by tests to detect deadlocks.
func (w *World) RecvTimeout(dst, src, tag int, d time.Duration) (any, error) {
	w.checkRank(src)
	w.checkRank(dst)
	select {
	case msg := <-w.mail[dst][src]:
		if msg.tag != tag {
			return nil, fmt.Errorf("comm: rank %d expected tag %d from %d, got %d", dst, tag, src, msg.tag)
		}
		if w.rec != nil {
			w.rec.CountRecv(dst, src, obs.PayloadBytes(msg.payload))
		}
		return msg.payload, nil
	case <-time.After(d):
		return nil, fmt.Errorf("comm: rank %d timed out waiting for %d (tag %d)", dst, src, tag)
	}
}

// Sendrecv sends to dst and receives from src in a deadlock-free order
// (sends are buffered, so post the send first).
func (w *World) Sendrecv(rank, dst, src, tag int, payload any) any {
	w.Send(rank, dst, tag, payload)
	return w.Recv(rank, src, tag)
}

func (w *World) checkRank(r int) {
	if r < 0 || r >= w.size {
		panic(fmt.Sprintf("comm: rank %d out of range [0, %d)", r, w.size))
	}
}

// Barrier blocks until all ranks have entered it. Use BarrierRank when the
// caller's rank is known so the wait time lands in the observability layer.
func (w *World) Barrier() { w.barrier.await() }

// BarrierRank is Barrier with the calling rank identified: the time this
// rank spends blocked (its load-imbalance exposure) is recorded as barrier
// wait when a recorder is attached.
func (w *World) BarrierRank(rank int) {
	w.checkRank(rank)
	if w.rec == nil {
		w.barrier.await()
		return
	}
	t0 := time.Now()
	w.barrier.await()
	w.rec.AddBarrierWait(rank, time.Since(t0))
}

type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	size  int
	count int
	gen   int
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
}

// Collective tags occupy a reserved range well above user tags.
const (
	tagGather = 1 << 20
	tagBcast  = 1<<20 + 1
)

// Gather collects each rank's value at root, in rank order. Non-root ranks
// receive nil.
func Gather[T any](w *World, rank, root int, value T) []T {
	if w.rec != nil {
		w.rec.CountCollective(rank, obs.PayloadBytes(value))
	}
	if rank != root {
		w.Send(rank, root, tagGather, value)
		return nil
	}
	out := make([]T, w.size)
	out[root] = value
	for src := 0; src < w.size; src++ {
		if src == root {
			continue
		}
		out[src] = w.Recv(root, src, tagGather).(T)
	}
	return out
}

// Bcast distributes root's value to every rank and returns it.
func Bcast[T any](w *World, rank, root int, value T) T {
	if rank == root {
		if w.rec != nil {
			w.rec.CountCollective(rank, obs.PayloadBytes(value))
		}
		for dst := 0; dst < w.size; dst++ {
			if dst != root {
				w.Send(root, dst, tagBcast, value)
			}
		}
		return value
	}
	v := w.Recv(rank, root, tagBcast).(T)
	if w.rec != nil {
		w.rec.CountCollective(rank, obs.PayloadBytes(v))
	}
	return v
}

// Allgather collects each rank's value on every rank, in rank order.
func Allgather[T any](w *World, rank int, value T) []T {
	all := Gather(w, rank, 0, value)
	return Bcast(w, rank, 0, all)
}

// Allreduce combines every rank's value with op (which must be associative
// and commutative) and returns the result on all ranks.
func Allreduce[T any](w *World, rank int, value T, op func(a, b T) T) T {
	all := Allgather(w, rank, value)
	acc := all[0]
	for _, v := range all[1:] {
		acc = op(acc, v)
	}
	return acc
}

// MaxDuration is an Allreduce operator for the common "slowest rank"
// timing reduction used by the performance harness.
func MaxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// SumInt64 is an Allreduce operator for totals.
func SumInt64(a, b int64) int64 { return a + b }

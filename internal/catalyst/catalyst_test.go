package catalyst

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cosmotools"
	"repro/internal/nbody"
)

func get(t *testing.T, srv *httptest.Server, path string, into any) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: content type %q", path, ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

func TestStatusEndpoint(t *testing.T) {
	s := NewServer()
	s.SetStatus(Status{Step: 42, TotalSteps: 100, Running: true, Particles: 512})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	var st Status
	get(t, srv, "/status", &st)
	if st.Step != 42 || st.TotalSteps != 100 || !st.Running || st.Particles != 512 {
		t.Errorf("status = %+v", st)
	}
}

func TestResultsEndpoints(t *testing.T) {
	s := NewServer()
	s.Publish(cosmotools.Result{Analysis: "tess", Step: 5, Summary: "a",
		Metrics: map[string]float64{"cells": 512}, Elapsed: 3 * time.Millisecond})
	s.Publish(cosmotools.Result{Analysis: "halo", Step: 5, Summary: "b"})
	s.Publish(cosmotools.Result{Analysis: "tess", Step: 10, Summary: "c"})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var all []map[string]any
	get(t, srv, "/results", &all)
	if len(all) != 3 {
		t.Fatalf("results = %d", len(all))
	}
	if all[0]["analysis"] != "tess" || all[0]["summary"] != "a" {
		t.Errorf("first result: %v", all[0])
	}
	if all[0]["elapsed_ms"].(float64) <= 0 {
		t.Errorf("elapsed not serialized: %v", all[0])
	}

	var latest []map[string]any
	get(t, srv, "/results/latest", &latest)
	if len(latest) != 2 {
		t.Fatalf("latest = %d entries", len(latest))
	}
	// Sorted by analysis name: halo, tess; tess entry is the step-10 one.
	if latest[0]["analysis"] != "halo" || latest[1]["summary"] != "c" {
		t.Errorf("latest: %v", latest)
	}

	var names []string
	get(t, srv, "/analyses", &names)
	if strings.Join(names, ",") != "halo,tess" {
		t.Errorf("analyses = %v", names)
	}
}

func TestEmptyServer(t *testing.T) {
	srv := httptest.NewServer(NewServer().Handler())
	defer srv.Close()
	var all []map[string]any
	get(t, srv, "/results", &all)
	if len(all) != 0 {
		t.Errorf("empty server returned %d results", len(all))
	}
	var names []string
	get(t, srv, "/analyses", &names)
	if len(names) != 0 {
		t.Errorf("empty server returned analyses %v", names)
	}
}

func TestConcurrentPublishAndRead(t *testing.T) {
	s := NewServer()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s.Publish(cosmotools.Result{Analysis: "tess", Step: i})
			s.SetStatus(Status{Step: i})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			resp, err := http.Get(srv.URL + "/results/latest")
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		}
	}()
	wg.Wait()
}

func TestAttachPublishesDuringRun(t *testing.T) {
	simCfg := nbody.DefaultConfig(8)
	cfg, err := cosmotools.ParseConfig(strings.NewReader("[halo]\nevery = 2\nmin_members = 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := cosmotools.NewPipeline(cfg, simCfg, "")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	sim, err := nbody.New(simCfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(4, s.Attach(p, 4))
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	var st Status
	get(t, srv, "/status", &st)
	if st.Step != 4 || st.Running {
		t.Errorf("final status = %+v", st)
	}
	var all []map[string]any
	get(t, srv, "/results", &all)
	if len(all) != 2 { // steps 2 and 4
		t.Errorf("published %d results, want 2", len(all))
	}
}

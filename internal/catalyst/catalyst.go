// Package catalyst is the run-time connection of the paper's Figure 4: in
// the paper, a ParaView server connects to the running simulation through
// Catalyst to inspect level-1 analysis products live; here, the same role
// is played by an HTTP endpoint that publishes the in situ pipeline's
// status and analysis results as JSON while the simulation runs. (The
// postprocessing path — files on parallel storage — is the meshio/diy
// stack; this is the other of the two modes of Sec. III-B.)
package catalyst

import (
	"encoding/json"
	"maps"
	"net/http"
	"slices"
	"sync"

	"repro/internal/cosmotools"
	"repro/internal/nbody"
)

// Status describes the run's progress.
type Status struct {
	Step       int  `json:"step"`
	TotalSteps int  `json:"total_steps"`
	Running    bool `json:"running"`
	Particles  int  `json:"particles"`
}

// Server accumulates published analysis results and serves them over HTTP.
// It is safe for concurrent use: the simulation goroutine publishes while
// any number of HTTP clients read.
type Server struct {
	mu      sync.RWMutex
	status  Status
	results []cosmotools.Result
}

// NewServer returns an empty server.
func NewServer() *Server { return &Server{} }

// SetStatus updates the run status.
func (s *Server) SetStatus(st Status) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.status = st
}

// Publish appends one analysis result.
func (s *Server) Publish(r cosmotools.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.results = append(s.results, r)
}

// resultJSON is the wire form of a result.
type resultJSON struct {
	Analysis  string             `json:"analysis"`
	Step      int                `json:"step"`
	Summary   string             `json:"summary"`
	Metrics   map[string]float64 `json:"metrics"`
	ElapsedMS float64            `json:"elapsed_ms"`
}

func toJSON(r cosmotools.Result) resultJSON {
	return resultJSON{
		Analysis:  r.Analysis,
		Step:      r.Step,
		Summary:   r.Summary,
		Metrics:   r.Metrics,
		ElapsedMS: float64(r.Elapsed.Microseconds()) / 1e3,
	}
}

// Handler returns the HTTP routes:
//
//	GET /status            run progress
//	GET /results           all published results
//	GET /results/latest    most recent result per analysis
//	GET /analyses          names of analyses that have published
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, req *http.Request) {
		s.mu.RLock()
		st := s.status
		s.mu.RUnlock()
		writeJSON(w, st)
	})
	mux.HandleFunc("GET /results", func(w http.ResponseWriter, req *http.Request) {
		s.mu.RLock()
		out := make([]resultJSON, len(s.results))
		for i, r := range s.results {
			out[i] = toJSON(r)
		}
		s.mu.RUnlock()
		writeJSON(w, out)
	})
	mux.HandleFunc("GET /results/latest", func(w http.ResponseWriter, req *http.Request) {
		s.mu.RLock()
		latest := map[string]cosmotools.Result{}
		for _, r := range s.results {
			latest[r.Analysis] = r
		}
		s.mu.RUnlock()
		names := slices.Sorted(maps.Keys(latest))
		out := make([]resultJSON, 0, len(names))
		for _, n := range names {
			out = append(out, toJSON(latest[n]))
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("GET /analyses", func(w http.ResponseWriter, req *http.Request) {
		s.mu.RLock()
		seen := map[string]bool{}
		for _, r := range s.results {
			seen[r.Analysis] = true
		}
		s.mu.RUnlock()
		names := slices.Sorted(maps.Keys(seen))
		writeJSON(w, names)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Attach wires a pipeline to the server: the returned hook runs the
// pipeline's own hook, then publishes any new results and the current
// status. Pass it to Simulation.Run in place of the pipeline hook.
func (s *Server) Attach(p *cosmotools.Pipeline, totalSteps int) func(*nbody.Simulation) {
	inner := p.Hook(totalSteps)
	published := 0
	return func(sim *nbody.Simulation) {
		inner(sim)
		for _, r := range p.Results[published:] {
			s.Publish(r)
		}
		published = len(p.Results)
		s.SetStatus(Status{
			Step:       sim.Step,
			TotalSteps: totalSteps,
			Running:    sim.Step < totalSteps,
			Particles:  sim.NumParticles(),
		})
	}
}

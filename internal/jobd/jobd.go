// Package jobd is the multi-tenant tessellation daemon behind cmd/tessd:
// a bounded job queue with admission control in front of a pool of
// concurrent tess.Session lifecycles sharing one worker budget.
//
// The paper's thesis is that analysis runs in situ as a service to the
// simulation; jobd is that service's production shape. Clients submit
// JSON job specs (JobSpec) over HTTP; the daemon admits them into a
// bounded queue — rejecting with 429 + Retry-After when compute is
// saturated, so backpressure reaches the client instead of an unbounded
// backlog — and up to MaxActive scheduler workers drain the queue, each
// running one job as a full Open/Step/Close session. All active sessions
// draw their intra-rank worker counts from a single tess.WorkerBudget, so
// N tenants divide GOMAXPROCS instead of oversubscribing it N-fold.
//
// Tenant isolation rides on the engine's fault containment: every job
// owns its own abortable communication world, so a tenant whose fault
// plan (or genuine bug) crashes a rank degrades into a structured error
// event on that job's stream — RankError, stall dump, or abort cause —
// while sibling jobs' sessions never observe it. Cancellation is the same
// mechanism driven from outside: Cancel aborts the job's world, the
// in-flight Step unblocks with the cancellation cause, and the session is
// torn down.
//
// Per-job progress streams to clients as NDJSON (Event): queued, started,
// one step event per completed Step (optionally carrying the step's
// merged canonical mesh and observability digest), and exactly one
// terminal done/error/canceled event. The event log is replayable, so a
// client that reconnects resumes from any sequence number.
package jobd

import (
	"errors"
	"fmt"
	"sync"
	"time"

	tess "repro"
	"repro/internal/storage"
)

// State is a job's lifecycle state.
type State string

const (
	// StateQueued: admitted, waiting for a scheduler worker.
	StateQueued State = "queued"
	// StateRunning: a scheduler worker is driving the job's session.
	StateRunning State = "running"
	// StateDone: every step completed.
	StateDone State = "done"
	// StateFailed: the session errored (crash, stall, pipeline error).
	StateFailed State = "failed"
	// StateCanceled: canceled by the client, before or during execution.
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Sentinel errors of the daemon API; the HTTP layer maps them to status
// codes (ErrBadSpec, declared in spec.go, joins them).
var (
	// ErrSaturated: the queue is full — compute is saturated and the
	// client should retry after the hinted delay (HTTP 429).
	ErrSaturated = errors.New("jobd: queue full, compute saturated")
	// ErrUnknownJob: no job with that ID (HTTP 404).
	ErrUnknownJob = errors.New("jobd: unknown job")
	// ErrCanceled is the abort cause of a client cancellation; a canceled
	// job's step error chain carries it.
	ErrCanceled = errors.New("jobd: job canceled")
	// ErrShuttingDown: the daemon no longer accepts jobs (HTTP 503).
	ErrShuttingDown = errors.New("jobd: shutting down")
)

// Limits bounds what a single job may ask for; specs beyond them are
// rejected at admission (400), before occupying a queue slot.
type Limits struct {
	MaxBlocks    int // max blocks (= ranks) per job; 0 = unlimited
	MaxSteps     int // max tessellation steps per job; 0 = unlimited
	MaxParticles int // max particles per snapshot; 0 = unlimited
	MaxGridN     int // max density sample-grid resolution; 0 = unlimited
}

// Config configures a Daemon.
type Config struct {
	// QueueCapacity bounds the admission queue (jobs admitted but not yet
	// started). Default 16.
	QueueCapacity int
	// MaxActive is the number of scheduler workers — the maximum number of
	// concurrently running sessions. Default 2.
	MaxActive int
	// WorkerBudget is the total intra-rank compute workers shared by all
	// active sessions; 0 tracks GOMAXPROCS.
	WorkerBudget int
	// StallTimeout arms each session's stall watchdog (a hung tenant
	// becomes a StallError instead of occupying a worker forever).
	// Default 30s; negative disables.
	StallTimeout time.Duration
	// RetryAfterBase scales the Retry-After admission hint: the hinted
	// delay is RetryAfterBase x (queued + running jobs). Default 1s.
	RetryAfterBase time.Duration
	// Limits bounds individual job specs.
	Limits Limits
	// BeforeStep, when non-nil, is called on the job runner's goroutine
	// before each Step with the job ID and 1-based step number. It exists
	// for the e2e harness (deterministic gating of job progress); leave it
	// nil in production.
	BeforeStep func(jobID string, step int)
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.QueueCapacity == 0 {
		c.QueueCapacity = 16
	}
	if c.MaxActive == 0 {
		c.MaxActive = 2
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = 30 * time.Second
	}
	if c.StallTimeout < 0 {
		c.StallTimeout = 0
	}
	if c.RetryAfterBase <= 0 {
		c.RetryAfterBase = time.Second
	}
	return c
}

// ErrorInfo is the structured failure description of a job, extracted
// from the engine's error chain so clients get machine-readable fields,
// not just a string.
type ErrorInfo struct {
	// Message is the full error text.
	Message string `json:"message"`
	// Kind classifies the failure: "rank-crash", "stall", "canceled",
	// "spec", or "pipeline".
	Kind string `json:"kind"`
	// Rank is the failing rank for a rank-crash (nil otherwise).
	Rank *int `json:"rank,omitempty"`
	// FaultSite names the injected-fault checkpoint for a fault-plan
	// crash ("exchange", "compute", "output", "done").
	FaultSite string `json:"fault_site,omitempty"`
	// FaultStep is the injected crash's checkpoint number (0 otherwise).
	FaultStep int `json:"fault_step,omitempty"`
	// Aborted reports whether the job's world was aborted (true for
	// crashes, stalls, and cancellations).
	Aborted bool `json:"aborted,omitempty"`
}

// classifyError builds the ErrorInfo for a failed or canceled step.
func classifyError(err error) *ErrorInfo {
	info := &ErrorInfo{Message: err.Error(), Kind: "pipeline"}
	info.Aborted = errors.Is(err, tess.ErrWorldAborted)
	var re *tess.RankError
	var se *tess.StallError
	var fc *tess.FaultCrash
	switch {
	case errors.Is(err, ErrCanceled):
		info.Kind = "canceled"
	case errors.As(err, &se):
		info.Kind = "stall"
	case errors.As(err, &re):
		info.Kind = "rank-crash"
		r := re.Rank
		info.Rank = &r
	}
	if errors.As(err, &fc) {
		info.FaultSite = fc.Site
		info.FaultStep = fc.Step
	}
	return info
}

// JobStatus is the client-visible snapshot of one job.
type JobStatus struct {
	ID        string     `json:"id"`
	Name      string     `json:"name,omitempty"`
	State     State      `json:"state"`
	Blocks    int        `json:"blocks"`
	Steps     int        `json:"steps"`      // steps the spec asks for
	StepsDone int        `json:"steps_done"` // steps completed so far
	Queued    time.Time  `json:"queued"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Error     *ErrorInfo `json:"error,omitempty"`
}

// Job is one admitted tessellation job. All mutable fields are guarded by
// mu; the event log has its own synchronization.
type Job struct {
	id   string
	spec JobSpec
	log  *eventLog

	mu        sync.Mutex
	state     State
	stepsDone int
	queuedAt  time.Time
	startedAt time.Time
	doneAt    time.Time
	errInfo   *ErrorInfo
	canceled  bool
	sess      *tess.Session // non-nil while running; Abort target

	// densityGrids holds each completed step's encoded density grid
	// (density jobs only), indexed by 1-based step number. Entries are
	// fresh copies — never aliases of the session's loaned Result.
	densityGrids map[int][]byte
	densityGridN int
}

// densityGrid returns the stored grid bytes of one step (1-based) and the
// grid resolution, for the HTTP slice endpoint.
func (j *Job) densityGrid(step int) ([]byte, int, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	b, ok := j.densityGrids[step]
	return b, j.densityGridN, ok
}

// ID returns the daemon-assigned job ID.
func (j *Job) ID() string { return j.id }

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		Name:      j.spec.Name,
		State:     j.state,
		Blocks:    j.spec.Blocks,
		Steps:     j.spec.Steps(),
		StepsDone: j.stepsDone,
		Queued:    j.queuedAt,
		Error:     j.errInfo,
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		st.Started = &t
	}
	if !j.doneAt.IsZero() {
		t := j.doneAt
		st.Finished = &t
	}
	return st
}

// Stats is the daemon-wide health snapshot served at /v1/stats.
type Stats struct {
	QueueLen      int   `json:"queue_len"`
	QueueCapacity int   `json:"queue_capacity"`
	Running       int   `json:"running"`
	MaxActive     int   `json:"max_active"`
	BudgetTotal   int   `json:"budget_total"`
	ActiveRanks   int   `json:"active_ranks"`
	Submitted     int64 `json:"submitted"`
	Rejected      int64 `json:"rejected"`
	Done          int64 `json:"done"`
	Failed        int64 `json:"failed"`
	Canceled      int64 `json:"canceled"`
}

// Daemon is the multi-tenant tessellation service. Create one with New,
// serve its Handler, and Close it to drain.
type Daemon struct {
	cfg    Config
	budget *tess.WorkerBudget
	queue  chan *Job
	quit   chan struct{}
	wg     sync.WaitGroup

	mu        sync.Mutex
	jobs      map[string]*Job
	order     []string // submission order, for List
	nextID    int
	running   int
	submitted int64
	rejected  int64
	done      int64
	failed    int64
	canceled  int64
	closed    bool
}

// New builds a daemon and starts its scheduler workers.
func New(cfg Config) *Daemon {
	cfg = cfg.withDefaults()
	d := &Daemon{
		cfg:    cfg,
		budget: tess.NewWorkerBudget(cfg.WorkerBudget),
		queue:  make(chan *Job, cfg.QueueCapacity),
		quit:   make(chan struct{}),
		jobs:   make(map[string]*Job),
	}
	d.wg.Add(cfg.MaxActive)
	for i := 0; i < cfg.MaxActive; i++ {
		go d.worker()
	}
	return d
}

// Budget exposes the daemon's shared worker budget (for stats and tests).
func (d *Daemon) Budget() *tess.WorkerBudget { return d.budget }

// Close stops admission, cancels every non-terminal job, and waits for
// the scheduler workers to drain. Idempotent.
func (d *Daemon) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		d.wg.Wait()
		return
	}
	d.closed = true
	ids := append([]string(nil), d.order...)
	d.mu.Unlock()
	close(d.quit)
	for _, id := range ids {
		_, _ = d.Cancel(id) // canceling terminal jobs is a no-op
	}
	d.wg.Wait()
}

// Submit validates spec and admits it into the queue. It returns
// ErrBadSpec-wrapped errors for invalid specs, ErrSaturated when the
// queue is full (the admission-control rejection), and ErrShuttingDown
// after Close.
func (d *Daemon) Submit(spec JobSpec) (*Job, error) {
	if err := spec.Validate(d.cfg.Limits); err != nil {
		d.mu.Lock()
		d.rejected++
		d.mu.Unlock()
		return nil, err
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrShuttingDown
	}
	d.nextID++
	j := &Job{
		id:       fmt.Sprintf("j%04d", d.nextID),
		spec:     spec,
		log:      newEventLog(),
		state:    StateQueued,
		queuedAt: time.Now().UTC(),
	}
	// Reserve the queue slot while still holding the registry lock, so a
	// burst of submitters observes a consistent queue depth.
	select {
	case d.queue <- j:
	default:
		d.rejected++
		d.mu.Unlock()
		return nil, ErrSaturated
	}
	d.jobs[j.id] = j
	d.order = append(d.order, j.id)
	d.submitted++
	d.mu.Unlock()
	j.log.append(Event{Job: j.id, Type: "queued"}, false)
	return j, nil
}

// RetryAfter is the admission-control backoff hint: how long a rejected
// client should wait before retrying, scaled by the current backlog.
func (d *Daemon) RetryAfter() time.Duration {
	d.mu.Lock()
	backlog := len(d.queue) + d.running
	d.mu.Unlock()
	if backlog < 1 {
		backlog = 1
	}
	ra := time.Duration(backlog) * d.cfg.RetryAfterBase
	if ra > 30*time.Second {
		ra = 30 * time.Second
	}
	return ra
}

// Job looks a job up by ID.
func (d *Daemon) Job(id string) (*Job, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j, nil
}

// List returns every job's status in submission order.
func (d *Daemon) List() []JobStatus {
	d.mu.Lock()
	ids := append([]string(nil), d.order...)
	jobs := make([]*Job, len(ids))
	for i, id := range ids {
		jobs[i] = d.jobs[id]
	}
	d.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Stats snapshots the daemon.
func (d *Daemon) Stats() Stats {
	d.mu.Lock()
	s := Stats{
		QueueLen:      len(d.queue),
		QueueCapacity: d.cfg.QueueCapacity,
		Running:       d.running,
		MaxActive:     d.cfg.MaxActive,
		Submitted:     d.submitted,
		Rejected:      d.rejected,
		Done:          d.done,
		Failed:        d.failed,
		Canceled:      d.canceled,
	}
	d.mu.Unlock()
	s.BudgetTotal = d.budget.Total()
	_, s.ActiveRanks = d.budget.Active()
	return s
}

// Cancel cancels a job: a queued job terminates immediately without ever
// starting; a running job's world is aborted with ErrCanceled, unblocking
// its in-flight Step. Canceling a terminal job is a no-op. Returns the
// job's status after the cancellation took effect (for a running job the
// terminal event lands asynchronously, when the runner observes the
// abort).
func (d *Daemon) Cancel(id string) (JobStatus, error) {
	j, err := d.Job(id)
	if err != nil {
		return JobStatus{}, err
	}
	j.mu.Lock()
	switch {
	case j.state.Terminal() || j.canceled:
		j.mu.Unlock()
		return j.Status(), nil
	case j.state == StateQueued:
		// The scheduler will pop it eventually and skip it; terminate now.
		j.canceled = true
		j.state = StateCanceled
		j.doneAt = time.Now().UTC()
		j.errInfo = &ErrorInfo{Message: ErrCanceled.Error(), Kind: "canceled"}
		info := j.errInfo
		j.mu.Unlock()
		d.countTerminal(StateCanceled)
		j.log.append(Event{Job: j.id, Type: "canceled", Error: info}, true)
		return j.Status(), nil
	default: // running
		j.canceled = true
		sess := j.sess
		j.mu.Unlock()
		if sess != nil {
			sess.Abort(fmt.Errorf("%w: %s", ErrCanceled, id))
		}
		return j.Status(), nil
	}
}

// Resume resubmits a failed or canceled job's spec as a fresh job. When
// the spec carries a checkpoint_dir with a committed checkpoint (the
// normal case for a killed checkpointing job), the new job's session
// reopens it and continues from the step after the checkpoint instead
// of starting over, emitting a "resumed" event with the skipped step
// count. The original job is left untouched; the new job gets its own
// ID, queue slot, and event stream.
func (d *Daemon) Resume(id string) (*Job, error) {
	j, err := d.Job(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	state := j.state
	spec := j.spec
	j.mu.Unlock()
	if !state.Terminal() || state == StateDone {
		return nil, badSpec("job %s is %s; only a failed or canceled job can be resumed", id, state)
	}
	return d.Submit(spec)
}

// countTerminal bumps the daemon's terminal-state counters.
func (d *Daemon) countTerminal(s State) {
	d.mu.Lock()
	switch s {
	case StateDone:
		d.done++
	case StateFailed:
		d.failed++
	case StateCanceled:
		d.canceled++
	}
	d.mu.Unlock()
}

// worker is one scheduler goroutine: it drains the queue and runs each
// admitted job as a full session lifecycle.
func (d *Daemon) worker() {
	defer d.wg.Done()
	for {
		select {
		case <-d.quit:
			return
		case j := <-d.queue:
			if !d.startJob(j) {
				continue // canceled while queued
			}
			d.runJob(j)
		}
	}
}

// startJob transitions a popped job to running unless it was canceled
// while queued.
func (d *Daemon) startJob(j *Job) bool {
	j.mu.Lock()
	if j.canceled || j.state != StateQueued {
		j.mu.Unlock()
		return false
	}
	j.state = StateRunning
	j.startedAt = time.Now().UTC()
	j.mu.Unlock()
	d.mu.Lock()
	d.running++
	d.mu.Unlock()
	j.log.append(Event{Job: j.id, Type: "started"}, false)
	return true
}

// finishJob records a job's terminal state and event.
func (d *Daemon) finishJob(j *Job, state State, info *ErrorInfo) {
	j.mu.Lock()
	j.state = state
	j.doneAt = time.Now().UTC()
	j.errInfo = info
	j.sess = nil
	stepsDone := j.stepsDone
	j.mu.Unlock()
	d.mu.Lock()
	d.running--
	d.mu.Unlock()
	d.countTerminal(state)
	switch state {
	case StateDone:
		j.log.append(Event{Job: j.id, Type: "done", Steps: stepsDone}, true)
	case StateCanceled:
		j.log.append(Event{Job: j.id, Type: "canceled", Error: info}, true)
	default:
		j.log.append(Event{Job: j.id, Type: "error", Error: info}, true)
	}
}

// runJob drives one job's whole session lifecycle on the scheduler
// worker's goroutine. Every engine failure — a fault-plan crash, a stall,
// a pipeline error, a cancellation abort — is contained to this job: the
// session owns its own world, and the error surfaces as this job's
// terminal event while sibling jobs run on undisturbed.
func (d *Daemon) runJob(j *Job) {
	// The input side: a windowed out-of-core FileSource for a URI job,
	// the per-step snapshotSource otherwise.
	var fsrc *tess.FileSource
	var src snapshotSource
	if uri := j.spec.SnapshotURI; uri != "" {
		fs, err := tess.OpenFileSource(uri, j.spec.SourceWindow)
		if err != nil {
			d.finishJob(j, StateFailed, &ErrorInfo{Message: err.Error(), Kind: "spec"})
			return
		}
		defer fs.Close()
		if limit := d.cfg.Limits.MaxParticles; limit > 0 && fs.TotalParticles() > limit {
			d.finishJob(j, StateFailed, &ErrorInfo{
				Message: fmt.Sprintf("jobd: snapshot %s holds %d particles, exceeding the daemon's limit of %d",
					uri, fs.TotalParticles(), limit),
				Kind: "spec",
			})
			return
		}
		fsrc = fs
	} else {
		var err error
		if src, err = j.spec.source(); err != nil {
			d.finishJob(j, StateFailed, &ErrorInfo{Message: err.Error(), Kind: "spec"})
			return
		}
	}
	cfg := j.spec.config(d.budget, d.cfg.StallTimeout)
	var rec *tess.Recorder
	if j.spec.IncludeObs {
		rec = tess.NewRecorder(j.spec.Blocks)
		cfg.Recorder = rec
	}

	// A checkpointing job whose directory already holds a committed
	// checkpoint resumes from it: the session reopens at step N and the
	// loop below starts at N+1. An unreadable or incompatible checkpoint
	// is ignored — the job starts fresh and overwrites it at its first
	// completed step — so a stale directory never bricks resubmission.
	ckdir := j.spec.CheckpointDir
	var sess *tess.Session
	resumed := 0
	if ckdir != "" && tess.HasCheckpoint(ckdir) {
		// The manifest probe keeps a checkpoint from another job's
		// geometry (block count is the one axis Resume takes from the
		// checkpoint rather than validating) out of this job.
		if man, err := storage.LoadManifest(ckdir); err == nil && man.NumBlocks == j.spec.Blocks {
			if rs, err := tess.Resume(cfg, ckdir); err == nil {
				sess = rs
				resumed = rs.Steps()
			}
		}
	}
	if sess == nil {
		var err error
		if sess, err = tess.Open(cfg, j.spec.Blocks); err != nil {
			d.finishJob(j, StateFailed, &ErrorInfo{Message: err.Error(), Kind: "spec"})
			return
		}
	}
	defer sess.Close()

	// Publish the session as the cancellation target — but if Cancel
	// already marked the job between startJob and here, it had no session
	// to abort; honor the flag now.
	j.mu.Lock()
	j.sess = sess
	canceled := j.canceled
	j.mu.Unlock()
	if canceled {
		d.finishJob(j, StateCanceled, &ErrorInfo{Message: ErrCanceled.Error(), Kind: "canceled"})
		return
	}

	steps := j.spec.Steps()
	if resumed > steps {
		resumed = steps // foreign checkpoint deeper than this job; cap
	}
	if resumed > 0 {
		j.mu.Lock()
		j.stepsDone = resumed
		j.mu.Unlock()
		j.log.append(Event{Job: j.id, Type: "resumed", Step: resumed}, false)
		// Fast-forward the source past the checkpointed steps (a sim
		// source must replay its evolution to reach step N's state).
		for step := 1; step <= resumed && src != nil; step++ {
			if _, err := src.next(); err != nil {
				d.finishJob(j, StateFailed, &ErrorInfo{Message: err.Error(), Kind: "spec"})
				return
			}
		}
	}
	var stepOpts []tess.StepOption
	if ckdir != "" {
		stepOpts = append(stepOpts, tess.WithCheckpointEvery(1))
	}
	for step := resumed + 1; step <= steps; step++ {
		if hook := d.cfg.BeforeStep; hook != nil {
			hook(j.id, step)
		}
		var particles []tess.Particle
		var out *tess.Output
		var err error
		if fsrc != nil {
			out, err = sess.StepFrom(fsrc, stepOpts...)
		} else {
			if particles, err = src.next(); err != nil {
				d.finishJob(j, StateFailed, &ErrorInfo{Message: err.Error(), Kind: "spec"})
				return
			}
			out, err = sess.Step(particles, stepOpts...)
		}
		if err != nil {
			info := classifyError(err)
			state := StateFailed
			j.mu.Lock()
			if j.canceled {
				state = StateCanceled
				info.Kind = "canceled"
			}
			j.mu.Unlock()
			d.finishJob(j, state, info)
			return
		}
		// Scalar copies of the loaned Output's counts: the event must not
		// hold any reference into the loan (it outlives the next Step).
		sites, cells := out.Counts.Sites, out.Counts.Kept
		ev := Event{
			Job:   j.id,
			Type:  "step",
			Step:  step,
			Sites: sites,
			Cells: cells,
		}
		if j.spec.IncludeMesh {
			b64, err := canonicalMeshB64(out, cfg)
			if err != nil {
				d.finishJob(j, StateFailed, &ErrorInfo{Message: err.Error(), Kind: "pipeline"})
				return
			}
			ev.MeshB64 = b64
		}
		if out.Obs != nil {
			ev.Obs = obsDigest(out.Obs)
		}
		if ds := j.spec.Density; ds != nil {
			res, err := sess.StepDensity(particles, ds.config())
			if err != nil {
				info := classifyError(err)
				state := StateFailed
				j.mu.Lock()
				if j.canceled {
					state = StateCanceled
					info.Kind = "canceled"
				}
				j.mu.Unlock()
				d.finishJob(j, state, info)
				return
			}
			// EncodeDensityGrid allocates, so the stored bytes and the
			// digest are detached from the loaned Result before the next
			// StepDensity overwrites its grid.
			grid := tess.EncodeDensityGrid(res.Grid)
			ev.Density = densityDigest(res, grid)
			j.mu.Lock()
			if j.densityGrids == nil {
				j.densityGrids = make(map[int][]byte, steps)
			}
			j.densityGrids[step] = grid
			j.densityGridN = res.GridN
			j.mu.Unlock()
		}
		j.mu.Lock()
		j.stepsDone = step
		j.mu.Unlock()
		j.log.append(ev, false)
	}
	d.finishJob(j, StateDone, nil)
}

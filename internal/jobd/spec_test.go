package jobd

import (
	"errors"
	"math"
	"testing"
	"time"
)

// validInline is a minimal passing inline spec to mutate per case.
func validInline() JobSpec {
	return JobSpec{
		L:      8,
		Blocks: 2,
		Snapshots: [][][3]float64{
			{{1, 1, 1}, {4, 4, 4}, {7, 7, 7}},
		},
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*JobSpec)
		limits Limits
		wantOK bool
	}{
		{name: "valid inline", mutate: func(s *JobSpec) {}, wantOK: true},
		{name: "valid sim", mutate: func(s *JobSpec) {
			s.Snapshots = nil
			s.L = 0
			s.Sim = &SimSpec{NG: 8, Steps: 2}
		}, wantOK: true},
		{name: "sim with matching l", mutate: func(s *JobSpec) {
			s.Snapshots = nil
			s.L = 8
			s.Sim = &SimSpec{NG: 8, Steps: 2}
		}, wantOK: true},
		{name: "sim with conflicting l", mutate: func(s *JobSpec) {
			s.Snapshots = nil
			s.L = 10
			s.Sim = &SimSpec{NG: 8, Steps: 2}
		}},
		{name: "no domain", mutate: func(s *JobSpec) { s.L = 0 }},
		{name: "negative domain", mutate: func(s *JobSpec) { s.L = -1 }},
		{name: "no blocks", mutate: func(s *JobSpec) { s.Blocks = 0 }},
		{name: "both sources", mutate: func(s *JobSpec) { s.Sim = &SimSpec{NG: 8, Steps: 1} }},
		{name: "neither source", mutate: func(s *JobSpec) { s.Snapshots = nil }},
		{name: "empty snapshot", mutate: func(s *JobSpec) {
			s.Snapshots = append(s.Snapshots, nil)
		}},
		{name: "particle outside domain", mutate: func(s *JobSpec) {
			s.Snapshots[0][1] = [3]float64{4, 8, 4} // l is exclusive
		}},
		{name: "negative coordinate", mutate: func(s *JobSpec) {
			s.Snapshots[0][1] = [3]float64{4, -0.1, 4}
		}},
		{name: "NaN coordinate", mutate: func(s *JobSpec) {
			s.Snapshots[0][1] = [3]float64{4, math.NaN(), 4}
		}},
		{name: "bad decomposition", mutate: func(s *JobSpec) { s.Decomposition = "hilbert" }},
		{name: "rcb decomposition", mutate: func(s *JobSpec) { s.Decomposition = "rcb" }, wantOK: true},
		{name: "sim ng too small", mutate: func(s *JobSpec) {
			s.Snapshots = nil
			s.L = 0
			s.Sim = &SimSpec{NG: 1, Steps: 1}
		}},
		{name: "sim no steps", mutate: func(s *JobSpec) {
			s.Snapshots = nil
			s.L = 0
			s.Sim = &SimSpec{NG: 8}
		}},
		{name: "crash rank out of range", mutate: func(s *JobSpec) {
			s.Fault = &FaultSpec{CrashRank: 2, CrashStep: 1}
		}},
		{name: "crash rank valid", mutate: func(s *JobSpec) {
			s.Fault = &FaultSpec{CrashRank: 1, CrashStep: 1}
		}, wantOK: true},
		{name: "disarmed crash rank ignored", mutate: func(s *JobSpec) {
			s.Fault = &FaultSpec{CrashRank: 99} // CrashStep 0 disables crashing
		}, wantOK: true},
		{name: "negative delay", mutate: func(s *JobSpec) {
			s.Fault = &FaultSpec{SendDelayMaxMS: -1}
		}},
		{name: "blocks over limit", mutate: func(s *JobSpec) { s.Blocks = 3 },
			limits: Limits{MaxBlocks: 2}},
		{name: "steps over limit", mutate: func(s *JobSpec) {
			s.Snapshots = append(s.Snapshots, s.Snapshots[0])
		}, limits: Limits{MaxSteps: 1}},
		{name: "particles over limit", mutate: func(s *JobSpec) {},
			limits: Limits{MaxParticles: 2}},
		{name: "inside limits", mutate: func(s *JobSpec) {},
			limits: Limits{MaxBlocks: 2, MaxSteps: 1, MaxParticles: 3}, wantOK: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := validInline()
			tc.mutate(&spec)
			err := spec.Validate(tc.limits)
			if tc.wantOK && err != nil {
				t.Fatalf("Validate = %v, want ok", err)
			}
			if !tc.wantOK {
				if err == nil {
					t.Fatal("Validate passed, want error")
				}
				if !errors.Is(err, ErrBadSpec) {
					t.Fatalf("Validate error %v does not wrap ErrBadSpec", err)
				}
			}
		})
	}
}

func TestSpecStepsAndDomain(t *testing.T) {
	inline := validInline()
	if inline.Steps() != 1 || inline.domainL() != 8 {
		t.Errorf("inline steps/domain = %d/%g, want 1/8", inline.Steps(), inline.domainL())
	}
	sim := JobSpec{Blocks: 2, Sim: &SimSpec{NG: 16, Steps: 5}}
	if sim.Steps() != 5 || sim.domainL() != 16 {
		t.Errorf("sim steps/domain = %d/%g, want 5/16", sim.Steps(), sim.domainL())
	}
}

func TestFaultSpecPlan(t *testing.T) {
	if (*FaultSpec)(nil).plan() != nil {
		t.Error("nil fault spec produced a plan")
	}
	p := (&FaultSpec{Seed: 7, CrashRank: 1, CrashStep: 3, ComputeDelayMaxMS: 2, SendDelayMaxMS: 5}).plan()
	if p.Seed != 7 || p.CrashRank != 1 || p.CrashStep != 3 {
		t.Errorf("plan crash fields = %+v", p)
	}
	if p.ComputeDelayMax != 2*time.Millisecond || p.SendDelayMax != 5*time.Millisecond {
		t.Errorf("plan delays = %v/%v, want 2ms/5ms", p.ComputeDelayMax, p.SendDelayMax)
	}
}

// The inline source assigns sequential IDs per snapshot (matching
// tess.ParticlesFromPositions) and replays snapshots in order.
func TestInlineSource(t *testing.T) {
	spec := JobSpec{
		L:      8,
		Blocks: 1,
		Snapshots: [][][3]float64{
			{{1, 2, 3}},
			{{4, 5, 6}, {7, 7, 7}},
		},
	}
	src, err := spec.source()
	if err != nil {
		t.Fatal(err)
	}
	first, err := src.next()
	if err != nil || len(first) != 1 {
		t.Fatalf("first snapshot: %d particles, err %v", len(first), err)
	}
	if first[0].ID != 0 || first[0].Pos.X != 1 {
		t.Errorf("first particle = %+v", first[0])
	}
	second, err := src.next()
	if err != nil || len(second) != 2 {
		t.Fatalf("second snapshot: %d particles, err %v", len(second), err)
	}
	if second[1].ID != 1 || second[1].Pos.Z != 7 {
		t.Errorf("second snapshot particle 1 = %+v", second[1])
	}
}

package jobd

import (
	"errors"
	"fmt"
	"time"

	tess "repro"
	"repro/internal/nbody"
)

// ErrBadSpec is the sentinel wrapped by every job-spec validation error;
// the HTTP layer maps it to 400 Bad Request.
var ErrBadSpec = errors.New("jobd: bad job spec")

// JobSpec is the JSON description of one tessellation job a client submits
// to the daemon. A job is a complete Session lifecycle: Open over Blocks
// blocks on a periodic cube [0, L)^3, one Step per input snapshot, Close.
// Particles come inline (Snapshots, one entry per step — the in situ
// host shipping its own state), from the built-in N-body simulation
// (Sim — a self-contained benchmark/demo tenant), or out of core from a
// chunked snapshot file on the daemon's filesystem (SnapshotURI).
// Exactly one of the three must be set.
type JobSpec struct {
	// Name is an optional client label echoed in statuses and events.
	Name string `json:"name,omitempty"`
	// L is the periodic cube side: the domain is [0, L)^3.
	L float64 `json:"l"`
	// Blocks is the number of blocks (= ranks) of the job's session.
	Blocks int `json:"blocks"`
	// Ghost overrides the ghost-region thickness (default 4, as in
	// NewPeriodicConfig).
	Ghost float64 `json:"ghost,omitempty"`
	// Workers pins the per-rank worker count; 0 (default) lets the job
	// draw its fair share of the daemon's worker budget.
	Workers int `json:"workers,omitempty"`
	// Decomposition selects "grid" (default) or "rcb".
	Decomposition string `json:"decomposition,omitempty"`
	// MinVolume / MaxVolume are the cell-volume culls (0 = off).
	MinVolume float64 `json:"min_volume,omitempty"`
	MaxVolume float64 `json:"max_volume,omitempty"`

	// Snapshots holds one particle set per step, each particle a [3]float64
	// position inside the domain. IDs are assigned sequentially per
	// snapshot, matching tess.ParticlesFromPositions.
	Snapshots [][][3]float64 `json:"snapshots,omitempty"`
	// Sim generates the job's snapshots from the built-in N-body
	// simulation instead (mutually exclusive with Snapshots).
	Sim *SimSpec `json:"sim,omitempty"`
	// SnapshotURI names a chunked snapshot file on the daemon's
	// filesystem (written by tess.WriteSnapshot) as the job's single
	// input snapshot, streamed out of core through a windowed FileSource
	// instead of being inlined in the spec JSON. Exactly one of
	// Snapshots, Sim, or SnapshotURI must be set; a URI job runs one
	// tessellation step.
	SnapshotURI string `json:"snapshot_uri,omitempty"`
	// SourceWindow bounds the snapshot source's resident chunk window
	// (<= 0 keeps every loaded chunk resident). Only meaningful with
	// SnapshotURI.
	SourceWindow int `json:"source_window,omitempty"`

	// CheckpointDir, when non-empty, checkpoints the job's session into
	// that directory after every completed step. A killed job resubmitted
	// with the same spec (tessctl resume / POST /v1/jobs/{id}/resume)
	// reopens the committed checkpoint and continues from the step after
	// it instead of starting over.
	CheckpointDir string `json:"checkpoint_dir,omitempty"`

	// Density attaches the streaming density pipeline to the job: after
	// every tessellation step the session also runs StepDensity over the
	// same snapshot, the step event carries a DensityDigest, and the full
	// grid (or one z-plane) is served at /v1/jobs/{id}/density/{step}.
	Density *DensitySpec `json:"density,omitempty"`

	// Fault arms the deterministic fault-injection plan for this job —
	// the chaos-testing surface: a tenant may carry its own crash or delay
	// schedule, and the daemon must contain it.
	Fault *FaultSpec `json:"fault,omitempty"`

	// IncludeMesh streams each step's merged canonical mesh (the
	// decomposition-independent encoding) back in the step event, base64
	// over NDJSON.
	IncludeMesh bool `json:"include_mesh,omitempty"`
	// IncludeObs attaches a per-step observability recorder and streams
	// each step's counters and imbalance in the step event.
	IncludeObs bool `json:"include_obs,omitempty"`
}

// SimSpec generates job snapshots from the built-in N-body simulation:
// NG^3 particles in an NG^3 box, tessellated every Every sim steps, Steps
// tessellation steps in total.
type SimSpec struct {
	NG    int `json:"ng"`
	Steps int `json:"steps"`
	Every int `json:"every,omitempty"`
}

// DensitySpec is the JSON form of the per-job density-pipeline config.
// The grid box is always the job's periodic domain; padding depth follows
// the session's ghost size.
type DensitySpec struct {
	// GridN is the sample-grid resolution per axis (>= 2).
	GridN int `json:"grid_n"`
	// Spectrum additionally computes the power spectrum each step
	// (requires a power-of-two GridN).
	Spectrum bool `json:"spectrum,omitempty"`
	// VoidThreshold overrides the void density cut (fraction of the mean;
	// 0 = default).
	VoidThreshold float64 `json:"void_threshold,omitempty"`
	// Percentiles overrides the reported density percentiles (empty =
	// default set).
	Percentiles []float64 `json:"percentiles,omitempty"`
}

// config builds the engine density config; the zero Box defers domain,
// periodicity, and padding to the session.
func (ds *DensitySpec) config() tess.DensityConfig {
	return tess.DensityConfig{
		GridN:         ds.GridN,
		Spectrum:      ds.Spectrum,
		VoidThreshold: ds.VoidThreshold,
		Percentiles:   ds.Percentiles,
	}
}

// FaultSpec is the JSON form of tess.FaultPlan (durations in
// milliseconds, the natural unit at job scale).
type FaultSpec struct {
	Seed              int64 `json:"seed,omitempty"`
	CrashRank         int   `json:"crash_rank,omitempty"`
	CrashStep         int   `json:"crash_step,omitempty"`
	ComputeDelayMaxMS int64 `json:"compute_delay_max_ms,omitempty"`
	SendDelayMaxMS    int64 `json:"send_delay_max_ms,omitempty"`
}

// plan converts the wire form to the engine plan.
func (f *FaultSpec) plan() *tess.FaultPlan {
	if f == nil {
		return nil
	}
	return &tess.FaultPlan{
		Seed:            f.Seed,
		CrashRank:       f.CrashRank,
		CrashStep:       f.CrashStep,
		ComputeDelayMax: time.Duration(f.ComputeDelayMaxMS) * time.Millisecond,
		SendDelayMax:    time.Duration(f.SendDelayMaxMS) * time.Millisecond,
	}
}

// badSpec builds an ErrBadSpec-wrapped validation error.
func badSpec(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadSpec, fmt.Sprintf(format, args...))
}

// Validate checks the spec against the daemon's admission limits. It is
// the cheap synchronous part of admission control: anything it rejects
// never occupies a queue slot. Errors wrap ErrBadSpec.
func (s *JobSpec) Validate(limits Limits) error {
	if s.Sim != nil {
		// A sim job's domain is fixed by the simulation (an NG^3 box); l may
		// be omitted or must agree.
		if s.L != 0 && s.L != float64(s.Sim.NG) {
			return badSpec("sim jobs run in an ng^3 box; l = %g conflicts with ng = %d", s.L, s.Sim.NG)
		}
	} else if s.L <= 0 {
		return badSpec("domain side l = %g, want > 0", s.L)
	}
	if s.Blocks < 1 {
		return badSpec("blocks = %d, want >= 1", s.Blocks)
	}
	if limits.MaxBlocks > 0 && s.Blocks > limits.MaxBlocks {
		return badSpec("blocks = %d exceeds the daemon's limit of %d", s.Blocks, limits.MaxBlocks)
	}
	switch s.Decomposition {
	case "", "grid", "rcb":
	default:
		return badSpec("decomposition %q, want \"grid\" or \"rcb\"", s.Decomposition)
	}
	sources := 0
	for _, set := range []bool{len(s.Snapshots) > 0, s.Sim != nil, s.SnapshotURI != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return badSpec("exactly one of snapshots, sim, or snapshot_uri must be set")
	}
	if s.SnapshotURI != "" && s.Density != nil {
		return badSpec("density is not supported with snapshot_uri (the streamed snapshot is never staged whole)")
	}
	if s.SourceWindow != 0 && s.SnapshotURI == "" {
		return badSpec("source_window requires snapshot_uri")
	}
	steps := s.Steps()
	hasSim := s.Sim != nil
	if hasSim {
		if s.Sim.NG < 2 {
			return badSpec("sim.ng = %d, want >= 2", s.Sim.NG)
		}
		if s.Sim.Steps < 1 {
			return badSpec("sim.steps = %d, want >= 1", s.Sim.Steps)
		}
	}
	if limits.MaxSteps > 0 && steps > limits.MaxSteps {
		return badSpec("%d steps exceeds the daemon's limit of %d", steps, limits.MaxSteps)
	}
	var nmax int
	for i, snap := range s.Snapshots {
		if len(snap) == 0 {
			return badSpec("snapshot %d is empty", i)
		}
		if len(snap) > nmax {
			nmax = len(snap)
		}
		for j, p := range snap {
			for _, c := range p {
				if !(c >= 0 && c < s.L) { // also rejects NaN
					return badSpec("snapshot %d particle %d at %v outside [0, %g)^3", i, j, p, s.L)
				}
			}
		}
	}
	if limits.MaxParticles > 0 && nmax > limits.MaxParticles {
		return badSpec("%d particles exceeds the daemon's limit of %d", nmax, limits.MaxParticles)
	}
	if ds := s.Density; ds != nil {
		if ds.GridN < 2 {
			return badSpec("density.grid_n = %d, want >= 2", ds.GridN)
		}
		if limits.MaxGridN > 0 && ds.GridN > limits.MaxGridN {
			return badSpec("density.grid_n = %d exceeds the daemon's limit of %d", ds.GridN, limits.MaxGridN)
		}
		if ds.Spectrum && ds.GridN&(ds.GridN-1) != 0 {
			return badSpec("density.grid_n = %d must be a power of two when spectrum is set", ds.GridN)
		}
		for _, p := range ds.Percentiles {
			if !(p >= 0 && p <= 100) { // also rejects NaN
				return badSpec("density percentile %g outside [0, 100]", p)
			}
		}
	}
	if f := s.Fault; f != nil {
		if f.CrashStep > 0 && (f.CrashRank < 0 || f.CrashRank >= s.Blocks) {
			return badSpec("fault.crash_rank = %d outside [0, %d)", f.CrashRank, s.Blocks)
		}
		if f.ComputeDelayMaxMS < 0 || f.SendDelayMaxMS < 0 {
			return badSpec("fault delays must be >= 0")
		}
	}
	return nil
}

// Steps returns the number of tessellation steps the job will run.
func (s *JobSpec) Steps() int {
	if s.Sim != nil {
		return s.Sim.Steps
	}
	if s.SnapshotURI != "" {
		return 1
	}
	return len(s.Snapshots)
}

// domainL is the effective periodic cube side: l for inline jobs, the
// simulation's ng for sim jobs.
func (s *JobSpec) domainL() float64 {
	if s.Sim != nil {
		return float64(s.Sim.NG)
	}
	return s.L
}

// config builds the tess.Config for the job, drawing default workers from
// the daemon's budget and honoring the daemon's stall watchdog default.
func (s *JobSpec) config(budget *tess.WorkerBudget, stall time.Duration) tess.Config {
	opts := []tess.Option{tess.WithBudget(budget)}
	if s.Ghost > 0 {
		opts = append(opts, tess.WithGhostSize(s.Ghost))
	}
	if s.Workers > 0 {
		opts = append(opts, tess.WithWorkers(s.Workers))
	}
	if s.Decomposition == "rcb" {
		opts = append(opts, tess.WithDecomposition(tess.DecomposeRCB))
	}
	if s.CheckpointDir != "" {
		opts = append(opts, tess.WithCheckpointDir(s.CheckpointDir))
	}
	if p := s.Fault.plan(); p != nil {
		opts = append(opts, tess.WithFaults(p))
	}
	if stall > 0 {
		opts = append(opts, tess.WithStallTimeout(stall))
	}
	cfg := tess.NewPeriodicConfig(s.domainL(), opts...)
	cfg.MinVolume = s.MinVolume
	cfg.MaxVolume = s.MaxVolume
	return cfg
}

// snapshotSource yields the job's per-step particle sets in order: a
// replay of inline Snapshots, or live N-body evolution for a Sim job.
type snapshotSource interface {
	next() ([]tess.Particle, error)
}

// inlineSource replays JobSpec.Snapshots.
type inlineSource struct {
	snaps [][][3]float64
	i     int
}

func (src *inlineSource) next() ([]tess.Particle, error) {
	snap := src.snaps[src.i]
	src.i++
	out := make([]tess.Particle, len(snap))
	for j, p := range snap {
		out[j] = tess.Particle{ID: int64(j), Pos: tess.Vec3{X: p[0], Y: p[1], Z: p[2]}}
	}
	return out, nil
}

// simSource evolves the built-in N-body simulation Every steps between
// tessellations.
type simSource struct {
	sim   *nbody.Simulation
	every int
	first bool
}

func (src *simSource) next() ([]tess.Particle, error) {
	if !src.first {
		for i := 0; i < src.every; i++ {
			src.sim.StepOnce()
		}
	}
	src.first = false
	return tess.ParticlesFromSim(src.sim), nil
}

// source builds the job's snapshot source. For Sim jobs it creates the
// simulation (which may fail on bad parameters).
func (s *JobSpec) source() (snapshotSource, error) {
	if s.Sim != nil {
		sim, err := nbody.New(nbody.DefaultConfig(s.Sim.NG))
		if err != nil {
			return nil, fmt.Errorf("jobd: sim init: %w", err)
		}
		every := s.Sim.Every
		if every < 1 {
			every = 1
		}
		return &simSource{sim: sim, every: every, first: true}, nil
	}
	return &inlineSource{snaps: s.Snapshots}, nil
}

package jobd

import (
	"encoding/base64"
	"fmt"

	tess "repro"
)

// canonicalMeshB64 merges a step's per-block meshes into the
// decomposition-independent canonical mesh and returns its encoding,
// base64 for NDJSON transport. Because the canonical merge is
// byte-identical across block counts and decompositions, the bytes a
// client receives from a daemon job equal those of a direct single-client
// Session run over the same particles — the contract the e2e suite pins.
// Only fresh memory derived from the loaned Output leaves this function.
func canonicalMeshB64(out *tess.Output, cfg tess.Config) (string, error) {
	merged, err := tess.MergeCanonical(out.Meshes, cfg.Domain, cfg.Periodic)
	if err != nil {
		return "", fmt.Errorf("jobd: canonical merge: %w", err)
	}
	enc, err := merged.Encode()
	if err != nil {
		return "", fmt.Errorf("jobd: mesh encode: %w", err)
	}
	return base64.StdEncoding.EncodeToString(enc), nil
}

// obsDigest condenses a step's observability snapshot into the wire
// digest. Counter values are copied (the digest outlives the step), and
// iteration follows the snapshot's sorted CounterNames so the digest is
// deterministic.
func obsDigest(s *tess.ObsSnapshot) *ObsDigest {
	counters := make(map[string][]int64, len(s.CounterNames))
	for _, name := range s.CounterNames {
		vals := make([]int64, len(s.Counters[name]))
		copy(vals, s.Counters[name])
		counters[name] = vals
	}
	return &ObsDigest{
		Counters:         counters,
		ComputeImbalance: s.ComputeImbalance,
		SentBytes:        s.TotalSentBytes,
		RecvdBytes:       s.TotalRecvdBytes,
	}
}

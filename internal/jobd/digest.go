package jobd

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"fmt"

	tess "repro"
)

// canonicalMeshB64 merges a step's per-block meshes into the
// decomposition-independent canonical mesh and returns its encoding,
// base64 for NDJSON transport. Because the canonical merge is
// byte-identical across block counts and decompositions, the bytes a
// client receives from a daemon job equal those of a direct single-client
// Session run over the same particles — the contract the e2e suite pins.
// Only fresh memory derived from the loaned Output leaves this function.
func canonicalMeshB64(out *tess.Output, cfg tess.Config) (string, error) {
	merged, err := tess.MergeCanonical(out.Meshes, cfg.Domain, cfg.Periodic)
	if err != nil {
		return "", fmt.Errorf("jobd: canonical merge: %w", err)
	}
	enc, err := merged.Encode()
	if err != nil {
		return "", fmt.Errorf("jobd: mesh encode: %w", err)
	}
	return base64.StdEncoding.EncodeToString(enc), nil
}

// densityDigest condenses one step's density result into the wire digest.
// grid is the already-encoded (detached) grid whose SHA-256 anchors the
// decomposition-independence check; every other field is a scalar copy, so
// nothing here aliases the loaned Result.
func densityDigest(res *tess.DensityResult, grid []byte) *DensityDigest {
	sum := sha256.Sum256(grid)
	return &DensityDigest{
		GridN:        res.GridN,
		Digest:       hex.EncodeToString(sum[:]),
		Mean:         res.Stats.Mean,
		Min:          res.Stats.Min,
		Max:          res.Stats.Max,
		VoidFrac:     res.Stats.VoidFrac,
		GridMass:     res.Stats.GridMass,
		TracerMass:   res.Stats.TracerMass,
		Outside:      int64(res.Sample.Outside),
		Degenerate:   int64(res.Sample.Degenerate),
		SpectrumBins: len(res.Spectrum),
	}
}

// obsDigest condenses a step's observability snapshot into the wire
// digest. Counter values are copied (the digest outlives the step), and
// iteration follows the snapshot's sorted CounterNames so the digest is
// deterministic.
func obsDigest(s *tess.ObsSnapshot) *ObsDigest {
	counters := make(map[string][]int64, len(s.CounterNames))
	for _, name := range s.CounterNames {
		vals := make([]int64, len(s.Counters[name]))
		copy(vals, s.Counters[name])
		counters[name] = vals
	}
	return &ObsDigest{
		Counters:         counters,
		ComputeImbalance: s.ComputeImbalance,
		SentBytes:        s.TotalSentBytes,
		RecvdBytes:       s.TotalRecvdBytes,
	}
}

package jobd

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
)

// HTTP surface of the daemon (all JSON; streams are NDJSON):
//
//	GET    /healthz             -> 200 "ok"
//	GET    /v1/stats            -> Stats
//	POST   /v1/jobs             -> 202 JobStatus | 400 bad spec |
//	                               429 (+ Retry-After seconds) saturated |
//	                               503 shutting down
//	GET    /v1/jobs             -> []JobStatus (submission order)
//	GET    /v1/jobs/{id}        -> JobStatus | 404
//	DELETE /v1/jobs/{id}        -> JobStatus after cancel | 404
//	POST   /v1/jobs/{id}/resume -> 202 new JobStatus (failed/canceled
//	                               job resubmitted; continues from its
//	                               committed checkpoint when the spec
//	                               set checkpoint_dir) | 400 | 404
//	GET    /v1/jobs/{id}/events -> NDJSON Event stream (replay + live
//	                               tail until the terminal event);
//	                               ?from=N resumes at sequence N
//	GET    /v1/jobs/{id}/density/{step}
//	                            -> the step's density grid, raw
//	                               little-endian float64
//	                               (application/octet-stream,
//	                               X-Density-Grid-N header); ?z=K serves
//	                               one z-plane of N*N values | 404 until
//	                               that step's density has completed

// apiError is the JSON error body of every non-2xx response.
type apiError struct {
	Error string `json:"error"`
}

// Handler returns the daemon's HTTP API.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Stats())
	})
	mux.HandleFunc("POST /v1/jobs", d.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.List())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, err := d.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, d, err)
			return
		}
		writeJSON(w, http.StatusOK, j.Status())
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := d.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, d, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /v1/jobs/{id}/resume", func(w http.ResponseWriter, r *http.Request) {
		nj, err := d.Resume(r.PathValue("id"))
		if err != nil {
			writeError(w, d, err)
			return
		}
		writeJSON(w, http.StatusAccepted, nj.Status())
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", d.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/density/{step}", d.handleDensity)
	return mux
}

// handleDensity serves one step's stored density grid, whole or as a
// single z-plane (?z=K). Grids are retained per job until the daemon
// forgets the job, so a client may fetch any completed step at any time —
// including after the job finished.
func (d *Daemon) handleDensity(w http.ResponseWriter, r *http.Request) {
	j, err := d.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, d, err)
		return
	}
	step, err := strconv.Atoi(r.PathValue("step"))
	if err != nil || step < 1 {
		writeError(w, d, badSpec("step %q, want a positive integer", r.PathValue("step")))
		return
	}
	grid, n, ok := j.densityGrid(step)
	if !ok {
		writeError(w, d, fmt.Errorf("%w: no density grid for job %s step %d", ErrUnknownJob, j.ID(), step))
		return
	}
	if zq := r.URL.Query().Get("z"); zq != "" {
		z, err := strconv.Atoi(zq)
		if err != nil || z < 0 || z >= n {
			writeError(w, d, badSpec("z = %q outside [0, %d)", zq, n))
			return
		}
		plane := n * n * 8
		grid = grid[z*plane : (z+1)*plane]
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Density-Grid-N", strconv.Itoa(n))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(grid)
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, d, badSpec("invalid JSON: %v", err))
		return
	}
	j, err := d.Submit(spec)
	if err != nil {
		writeError(w, d, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

// handleEvents streams a job's NDJSON event log: full replay from ?from
// (default 0), then a live tail until the terminal event or client
// disconnect. Each event is one JSON line, flushed immediately.
func (d *Daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, err := d.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, d, err)
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, d, badSpec("from = %q, want a non-negative integer", q))
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	cur := from
	for {
		evs, closed, changed := j.log.since(cur)
		for _, e := range evs {
			if err := enc.Encode(e); err != nil {
				return // client gone
			}
		}
		cur += len(evs)
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		if closed {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		case <-d.quit:
			return
		}
	}
}

// writeJSON writes v as the JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps daemon sentinels to HTTP statuses; ErrSaturated carries
// the Retry-After admission hint.
func writeError(w http.ResponseWriter, d *Daemon, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadSpec):
		status = http.StatusBadRequest
	case errors.Is(err, ErrSaturated):
		status = http.StatusTooManyRequests
		secs := int(math.Ceil(d.RetryAfter().Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	case errors.Is(err, ErrUnknownJob):
		status = http.StatusNotFound
	case errors.Is(err, ErrShuttingDown):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, apiError{Error: err.Error()})
}

// Package jobdtest is the in-process end-to-end harness of the tessd
// daemon: it boots a real jobd.Daemon on a loopback listener and drives
// it through the actual HTTP surface — the same bytes a remote tenant
// would see — so the e2e suite covers admission control, NDJSON
// streaming, cancellation, and tenant isolation without any out-of-process
// machinery (and therefore runs fine under -race).
package jobdtest

import (
	"context"
	"encoding/base64"
	"math/rand"
	"net"
	"net/http"
	"testing"
	"time"

	tess "repro"
	"repro/internal/jobd"
)

// Harness is a running daemon plus a typed client bound to it.
type Harness struct {
	// D is the daemon under test (for direct assertions on Stats etc.).
	D *jobd.Daemon
	// Client speaks the real HTTP API over the loopback listener.
	Client *jobd.Client
	// BaseURL is the daemon's http://127.0.0.1:<port> base.
	BaseURL string
}

// Start boots a daemon with cfg on a loopback listener and registers
// cleanup with t. The returned harness is ready to accept jobs.
func Start(t testing.TB, cfg jobd.Config) *Harness {
	t.Helper()
	d := jobd.New(cfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("jobdtest: listen: %v", err)
	}
	srv := &http.Server{Handler: d.Handler()}
	go srv.Serve(lis) //nolint:errcheck // returns ErrServerClosed on shutdown
	h := &Harness{
		D:       d,
		BaseURL: "http://" + lis.Addr().String(),
	}
	h.Client = &jobd.Client{Base: h.BaseURL}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		d.Close()
	})
	return h
}

// Submit posts spec and fails the test on any rejection.
func (h *Harness) Submit(t testing.TB, spec jobd.JobSpec) jobd.JobStatus {
	t.Helper()
	st, err := h.Client.Submit(context.Background(), spec)
	if err != nil {
		t.Fatalf("jobdtest: submit: %v", err)
	}
	return st
}

// Wait streams a job's events until its terminal event (bounded by
// timeout) and returns the events plus the final status.
func (h *Harness) Wait(t testing.TB, id string, timeout time.Duration) ([]jobd.Event, jobd.JobStatus) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	events, st, err := h.Client.Wait(ctx, id)
	if err != nil {
		t.Fatalf("jobdtest: wait %s: %v (got %d events)", id, err, len(events))
	}
	return events, st
}

// StepMeshes decodes the merged canonical mesh bytes of every step event,
// in step order.
func StepMeshes(t testing.TB, events []jobd.Event) [][]byte {
	t.Helper()
	var out [][]byte
	for _, e := range events {
		if e.Type != "step" {
			continue
		}
		if e.MeshB64 == "" {
			t.Fatalf("jobdtest: step %d event has no mesh payload", e.Step)
		}
		raw, err := base64.StdEncoding.DecodeString(e.MeshB64)
		if err != nil {
			t.Fatalf("jobdtest: step %d mesh decode: %v", e.Step, err)
		}
		out = append(out, raw)
	}
	return out
}

// DirectDensityGrids runs the spec's density pipeline directly — no
// daemon, no session — and returns each step's encoded grid. The config
// mirrors what a job's session applies to a zero-Box density config:
// the periodic [0, L)^3 domain with the ghost size as padding depth.
// This is the byte-identity oracle for daemon-served density grids.
func DirectDensityGrids(t testing.TB, spec jobd.JobSpec) [][]byte {
	t.Helper()
	if spec.Density == nil {
		t.Fatal("jobdtest: spec has no density section")
	}
	ghost := spec.Ghost
	if ghost <= 0 {
		ghost = tess.NewPeriodicConfig(spec.L).GhostSize
	}
	dc := tess.DensityConfig{
		GridN:         spec.Density.GridN,
		Box:           tess.Box{Max: tess.Vec3{X: spec.L, Y: spec.L, Z: spec.L}},
		Periodic:      true,
		Pad:           ghost,
		Spectrum:      spec.Density.Spectrum,
		VoidThreshold: spec.Density.VoidThreshold,
		Percentiles:   spec.Density.Percentiles,
	}
	var out [][]byte
	for i, snap := range spec.Snapshots {
		pts := make([]tess.Vec3, len(snap))
		for j, p := range snap {
			pts[j] = tess.Vec3{X: p[0], Y: p[1], Z: p[2]}
		}
		res, err := tess.ComputeDensity(dc, pts, nil)
		if err != nil {
			t.Fatalf("jobdtest: direct density step %d: %v", i+1, err)
		}
		out = append(out, tess.EncodeDensityGrid(res.Grid))
	}
	return out
}

// Terminal returns the stream's terminal event and fails if there is not
// exactly one, at the end.
func Terminal(t testing.TB, events []jobd.Event) jobd.Event {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("jobdtest: empty event stream")
	}
	for i, e := range events {
		term := e.Type == "done" || e.Type == "error" || e.Type == "canceled"
		if term != (i == len(events)-1) {
			t.Fatalf("jobdtest: terminal event misplaced: event %d of %d is %q", i, len(events), e.Type)
		}
	}
	return events[len(events)-1]
}

// Snapshots builds deterministic per-step particle snapshots (n^3
// jittered lattice sites in [0, L)^3, the same construction the repo's
// session tests use) in the wire format of jobd.JobSpec.
func Snapshots(seed int64, steps, n int, L float64) [][][3]float64 {
	out := make([][][3]float64, steps)
	for s := range out {
		out[s] = snapshot(seed+int64(s), n, L)
	}
	return out
}

func snapshot(seed int64, n int, L float64) [][3]float64 {
	rng := rand.New(rand.NewSource(seed))
	h := L / float64(n)
	var pos [][3]float64
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				pos = append(pos, [3]float64{
					(float64(x)+0.5)*h + (rng.Float64()-0.5)*0.9*h,
					(float64(y)+0.5)*h + (rng.Float64()-0.5)*0.9*h,
					(float64(z)+0.5)*h + (rng.Float64()-0.5)*0.9*h,
				})
			}
		}
	}
	return pos
}

// Particles converts a wire snapshot to engine particles exactly the way
// the daemon does, for direct-run comparisons.
func Particles(snap [][3]float64) []tess.Particle {
	out := make([]tess.Particle, len(snap))
	for i, p := range snap {
		out[i] = tess.Particle{ID: int64(i), Pos: tess.Vec3{X: p[0], Y: p[1], Z: p[2]}}
	}
	return out
}

// DirectMeshes runs the same job spec through a direct single-client
// tess.Open/Step/Close session — no daemon, no HTTP — and returns each
// step's merged canonical mesh encoding. This is the byte-identity oracle
// the e2e suite compares daemon output against.
func DirectMeshes(t testing.TB, spec jobd.JobSpec) [][]byte {
	t.Helper()
	opts := []tess.Option{}
	if spec.Ghost > 0 {
		opts = append(opts, tess.WithGhostSize(spec.Ghost))
	}
	if spec.Decomposition == "rcb" {
		opts = append(opts, tess.WithDecomposition(tess.DecomposeRCB))
	}
	cfg := tess.NewPeriodicConfig(spec.L, opts...)
	cfg.MinVolume = spec.MinVolume
	cfg.MaxVolume = spec.MaxVolume
	sess, err := tess.Open(cfg, spec.Blocks)
	if err != nil {
		t.Fatalf("jobdtest: direct open: %v", err)
	}
	defer sess.Close()
	var out [][]byte
	for i, snap := range spec.Snapshots {
		res, err := sess.Step(Particles(snap))
		if err != nil {
			t.Fatalf("jobdtest: direct step %d: %v", i+1, err)
		}
		merged, err := tess.MergeCanonical(res.Meshes, cfg.Domain, cfg.Periodic)
		if err != nil {
			t.Fatalf("jobdtest: direct merge %d: %v", i+1, err)
		}
		enc, err := merged.Encode()
		if err != nil {
			t.Fatalf("jobdtest: direct encode %d: %v", i+1, err)
		}
		out = append(out, enc)
	}
	return out
}

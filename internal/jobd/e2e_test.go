package jobd_test

// End-to-end tests of the tessd daemon through its real HTTP surface,
// using the in-process loopback harness (jobdtest). These are the
// acceptance tests of the service layer: byte-identity with direct
// sessions, queue-full admission control, cancellation mid-step, and
// fault containment across tenants — all under -race.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	tess "repro"
	"repro/internal/jobd"
	"repro/internal/jobd/jobdtest"
)

const e2eWait = 120 * time.Second

// happySpec is the canonical small inline job: 216 particles per step on
// a periodic 8-cube over 2 blocks.
func happySpec(seed int64, steps int) jobd.JobSpec {
	return jobd.JobSpec{
		L:           8,
		Blocks:      2,
		Ghost:       3,
		Snapshots:   jobdtest.Snapshots(seed, steps, 6, 8),
		IncludeMesh: true,
	}
}

// The daemon's output must be byte-identical to a direct single-client
// Open/Step/Close session fed the same snapshots: every step's merged
// canonical mesh, decoded from the NDJSON stream, equals the direct
// run's encoding bit for bit.
func TestE2EHappyPathByteIdentical(t *testing.T) {
	h := jobdtest.Start(t, jobd.Config{})
	spec := happySpec(1, 3)
	spec.Name = "happy"
	spec.IncludeObs = true

	st := h.Submit(t, spec)
	if st.State != jobd.StateQueued {
		t.Fatalf("submit state = %q, want %q", st.State, jobd.StateQueued)
	}
	events, final := h.Wait(t, st.ID, e2eWait)

	if final.State != jobd.StateDone || final.StepsDone != 3 || final.Error != nil {
		t.Fatalf("final status = %+v, want done after 3 steps", final)
	}
	term := jobdtest.Terminal(t, events)
	if term.Type != "done" || term.Steps != 3 {
		t.Fatalf("terminal event = %+v, want done with 3 steps", term)
	}
	// The stream is totally ordered with contiguous sequence numbers:
	// queued, started, 3 steps, done.
	wantTypes := []string{"queued", "started", "step", "step", "step", "done"}
	if len(events) != len(wantTypes) {
		t.Fatalf("got %d events, want %d", len(events), len(wantTypes))
	}
	for i, e := range events {
		if e.Type != wantTypes[i] {
			t.Errorf("event %d type = %q, want %q", i, e.Type, wantTypes[i])
		}
		if e.Seq != i {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, i)
		}
		if e.Job != st.ID {
			t.Errorf("event %d job = %q, want %q", i, e.Job, st.ID)
		}
	}
	for _, e := range events {
		if e.Type != "step" {
			continue
		}
		if e.Sites == 0 || e.Cells == 0 {
			t.Errorf("step %d reports %d sites, %d cells; want > 0", e.Step, e.Sites, e.Cells)
		}
		if e.Obs == nil {
			t.Errorf("step %d has no obs digest despite include_obs", e.Step)
		} else if len(e.Obs.Counters["sites"]) != spec.Blocks {
			t.Errorf("step %d obs sites counter has %d ranks, want %d",
				e.Step, len(e.Obs.Counters["sites"]), spec.Blocks)
		}
	}

	got := jobdtest.StepMeshes(t, events)
	want := jobdtest.DirectMeshes(t, spec)
	if len(got) != len(want) {
		t.Fatalf("daemon produced %d meshes, direct run %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("step %d: daemon mesh (%d bytes) differs from direct session mesh (%d bytes)",
				i+1, len(got[i]), len(want[i]))
		}
	}
}

// A saturated daemon must reject with 429 + Retry-After, and the queue
// must drain normally afterwards: admission control applies backpressure
// without wedging the service.
func TestE2EQueueFullAdmission(t *testing.T) {
	var once sync.Once
	running := make(chan struct{})
	gate := make(chan struct{})
	h := jobdtest.Start(t, jobd.Config{
		QueueCapacity: 1,
		MaxActive:     1,
		BeforeStep: func(jobID string, step int) {
			once.Do(func() { close(running) })
			<-gate
		},
	})

	// Job 1 occupies the single scheduler worker (parked in BeforeStep)...
	st1 := h.Submit(t, happySpec(2, 1))
	select {
	case <-running:
	case <-time.After(e2eWait):
		t.Fatal("first job never started")
	}
	// ...job 2 occupies the single queue slot...
	st2 := h.Submit(t, happySpec(3, 1))
	// ...so job 3 must be rejected with the admission-control error.
	_, err := h.Client.Submit(context.Background(), happySpec(4, 1))
	var apiErr *jobd.APIError
	if !errors.As(err, &apiErr) || !apiErr.Saturated() {
		t.Fatalf("submit into full queue: err = %v, want 429 APIError", err)
	}
	if apiErr.RetryAfter < time.Second {
		t.Errorf("Retry-After = %v, want >= 1s", apiErr.RetryAfter)
	}

	stats, err := h.Client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rejected != 1 || stats.Submitted != 2 || stats.Running != 1 || stats.QueueLen != 1 {
		t.Errorf("stats = %+v, want 1 rejected, 2 submitted, 1 running, 1 queued", stats)
	}

	// Release the gate: both admitted jobs must drain to done, and a
	// fresh submission must be accepted again.
	close(gate)
	if _, final := h.Wait(t, st1.ID, e2eWait); final.State != jobd.StateDone {
		t.Fatalf("job 1 final state = %q, want done (err %+v)", final.State, final.Error)
	}
	if _, final := h.Wait(t, st2.ID, e2eWait); final.State != jobd.StateDone {
		t.Fatalf("job 2 final state = %q, want done (err %+v)", final.State, final.Error)
	}
	st3 := h.Submit(t, happySpec(4, 1))
	if _, final := h.Wait(t, st3.ID, e2eWait); final.State != jobd.StateDone {
		t.Fatalf("post-drain job final state = %q, want done", final.State)
	}
}

// Cancel while a step is in flight: the job's fault plan stretches the
// exchange phase with long (abortable) send delays, the client cancels
// over HTTP, and the step must unblock promptly into a canceled terminal
// event instead of sleeping out the delay schedule.
func TestE2ECancelMidStep(t *testing.T) {
	stepEntered := make(chan struct{})
	var once sync.Once
	h := jobdtest.Start(t, jobd.Config{
		BeforeStep: func(jobID string, step int) {
			once.Do(func() { close(stepEntered) })
		},
	})
	spec := happySpec(5, 2)
	// Without the cancel, each message would sleep up to a minute — far
	// beyond this test's patience — so a prompt finish proves the abort
	// tears through the delays.
	spec.Fault = &jobd.FaultSpec{Seed: 9, SendDelayMaxMS: 60_000}

	st := h.Submit(t, spec)
	select {
	case <-stepEntered:
	case <-time.After(e2eWait):
		t.Fatal("job never reached its first step")
	}
	if _, err := h.Client.Cancel(context.Background(), st.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}

	events, final := h.Wait(t, st.ID, e2eWait)
	term := jobdtest.Terminal(t, events)
	if term.Type != "canceled" {
		t.Fatalf("terminal event = %+v, want canceled", term)
	}
	if final.State != jobd.StateCanceled {
		t.Fatalf("final state = %q, want canceled", final.State)
	}
	if final.Error == nil || final.Error.Kind != "canceled" {
		t.Fatalf("final error = %+v, want kind canceled", final.Error)
	}
	if final.StepsDone != 0 {
		t.Errorf("steps_done = %d, want 0 (canceled mid-first-step)", final.StepsDone)
	}
	// Canceling a terminal job is a no-op, not an error.
	if st2, err := h.Client.Cancel(context.Background(), st.ID); err != nil || st2.State != jobd.StateCanceled {
		t.Errorf("second cancel: status %+v, err %v", st2, err)
	}
}

// The acceptance criterion of the issue: three tenants run concurrently,
// one carries a fault plan that crashes its rank 1 mid-run. The crashed
// tenant must surface a structured error event over HTTP — kind, rank,
// fault site — while both sibling jobs complete with merged canonical
// meshes byte-identical to direct single-client sessions.
func TestE2ECrashTenantLeavesSiblingsUnharmed(t *testing.T) {
	h := jobdtest.Start(t, jobd.Config{MaxActive: 3})

	specA := happySpec(10, 3)
	specA.Name = "tenant-a"
	specC := happySpec(11, 3)
	specC.Name = "tenant-c"
	victim := happySpec(12, 3)
	victim.Name = "tenant-b"
	victim.IncludeMesh = false
	// Fault checkpoints accumulate across a session's steps, four per
	// step; checkpoint 6 is the second step's "compute" site on rank 1.
	victim.Fault = &jobd.FaultSpec{Seed: 13, CrashRank: 1, CrashStep: 6}

	stA := h.Submit(t, specA)
	stB := h.Submit(t, victim)
	stC := h.Submit(t, specC)

	// Wait for all three concurrently — they share the daemon.
	var wg sync.WaitGroup
	results := make(map[string][]jobd.Event, 3)
	finals := make(map[string]jobd.JobStatus, 3)
	var mu sync.Mutex
	for _, st := range []jobd.JobStatus{stA, stB, stC} {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			events, final := h.Wait(t, id, e2eWait)
			mu.Lock()
			results[id] = events
			finals[id] = final
			mu.Unlock()
		}(st.ID)
	}
	wg.Wait()

	// The victim failed with a fully structured error.
	finalB := finals[stB.ID]
	if finalB.State != jobd.StateFailed {
		t.Fatalf("victim state = %q, want failed (err %+v)", finalB.State, finalB.Error)
	}
	ei := finalB.Error
	if ei == nil {
		t.Fatal("victim has no error info")
	}
	if ei.Kind != "rank-crash" {
		t.Errorf("victim error kind = %q, want rank-crash", ei.Kind)
	}
	if ei.Rank == nil || *ei.Rank != 1 {
		t.Errorf("victim error rank = %v, want 1", ei.Rank)
	}
	if ei.FaultSite == "" || ei.FaultStep != 6 {
		t.Errorf("victim fault site/step = %q/%d, want named site at checkpoint 6", ei.FaultSite, ei.FaultStep)
	}
	if !ei.Aborted {
		t.Error("victim error not marked aborted")
	}
	termB := jobdtest.Terminal(t, results[stB.ID])
	if termB.Type != "error" {
		t.Fatalf("victim terminal event = %+v, want error", termB)
	}
	// The crash fired during step 2, so exactly step 1 completed.
	if finalB.StepsDone != 1 {
		t.Errorf("victim steps_done = %d, want 1", finalB.StepsDone)
	}

	// Both siblings completed, and their meshes are byte-identical to
	// direct single-client sessions fed the same snapshots.
	for _, tc := range []struct {
		id   string
		spec jobd.JobSpec
	}{{stA.ID, specA}, {stC.ID, specC}} {
		final := finals[tc.id]
		if final.State != jobd.StateDone || final.StepsDone != 3 {
			t.Fatalf("sibling %s (%s) state = %q after %d steps, want done after 3 (err %+v)",
				tc.id, tc.spec.Name, final.State, final.StepsDone, final.Error)
		}
		got := jobdtest.StepMeshes(t, results[tc.id])
		want := jobdtest.DirectMeshes(t, tc.spec)
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Errorf("sibling %s step %d mesh differs from direct run", tc.spec.Name, i+1)
			}
		}
	}

	stats, err := h.Client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Done != 2 || stats.Failed != 1 {
		t.Errorf("stats = %+v, want 2 done / 1 failed", stats)
	}
}

// The daemon's built-in N-body source runs a self-contained sim tenant:
// no inline snapshots, domain fixed by ng.
func TestE2ESimJob(t *testing.T) {
	h := jobdtest.Start(t, jobd.Config{})
	st := h.Submit(t, jobd.JobSpec{
		Blocks: 2,
		Ghost:  3,
		Sim:    &jobd.SimSpec{NG: 8, Steps: 2},
	})
	events, final := h.Wait(t, st.ID, e2eWait)
	if final.State != jobd.StateDone || final.StepsDone != 2 {
		t.Fatalf("sim job final = %+v, want done after 2 steps", final)
	}
	for _, e := range events {
		if e.Type == "step" && e.Sites != 8*8*8 {
			t.Errorf("sim step %d has %d sites, want %d", e.Step, e.Sites, 8*8*8)
		}
	}
}

// HTTP error mapping: bad specs are 400 before ever touching the queue,
// unknown jobs are 404.
func TestE2EHTTPErrorMapping(t *testing.T) {
	h := jobdtest.Start(t, jobd.Config{})
	ctx := context.Background()

	_, err := h.Client.Submit(ctx, jobd.JobSpec{L: 8}) // no blocks, no source
	var apiErr *jobd.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Errorf("bad spec: err = %v, want 400 APIError", err)
	}
	if _, err := h.Client.Status(ctx, "j9999"); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Errorf("unknown job status: err = %v, want 404 APIError", err)
	}
	if _, err := h.Client.Cancel(ctx, "j9999"); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Errorf("unknown job cancel: err = %v, want 404 APIError", err)
	}
}

// Event streams are replayable: reconnecting with ?from=N resumes exactly
// at sequence N with no gaps and no duplicates.
func TestE2EEventReplay(t *testing.T) {
	h := jobdtest.Start(t, jobd.Config{})
	st := h.Submit(t, happySpec(6, 2))
	full, _ := h.Wait(t, st.ID, e2eWait)

	for from := 0; from <= len(full); from++ {
		var got []jobd.Event
		err := h.Client.Events(context.Background(), st.ID, from, func(e jobd.Event) error {
			got = append(got, e)
			return nil
		})
		if err != nil {
			t.Fatalf("replay from %d: %v", from, err)
		}
		if len(got) != len(full)-from {
			t.Fatalf("replay from %d returned %d events, want %d", from, len(got), len(full)-from)
		}
		for i, e := range got {
			if e.Seq != from+i {
				t.Fatalf("replay from %d: event %d has seq %d", from, i, e.Seq)
			}
		}
	}
}

// After Close the daemon refuses new work with 503 and every live job is
// torn down; Close is idempotent.
func TestE2EShutdown(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 16)
	h := jobdtest.Start(t, jobd.Config{
		BeforeStep: func(jobID string, step int) {
			entered <- struct{}{}
			<-gate
		},
	})
	spec := happySpec(7, 1)
	// Long abortable delays so shutdown has something real to abort.
	spec.Fault = &jobd.FaultSpec{Seed: 3, SendDelayMaxMS: 60_000}
	st := h.Submit(t, spec)
	select {
	case <-entered:
	case <-time.After(e2eWait):
		t.Fatal("job never started stepping")
	}
	close(gate)

	h.D.Close()
	h.D.Close() // idempotent

	_, err := h.Client.Submit(context.Background(), happySpec(8, 1))
	var apiErr *jobd.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 503 {
		t.Fatalf("submit after close: err = %v, want 503 APIError", err)
	}
	final, err := h.Client.Status(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !final.State.Terminal() {
		t.Fatalf("job state after close = %q, want terminal", final.State)
	}
}

// Sanity-check the raw curl example from the tessd usage docs: a plain
// POST of the documented JSON body is accepted with 202.
func TestE2EDocExample(t *testing.T) {
	h := jobdtest.Start(t, jobd.Config{})
	resp, err := http.Post(h.BaseURL+"/v1/jobs", "application/json",
		strings.NewReader(`{"l":8,"blocks":2,"sim":{"ng":8,"steps":1},"include_mesh":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("doc example submit returned %d, want 202", resp.StatusCode)
	}
}

// The density-job acceptance contract: grids served by the daemon are
// byte-identical to a direct single-process ComputeDensity run of the same
// snapshots, the step events carry matching digests, and the z-plane
// endpoint serves exact sub-slices of the full grid.
func TestE2EDensityJobByteIdentical(t *testing.T) {
	h := jobdtest.Start(t, jobd.Config{})
	spec := happySpec(21, 2)
	spec.Name = "density"
	spec.Density = &jobd.DensitySpec{GridN: 16, Spectrum: true}

	st := h.Submit(t, spec)
	events, final := h.Wait(t, st.ID, e2eWait)
	if final.State != jobd.StateDone || final.StepsDone != 2 {
		t.Fatalf("final status = %+v, want done after 2 steps", final)
	}

	want := jobdtest.DirectDensityGrids(t, spec)
	ctx := context.Background()
	for _, e := range events {
		if e.Type != "step" {
			continue
		}
		if e.Density == nil {
			t.Fatalf("step %d event has no density digest", e.Step)
		}
		if e.Density.GridN != 16 {
			t.Errorf("step %d digest grid_n = %d, want 16", e.Step, e.Density.GridN)
		}
		if e.Density.SpectrumBins == 0 {
			t.Errorf("step %d digest has no spectrum bins despite spectrum:true", e.Step)
		}
		if e.Density.Degenerate != 0 {
			t.Errorf("step %d saw %d degenerate samples", e.Step, e.Density.Degenerate)
		}
		if d := e.Density.GridMass - e.Density.TracerMass; d > 0.2*e.Density.TracerMass || d < -0.2*e.Density.TracerMass {
			t.Errorf("step %d grid mass %g far from tracer mass %g",
				e.Step, e.Density.GridMass, e.Density.TracerMass)
		}

		grid, n, err := h.Client.DensityGrid(ctx, st.ID, e.Step)
		if err != nil {
			t.Fatalf("fetch density grid step %d: %v", e.Step, err)
		}
		if n != 16 {
			t.Errorf("grid header n = %d, want 16", n)
		}
		if !bytes.Equal(grid, want[e.Step-1]) {
			t.Errorf("step %d: daemon grid (%d bytes) differs from direct ComputeDensity (%d bytes)",
				e.Step, len(grid), len(want[e.Step-1]))
		}
		sum := sha256.Sum256(grid)
		if got := hex.EncodeToString(sum[:]); got != e.Density.Digest {
			t.Errorf("step %d: served grid hashes to %s, digest says %s", e.Step, got, e.Density.Digest)
		}

		z := n / 2
		slice, sn, err := h.Client.DensitySlice(ctx, st.ID, e.Step, z)
		if err != nil {
			t.Fatalf("fetch density slice step %d z=%d: %v", e.Step, z, err)
		}
		if sn != n {
			t.Errorf("slice header n = %d, want %d", sn, n)
		}
		plane := n * n * 8
		if !bytes.Equal(slice, grid[z*plane:(z+1)*plane]) {
			t.Errorf("step %d z=%d: slice is not the matching sub-range of the full grid", e.Step, z)
		}
	}

	// The grid outlives the job: a late fetch of step 1 still works, and
	// out-of-range requests map to clean HTTP errors.
	if _, _, err := h.Client.DensityGrid(ctx, st.ID, 1); err != nil {
		t.Errorf("post-completion grid fetch failed: %v", err)
	}
	var apiErr *jobd.APIError
	if _, _, err := h.Client.DensityGrid(ctx, st.ID, 99); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Errorf("missing step: err = %v, want 404", err)
	}
	if _, _, err := h.Client.DensitySlice(ctx, st.ID, 1, 999); !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Errorf("bad z: err = %v, want 400", err)
	}
}

// Density-spec validation surfaces as 400 at admission.
func TestE2EDensitySpecValidation(t *testing.T) {
	h := jobdtest.Start(t, jobd.Config{Limits: jobd.Limits{MaxGridN: 32}})
	ctx := context.Background()
	var apiErr *jobd.APIError
	for name, ds := range map[string]*jobd.DensitySpec{
		"tiny grid":     {GridN: 1},
		"over limit":    {GridN: 64},
		"non-pow2 fft":  {GridN: 12, Spectrum: true},
		"bad percentle": {GridN: 8, Percentiles: []float64{101}},
	} {
		spec := happySpec(30, 1)
		spec.Density = ds
		if _, err := h.Client.Submit(ctx, spec); !errors.As(err, &apiErr) || apiErr.Status != 400 {
			t.Errorf("%s: err = %v, want 400", name, err)
		}
	}
	spec := happySpec(31, 1)
	spec.Density = &jobd.DensitySpec{GridN: 12} // non-pow2 fine without spectrum
	if _, err := h.Client.Submit(ctx, spec); err != nil {
		t.Errorf("valid density spec rejected: %v", err)
	}
}

// A checkpointing job killed mid-run is resubmitted through the resume
// endpoint and picks up from its last committed checkpoint instead of
// starting over. The crashed run's meshes plus the resumed run's meshes
// together must be byte-identical to an uninterrupted direct session.
func TestE2EResumeFromCheckpoint(t *testing.T) {
	h := jobdtest.Start(t, jobd.Config{})
	ctx := context.Background()

	spec := happySpec(40, 3)
	spec.Name = "resumable"
	spec.CheckpointDir = filepath.Join(t.TempDir(), "ck")
	// Fault checkpoints accumulate four per session step; checkpoint 10
	// is step 3's "compute" site, so steps 1-2 complete and checkpoint.
	// The resumed session replays only step 3 (checkpoints 1-4 of its
	// own injector), so the same plan never fires again.
	spec.Fault = &jobd.FaultSpec{Seed: 41, CrashRank: 1, CrashStep: 10}

	st := h.Submit(t, spec)
	events, final := h.Wait(t, st.ID, e2eWait)
	if final.State != jobd.StateFailed || final.StepsDone != 2 {
		t.Fatalf("crashed job final = %+v, want failed after 2 steps", final)
	}
	firstMeshes := jobdtest.StepMeshes(t, events)
	if len(firstMeshes) != 2 {
		t.Fatalf("crashed job streamed %d step meshes, want 2", len(firstMeshes))
	}

	st2, err := h.Client.Resume(ctx, st.ID)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if st2.ID == st.ID {
		t.Fatalf("resume reused job id %s instead of minting a fresh one", st.ID)
	}
	events2, final2 := h.Wait(t, st2.ID, e2eWait)
	if final2.State != jobd.StateDone || final2.StepsDone != 3 {
		t.Fatalf("resumed job final = %+v, want done after 3 steps", final2)
	}
	wantTypes := []string{"queued", "started", "resumed", "step", "done"}
	if len(events2) != len(wantTypes) {
		t.Fatalf("resumed job emitted %d events, want %d", len(events2), len(wantTypes))
	}
	for i, e := range events2 {
		if e.Type != wantTypes[i] {
			t.Errorf("resumed event %d type = %q, want %q", i, e.Type, wantTypes[i])
		}
	}
	if events2[2].Step != 2 {
		t.Errorf("resumed event reports %d skipped steps, want 2", events2[2].Step)
	}
	term := jobdtest.Terminal(t, events2)
	if term.Type != "done" || term.Steps != 3 {
		t.Fatalf("resumed terminal = %+v, want done with 3 steps", term)
	}

	// Byte identity across the kill: run-1 steps 1-2 plus run-2 step 3
	// equal the uninterrupted direct session end to end.
	want := jobdtest.DirectMeshes(t, happySpec(40, 3))
	got := append(firstMeshes, jobdtest.StepMeshes(t, events2)...)
	if len(got) != len(want) {
		t.Fatalf("stitched runs produced %d meshes, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("step %d mesh differs from uninterrupted direct session", i+1)
		}
	}

	// A completed job is not resumable, and unknown ids stay 404.
	var apiErr *jobd.APIError
	if _, err := h.Client.Resume(ctx, st2.ID); !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Errorf("resume of done job: err = %v, want 400 APIError", err)
	}
	if _, err := h.Client.Resume(ctx, "j9999"); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Errorf("resume of unknown job: err = %v, want 404 APIError", err)
	}
}

// An out-of-core job reads its particles from a chunked snapshot file on
// the daemon's filesystem through a bounded resident window, and its
// mesh is byte-identical to the same particles submitted inline.
func TestE2ESnapshotURIJob(t *testing.T) {
	h := jobdtest.Start(t, jobd.Config{})
	ctx := context.Background()

	snap := jobdtest.Snapshots(50, 1, 6, 8)
	path := filepath.Join(t.TempDir(), "snap.bin")
	if err := tess.WriteSnapshot(path, jobdtest.Particles(snap[0]), 4); err != nil {
		t.Fatal(err)
	}
	spec := jobd.JobSpec{
		L:            8,
		Blocks:       2,
		Ghost:        3,
		SnapshotURI:  path,
		SourceWindow: 2,
		IncludeMesh:  true,
	}
	st := h.Submit(t, spec)
	events, final := h.Wait(t, st.ID, e2eWait)
	if final.State != jobd.StateDone || final.StepsDone != 1 {
		t.Fatalf("uri job final = %+v, want done after 1 step", final)
	}
	got := jobdtest.StepMeshes(t, events)
	inline := spec
	inline.SnapshotURI, inline.SourceWindow = "", 0
	inline.Snapshots = snap
	want := jobdtest.DirectMeshes(t, inline)
	if len(got) != 1 || !bytes.Equal(got[0], want[0]) {
		t.Error("uri job mesh differs from the inline direct session")
	}

	// Source-spec validation is 400 at admission.
	var apiErr *jobd.APIError
	both := spec
	both.Snapshots = snap
	if _, err := h.Client.Submit(ctx, both); !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Errorf("uri+inline sources: err = %v, want 400", err)
	}
	win := happySpec(51, 1)
	win.SourceWindow = 2
	if _, err := h.Client.Submit(ctx, win); !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Errorf("window without uri: err = %v, want 400", err)
	}
	dens := spec
	dens.Density = &jobd.DensitySpec{GridN: 8}
	if _, err := h.Client.Submit(ctx, dens); !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Errorf("density with uri: err = %v, want 400", err)
	}

	// A missing snapshot file fails the job at run time — a structured
	// error, not a hang.
	missing := spec
	missing.SnapshotURI = filepath.Join(t.TempDir(), "nope.bin")
	st2 := h.Submit(t, missing)
	_, final2 := h.Wait(t, st2.ID, e2eWait)
	if final2.State != jobd.StateFailed || final2.Error == nil {
		t.Fatalf("missing-snapshot job final = %+v, want failed with error info", final2)
	}
}

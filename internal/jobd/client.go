package jobd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Client is the typed HTTP client of the daemon API, shared by the
// tessctl CLI and the in-process e2e harness so both exercise the exact
// wire surface a real tenant sees.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:8437".
	Base string
	// HTTP is the underlying client; nil uses http.DefaultClient.
	HTTP *http.Client
}

// APIError is a non-2xx daemon response: the status code, the server's
// error message, and — for 429 admission rejections — the parsed
// Retry-After hint.
type APIError struct {
	Status     int
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("jobd: server returned %d: %s", e.Status, e.Message)
}

// Saturated reports whether the error is the admission-control rejection.
func (e *APIError) Saturated() bool { return e.Status == http.StatusTooManyRequests }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues a request and decodes the JSON response into out (when
// non-nil), converting non-2xx responses into *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("jobd: encode request: %w", err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiErrorFrom(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// apiErrorFrom converts a non-2xx response (draining its body).
func apiErrorFrom(resp *http.Response) error {
	apiErr := &APIError{Status: resp.StatusCode}
	var body apiError
	if err := json.NewDecoder(resp.Body).Decode(&body); err == nil {
		apiErr.Message = body.Error
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return apiErr
}

// Submit posts a job spec. A saturated daemon surfaces as an *APIError
// with Saturated() true and a RetryAfter hint.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st)
	return st, err
}

// Status fetches one job's status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// List fetches every job's status in submission order.
func (c *Client) List(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Cancel cancels a job and returns its status.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Resume resubmits a failed or canceled job as a fresh job and returns
// the new job's status; when the spec set checkpoint_dir, the new job
// continues from the committed checkpoint.
func (c *Client) Resume(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/resume", nil, &st)
	return st, err
}

// Stats fetches the daemon-wide stats.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// DensityGrid fetches one step's full density grid (raw little-endian
// float64, decodable with tess.DecodeDensityGrid) and the grid resolution
// from the X-Density-Grid-N header.
func (c *Client) DensityGrid(ctx context.Context, id string, step int) ([]byte, int, error) {
	return c.fetchDensity(ctx, fmt.Sprintf("%s/v1/jobs/%s/density/%d", c.Base, id, step))
}

// DensitySlice fetches one z-plane (n*n values) of a step's density grid.
func (c *Client) DensitySlice(ctx context.Context, id string, step, z int) ([]byte, int, error) {
	return c.fetchDensity(ctx, fmt.Sprintf("%s/v1/jobs/%s/density/%d?z=%d", c.Base, id, step, z))
}

func (c *Client) fetchDensity(ctx context.Context, url string) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, apiErrorFrom(resp)
	}
	n, err := strconv.Atoi(resp.Header.Get("X-Density-Grid-N"))
	if err != nil {
		return nil, 0, fmt.Errorf("jobd: bad X-Density-Grid-N header %q", resp.Header.Get("X-Density-Grid-N"))
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	return body, n, nil
}

// Events streams a job's NDJSON events from sequence from, calling fn for
// each. It returns nil when the stream ends at the job's terminal event,
// the context error on cancellation, or fn's error to stop early.
func (c *Client) Events(ctx context.Context, id string, from int, fn func(Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/jobs/%s/events?from=%d", c.Base, id, from), nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiErrorFrom(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024) // mesh payloads are large
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return fmt.Errorf("jobd: decode event: %w", err)
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	return nil
}

// Wait streams a job's events until its terminal event and returns the
// full event list plus the final status.
func (c *Client) Wait(ctx context.Context, id string) ([]Event, JobStatus, error) {
	var events []Event
	err := c.Events(ctx, id, 0, func(e Event) error {
		events = append(events, e)
		return nil
	})
	if err != nil {
		return events, JobStatus{}, err
	}
	if n := len(events); n == 0 || !terminalEventType(events[n-1].Type) {
		return events, JobStatus{}, errors.New("jobd: event stream ended without a terminal event")
	}
	st, err := c.Status(ctx, id)
	return events, st, err
}

// terminalEventType reports whether t ends a job's stream.
func terminalEventType(t string) bool {
	return t == "done" || t == "error" || t == "canceled"
}

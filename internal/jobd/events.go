package jobd

import (
	"sync"
	"time"
)

// Event is one NDJSON record of a job's event stream. Every job emits a
// totally ordered sequence: queued, then (unless canceled while queued)
// started, then one step event per completed Step, terminated by exactly
// one of done, error, or canceled. A job reopening a session checkpoint
// emits one "resumed" event (Step = steps skipped) between started and
// its first step. Seq numbers from 0 with no gaps, so a client can
// resume a broken stream with ?from=<next seq>.
type Event struct {
	Job  string    `json:"job"`
	Seq  int       `json:"seq"`
	Type string    `json:"type"` // "queued" | "started" | "resumed" | "step" | "done" | "error" | "canceled"
	Time time.Time `json:"time"`

	// Step fields (type "step"); for type "resumed", Step is the number
	// of checkpointed steps skipped. Step counts from 1.
	Step  int   `json:"step,omitempty"`
	Sites int64 `json:"sites,omitempty"`
	Cells int64 `json:"cells,omitempty"`
	// MeshB64 is the step's merged canonical mesh encoding, base64
	// (present when the spec set include_mesh).
	MeshB64 string `json:"mesh_b64,omitempty"`
	// Obs is the step's observability digest (include_obs).
	Obs *ObsDigest `json:"obs,omitempty"`
	// Density is the step's density-field digest (density jobs). The grid
	// itself is fetched from /v1/jobs/{id}/density/{step}.
	Density *DensityDigest `json:"density,omitempty"`

	// Steps is the completed step total (type "done").
	Steps int `json:"steps,omitempty"`

	// Error is the structured failure (type "error" or "canceled").
	Error *ErrorInfo `json:"error,omitempty"`
}

// ObsDigest is the per-step observability summary streamed in step
// events: the registered counters (per rank) and the phase imbalance.
type ObsDigest struct {
	// Counters maps counter name to per-rank values; JSON object keys
	// marshal sorted, so the wire form is deterministic.
	Counters         map[string][]int64 `json:"counters"`
	ComputeImbalance float64            `json:"compute_imbalance"`
	SentBytes        int64              `json:"sent_bytes"`
	RecvdBytes       int64              `json:"recvd_bytes"`
}

// DensityDigest is the per-step density-field summary streamed in step
// events. Digest is the SHA-256 of the grid's canonical little-endian
// encoding — the value a client compares against a direct single-process
// run to check decomposition independence without fetching the grid.
type DensityDigest struct {
	GridN      int     `json:"grid_n"`
	Digest     string  `json:"digest"`
	Mean       float64 `json:"mean"`
	Min        float64 `json:"min"`
	Max        float64 `json:"max"`
	VoidFrac   float64 `json:"void_frac"`
	GridMass   float64 `json:"grid_mass"`
	TracerMass float64 `json:"tracer_mass"`
	Outside    int64   `json:"outside,omitempty"`
	Degenerate int64   `json:"degenerate,omitempty"`
	// SpectrumBins is the number of power-spectrum bins computed (0 when
	// the spec did not request a spectrum).
	SpectrumBins int `json:"spectrum_bins,omitempty"`
}

// eventLog is a job's append-only event sequence with broadcast tailing:
// Append wakes every waiter, and a terminal event closes the log. One
// writer (the job's runner or the admission path), many readers (HTTP
// streams).
type eventLog struct {
	mu     sync.Mutex
	events []Event
	closed bool
	signal chan struct{} // closed and replaced on every append/close
}

func newEventLog() *eventLog {
	return &eventLog{signal: make(chan struct{})}
}

// append stamps seq and time onto e and appends it; terminal marks the
// log closed (no further events).
func (l *eventLog) append(e Event, terminal bool) {
	l.mu.Lock()
	e.Seq = len(l.events)
	e.Time = time.Now().UTC()
	l.events = append(l.events, e)
	if terminal {
		l.closed = true
	}
	old := l.signal
	l.signal = make(chan struct{})
	l.mu.Unlock()
	close(old)
}

// since returns a copy of the events from seq from on, whether the log is
// closed, and a channel that is closed on the next append (valid until
// then).
func (l *eventLog) since(from int) (evs []Event, closed bool, changed <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from < len(l.events) {
		evs = append(evs, l.events[from:]...)
	}
	return evs, l.closed, l.signal
}

package jobd

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	tess "repro"
)

// The event log is append-only with dense sequence numbers, broadcast
// wakeups, and a terminal close.
func TestEventLog(t *testing.T) {
	l := newEventLog()
	evs, closed, changed := l.since(0)
	if len(evs) != 0 || closed {
		t.Fatalf("fresh log since(0) = %d events, closed %v", len(evs), closed)
	}

	// A waiter parked on the change channel wakes on append.
	woke := make(chan struct{})
	go func() {
		<-changed
		close(woke)
	}()
	l.append(Event{Type: "queued"}, false)
	select {
	case <-woke:
	case <-time.After(5 * time.Second):
		t.Fatal("append did not wake the waiter")
	}

	l.append(Event{Type: "started"}, false)
	l.append(Event{Type: "done"}, true)
	evs, closed, _ = l.since(0)
	if len(evs) != 3 || !closed {
		t.Fatalf("since(0) = %d events, closed %v; want 3, true", len(evs), closed)
	}
	for i, e := range evs {
		if e.Seq != i {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
		if e.Time.IsZero() {
			t.Errorf("event %d has zero time", i)
		}
	}
	if evs, _, _ := l.since(2); len(evs) != 1 || evs[0].Type != "done" {
		t.Errorf("since(2) = %+v, want just the done event", evs)
	}
	if evs, closed, _ := l.since(99); len(evs) != 0 || !closed {
		t.Errorf("since past the end = %d events, closed %v", len(evs), closed)
	}
	if evs, _, _ := l.since(-5); len(evs) != 3 {
		t.Errorf("since(-5) = %d events, want full replay", len(evs))
	}
}

// Concurrent tailers all observe the full dense sequence (the -race half
// of the single-writer/many-reader contract).
func TestEventLogConcurrentTailers(t *testing.T) {
	l := newEventLog()
	const total = 100
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cur := 0
			for {
				evs, closed, changed := l.since(cur)
				for _, e := range evs {
					if e.Seq != cur {
						t.Errorf("tailer saw seq %d at position %d", e.Seq, cur)
						return
					}
					cur++
				}
				if closed {
					if cur != total {
						t.Errorf("tailer finished at %d events, want %d", cur, total)
					}
					return
				}
				<-changed
			}
		}()
	}
	for i := 0; i < total; i++ {
		l.append(Event{Type: "step", Step: i}, i == total-1)
	}
	wg.Wait()
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.QueueCapacity != 16 || c.MaxActive != 2 {
		t.Errorf("defaults = queue %d, active %d; want 16, 2", c.QueueCapacity, c.MaxActive)
	}
	if c.StallTimeout != 30*time.Second || c.RetryAfterBase != time.Second {
		t.Errorf("defaults = stall %v, retry base %v", c.StallTimeout, c.RetryAfterBase)
	}
	// Negative stall timeout means "disable the watchdog", which the
	// engine spells as zero.
	if got := (Config{StallTimeout: -1}).withDefaults().StallTimeout; got != 0 {
		t.Errorf("negative stall timeout normalized to %v, want 0", got)
	}
}

// The Retry-After hint grows with the backlog and saturates at 30s.
func TestRetryAfterScalesWithBacklog(t *testing.T) {
	d := New(Config{QueueCapacity: 4, MaxActive: 1, RetryAfterBase: 2 * time.Second})
	defer d.Close()
	if got := d.RetryAfter(); got != 2*time.Second {
		t.Errorf("idle RetryAfter = %v, want 2s (minimum one backlog unit)", got)
	}
	d.mu.Lock()
	d.running = 40 // simulate a deep backlog
	d.mu.Unlock()
	if got := d.RetryAfter(); got != 30*time.Second {
		t.Errorf("deep-backlog RetryAfter = %v, want the 30s cap", got)
	}
	d.mu.Lock()
	d.running = 0
	d.mu.Unlock()
}

// classifyError extracts structured fields from each failure class of the
// engine's error chains.
func TestClassifyError(t *testing.T) {
	cancel := fmt.Errorf("step: %w", fmt.Errorf("%w: j0001", ErrCanceled))
	if info := classifyError(cancel); info.Kind != "canceled" {
		t.Errorf("canceled chain classified as %q", info.Kind)
	}

	crash := fmt.Errorf("session: %w", &tess.RankError{
		Rank:  3,
		Value: &tess.FaultCrash{Rank: 3, Step: 6, Site: "compute"},
	})
	info := classifyError(crash)
	if info.Kind != "rank-crash" || info.Rank == nil || *info.Rank != 3 {
		t.Errorf("rank crash classified as %+v", info)
	}

	// The injected-fault site only decorates chains that carry a
	// *FaultCrash as an error (via RankError.Unwrap when Value is one).
	armed := classifyError(fmt.Errorf("x: %w", &tess.RankError{Rank: 1, Value: "plain panic"}))
	if armed.FaultSite != "" {
		t.Errorf("plain panic chain has fault site %q", armed.FaultSite)
	}

	stall := fmt.Errorf("watchdog: %w", &tess.StallError{})
	if info := classifyError(stall); info.Kind != "stall" {
		t.Errorf("stall chain classified as %q", info.Kind)
	}

	if info := classifyError(errors.New("misc failure")); info.Kind != "pipeline" {
		t.Errorf("generic error classified as %q", info.Kind)
	}
}

// Direct (non-HTTP) daemon surface: submit validates and rejects before
// the queue, unknown IDs are errors, Close refuses further work.
func TestDaemonSubmitAndShutdown(t *testing.T) {
	d := New(Config{QueueCapacity: 2, MaxActive: 1})

	if _, err := d.Submit(JobSpec{}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("empty spec error = %v, want ErrBadSpec", err)
	}
	if d.Stats().Rejected != 1 {
		t.Errorf("rejected counter = %d after bad spec, want 1", d.Stats().Rejected)
	}
	if _, err := d.Job("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job error = %v, want ErrUnknownJob", err)
	}

	d.Close()
	spec := JobSpec{L: 8, Blocks: 1, Snapshots: [][][3]float64{{{1, 1, 1}}}}
	if _, err := d.Submit(spec); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-close submit error = %v, want ErrShuttingDown", err)
	}
}

// RankError.Unwrap must expose a FaultCrash panic value to errors.As —
// the daemon's structured error reporting depends on it.
func TestRankErrorExposesFaultCrash(t *testing.T) {
	err := fmt.Errorf("wrapped: %w", &tess.RankError{
		Rank:  1,
		Value: &tess.FaultCrash{Rank: 1, Step: 2, Site: "exchange"},
	})
	var fc *tess.FaultCrash
	if !errors.As(err, &fc) || fc.Site != "exchange" {
		t.Fatalf("FaultCrash not reachable through RankError chain: %v", err)
	}
}

package delaunay

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/voronoi"
)

// TestVoronoiDuality verifies the relationship the paper states in
// Sec. II-B — "the Delaunay is simply its dual" — by checking that, for
// interior sites, the Delaunay edge set equals the Voronoi face-adjacency
// graph produced by the independent cell-clipping engine.
func TestVoronoiDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(115))
	const L = 10.0
	var pts []geom.Vec3
	for i := 0; i < 300; i++ {
		pts = append(pts, geom.V(rng.Float64()*L, rng.Float64()*L, rng.Float64()*L))
	}
	ids := make([]int64, len(pts))
	for i := range ids {
		ids[i] = int64(i)
	}

	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	delEdges := map[[2]int]bool{}
	for _, e := range tr.Edges() {
		delEdges[e] = true
	}

	// Non-periodic Voronoi over the same points: cells bounded by the
	// domain box; only cells proven complete (interior, fully shaped by
	// neighbors) are compared.
	ix := voronoi.NewIndex(pts, ids, 0)
	interior := 0
	for i, site := range pts {
		cell, err := voronoi.ComputeCell(ix, site, ids[i], geom.Cube(site, L))
		if err != nil {
			t.Fatal(err)
		}
		if !cell.Complete {
			continue
		}
		interior++
		// Every Voronoi face neighbor must be a Delaunay edge.
		for _, nb := range cell.NeighborIDs() {
			a, b := i, int(nb)
			if a > b {
				a, b = b, a
			}
			if !delEdges[[2]int{a, b}] {
				t.Fatalf("Voronoi adjacency (%d, %d) is not a Delaunay edge", a, b)
			}
		}
		// And every Delaunay edge from an interior site must be a Voronoi
		// face neighbor (generic position: no degenerate cospherical sets
		// with random float64 coordinates).
		vorNb := map[int]bool{}
		for _, nb := range cell.NeighborIDs() {
			vorNb[int(nb)] = true
		}
		for e := range delEdges {
			var other int
			switch {
			case e[0] == i:
				other = e[1]
			case e[1] == i:
				other = e[0]
			default:
				continue
			}
			if !vorNb[other] {
				t.Fatalf("Delaunay edge (%d, %d) missing from Voronoi adjacency of interior site %d",
					e[0], e[1], i)
			}
		}
	}
	if interior < 50 {
		t.Fatalf("only %d interior cells; duality check underpowered", interior)
	}
}

// TestCircumcentersAreVoronoiVertices checks the dual vertex relationship:
// each tetrahedron's circumcenter is a vertex of the Voronoi cells of its
// four sites (for interior, complete cells).
func TestCircumcentersAreVoronoiVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(116))
	const L = 8.0
	var pts []geom.Vec3
	for i := 0; i < 150; i++ {
		pts = append(pts, geom.V(rng.Float64()*L, rng.Float64()*L, rng.Float64()*L))
	}
	ids := make([]int64, len(pts))
	for i := range ids {
		ids[i] = int64(i)
	}
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	ccs := tr.Circumcenters()
	ix := voronoi.NewIndex(pts, ids, 0)

	cells := map[int]*voronoi.Cell{}
	cellOf := func(i int) *voronoi.Cell {
		if c, ok := cells[i]; ok {
			return c
		}
		c, err := voronoi.ComputeCell(ix, pts[i], ids[i], geom.Cube(pts[i], L))
		if err != nil {
			t.Fatal(err)
		}
		cells[i] = c
		return c
	}

	checked := 0
	for ti, tet := range tr.Tets {
		cc := ccs[ti]
		// Only circumcenters well inside the domain are vertices of
		// complete cells.
		if cc.X < 1 || cc.X > L-1 || cc.Y < 1 || cc.Y > L-1 || cc.Z < 1 || cc.Z > L-1 {
			continue
		}
		ok := true
		for _, vi := range tet.V {
			c := cellOf(vi)
			if !c.Complete {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, vi := range tet.V {
			c := cellOf(vi)
			found := false
			for _, v := range c.Verts {
				if v.Dist(cc) < 1e-6 {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("circumcenter of tet %d (%v) is not a vertex of site %d's cell",
					ti, cc, vi)
			}
		}
		checked++
		if checked > 200 {
			break
		}
	}
	if checked < 30 {
		t.Fatalf("only %d circumcenters checked", checked)
	}
}

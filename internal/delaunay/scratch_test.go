package delaunay

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
)

func randomCloud(seed int64, n int, scale float64) []geom.Vec3 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.V(rng.Float64()*scale, rng.Float64()*scale, rng.Float64()*scale)
	}
	return pts
}

func TestRepRecordsDuplicates(t *testing.T) {
	pts := randomCloud(11, 40, 4)
	// Append exact duplicates of points 3 and 7.
	pts = append(pts, pts[3], pts[7])
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Rep == nil {
		t.Fatal("Build left Rep nil")
	}
	if got := tr.Representative(40); got != 3 {
		t.Errorf("Rep[40] = %d, want 3", got)
	}
	if got := tr.Representative(41); got != 7 {
		t.Errorf("Rep[41] = %d, want 7", got)
	}
	for i := 0; i < 40; i++ {
		if tr.Representative(i) != i {
			t.Errorf("Rep[%d] = %d, want identity", i, tr.Representative(i))
		}
	}
	// Duplicates must not appear as tet vertices.
	for _, tet := range tr.Tets {
		for _, v := range tet.V {
			if v >= 40 {
				t.Fatalf("duplicate vertex %d appears in a tet", v)
			}
		}
	}
}

func TestBuilderReuseMatchesFreshBuild(t *testing.T) {
	var s Builder
	for round := 0; round < 3; round++ {
		pts := randomCloud(int64(100+round), 120+30*round, 5)
		warm, err := s.Build(pts)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		cold, err := Build(pts)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !reflect.DeepEqual(warm.Tets, cold.Tets) {
			t.Fatalf("round %d: warm tets differ from cold build", round)
		}
		if !reflect.DeepEqual(warm.Rep, cold.Rep) {
			t.Fatalf("round %d: warm Rep differs from cold build", round)
		}
	}
}

func TestLocatorAgreesWithExhaustive(t *testing.T) {
	pts := randomCloud(7, 300, 6)
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	loc := tr.NewLocator(0)

	contains := func(ti int, p geom.Vec3) bool {
		for f := 0; f < 4; f++ {
			fv := faceVerts(tr.Tets[ti].V, f)
			if geom.Orient3DVal(tr.Points[fv[0]], tr.Points[fv[1]], tr.Points[fv[2]], p) < -1e-12 {
				return false
			}
		}
		return true
	}

	// Tet barycenters are unambiguously interior: the locator must find a
	// containing tet for each, and it must actually contain the point.
	for ti := range tr.Tets {
		tet := tr.Tets[ti]
		var c geom.Vec3
		for _, v := range tet.V {
			c = c.Add(tr.Points[v])
		}
		c = c.Scale(0.25)
		got := loc.Locate(c)
		if got < 0 {
			t.Fatalf("locator lost barycenter of tet %d", ti)
		}
		if !contains(got, c) {
			t.Fatalf("locator returned tet %d not containing barycenter of %d", got, ti)
		}
	}

	// Far-outside points must read outside, matching the exhaustive scan.
	outside := []geom.Vec3{geom.V(-50, 0, 0), geom.V(3, 99, 3), geom.V(7, 7, -80)}
	for _, p := range outside {
		if got := loc.Locate(p); got != -1 {
			t.Errorf("locator claims %v is inside tet %d", p, got)
		}
		if got := tr.Locate(p); got != -1 {
			t.Errorf("exhaustive Locate claims %v is inside tet %d", p, got)
		}
	}

	// Locator results are pure functions of (triangulation, point): a second
	// locator over the same mesh answers identically.
	loc2 := tr.NewLocator(0)
	for i := 0; i < 200; i++ {
		p := randomCloud(int64(500+i), 1, 6)[0]
		if loc.Locate(p) != loc2.Locate(p) {
			t.Fatalf("locator nondeterminism at %v", p)
		}
	}
}

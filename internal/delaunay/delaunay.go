// Package delaunay implements an incremental 3D Delaunay tetrahedralization
// (Bowyer-Watson with walking point location). The paper treats the Delaunay
// triangulation as the dual of the Voronoi tessellation (Sec. II-B) and its
// lineage of void finders (ZOBOV, the Watershed Void Finder) starts from the
// Delaunay Tessellation Field Estimator; this package provides both the
// dual-extraction cross-check used by the tests and the DTFE density
// estimator (internal/dtfe).
package delaunay

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
)

// ErrDegenerate is returned when fewer than 4 non-coplanar points are given.
var ErrDegenerate = errors.New("delaunay: degenerate input")

// Tet is one tetrahedron of the final triangulation, positively oriented
// (Orient3D(V[0], V[1], V[2], V[3]) > 0), with vertex indices into the
// input point slice.
type Tet struct {
	V [4]int
	// Nb[i] is the index (into Triangulation.Tets) of the neighbor across
	// the face opposite V[i], or -1 on the convex hull boundary.
	Nb [4]int
}

// Triangulation is a 3D Delaunay tetrahedralization.
type Triangulation struct {
	Points []geom.Vec3
	Tets   []Tet
	// Rep maps each input point to the vertex that represents it in the
	// triangulation: Rep[i] == i for points that became vertices, and the
	// index of the earlier coincident vertex for points merged away as
	// duplicates. A nil Rep (hand-built triangulations) means the identity
	// mapping.
	Rep []int
}

// Representative returns the vertex index that represents input point i
// (i itself unless i was merged away as a duplicate).
func (tr *Triangulation) Representative(i int) int {
	if tr.Rep == nil {
		return i
	}
	return tr.Rep[i]
}

type tet struct {
	v    [4]int
	nb   [4]int // index of neighbor opposite v[i]; -1 if none
	dead bool
}

// bface is one boundary face of a Bowyer-Watson cavity.
type bface struct {
	verts   [3]int // oriented facing away from the cavity
	outside int    // neighbor tet beyond the face, or -1
}

type builder struct {
	pts  []geom.Vec3 // input points + 4 super vertices at the end
	n    int         // number of real points
	tets []tet
	last int   // walk start hint
	rep  []int // rep[i]: representative vertex of a merged duplicate, else i

	// Per-insert workspace, retained across insertions (and, through
	// Builder, across whole builds).
	cavity   []int
	inCav    []uint32 // stamp array: inCav[t] == stamp means t is in the cavity
	stamp    uint32
	boundary []bface
	faceMap  map[[3]int]int

	// Output buffers reused across builds.
	outTets []Tet
	remap   []int
}

// Builder is a reusable triangulation workspace. The zero value is ready to
// use; successive Builds reuse the previous build's tet, cavity, and output
// storage, removing most allocation from warm in situ rebuilds.
//
// The Triangulation returned by Build aliases the Builder's buffers and is
// valid only until the next Build on the same Builder; callers that need to
// keep the previous mesh must copy it first (the same loan contract as
// Session.Step). A Builder must not be used from multiple goroutines
// concurrently.
type Builder struct {
	b builder
}

// Build computes the Delaunay tetrahedralization of pts. Duplicate points
// (within ~1e-12 of the input extent) are merged: only the first occurrence
// becomes a vertex, and Rep records the mapping.
func Build(pts []geom.Vec3) (*Triangulation, error) {
	var s Builder
	return s.Build(pts)
}

// Build is like the package-level Build but reuses the Builder's retained
// buffers. See the Builder doc for the aliasing contract.
func (s *Builder) Build(pts []geom.Vec3) (*Triangulation, error) {
	if len(pts) < 4 {
		return nil, ErrDegenerate
	}
	for _, p := range pts {
		if !p.IsFinite() {
			return nil, fmt.Errorf("delaunay: non-finite point %v", p)
		}
	}
	bb := geom.BoundingBox(pts)
	size := math.Max(bb.Size().MaxAbs(), 1e-12)
	c := bb.Center()

	b := &s.b
	b.n = len(pts)
	b.pts = append(b.pts[:0], pts...)
	b.pts = append(b.pts, superVertices(c, size)...)
	if cap(b.rep) < len(pts) {
		b.rep = make([]int, len(pts))
	}
	b.rep = b.rep[:len(pts)]
	for i := range b.rep {
		b.rep[i] = i
	}

	// Initial super-tetrahedron.
	s0, s1, s2, s3 := len(pts), len(pts)+1, len(pts)+2, len(pts)+3
	first := tet{v: [4]int{s0, s1, s2, s3}, nb: [4]int{-1, -1, -1, -1}}
	if geom.Orient3DVal(b.pts[s0], b.pts[s1], b.pts[s2], b.pts[s3]) < 0 {
		first.v[2], first.v[3] = first.v[3], first.v[2]
	}
	b.tets = append(b.tets[:0], first)
	b.last = 0

	dupEps := 1e-12 * size
	for i := 0; i < len(pts); i++ {
		if err := b.insert(i, dupEps); err != nil {
			return nil, err
		}
	}

	// Strip tetrahedra using super vertices.
	if cap(b.remap) < len(b.tets) {
		b.remap = make([]int, len(b.tets))
	}
	b.remap = b.remap[:len(b.tets)]
	for i := range b.remap {
		b.remap[i] = -1
	}
	b.outTets = b.outTets[:0]
	for i, t := range b.tets {
		if t.dead || t.v[0] >= b.n || t.v[1] >= b.n || t.v[2] >= b.n || t.v[3] >= b.n {
			continue
		}
		b.remap[i] = len(b.outTets)
		b.outTets = append(b.outTets, Tet{V: t.v})
	}
	if len(b.outTets) == 0 {
		return nil, ErrDegenerate
	}
	for i, t := range b.tets {
		ni := b.remap[i]
		if ni < 0 {
			continue
		}
		for f := 0; f < 4; f++ {
			if t.nb[f] >= 0 && b.remap[t.nb[f]] >= 0 {
				b.outTets[ni].Nb[f] = b.remap[t.nb[f]]
			} else {
				b.outTets[ni].Nb[f] = -1
			}
		}
	}
	return &Triangulation{Points: pts, Tets: b.outTets, Rep: b.rep}, nil
}

// superVertices returns four vertices of a huge regular tetrahedron around
// center c.
func superVertices(c geom.Vec3, size float64) []geom.Vec3 {
	m := 64 * size
	return []geom.Vec3{
		c.Add(geom.V(m, m, m)),
		c.Add(geom.V(m, -m, -m)),
		c.Add(geom.V(-m, m, -m)),
		c.Add(geom.V(-m, -m, m)),
	}
}

// markCavity resets the cavity stamp for a new insertion; the stamp array
// covers the tets that exist before the insertion appends new ones.
func (b *builder) markCavity() {
	if cap(b.inCav) < len(b.tets) {
		b.inCav = make([]uint32, len(b.tets))
		b.stamp = 0
	}
	b.inCav = b.inCav[:len(b.tets)]
	b.stamp++
	if b.stamp == 0 { // wrapped: clear and restart
		clear(b.inCav)
		b.stamp = 1
	}
}

func (b *builder) inCavity(ti int) bool {
	return b.inCav[ti] == b.stamp
}

// insert adds point index pi via Bowyer-Watson cavity retriangulation.
func (b *builder) insert(pi int, dupEps float64) error {
	p := b.pts[pi]
	ti, err := b.locate(p)
	if err != nil {
		return err
	}
	// Duplicate check against the containing tet's vertices.
	for _, vi := range b.tets[ti].v {
		if b.pts[vi].Dist(p) <= dupEps {
			if vi < b.n {
				b.rep[pi] = vi
			}
			return nil // merged duplicate
		}
	}

	// Cavity: all tets whose circumsphere contains p, BFS from ti.
	b.markCavity()
	b.cavity = append(b.cavity[:0], ti)
	b.inCav[ti] = b.stamp
	for head := 0; head < len(b.cavity); head++ {
		cur := b.cavity[head]
		for _, nb := range b.tets[cur].nb {
			if nb < 0 || b.inCavity(nb) || b.tets[nb].dead {
				continue
			}
			if b.inSphere(nb, p) {
				b.inCav[nb] = b.stamp
				b.cavity = append(b.cavity, nb)
			}
		}
	}

	// Boundary faces of the cavity.
	b.boundary = b.boundary[:0]
	for _, ci := range b.cavity {
		t := b.tets[ci]
		for f := 0; f < 4; f++ {
			nb := t.nb[f]
			if nb >= 0 && b.inCavity(nb) {
				continue
			}
			fv := faceVerts(t.v, f)
			b.boundary = append(b.boundary, bface{verts: fv, outside: nb})
		}
	}
	if len(b.boundary) < 4 {
		return fmt.Errorf("delaunay: degenerate cavity (%d boundary faces) inserting %v", len(b.boundary), p)
	}

	for _, ci := range b.cavity {
		b.tets[ci].dead = true
	}

	// New tets: each boundary face plus p. Faces from faceVerts are
	// oriented so that Orient3D(fv[0], fv[1], fv[2], apex-of-old-tet) > 0;
	// the cavity interior (where p is) is on the other side, so (fv[0],
	// fv[2], fv[1], p) is positively oriented.
	if b.faceMap == nil {
		b.faceMap = make(map[[3]int]int, 3*len(b.boundary))
	} else {
		clear(b.faceMap)
	}
	firstNew := len(b.tets)
	for _, bf := range b.boundary {
		nt := tet{v: [4]int{bf.verts[0], bf.verts[2], bf.verts[1], pi}, nb: [4]int{-1, -1, -1, -1}}
		if geom.Orient3DVal(b.pts[nt.v[0]], b.pts[nt.v[1]], b.pts[nt.v[2]], b.pts[nt.v[3]]) <= 0 {
			nt.v[1], nt.v[2] = nt.v[2], nt.v[1]
		}
		idx := len(b.tets)
		b.tets = append(b.tets, nt)

		// Link across the boundary face to the outside tet.
		if bf.outside >= 0 {
			// In the new tet, the face not containing p is opposite p.
			fOpp := -1
			for f := 0; f < 4; f++ {
				if b.tets[idx].v[f] == pi {
					fOpp = f
				}
			}
			b.tets[idx].nb[fOpp] = bf.outside
			// And fix the outside tet's pointer (it pointed at a dead tet).
			out := &b.tets[bf.outside]
			for f := 0; f < 4; f++ {
				if out.nb[f] >= 0 && b.tets[out.nb[f]].dead {
					// Check this face matches (same vertex set).
					if sameFace(faceVerts(out.v, f), bf.verts) {
						out.nb[f] = idx
					}
				}
			}
		}
		// Register the three faces containing p for new-new linking.
		for f := 0; f < 4; f++ {
			if b.tets[idx].v[f] == pi {
				continue
			}
			key := sortedFace(faceVerts(b.tets[idx].v, f))
			if other, ok := b.faceMap[key]; ok {
				b.tets[idx].nb[f] = other >> 2
				b.tets[other>>2].nb[other&3] = idx
				delete(b.faceMap, key)
			} else {
				b.faceMap[key] = idx<<2 | f
			}
		}
	}
	if len(b.faceMap) != 0 {
		return fmt.Errorf("delaunay: %d unmatched internal faces inserting %v", len(b.faceMap), p)
	}
	b.last = firstNew
	return nil
}

// inSphere reports whether p is strictly inside the circumsphere of tet ti.
// On-sphere (cospherical) points are treated as outside, which keeps the
// cavity structurally sound on degenerate inputs such as exact lattices at
// the cost of an arbitrary (but valid) triangulation of the cospherical
// configuration.
func (b *builder) inSphere(ti int, p geom.Vec3) bool {
	t := b.tets[ti]
	return geom.InSphere(b.pts[t.v[0]], b.pts[t.v[1]], b.pts[t.v[2]], b.pts[t.v[3]], p) > 0
}

// locate finds a live tet containing p, walking from the last insertion
// site and falling back to exhaustive search on numerical trouble.
func (b *builder) locate(p geom.Vec3) (int, error) {
	ti := b.last
	if ti >= len(b.tets) || b.tets[ti].dead {
		ti = b.firstLive()
	}
	for steps := 0; steps < 4*len(b.tets)+16; steps++ {
		t := b.tets[ti]
		moved := false
		for f := 0; f < 4; f++ {
			fv := faceVerts(t.v, f)
			// Face oriented outward relative to opposite vertex; p beyond
			// it means the containing tet is on the other side.
			if geom.Orient3DVal(b.pts[fv[0]], b.pts[fv[1]], b.pts[fv[2]], p) < 0 {
				if t.nb[f] < 0 {
					return ti, fmt.Errorf("delaunay: walked off the hull locating %v", p)
				}
				ti = t.nb[f]
				moved = true
				break
			}
		}
		if !moved {
			return ti, nil
		}
	}
	// Fallback: exhaustive scan.
	for i := range b.tets {
		if b.tets[i].dead {
			continue
		}
		t := b.tets[i]
		inside := true
		for f := 0; f < 4; f++ {
			fv := faceVerts(t.v, f)
			if geom.Orient3DVal(b.pts[fv[0]], b.pts[fv[1]], b.pts[fv[2]], p) < -1e-12 {
				inside = false
				break
			}
		}
		if inside {
			return i, nil
		}
	}
	return 0, fmt.Errorf("delaunay: no tet contains %v", p)
}

func (b *builder) firstLive() int {
	for i := range b.tets {
		if !b.tets[i].dead {
			return i
		}
	}
	return 0
}

// faceVerts returns the vertices of the face opposite v[f], oriented so
// that Orient3D(face, v[f]) > 0 for a positively oriented tet.
func faceVerts(v [4]int, f int) [3]int {
	// For a positively oriented tet (v0,v1,v2,v3):
	// face opposite 0: (1,3,2), opposite 1: (0,2,3),
	// opposite 2: (0,3,1), opposite 3: (0,1,2).
	switch f {
	case 0:
		return [3]int{v[1], v[3], v[2]}
	case 1:
		return [3]int{v[0], v[2], v[3]}
	case 2:
		return [3]int{v[0], v[3], v[1]}
	default:
		return [3]int{v[0], v[1], v[2]}
	}
}

func sortedFace(f [3]int) [3]int {
	if f[0] > f[1] {
		f[0], f[1] = f[1], f[0]
	}
	if f[1] > f[2] {
		f[1], f[2] = f[2], f[1]
	}
	if f[0] > f[1] {
		f[0], f[1] = f[1], f[0]
	}
	return f
}

func sameFace(a, b [3]int) bool {
	return sortedFace(a) == sortedFace(b)
}

// Circumcenters returns the circumcenter of every tetrahedron — the dual
// Voronoi vertices.
func (tr *Triangulation) Circumcenters() []geom.Vec3 {
	out := make([]geom.Vec3, len(tr.Tets))
	for i, t := range tr.Tets {
		cc, _ := geom.Circumcenter(tr.Points[t.V[0]], tr.Points[t.V[1]], tr.Points[t.V[2]], tr.Points[t.V[3]])
		out[i] = cc
	}
	return out
}

// Edges returns the unique vertex-index edges of the triangulation — the
// dual of the Voronoi face-adjacency graph.
func (tr *Triangulation) Edges() [][2]int {
	seen := map[[2]int]bool{}
	var out [][2]int
	for _, t := range tr.Tets {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				a, b := t.V[i], t.V[j]
				if a > b {
					a, b = b, a
				}
				k := [2]int{a, b}
				if !seen[k] {
					seen[k] = true
					out = append(out, k)
				}
			}
		}
	}
	return out
}

// VertexStars returns, for each input vertex, the indices of the tets
// incident to it. Vertices merged as duplicates (or outside the final
// triangulation) have empty stars.
func (tr *Triangulation) VertexStars() [][]int {
	stars := make([][]int, len(tr.Points))
	for ti, t := range tr.Tets {
		for _, vi := range t.V {
			stars[vi] = append(stars[vi], ti)
		}
	}
	return stars
}

// TetVolume returns the volume of tet ti.
func (tr *Triangulation) TetVolume(ti int) float64 {
	t := tr.Tets[ti]
	return geom.TetVolume(tr.Points[t.V[0]], tr.Points[t.V[1]], tr.Points[t.V[2]], tr.Points[t.V[3]])
}

// TotalVolume returns the volume of the triangulated region (the convex
// hull of the input).
func (tr *Triangulation) TotalVolume() float64 {
	var v float64
	for i := range tr.Tets {
		v += tr.TetVolume(i)
	}
	return v
}

// Locate returns the index of a tet containing p, or -1 if p is outside
// the convex hull.
func (tr *Triangulation) Locate(p geom.Vec3) int {
	for i, t := range tr.Tets {
		inside := true
		for f := 0; f < 4; f++ {
			fv := faceVerts(t.V, f)
			if geom.Orient3DVal(tr.Points[fv[0]], tr.Points[fv[1]], tr.Points[fv[2]], p) < -1e-12 {
				inside = false
				break
			}
		}
		if inside {
			return i
		}
	}
	return -1
}

package delaunay

import (
	"math"

	"repro/internal/geom"
)

// Locator answers repeated point-location queries against a fixed
// Triangulation in roughly constant time by seeding an orientation walk
// from a coarse uniform grid of precomputed starting tets. A Locator is
// immutable after construction and safe for concurrent use, and a query's
// result depends only on the triangulation and the query point — never on
// query order or goroutine schedule — so grid sampling through a shared
// Locator is deterministic under any parallel partitioning of the grid.
type Locator struct {
	tr    *Triangulation
	box   geom.Box
	inv   geom.Vec3 // seed cells per unit length along each axis
	m     int
	seeds []int32
}

// NewLocator builds a locator with m^3 seed cells; m <= 0 picks a
// resolution from the tet count (about one seed cell per 8 tets), and m is
// clamped to [1, 64]. The seed sweep itself walks serially in a fixed scan
// order, so the resulting seeds are deterministic.
func (tr *Triangulation) NewLocator(m int) *Locator {
	if m <= 0 {
		m = int(math.Cbrt(float64(len(tr.Tets)) / 8))
	}
	m = min(max(m, 1), 64)
	box := geom.BoundingBox(tr.Points)
	l := &Locator{tr: tr, box: box, m: m, seeds: make([]int32, m*m*m)}
	size := box.Size()
	invAxis := func(s float64) float64 {
		if s <= 0 {
			return 0
		}
		return float64(m) / s
	}
	l.inv = geom.V(invAxis(size.X), invAxis(size.Y), invAxis(size.Z))

	cur := 0
	idx := 0
	for k := 0; k < m; k++ {
		for j := 0; j < m; j++ {
			for i := 0; i < m; i++ {
				c := geom.Vec3{
					X: box.Min.X + (float64(i)+0.5)*size.X/float64(m),
					Y: box.Min.Y + (float64(j)+0.5)*size.Y/float64(m),
					Z: box.Min.Z + (float64(k)+0.5)*size.Z/float64(m),
				}
				// Cell centers outside the hull (or walks that hit the
				// degenerate-cycle cap) keep the previous seed: any live
				// tet is a valid walk start.
				if ti := tr.walk(c, cur); ti >= 0 {
					cur = ti
				}
				l.seeds[idx] = int32(cur)
				idx++
			}
		}
	}
	return l
}

// Locate returns the index of a tet containing p (with the same 1e-12
// orientation tolerance as Triangulation.Locate), or -1 if p is outside
// the convex hull.
func (l *Locator) Locate(p geom.Vec3) int {
	ti := l.tr.walk(p, int(l.seeds[l.cell(p)]))
	if ti == walkStuck {
		// Degenerate cycle: fall back to the exhaustive (and equally
		// deterministic) scan.
		return l.tr.Locate(p)
	}
	return ti
}

func (l *Locator) cell(p geom.Vec3) int {
	cx := clampCell((p.X-l.box.Min.X)*l.inv.X, l.m)
	cy := clampCell((p.Y-l.box.Min.Y)*l.inv.Y, l.m)
	cz := clampCell((p.Z-l.box.Min.Z)*l.inv.Z, l.m)
	return (cz*l.m+cy)*l.m + cx
}

func clampCell(v float64, m int) int {
	c := int(v)
	if c < 0 || math.IsNaN(v) {
		return 0
	}
	if c >= m {
		return m - 1
	}
	return c
}

// walkStuck is returned by walk when the step cap is exceeded without
// terminating, which is only possible on degenerate meshes.
const walkStuck = -2

// walk performs an orientation walk from tet start toward p. It returns
// the index of a tet containing p (every face orientation >= -1e-12), -1
// if the walk exits through a hull face, or walkStuck on a cycle.
func (tr *Triangulation) walk(p geom.Vec3, start int) int {
	ti := start
	for steps := 0; steps <= 2*len(tr.Tets)+16; steps++ {
		t := &tr.Tets[ti]
		moved := false
		for f := 0; f < 4; f++ {
			fv := faceVerts(t.V, f)
			if geom.Orient3DVal(tr.Points[fv[0]], tr.Points[fv[1]], tr.Points[fv[2]], p) < -1e-12 {
				if t.Nb[f] < 0 {
					return -1
				}
				ti = t.Nb[f]
				moved = true
				break
			}
		}
		if !moved {
			return ti
		}
	}
	return walkStuck
}

package delaunay

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/qhull"
)

func randPts(rng *rand.Rand, n int, L float64) []geom.Vec3 {
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.V(rng.Float64()*L, rng.Float64()*L, rng.Float64()*L)
	}
	return pts
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(randPts(rand.New(rand.NewSource(1)), 3, 1)); err != ErrDegenerate {
		t.Errorf("3 points: %v", err)
	}
	bad := []geom.Vec3{{}, {X: 1}, {Y: 1}, {Z: math.Inf(1)}}
	if _, err := Build(bad); err == nil {
		t.Error("Inf accepted")
	}
}

func TestSingleTet(t *testing.T) {
	pts := []geom.Vec3{{}, {X: 1}, {Y: 1}, {Z: 1}}
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tets) != 1 {
		t.Fatalf("tets = %d, want 1", len(tr.Tets))
	}
	tet := tr.Tets[0]
	if geom.Orient3DVal(pts[tet.V[0]], pts[tet.V[1]], pts[tet.V[2]], pts[tet.V[3]]) <= 0 {
		t.Error("tet not positively oriented")
	}
	for _, nb := range tet.Nb {
		if nb != -1 {
			t.Errorf("single tet has neighbor %d", nb)
		}
	}
	if math.Abs(tr.TotalVolume()-1.0/6) > 1e-12 {
		t.Errorf("volume = %v", tr.TotalVolume())
	}
}

func TestDelaunayEmptySphereProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	pts := randPts(rng, 120, 10)
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	for ti, tet := range tr.Tets {
		a, b, c, d := pts[tet.V[0]], pts[tet.V[1]], pts[tet.V[2]], pts[tet.V[3]]
		for pi, p := range pts {
			if pi == tet.V[0] || pi == tet.V[1] || pi == tet.V[2] || pi == tet.V[3] {
				continue
			}
			if geom.InSphere(a, b, c, d, p) > 0 {
				t.Fatalf("tet %d circumsphere contains point %d", ti, pi)
			}
		}
	}
}

func TestVolumeMatchesConvexHull(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	pts := randPts(rng, 200, 5)
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	h, err := qhull.Compute(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.TotalVolume()-h.Volume()) > 1e-6*h.Volume() {
		t.Errorf("triangulation volume %v != hull volume %v", tr.TotalVolume(), h.Volume())
	}
}

func TestNeighborConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	pts := randPts(rng, 150, 8)
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	for ti, tet := range tr.Tets {
		for f := 0; f < 4; f++ {
			nb := tet.Nb[f]
			if nb < 0 {
				continue
			}
			if nb >= len(tr.Tets) {
				t.Fatalf("tet %d neighbor %d out of range", ti, nb)
			}
			// The neighbor must point back at ti across some face.
			back := false
			for g := 0; g < 4; g++ {
				if tr.Tets[nb].Nb[g] == ti {
					back = true
				}
			}
			if !back {
				t.Fatalf("tet %d -> %d not symmetric", ti, nb)
			}
			// Shared face: 3 common vertices.
			common := 0
			for _, a := range tet.V {
				for _, b := range tr.Tets[nb].V {
					if a == b {
						common++
					}
				}
			}
			if common != 3 {
				t.Fatalf("tet %d and %d share %d vertices, want 3", ti, nb, common)
			}
		}
	}
}

func TestAllTetsPositivelyOriented(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	pts := randPts(rng, 100, 3)
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	for ti, tet := range tr.Tets {
		if geom.Orient3DVal(pts[tet.V[0]], pts[tet.V[1]], pts[tet.V[2]], pts[tet.V[3]]) <= 0 {
			t.Fatalf("tet %d not positively oriented", ti)
		}
	}
}

func TestDuplicatePointsMerged(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	pts := randPts(rng, 50, 4)
	dup := append(append([]geom.Vec3(nil), pts...), pts[:10]...)
	tr, err := Build(dup)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicated vertices must not appear.
	for _, tet := range tr.Tets {
		for _, vi := range tet.V {
			if vi >= len(pts) {
				t.Fatalf("duplicate vertex %d used", vi)
			}
		}
	}
	trOrig, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.TotalVolume()-trOrig.TotalVolume()) > 1e-9 {
		t.Error("duplicates changed the triangulation volume")
	}
}

func TestCircumcentersEquidistant(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	pts := randPts(rng, 60, 6)
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	ccs := tr.Circumcenters()
	for ti, tet := range tr.Tets {
		cc := ccs[ti]
		r := cc.Dist(pts[tet.V[0]])
		for _, vi := range tet.V[1:] {
			if math.Abs(cc.Dist(pts[vi])-r) > 1e-5*math.Max(r, 1) {
				t.Fatalf("tet %d circumcenter not equidistant", ti)
			}
		}
	}
}

func TestEdgesSymmetricUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	pts := randPts(rng, 80, 5)
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	edges := tr.Edges()
	seen := map[[2]int]bool{}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not normalized", e)
		}
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
	}
}

func TestVertexStars(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	pts := randPts(rng, 70, 5)
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	stars := tr.VertexStars()
	count := 0
	for vi, star := range stars {
		for _, ti := range star {
			found := false
			for _, v := range tr.Tets[ti].V {
				if v == vi {
					found = true
				}
			}
			if !found {
				t.Fatalf("star of %d contains tet %d that does not touch it", vi, ti)
			}
			count++
		}
	}
	if count != 4*len(tr.Tets) {
		t.Errorf("star entries = %d, want %d", count, 4*len(tr.Tets))
	}
}

func TestLocate(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	pts := randPts(rng, 100, 5)
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Interior points (centroids of tets) are located in their tet region.
	for ti, tet := range tr.Tets {
		c := geom.Centroid([]geom.Vec3{pts[tet.V[0]], pts[tet.V[1]], pts[tet.V[2]], pts[tet.V[3]]})
		li := tr.Locate(c)
		if li < 0 {
			t.Fatalf("centroid of tet %d not located", ti)
		}
	}
	// A point far outside the hull is not found.
	if tr.Locate(geom.V(1e6, 1e6, 1e6)) != -1 {
		t.Error("distant point located inside hull")
	}
}

func TestPerturbedLattice(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	var pts []geom.Vec3
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				pts = append(pts, geom.V(
					float64(x)+0.3*rng.Float64(),
					float64(y)+0.3*rng.Float64(),
					float64(z)+0.3*rng.Float64()))
			}
		}
	}
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	h, err := qhull.Compute(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.TotalVolume()-h.Volume()) > 1e-6*h.Volume() {
		t.Errorf("volume %v != hull volume %v", tr.TotalVolume(), h.Volume())
	}
}

func BenchmarkBuild500(b *testing.B) {
	rng := rand.New(rand.NewSource(67))
	pts := randPts(rng, 500, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(pts); err != nil {
			b.Fatal(err)
		}
	}
}

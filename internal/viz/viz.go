// Package viz renders planar slices of the tessellation's density field as
// PNG images — the stand-in for the paper's Figure 1 rendering path (the
// ParaView view of low-density voids amid high-density halos). A pixel is
// colored by the Voronoi density (1/cell volume) of the site owning it,
// which is exact Voronoi membership by nearest-site lookup; periodic
// boundaries are honored by including image sites near the slice.
package viz

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"

	"repro/internal/geom"
	"repro/internal/voronoi"
)

// SliceConfig controls a rendering.
type SliceConfig struct {
	// BoxSize is the periodic box side.
	BoxSize float64
	// Z is the slice height (wrapped into the box).
	Z float64
	// Pixels is the image side length (default 256).
	Pixels int
	// LogScale colors by log10 density instead of linear (default true via
	// NewSliceConfig; zero value means linear).
	LogScale bool
}

// NewSliceConfig returns a config with the defaults used by cmd/render.
func NewSliceConfig(boxSize float64) SliceConfig {
	return SliceConfig{BoxSize: boxSize, Z: boxSize / 2, Pixels: 256, LogScale: true}
}

// RenderDensitySlice renders the z-slice of the Voronoi density field of
// the given sites. volumes must align with sites; unit particle masses are
// assumed (density = 1/volume).
func RenderDensitySlice(sites []geom.Vec3, volumes []float64, cfg SliceConfig) (*image.RGBA, error) {
	if len(sites) == 0 || len(sites) != len(volumes) {
		return nil, fmt.Errorf("viz: %d sites, %d volumes", len(sites), len(volumes))
	}
	if cfg.BoxSize <= 0 {
		return nil, fmt.Errorf("viz: non-positive box %g", cfg.BoxSize)
	}
	if cfg.Pixels <= 0 {
		cfg.Pixels = 256
	}
	L := cfg.BoxSize
	z := math.Mod(cfg.Z, L)
	if z < 0 {
		z += L
	}

	// Periodic images within a margin so nearest-site queries near the
	// boundary see across it. Margin of 3 mean spacings is ample.
	margin := 3 * math.Cbrt(L*L*L/float64(len(sites)))
	if margin > L/2 {
		margin = L / 2
	}
	domain := geom.NewBox(geom.V(0, 0, 0), geom.V(L, L, L))
	expanded := domain.Expand(margin)
	var pts []geom.Vec3
	var ids []int64
	for i, p := range sites {
		for sx := -1.0; sx <= 1; sx++ {
			for sy := -1.0; sy <= 1; sy++ {
				for sz := -1.0; sz <= 1; sz++ {
					img := p.Add(geom.V(sx*L, sy*L, sz*L))
					if expanded.Contains(img) {
						pts = append(pts, img)
						ids = append(ids, int64(i))
					}
				}
			}
		}
	}
	ix := voronoi.NewIndex(pts, ids, 0)

	// Density range for the color map.
	lo, hi := math.Inf(1), math.Inf(-1)
	val := func(i int64) float64 {
		v := volumes[i]
		if v <= 0 {
			return 0
		}
		d := 1 / v
		if cfg.LogScale {
			return math.Log10(d)
		}
		return d
	}
	for i := range sites {
		d := val(int64(i))
		lo = math.Min(lo, d)
		hi = math.Max(hi, d)
	}
	if hi <= lo {
		hi = lo + 1
	}

	px := cfg.Pixels
	img := image.NewRGBA(image.Rect(0, 0, px, px))
	for py := 0; py < px; py++ {
		for pxx := 0; pxx < px; pxx++ {
			q := geom.Vec3{
				X: (float64(pxx) + 0.5) * L / float64(px),
				Y: (float64(py) + 0.5) * L / float64(px),
				Z: z,
			}
			sp, ok := ix.Nearest(q)
			if !ok {
				img.Set(pxx, py, color.Black)
				continue
			}
			t := (val(sp.ID) - lo) / (hi - lo)
			img.Set(pxx, px-1-py, heat(t)) // y up
		}
	}
	return img, nil
}

// heat maps t in [0,1] through a dark-blue -> magenta -> yellow ramp
// (inferno-like), readable on dark and light backgrounds.
func heat(t float64) color.RGBA {
	t = math.Max(0, math.Min(1, t))
	stops := [][3]float64{
		{0, 0, 20},
		{60, 15, 110},
		{170, 40, 100},
		{250, 130, 40},
		{255, 250, 180},
	}
	x := t * float64(len(stops)-1)
	i := int(x)
	if i >= len(stops)-1 {
		i = len(stops) - 2
	}
	f := x - float64(i)
	a, b := stops[i], stops[i+1]
	return color.RGBA{
		R: uint8(a[0] + f*(b[0]-a[0])),
		G: uint8(a[1] + f*(b[1]-a[1])),
		B: uint8(a[2] + f*(b[2]-a[2])),
		A: 255,
	}
}

// MarkSites overlays site markers (small crosses) on a rendered slice for
// sites within dz of the slice plane.
func MarkSites(img *image.RGBA, sites []geom.Vec3, L, z, dz float64) {
	px := img.Bounds().Dx()
	c := color.RGBA{0, 255, 180, 255}
	for _, p := range sites {
		d := math.Abs(p.Z - z)
		if d > dz && L-d > dz {
			continue
		}
		x := int(p.X / L * float64(px))
		y := px - 1 - int(p.Y/L*float64(px))
		for _, off := range [][2]int{{0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			xx, yy := x+off[0], y+off[1]
			if xx >= 0 && xx < px && yy >= 0 && yy < px {
				img.Set(xx, yy, c)
			}
		}
	}
}

// WritePNG encodes the image.
func WritePNG(w io.Writer, img image.Image) error {
	return png.Encode(w, img)
}

// RenderGridSlice renders the z-slice of a scalar field sampled on an m^3
// grid (row-major (z*m+y)*m+x, as produced by dtfe.SampleGrid and
// multistream fields). zIndex selects the grid layer; values are mapped
// through the heat ramp between the slice's own min and max (log10 when
// logScale and all values are positive).
func RenderGridSlice(field []float64, m int, zIndex, pixels int, logScale bool) (*image.RGBA, error) {
	if m <= 0 || len(field) != m*m*m {
		return nil, fmt.Errorf("viz: field length %d does not match grid %d^3", len(field), m)
	}
	if zIndex < 0 || zIndex >= m {
		return nil, fmt.Errorf("viz: z index %d out of range [0, %d)", zIndex, m)
	}
	if pixels <= 0 {
		pixels = 256
	}
	layer := make([]float64, m*m)
	lo, hi := math.Inf(1), math.Inf(-1)
	allPos := true
	for y := 0; y < m; y++ {
		for x := 0; x < m; x++ {
			v := field[(zIndex*m+y)*m+x]
			layer[y*m+x] = v
			if v <= 0 {
				allPos = false
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	useLog := logScale && allPos
	if useLog {
		for i, v := range layer {
			layer[i] = math.Log10(v)
		}
		lo, hi = math.Log10(lo), math.Log10(hi)
	}
	if hi <= lo {
		hi = lo + 1
	}
	img := image.NewRGBA(image.Rect(0, 0, pixels, pixels))
	for py := 0; py < pixels; py++ {
		for px := 0; px < pixels; px++ {
			gx := px * m / pixels
			gy := py * m / pixels
			t := (layer[gy*m+gx] - lo) / (hi - lo)
			img.Set(px, pixels-1-py, heat(t))
		}
	}
	return img, nil
}

package viz

import (
	"bytes"
	"image/color"
	"image/png"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestRenderValidation(t *testing.T) {
	if _, err := RenderDensitySlice(nil, nil, NewSliceConfig(8)); err == nil {
		t.Error("empty sites accepted")
	}
	if _, err := RenderDensitySlice(make([]geom.Vec3, 2), make([]float64, 3), NewSliceConfig(8)); err == nil {
		t.Error("misaligned volumes accepted")
	}
	cfg := NewSliceConfig(0)
	if _, err := RenderDensitySlice([]geom.Vec3{{X: 1, Y: 1, Z: 1}}, []float64{1}, cfg); err == nil {
		t.Error("zero box accepted")
	}
}

func TestRenderUniformIsFlat(t *testing.T) {
	// Equal-volume cells: every pixel maps to the same color.
	const L = 4.0
	var sites []geom.Vec3
	var vols []float64
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				sites = append(sites, geom.V(float64(x)+0.5, float64(y)+0.5, float64(z)+0.5))
				vols = append(vols, 1)
			}
		}
	}
	cfg := NewSliceConfig(L)
	cfg.Pixels = 32
	img, err := RenderDensitySlice(sites, vols, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 32 || img.Bounds().Dy() != 32 {
		t.Fatalf("image bounds %v", img.Bounds())
	}
	first := img.RGBAAt(0, 0)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			if img.RGBAAt(x, y) != first {
				t.Fatalf("uniform field rendered non-uniform at (%d,%d)", x, y)
			}
		}
	}
}

func TestRenderClusterIsBrighter(t *testing.T) {
	// One tiny (dense) cell among big (empty) ones: its pixel must be
	// hotter (higher heat index) than the background.
	const L = 8.0
	rng := rand.New(rand.NewSource(126))
	var sites []geom.Vec3
	var vols []float64
	for i := 0; i < 60; i++ {
		sites = append(sites, geom.V(rng.Float64()*L, rng.Float64()*L, rng.Float64()*L))
		vols = append(vols, 8)
	}
	dense := geom.V(4, 4, 4)
	sites = append(sites, dense)
	vols = append(vols, 0.01)

	cfg := NewSliceConfig(L)
	cfg.Pixels = 64
	cfg.Z = 4
	img, err := RenderDensitySlice(sites, vols, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Pixel at the dense site (x=4 -> col 32, y=4 -> row 31 from bottom).
	at := img.RGBAAt(32, 31)
	// The hot end of the ramp is bright (high R+G); the cold end is dark.
	corner := img.RGBAAt(0, 0)
	if int(at.R)+int(at.G) <= int(corner.R)+int(corner.G) {
		t.Errorf("dense pixel %v not hotter than background %v", at, corner)
	}
}

func TestRenderDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	var sites []geom.Vec3
	var vols []float64
	for i := 0; i < 100; i++ {
		sites = append(sites, geom.V(rng.Float64()*5, rng.Float64()*5, rng.Float64()*5))
		vols = append(vols, 0.1+rng.Float64())
	}
	cfg := NewSliceConfig(5)
	cfg.Pixels = 24
	a, err := RenderDensitySlice(sites, vols, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RenderDensitySlice(sites, vols, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Pix, b.Pix) {
		t.Error("render not deterministic")
	}
}

func TestHeatRampEndpoints(t *testing.T) {
	cold := heat(0)
	hot := heat(1)
	if int(hot.R)+int(hot.G)+int(hot.B) <= int(cold.R)+int(cold.G)+int(cold.B) {
		t.Errorf("ramp not increasing: cold %v hot %v", cold, hot)
	}
	// Clamping.
	if heat(-5) != heat(0) || heat(7) != heat(1) {
		t.Error("heat does not clamp")
	}
}

func TestMarkSites(t *testing.T) {
	const L = 4.0
	sites := []geom.Vec3{{X: 2, Y: 2, Z: 2}}
	vols := []float64{1}
	cfg := NewSliceConfig(L)
	cfg.Pixels = 16
	cfg.Z = 2
	img, err := RenderDensitySlice(sites, vols, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := img.RGBAAt(8, 7)
	MarkSites(img, sites, L, 2, 0.5)
	after := img.RGBAAt(8, 7)
	if before == after {
		t.Error("marker did not change the pixel")
	}
	if after != (color.RGBA{0, 255, 180, 255}) {
		t.Errorf("marker color %v", after)
	}
	// A site far from the slice is not marked.
	img2, _ := RenderDensitySlice(sites, vols, cfg)
	MarkSites(img2, []geom.Vec3{{X: 2, Y: 2, Z: 0.1}}, L, 2, 0.5)
	if img2.RGBAAt(8, 7) != before {
		t.Error("distant site was marked")
	}
}

func TestWritePNG(t *testing.T) {
	sites := []geom.Vec3{{X: 1, Y: 1, Z: 1}, {X: 3, Y: 3, Z: 3}}
	vols := []float64{1, 2}
	cfg := NewSliceConfig(4)
	cfg.Pixels = 8
	img, err := RenderDensitySlice(sites, vols, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePNG(&buf, img); err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Bounds().Dx() != 8 {
		t.Errorf("decoded bounds %v", decoded.Bounds())
	}
}

func TestRenderGridSlice(t *testing.T) {
	const m = 4
	field := make([]float64, m*m*m)
	for i := range field {
		field[i] = 1
	}
	// A hot voxel in layer 2.
	field[(2*m+1)*m+3] = 100
	img, err := RenderGridSlice(field, m, 2, 16, false)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 16 {
		t.Fatalf("bounds %v", img.Bounds())
	}
	// The hot voxel's pixels differ from the background.
	bg := img.RGBAAt(0, 15)
	hot := img.RGBAAt(13, 15-5) // gx=3 -> px 12..15, gy=1 -> py 4..7 (flipped)
	if bg == hot {
		t.Error("hot voxel not visible")
	}
	// A different layer is uniform.
	img0, err := RenderGridSlice(field, m, 0, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	first := img0.RGBAAt(0, 0)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if img0.RGBAAt(x, y) != first {
				t.Fatal("uniform layer rendered non-uniform")
			}
		}
	}
}

func TestRenderGridSliceValidation(t *testing.T) {
	if _, err := RenderGridSlice(make([]float64, 7), 2, 0, 8, false); err == nil {
		t.Error("bad field length accepted")
	}
	if _, err := RenderGridSlice(make([]float64, 8), 2, 5, 8, false); err == nil {
		t.Error("bad z index accepted")
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// commPath is the import path of the message-passing substrate whose
// ownership-transfer convention sendalias and maporder police.
const commPath = "repro/internal/comm"

// rootIdent walks selector, index, slice, star, paren, and address-of
// chains down to the base identifier, or nil when the base is not a plain
// identifier (a call result, a literal, ...).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// namedType unwraps pointers and aliases and returns the named type of t,
// or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isCommWorld reports whether t is comm.World or *comm.World.
func isCommWorld(t types.Type) bool {
	n := namedType(t)
	return n != nil && n.Obj().Name() == "World" &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == commPath
}

// worldMethodCall returns the method name when call is a method call on a
// comm.World value ("" otherwise).
func worldMethodCall(p *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if !isCommWorld(p.TypeOf(sel.X)) {
		return ""
	}
	return sel.Sel.Name
}

// commCall reports whether call resolves to any function or method of the
// comm package (collectives included).
func commCall(p *Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if obj := p.ObjectOf(fun.Sel); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == commPath {
			return true
		}
	case *ast.Ident:
		if obj := p.ObjectOf(fun); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == commPath {
			return true
		}
	}
	return false
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(p *Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.ObjectOf(id).(*types.Builtin)
	return ok
}

// hasReference reports whether values of t carry references to shared
// mutable memory: slices, maps, channels, pointers, functions, and
// interfaces count; structs and arrays count when any element does.
// Strings are immutable and do not count.
func hasReference(t types.Type) bool {
	return hasReferenceDepth(t, 0)
}

func hasReferenceDepth(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return true // unknown or deeply recursive: assume referenced
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hasReferenceDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return hasReferenceDepth(u.Elem(), depth+1)
	default:
		// Slice, Map, Chan, Pointer, Signature, Interface, Tuple.
		return true
	}
}

// funcScopes returns every function body in the file paired with the
// objects of its parameters, receiver, and named results. Function
// literals are separate scopes: their bodies are excluded from the
// enclosing function's scope entry.
type funcScope struct {
	body *ast.BlockStmt
	// decl is the declaration when the scope is a FuncDecl (nil for
	// function literals) — analyzers use it to consult interprocedural
	// summaries and doc markers.
	decl *ast.FuncDecl
	// params holds receiver, parameter, and named-result objects: memory
	// the caller provided or will observe.
	params map[types.Object]bool
	// results holds just the named-result objects, which a bare return
	// publishes.
	results map[types.Object]bool
}

func funcScopes(p *Pass, file *ast.File) []funcScope {
	var out []funcScope
	add := func(set map[types.Object]bool, fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := p.ObjectOf(name); obj != nil {
					set[obj] = true
				}
			}
		}
	}
	scope := func(recv *ast.FieldList, typ *ast.FuncType, body *ast.BlockStmt) funcScope {
		fs := funcScope{body: body, params: map[types.Object]bool{}, results: map[types.Object]bool{}}
		add(fs.params, recv)
		add(fs.params, typ.Params)
		add(fs.params, typ.Results)
		add(fs.results, typ.Results)
		return fs
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				fs := scope(fn.Recv, fn.Type, fn.Body)
				fs.decl = fn
				out = append(out, fs)
			}
		case *ast.FuncLit:
			out = append(out, scope(nil, fn.Type, fn.Body))
		}
		return true
	})
	return out
}

// inspectShallow walks the statements of body without descending into
// nested function literals, so each function scope is analyzed once.
func inspectShallow(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// declaredWithin reports whether obj's declaration lies inside the span
// of node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && node != nil && obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DoneSel keeps the failure-containment guarantee mechanical: in packages
// that opt in with a //tess:abortable package comment (internal/comm),
// every blocking channel operation must be abortable. A blocking send or
// receive must be a case of a select that can always get out — via a
// world done-channel case or a default — and a bare `<-ch` outside any
// select silently reintroduces the un-abortable hangs the abort/watchdog
// work eliminated: one crashed rank and every peer blocks forever on a
// message that will never come.
//
// Receives from a done channel itself (a close-broadcast channel, named
// done/Done or obtained from a Done() accessor) are exempt — waiting on
// an abort signal is the mechanism, not a hang. Ranging over a channel
// blocks on every iteration and is flagged outright.
var DoneSel = &Analyzer{
	Name: "donesel",
	Doc:  "blocking channel operations in //tess:abortable packages must select on the done channel or a default",
	Run:  runDoneSel,
}

func runDoneSel(p *Pass) {
	if !pkgHasMarker(p.Pkg, abortableMarker) {
		return
	}
	for _, file := range p.Pkg.Files {
		// guarded holds the exact comm statements of select cases: the only
		// sanctioned homes for a blocking op.
		guarded := map[ast.Stmt]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			ok = false
			for _, clause := range sel.Body.List {
				cc := clause.(*ast.CommClause)
				if cc.Comm == nil {
					ok = true // default case: the select cannot block
					continue
				}
				guarded[cc.Comm] = true
				if recvOf(cc.Comm) != nil && isDoneChan(p, recvOf(cc.Comm).X) {
					ok = true
				}
			}
			if !ok {
				p.Reportf(sel.Pos(),
					"select blocks without a done-channel case or default; an abort cannot unblock it")
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.SendStmt:
				if !guarded[st] {
					p.Reportf(st.Pos(),
						"blocking channel send outside a select; wrap it in a select with a done-channel case")
				}
			case *ast.ExprStmt:
				if rx := recvExpr(st.X); rx != nil && !guarded[st] && !isDoneChan(p, rx.X) {
					p.Reportf(st.Pos(),
						"blocking channel receive outside a select; wrap it in a select with a done-channel case")
				}
			case *ast.AssignStmt:
				if guarded[st] {
					return true
				}
				for _, rhs := range st.Rhs {
					if rx := recvExpr(rhs); rx != nil && !isDoneChan(p, rx.X) {
						p.Reportf(st.Pos(),
							"blocking channel receive outside a select; wrap it in a select with a done-channel case")
					}
				}
			case *ast.RangeStmt:
				if t := p.TypeOf(st.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						p.Reportf(st.Pos(),
							"ranging over a channel blocks on every iteration; use a select with a done-channel case")
					}
				}
			}
			return true
		})
	}
}

// recvOf extracts the receive expression of a select comm statement
// (`<-ch`, `x := <-ch`, `x = <-ch`), or nil for send cases.
func recvOf(comm ast.Stmt) *ast.UnaryExpr {
	switch st := comm.(type) {
	case *ast.ExprStmt:
		return recvExpr(st.X)
	case *ast.AssignStmt:
		if len(st.Rhs) == 1 {
			return recvExpr(st.Rhs[0])
		}
	}
	return nil
}

// recvExpr returns e as a channel-receive expression, or nil.
func recvExpr(e ast.Expr) *ast.UnaryExpr {
	ux, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if ok && ux.Op == token.ARROW {
		return ux
	}
	return nil
}

// isDoneChan reports whether ch is an abort-broadcast channel by the
// repo's naming convention: an identifier or field named done/Done (or
// *Done), or the result of a Done() accessor.
func isDoneChan(p *Pass, ch ast.Expr) bool {
	name := ""
	switch x := ast.Unparen(ch).(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			name = sel.Sel.Name
		} else if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			name = id.Name
		}
	}
	return strings.HasSuffix(strings.ToLower(name), "done")
}

package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func moduleLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// checkFixture loads one testdata package, runs the given analyzers, and
// compares the diagnostics against the fixture's // want `regex` comments:
// every diagnostic must match a want on its line, and every want must be
// hit by exactly one diagnostic.
func checkFixture(t *testing.T, fixture string, analyzers []*Analyzer) {
	t.Helper()
	l := moduleLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, analyzers)

	type want struct {
		re  *regexp.Regexp
		hit bool
	}
	wants := map[string][]*want{} // "file:line" -> patterns on that line
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pat := strings.Trim(strings.TrimSpace(text), "`")
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", pat, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				wants[key] = append(wants[key], &want{re: re})
			}
		}
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.hit && w.re.MatchString(d.Message) {
				w.hit = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("%s: no diagnostic matching %q", key, w.re)
			}
		}
	}
}

func TestSendAliasFixture(t *testing.T) { checkFixture(t, "sendalias", []*Analyzer{SendAlias}) }
func TestMapOrderFixture(t *testing.T)  { checkFixture(t, "maporder", []*Analyzer{MapOrder}) }
func TestHotAllocFixture(t *testing.T)  { checkFixture(t, "hotalloc", []*Analyzer{HotAlloc}) }
func TestScratchRetainFixture(t *testing.T) {
	checkFixture(t, "scratchretain", []*Analyzer{ScratchRetain})
}
func TestLoanRetainFixture(t *testing.T) { checkFixture(t, "loanretain", []*Analyzer{LoanRetain}) }
func TestAbortErrFixture(t *testing.T)   { checkFixture(t, "aborterr", []*Analyzer{AbortErr}) }
func TestDoneSelFixture(t *testing.T)    { checkFixture(t, "donesel", []*Analyzer{DoneSel}) }
func TestPhasePairFixture(t *testing.T)  { checkFixture(t, "phasepair", []*Analyzer{PhasePair}) }

// TestInterprocFixture drives scratchretain and sendalias over leaks that
// escape exclusively through helper calls.
func TestInterprocFixture(t *testing.T) {
	checkFixture(t, "interproc", []*Analyzer{ScratchRetain, SendAlias})
}

// TestInterprocRegression pins the tentpole claim: every finding in the
// interproc fixture needs the interprocedural summaries. Running the same
// analyzers with an EMPTY Program — which reduces every call to the v1
// "results are owned, parameters don't escape" convention — must see
// nothing, and the full Program must see every leak.
func TestInterprocRegression(t *testing.T) {
	l := moduleLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "interproc"))
	if err != nil {
		t.Fatal(err)
	}
	analyzers := []*Analyzer{ScratchRetain, SendAlias}
	if diags := RunProgram(BuildProgram(nil), []*Package{pkg}, analyzers); len(diags) != 0 {
		t.Errorf("function-local pass (empty Program) reported findings, so the fixture is not purely interprocedural: %v", diags)
	}
	diags := Run([]*Package{pkg}, analyzers)
	if len(diags) < 8 {
		t.Errorf("interprocedural pass found %d leaks, want at least 8: %v", len(diags), diags)
	}
}

// TestDoneSelRequiresMarker checks donesel stays silent on packages
// without the //tess:abortable opt-in, whatever channel operations they
// contain.
func TestDoneSelRequiresMarker(t *testing.T) {
	l := moduleLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "suppress"))
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Package{pkg}, []*Analyzer{DoneSel}); len(diags) != 0 {
		t.Errorf("donesel fired on an unmarked package: %v", diags)
	}
}

// TestSuppressFixture runs maporder over violations covered by
// //lint:ignore directives: only the uncovered ones may surface.
func TestSuppressFixture(t *testing.T) { checkFixture(t, "suppress", []*Analyzer{MapOrder}) }

// TestHotAllocRequiresMarker checks the analyzer stays silent on packages
// without the //tess:hotpath opt-in, whatever they allocate.
func TestHotAllocRequiresMarker(t *testing.T) {
	l := moduleLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "suppress"))
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Package{pkg}, []*Analyzer{HotAlloc}); len(diags) != 0 {
		t.Errorf("hotalloc fired on an unmarked package: %v", diags)
	}
}

// TestMalformedIgnoreDirective checks that a directive missing its reason
// suppresses nothing and is itself reported.
func TestMalformedIgnoreDirective(t *testing.T) {
	fset := token.NewFileSet()
	src := "package x\n\n//lint:ignore maporder\nvar V int\n"
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Path: "x", Files: []*ast.File{f}, Fset: fset}
	var sink []Diagnostic
	dirs := collectIgnores(pkg, &sink)
	if len(dirs) != 0 {
		t.Errorf("malformed directive parsed as valid: %+v", dirs)
	}
	if len(sink) != 1 || !strings.Contains(sink[0].Message, "malformed //lint:ignore") {
		t.Errorf("expected one malformed-directive diagnostic, got %v", sink)
	}
}

// TestRealModuleClean is the zero-findings gate over the shipped tree: the
// whole module must pass the full analyzer suite. Suppressions are allowed
// only with an inline reason; TestRealModuleSuppressions pins the budget.
func TestRealModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	l := moduleLoader(t)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("LoadAll found only %d packages; module walk is broken", len(pkgs))
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("%s", d.String())
	}
}

// TestRealModuleSuppressions pins the suppression budget for the shipped
// tree: every //lint:ignore directive must name a real analyzer and carry a
// reason, and adding one means raising the budget here — in review, not by
// accident.
func TestRealModuleSuppressions(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	const budget = 2
	l := moduleLoader(t)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, pkg := range pkgs {
		var sink []Diagnostic
		for _, ig := range collectIgnores(pkg, &sink) {
			total++
			for _, name := range ig.analyzers {
				if name != "all" && ByName(name) == nil {
					t.Errorf("%s:%d: suppression names unknown analyzer %q", ig.file, ig.line, name)
				}
			}
			t.Logf("suppression: %s:%d [%s] %s", ig.file, ig.line, strings.Join(ig.analyzers, ","), ig.reason)
		}
		for _, d := range sink {
			t.Errorf("%s", d.String())
		}
	}
	if total > budget {
		t.Errorf("module has %d suppressions, budget is %d; justify the new one and raise the budget", total, budget)
	}
}

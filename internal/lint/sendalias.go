package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SendAlias enforces the comm package's ownership-transfer convention at
// every point-to-point send site. Payloads cross rank boundaries by
// reference, so the sender must (a) allocate the payload itself — a
// composite literal, make/append result, or a local variable built only
// from fresh allocations — and (b) never touch it again after the send.
// A payload that aliases a parameter, or is read or written after the
// send, is shared mutable memory between two ranks: exactly the
// shared-memory aliasing bug class PARAVT reports as dominant in
// parallel tessellation codes, and invisible to the race detector until
// both ranks actually touch the same word.
//
// Payloads of pure value types (no slices, maps, or pointers anywhere in
// the type) are exempt: they are copied through the channel. The comm
// package itself is exempt: its wrappers forward caller payloads by
// design, and the convention binds comm's clients.
var SendAlias = &Analyzer{
	Name: "sendalias",
	Doc:  "comm Send payloads must be freshly allocated and never reused after the send",
	Run:  runSendAlias,
}

// sendPayloadIndex maps point-to-point World methods to the argument
// index of their payload.
var sendPayloadIndex = map[string]int{
	"Send":        3, // Send(src, dst, tag, payload)
	"SendTimeout": 3, // SendTimeout(src, dst, tag, payload, timeout)
	"Sendrecv":    4, // Sendrecv(rank, dst, src, tag, payload)
}

func runSendAlias(p *Pass) {
	if p.Pkg.Path == commPath {
		return
	}
	for _, file := range p.Pkg.Files {
		for _, fs := range funcScopes(p, file) {
			checkSendsInScope(p, fs)
		}
	}
}

// sendSite is one point-to-point send call found in a function scope.
type sendSite struct {
	call    *ast.CallExpr
	method  string
	payload ast.Expr
}

func checkSendsInScope(p *Pass, fs funcScope) {
	var sends []sendSite
	inspectShallow(fs.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		m := worldMethodCall(p, call)
		idx, ok := sendPayloadIndex[m]
		if !ok || len(call.Args) <= idx {
			return true
		}
		sends = append(sends, sendSite{call: call, method: m, payload: call.Args[idx]})
		return true
	})
	for _, s := range sends {
		checkPayload(p, fs, s, sends)
	}
}

func checkPayload(p *Pass, fs funcScope, s sendSite, all []sendSite) {
	// Value-type payloads are copied through the channel: nothing to share.
	if t := p.TypeOf(s.payload); t != nil && !hasReference(t) {
		return
	}
	pl := ast.Unparen(s.payload)
	switch e := pl.(type) {
	case *ast.CompositeLit, *ast.UnaryExpr:
		checkEmbeddedParams(p, fs, s, pl)
	case *ast.CallExpr:
		// make/append/new results and unresolvable calls are fresh by
		// convention; a summarized callee is held to proof — a result that
		// may alias caller memory through an identity/wrapper helper is
		// shared mutable memory between ranks.
		checkCallPayload(p, fs, s, e)
	case *ast.Ident:
		if e.Name == "nil" {
			return
		}
		checkIdentPayload(p, fs, s, e)
	case *ast.IndexExpr:
		checkIndexPayload(p, fs, s, e, all)
	default:
		p.Reportf(s.call.Pos(),
			"comm %s payload must be freshly allocated in the sending function (got %s)",
			s.method, exprKind(pl))
	}
}

// checkCallPayload inspects a call-result payload through the callee's
// interprocedural summary: when the callee returns an alias of one of its
// arguments, the argument must itself be fresh-by-the-rules — a parameter
// or out-of-function value flowing through an identity helper into a send
// is the same bug as sending it directly.
func checkCallPayload(p *Pass, fs funcScope, s sendSite, call *ast.CallExpr) {
	callee, args := p.Prog.callTarget(p.Pkg, call, nil)
	if callee == nil {
		return
	}
	flows := p.Prog.Flows(callee)
	for i, arg := range args {
		if !flowAt(flows, i).ReturnsAlias {
			continue
		}
		root := rootIdent(arg)
		if root == nil {
			continue
		}
		obj := p.ObjectOf(root)
		if obj == nil {
			continue
		}
		if t := p.TypeOf(arg); t == nil || !hasReference(t) {
			continue
		}
		if fs.params[obj] {
			p.Reportf(s.call.Pos(),
				"comm %s payload is the result of %s, which returns an alias of its argument %s — a parameter; the receiver would alias the caller's memory",
				s.method, callee.Name(), root.Name)
		} else if !declaredWithin(obj, fs.body) {
			p.Reportf(s.call.Pos(),
				"comm %s payload is the result of %s, which returns an alias of %s, memory not allocated in the sending function",
				s.method, callee.Name(), root.Name)
		}
	}
}

// checkEmbeddedParams flags composite-literal payloads that smuggle a
// reference-typed parameter inside (Wrapper{Buf: callerSlice}).
func checkEmbeddedParams(p *Pass, fs funcScope, s sendSite, lit ast.Expr) {
	ast.Inspect(lit, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.ObjectOf(id)
		if obj == nil || !fs.params[obj] {
			return true
		}
		if t := obj.Type(); t != nil && hasReference(t) {
			p.Reportf(s.call.Pos(),
				"comm %s payload embeds parameter %s; the receiver would alias the caller's memory",
				s.method, id.Name)
			return false
		}
		return true
	})
}

// checkIdentPayload enforces the rules for a plain local-variable payload:
// declared in this function, every assignment fresh, no use after the send.
func checkIdentPayload(p *Pass, fs funcScope, s sendSite, id *ast.Ident) {
	obj := p.ObjectOf(id)
	if obj == nil {
		return
	}
	if fs.params[obj] {
		p.Reportf(s.call.Pos(),
			"comm %s payload %s is a function parameter; the ownership-transfer convention requires a freshly allocated buffer",
			s.method, id.Name)
		return
	}
	if !declaredWithin(obj, fs.body) {
		p.Reportf(s.call.Pos(),
			"comm %s payload %s is not allocated in the sending function",
			s.method, id.Name)
		return
	}
	checkFreshAssignments(p, fs, s, obj, id.Name)

	// Ownership leaves with the message: any later mention of the
	// variable reads or writes memory the receiver now owns.
	inspectShallow(fs.body, func(n ast.Node) bool {
		use, ok := n.(*ast.Ident)
		if !ok || use.Pos() <= s.call.End() {
			return true
		}
		if p.ObjectOf(use) == obj {
			p.Reportf(s.call.Pos(),
				"comm %s payload %s is used again on line %d after the send relinquishes ownership",
				s.method, id.Name, p.Fset.Position(use.Pos()).Line)
			return false
		}
		return true
	})
}

// checkIndexPayload enforces the rules for an m[k] payload (the per-rank
// drain pattern): m local, every stored value fresh, and after the first
// send m may appear only as the payload of further sends.
func checkIndexPayload(p *Pass, fs funcScope, s sendSite, idx *ast.IndexExpr, all []sendSite) {
	root := rootIdent(idx.X)
	if root == nil {
		p.Reportf(s.call.Pos(), "comm %s payload must be freshly allocated in the sending function (got %s)",
			s.method, exprKind(idx.X))
		return
	}
	obj := p.ObjectOf(root)
	if obj == nil {
		return
	}
	if fs.params[obj] || !declaredWithin(obj, fs.body) {
		p.Reportf(s.call.Pos(),
			"comm %s payload %s[...] indexes memory not allocated in the sending function",
			s.method, root.Name)
		return
	}
	checkFreshAssignments(p, fs, s, obj, root.Name)

	// Sends draining the same container: their payload expressions are the
	// only allowed mentions of obj past the first send.
	firstEnd := token.Pos(0)
	var payloadSpans [][2]token.Pos
	for _, o := range all {
		oi, ok := ast.Unparen(o.payload).(*ast.IndexExpr)
		if !ok {
			continue
		}
		or := rootIdent(oi.X)
		if or == nil || p.ObjectOf(or) != obj {
			continue
		}
		if firstEnd == 0 || o.call.End() < firstEnd {
			firstEnd = o.call.End()
		}
		payloadSpans = append(payloadSpans, [2]token.Pos{o.payload.Pos(), o.payload.End()})
	}
	inspectShallow(fs.body, func(n ast.Node) bool {
		use, ok := n.(*ast.Ident)
		if !ok || use.Pos() <= firstEnd || p.ObjectOf(use) != obj {
			return true
		}
		for _, sp := range payloadSpans {
			if use.Pos() >= sp[0] && use.Pos() < sp[1] {
				return true
			}
		}
		p.Reportf(s.call.Pos(),
			"comm %s payload container %s is read or written on line %d after its buffers were sent",
			s.method, root.Name, p.Fset.Position(use.Pos()).Line)
		return false
	})
}

// checkFreshAssignments verifies every assignment to obj in the scope
// yields freshly allocated memory (or derives from obj itself: growth and
// re-slicing patterns).
func checkFreshAssignments(p *Pass, fs funcScope, s sendSite, obj types.Object, name string) {
	inspectShallow(fs.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				target := lhs
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					target = ix.X // writes into m[k] transfer with the send too
				}
				r := rootIdent(target)
				if r == nil || p.ObjectOf(r) != obj {
					continue
				}
				var rhs ast.Expr
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i]
				} else if len(st.Rhs) == 1 {
					rhs = st.Rhs[0] // multi-value call: fresh
				}
				if rhs != nil && !freshExpr(p, rhs, obj) {
					p.Reportf(s.call.Pos(),
						"comm %s payload %s aliases non-fresh memory assigned on line %d",
						s.method, name, p.Fset.Position(st.Pos()).Line)
				}
			}
		case *ast.ValueSpec:
			for i, vn := range st.Names {
				if p.ObjectOf(vn) != obj || i >= len(st.Values) {
					continue
				}
				if !freshExpr(p, st.Values[i], obj) {
					p.Reportf(s.call.Pos(),
						"comm %s payload %s aliases non-fresh memory assigned on line %d",
						s.method, name, p.Fset.Position(st.Pos()).Line)
				}
			}
		}
		return true
	})
}

// freshExpr reports whether e evaluates to freshly allocated memory (or
// derives from self, covering x = append(x, ...) growth and x = x[:n]
// re-slicing).
func freshExpr(p *Pass, e ast.Expr, self types.Object) bool {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.CompositeLit, *ast.BasicLit, *ast.FuncLit:
		return true
	case *ast.Ident:
		return x.Name == "nil"
	case *ast.UnaryExpr:
		return x.Op == token.AND && freshExpr(p, x.X, self)
	case *ast.SliceExpr:
		r := rootIdent(x.X)
		return r != nil && p.ObjectOf(r) == self
	case *ast.IndexExpr:
		r := rootIdent(x.X)
		return r != nil && p.ObjectOf(r) == self
	case *ast.CallExpr:
		if isBuiltin(p, x, "append") && len(x.Args) > 0 {
			if freshExpr(p, x.Args[0], self) {
				return true
			}
			r := rootIdent(x.Args[0])
			return r != nil && p.ObjectOf(r) == self
		}
		// A summarized callee is fresh only if every argument it may
		// return an alias of is itself fresh (or derives from self).
		if callee, args := p.Prog.callTarget(p.Pkg, x, nil); callee != nil {
			flows := p.Prog.Flows(callee)
			for i, arg := range args {
				if !flowAt(flows, i).ReturnsAlias {
					continue
				}
				if r := rootIdent(arg); r != nil && p.ObjectOf(r) == self {
					continue
				}
				if !freshExpr(p, arg, self) {
					return false
				}
			}
			return true
		}
		// make, new, conversions, and unresolvable calls: results are
		// fresh by this repo's convention (helpers return owned memory).
		return true
	}
	return false
}

func exprKind(e ast.Expr) string {
	switch e.(type) {
	case *ast.SelectorExpr:
		return "a field or package-level value"
	case *ast.StarExpr:
		return "a pointer dereference"
	default:
		return "a non-local expression"
	}
}

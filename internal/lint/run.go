package lint

import (
	"sort"
)

// Run applies every analyzer to every package, drops findings covered by
// //lint:ignore directives, and returns the rest sorted by position. The
// interprocedural Program is built over exactly pkgs; to summarize
// helpers living in packages that should not themselves be reported on,
// use BuildProgram + RunProgram.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunProgram(BuildProgram(pkgs), pkgs, analyzers)
}

// RunProgram is Run with an explicit interprocedural context: prog may
// span more packages than targets, so escape facts flow through helpers
// in packages that are only context, while findings are reported only for
// the target packages.
func RunProgram(prog *Program, targets []*Package, analyzers []*Analyzer) []Diagnostic {
	var all []Diagnostic
	for _, pkg := range targets {
		var raw []Diagnostic
		ignores := collectIgnores(pkg, &all) // malformed directives report directly
		for _, a := range analyzers {
			pass := &Pass{Fset: pkg.Fset, Pkg: pkg, Prog: prog, analyzer: a.Name, sink: &raw}
			a.Run(pass)
		}
		for _, d := range raw {
			if !suppressed(d, ignores) {
				all = append(all, d)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return all
}

package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// syntheticPkg type-checks a single self-contained source string into a
// Package, bypassing the module loader: summary-layer tests stay fast and
// independent of the repository's own code.
func syntheticPkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "synth.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{}
	tpkg, err := conf.Check("synth", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "synth", Files: []*ast.File{f}, Types: tpkg, Info: info, Fset: fset}
}

// flowsOf builds a Program over src and returns the named function's
// parameter flows.
func flowsOf(t *testing.T, prog *Program, name string) []ParamFlow {
	t.Helper()
	for _, fn := range prog.order {
		if fn.Name() == name {
			return prog.summaries[fn].Flows
		}
	}
	t.Fatalf("no function %q in program", name)
	return nil
}

func TestSummaryReturnsAlias(t *testing.T) {
	prog := BuildProgram([]*Package{syntheticPkg(t, `
package synth

type pair struct{ buf []int }

func ident(v []int) []int { return v }

func wrapped(v []int) pair { return pair{buf: v} }

func resliced(v []int) []int { return v[1:] }

func twoHops(v []int) []int { return ident(v) }

func copied(v []int) []int {
	out := make([]int, len(v))
	copy(out, v)
	return out
}

func scalar(v []int) int { return v[0] }
`)})
	for _, name := range []string{"ident", "wrapped", "resliced", "twoHops"} {
		if !flowsOf(t, prog, name)[0].ReturnsAlias {
			t.Errorf("%s: ReturnsAlias = false, want true", name)
		}
	}
	for _, name := range []string{"copied", "scalar"} {
		if flowsOf(t, prog, name)[0].ReturnsAlias {
			t.Errorf("%s: ReturnsAlias = true, want false", name)
		}
	}
}

func TestSummaryRetained(t *testing.T) {
	prog := BuildProgram([]*Package{syntheticPkg(t, `
package synth

type holder struct{ kept []int }

var sink []int
var total int

func toGlobal(v []int) { sink = v }

func toField(h *holder, v []int) { h.kept = v }

func toChannel(ch chan []int, v []int) { ch <- v }

func viaHelper(v []int) { toGlobal(v) }

func viaAppend(v []int) { sink = append(sink, v...) }

func scalarStore(v []int) { total = v[0] }

func localOnly(v []int) int {
	tmp := v
	return len(tmp)
}
`)})
	retains := func(name string, i int) bool { return flowsOf(t, prog, name)[i].Retained }
	if !retains("toGlobal", 0) {
		t.Error("toGlobal: parameter not Retained")
	}
	if !retains("toField", 1) {
		t.Error("toField: stored parameter not Retained")
	}
	if retains("toField", 0) {
		t.Error("toField: the holder itself marked Retained")
	}
	if !retains("toChannel", 1) {
		t.Error("toChannel: sent parameter not Retained")
	}
	if !retains("viaHelper", 0) {
		t.Error("viaHelper: transitive retention through toGlobal missed")
	}
	if !retains("viaAppend", 0) {
		t.Error("viaAppend: retention through append into a global missed")
	}
	if retains("scalarStore", 0) {
		t.Error("scalarStore: value-typed read marked Retained")
	}
	if retains("localOnly", 0) {
		t.Error("localOnly: purely local alias marked Retained")
	}
}

func TestSummaryScratchSanctioned(t *testing.T) {
	prog := BuildProgram([]*Package{syntheticPkg(t, `
package synth

type Scratch struct{ buf []int }

//tess:scratchowner
type pool struct{ cur []int }

type plain struct{ cur []int }

func intoScratch(s *Scratch, v []int) { s.buf = v }

func intoOwner(p *pool, v []int) { p.cur = v }

func intoPlain(p *plain, v []int) { p.cur = v }
`)})
	for _, name := range []string{"intoScratch", "intoOwner"} {
		f := flowsOf(t, prog, name)[1]
		if !f.RetainedScratch || f.Retained {
			t.Errorf("%s: RetainedScratch=%v Retained=%v, want sanctioned-only retention",
				name, f.RetainedScratch, f.Retained)
		}
	}
	if f := flowsOf(t, prog, "intoPlain")[1]; !f.Retained {
		t.Error("intoPlain: unsanctioned field store not Retained")
	}
}

func TestSummaryRecursion(t *testing.T) {
	prog := BuildProgram([]*Package{syntheticPkg(t, `
package synth

var sink []int

func direct(v []int, n int) []int {
	if n == 0 {
		return v
	}
	return direct(v, n-1)
}

func pingRet(v []int, n int) []int {
	if n == 0 {
		return v
	}
	return pongRet(v, n-1)
}

func pongRet(v []int, n int) []int { return pingRet(v, n) }

func pingStore(v []int, n int) {
	if n == 0 {
		sink = v
		return
	}
	pongStore(v, n-1)
}

func pongStore(v []int, n int) { pingStore(v, n) }
`)})
	for _, name := range []string{"direct", "pingRet", "pongRet"} {
		if !flowsOf(t, prog, name)[0].ReturnsAlias {
			t.Errorf("%s: ReturnsAlias not propagated through recursion", name)
		}
	}
	for _, name := range []string{"pingStore", "pongStore"} {
		if !flowsOf(t, prog, name)[0].Retained {
			t.Errorf("%s: Retained not propagated through mutual recursion", name)
		}
	}
}

func TestSummaryMethodValueEdge(t *testing.T) {
	prog := BuildProgram([]*Package{syntheticPkg(t, `
package synth

type box struct{ held []int }

func (b *box) keep(v []int) { b.held = v }

func (b *box) drop(v []int) {}

func viaMethodValue(b *box, v []int) {
	f := b.keep
	f(v)
}

func viaHarmless(b *box, v []int) {
	f := b.drop
	f(v)
}

func reassigned(b *box, v []int) {
	f := b.drop
	f = b.keep
	f(v)
	_ = f
}
`)})
	if f := flowsOf(t, prog, "keep"); !f[1].Retained {
		t.Fatal("keep: receiver store not Retained (method summary broken)")
	}
	if !flowsOf(t, prog, "viaMethodValue")[1].Retained {
		t.Error("viaMethodValue: retention through a bound method value missed")
	}
	if flowsOf(t, prog, "viaHarmless")[1].Retained {
		t.Error("viaHarmless: harmless method value marked Retained")
	}
	// A variable bound to two different methods is poisoned: the call
	// resolves to nothing, and by the ownership convention nothing
	// escapes. The test pins the poisoning (no panic, no cross-binding).
	if flowsOf(t, prog, "reassigned")[1].Retained {
		t.Error("reassigned: poisoned binding still produced an edge")
	}
}

func TestSummaryVariadicFolding(t *testing.T) {
	prog := BuildProgram([]*Package{syntheticPkg(t, `
package synth

var sink [][]int

func keepAll(vs ...[]int) { sink = vs }

func viaVariadic(a, b []int) { keepAll(a, b) }
`)})
	f := flowsOf(t, prog, "viaVariadic")
	if !f[0].Retained || !f[1].Retained {
		t.Errorf("viaVariadic: variadic folding lost retention: %+v", f)
	}
}

func TestSummaryGenericInstantiation(t *testing.T) {
	prog := BuildProgram([]*Package{syntheticPkg(t, `
package synth

func gid[T any](v T) T { return v }

func viaInferred(v []int) []int { return gid(v) }

func viaExplicit(v []int) []int { return gid[[]int](v) }
`)})
	if !flowsOf(t, prog, "gid")[0].ReturnsAlias {
		t.Fatal("gid: generic identity not summarized")
	}
	for _, name := range []string{"viaInferred", "viaExplicit"} {
		if !flowsOf(t, prog, name)[0].ReturnsAlias {
			t.Errorf("%s: alias through generic instantiation missed", name)
		}
	}
}

// TestProgramLoanedIndex checks the //tess:loaned marker index feeding
// loanretain.
func TestProgramLoanedIndex(t *testing.T) {
	pkg := syntheticPkg(t, `
package synth

type out struct{ c []int }

type sess struct{ buf out }

// Step loans its result.
//
//tess:loaned
func (s *sess) Step() *out { return &s.buf }

func plain(s *sess) *out { return &s.buf }
`)
	prog := BuildProgram([]*Package{pkg})
	var step, plain *types.Func
	for _, fn := range prog.order {
		switch fn.Name() {
		case "Step":
			step = fn
		case "plain":
			plain = fn
		}
	}
	if !prog.Loaned(step) {
		t.Error("marked Step not in the loaned index")
	}
	if prog.Loaned(plain) {
		t.Error("unmarked function in the loaned index")
	}
}

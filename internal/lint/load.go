package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"maps"
	"os"
	"path/filepath"
	"slices"
	"strings"
)

// Package is one parsed and type-checked package of the module, with the
// syntax and type information the analyzers consume.
type Package struct {
	// Path is the import path ("repro/internal/voronoi").
	Path string
	// Dir is the absolute directory the sources were read from.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Fset  *token.FileSet
}

// Loader parses and type-checks packages of a single module from source.
// Imports inside the module resolve to module directories; all other
// imports resolve through the standard library's source importer (which
// type-checks GOROOT packages from source, so no compiled export data is
// needed). A Loader memoizes by import path and may be reused across
// calls; it is not safe for concurrent use.
type Loader struct {
	Fset *token.FileSet

	moduleDir  string
	modulePath string
	std        types.ImporterFrom
	pkgs       map[string]*Package
	inflight   map[string]bool
}

// NewLoader returns a Loader for the module rooted at moduleDir (the
// directory containing go.mod).
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePathOf(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer consults go/build's default context. Forcing
	// cgo off keeps packages like net on their pure-Go fallback, which is
	// the only flavor that can be type-checked without running cgo.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	l := &Loader{
		Fset:       fset,
		moduleDir:  abs,
		modulePath: modPath,
		pkgs:       map[string]*Package{},
		inflight:   map[string]bool{},
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// ModuleDir returns the absolute module root.
func (l *Loader) ModuleDir() string { return l.moduleDir }

// modulePathOf extracts the module path from a go.mod file.
func modulePathOf(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			if p != "" {
				return strings.Trim(p, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Import implements types.Importer over the module + stdlib split.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.moduleDir, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg.Types, nil
	}
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		pkg, err := l.loadModulePath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.moduleDir, 0)
}

func (l *Loader) loadModulePath(path string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
	return l.load(path, filepath.Join(l.moduleDir, filepath.FromSlash(rel)))
}

// LoadDir loads the package in a single directory, which must lie inside
// the module (testdata fixture packages included).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.moduleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.moduleDir)
	}
	path := l.modulePath
	if rel != "." {
		path += "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

// LoadAll loads every package of the module, skipping testdata, hidden,
// and underscore-prefixed directories, in deterministic path order.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.moduleDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.moduleDir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// Cached returns every module package the Loader has loaded so far —
// requested packages and module dependencies pulled in through imports —
// in deterministic path order. It is the natural universe for
// BuildProgram when only a subset of packages is being reported on.
func (l *Loader) Cached() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range slices.Sorted(maps.Keys(l.pkgs)) {
		out = append(out, l.pkgs[p])
	}
	return out
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.inflight[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.inflight[path] = true
	defer delete(l.inflight, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info, Fset: l.Fset}
	l.pkgs[path] = pkg
	return pkg, nil
}

package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc enforces allocation discipline in packages marked with a
// //tess:hotpath directive comment (voronoi, qhull, geom — the kernels
// the per-cell clipping loop lives in). Three patterns are flagged:
//
//   - sort.Slice / sort.SliceStable anywhere in the package: the
//     less-closure escapes into sort's reflect-based machinery and
//     allocates on every call; hot code uses the closure-free sorts
//     (sortShellPoints treatment).
//   - map literals and make(map...) lexically inside a loop body: a
//     fresh hash table per iteration, plus nondeterministic iteration
//     downstream.
//   - append whose destination slice is born inside a loop (declared in
//     the loop body, or a fresh literal/nil base): a growing allocation
//     every iteration. Scratch-owned buffers (any type named Scratch)
//     and caller-provided buffers (parameters) amortize across calls and
//     are exempt; so are slices declared outside the loop, which grow
//     once and are reused.
//
// The zero-allocation clipping kernels of PR 1 (ComputeCell: 1031 -> 4
// allocs/op) are protected by benchmarks only at the call sites the
// benchmarks exercise; this analyzer protects every function in the
// marked packages, including ones written after the benchmarks.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "hot-path packages must not allocate per iteration (closures, maps, loop-born slices)",
	Run:  runHotAlloc,
}

// hotPathMarker is the directive comment that opts a package into
// HotAlloc; place it next to the package clause of the package's doc file.
const hotPathMarker = "//tess:hotpath"

// isHotPath reports whether any file of the package carries the marker.
func isHotPath(pkg *Package) bool {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if c.Text == hotPathMarker {
					return true
				}
			}
		}
	}
	return false
}

func runHotAlloc(p *Pass) {
	if !isHotPath(p.Pkg) {
		return
	}
	for _, file := range p.Pkg.Files {
		for _, fs := range funcScopes(p, file) {
			checkHotScope(p, fs)
		}
	}
}

func checkHotScope(p *Pass, fs funcScope) {
	var loops []ast.Node
	var walk func(n ast.Node)
	walkList := func(stmts []ast.Stmt) {
		for _, s := range stmts {
			walk(s)
		}
	}
	walk = func(n ast.Node) {
		switch x := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return // separate scope; funcScopes covers it
		case *ast.ForStmt:
			walk(x.Init)
			walk(x.Cond)
			walk(x.Post)
			loops = append(loops, x)
			walk(x.Body)
			loops = loops[:len(loops)-1]
			return
		case *ast.RangeStmt:
			walk(x.X)
			loops = append(loops, x)
			walk(x.Body)
			loops = loops[:len(loops)-1]
			return
		case *ast.CompositeLit:
			if len(loops) > 0 && isMapType(p.TypeOf(x)) {
				p.Reportf(x.Pos(), "map literal allocated inside a loop in a //tess:hotpath package")
			}
		case *ast.CallExpr:
			checkHotCall(p, fs, x, loops)
		}
		// Generic traversal for everything not handled above.
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			walk(c)
			return false
		})
	}
	walkList(fs.body.List)
}

func checkHotCall(p *Pass, fs funcScope, call *ast.CallExpr, loops []ast.Node) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if sel.Sel.Name == "Slice" || sel.Sel.Name == "SliceStable" {
			if obj := p.ObjectOf(sel.Sel); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sort" {
				p.Reportf(call.Pos(),
					"sort.%s allocates its less-closure per call in a //tess:hotpath package; use a closure-free sort",
					sel.Sel.Name)
			}
		}
	}
	if len(loops) == 0 {
		return
	}
	if isBuiltin(p, call, "make") && len(call.Args) > 0 && isMapType(p.TypeOf(call)) {
		p.Reportf(call.Pos(), "make(map) inside a loop in a //tess:hotpath package")
	}
	if isBuiltin(p, call, "append") && len(call.Args) > 0 {
		checkHotAppend(p, fs, call, loops)
	}
}

func checkHotAppend(p *Pass, fs funcScope, call *ast.CallExpr, loops []ast.Node) {
	base := ast.Unparen(call.Args[0])
	// append onto a fresh allocation every iteration.
	switch base.(type) {
	case *ast.CompositeLit:
		p.Reportf(call.Pos(), "append onto a fresh slice literal inside a loop in a //tess:hotpath package")
		return
	}
	root := rootIdent(base)
	if root == nil {
		return
	}
	obj := p.ObjectOf(root)
	if obj == nil || fs.params[obj] {
		return
	}
	// Scratch-owned buffers are the sanctioned reuse mechanism.
	if n := namedType(obj.Type()); n != nil && n.Obj().Name() == "Scratch" {
		return
	}
	// A slice reached through a pointer (f.conflicts with f a *face range
	// variable, say) lives in the pointee, which outlives the loop variable
	// holding the pointer; growth amortizes across iterations.
	if base != root {
		if _, ok := obj.Type().Underlying().(*types.Pointer); ok {
			return
		}
	}
	for _, loop := range loops {
		if declaredWithin(obj, loop) {
			p.Reportf(call.Pos(),
				"append to %s, born inside this loop, allocates per iteration in a //tess:hotpath package; hoist it or use scratch storage",
				root.Name)
			return
		}
	}
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ScratchRetain guards the boundary of the scratch-arena pattern: while a
// cell is being built its storage may alias a Scratch (that is the whole
// point of the zero-allocation kernel), but a reference into a
// Scratch-owned buffer must never outlive the function that borrowed it —
// the next cell computed through the same Scratch overwrites those
// buffers in place. Returning s.buf (directly, re-sliced, through a local
// alias, or wrapped in a composite literal) or storing it into a
// package-level variable publishes memory that is about to be silently
// rewritten; detach into owned storage instead, the way ComputeCellScratch
// does before handing a cell out.
//
// Any named type called Scratch is treated as a scratch arena, so the
// invariant transfers to future per-worker scratch types, not just
// voronoi.Scratch.
//
// Field stores are policed too: `x.f = s.buf` smuggles the reference out
// through whatever x is, so it is flagged unless the target is a
// sanctioned retention site — a Scratch itself (arenas may rewire their
// own storage), memory already inside a scratch buffer, or a type whose
// declaration doc carries a //tess:scratchowner marker. The marker is the
// opt-in for types that legitimately own scratch-lifetime storage (a
// session-held pool, a cell under construction); marked types take on the
// documentation burden of saying when their references die.
var ScratchRetain = &Analyzer{
	Name: "scratchretain",
	Doc:  "references into Scratch-owned buffers must not escape the borrowing function",
	Run:  runScratchRetain,
}

func runScratchRetain(p *Pass) {
	owners := scratchOwnerTypes(p)
	for _, file := range p.Pkg.Files {
		for _, fs := range funcScopes(p, file) {
			checkScratchScope(p, fs, owners)
		}
	}
}

// scratchOwnerTypes collects the package's named types whose declaration
// doc carries a //tess:scratchowner marker: sanctioned holders of
// scratch-lifetime references. (The marker is read from this package's
// syntax only; cross-package stores of scratch-rooted memory cannot occur
// because a Scratch's buffers are unexported.)
func scratchOwnerTypes(p *Pass) map[types.Object]bool {
	owners := map[types.Object]bool{}
	mark := func(doc *ast.CommentGroup, name *ast.Ident) {
		if doc == nil {
			return
		}
		for _, c := range doc.List {
			if strings.Contains(c.Text, "//tess:scratchowner") {
				if obj := p.ObjectOf(name); obj != nil {
					owners[obj] = true
				}
				return
			}
		}
	}
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				mark(gd.Doc, ts.Name)
				mark(ts.Doc, ts.Name)
			}
		}
	}
	return owners
}

func checkScratchScope(p *Pass, fs funcScope, owners map[types.Object]bool) {
	tainted := scratchTaint(p, fs)
	if tainted == nil {
		return // no Scratch in sight: the common case, skip the walk
	}
	inspectShallow(fs.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			if len(st.Results) == 0 {
				for obj := range fs.results {
					if tainted[obj] {
						p.Reportf(st.Pos(),
							"bare return publishes %s, which references a Scratch-owned buffer; detach into owned memory first",
							obj.Name())
					}
				}
				return true
			}
			for _, res := range st.Results {
				if scratchRooted(p, res, tainted) && referencesEscape(p, res) {
					p.Reportf(st.Pos(),
						"returning a reference into a Scratch-owned buffer; the next cell through this scratch overwrites it (detach into owned memory)")
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				root := rootIdent(lhs)
				if root == nil {
					continue
				}
				var rhs ast.Expr
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i]
				}
				if rhs == nil || !scratchRooted(p, rhs, tainted) || !referencesEscape(p, rhs) {
					continue
				}
				obj := p.ObjectOf(root)
				if obj != nil && obj.Parent() == p.Pkg.Types.Scope() {
					p.Reportf(st.Pos(),
						"storing a reference into a Scratch-owned buffer in package-level %s; it will be overwritten by the next cell",
						root.Name)
					continue
				}
				// Field stores smuggle the reference out through the
				// holder, unless the holder is a sanctioned owner.
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					if scratchOwnerTarget(p, sel.X, tainted, owners) {
						continue
					}
					p.Reportf(st.Pos(),
						"storing a reference into a Scratch-owned buffer in field %s of a non-scratch-owner type; detach into owned memory or mark the holder //tess:scratchowner",
						sel.Sel.Name)
				}
			}
		}
		return true
	})
}

// scratchTaint computes the set of local objects holding references into
// Scratch-owned buffers, iterating assignments to a fixpoint. It returns
// nil when the function cannot see a Scratch at all.
func scratchTaint(p *Pass, fs funcScope) map[types.Object]bool {
	sawScratch := false
	inspectShallow(fs.body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && isScratchType(p.TypeOf(sel.X)) {
			sawScratch = true
		}
		return !sawScratch
	})
	if !sawScratch {
		return nil
	}
	tainted := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		inspectShallow(fs.body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := p.ObjectOf(id)
					if obj == nil || tainted[obj] {
						continue
					}
					var rhs ast.Expr
					if len(st.Rhs) == len(st.Lhs) {
						rhs = st.Rhs[i]
					}
					if rhs != nil && scratchRooted(p, rhs, tainted) && referencesEscape(p, rhs) {
						tainted[obj] = true
						changed = true
					}
				}
			case *ast.ValueSpec:
				for i, name := range st.Names {
					obj := p.ObjectOf(name)
					if obj == nil || tainted[obj] || i >= len(st.Values) {
						continue
					}
					if scratchRooted(p, st.Values[i], tainted) && referencesEscape(p, st.Values[i]) {
						tainted[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}
	return tainted
}

// scratchRooted reports whether e is a reference into a Scratch-owned
// buffer: a selector chain passing through a Scratch-typed value, a
// tainted local, derivations of either (slicing, indexing, address-of,
// append growth), or a composite literal embedding one.
func scratchRooted(p *Pass, e ast.Expr, tainted map[types.Object]bool) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := p.ObjectOf(x)
		return obj != nil && tainted[obj]
	case *ast.SelectorExpr:
		if isScratchType(p.TypeOf(x.X)) {
			return true
		}
		return scratchRooted(p, x.X, tainted)
	case *ast.IndexExpr:
		return scratchRooted(p, x.X, tainted)
	case *ast.SliceExpr:
		return scratchRooted(p, x.X, tainted)
	case *ast.StarExpr:
		return scratchRooted(p, x.X, tainted)
	case *ast.UnaryExpr:
		return x.Op == token.AND && scratchRooted(p, x.X, tainted)
	case *ast.CallExpr:
		if isBuiltin(p, x, "append") && len(x.Args) > 0 {
			return scratchRooted(p, x.Args[0], tainted)
		}
		return false // function results are owned by convention
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if scratchRooted(p, el, tainted) {
				return true
			}
		}
		return false
	}
	return false
}

// scratchOwnerTarget reports whether a store through base (the selector
// chain left of the final field) lands in a sanctioned retention site: a
// Scratch itself, a //tess:scratchowner-marked type anywhere along the
// chain, or memory that is already scratch-rooted (rewiring inside the
// arena cannot extend a reference's lifetime).
func scratchOwnerTarget(p *Pass, base ast.Expr, tainted map[types.Object]bool, owners map[types.Object]bool) bool {
	if scratchRooted(p, base, tainted) {
		return true
	}
	for {
		base = ast.Unparen(base)
		if t := p.TypeOf(base); t != nil {
			if isScratchType(t) {
				return true
			}
			if n := namedType(t); n != nil && owners[n.Obj()] {
				return true
			}
		}
		switch x := base.(type) {
		case *ast.SelectorExpr:
			base = x.X
		case *ast.IndexExpr:
			base = x.X
		case *ast.StarExpr:
			base = x.X
		default:
			return false
		}
	}
}

// referencesEscape reports whether e's value can carry a live reference
// (len(s.buf) or s.buf[0] are plain values and cannot).
func referencesEscape(p *Pass, e ast.Expr) bool {
	t := p.TypeOf(e)
	return t != nil && hasReference(t)
}

// isScratchType reports whether t (or its pointee) is a named type called
// Scratch, in any package.
func isScratchType(t types.Type) bool {
	n := namedType(t)
	return n != nil && n.Obj().Name() == "Scratch"
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ScratchRetain guards the boundary of the scratch-arena pattern: while a
// cell is being built its storage may alias a Scratch (that is the whole
// point of the zero-allocation kernel), but a reference into a
// Scratch-owned buffer must never outlive the function that borrowed it —
// the next cell computed through the same Scratch overwrites those
// buffers in place. Returning s.buf (directly, re-sliced, through a local
// alias, or wrapped in a composite literal) or storing it into a
// package-level variable publishes memory that is about to be silently
// rewritten; detach into owned storage instead, the way ComputeCellScratch
// does before handing a cell out.
//
// Any named type called Scratch is treated as a scratch arena, so the
// invariant transfers to future per-worker scratch types, not just
// voronoi.Scratch.
//
// Field stores are policed too: `x.f = s.buf` smuggles the reference out
// through whatever x is, so it is flagged unless the target is a
// sanctioned retention site — a Scratch itself (arenas may rewire their
// own storage), memory already inside a scratch buffer, or a type whose
// declaration doc carries a //tess:scratchowner marker. The marker is the
// opt-in for types that legitimately own scratch-lifetime storage (a
// session-held pool, a cell under construction); marked types take on the
// documentation burden of saying when their references die.
//
// The check is interprocedural: function results are owned by convention
// ONLY when the callee's summary proves it. A helper that returns an
// alias of its argument propagates scratch taint through the call
// (v := id(s.buf) taints v), and passing a scratch-rooted reference to a
// helper whose summary retains or sends its parameter is reported at the
// call site — the leak classes the v1 function-local pass could not see.
var ScratchRetain = &Analyzer{
	Name: "scratchretain",
	Doc:  "references into Scratch-owned buffers must not escape the borrowing function",
	Run:  runScratchRetain,
}

func runScratchRetain(p *Pass) {
	var owners map[types.Object]bool
	if p.Prog != nil {
		owners = p.Prog.scratchOwners
	}
	for _, file := range p.Pkg.Files {
		for _, fs := range funcScopes(p, file) {
			checkScratchScope(p, fs, owners)
		}
	}
}

func checkScratchScope(p *Pass, fs funcScope, owners map[types.Object]bool) {
	bind := funcBindings(p.Pkg, fs.body)
	tainted := scratchTaint(p, fs, bind)
	if tainted == nil {
		return // no Scratch in sight: the common case, skip the walk
	}
	inspectShallow(fs.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			if len(st.Results) == 0 {
				for obj := range fs.results {
					if tainted[obj] {
						p.Reportf(st.Pos(),
							"bare return publishes %s, which references a Scratch-owned buffer; detach into owned memory first",
							obj.Name())
					}
				}
				return true
			}
			for _, res := range st.Results {
				if scratchRooted(p, res, tainted, bind) && referencesEscape(p, res) {
					p.Reportf(st.Pos(),
						"returning a reference into a Scratch-owned buffer; the next cell through this scratch overwrites it (detach into owned memory)")
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				root := rootIdent(lhs)
				if root == nil {
					continue
				}
				var rhs ast.Expr
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i]
				}
				if rhs == nil || !scratchRooted(p, rhs, tainted, bind) || !referencesEscape(p, rhs) {
					continue
				}
				obj := p.ObjectOf(root)
				if obj != nil && obj.Parent() == p.Pkg.Types.Scope() {
					p.Reportf(st.Pos(),
						"storing a reference into a Scratch-owned buffer in package-level %s; it will be overwritten by the next cell",
						root.Name)
					continue
				}
				// Field stores smuggle the reference out through the
				// holder, unless the holder is a sanctioned owner.
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					if scratchOwnerTarget(p, sel.X, tainted, owners, bind) {
						continue
					}
					p.Reportf(st.Pos(),
						"storing a reference into a Scratch-owned buffer in field %s of a non-scratch-owner type; detach into owned memory or mark the holder //tess:scratchowner",
						sel.Sel.Name)
				}
			}
		case *ast.CallExpr:
			checkScratchCall(p, st, tainted, bind)
		}
		return true
	})
}

// checkScratchCall reports scratch-rooted arguments handed to helpers
// whose summaries retain or send their parameter — escape through a call
// chain rather than a direct store.
func checkScratchCall(p *Pass, call *ast.CallExpr, tainted map[types.Object]bool, bind map[types.Object]boundFunc) {
	callee, args := p.Prog.callTarget(p.Pkg, call, bind)
	if callee == nil {
		return
	}
	flows := p.Prog.Flows(callee)
	for i, arg := range args {
		if !scratchRooted(p, arg, tainted, bind) || !referencesEscape(p, arg) {
			continue
		}
		f := flowAt(flows, i)
		if f.Retained {
			p.Reportf(call.Pos(),
				"passing a reference into a Scratch-owned buffer to %s, which retains it (%s); detach into owned memory first",
				callee.Name(), f.RetainNote)
		}
		if f.Sent {
			p.Reportf(call.Pos(),
				"passing a reference into a Scratch-owned buffer to %s, which sends it %s; the receiving rank would alias scratch memory",
				callee.Name(), f.SentNote)
		}
	}
}

// scratchTaint computes the set of local objects holding references into
// Scratch-owned buffers, iterating assignments to a fixpoint. It returns
// nil when the function cannot see a Scratch at all.
func scratchTaint(p *Pass, fs funcScope, bind map[types.Object]boundFunc) map[types.Object]bool {
	sawScratch := false
	inspectShallow(fs.body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && isScratchType(p.TypeOf(sel.X)) {
			sawScratch = true
		}
		return !sawScratch
	})
	if !sawScratch {
		return nil
	}
	tainted := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		inspectShallow(fs.body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := p.ObjectOf(id)
					if obj == nil || tainted[obj] {
						continue
					}
					var rhs ast.Expr
					if len(st.Rhs) == len(st.Lhs) {
						rhs = st.Rhs[i]
					}
					if rhs != nil && scratchRooted(p, rhs, tainted, bind) && referencesEscape(p, rhs) {
						tainted[obj] = true
						changed = true
					}
				}
			case *ast.ValueSpec:
				for i, name := range st.Names {
					obj := p.ObjectOf(name)
					if obj == nil || tainted[obj] || i >= len(st.Values) {
						continue
					}
					if scratchRooted(p, st.Values[i], tainted, bind) && referencesEscape(p, st.Values[i]) {
						tainted[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}
	return tainted
}

// scratchRooted reports whether e is a reference into a Scratch-owned
// buffer: a selector chain passing through a Scratch-typed value, a
// tainted local, derivations of either (slicing, indexing, address-of,
// append growth), a composite literal embedding one, or the result of a
// summarized helper that returns an alias of a scratch-rooted argument.
func scratchRooted(p *Pass, e ast.Expr, tainted map[types.Object]bool, bind map[types.Object]boundFunc) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := p.ObjectOf(x)
		return obj != nil && tainted[obj]
	case *ast.SelectorExpr:
		if isScratchType(p.TypeOf(x.X)) {
			return true
		}
		return scratchRooted(p, x.X, tainted, bind)
	case *ast.IndexExpr:
		return scratchRooted(p, x.X, tainted, bind)
	case *ast.SliceExpr:
		return scratchRooted(p, x.X, tainted, bind)
	case *ast.StarExpr:
		return scratchRooted(p, x.X, tainted, bind)
	case *ast.UnaryExpr:
		return x.Op == token.AND && scratchRooted(p, x.X, tainted, bind)
	case *ast.CallExpr:
		if isBuiltin(p, x, "append") && len(x.Args) > 0 {
			return scratchRooted(p, x.Args[0], tainted, bind)
		}
		// A summarized callee that returns an alias of a scratch-rooted
		// argument roots its result too; other results are owned by
		// convention.
		if callee, args := p.Prog.callTarget(p.Pkg, x, bind); callee != nil {
			flows := p.Prog.Flows(callee)
			for i, arg := range args {
				if flowAt(flows, i).ReturnsAlias && scratchRooted(p, arg, tainted, bind) {
					return true
				}
			}
		}
		return false
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if scratchRooted(p, el, tainted, bind) {
				return true
			}
		}
		return false
	}
	return false
}

// scratchOwnerTarget reports whether a store through base (the selector
// chain left of the final field) lands in a sanctioned retention site: a
// Scratch itself, a //tess:scratchowner-marked type anywhere along the
// chain, or memory that is already scratch-rooted (rewiring inside the
// arena cannot extend a reference's lifetime).
func scratchOwnerTarget(p *Pass, base ast.Expr, tainted map[types.Object]bool, owners map[types.Object]bool, bind map[types.Object]boundFunc) bool {
	if scratchRooted(p, base, tainted, bind) {
		return true
	}
	for {
		base = ast.Unparen(base)
		if t := p.TypeOf(base); t != nil {
			if isScratchType(t) {
				return true
			}
			if n := namedType(t); n != nil && owners[n.Obj()] {
				return true
			}
		}
		switch x := base.(type) {
		case *ast.SelectorExpr:
			base = x.X
		case *ast.IndexExpr:
			base = x.X
		case *ast.StarExpr:
			base = x.X
		default:
			return false
		}
	}
}

// referencesEscape reports whether e's value can carry a live reference
// (len(s.buf) or s.buf[0] are plain values and cannot).
func referencesEscape(p *Pass, e ast.Expr) bool {
	t := p.TypeOf(e)
	return t != nil && hasReference(t)
}

// isScratchType reports whether t (or its pointee) is a named type called
// Scratch, in any package.
func isScratchType(t types.Type) bool {
	n := namedType(t)
	return n != nil && n.Obj().Name() == "Scratch"
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LoanRetain is the session-API analogue of ScratchRetain. Functions
// marked //tess:loaned (Session.Step, Session.StepPath and their
// wrappers) return borrowed storage: the provider owns it and overwrites
// it in place on the next step, so the result is valid only until the
// borrowing call chain returns. A loaned value may be read freely, but
// storing it beyond the chain — in a package-level variable, in a field
// of caller-visible memory, in a comm payload, or by returning it from a
// function not itself marked //tess:loaned — publishes memory that the
// next Step silently rewrites, the classic stale-output bug of in situ
// pipelines that reuse result buffers across timesteps.
//
// Calling Clone on a loaned value detaches it into owned memory and ends
// the loan. The analysis is interprocedural: a loan flowing through an
// identity helper stays loaned, and handing a loan to a helper whose
// summary retains or sends its parameter is reported at the call site.
// A function that legitimately passes a loan through (a thin wrapper)
// opts in by carrying the //tess:loaned marker itself, which moves the
// obligation to its callers.
var LoanRetain = &Analyzer{
	Name: "loanretain",
	Doc:  "values loaned by //tess:loaned providers must be Cloned before being stored beyond the borrowing call chain",
	Run:  runLoanRetain,
}

func runLoanRetain(p *Pass) {
	if p.Prog == nil {
		return
	}
	for _, file := range p.Pkg.Files {
		for _, fs := range funcScopes(p, file) {
			checkLoanScope(p, fs)
		}
	}
}

func checkLoanScope(p *Pass, fs funcScope) {
	bind := funcBindings(p.Pkg, fs.body)
	tainted := loanTaint(p, fs, bind)
	if tainted == nil {
		return // no loaned call in this scope: the common case
	}
	loanedSelf := fs.decl != nil && docHasMarker(fs.decl.Doc, loanedMarker)
	inspectShallow(fs.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			if loanedSelf {
				return true // marked wrappers pass the loan to their callers
			}
			if len(st.Results) == 0 {
				for obj := range fs.results {
					if tainted[obj] {
						p.Reportf(st.Pos(),
							"bare return publishes loaned %s beyond the borrowing call chain; Clone it or mark the function //tess:loaned",
							obj.Name())
					}
				}
				return true
			}
			for _, res := range st.Results {
				if loanRooted(p, res, tainted, bind) && referencesEscape(p, res) {
					p.Reportf(st.Pos(),
						"returning a loaned value; the next Step overwrites it (Clone it, or mark the function //tess:loaned)")
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				var rhs ast.Expr
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i]
				}
				if rhs == nil || !loanRooted(p, rhs, tainted, bind) || !referencesEscape(p, rhs) {
					continue
				}
				checkLoanStore(p, fs, st, lhs)
			}
		case *ast.SendStmt:
			if loanRooted(p, st.Value, tainted, bind) && referencesEscape(p, st.Value) {
				p.Reportf(st.Pos(),
					"sending a loaned value on a channel publishes it beyond the borrowing call chain; Clone it first")
			}
		case *ast.CallExpr:
			checkLoanCall(p, st, tainted, bind)
		}
		return true
	})
}

// checkLoanStore reports assignments that park a loaned value in storage
// outliving the borrowing call chain.
func checkLoanStore(p *Pass, fs funcScope, st *ast.AssignStmt, lhs ast.Expr) {
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	obj := p.ObjectOf(root)
	if obj == nil {
		return
	}
	if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
		if obj.Parent() == p.Pkg.Types.Scope() {
			p.Reportf(st.Pos(),
				"storing a loaned value in package-level %s; the next Step overwrites it (Clone it first)",
				root.Name)
		}
		return // plain local assignment: taint propagation, not escape
	}
	// Store through a field/index/deref: escapes when the holder is
	// caller-visible (package-level or reachable from a parameter or
	// receiver); stores into purely local containers stay in the chain.
	if obj.Parent() == p.Pkg.Types.Scope() || fs.params[obj] {
		p.Reportf(st.Pos(),
			"storing a loaned value through %s, which outlives the borrowing call chain; Clone it first",
			root.Name)
	}
}

// checkLoanCall reports loaned arguments handed to helpers whose
// summaries retain or send their parameter.
func checkLoanCall(p *Pass, call *ast.CallExpr, tainted map[types.Object]bool, bind map[types.Object]boundFunc) {
	if isCloneCall(call) {
		return
	}
	callee, args := p.Prog.callTarget(p.Pkg, call, bind)
	if callee == nil {
		return
	}
	flows := p.Prog.Flows(callee)
	for i, arg := range args {
		if !loanRooted(p, arg, tainted, bind) || !referencesEscape(p, arg) {
			continue
		}
		f := flowAt(flows, i)
		// Unlike scratchretain, a sanctioned scratch holder is no better a
		// home for a loan: both retention kinds are reported.
		if f.Retained || f.RetainedScratch {
			note := f.RetainNote
			if note == "" {
				note = "stored in scratch-owner storage"
			}
			p.Reportf(call.Pos(),
				"passing a loaned value to %s, which retains it (%s); Clone it first",
				callee.Name(), note)
		}
		if f.Sent {
			p.Reportf(call.Pos(),
				"passing a loaned value to %s, which sends it %s; Clone it first",
				callee.Name(), f.SentNote)
		}
	}
}

// loanTaint computes the locals holding loaned references, or nil when
// the scope makes no //tess:loaned call at all.
func loanTaint(p *Pass, fs funcScope, bind map[types.Object]boundFunc) map[types.Object]bool {
	sawLoan := false
	inspectShallow(fs.body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && loanedCall(p, call, bind) {
			sawLoan = true
		}
		return !sawLoan
	})
	if !sawLoan {
		return nil
	}
	tainted := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		inspectShallow(fs.body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := p.ObjectOf(id)
					if obj == nil || tainted[obj] {
						continue
					}
					var rhs ast.Expr
					if len(st.Rhs) == len(st.Lhs) {
						rhs = st.Rhs[i]
					} else if len(st.Rhs) == 1 && i == 0 {
						rhs = st.Rhs[0] // out, err := sess.Step(...): value 0 is the loan
					}
					if rhs != nil && loanRooted(p, rhs, tainted, bind) && referencesEscape(p, id) {
						tainted[obj] = true
						changed = true
					}
				}
			case *ast.ValueSpec:
				for i, name := range st.Names {
					obj := p.ObjectOf(name)
					if obj == nil || tainted[obj] || i >= len(st.Values) {
						continue
					}
					if loanRooted(p, st.Values[i], tainted, bind) && referencesEscape(p, name) {
						tainted[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}
	return tainted
}

// loanedCall reports whether call invokes a //tess:loaned provider.
func loanedCall(p *Pass, call *ast.CallExpr, bind map[types.Object]boundFunc) bool {
	callee, _ := p.Prog.callTarget(p.Pkg, call, bind)
	return p.Prog.Loaned(callee)
}

// isCloneCall reports whether call is a Clone method call — the
// sanctioned way to detach a loan into owned memory.
func isCloneCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Clone"
}

// loanRooted reports whether e carries a loaned reference: the direct
// result of a //tess:loaned call, a tainted local, projections of either
// (fields, elements, re-slices, address-of), a composite literal
// embedding one, or a summarized helper returning an alias of one. Clone
// calls launder the loan.
func loanRooted(p *Pass, e ast.Expr, tainted map[types.Object]bool, bind map[types.Object]boundFunc) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := p.ObjectOf(x)
		return obj != nil && tainted[obj]
	case *ast.SelectorExpr:
		return loanRooted(p, x.X, tainted, bind)
	case *ast.IndexExpr:
		return loanRooted(p, x.X, tainted, bind)
	case *ast.SliceExpr:
		return loanRooted(p, x.X, tainted, bind)
	case *ast.StarExpr:
		return loanRooted(p, x.X, tainted, bind)
	case *ast.UnaryExpr:
		return x.Op == token.AND && loanRooted(p, x.X, tainted, bind)
	case *ast.CallExpr:
		if isCloneCall(x) {
			return false
		}
		if loanedCall(p, x, bind) {
			return true
		}
		if isBuiltin(p, x, "append") && len(x.Args) > 0 {
			for _, a := range x.Args {
				if loanRooted(p, a, tainted, bind) {
					return true
				}
			}
			return false
		}
		if callee, args := p.Prog.callTarget(p.Pkg, x, bind); callee != nil {
			flows := p.Prog.Flows(callee)
			for i, arg := range args {
				if flowAt(flows, i).ReturnsAlias && loanRooted(p, arg, tainted, bind) {
					return true
				}
			}
		}
		return false
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if loanRooted(p, el, tainted, bind) {
				return true
			}
		}
		return false
	}
	return false
}

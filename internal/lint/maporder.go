package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags range statements over maps whose bodies are sensitive to
// iteration order: appending to a slice that outlives the loop, calling
// into the comm package (message order and collective call order must
// match across ranks), or accumulating floating-point values (addition is
// not associative, so the sum depends on visit order). Go randomizes map
// iteration per run, so any of these silently breaks the byte-identical
// mesh guarantee that the Workers-{1,2,8} determinism tests pin down —
// but only on the runs the tests don't see. Ranging over maps.Keys or
// maps.Values is the same hazard and is treated identically; iterate
// slices.Sorted(maps.Keys(m)) instead.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration order must not influence output, messages, or float accumulation",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !rangesOverMap(p, rng) {
				return true
			}
			checkMapRangeBody(p, rng)
			return true
		})
	}
}

// rangesOverMap reports whether rng iterates a map, or the unsorted
// maps.Keys/maps.Values iterators over one.
func rangesOverMap(p *Pass, rng *ast.RangeStmt) bool {
	t := p.TypeOf(rng.X)
	if t != nil {
		if _, ok := t.Underlying().(*types.Map); ok {
			return true
		}
	}
	call, ok := ast.Unparen(rng.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Keys" && sel.Sel.Name != "Values") {
		return false
	}
	obj := p.ObjectOf(sel.Sel)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "maps"
}

func checkMapRangeBody(p *Pass, rng *ast.RangeStmt) {
	var appendSeen, commSeen, floatSeen bool
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if !commSeen && commCall(p, x) {
				commSeen = true
				p.Reportf(rng.Pos(),
					"comm call on line %d inside map iteration: message and collective order would vary per run",
					p.Fset.Position(x.Pos()).Line)
			}
			if !appendSeen && isBuiltin(p, x, "append") && len(x.Args) > 0 {
				if r := rootIdent(x.Args[0]); r != nil {
					obj := p.ObjectOf(r)
					if obj != nil && !declaredWithin(obj, rng.Body) {
						appendSeen = true
						p.Reportf(rng.Pos(),
							"map iteration appends to %s, which outlives the loop: element order would vary per run",
							r.Name)
					}
				}
			}
		case *ast.AssignStmt:
			if floatSeen {
				return true
			}
			switch x.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			default:
				return true
			}
			lhs := x.Lhs[0]
			t := p.TypeOf(lhs)
			if t == nil {
				return true
			}
			b, ok := t.Underlying().(*types.Basic)
			if !ok || b.Info()&types.IsFloat == 0 {
				return true
			}
			if r := rootIdent(lhs); r != nil {
				obj := p.ObjectOf(r)
				if obj != nil && !declaredWithin(obj, rng.Body) {
					floatSeen = true
					p.Reportf(rng.Pos(),
						"map iteration accumulates float %s: non-associative addition makes the result order-dependent",
						r.Name)
				}
			}
		}
		return true
	})
}

package lint

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AbortErr, DoneSel, HotAlloc, LoanRetain, MapOrder,
		PhasePair, ScratchRetain, SendAlias,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

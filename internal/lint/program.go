package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Program is the interprocedural layer shared by every analyzer of one
// Run: the set of loaded packages, a call graph keyed by *types.Func over
// every module function with a body, per-function escape/retain/send
// summaries (see Summary), and the module-wide directive-marker indexes
// (//tess:loaned functions, //tess:scratchowner types, //tess:abortable
// packages, module error sentinels and structured error types).
//
// Packages outside the built Program — the standard library, and module
// packages not loaded into this Run — contribute no summaries; calls into
// them fall back to the repository's ownership convention (results are
// owned, parameters are neither retained nor sent). The zero-findings
// gate and the CLI default therefore build the Program over the whole
// module, so every helper a value can escape through is summarized.
type Program struct {
	pkgs   []*Package
	byPath map[string]*Package

	// order lists every module function with a body, in deterministic
	// (package, file, declaration) order; info locates each one.
	order []*types.Func
	info  map[*types.Func]*funcInfo

	summaries map[*types.Func]*Summary

	// loaned marks functions whose doc carries //tess:loaned: their
	// results are borrowed storage, overwritten by the provider later.
	loaned map[*types.Func]bool
	// scratchOwners marks types whose declaration doc carries
	// //tess:scratchowner: sanctioned holders of scratch-lifetime
	// references.
	scratchOwners map[types.Object]bool

	// sentinels are package-level error-typed variables named Err*;
	// errTypes are named types ending in "Error" that implement error.
	// Both feed the aborterr analyzer.
	sentinels map[types.Object]bool
	errTypes  map[types.Object]bool
}

// funcInfo locates one summarized function's syntax.
type funcInfo struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// BuildProgram indexes pkgs and computes interprocedural summaries to a
// fixpoint. The packages become the Program's analysis universe: facts
// about functions outside it default to the ownership convention.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		byPath:        map[string]*Package{},
		info:          map[*types.Func]*funcInfo{},
		summaries:     map[*types.Func]*Summary{},
		loaned:        map[*types.Func]bool{},
		scratchOwners: map[types.Object]bool{},
		sentinels:     map[types.Object]bool{},
		errTypes:      map[types.Object]bool{},
	}
	for _, pkg := range pkgs {
		if _, ok := prog.byPath[pkg.Path]; ok {
			continue
		}
		prog.byPath[pkg.Path] = pkg
		prog.pkgs = append(prog.pkgs, pkg)
		prog.indexPackage(pkg)
	}
	prog.computeSummaries()
	return prog
}

// indexPackage records pkg's functions, markers, and error vocabulary.
func (prog *Program) indexPackage(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[d.Name].(*types.Func)
				if !ok {
					continue
				}
				prog.order = append(prog.order, fn)
				prog.info[fn] = &funcInfo{pkg: pkg, decl: d}
				if docHasMarker(d.Doc, loanedMarker) {
					prog.loaned[fn] = true
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					if docHasMarker(d.Doc, scratchOwnerMarker) || docHasMarker(ts.Doc, scratchOwnerMarker) {
						if obj := pkg.Info.Defs[ts.Name]; obj != nil {
							prog.scratchOwners[obj] = true
						}
					}
				}
			}
		}
	}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		switch o := obj.(type) {
		case *types.Var:
			if strings.HasPrefix(name, "Err") && implementsError(o.Type()) {
				prog.sentinels[o] = true
			}
		case *types.TypeName:
			if strings.HasSuffix(name, "Error") &&
				(implementsError(o.Type()) || implementsError(types.NewPointer(o.Type()))) {
				prog.errTypes[o] = true
			}
		}
	}
}

// Markers recognized by the framework. Each is a directive comment placed
// in the doc of the declaration it governs.
const (
	// loanedMarker marks a function whose results are loans: storage owned
	// and later overwritten by the provider (Session.Step's Output).
	loanedMarker = "//tess:loaned"
	// scratchOwnerMarker marks a type sanctioned to hold scratch-lifetime
	// references (see ScratchRetain).
	scratchOwnerMarker = "//tess:scratchowner"
	// abortableMarker opts a package into the donesel analyzer: its
	// blocking channel operations must remain abortable.
	abortableMarker = "//tess:abortable"
)

func docHasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// pkgHasMarker reports whether any comment of the package carries marker
// (used for package-granularity opt-ins like //tess:abortable).
func pkgHasMarker(pkg *Package, marker string) bool {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, marker) {
					return true
				}
			}
		}
	}
	return false
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// isErrorType reports whether t is the error interface itself.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t.Underlying(), errorIface)
}

// Summary returns fn's interprocedural summary, or nil when fn lies
// outside the Program (callers then apply the ownership convention).
func (prog *Program) Summary(fn *types.Func) *Summary {
	if prog == nil || fn == nil {
		return nil
	}
	return prog.summaries[fn]
}

// Loaned reports whether fn's doc marks its results //tess:loaned.
func (prog *Program) Loaned(fn *types.Func) bool {
	return prog != nil && prog.loaned[fn]
}

// boundFunc is a function value a local variable is known to hold: the
// callee plus, for a method value (f := x.M), the receiver expression
// bound at creation. A variable assigned more than one function resolves
// to nothing (invalid entry with fn == nil).
type boundFunc struct {
	fn   *types.Func
	recv ast.Expr
}

// funcBindings scans body for locals holding exactly one resolvable
// function value, so calls through them gain call-graph edges (the
// method-value edges the summary tests pin down).
func funcBindings(pkg *Package, body *ast.BlockStmt) map[types.Object]boundFunc {
	bind := map[types.Object]boundFunc{}
	record := func(name *ast.Ident, rhs ast.Expr) {
		obj := pkg.Info.Defs[name]
		if obj == nil {
			obj = pkg.Info.Uses[name]
		}
		if obj == nil {
			return
		}
		bf, ok := funcValueOf(pkg, rhs)
		if !ok || bf.fn == nil {
			bind[obj] = boundFunc{} // unresolvable or reassigned: poison
			return
		}
		if prev, seen := bind[obj]; seen && prev.fn != bf.fn {
			bind[obj] = boundFunc{}
			return
		}
		bind[obj] = bf
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && isFuncTyped(pkg, id) {
					record(id, st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if i < len(st.Values) && isFuncTyped(pkg, name) {
					record(name, st.Values[i])
				}
			}
		}
		return true
	})
	return bind
}

func isFuncTyped(pkg *Package, id *ast.Ident) bool {
	obj := pkg.Info.Defs[id]
	if obj == nil {
		obj = pkg.Info.Uses[id]
	}
	if obj == nil || obj.Type() == nil {
		return false
	}
	_, ok := obj.Type().Underlying().(*types.Signature)
	return ok
}

// funcValueOf resolves an expression to a function value: a plain
// function identifier, a qualified function, or a method value with its
// receiver.
func funcValueOf(pkg *Package, e ast.Expr) (boundFunc, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if fn, ok := objOf(pkg, x).(*types.Func); ok {
			return boundFunc{fn: fn}, true
		}
	case *ast.SelectorExpr:
		fn, ok := objOf(pkg, x.Sel).(*types.Func)
		if !ok {
			return boundFunc{}, false
		}
		if _, isMethod := pkg.Info.Selections[x]; isMethod {
			return boundFunc{fn: fn, recv: x.X}, true
		}
		return boundFunc{fn: fn}, true // qualified package function
	}
	return boundFunc{}, false
}

func objOf(pkg *Package, id *ast.Ident) types.Object {
	if o := pkg.Info.Defs[id]; o != nil {
		return o
	}
	return pkg.Info.Uses[id]
}

// callTarget resolves a call expression to a summarized module function
// and the caller-side expression list aligned with the callee's Params
// (receiver expression first for method calls). bind supplies
// function-value bindings for calls through local variables; nil is
// allowed. Unresolvable calls — dynamic values, stdlib, packages outside
// the Program — return nil.
func (prog *Program) callTarget(pkg *Package, call *ast.CallExpr, bind map[types.Object]boundFunc) (*types.Func, []ast.Expr) {
	if prog == nil {
		return nil, nil
	}
	fun := ast.Unparen(call.Fun)
	// Unwrap explicit generic instantiation: F[T](...) / x.M[T](...).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	var fn *types.Func
	var recv ast.Expr
	switch f := fun.(type) {
	case *ast.Ident:
		switch o := objOf(pkg, f).(type) {
		case *types.Func:
			fn = o
		default:
			if bind != nil {
				if bf, ok := bind[objOf(pkg, f)]; ok && bf.fn != nil {
					fn, recv = bf.fn, bf.recv
				}
			}
		}
	case *ast.SelectorExpr:
		if o, ok := objOf(pkg, f.Sel).(*types.Func); ok {
			fn = o
			if _, isMethod := pkg.Info.Selections[f]; isMethod {
				recv = f.X
			}
		}
	}
	if fn == nil {
		return nil, nil
	}
	if _, known := prog.info[fn]; !known {
		return nil, nil
	}
	args := call.Args
	if recv != nil {
		args = append([]ast.Expr{recv}, args...)
	}
	return fn, args
}

package lint

import (
	"go/ast"
	"strings"
)

// PhasePair keeps the observability span protocol locally auditable:
// every Recorder.Begin must be paired with a Recorder.End on the same
// recorder, either by a defer in the same function or by a call later in
// the same function body. An unpaired Begin leaves the span open forever,
// skewing per-phase wall-clock attribution for every report after it; an
// End in a different function hides the pairing from review and breaks
// the moment the call graph shifts.
//
// The check is positional, not path-sensitive: an error return between
// Begin and a same-function End is accepted (spans of failed steps are
// closed by the abort path). Any named type called Recorder (or ending in
// Recorder) is held to the protocol, mirroring the Scratch heuristic.
var PhasePair = &Analyzer{
	Name: "phasepair",
	Doc:  "Recorder.Begin must pair with Recorder.End via defer or a later call in the same function",
	Run:  runPhasePair,
}

func runPhasePair(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, fs := range funcScopes(p, file) {
			checkPhaseScope(p, fs)
		}
	}
}

// recorderCall returns the receiver root identifier when call is a
// Begin/End method call on a Recorder-named type.
func recorderCall(p *Pass, call *ast.CallExpr, method string) *ast.Ident {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil
	}
	n := namedType(p.TypeOf(sel.X))
	if n == nil {
		return nil
	}
	if !strings.HasSuffix(n.Obj().Name(), "Recorder") {
		return nil
	}
	return rootIdent(sel.X)
}

func checkPhaseScope(p *Pass, fs funcScope) {
	type site struct {
		call *ast.CallExpr
		root *ast.Ident
	}
	var begins []site
	var ends []site
	deferred := map[*ast.CallExpr]bool{}
	inspectShallow(fs.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeferStmt:
			deferred[st.Call] = true
			// A deferred closure closing the span counts too: scan it for
			// End calls (the closure body is otherwise out of scope here).
			if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok {
						if root := recorderCall(p, c, "End"); root != nil {
							ends = append(ends, site{call: c, root: root})
							deferred[c] = true
						}
					}
					return true
				})
			}
		case *ast.CallExpr:
			if root := recorderCall(p, st, "Begin"); root != nil {
				begins = append(begins, site{call: st, root: root})
			} else if root := recorderCall(p, st, "End"); root != nil {
				ends = append(ends, site{call: st, root: root})
			}
		}
		return true
	})
	for _, b := range begins {
		paired := false
		for _, e := range ends {
			if e.root.Name != b.root.Name {
				continue
			}
			if deferred[e.call] || e.call.Pos() > b.call.End() {
				paired = true
				break
			}
		}
		if !paired {
			p.Reportf(b.call.Pos(),
				"Recorder.Begin on %s has no matching End in this function (pair it with a defer or a later End call)",
				b.root.Name)
		}
	}
}

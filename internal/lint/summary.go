package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Summary is one function's interprocedural contract: for each parameter
// (receiver first, in declaration order), whether memory reachable from
// it can leave the call — returned to the caller, retained in storage
// that outlives the call, or sent to another rank. Summaries are computed
// bottom-up over the call graph to a fixpoint, so the facts are
// transitive: a function that hands its parameter to a helper that stores
// it in a package-level variable is itself "retaining".
type Summary struct {
	// Params holds the receiver (if any) followed by the parameters, in
	// order; entries are nil for unnamed or blank parameters, which no
	// body expression can reference.
	Params []types.Object
	// Flows is parallel to Params.
	Flows []ParamFlow
}

// ParamFlow is the escape contract of one parameter.
type ParamFlow struct {
	// ReturnsAlias: some return value may alias memory reachable from the
	// parameter (identity helpers, re-slicers, wrappers).
	ReturnsAlias bool
	// Retained: the parameter's memory is stored somewhere that outlives
	// the call — a package-level variable, a field of caller-visible
	// memory, a raw channel — directly or via a callee.
	Retained bool
	// RetainedScratch: like Retained, but every retention site is
	// sanctioned scratch storage (a Scratch or a //tess:scratchowner
	// type). ScratchRetain accepts these; LoanRetain does not
	// distinguish.
	RetainedScratch bool
	// Sent: the parameter's memory flows into a comm point-to-point send
	// payload, directly or via a callee.
	Sent bool
	// RetainNote and SentNote locate the first witnessing site, for
	// diagnostics ("stored in package-level sink", "sent by drain").
	RetainNote, SentNote string
}

// Flows returns fn's parameter flows, or nil when fn is outside the
// Program.
func (prog *Program) Flows(fn *types.Func) []ParamFlow {
	s := prog.Summary(fn)
	if s == nil {
		return nil
	}
	return s.Flows
}

// flowAt returns the flow of argument i, folding variadic tails onto the
// last declared parameter.
func flowAt(flows []ParamFlow, i int) ParamFlow {
	if len(flows) == 0 {
		return ParamFlow{}
	}
	if i >= len(flows) {
		i = len(flows) - 1
	}
	return flows[i]
}

// flowsEqual compares only the monotone flags the fixpoint iterates on.
func flowsEqual(a, b []ParamFlow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ReturnsAlias != b[i].ReturnsAlias || a[i].Retained != b[i].Retained ||
			a[i].RetainedScratch != b[i].RetainedScratch || a[i].Sent != b[i].Sent {
			return false
		}
	}
	return true
}

// computeSummaries iterates summarizeFunc over every function in
// deterministic order until no flow flag changes. All flags are monotone
// (false -> true only), so the fixpoint exists and is order-independent.
func (prog *Program) computeSummaries() {
	for _, fn := range prog.order {
		prog.summaries[fn] = &Summary{
			Params: paramObjects(prog.info[fn]),
		}
		prog.summaries[fn].Flows = make([]ParamFlow, len(prog.summaries[fn].Params))
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range prog.order {
			if prog.summarizeFunc(fn) {
				changed = true
			}
		}
	}
}

// paramObjects flattens receiver + parameters into their declared objects
// (nil for unnamed/blank entries, which keep their positional slot).
func paramObjects(fi *funcInfo) []types.Object {
	var out []types.Object
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if len(f.Names) == 0 {
				out = append(out, nil)
				continue
			}
			for _, name := range f.Names {
				if name.Name == "_" {
					out = append(out, nil)
					continue
				}
				out = append(out, fi.pkg.Info.Defs[name])
			}
		}
	}
	add(fi.decl.Recv)
	add(fi.decl.Type.Params)
	return out
}

// summaryCtx is the per-function state of one summarize pass.
type summaryCtx struct {
	prog *Program
	pkg  *Package
	fn   *types.Func
	bind map[types.Object]boundFunc
	// masks maps each object to the set of parameters (bit i = param i)
	// whose memory it may reach.
	masks map[types.Object]uint64
	flows []ParamFlow
}

func (prog *Program) summarizeFunc(fn *types.Func) bool {
	fi := prog.info[fn]
	sum := prog.summaries[fn]
	sc := &summaryCtx{
		prog:  prog,
		pkg:   fi.pkg,
		fn:    fn,
		bind:  funcBindings(fi.pkg, fi.decl.Body),
		masks: map[types.Object]uint64{},
		flows: make([]ParamFlow, len(sum.Params)),
	}
	for i, obj := range sum.Params {
		if i >= 64 {
			break
		}
		if obj != nil && obj.Type() != nil && hasReference(obj.Type()) {
			sc.masks[obj] = 1 << i
		}
	}
	body := fi.decl.Body

	// Local alias fixpoint: propagate parameter masks through
	// assignments, declarations, range bindings, and container stores.
	// Closure bodies participate (a closure that leaks a captured
	// parameter leaks it for the function).
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					var rhs ast.Expr
					if len(st.Rhs) == len(st.Lhs) {
						rhs = st.Rhs[i]
					}
					if rhs == nil {
						continue
					}
					if sc.bindMask(lhs, sc.mask(rhs)) {
						changed = true
					}
				}
			case *ast.ValueSpec:
				for i, name := range st.Names {
					if i < len(st.Values) {
						if sc.bindIdentMask(name, sc.mask(st.Values[i])) {
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				if v, ok := st.Value.(*ast.Ident); ok && v.Name != "_" {
					if sc.refTyped(v) {
						if sc.bindIdentMask(v, sc.mask(st.X)) {
							changed = true
						}
					}
				}
			}
			return true
		})
	}

	// Flow detection over the stabilized masks.
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				var rhs ast.Expr
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i]
				}
				if rhs != nil {
					sc.checkStore(lhs, rhs)
				}
			}
		case *ast.SendStmt:
			if m := sc.mask(st.Value); m != 0 {
				sc.retain(m, false, "sent on a channel")
			}
		case *ast.CallExpr:
			sc.checkCall(st)
		}
		return true
	})
	// Returns of the function itself: shallow walk, so a closure's return
	// statements do not count as the outer function's.
	inspectShallow(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) == 0 {
			// Bare return publishes the named results.
			if res := fi.decl.Type.Results; res != nil {
				for _, f := range res.List {
					for _, name := range f.Names {
						if m := sc.masks[fi.pkg.Info.Defs[name]]; m != 0 {
							sc.returnsAlias(m)
						}
					}
				}
			}
			return true
		}
		for _, r := range ret.Results {
			if sc.refTyped(r) {
				sc.returnsAlias(sc.mask(r))
			}
		}
		return true
	})

	if flowsEqual(sum.Flows, sc.flows) {
		return false
	}
	sum.Flows = sc.flows
	return true
}

func (sc *summaryCtx) returnsAlias(m uint64) {
	for i := range sc.flows {
		if m&(1<<i) != 0 {
			sc.flows[i].ReturnsAlias = true
		}
	}
}

// retain records that the parameters in m escape into long-lived storage;
// scratchOK marks a sanctioned scratch retention site.
func (sc *summaryCtx) retain(m uint64, scratchOK bool, note string) {
	for i := range sc.flows {
		if m&(1<<i) == 0 {
			continue
		}
		f := &sc.flows[i]
		if scratchOK {
			f.RetainedScratch = true
		} else if !f.Retained {
			f.Retained = true
			f.RetainNote = note
		}
	}
}

func (sc *summaryCtx) sent(m uint64, note string) {
	for i := range sc.flows {
		if m&(1<<i) != 0 && !sc.flows[i].Sent {
			sc.flows[i].Sent = true
			sc.flows[i].SentNote = note
		}
	}
}

func (sc *summaryCtx) refTyped(e ast.Expr) bool {
	t := sc.pkg.Info.TypeOf(e)
	return t != nil && hasReference(t)
}

// bindMask propagates an assignment's mask into its target: identifiers
// accumulate directly; stores through fields/indexes of a local taint the
// local (coarse container tainting, so `x.f = p; return x` is seen).
// Stores into escaping holders are flow findings, handled by checkStore.
func (sc *summaryCtx) bindMask(lhs ast.Expr, m uint64) bool {
	if m == 0 {
		return false
	}
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		return sc.bindIdentMask(x, m)
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		root := rootIdent(lhs)
		if root == nil {
			return false
		}
		obj := objOf(sc.pkg, root)
		if obj == nil || sc.isEscapingHolder(obj) {
			return false
		}
		return sc.orMask(obj, m)
	}
	return false
}

func (sc *summaryCtx) bindIdentMask(id *ast.Ident, m uint64) bool {
	if m == 0 || id.Name == "_" {
		return false
	}
	obj := objOf(sc.pkg, id)
	if obj == nil {
		return false
	}
	return sc.orMask(obj, m)
}

func (sc *summaryCtx) orMask(obj types.Object, m uint64) bool {
	old := sc.masks[obj]
	if old|m == old {
		return false
	}
	sc.masks[obj] = old | m
	return true
}

// isEscapingHolder reports whether storage rooted at obj outlives the
// call from the caller's point of view: package-level variables and
// anything reachable from a reference-carrying parameter.
func (sc *summaryCtx) isEscapingHolder(obj types.Object) bool {
	if v, ok := obj.(*types.Var); ok && v.Parent() == sc.pkg.Types.Scope() {
		return true
	}
	// Parameters hold their own bit; writing through them lands in memory
	// the caller (or the receiver's owner) observes.
	for i, p := range sc.prog.summaries[sc.fn].Params {
		if p == obj && i < 64 && sc.masks[obj]&(1<<i) != 0 {
			return true
		}
	}
	return false
}

// checkStore records retention flows for stores whose target outlives the
// call.
func (sc *summaryCtx) checkStore(lhs, rhs ast.Expr) {
	m := sc.mask(rhs)
	if m == 0 || !sc.refTyped(rhs) {
		return
	}
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := objOf(sc.pkg, x)
		if v, ok := obj.(*types.Var); ok && v.Parent() == sc.pkg.Types.Scope() {
			sc.retain(m, false, fmt.Sprintf("stored in package-level %s", x.Name))
		}
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		root := rootIdent(lhs)
		if root == nil {
			return
		}
		obj := objOf(sc.pkg, root)
		if obj == nil || !sc.isEscapingHolder(obj) {
			return
		}
		base := baseOf(lhs)
		scratchOK := sc.scratchSanctioned(base)
		sc.retain(m, scratchOK, fmt.Sprintf("stored through %s", root.Name))
	}
}

// baseOf returns the holder expression of a store target: x.f -> x,
// x[i] -> x, *p -> p.
func baseOf(lhs ast.Expr) ast.Expr {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return x.X
	case *ast.IndexExpr:
		return x.X
	case *ast.StarExpr:
		return x.X
	}
	return lhs
}

// scratchSanctioned reports whether the holder chain passes a Scratch or
// a //tess:scratchowner-marked type.
func (sc *summaryCtx) scratchSanctioned(base ast.Expr) bool {
	for {
		base = ast.Unparen(base)
		if t := sc.pkg.Info.TypeOf(base); t != nil {
			if isScratchType(t) {
				return true
			}
			if n := namedType(t); n != nil && sc.prog.scratchOwners[n.Obj()] {
				return true
			}
		}
		switch x := base.(type) {
		case *ast.SelectorExpr:
			base = x.X
		case *ast.IndexExpr:
			base = x.X
		case *ast.StarExpr:
			base = x.X
		default:
			return false
		}
	}
}

// checkCall applies callee flows to the call's arguments: passing tainted
// memory to a retaining/sending callee taints this function's summary
// transitively. Point-to-point comm sends are recognized structurally, so
// the fact holds even when the comm package is outside the Program.
func (sc *summaryCtx) checkCall(call *ast.CallExpr) {
	if idx, ok := sendPayloadIndex[worldMethodOf(sc.pkg, call)]; ok && idx < len(call.Args) {
		if m := sc.mask(call.Args[idx]); m != 0 {
			sc.sent(m, "as a comm payload")
		}
	}
	callee, args := sc.prog.callTarget(sc.pkg, call, sc.bind)
	if callee == nil {
		return
	}
	flows := sc.prog.summaries[callee].Flows
	if len(flows) == 0 {
		return
	}
	for i, arg := range args {
		m := sc.mask(arg)
		if m == 0 {
			continue
		}
		fi := i
		if fi >= len(flows) {
			fi = len(flows) - 1 // variadic tail
		}
		f := flows[fi]
		if f.Retained {
			sc.retain(m, false, fmt.Sprintf("retained by %s", callee.Name()))
		}
		if f.RetainedScratch {
			sc.retain(m, true, "")
		}
		if f.Sent {
			sc.sent(m, fmt.Sprintf("sent by %s", callee.Name()))
		}
	}
}

// mask computes the parameter set reachable from e. Reads of
// reference-free values (s.len, b[0] of a []float64) contribute nothing;
// taking an address bypasses that gate, because &x.f aliases x's memory
// whatever f's type is.
func (sc *summaryCtx) mask(e ast.Expr) uint64 {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		return sc.masks[objOf(sc.pkg, x)]
	case *ast.SelectorExpr:
		if !sc.refTyped(x) {
			return 0
		}
		return sc.mask(x.X)
	case *ast.IndexExpr:
		if !sc.refTyped(x) {
			return 0
		}
		return sc.mask(x.X)
	case *ast.SliceExpr:
		return sc.mask(x.X)
	case *ast.StarExpr:
		if !sc.refTyped(x) {
			return 0
		}
		return sc.mask(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return sc.maskAddr(x.X)
		}
		return 0
	case *ast.CompositeLit:
		var m uint64
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			m |= sc.mask(el)
		}
		return m
	case *ast.CallExpr:
		return sc.callMask(x)
	}
	return 0
}

// maskAddr is mask for an address-of operand: the leaf type gate does not
// apply along the selector chain.
func (sc *summaryCtx) maskAddr(e ast.Expr) uint64 {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return sc.masks[objOf(sc.pkg, x)]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return sc.mask(e)
		}
	}
}

// callMask computes the mask of a call result: append and conversions
// propagate their operands; resolvable module calls propagate the
// arguments their summaries return aliases of; everything else is owned
// by convention.
func (sc *summaryCtx) callMask(call *ast.CallExpr) uint64 {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := objOf(sc.pkg, id).(*types.Builtin); isB {
			if id.Name != "append" {
				return 0
			}
			var m uint64
			for _, a := range call.Args {
				m |= sc.mask(a)
			}
			return m
		}
	}
	// Conversion T(x): aliasing-preserving for slice/pointer conversions.
	if tv, ok := sc.pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return sc.mask(call.Args[0])
	}
	callee, args := sc.prog.callTarget(sc.pkg, call, sc.bind)
	if callee == nil {
		return 0
	}
	flows := sc.prog.summaries[callee].Flows
	var m uint64
	for i, arg := range args {
		fi := i
		if fi >= len(flows) {
			if len(flows) == 0 {
				break
			}
			fi = len(flows) - 1
		}
		if flows[fi].ReturnsAlias {
			m |= sc.mask(arg)
		}
	}
	return m
}

// worldMethodOf is worldMethodCall without a Pass: the method name when
// call is a method call on a comm.World value.
func worldMethodOf(pkg *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if !isCommWorld(pkg.Info.TypeOf(sel.X)) {
		return ""
	}
	return sel.Sel.Name
}

// Package interproc is the regression fixture for the interprocedural
// summary layer: every leak here escapes through a helper call, so a
// strictly function-local pass (an empty Program) sees nothing, while the
// summarized pass reports each one. TestInterprocRegression pins both
// halves of that claim.
package interproc

import "repro/internal/comm"

// Scratch is a per-worker reusable arena, as in the scratchretain
// fixture.
type Scratch struct {
	verts []float64
}

var sink []float64

// stash retains its parameter in a package-level variable.
func stash(v []float64) {
	sink = v
}

// ident returns an alias of its argument.
func ident(v []float64) []float64 { return v }

// reident is ident behind another call layer: summaries are transitive.
func reident(v []float64) []float64 { return ident(v) }

// dup returns owned memory; the escape chain ends here.
func dup(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// drain sends its parameter as a comm payload. The direct violation is
// suppressed so the fixture isolates the interprocedural finding at
// drain's call sites (the summary still records the Sent flow).
func drain(w *comm.World, rank, dst int, v []float64) {
	//lint:ignore sendalias deliberate forwarder: this fixture tests the Sent summary at the call site
	w.Send(rank, dst, 1, v)
}

func leakViaStash(s *Scratch) {
	stash(s.verts) // want `passing a reference into a Scratch-owned buffer to stash, which retains it`
}

func leakViaIdent(s *Scratch) []float64 {
	return ident(s.verts) // want `returning a reference into a Scratch-owned buffer`
}

func leakViaTwoHops(s *Scratch) []float64 {
	return reident(s.verts) // want `returning a reference into a Scratch-owned buffer`
}

func leakViaIdentAlias(s *Scratch) []float64 {
	v := ident(s.verts)
	return v // want `returning a reference into a Scratch-owned buffer`
}

func leakViaDrain(w *comm.World, rank, dst int, s *Scratch) {
	drain(w, rank, dst, s.verts) // want `passing a reference into a Scratch-owned buffer to drain, which sends it`
}

// Detaching through a copying helper is the sanctioned way out.
func detachViaDup(s *Scratch) []float64 {
	return dup(s.verts)
}

// sendIdent launders a caller payload through an identity helper; the
// summary sees through the call where the v1 syntactic check ("call
// results are fresh") did not.
func sendIdent(w *comm.World, rank, dst int, buf []float64) {
	w.Send(rank, dst, 1, ident(buf)) // want `comm Send payload is the result of ident, which returns an alias of its argument buf`
}

// sendDup is the same shape with a copying helper: fine.
func sendDup(w *comm.World, rank, dst int, buf []float64) {
	w.Send(rank, dst, 1, dup(buf))
}

// assignIdent reaches the send through a local assigned from the
// identity helper: the freshness check consults the summary too.
func assignIdent(w *comm.World, rank, dst int, buf []float64) {
	payload := ident(buf) // aliases buf
	w.Send(rank, dst, 1, payload) // want `comm Send payload payload aliases non-fresh memory`
}

// Method-value edges: binding a method to a local and calling through it
// keeps the call-graph edge.
type keeper struct {
	held []float64
}

func (k *keeper) keep(v []float64) {
	k.held = v
}

func leakViaMethodValue(s *Scratch, k *keeper) {
	f := k.keep
	f(s.verts) // want `passing a reference into a Scratch-owned buffer to keep, which retains it`
}

// Package hotalloc exercises the hotalloc analyzer. The package opts in
// via the //tess:hotpath marker below, the same way voronoi, qhull, and
// geom do.
//
//tess:hotpath
package hotalloc

import "sort"

// Scratch is the sanctioned amortized-reuse arena; any type with this
// name is exempt from the loop-append rule.
type Scratch struct {
	buf []float64
}

type node struct {
	vals []int
}

func sortClosure(xs []float64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `sort\.Slice allocates its less-closure`
}

func mapPerIteration(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		seen := make(map[int]bool, 4) // want `make\(map\) inside a loop`
		seen[i] = true
		total += len(seen)
	}
	return total
}

func mapLiteralPerIteration(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		m := map[int]int{i: i} // want `map literal allocated inside a loop`
		total += len(m)
	}
	return total
}

func loopBornAppend(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		var tmp []int
		for j := 0; j < i; j++ {
			tmp = append(tmp, j) // want `append to tmp, born inside this loop`
		}
		total += len(tmp)
	}
	return total
}

// A slice hoisted out of the loop grows once and is reused.
func hoisted(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// Scratch-owned buffers amortize across calls by design.
func viaScratch(s *Scratch, n int) int {
	s.buf = s.buf[:0]
	for i := 0; i < n; i++ {
		s.buf = append(s.buf, float64(i))
	}
	return len(s.buf)
}

// Growth through a pointer lives in the pointee, which outlives the loop
// variable holding the pointer.
func viaPointer(nodes []*node, v int) {
	for _, nd := range nodes {
		nd.vals = append(nd.vals, v)
	}
}

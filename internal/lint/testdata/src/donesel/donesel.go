// Package donesel exercises the donesel analyzer: in a package marked
// //tess:abortable, every blocking channel operation must be abortable —
// a select with a done-channel case or a default, or a receive from the
// done channel itself.
//
//tess:abortable
package donesel

// Hub stands in for a world: a data channel guarded by a done channel.
type Hub struct {
	ch   chan int
	done chan struct{}
}

// Done mirrors comm.World.Done.
func (h *Hub) Done() <-chan struct{} { return h.done }

// The sanctioned forms: select with a done case, select with a default,
// or waiting on the done channel itself.
func recvGuarded(h *Hub) int {
	select {
	case v := <-h.ch:
		return v
	case <-h.done:
		return 0
	}
}

func sendGuarded(h *Hub, v int) {
	select {
	case h.ch <- v:
	case <-h.done:
	}
}

func tryRecv(h *Hub) (int, bool) {
	select {
	case v := <-h.ch:
		return v, true
	default:
		return 0, false
	}
}

func waitDoneField(h *Hub) {
	<-h.done
}

func waitDoneAccessor(h *Hub) {
	<-h.Done()
}

func recvBare(h *Hub) int {
	return bareHelper(h)
}

func bareHelper(h *Hub) int {
	v := <-h.ch // want `blocking channel receive outside a select`
	return v
}

func recvBareStmt(h *Hub) {
	<-h.ch // want `blocking channel receive outside a select`
}

func sendBare(h *Hub, v int) {
	h.ch <- v // want `blocking channel send outside a select`
}

func selectNoEscape(h *Hub, other chan int) int {
	select { // want `select blocks without a done-channel case or default`
	case v := <-h.ch:
		return v
	case v := <-other:
		return v
	}
}

func drainAll(h *Hub) int {
	total := 0
	for v := range h.ch { // want `ranging over a channel blocks on every iteration`
		total += v
	}
	return total
}

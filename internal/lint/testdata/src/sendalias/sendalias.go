// Package sendalias exercises the sendalias analyzer: comm payloads must
// be freshly allocated in the sending function and never touched after
// the send relinquishes ownership.
package sendalias

import (
	"time"

	"repro/internal/comm"
)

type wrapper struct {
	Buf []float64
}

// A fresh local transfers cleanly.
func sendFresh(w *comm.World, rank, dst int) {
	buf := make([]float64, 8)
	buf[0] = 1
	w.Send(rank, dst, 1, buf)
}

// A composite-literal payload of fresh parts is fine.
func sendLiteral(w *comm.World, rank, dst int) {
	w.Send(rank, dst, 1, wrapper{Buf: []float64{1, 2}})
}

// Pure value types are copied through the channel and are exempt.
func sendValue(w *comm.World, rank, dst, n int) {
	w.Send(rank, dst, 1, n)
}

// A parameter payload aliases the caller's memory on two ranks at once.
func sendParam(w *comm.World, rank, dst int, data []float64) {
	w.Send(rank, dst, 1, data) // want `payload data is a function parameter`
}

// A composite literal can smuggle the alias inside a field.
func sendEmbedded(w *comm.World, rank, dst int, data []float64) {
	w.Send(rank, dst, 1, wrapper{Buf: data}) // want `payload embeds parameter data`
}

// Touching the payload after the send reads memory the receiver now owns.
func sendThenReuse(w *comm.World, rank, dst int) float64 {
	buf := make([]float64, 8)
	w.Send(rank, dst, 1, buf) // want `used again on line \d+ after the send`
	return buf[0]
}

// A local rebound to non-fresh memory carries the alias to the send.
func sendRebound(w *comm.World, rank, dst int, data []float64) {
	buf := make([]float64, 0, 8)
	buf = data[:2]            // the alias the analyzer pins to the send below
	w.Send(rank, dst, 1, buf) // want `aliases non-fresh memory assigned on line \d+`
}

// The abort-aware timeout variant transfers ownership exactly like Send:
// a fresh payload is fine.
func sendTimeoutFresh(w *comm.World, rank, dst int) error {
	buf := make([]float64, 8)
	return w.SendTimeout(rank, dst, 1, buf, time.Second)
}

// ... and a parameter payload is the same aliasing bug.
func sendTimeoutParam(w *comm.World, rank, dst int, data []float64) error {
	return w.SendTimeout(rank, dst, 1, data, time.Second) // want `payload data is a function parameter`
}

// Reuse after a SendTimeout relinquishes ownership is flagged too.
func sendTimeoutThenReuse(w *comm.World, rank, dst int) float64 {
	buf := make([]float64, 8)
	_ = w.SendTimeout(rank, dst, 1, buf, time.Second) // want `used again on line \d+ after the send`
	return buf[0]
}

// Draining a local per-rank map is the sanctioned exchange pattern as
// long as later mentions of the container are only send payloads.
func drainMap(w *comm.World, rank int, dsts []int) {
	perRank := map[int][]float64{}
	for _, d := range dsts {
		perRank[d] = append(perRank[d], float64(d))
	}
	for _, d := range dsts {
		w.Send(rank, d, 1, perRank[d])
	}
}

// Reading the container after its buffers were sent aliases sent memory.
func drainThenReuse(w *comm.World, rank int, dsts []int) int {
	perRank := map[int][]float64{}
	for _, d := range dsts {
		perRank[d] = append(perRank[d], float64(d))
	}
	for _, d := range dsts {
		w.Send(rank, d, 1, perRank[d]) // want `container perRank is read or written on line \d+`
	}
	return len(perRank)
}

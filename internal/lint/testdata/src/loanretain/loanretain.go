// Package loanretain exercises the loanretain analyzer: values returned
// by //tess:loaned providers are borrowed storage and must be Cloned
// before being stored beyond the borrowing call chain.
package loanretain

// Out stands in for the session Output: reference-carrying, Clonable.
type Out struct {
	Cells []float64
}

// Clone detaches into owned memory, ending the loan.
func (o *Out) Clone() *Out {
	c := make([]float64, len(o.Cells))
	copy(c, o.Cells)
	return &Out{Cells: c}
}

// Provider stands in for a Session.
type Provider struct {
	buf Out
}

// Step loans its result: the provider overwrites it on the next Step.
//
//tess:loaned
func (p *Provider) Step() (*Out, error) {
	return &p.buf, nil
}

// Holder is caller-visible storage a loan must not land in.
type Holder struct {
	Last *Out
}

var published *Out

// Reading a loan inside the borrowing chain is the intended use.
func readLoan(p *Provider) float64 {
	out, _ := p.Step()
	return out.Cells[0]
}

// Cloning detaches: storing the clone anywhere is fine.
func keepClone(p *Provider, h *Holder) {
	out, _ := p.Step()
	h.Last = out.Clone()
	published = out.Clone()
}

// A marked wrapper passes the loan to its callers by contract.
//
//tess:loaned
func wrappedStep(p *Provider) (*Out, error) {
	return p.Step()
}

func leakReturn(p *Provider) *Out {
	out, _ := p.Step()
	return out // want `returning a loaned value`
}

func leakReturnDirect(p *Provider) (*Out, error) {
	return p.Step() // want `returning a loaned value`
}

func leakGlobal(p *Provider) {
	out, _ := p.Step()
	published = out // want `storing a loaned value in package-level published`
}

func leakField(p *Provider, h *Holder) {
	out, _ := p.Step()
	h.Last = out // want `storing a loaned value through h`
}

func leakChannel(p *Provider, ch chan *Out) {
	out, _ := p.Step()
	ch <- out // want `sending a loaned value on a channel`
}

// stash retains its parameter; handing it a loan is reported at the call
// site through stash's interprocedural summary.
func stash(o *Out) {
	published = o
}

func leakViaHelper(p *Provider) {
	out, _ := p.Step()
	stash(out) // want `passing a loaned value to stash, which retains it`
}

// ident returns an alias of its argument, so the loan survives the call.
func ident(o *Out) *Out { return o }

func leakViaIdentity(p *Provider) *Out {
	out, _ := p.Step()
	return ident(out) // want `returning a loaned value`
}

// A projection of the loan is still the loan.
func leakProjection(p *Provider) []float64 {
	out, _ := p.Step()
	return out.Cells // want `returning a loaned value`
}

// Scalar projections carry no reference and may go anywhere.
var total float64

func readScalar(p *Provider) {
	out, _ := p.Step()
	total = out.Cells[0]
}

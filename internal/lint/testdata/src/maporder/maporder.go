// Package maporder exercises the maporder analyzer: map iteration order
// is randomized per run, so loop bodies must not let it reach output,
// messages, or float accumulation.
package maporder

import (
	"maps"
	"slices"

	"repro/internal/comm"
)

// Iterating sorted keys is the sanctioned idiom: the range is over a
// slice, not the map.
func sortedDrain(m map[int]float64) float64 {
	var total float64
	for _, k := range slices.Sorted(maps.Keys(m)) {
		total += m[k]
	}
	return total
}

// Counting and other order-insensitive work is fine.
func count(m map[int]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Integer accumulation is associative; only floats are flagged.
func sumInts(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func appendDrain(m map[int]float64) []int {
	var keys []int
	for k := range m { // want `appends to keys, which outlives the loop`
		keys = append(keys, k)
	}
	return keys
}

func sendDrain(w *comm.World, rank int, m map[int][]float64) {
	for dst := range m { // want `comm call on line \d+ inside map iteration`
		w.Send(rank, dst, 1, m[dst])
	}
}

func sumFloats(m map[int]float64) float64 {
	var total float64
	for _, v := range m { // want `accumulates float total`
		total += v
	}
	return total
}

// Ranging over the maps.Keys iterator is the same hazard as ranging over
// the map itself.
func iterKeys(m map[int]float64) []int {
	var keys []int
	for k := range maps.Keys(m) { // want `appends to keys, which outlives the loop`
		keys = append(keys, k)
	}
	return keys
}

// Package scratchretain exercises the scratchretain analyzer: references
// into Scratch-owned buffers must not outlive the borrowing function.
package scratchretain

// Scratch is a per-worker reusable arena; the analyzer treats any type
// with this name as one.
type Scratch struct {
	verts []float64
	loops [][]int
}

var published []float64

// Detaching into owned memory is the sanctioned way out.
func detach(s *Scratch) []float64 {
	out := make([]float64, len(s.verts))
	copy(out, s.verts)
	return out
}

// Plain values read out of a scratch carry no reference.
func head(s *Scratch) float64 {
	return s.verts[0]
}

func leakDirect(s *Scratch) []float64 {
	return s.verts // want `returning a reference into a Scratch-owned buffer`
}

func leakResliced(s *Scratch) []float64 {
	return s.verts[:2] // want `returning a reference into a Scratch-owned buffer`
}

func leakAlias(s *Scratch) []float64 {
	v := s.verts
	return v // want `returning a reference into a Scratch-owned buffer`
}

func leakWrapped(s *Scratch) [][]int {
	return [][]int{s.loops[0]} // want `returning a reference into a Scratch-owned buffer`
}

func leakNamed(s *Scratch) (out []float64) {
	out = s.verts
	return // want `bare return publishes out`
}

func leakGlobal(s *Scratch) {
	published = s.verts // want `storing a reference into a Scratch-owned buffer in package-level published`
}

// holder is an ordinary struct: storing scratch-rooted memory into its
// fields smuggles the reference out through the holder.
type holder struct {
	verts []float64
}

// retainer is a sanctioned owner of scratch-lifetime references (a
// session-held pool, a cell under construction); the marker opts it out.
//
//tess:scratchowner
type retainer struct {
	verts []float64
	inner holder
}

func leakField(s *Scratch, h *holder) {
	h.verts = s.verts // want `storing a reference into a Scratch-owned buffer in field verts`
}

func leakFieldAlias(s *Scratch, h *holder) {
	v := s.verts[:1]
	h.verts = v // want `storing a reference into a Scratch-owned buffer in field verts`
}

// A marked owner may retain scratch-rooted references, anywhere along the
// selector chain.
func ownerField(s *Scratch, r *retainer) {
	r.verts = s.verts
	r.inner.verts = s.verts
}

// A scratch rewiring its own storage is the arena working as designed.
func scratchSelfField(s, other *Scratch) {
	other.verts = s.verts[:0]
}

// Stores into memory that is already scratch-rooted cannot extend a
// reference's lifetime.
func scratchInteriorField(s *Scratch) {
	s.loops[0] = s.loops[1]
}

// Plain values through a field store carry no reference.
func fieldValue(s *Scratch, h *holder) {
	h.verts = append([]float64(nil), s.verts[0])
}

// Package scratchretain exercises the scratchretain analyzer: references
// into Scratch-owned buffers must not outlive the borrowing function.
package scratchretain

// Scratch is a per-worker reusable arena; the analyzer treats any type
// with this name as one.
type Scratch struct {
	verts []float64
	loops [][]int
}

var published []float64

// Detaching into owned memory is the sanctioned way out.
func detach(s *Scratch) []float64 {
	out := make([]float64, len(s.verts))
	copy(out, s.verts)
	return out
}

// Plain values read out of a scratch carry no reference.
func head(s *Scratch) float64 {
	return s.verts[0]
}

func leakDirect(s *Scratch) []float64 {
	return s.verts // want `returning a reference into a Scratch-owned buffer`
}

func leakResliced(s *Scratch) []float64 {
	return s.verts[:2] // want `returning a reference into a Scratch-owned buffer`
}

func leakAlias(s *Scratch) []float64 {
	v := s.verts
	return v // want `returning a reference into a Scratch-owned buffer`
}

func leakWrapped(s *Scratch) [][]int {
	return [][]int{s.loops[0]} // want `returning a reference into a Scratch-owned buffer`
}

func leakNamed(s *Scratch) (out []float64) {
	out = s.verts
	return // want `bare return publishes out`
}

func leakGlobal(s *Scratch) {
	published = s.verts // want `storing a reference into a Scratch-owned buffer in package-level published`
}

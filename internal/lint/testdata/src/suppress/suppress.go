// Package suppress exercises //lint:ignore directive handling against the
// maporder analyzer.
package suppress

func suppressedAbove(m map[string]int) []string {
	var keys []string
	//lint:ignore maporder dump order is cosmetic in this diagnostic helper
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func suppressedSameLine(m map[string]int) []string {
	var keys []string
	for k := range m { //lint:ignore maporder dump order is cosmetic in this diagnostic helper
		keys = append(keys, k)
	}
	return keys
}

func suppressedAll(m map[string]int) []string {
	var keys []string
	//lint:ignore all benchmark-only helper, order never observed
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// A directive naming a different analyzer does not cover the finding.
func wrongAnalyzer(m map[string]int) []string {
	var keys []string
	//lint:ignore hotalloc names the wrong analyzer
	for k := range m { // want `appends to keys`
		keys = append(keys, k)
	}
	return keys
}

func notSuppressed(m map[string]int) []string {
	var keys []string
	for k := range m { // want `appends to keys`
		keys = append(keys, k)
	}
	return keys
}

// Package phasepair exercises the phasepair analyzer: every
// Recorder.Begin must pair with a Recorder.End in the same function,
// either later in the body or through a defer.
package phasepair

// Recorder stands in for obs.Recorder; the analyzer treats any
// *Recorder-named type as one.
type Recorder struct {
	open int
}

// Mark stands in for obs.SpanMark.
type Mark struct {
	idx int
}

func (r *Recorder) Begin(rank int, phase int) Mark {
	r.open++
	return Mark{idx: r.open}
}

func (r *Recorder) End(rank int, m Mark) {
	r.open--
}

// The sanctioned forms: a later End in the same body, or a defer.
func pairedInline(r *Recorder) {
	m := r.Begin(0, 1)
	work()
	r.End(0, m)
}

func pairedDefer(r *Recorder) {
	m := r.Begin(0, 1)
	defer r.End(0, m)
	work()
}

func pairedDeferClosure(r *Recorder) {
	m := r.Begin(0, 1)
	defer func() {
		r.End(0, m)
	}()
	work()
}

// An error return between Begin and End is fine: the check is
// positional, and failed spans are closed by the abort path.
func pairedWithEarlyReturn(r *Recorder, fail bool) error {
	m := r.Begin(0, 1)
	if fail {
		return errFailed
	}
	r.End(0, m)
	return nil
}

func unpaired(r *Recorder) {
	r.Begin(0, 1) // want `Recorder.Begin on r has no matching End in this function`
	work()
}

// An End before the Begin does not close the later span.
func endBeforeBegin(r *Recorder, m Mark) {
	r.End(0, m)
	r.Begin(0, 1) // want `Recorder.Begin on r has no matching End in this function`
}

// Ends on a different recorder do not pair.
func wrongRecorder(a, b *Recorder) {
	m := a.Begin(0, 1) // want `Recorder.Begin on a has no matching End in this function`
	b.End(0, m)
}

func work() {}

var errFailed = errorString("failed")

type errorString string

func (e errorString) Error() string { return string(e) }

// Package aborterr exercises the aborterr analyzer: structured errors
// must be matched through errors.Is/errors.As (which unwrap) and wrapped
// with %w, never compared or type-switched directly.
package aborterr

import (
	"errors"
	"fmt"
)

// ErrStopped is a module sentinel by the Err* naming convention.
var ErrStopped = errors.New("stopped")

// FailError is a module structured error by the *Error convention.
type FailError struct {
	Rank int
}

func (e *FailError) Error() string { return fmt.Sprintf("rank %d failed", e.Rank) }

// Is implements the unwrap protocol; identity comparison here is the
// protocol itself and is exempt.
func (e *FailError) Is(target error) bool { return target == ErrStopped }

// The sanctioned forms.
func matchWell(err error) bool {
	var fe *FailError
	if errors.As(err, &fe) {
		return true
	}
	return errors.Is(err, ErrStopped)
}

func wrapWell(err error) error {
	return fmt.Errorf("step 3: %w", err)
}

func compareEq(err error) bool {
	return err == ErrStopped // want `comparing ErrStopped with == misses wrapped errors`
}

func compareNeq(err error) bool {
	return err != ErrStopped // want `comparing ErrStopped with != misses wrapped errors`
}

func switchValue(err error) bool {
	switch err {
	case ErrStopped: // want `switching on ErrStopped by value misses wrapped errors`
		return true
	}
	return false
}

func switchType(err error) int {
	switch e := err.(type) {
	case *FailError: // want `type-switching on FailError misses wrapped errors`
		return e.Rank
	}
	return -1
}

func assertType(err error) bool {
	_, ok := err.(*FailError) // want `type-asserting to FailError misses wrapped errors`
	return ok
}

func wrapBadly(err error) error {
	return fmt.Errorf("step 3: %v", err) // want `fmt.Errorf formats an error without %w`
}

// Formatting only non-error values needs no %w.
func formatValues(rank int) error {
	return fmt.Errorf("rank %d out of range", rank)
}

// Comparing to nil is not a sentinel comparison.
func nilCheck(err error) bool { return err == nil }

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// AbortErr enforces the failure model's matching discipline. The abort
// path wraps errors as it crosses layers (rank panic -> RankError ->
// AbortError -> session error), so structured errors and sentinels —
// AbortError, RankError, StallError, ErrWorldAborted, and any module
// type/variable following the Err*/*Error naming convention — must be
// matched with errors.Is and errors.As, which unwrap. A == comparison or
// a value type-switch matches only the outermost layer and silently stops
// working the moment anyone adds a wrapping layer; fmt.Errorf on an error
// without %w severs the chain so no errors.Is downstream can see through
// it.
//
// The Is methods of error types are exempt: they are the unwrap
// protocol's own plumbing and compare identity by design.
var AbortErr = &Analyzer{
	Name: "aborterr",
	Doc:  "structured errors must be matched via errors.Is/errors.As and wrapped with %w, never compared or type-switched directly",
	Run:  runAbortErr,
}

func runAbortErr(p *Pass) {
	if p.Prog == nil {
		return
	}
	for _, file := range p.Pkg.Files {
		for _, fs := range funcScopes(p, file) {
			if fs.decl != nil && isErrorIsMethod(p, fs.decl) {
				continue
			}
			checkAbortErrScope(p, fs)
		}
	}
}

// isErrorIsMethod reports whether decl is the Is(error) bool method of an
// error type: the one place identity comparison with sentinels is the
// protocol itself.
func isErrorIsMethod(p *Pass, decl *ast.FuncDecl) bool {
	if decl.Name.Name != "Is" || decl.Recv == nil || len(decl.Recv.List) != 1 {
		return false
	}
	recv := p.TypeOf(decl.Recv.List[0].Type)
	return implementsError(recv)
}

func checkAbortErrScope(p *Pass, fs funcScope) {
	inspectShallow(fs.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.BinaryExpr:
			if st.Op != token.EQL && st.Op != token.NEQ {
				return true
			}
			for _, side := range []ast.Expr{st.X, st.Y} {
				if name, ok := sentinelUse(p, side); ok {
					p.Reportf(st.Pos(),
						"comparing %s with %s misses wrapped errors; use errors.Is",
						name, st.Op)
					break
				}
			}
		case *ast.SwitchStmt:
			// switch err { case ErrWorldAborted: ... }
			if st.Tag == nil || !implementsError(p.TypeOf(st.Tag)) {
				return true
			}
			for _, clause := range st.Body.List {
				cc := clause.(*ast.CaseClause)
				for _, e := range cc.List {
					if name, ok := sentinelUse(p, e); ok {
						p.Reportf(e.Pos(),
							"switching on %s by value misses wrapped errors; use errors.Is",
							name)
					}
				}
			}
		case *ast.TypeSwitchStmt:
			checkErrTypeSwitch(p, st)
		case *ast.TypeAssertExpr:
			if st.Type == nil {
				return true // x.(type) inside a switch, handled above
			}
			if !implementsError(p.TypeOf(st.X)) {
				return true
			}
			if name, ok := moduleErrType(p, st.Type); ok {
				p.Reportf(st.Pos(),
					"type-asserting to %s misses wrapped errors; use errors.As",
					name)
			}
		case *ast.CallExpr:
			checkErrorfWrap(p, st)
		}
		return true
	})
}

// checkErrTypeSwitch flags `switch e := err.(type)` statements whose
// operand is an error and whose cases include module error types.
func checkErrTypeSwitch(p *Pass, st *ast.TypeSwitchStmt) {
	var operand ast.Expr
	switch a := st.Assign.(type) {
	case *ast.ExprStmt:
		if ta, ok := ast.Unparen(a.X).(*ast.TypeAssertExpr); ok {
			operand = ta.X
		}
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			if ta, ok := ast.Unparen(a.Rhs[0]).(*ast.TypeAssertExpr); ok {
				operand = ta.X
			}
		}
	}
	if operand == nil || !implementsError(p.TypeOf(operand)) {
		return
	}
	for _, clause := range st.Body.List {
		cc := clause.(*ast.CaseClause)
		for _, e := range cc.List {
			if name, ok := moduleErrType(p, e); ok {
				p.Reportf(e.Pos(),
					"type-switching on %s misses wrapped errors; use errors.As",
					name)
			}
		}
	}
}

// sentinelUse reports whether e denotes a module error sentinel (a
// package-level Err* variable implementing error), returning its name.
func sentinelUse(p *Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return "", false
	}
	obj := p.ObjectOf(id)
	if obj != nil && p.Prog.sentinels[obj] {
		return id.Name, true
	}
	return "", false
}

// moduleErrType reports whether the type expression e names a module
// structured error type (*Error-named, implementing error).
func moduleErrType(p *Pass, e ast.Expr) (string, bool) {
	n := namedType(p.TypeOf(e))
	if n == nil {
		return "", false
	}
	if p.Prog.errTypes[n.Obj()] {
		return n.Obj().Name(), true
	}
	return "", false
}

// checkErrorfWrap flags fmt.Errorf calls that format an error-typed
// argument without a %w verb: the new error hides its cause from
// errors.Is/errors.As downstream.
func checkErrorfWrap(p *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	obj := p.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if t := p.TypeOf(arg); t != nil && isErrorValue(t) {
			p.Reportf(call.Pos(),
				"fmt.Errorf formats an error without %%w; the cause becomes unreachable to errors.Is/errors.As (wrap with %%w)")
			return
		}
	}
}

// isErrorValue reports whether t is the error interface or a concrete
// type implementing it (excluding nil-like untyped values).
func isErrorValue(t types.Type) bool {
	if _, isBasic := t.Underlying().(*types.Basic); isBasic {
		return false
	}
	return isErrorType(t) || implementsError(t)
}

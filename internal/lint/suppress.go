package lint

import (
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int // the line the comment ends on; it covers this line and the next
	analyzers []string
	reason    string
}

const ignorePrefix = "//lint:ignore"

// collectIgnores parses every //lint:ignore directive in pkg. Malformed
// directives (no analyzer, or no reason) are reported as diagnostics of
// the pseudo-analyzer "lint" so they cannot silently suppress nothing.
func collectIgnores(pkg *Package, sink *[]Diagnostic) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				end := pkg.Fset.Position(c.End())
				if len(fields) < 2 {
					*sink = append(*sink, Diagnostic{
						Pos:      pkg.Fset.Position(c.Pos()),
						Analyzer: "lint",
						Message:  "malformed //lint:ignore directive: need an analyzer name and a reason",
					})
					continue
				}
				out = append(out, ignoreDirective{
					file:      end.Filename,
					line:      end.Line,
					analyzers: strings.Split(fields[0], ","),
					reason:    strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return out
}

// suppressed reports whether d is covered by one of the directives: same
// file, directive on d's line or the line above, and a matching analyzer
// name (or "all").
func suppressed(d Diagnostic, dirs []ignoreDirective) bool {
	for _, ig := range dirs {
		if ig.file != d.Pos.Filename {
			continue
		}
		if ig.line != d.Pos.Line && ig.line != d.Pos.Line-1 {
			continue
		}
		for _, name := range ig.analyzers {
			if name == d.Analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

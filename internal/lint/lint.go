// Package lint is a static-analysis framework for this repository, built
// entirely on the standard library's go/parser and go/types (no x/tools
// dependency). It exists to mechanize the invariants the paper's
// correctness story rests on — distributed-memory rank isolation,
// bit-identical deterministic output, and allocation-free hot paths —
// which until now were enforced only by doc comments and tests that
// cannot see new code.
//
// The framework has three parts: a Loader that parses and type-checks
// every package of the module from source (stdlib imports are resolved by
// the compiler's source importer), a small Analyzer/Pass API mirroring
// the shape of go/analysis, and a Run driver that applies suppression
// directives and returns position-sorted diagnostics. The repo-specific
// analyzers live alongside the framework: sendalias, maporder, hotalloc,
// and scratchretain (see their Doc strings and DESIGN.md's "Static
// invariants" section).
//
// Diagnostics may be suppressed with a directive comment on the same
// line or the line directly above:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Diagnostic is one finding, located by full position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// enforces.
	Doc string
	Run func(*Pass)
}

// Pass carries one package through one analyzer. Prog is the shared
// interprocedural layer built once per Run over every loaded package;
// analyzers consult it for call-graph summaries and module-wide marker
// indexes.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
	Prog *Program

	analyzer string
	sink     *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes (definition or use),
// or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Pkg.Info.Defs[id]; o != nil {
		return o
	}
	return p.Pkg.Info.Uses[id]
}

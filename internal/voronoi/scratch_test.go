package voronoi

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/geom"
)

// Scratch reuse must be invisible: cells computed through one long-lived
// Scratch are pointwise identical (bit-for-bit) to cells computed fresh.
func TestComputeCellScratchMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	const L = 6.0
	pts := perturbedLattice(rng, 5, L, 0.9)
	ids := seqIDs(len(pts))
	ix := NewIndex(pts, ids, 0)
	s := NewScratch()
	for i, site := range pts {
		fresh, err := ComputeCell(ix, site, ids[i], geom.Cube(site, L/2))
		if err != nil {
			t.Fatalf("site %d fresh: %v", i, err)
		}
		reused, err := ComputeCellScratch(ix, site, ids[i], geom.Cube(site, L/2), s)
		if err != nil {
			t.Fatalf("site %d scratch: %v", i, err)
		}
		if fresh.Complete != reused.Complete {
			t.Fatalf("site %d: Complete %v vs %v", i, fresh.Complete, reused.Complete)
		}
		if len(fresh.Verts) != len(reused.Verts) {
			t.Fatalf("site %d: %d verts vs %d", i, len(fresh.Verts), len(reused.Verts))
		}
		for v := range fresh.Verts {
			if fresh.Verts[v] != reused.Verts[v] {
				t.Fatalf("site %d vertex %d: %v vs %v", i, v, fresh.Verts[v], reused.Verts[v])
			}
		}
		if len(fresh.Faces) != len(reused.Faces) {
			t.Fatalf("site %d: %d faces vs %d", i, len(fresh.Faces), len(reused.Faces))
		}
		for f := range fresh.Faces {
			if fresh.Faces[f].Neighbor != reused.Faces[f].Neighbor {
				t.Fatalf("site %d face %d: neighbor %d vs %d",
					i, f, fresh.Faces[f].Neighbor, reused.Faces[f].Neighbor)
			}
			if len(fresh.Faces[f].Loop) != len(reused.Faces[f].Loop) {
				t.Fatalf("site %d face %d: loop %d vs %d",
					i, f, len(fresh.Faces[f].Loop), len(reused.Faces[f].Loop))
			}
			for l := range fresh.Faces[f].Loop {
				if fresh.Faces[f].Loop[l] != reused.Faces[f].Loop[l] {
					t.Fatalf("site %d face %d loop %d differs", i, f, l)
				}
			}
		}
	}
}

// Returned cells must own their memory: computing another cell through the
// same Scratch must not disturb an earlier result.
func TestComputeCellScratchDetaches(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	const L = 4.0
	pts := perturbedLattice(rng, 3, L, 0.8)
	ids := seqIDs(len(pts))
	ix := NewIndex(pts, ids, 0)
	s := NewScratch()
	first, err := ComputeCellScratch(ix, pts[0], ids[0], geom.Cube(pts[0], L/2), s)
	if err != nil {
		t.Fatal(err)
	}
	verts := append([]geom.Vec3(nil), first.Verts...)
	vol := first.Volume()
	for i := 1; i < len(pts); i++ {
		if _, err := ComputeCellScratch(ix, pts[i], ids[i], geom.Cube(pts[i], L/2), s); err != nil {
			t.Fatal(err)
		}
	}
	for v := range verts {
		if first.Verts[v] != verts[v] {
			t.Fatalf("vertex %d of the first cell changed after scratch reuse", v)
		}
	}
	if got := first.Volume(); got != vol {
		t.Fatalf("first cell volume changed after scratch reuse: %g vs %g", got, vol)
	}
}

func TestParallelFor(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1000} {
		for _, workers := range []int{0, 1, 2, 8, 2000} {
			hits := make([]int32, n)
			var calls atomic.Int32
			ParallelFor(n, workers, func(lo, hi, w int) {
				calls.Add(1)
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("n=%d workers=%d: bad range [%d,%d)", n, workers, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, h)
				}
			}
			if n == 0 && calls.Load() != 0 {
				t.Fatalf("workers=%d: fn called for empty range", workers)
			}
		}
	}
}

func TestPoolWorkers(t *testing.T) {
	if got := PoolWorkers(4, 100); got != 4 {
		t.Errorf("PoolWorkers(4, 100) = %d", got)
	}
	if got := PoolWorkers(8, 3); got != 3 {
		t.Errorf("PoolWorkers(8, 3) = %d, want clamp to n", got)
	}
	if got := PoolWorkers(0, 0); got != 1 {
		t.Errorf("PoolWorkers(0, 0) = %d, want at least 1", got)
	}
	if got := PoolWorkers(-1, 100); got < 1 {
		t.Errorf("PoolWorkers(-1, 100) = %d, want GOMAXPROCS-derived >= 1", got)
	}
}

// ShellAppend with a recycled buffer must return the same points in the
// same order as a fresh Shell call.
func TestShellAppendReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	pts := make([]geom.Vec3, 400)
	for i := range pts {
		pts[i] = geom.V(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
	}
	ix := NewIndex(pts, seqIDs(len(pts)), 0)
	var buf []ShellPoint
	for _, q := range pts[:20] {
		for s := 0; s <= ix.MaxShell(q); s++ {
			want := ix.Shell(q, s)
			buf = ix.ShellAppend(q, s, buf[:0])
			if len(buf) != len(want) {
				t.Fatalf("shell %d: %d points vs %d", s, len(buf), len(want))
			}
			for i := range want {
				if buf[i] != want[i] {
					t.Fatalf("shell %d entry %d: %+v vs %+v", s, i, buf[i], want[i])
				}
			}
		}
	}
}

func TestSortShellPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	for _, n := range []int{0, 1, 2, 11, 12, 13, 100, 1000} {
		a := make([]ShellPoint, n)
		for i := range a {
			a[i] = ShellPoint{Idx: i, Dist: float64(rng.Intn(50))} // many ties
		}
		sortShellPoints(a)
		for i := 1; i < len(a); i++ {
			if a[i-1].Dist > a[i].Dist {
				t.Fatalf("n=%d: out of order at %d", n, i)
			}
		}
	}
}

package voronoi

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelFor executes fn over the index range [0, n) on a pool of worker
// goroutines. Workers claim chunks of consecutive indices from a shared
// atomic cursor, so load balances dynamically (cells in clustered regions
// cost far more than cells in voids) without any per-index channel
// traffic. fn receives a half-open range [lo, hi) and the worker's index
// in [0, workers); per-worker state (a *Scratch, a partial count) is
// indexed by that worker number.
//
// workers <= 0 uses GOMAXPROCS; the count is clamped to n. ParallelFor
// returns when every index has been processed. With one worker it runs fn
// inline, so single-threaded callers pay no synchronization at all.
func ParallelFor(n, workers int, fn func(lo, hi, worker int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n, 0)
		return
	}
	// ~8 chunks per worker: coarse enough that cursor contention is
	// negligible, fine enough that one expensive chunk cannot leave the
	// pool idle for long.
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				hi := int(cursor.Add(int64(chunk)))
				lo := hi - chunk
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				fn(lo, hi, worker)
			}
		}(w)
	}
	wg.Wait()
}

// PoolWorkers resolves a requested worker count against the problem size:
// nonpositive means GOMAXPROCS, and the result never exceeds n (so a
// caller can size per-worker state by the return value and index it with
// the worker numbers ParallelFor hands out).
func PoolWorkers(requested, n int) int {
	if requested <= 0 {
		requested = runtime.GOMAXPROCS(0)
	}
	if requested > n {
		requested = n
	}
	if requested < 1 {
		requested = 1
	}
	return requested
}

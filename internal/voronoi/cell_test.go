package voronoi

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestNewCellBox(t *testing.T) {
	box := geom.NewBox(geom.V(0, 0, 0), geom.V(2, 2, 2))
	c, err := NewCellBox(geom.V(1, 1, 1), 7, box)
	if err != nil {
		t.Fatal(err)
	}
	if c.SiteID != 7 {
		t.Errorf("SiteID = %d", c.SiteID)
	}
	if len(c.Verts) != 8 || len(c.Faces) != 6 {
		t.Fatalf("box cell: %d verts, %d faces", len(c.Verts), len(c.Faces))
	}
	if got := c.Volume(); math.Abs(got-8) > 1e-12 {
		t.Errorf("box volume = %v, want 8", got)
	}
	if got := c.Area(); math.Abs(got-24) > 1e-12 {
		t.Errorf("box area = %v, want 24", got)
	}
	if !c.HasWall() {
		t.Error("fresh box cell should have walls")
	}
	if c.Empty() {
		t.Error("fresh cell empty")
	}
	// Site outside box is rejected.
	if _, err := NewCellBox(geom.V(5, 1, 1), 0, box); err == nil {
		t.Error("site outside box accepted")
	}
	if _, err := NewCellBox(geom.V(0, 1, 1), 0, box); err == nil {
		t.Error("site on boundary accepted")
	}
}

func TestBoxFacesOutward(t *testing.T) {
	box := geom.NewBox(geom.V(0, 0, 0), geom.V(1, 1, 1))
	c, err := NewCellBox(geom.V(0.5, 0.5, 0.5), 0, box)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range c.Faces {
		loop := make([]geom.Vec3, len(f.Loop))
		for i, vi := range f.Loop {
			loop[i] = c.Verts[vi]
		}
		n := geom.PolygonNormal(loop).Normalize()
		fc := geom.Centroid(loop)
		if n.Dot(fc.Sub(c.Site)) <= 0 {
			t.Errorf("face %d (wall %d) not outward: n=%v", f.Neighbor, f.Neighbor, n)
		}
	}
}

func TestClipHalvesCube(t *testing.T) {
	box := geom.NewBox(geom.V(0, 0, 0), geom.V(2, 2, 2))
	c, _ := NewCellBox(geom.V(0.5, 1, 1), 1, box)
	// Bisector between site (0.5,1,1) and neighbor (3.5,1,1) is x = 2 (no
	// cut); neighbor at (1.5,1,1) bisects at x = 1.
	if c.Clip(geom.Bisector(c.Site, geom.V(3.5, 1, 1)), 2) {
		t.Error("plane outside box reported a cut")
	}
	if !c.Clip(geom.Bisector(c.Site, geom.V(1.5, 1, 1)), 2) {
		t.Error("bisector at x=1 did not cut")
	}
	if got := c.Volume(); math.Abs(got-4) > 1e-9 {
		t.Errorf("half-cube volume = %v, want 4", got)
	}
	if len(c.Faces) != 6 {
		t.Errorf("half-cube faces = %d, want 6", len(c.Faces))
	}
	// One face carries the neighbor ID.
	found := false
	for _, f := range c.Faces {
		if f.Neighbor == 2 {
			found = true
			if len(f.Loop) != 4 {
				t.Errorf("cut face has %d vertices, want 4", len(f.Loop))
			}
		}
	}
	if !found {
		t.Error("no face with neighbor ID 2")
	}
	if ids := c.NeighborIDs(); len(ids) != 1 || ids[0] != 2 {
		t.Errorf("NeighborIDs = %v", ids)
	}
}

func TestClipCorner(t *testing.T) {
	// Slice off one corner of the unit cube: volume of removed tetrahedron
	// with legs 0.5 is 0.5^3/6.
	box := geom.NewBox(geom.V(0, 0, 0), geom.V(1, 1, 1))
	c, _ := NewCellBox(geom.V(0.25, 0.25, 0.25), 0, box)
	pl := geom.NewPlane(geom.V(1, 1, 1), geom.V(1, 1, 0.5)) // x+y+z = 2.5
	if !c.Clip(pl, 9) {
		t.Fatal("corner plane did not cut")
	}
	want := 1 - (0.5*0.5*0.5)/6
	if got := c.Volume(); math.Abs(got-want) > 1e-9 {
		t.Errorf("volume = %v, want %v", got, want)
	}
	// The new face is a triangle.
	for _, f := range c.Faces {
		if f.Neighbor == 9 && len(f.Loop) != 3 {
			t.Errorf("corner cut face has %d vertices", len(f.Loop))
		}
	}
	if len(c.Faces) != 7 {
		t.Errorf("faces = %d, want 7", len(c.Faces))
	}
}

func TestClipThroughVertexExactly(t *testing.T) {
	// Plane passing exactly through cube vertices: x + y = 1 passes through
	// the edge (1,0,z)-(0,1,z) vertices of the unit cube.
	box := geom.NewBox(geom.V(0, 0, 0), geom.V(1, 1, 1))
	c, _ := NewCellBox(geom.V(0.25, 0.25, 0.5), 0, box)
	pl := geom.NewPlane(geom.V(1, 1, 0), geom.V(0.5, 0.5, 0))
	if !c.Clip(pl, 3) {
		t.Fatal("diagonal plane did not cut")
	}
	if got := c.Volume(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("volume = %v, want 0.5", got)
	}
	for _, p := range c.Verts {
		if p.X+p.Y > 1+1e-9 {
			t.Errorf("vertex %v survived on wrong side", p)
		}
	}
}

func TestClipEmptiesCell(t *testing.T) {
	box := geom.NewBox(geom.V(0, 0, 0), geom.V(1, 1, 1))
	c, _ := NewCellBox(geom.V(0.5, 0.5, 0.5), 0, box)
	pl := geom.NewPlane(geom.V(0, 0, 1), geom.V(0, 0, -5)) // keep z <= -5
	if !c.Clip(pl, 1) {
		t.Error("emptying clip reported no change")
	}
	if !c.Empty() {
		t.Error("cell should be empty")
	}
	if c.Volume() != 0 {
		t.Errorf("empty volume = %v", c.Volume())
	}
	// Further clips are no-ops.
	if c.Clip(pl, 2) {
		t.Error("clip on empty cell reported a cut")
	}
}

func TestSequentialClipsProduceConsistentGeometry(t *testing.T) {
	// Clip a cell by many random bisectors; after each cut the polyhedron
	// must stay convex-consistent: volume decreases monotonically, area
	// stays positive, all vertices stay inside every face plane, Euler
	// formula V - E + F = 2 holds.
	rng := rand.New(rand.NewSource(44))
	box := geom.NewBox(geom.V(0, 0, 0), geom.V(4, 4, 4))
	site := geom.V(2, 2, 2)
	c, _ := NewCellBox(site, 0, box)
	prevVol := c.Volume()
	for i := 0; i < 60; i++ {
		q := geom.V(rng.Float64()*4, rng.Float64()*4, rng.Float64()*4)
		if q.Dist(site) < 0.2 {
			continue
		}
		c.Clip(geom.Bisector(site, q), int64(i+1))
		if c.Empty() {
			t.Fatal("cell emptied by bisectors of a box point set")
		}
		vol := c.Volume()
		if vol > prevVol+1e-9 {
			t.Fatalf("clip %d increased volume: %v -> %v", i, prevVol, vol)
		}
		prevVol = vol
		if !c.Contains(site) {
			t.Fatalf("site left cell after clip %d", i)
		}
		checkEuler(t, c)
	}
	if prevVol <= 0 {
		t.Error("final volume nonpositive")
	}
}

func checkEuler(t *testing.T, c *Cell) {
	t.Helper()
	v := len(c.Verts)
	f := len(c.Faces)
	edges := map[[2]int]bool{}
	for _, face := range c.Faces {
		n := len(face.Loop)
		for i := 0; i < n; i++ {
			a, b := face.Loop[i], face.Loop[(i+1)%n]
			if a > b {
				a, b = b, a
			}
			edges[[2]int{a, b}] = true
		}
	}
	e := len(edges)
	if v-e+f != 2 {
		t.Fatalf("Euler violated: V=%d E=%d F=%d", v, e, f)
	}
}

func TestCentroidInsideCell(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	box := geom.NewBox(geom.V(0, 0, 0), geom.V(2, 2, 2))
	site := geom.V(1, 1, 1)
	c, _ := NewCellBox(site, 0, box)
	for i := 0; i < 20; i++ {
		q := geom.V(rng.Float64()*2, rng.Float64()*2, rng.Float64()*2)
		if q.Dist(site) < 0.3 {
			continue
		}
		c.Clip(geom.Bisector(site, q), int64(i+1))
	}
	cen := c.Centroid()
	if !c.Contains(cen) {
		t.Errorf("centroid %v outside cell", cen)
	}
	if cen == site {
		t.Log("centroid coincides with site (unlikely but not wrong)")
	}
}

func TestMaxVertexDist(t *testing.T) {
	box := geom.NewBox(geom.V(0, 0, 0), geom.V(2, 2, 2))
	c, _ := NewCellBox(geom.V(1, 1, 1), 0, box)
	want := math.Sqrt(3)
	if got := c.MaxVertexDist(); math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxVertexDist = %v, want %v", got, want)
	}
}

func TestFaceAreasSumToArea(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	box := geom.NewBox(geom.V(0, 0, 0), geom.V(3, 3, 3))
	site := geom.V(1.5, 1.5, 1.5)
	c, _ := NewCellBox(site, 0, box)
	for i := 0; i < 15; i++ {
		q := geom.V(rng.Float64()*3, rng.Float64()*3, rng.Float64()*3)
		if q.Dist(site) < 0.3 {
			continue
		}
		c.Clip(geom.Bisector(site, q), int64(i+1))
	}
	fa := c.FaceAreas()
	var sum float64
	for _, a := range fa {
		if a <= 0 {
			t.Error("nonpositive face area")
		}
		sum += a
	}
	if math.Abs(sum-c.Area()) > 1e-9*c.Area() {
		t.Errorf("face areas sum %v != total area %v", sum, c.Area())
	}
}

package voronoi

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/qhull"
)

func seqIDs(n int) []int64 {
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
	}
	return ids
}

func latticePts(n int, L float64) []geom.Vec3 {
	h := L / float64(n)
	var pts []geom.Vec3
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				pts = append(pts, geom.V(
					(float64(x)+0.5)*h, (float64(y)+0.5)*h, (float64(z)+0.5)*h))
			}
		}
	}
	return pts
}

func perturbedLattice(rng *rand.Rand, n int, L, amp float64) []geom.Vec3 {
	pts := latticePts(n, L)
	h := L / float64(n)
	for i := range pts {
		pts[i] = pts[i].Add(geom.V(
			(rng.Float64()-0.5)*amp*h,
			(rng.Float64()-0.5)*amp*h,
			(rng.Float64()-0.5)*amp*h))
	}
	return pts
}

func TestIndexShellCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	pts := make([]geom.Vec3, 300)
	for i := range pts {
		pts[i] = geom.V(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
	}
	ix := NewIndex(pts, seqIDs(len(pts)), 0)
	// Union of all shells covers every point exactly once.
	q := pts[42]
	seen := map[int]int{}
	for s := 0; s <= ix.MaxShell(q); s++ {
		for _, sp := range ix.Shell(q, s) {
			seen[sp.Idx]++
		}
	}
	if len(seen) != len(pts) {
		t.Fatalf("shells covered %d of %d points", len(seen), len(pts))
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("point %d appeared %d times", idx, n)
		}
	}
}

func TestIndexShellSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	pts := make([]geom.Vec3, 500)
	for i := range pts {
		pts[i] = geom.V(rng.Float64(), rng.Float64(), rng.Float64())
	}
	ix := NewIndex(pts, seqIDs(len(pts)), 0)
	q := geom.V(0.5, 0.5, 0.5)
	for s := 0; s <= ix.MaxShell(q); s++ {
		shell := ix.Shell(q, s)
		for i := 1; i < len(shell); i++ {
			if shell[i].Dist < shell[i-1].Dist {
				t.Fatalf("shell %d not sorted", s)
			}
		}
	}
}

func TestIndexShellGuarantee(t *testing.T) {
	// Every point within s*MinCellSize of q must appear in shells 0..s.
	rng := rand.New(rand.NewSource(49))
	pts := make([]geom.Vec3, 400)
	for i := range pts {
		pts[i] = geom.V(rng.Float64()*7, rng.Float64()*7, rng.Float64()*7)
	}
	ix := NewIndex(pts, seqIDs(len(pts)), 0)
	h := ix.MinCellSize()
	q := pts[7]
	for s := 0; s <= ix.MaxShell(q); s++ {
		inShells := map[int]bool{}
		for ss := 0; ss <= s; ss++ {
			for _, sp := range ix.Shell(q, ss) {
				inShells[sp.Idx] = true
			}
		}
		r := float64(s) * h
		for i, p := range pts {
			if p.Dist(q) <= r && !inShells[i] {
				t.Fatalf("point %d at distance %v missing from shells 0..%d (guarantee %v)",
					i, p.Dist(q), s, r)
			}
		}
	}
}

func TestIndexEmpty(t *testing.T) {
	ix := NewIndex(nil, nil, 0)
	if ix.NumPoints() != 0 {
		t.Error("empty index has points")
	}
	if got := ix.Shell(geom.V(0, 0, 0), 0); len(got) != 0 {
		t.Errorf("empty shell = %v", got)
	}
}

func TestComputeCellIsolatedSite(t *testing.T) {
	// A single site's cell is the whole init box, incomplete.
	site := geom.V(1, 1, 1)
	ix := NewIndex([]geom.Vec3{site}, []int64{0}, 0)
	box := geom.NewBox(geom.V(0, 0, 0), geom.V(2, 2, 2))
	c, err := ComputeCell(ix, site, 0, box)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Volume()-8) > 1e-9 {
		t.Errorf("volume = %v, want 8", c.Volume())
	}
	if c.Complete {
		t.Error("wall-bounded cell marked complete")
	}
}

func TestPeriodicLatticeCellsAreUnitCubes(t *testing.T) {
	const n = 4
	const L = 4.0
	pts := latticePts(n, L)
	cells, err := ComputePeriodic(pts, seqIDs(len(pts)), L, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		if math.Abs(c.Volume()-1) > 1e-6 {
			t.Fatalf("cell %d volume = %v, want 1", i, c.Volume())
		}
		if math.Abs(c.Area()-6) > 1e-6 {
			t.Fatalf("cell %d area = %v, want 6", i, c.Area())
		}
		if !c.Complete {
			t.Fatalf("lattice cell %d incomplete", i)
		}
		if len(c.Faces) != 6 {
			t.Fatalf("lattice cell %d has %d faces", i, len(c.Faces))
		}
	}
}

func TestPeriodicPartitionOfUnity(t *testing.T) {
	// Cell volumes of a periodic tessellation sum to the box volume.
	rng := rand.New(rand.NewSource(50))
	const n = 5
	const L = 5.0
	pts := perturbedLattice(rng, n, L, 0.8)
	cells, err := ComputePeriodic(pts, seqIDs(len(pts)), L, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var vol float64
	for _, c := range cells {
		vol += c.Volume()
		if !c.Complete {
			t.Error("perturbed lattice produced incomplete cell")
		}
	}
	if math.Abs(vol-L*L*L) > 1e-6*L*L*L {
		t.Errorf("total volume = %v, want %v", vol, L*L*L)
	}
}

func TestPeriodicRandomPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	const L = 6.0
	pts := make([]geom.Vec3, 150)
	for i := range pts {
		pts[i] = geom.V(rng.Float64()*L, rng.Float64()*L, rng.Float64()*L)
	}
	cells, err := ComputePeriodic(pts, seqIDs(len(pts)), L, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var vol float64
	for _, c := range cells {
		vol += c.Volume()
	}
	if math.Abs(vol-L*L*L) > 1e-5*L*L*L {
		t.Errorf("total volume = %v, want %v", vol, L*L*L)
	}
}

func TestCellContainsOwnSiteOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	const L = 5.0
	pts := perturbedLattice(rng, 4, L, 0.9)
	cells, err := ComputePeriodic(pts, seqIDs(len(pts)), L, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		if !c.Contains(pts[i]) {
			t.Fatalf("cell %d does not contain its site", i)
		}
		for j, q := range pts {
			if j == i {
				continue
			}
			if c.Contains(q) {
				// Points just on a shared face within tolerance are fine;
				// enforce only for clearly interior points.
				cen := c.Centroid()
				if q.Dist(cen) < 0.5*c.MaxVertexDist() {
					t.Fatalf("cell %d deeply contains foreign site %d", i, j)
				}
			}
		}
	}
}

func TestAdjacencySymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	const L = 5.0
	pts := perturbedLattice(rng, 4, L, 0.7)
	cells, err := ComputePeriodic(pts, seqIDs(len(pts)), L, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	adj := make([]map[int64]bool, len(cells))
	for i, c := range cells {
		adj[i] = map[int64]bool{}
		for _, id := range c.NeighborIDs() {
			adj[i][id] = true
		}
	}
	for i, c := range cells {
		for _, j := range c.NeighborIDs() {
			if int(j) == i {
				continue // periodic self-adjacency has no partner entry
			}
			if !adj[j][int64(i)] {
				t.Fatalf("adjacency asymmetric: %d -> %d but not back", i, j)
			}
		}
	}
}

func TestClippedCellMatchesQuickhull(t *testing.T) {
	// Cross-validation between the two geometry engines: the convex hull
	// of a clipped cell's vertices is the cell itself.
	rng := rand.New(rand.NewSource(54))
	const L = 5.0
	pts := perturbedLattice(rng, 4, L, 0.9)
	cells, err := ComputePeriodic(pts, seqIDs(len(pts)), L, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		if i%7 != 0 { // sample for speed
			continue
		}
		h, err := qhull.Compute(c.Verts)
		if err != nil {
			t.Fatalf("cell %d: hull error %v", i, err)
		}
		if math.Abs(h.Volume()-c.Volume()) > 1e-6*math.Max(c.Volume(), 1e-12) {
			t.Fatalf("cell %d: hull volume %v != cell volume %v", i, h.Volume(), c.Volume())
		}
		if math.Abs(h.Area()-c.Area()) > 1e-6*math.Max(c.Area(), 1e-12) {
			t.Fatalf("cell %d: hull area %v != cell area %v", i, h.Area(), c.Area())
		}
	}
}

func TestComputePeriodicValidation(t *testing.T) {
	if _, err := ComputePeriodic(make([]geom.Vec3, 2), make([]int64, 3), 1, 0, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ComputePeriodic([]geom.Vec3{{X: 0.5, Y: 0.5, Z: 0.5}}, []int64{0}, -1, 0, 0); err == nil {
		t.Error("negative box accepted")
	}
}

func TestComputePeriodicDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	const L = 4.0
	pts := perturbedLattice(rng, 3, L, 0.6)
	c1, err := ComputePeriodic(pts, seqIDs(len(pts)), L, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	c8, err := ComputePeriodic(pts, seqIDs(len(pts)), L, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c1 {
		if math.Abs(c1[i].Volume()-c8[i].Volume()) > 1e-12 {
			t.Fatalf("cell %d volume differs across worker counts", i)
		}
		if len(c1[i].Faces) != len(c8[i].Faces) {
			t.Fatalf("cell %d face count differs across worker counts", i)
		}
	}
}

func BenchmarkComputeCell(b *testing.B) {
	rng := rand.New(rand.NewSource(56))
	const L = 8.0
	pts := perturbedLattice(rng, 8, L, 0.8)
	ix := NewIndex(pts, seqIDs(len(pts)), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		site := pts[i%len(pts)]
		if _, err := ComputeCell(ix, site, int64(i%len(pts)), geom.Cube(site, L/2)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAblationVariantsMatchComputeCell(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	const L = 6.0
	pts := perturbedLattice(rng, 6, L, 0.8)
	ids := seqIDs(len(pts))
	ix := NewIndex(pts, ids, 0)
	for i := 0; i < len(pts); i += 13 {
		site := pts[i]
		box := geom.Cube(site, L/2)
		ref, err := ComputeCell(ix, site, ids[i], box)
		if err != nil {
			t.Fatal(err)
		}
		brute, err := ComputeCellBrute(pts, ids, site, ids[i], box)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ref.Volume()-brute.Volume()) > 1e-9 || len(ref.Faces) != len(brute.Faces) {
			t.Fatalf("site %d: brute force differs (vol %v vs %v, faces %d vs %d)",
				i, ref.Volume(), brute.Volume(), len(ref.Faces), len(brute.Faces))
		}
		// Generous fixed shell count reproduces the cell (at higher cost).
		fixed, err := ComputeCellFixedShells(ix, site, ids[i], box, ix.MaxShell(site))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ref.Volume()-fixed.Volume()) > 1e-9 {
			t.Fatalf("site %d: fixed shells differs (vol %v vs %v)", i, ref.Volume(), fixed.Volume())
		}
	}
}

func TestFixedShellsTooFewIsWrong(t *testing.T) {
	// The point of the security radius: with shells fixed too small, some
	// cell somewhere is wrong, and nothing flags it.
	rng := rand.New(rand.NewSource(102))
	const L = 8.0
	pts := perturbedLattice(rng, 8, L, 0.9)
	ids := seqIDs(len(pts))
	ix := NewIndex(pts, ids, 0)
	wrong := 0
	for i := 0; i < len(pts); i += 7 {
		site := pts[i]
		box := geom.Cube(site, L/2)
		ref, err := ComputeCell(ix, site, ids[i], box)
		if err != nil {
			t.Fatal(err)
		}
		fixed, err := ComputeCellFixedShells(ix, site, ids[i], box, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ref.Volume()-fixed.Volume()) > 1e-9*ref.Volume() {
			wrong++
		}
	}
	if wrong == 0 {
		t.Error("0-shell cells were all accidentally correct; ablation baseline is not exercising anything")
	}
}

func TestNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(125))
	pts := make([]geom.Vec3, 400)
	for i := range pts {
		pts[i] = geom.V(rng.Float64()*9, rng.Float64()*9, rng.Float64()*9)
	}
	ix := NewIndex(pts, seqIDs(len(pts)), 0)
	for trial := 0; trial < 200; trial++ {
		q := geom.V(rng.Float64()*9, rng.Float64()*9, rng.Float64()*9)
		got, ok := ix.Nearest(q)
		if !ok {
			t.Fatal("Nearest failed")
		}
		// Brute-force reference.
		best := 0
		for i := 1; i < len(pts); i++ {
			if pts[i].Dist2(q) < pts[best].Dist2(q) {
				best = i
			}
		}
		if got.Idx != best {
			t.Fatalf("Nearest(%v) = %d (d=%v), brute force %d (d=%v)",
				q, got.Idx, got.Dist, best, pts[best].Dist(q))
		}
	}
	if _, ok := NewIndex(nil, nil, 0).Nearest(geom.V(0, 0, 0)); ok {
		t.Error("empty index returned a nearest point")
	}
}

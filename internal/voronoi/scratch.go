package voronoi

import (
	"math"

	"repro/internal/geom"
)

// Scratch owns the reusable working storage for allocation-free cell
// construction. The clipping kernel allocates nothing once a Scratch's
// buffers have grown to the working-set size, which is what makes
// per-thread cell computation cheap (the multithreaded Voro++ design:
// one reusable cell/scratch per worker, many cells through it).
//
// A Scratch is NOT safe for concurrent use; give each worker goroutine its
// own. While a cell is being built through a Scratch its Verts and Faces
// alias scratch storage; ComputeCellScratch detaches the finished cell into
// owned memory before returning, so returned cells never alias the Scratch.
type Scratch struct {
	// clip state: plane distances per vertex, the vertex accumulation
	// buffer (surviving + intersection vertices), and the compacted vertex
	// buffer the cell aliases between clips.
	dist     []float64
	tmpVerts []geom.Vec3
	outVerts []geom.Vec3

	// Ping-pong face storage: the cell's faces alias faces[bank] with loop
	// indices carved out of arena[bank]; each clip reads the current bank
	// and rebuilds into the other, because a face rebuild must read the
	// pre-clip loops while it writes the post-clip ones.
	faces [2][]Face
	arena [2][]int
	bank  int

	// Per-clip assembly records: faces are first collected as (neighbor,
	// arena range) because the arena may still grow while later faces are
	// being built; Face headers with stable subslices are materialized
	// once the arena is final.
	metas []faceMeta

	// Crossing registry: clipped edge (lo, hi vertex index) -> index of the
	// intersection vertex it produced, shared by the two faces adjoining
	// the edge. A linear scan replaces the map: a convex cell crosses the
	// plane in a small cycle of edges.
	crossE [][2]int
	crossV []int

	// Vertices on the cut plane, in discovery order, plus the angular sort
	// keys used to order them into the new face's loop.
	cut    []int
	angles []float64

	// compact state: old -> new vertex index, -1 for unreferenced.
	remap []int32

	// Reusable buffer for Index.ShellAppend in ComputeCellScratch.
	shell []ShellPoint
}

type faceMeta struct {
	neighbor   int64
	start, end int
}

// NewScratch returns an empty Scratch; buffers grow on first use and are
// reused afterwards.
func NewScratch() *Scratch { return &Scratch{} }

// addCut records vi as lying on the cut plane, ignoring duplicates. The
// linear scan is cheap: a convex cross-section has tens of vertices at
// most, and discovery order keeps the result deterministic (the map the
// scan replaces iterated in random order).
func (s *Scratch) addCut(vi int) {
	for _, x := range s.cut {
		if x == vi {
			return
		}
	}
	s.cut = append(s.cut, vi)
}

// orderLoop sorts idx in place into a loop counterclockwise when viewed
// from the +normal side (outward Newell normal along +normal), using the
// scratch angle buffer. It is the allocation-free replacement for the old
// orderConvexLoop helper.
func (s *Scratch) orderLoop(verts []geom.Vec3, idx []int, normal geom.Vec3) {
	n := normal.Normalize()
	// Build an orthonormal basis (e1, e2, n).
	var ref geom.Vec3
	if math.Abs(n.X) < 0.9 {
		ref = geom.Vec3{X: 1}
	} else {
		ref = geom.Vec3{Y: 1}
	}
	e1 := n.Cross(ref).Normalize()
	e2 := n.Cross(e1) // e1 x e2 == n, so angle order is CCW viewed from +n

	var c geom.Vec3
	for _, vi := range idx {
		c = c.Add(verts[vi])
	}
	c = c.Scale(1 / float64(len(idx)))

	if cap(s.angles) < len(idx) {
		s.angles = make([]float64, len(idx), 2*len(idx))
	} else {
		s.angles = s.angles[:len(idx)]
	}
	for i, vi := range idx {
		d := verts[vi].Sub(c)
		s.angles[i] = math.Atan2(d.Dot(e2), d.Dot(e1))
	}
	// Insertion sort of (angle, index) pairs: cut loops are small, and the
	// stable in-place sort avoids the sort.Slice closure allocation.
	for i := 1; i < len(idx); i++ {
		a, v := s.angles[i], idx[i]
		j := i - 1
		for j >= 0 && s.angles[j] > a {
			s.angles[j+1], idx[j+1] = s.angles[j], idx[j]
			j--
		}
		s.angles[j+1], idx[j+1] = a, v
	}
	// Fix orientation: the Newell normal must point along +n.
	var nn geom.Vec3
	for i := range idx {
		p, q := verts[idx[i]], verts[idx[(i+1)%len(idx)]]
		nn.X += (p.Y - q.Y) * (p.Z + q.Z)
		nn.Y += (p.Z - q.Z) * (p.X + q.X)
		nn.Z += (p.X - q.X) * (p.Y + q.Y)
	}
	if nn.Dot(n) < 0 {
		for i, j := 0, len(idx)-1; i < j; i, j = i+1, j-1 {
			idx[i], idx[j] = idx[j], idx[i]
		}
	}
}

package voronoi

import (
	"fmt"

	"repro/internal/geom"
)

// ComputeCell builds the Voronoi cell of site among the points of ix,
// clipping in nearest-first order and stopping once the security-radius
// criterion proves the cell final: when every unprocessed point is farther
// than twice the distance to the farthest remaining cell vertex, no
// bisector can cut the cell any more.
//
// initBox is the initial clipping volume (it must strictly contain the
// site); walls of this box that survive clipping mark the cell incomplete,
// as does exhausting the index before the security radius is reached. The
// site itself (any indexed point within ~0 distance of it) is skipped.
func ComputeCell(ix *Index, site geom.Vec3, id int64, initBox geom.Box) (*Cell, error) {
	return ComputeCellScratch(ix, site, id, initBox, nil)
}

// ComputeCellScratch is ComputeCell with caller-provided scratch storage:
// every vertex, face, and loop buffer of the clipping kernel is reused
// from s, so computing many cells through one Scratch allocates almost
// nothing per cell. A nil s uses fresh storage and is equivalent to
// ComputeCell. The returned cell owns its memory (it never aliases s) and
// is bit-identical to the scratch-free result for the same inputs.
func ComputeCellScratch(ix *Index, site geom.Vec3, id int64, initBox geom.Box, s *Scratch) (*Cell, error) {
	if s == nil {
		s = NewScratch()
	}
	cell, err := newCellBoxIn(site, id, initBox, s)
	if err != nil {
		return nil, err
	}
	err = clipCellShells(cell, ix, initBox, s)
	cell.detach()
	return cell, err
}

// ComputeCellPooled is ComputeCellScratch with the finished cell detached
// into pool instead of fresh heap slices: with a retained pool (reset once
// per batch) the steady-state construction of a cell allocates nothing at
// all. The returned cell is bit-identical to the ComputeCellScratch result
// for the same inputs and stays valid until pool.Reset; a nil pool falls
// back to ComputeCellScratch.
func ComputeCellPooled(ix *Index, site geom.Vec3, id int64, initBox geom.Box, s *Scratch, pool *CellPool) (*Cell, error) {
	if pool == nil {
		return ComputeCellScratch(ix, site, id, initBox, s)
	}
	if s == nil {
		s = NewScratch()
	}
	cell := pool.nextCell()
	if err := initCellBoxIn(cell, site, id, initBox, s); err != nil {
		return nil, err
	}
	err := clipCellShells(cell, ix, initBox, s)
	pool.adopt(cell)
	return cell, err
}

// clipCellShells is the shared clipping sweep of the ComputeCell variants:
// expanding grid shells in nearest-first order until the security radius
// proves the cell final. On return the cell still aliases s; the caller
// detaches (or pool-adopts) it. The emptied-cell error is returned with
// the cell state intact, matching the historical ComputeCellScratch
// behavior of returning both the cell and the error.
func clipCellShells(cell *Cell, ix *Index, initBox geom.Box, s *Scratch) error {
	h := ix.MinCellSize()
	maxShell := ix.MaxShell(cell.Site)
	secure := false
	siteEps := 1e-12 * initBox.Size().MaxAbs()

	for sh := 0; sh <= maxShell; sh++ {
		s.shell = ix.ShellAppend(cell.Site, sh, s.shell[:0])
		maxR := cell.MaxVertexDist()
		for _, sp := range s.shell {
			if sp.Dist <= siteEps {
				continue // the site itself
			}
			// Within a shell, points are sorted by distance and clipping
			// only shrinks the cell, so once a point is beyond the cutting
			// range the rest of the shell is too.
			if sp.Dist >= 2*maxR {
				break
			}
			if cell.clip(geom.Bisector(cell.Site, sp.Pos), sp.ID, s) {
				if cell.Empty() {
					return fmt.Errorf("voronoi: cell of site %v emptied by %v (duplicate points?)", cell.Site, sp.Pos)
				}
				maxR = cell.MaxVertexDist()
			}
		}
		// All points within s*h are guaranteed processed after shell s.
		if float64(sh)*h >= 2*cell.MaxVertexDist() {
			secure = true
			break
		}
	}
	cell.Complete = secure && !cell.HasWall()
	return nil
}

// ComputeCellFixedShells is the ablation baseline for the security-radius
// termination: it clips against every point in grid shells 0..shells
// unconditionally, with no early stop and no proof of completeness. With
// too few shells the cell can be silently wrong; with many shells it does
// redundant work. It exists to quantify what the security-radius criterion
// buys (BenchmarkAblationSecurityRadius).
func ComputeCellFixedShells(ix *Index, site geom.Vec3, id int64, initBox geom.Box, shells int) (*Cell, error) {
	s := NewScratch()
	cell, err := newCellBoxIn(site, id, initBox, s)
	if err != nil {
		return nil, err
	}
	siteEps := 1e-12 * initBox.Size().MaxAbs()
	maxShell := ix.MaxShell(site)
	if shells > maxShell {
		shells = maxShell
	}
	for sh := 0; sh <= shells; sh++ {
		s.shell = ix.ShellAppend(site, sh, s.shell[:0])
		for _, sp := range s.shell {
			if sp.Dist <= siteEps {
				continue
			}
			cell.clip(geom.Bisector(site, sp.Pos), sp.ID, s)
			if cell.Empty() {
				cell.detach()
				return cell, fmt.Errorf("voronoi: cell of site %v emptied (duplicate points?)", site)
			}
		}
	}
	cell.Complete = !cell.HasWall() // no proof; walls are the only signal
	cell.detach()
	return cell, nil
}

// ComputeCellBrute is the ablation baseline for the grid-bucketed neighbor
// search: it clips against every indexed point in order of distance,
// stopping only when the remaining points are provably out of cutting
// range. Identical output to ComputeCell, O(n log n) per cell
// (BenchmarkAblationNeighborSearch).
func ComputeCellBrute(pts []geom.Vec3, ids []int64, site geom.Vec3, id int64, initBox geom.Box) (*Cell, error) {
	s := NewScratch()
	cell, err := newCellBoxIn(site, id, initBox, s)
	if err != nil {
		return nil, err
	}
	order := make([]distIdx, len(pts))
	for i, p := range pts {
		order[i] = distIdx{d: p.Dist(site), idx: i}
	}
	sortDistIdx(order)
	siteEps := 1e-12 * initBox.Size().MaxAbs()
	secure := false
	for _, o := range order {
		if o.d <= siteEps {
			continue
		}
		if o.d >= 2*cell.MaxVertexDist() {
			secure = true
			break
		}
		cell.clip(geom.Bisector(site, pts[o.idx]), ids[o.idx], s)
		if cell.Empty() {
			cell.detach()
			return cell, fmt.Errorf("voronoi: cell of site %v emptied (duplicate points?)", site)
		}
	}
	if !secure {
		// Exhausted every point: the cell is exact with respect to the
		// input set, which is all the brute force can promise.
		secure = true
	}
	cell.Complete = secure && !cell.HasWall()
	cell.detach()
	return cell, nil
}

// ComputePeriodic computes the full periodic Voronoi tessellation of the
// point set in the cubic box [0, L)^3: every point of the box gets a cell,
// and cells near the boundary are shaped by periodic images. This is the
// serial reference implementation that the parallel accuracy study
// (Table I) compares against.
//
// margin controls how far outside the box periodic images are kept; it must
// exceed twice the largest cell radius for full correctness. Pass 0 for the
// default of L/2, which is ample for any point set dense enough to be of
// interest (cells spanning a quarter of the box would be required to break
// it, and such cells are flagged Complete == false rather than silently
// wrong). workers sets the number of concurrent cell builders (0 means
// GOMAXPROCS); each worker reuses its own Scratch, and the result is
// independent of the worker count.
func ComputePeriodic(pts []geom.Vec3, ids []int64, L float64, margin float64, workers int) ([]*Cell, error) {
	if len(pts) != len(ids) {
		return nil, fmt.Errorf("voronoi: %d points but %d ids", len(pts), len(ids))
	}
	if L <= 0 {
		return nil, fmt.Errorf("voronoi: non-positive box size %g", L)
	}
	if margin <= 0 {
		margin = L / 2
	}
	domain := geom.NewBox(geom.V(0, 0, 0), geom.V(L, L, L))
	expanded := domain.Expand(margin)

	// Original points first (indices align), then periodic images within
	// the margin.
	allPts := append([]geom.Vec3(nil), pts...)
	allIDs := append([]int64(nil), ids...)
	for i, p := range pts {
		for sx := -1.0; sx <= 1; sx++ {
			for sy := -1.0; sy <= 1; sy++ {
				for sz := -1.0; sz <= 1; sz++ {
					if sx == 0 && sy == 0 && sz == 0 {
						continue
					}
					img := p.Add(geom.V(sx*L, sy*L, sz*L))
					if expanded.Contains(img) {
						allPts = append(allPts, img)
						allIDs = append(allIDs, ids[i])
					}
				}
			}
		}
	}
	ix := NewIndex(allPts, allIDs, 0)

	cells := make([]*Cell, len(pts))
	errs := make([]error, len(pts))
	workers = PoolWorkers(workers, len(pts))
	scratches := make([]*Scratch, workers)
	ParallelFor(len(pts), workers, func(lo, hi, w int) {
		s := scratches[w]
		if s == nil {
			s = NewScratch()
			scratches[w] = s
		}
		for i := lo; i < hi; i++ {
			cells[i], errs[i] = ComputeCellScratch(ix, pts[i], ids[i], geom.Cube(pts[i], L/2), s)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return cells, nil
}

// distIdx pairs a site distance with a point index for the nearest-first
// clipping sweep.
type distIdx struct {
	d   float64
	idx int
}

// sortDistIdx sorts by ascending distance without the sort.Slice closure
// allocation, the same treatment sortShellPoints gives the bucket-shell
// sweep: quicksort with median-of-three pivots, insertion sort below a
// small cutoff. Ties keep a deterministic order because the input order is
// deterministic and the swap sequence depends only on the d values.
func sortDistIdx(a []distIdx) {
	for len(a) > 12 {
		lo, mid, hi := 0, len(a)/2, len(a)-1
		if a[mid].d < a[lo].d {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi].d < a[lo].d {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi].d < a[mid].d {
			a[hi], a[mid] = a[mid], a[hi]
		}
		a[lo], a[mid] = a[mid], a[lo]
		pivot := a[lo].d
		i, j := 1, len(a)-1
		for {
			for i <= j && a[i].d < pivot {
				i++
			}
			for i <= j && a[j].d > pivot {
				j--
			}
			if i > j {
				break
			}
			a[i], a[j] = a[j], a[i]
			i++
			j--
		}
		a[lo], a[j] = a[j], a[lo]
		// Recurse into the smaller side, loop on the larger.
		if j < len(a)-1-j {
			sortDistIdx(a[:j])
			a = a[j+1:]
		} else {
			sortDistIdx(a[j+1:])
			a = a[:j]
		}
	}
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j].d > v.d {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

package voronoi

import "repro/internal/geom"

// cellPoolChunk is the number of Cell structs per pool chunk. Chunks are
// never reallocated once handed out, so pointers into them stay stable
// while the pool grows.
const cellPoolChunk = 256

// CellPool is a retention arena for finished cells: ComputeCellPooled
// detaches each cell it builds into the pool instead of into fresh
// heap slices, and Reset reclaims every cell's storage at once. A
// persistent session keeps one pool per compute worker and resets it at
// the start of each step, so the steady-state cost of a cell drops from
// four allocations (struct, vertices, faces, loop arena) to zero.
//
// Cells handed out by a pool are valid until the pool's next Reset; they
// must not be retained past it (the session's output loan rule). The pool
// is not safe for concurrent use; give each worker its own.
//
// Like Cell, a CellPool is a sanctioned owner of detached cell storage —
// never of live Scratch buffers: adopt copies out of the scratch-aliased
// cell, exactly as Cell.detach does.
//
//tess:scratchowner
type CellPool struct {
	// chunks hold the Cell structs; a chunk's backing array is fixed at
	// creation (append never outgrows cellPoolChunk), so &chunk[i] stays
	// valid while later cells allocate new chunks.
	chunks [][]Cell
	cur    int

	// Arenas for the detached slice data. These grow by append; a growth
	// reallocation strands the old array, but cells carved from it remain
	// valid (three-index subslices, kept alive by the cells themselves)
	// and the next Reset reuses only the final, largest array.
	verts []geom.Vec3
	faces []Face
	loops []int
}

// Reset reclaims every cell previously handed out, keeping all storage
// for reuse. Cells obtained before the Reset must no longer be read.
func (p *CellPool) Reset() {
	for i := range p.chunks {
		p.chunks[i] = p.chunks[i][:0]
	}
	p.cur = 0
	p.verts = p.verts[:0]
	p.faces = p.faces[:0]
	p.loops = p.loops[:0]
}

// nextCell returns a zeroed *Cell with pool-stable identity.
func (p *CellPool) nextCell() *Cell {
	for p.cur < len(p.chunks) && len(p.chunks[p.cur]) == cap(p.chunks[p.cur]) {
		p.cur++
	}
	if p.cur == len(p.chunks) {
		p.chunks = append(p.chunks, make([]Cell, 0, cellPoolChunk))
	}
	c := p.chunks[p.cur]
	c = append(c, Cell{})
	p.chunks[p.cur] = c
	return &c[len(c)-1]
}

// adopt detaches c (whose Verts and Faces still alias a Scratch) into the
// pool's arenas, copying exactly what Cell.detach copies so the adopted
// cell is identical in content to a heap-detached one.
func (p *CellPool) adopt(c *Cell) {
	vbase := len(p.verts)
	p.verts = append(p.verts, c.Verts...)
	c.Verts = p.verts[vbase:len(p.verts):len(p.verts)]
	fbase := len(p.faces)
	for _, f := range c.Faces {
		start := len(p.loops)
		p.loops = append(p.loops, f.Loop...)
		p.faces = append(p.faces, Face{Neighbor: f.Neighbor, Loop: p.loops[start:len(p.loops):len(p.loops)]})
	}
	c.Faces = p.faces[fbase:len(p.faces):len(p.faces)]
}

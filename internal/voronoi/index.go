package voronoi

import (
	"math"

	"repro/internal/geom"
)

// Index is a uniform-grid spatial index over a point set, supporting
// traversal of points in expanding Chebyshev shells around a query site.
// Combined with the security-radius criterion this yields the
// nearest-first neighbor stream that drives cell clipping.
type Index struct {
	pts     []geom.Vec3
	ids     []int64
	bounds  geom.Box
	dims    [3]int
	h       geom.Vec3 // cell size per axis
	buckets [][]int32
}

// NewIndex builds a grid index over the given points with roughly
// targetPerCell points per grid cell (pass 0 for the default of 4). IDs are
// parallel to pts and are reported back by Shell.
func NewIndex(pts []geom.Vec3, ids []int64, targetPerCell float64) *Index {
	ix := &Index{}
	ix.Rebuild(pts, ids, targetPerCell)
	return ix
}

// Rebuild re-derives the index over a new point set in place, reusing the
// bucket storage of previous builds: the grid geometry, bucket contents,
// and traversal order are identical in every respect to a fresh
// NewIndex(pts, ids, targetPerCell), but at steady state (point counts and
// spatial extent stable across rebuilds, as for the successive snapshots
// of an in situ run) no memory is allocated. The zero Index is a valid
// receiver.
func (ix *Index) Rebuild(pts []geom.Vec3, ids []int64, targetPerCell float64) {
	if len(pts) != len(ids) {
		panic("voronoi: pts and ids length mismatch")
	}
	ix.pts, ix.ids = pts, ids
	if len(pts) == 0 {
		ix.dims = [3]int{1, 1, 1}
		ix.bounds = geom.NewBox(geom.V(0, 0, 0), geom.V(1, 1, 1))
		ix.h = geom.V(1, 1, 1)
		ix.buckets = ix.resizeBuckets(1)
		return
	}
	if targetPerCell <= 0 {
		targetPerCell = 4
	}
	ix.bounds = geom.BoundingBox(pts).Expand(1e-9)
	size := ix.bounds.Size()
	// Choose cells so that the expected occupancy is ~targetPerCell.
	n := float64(len(pts))
	vol := math.Max(size.X*size.Y*size.Z, 1e-300)
	cell := math.Cbrt(vol * targetPerCell / n)
	for a := 0; a < 3; a++ {
		d := int(math.Ceil(size.Component(a) / cell))
		if d < 1 {
			d = 1
		}
		if d > 1024 {
			d = 1024
		}
		ix.dims[a] = d
	}
	ix.h = geom.Vec3{
		X: size.X / float64(ix.dims[0]),
		Y: size.Y / float64(ix.dims[1]),
		Z: size.Z / float64(ix.dims[2]),
	}
	ix.buckets = ix.resizeBuckets(ix.dims[0] * ix.dims[1] * ix.dims[2])
	for i, p := range pts {
		b := ix.bucketOf(p)
		ix.buckets[b] = append(ix.buckets[b], int32(i))
	}
}

// resizeBuckets returns the retained bucket table resized to n entries,
// every entry emptied but keeping its capacity. Entries past a shrink keep
// their storage too (the table usually bounces back to the same size on
// the next rebuild).
func (ix *Index) resizeBuckets(n int) [][]int32 {
	b := ix.buckets
	if cap(b) < n {
		b = append(b[:cap(b)], make([][]int32, n-cap(b))...)
	}
	b = b[:n]
	for i := range b {
		b[i] = b[i][:0]
	}
	return b
}

// NumPoints returns the number of indexed points.
func (ix *Index) NumPoints() int { return len(ix.pts) }

// MinCellSize returns the smallest grid cell edge, the increment of
// guaranteed radius per shell.
func (ix *Index) MinCellSize() float64 {
	return math.Min(ix.h.X, math.Min(ix.h.Y, ix.h.Z))
}

// MaxShell returns the largest shell number that can contain any point for
// a query at p.
func (ix *Index) MaxShell(p geom.Vec3) int {
	c := ix.cellCoords(p)
	m := 0
	for a := 0; a < 3; a++ {
		m = max(m, c[a])
		m = max(m, ix.dims[a]-1-c[a])
	}
	return m
}

func (ix *Index) cellCoords(p geom.Vec3) [3]int {
	var c [3]int
	for a := 0; a < 3; a++ {
		f := (p.Component(a) - ix.bounds.Min.Component(a)) / ix.h.Component(a)
		i := int(math.Floor(f))
		if i < 0 {
			i = 0
		}
		if i >= ix.dims[a] {
			i = ix.dims[a] - 1
		}
		c[a] = i
	}
	return c
}

func (ix *Index) bucketOf(p geom.Vec3) int {
	c := ix.cellCoords(p)
	return (c[2]*ix.dims[1]+c[1])*ix.dims[0] + c[0]
}

// ShellPoint is one indexed point with its distance to the query site.
type ShellPoint struct {
	Idx  int
	ID   int64
	Pos  geom.Vec3
	Dist float64
}

// Shell returns the points whose grid cell is at Chebyshev distance exactly
// s from the cell containing p, sorted by Euclidean distance to p. Shell 0
// is p's own cell.
func (ix *Index) Shell(p geom.Vec3, s int) []ShellPoint {
	return ix.ShellAppend(p, s, nil)
}

// ShellAppend is Shell appending into buf, which the caller may recycle
// across queries (pass buf[:0]) to make shell traversal allocation-free
// once the buffer has grown to the working-set size.
func (ix *Index) ShellAppend(p geom.Vec3, s int, buf []ShellPoint) []ShellPoint {
	c := ix.cellCoords(p)
	out := buf
	base := len(out)
	lo := [3]int{c[0] - s, c[1] - s, c[2] - s}
	hi := [3]int{c[0] + s, c[1] + s, c[2] + s}
	visit := func(i, j, k int) {
		if i < 0 || i >= ix.dims[0] || j < 0 || j >= ix.dims[1] || k < 0 || k >= ix.dims[2] {
			return
		}
		for _, pi := range ix.buckets[(k*ix.dims[1]+j)*ix.dims[0]+i] {
			q := ix.pts[pi]
			out = append(out, ShellPoint{Idx: int(pi), ID: ix.ids[pi], Pos: q, Dist: q.Dist(p)})
		}
	}
	if s == 0 {
		visit(c[0], c[1], c[2])
	} else {
		// Two full slabs in z, plus the rings of the remaining z layers.
		for j := lo[1]; j <= hi[1]; j++ {
			for i := lo[0]; i <= hi[0]; i++ {
				visit(i, j, lo[2])
				visit(i, j, hi[2])
			}
		}
		for k := lo[2] + 1; k <= hi[2]-1; k++ {
			for i := lo[0]; i <= hi[0]; i++ {
				visit(i, lo[1], k)
				visit(i, hi[1], k)
			}
			for j := lo[1] + 1; j <= hi[1]-1; j++ {
				visit(lo[0], j, k)
				visit(hi[0], j, k)
			}
		}
	}
	sortShellPoints(out[base:])
	return out
}

// sortShellPoints sorts by ascending Dist without the sort.Slice closure
// allocation: quicksort with median-of-three pivots, insertion sort below a
// small cutoff. Ties keep a deterministic order because the visit order
// feeding the sort is itself deterministic and the algorithm's swap
// sequence depends only on the Dist values.
func sortShellPoints(a []ShellPoint) {
	for len(a) > 12 {
		// Median of first, middle, last as pivot, swapped to a[0].
		m := len(a) / 2
		lo, mid, hi := 0, m, len(a)-1
		if a[mid].Dist < a[lo].Dist {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi].Dist < a[lo].Dist {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi].Dist < a[mid].Dist {
			a[hi], a[mid] = a[mid], a[hi]
		}
		a[lo], a[mid] = a[mid], a[lo]
		pivot := a[lo].Dist
		i, j := 1, len(a)-1
		for {
			for i <= j && a[i].Dist < pivot {
				i++
			}
			for i <= j && a[j].Dist > pivot {
				j--
			}
			if i > j {
				break
			}
			a[i], a[j] = a[j], a[i]
			i++
			j--
		}
		a[lo], a[j] = a[j], a[lo]
		// Recurse into the smaller side, loop on the larger.
		if j < len(a)-1-j {
			sortShellPoints(a[:j])
			a = a[j+1:]
		} else {
			sortShellPoints(a[j+1:])
			a = a[:j]
		}
	}
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j].Dist > v.Dist {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// Nearest returns the index, ID, and position of the indexed point nearest
// to q, scanning grid shells outward until the best candidate is proven
// nearest (all unscanned cells are farther than the best distance). It
// returns ok == false for an empty index.
func (ix *Index) Nearest(q geom.Vec3) (sp ShellPoint, ok bool) {
	if len(ix.pts) == 0 {
		return ShellPoint{}, false
	}
	h := ix.MinCellSize()
	best := ShellPoint{Dist: math.Inf(1)}
	maxShell := ix.MaxShell(q)
	for s := 0; s <= maxShell; s++ {
		for _, cand := range ix.Shell(q, s) {
			if cand.Dist < best.Dist {
				best = cand
			}
			break // shells are sorted: the first entry is the closest
		}
		// All points within (s)*h have been scanned after shell s; if the
		// best found is within that radius, nothing farther can beat it.
		if best.Dist <= float64(s)*h {
			return best, true
		}
	}
	return best, !math.IsInf(best.Dist, 1)
}

package diy

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/geom"
)

// TestWriteBlocksMatchesCollectiveLayout pins the serial writer to the
// collective one: same payloads, byte-identical file.
func TestWriteBlocksMatchesCollectiveLayout(t *testing.T) {
	payloads := [][]byte{
		[]byte("rank zero"),
		{},
		bytes.Repeat([]byte{0xab}, 1000),
		[]byte("tail"),
	}
	dir := t.TempDir()
	serial := filepath.Join(dir, "serial.bin")
	if _, err := WriteBlocks(serial, payloads); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllBlocks(serial)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payloads) {
		t.Fatalf("read %d blocks, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("block %d: %d bytes, want %d", i, len(got[i]), len(payloads[i]))
		}
	}
	idx, err := ReadIndex(serial)
	if err != nil {
		t.Fatal(err)
	}
	for i := range payloads {
		if idx.Sizes[i] != int64(len(payloads[i])) {
			t.Fatalf("index size %d = %d, want %d", i, idx.Sizes[i], len(payloads[i]))
		}
		one, err := ReadBlock(serial, i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(one, payloads[i]) {
			t.Fatalf("ReadBlock(%d) mismatch", i)
		}
	}
	if _, err := WriteBlocks(filepath.Join(dir, "no", "such", "dir.bin"), payloads); err == nil {
		t.Error("unwritable path accepted")
	}
}

// TestMarshalDecompositionGrid round-trips a regular-grid decomposition
// through the binary form and checks the reconstruction locates and
// links identically.
func TestMarshalDecompositionGrid(t *testing.T) {
	for _, blocks := range []int{1, 2, 8} {
		d, err := Decompose(geom.NewBox(geom.V(0, 0, 0), geom.V(8, 8, 8)), blocks, true)
		if err != nil {
			t.Fatal(err)
		}
		checkDecompRoundTrip(t, d)
	}
}

// TestMarshalDecompositionRCB does the same for an RCB decomposition,
// whose cut tree and explicit link table must survive serialization for
// Locate to keep working.
func TestMarshalDecompositionRCB(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var ps []Particle
	for i := 0; i < 500; i++ {
		// Clustered: Locate must be exercised off the grid fast path.
		base := geom.V(2+4*rng.Float64(), 2, 6)
		ps = append(ps, Particle{ID: int64(i), Pos: geom.Vec3{
			X: base.X + rng.Float64(),
			Y: base.Y + rng.Float64()*4,
			Z: base.Z*rng.Float64() + 1,
		}})
	}
	for _, blocks := range []int{2, 4, 8} {
		d, err := DecomposeRCB(geom.NewBox(geom.V(0, 0, 0), geom.V(8, 8, 8)), blocks, true, ps, 1)
		if err != nil {
			t.Fatal(err)
		}
		checkDecompRoundTrip(t, d)
	}
}

func checkDecompRoundTrip(t *testing.T, d *Decomposition) {
	t.Helper()
	raw, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Marshal must be deterministic (checkpoint bytes are compared).
	raw2, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatal("MarshalBinary is nondeterministic")
	}
	got, err := UnmarshalDecomposition(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumBlocks() != d.NumBlocks() || got.Domain != d.Domain || got.Periodic != d.Periodic {
		t.Fatalf("round trip: %d blocks %v, want %d blocks %v",
			got.NumBlocks(), got.Domain, d.NumBlocks(), d.Domain)
	}
	for r := 0; r < d.NumBlocks(); r++ {
		if got.Block(r) != d.Block(r) {
			t.Fatalf("block %d: %+v != %+v", r, got.Block(r), d.Block(r))
		}
		wantN, gotN := d.Neighbors(r), got.Neighbors(r)
		if len(wantN) != len(gotN) {
			t.Fatalf("rank %d: %d neighbors, want %d", r, len(gotN), len(wantN))
		}
		for i := range wantN {
			if wantN[i] != gotN[i] {
				t.Fatalf("rank %d neighbor %d: %+v != %+v", r, i, gotN[i], wantN[i])
			}
		}
	}
	// Locate agreement over a deterministic point sweep.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		p := geom.V(rng.Float64()*8, rng.Float64()*8, rng.Float64()*8)
		if a, b := d.Locate(p), got.Locate(p); a != b {
			t.Fatalf("Locate(%v) = %d after round trip, want %d", p, b, a)
		}
	}
}

// TestUnmarshalDecompositionRejectsGarbage covers the defensive paths.
func TestUnmarshalDecompositionRejectsGarbage(t *testing.T) {
	d, err := Decompose(geom.NewBox(geom.V(0, 0, 0), geom.V(4, 4, 4)), 4, true)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalDecomposition(nil); err == nil {
		t.Error("empty input accepted")
	}
	for i := 1; i < len(raw); i += 7 {
		if _, err := UnmarshalDecomposition(raw[:i]); err == nil {
			t.Errorf("truncation at %d accepted", i)
		}
	}
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xff
	if _, err := UnmarshalDecomposition(bad); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := UnmarshalDecomposition(append(raw, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

package diy

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cosmo"
	"repro/internal/geom"
)

func clusteredParticles(n int, L float64, seed int64) []Particle {
	p := cosmo.DefaultClusterParams()
	p.Seed = seed
	pos := cosmo.ClusteredPositions(n, L, p)
	ps := make([]Particle, len(pos))
	for i, q := range pos {
		ps[i] = Particle{ID: int64(i), Pos: q}
	}
	return ps
}

func TestRCBLeavesTileDomain(t *testing.T) {
	const L = 10.0
	domain := unitDomain(L)
	for _, periodic := range []bool{true, false} {
		for _, blocks := range []int{1, 2, 3, 4, 5, 7, 8, 16} {
			ps := clusteredParticles(600, L, int64(blocks))
			d, err := DecomposeRCB(domain, blocks, periodic, ps, 1.5)
			if err != nil {
				t.Fatalf("blocks=%d periodic=%v: %v", blocks, periodic, err)
			}
			if d.NumBlocks() != blocks {
				t.Fatalf("blocks=%d: NumBlocks = %d", blocks, d.NumBlocks())
			}
			// Volumes sum to the domain volume.
			var vol float64
			for r := 0; r < blocks; r++ {
				b := d.Block(r)
				if b.Rank != r {
					t.Fatalf("block %d has Rank %d", r, b.Rank)
				}
				if b.Bounds.Empty() {
					t.Fatalf("block %d empty: %+v", r, b.Bounds)
				}
				vol += b.Bounds.Volume()
			}
			if math.Abs(vol-L*L*L) > 1e-9*L*L*L {
				t.Fatalf("blocks=%d: leaves cover volume %v, want %v", blocks, vol, L*L*L)
			}
			// Half-open ownership: every sampled point (and every input
			// particle) belongs to exactly one leaf under Min <= p < Max,
			// and Locate returns that leaf.
			rng := rand.New(rand.NewSource(int64(40 + blocks)))
			probes := make([]geom.Vec3, 0, 700)
			for i := 0; i < 400; i++ {
				probes = append(probes, geom.V(rng.Float64()*L, rng.Float64()*L, rng.Float64()*L))
			}
			for _, p := range ps[:300] {
				probes = append(probes, p.Pos)
			}
			for _, p := range probes {
				owner := -1
				for r := 0; r < blocks; r++ {
					b := d.Block(r).Bounds
					if p.X >= b.Min.X && p.X < b.Max.X &&
						p.Y >= b.Min.Y && p.Y < b.Max.Y &&
						p.Z >= b.Min.Z && p.Z < b.Max.Z {
						if owner >= 0 {
							t.Fatalf("point %v owned by blocks %d and %d", p, owner, r)
						}
						owner = r
					}
				}
				if owner < 0 {
					t.Fatalf("point %v owned by no block", p)
				}
				if got := d.Locate(p); got != owner {
					t.Fatalf("Locate(%v) = %d, want %d", p, got, owner)
				}
			}
		}
	}
}

func TestRCBDomainMaxBelongsToLastLeaf(t *testing.T) {
	const L = 8.0
	ps := clusteredParticles(200, L, 3)
	d, err := DecomposeRCB(unitDomain(L), 4, true, ps, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := d.Locate(geom.V(L, L, L))
	if !d.Block(r).Bounds.Contains(geom.V(L, L, L)) {
		t.Fatalf("domain max located in block %d with bounds %+v", r, d.Block(r).Bounds)
	}
	if r0 := d.Locate(geom.V(0, 0, 0)); !d.Block(r0).Bounds.Contains(geom.V(0, 0, 0)) {
		t.Fatalf("origin located in block %d", r0)
	}
}

func TestRCBBalancesParticleCounts(t *testing.T) {
	const L = 16.0
	const n = 4096
	for _, periodic := range []bool{true, false} {
		for _, blocks := range []int{2, 4, 8} {
			ps := clusteredParticles(n, L, 11)
			d, err := DecomposeRCB(unitDomain(L), blocks, periodic, ps, 2)
			if err != nil {
				t.Fatal(err)
			}
			parts := PartitionParticles(d, ps)
			total, max := 0, 0
			for _, part := range parts {
				total += len(part)
				if len(part) > max {
					max = len(part)
				}
			}
			if total != n {
				t.Fatalf("blocks=%d: partition lost particles (%d of %d)", blocks, total, n)
			}
			ideal := float64(n) / float64(blocks)
			if float64(max) > ideal*1.05+1 {
				t.Fatalf("blocks=%d periodic=%v: max block holds %d particles, ideal %.0f",
					blocks, periodic, max, ideal)
			}
			// Contrast: the regular grid on the same clustered input is
			// badly imbalanced (this is the imbalance RCB removes).
			dg, err := Decompose(unitDomain(L), blocks, periodic)
			if err != nil {
				t.Fatal(err)
			}
			gmax := 0
			for _, part := range PartitionParticles(dg, ps) {
				if len(part) > gmax {
					gmax = len(part)
				}
			}
			if gmax <= max {
				t.Logf("blocks=%d: grid max %d not worse than RCB max %d (unusually uniform input?)",
					blocks, gmax, max)
			}
		}
	}
}

func TestRCBLinkSymmetry(t *testing.T) {
	const L = 10.0
	for _, periodic := range []bool{true, false} {
		for _, blocks := range []int{2, 5, 8} {
			ps := clusteredParticles(500, L, int64(blocks)*3)
			d, err := DecomposeRCB(unitDomain(L), blocks, periodic, ps, 1.5)
			if err != nil {
				t.Fatal(err)
			}
			type link struct {
				from, to int
				shift    geom.Vec3
			}
			seen := map[link]int{}
			for r := 0; r < blocks; r++ {
				prev := -1
				for _, nb := range d.Neighbors(r) {
					if nb.Rank < prev {
						t.Fatalf("rank %d links not sorted by target rank", r)
					}
					prev = nb.Rank
					seen[link{r, nb.Rank, nb.Shift}]++
				}
			}
			for l, c := range seen {
				if c != 1 {
					t.Fatalf("duplicate link %+v (count %d)", l, c)
				}
				mirror := link{l.to, l.from, geom.Vec3{X: -l.shift.X, Y: -l.shift.Y, Z: -l.shift.Z}}
				if seen[mirror] != 1 {
					t.Fatalf("link %+v has no mirror %+v", l, mirror)
				}
			}
		}
	}
}

func TestRCBExchangeGhostCoverage(t *testing.T) {
	// The decomposition-independent ghost contract: every rank receives
	// exactly the particles (or periodic images) inside its ghost-expanded
	// bounds, minus its own originals — same oracle as the grid test,
	// evaluated over RCB leaves.
	const L = 10.0
	const ghost = 1.5
	ps := clusteredParticles(800, L, 21)
	d, err := DecomposeRCB(unitDomain(L), 8, true, ps, ghost)
	if err != nil {
		t.Fatal(err)
	}
	parts := PartitionParticles(d, ps)
	ghosts := runExchange(t, d, ps, ghost, ExchangeGhost)

	for r := 0; r < d.NumBlocks(); r++ {
		expanded := d.Block(r).Bounds.Expand(ghost)
		local := map[int64]bool{}
		for _, p := range parts[r] {
			local[p.ID] = true
		}
		type key struct {
			id      int64
			x, y, z float64
		}
		expect := map[key]bool{}
		for _, p := range ps {
			for _, sx := range []float64{-L, 0, L} {
				for _, sy := range []float64{-L, 0, L} {
					for _, sz := range []float64{-L, 0, L} {
						img := p.Pos.Add(geom.V(sx, sy, sz))
						if !expanded.Contains(img) {
							continue
						}
						if sx == 0 && sy == 0 && sz == 0 && local[p.ID] {
							continue
						}
						expect[key{p.ID, img.X, img.Y, img.Z}] = true
					}
				}
			}
		}
		got := map[key]bool{}
		for _, g := range ghosts[r] {
			k := key{g.ID, g.Pos.X, g.Pos.Y, g.Pos.Z}
			if got[k] {
				t.Fatalf("rank %d received duplicate ghost %+v", r, k)
			}
			got[k] = true
		}
		for k := range expect {
			if !got[k] {
				t.Fatalf("rank %d missing expected ghost %+v", r, k)
			}
		}
		for k := range got {
			if !expect[k] {
				t.Fatalf("rank %d received unexpected ghost %+v", r, k)
			}
		}
	}
}

func TestRCBGatherGhostsMatchesExchange(t *testing.T) {
	const L = 10.0
	for _, periodic := range []bool{true, false} {
		for _, blocks := range []int{1, 2, 4, 8} {
			ps := clusteredParticles(400, L, int64(200+blocks))
			d, err := DecomposeRCB(unitDomain(L), blocks, periodic, ps, 1.2)
			if err != nil {
				t.Fatal(err)
			}
			parts := PartitionParticles(d, ps)
			exchanged := runExchange(t, d, ps, 1.2, ExchangeGhost)
			for r := 0; r < blocks; r++ {
				direct := GatherGhosts(d, r, parts, 1.2)
				ka := ghostKeys(exchanged[r])
				kb := ghostKeys(direct)
				if len(ka) != len(kb) {
					t.Fatalf("periodic=%v blocks=%d rank %d: exchange %d ghosts, gather %d",
						periodic, blocks, r, len(ka), len(kb))
				}
				for i := range ka {
					if ka[i].ID != kb[i].ID || ka[i].Pos.Dist(kb[i].Pos) > 1e-12 {
						t.Fatalf("periodic=%v blocks=%d rank %d: ghost %d differs: %+v vs %+v",
							periodic, blocks, r, i, ka[i], kb[i])
					}
				}
			}
		}
	}
}

func TestRCBGhostCapacity(t *testing.T) {
	const L = 10.0
	ps := clusteredParticles(300, L, 5)
	d, err := DecomposeRCB(unitDomain(L), 8, true, ps, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.GhostCapacity(); got != 2.5 {
		t.Errorf("RCB GhostCapacity = %g, want the link ghost 2.5", got)
	}
	// A periodic RCB ghost beyond half the smallest side is rejected.
	if _, err := DecomposeRCB(unitDomain(L), 8, true, ps, L/2+1); err == nil {
		t.Error("oversized periodic RCB ghost accepted")
	}
	// Non-periodic domains have no wrap constraint.
	if _, err := DecomposeRCB(unitDomain(L), 8, false, ps, L/2+1); err != nil {
		t.Errorf("non-periodic RCB ghost rejected: %v", err)
	}
	// Grid capacity is unchanged: smallest block side.
	dg, err := Decompose(unitDomain(L), 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := dg.GhostCapacity(); math.Abs(got-5) > 1e-12 {
		t.Errorf("grid GhostCapacity = %g, want 5", got)
	}
}

func TestRCBDegenerateInputs(t *testing.T) {
	const L = 6.0
	// No particles at all: geometric splits, still a valid tiling.
	d, err := DecomposeRCB(unitDomain(L), 8, true, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	var vol float64
	for r := 0; r < 8; r++ {
		vol += d.Block(r).Bounds.Volume()
	}
	if math.Abs(vol-L*L*L) > 1e-9 {
		t.Fatalf("empty-input leaves cover %v", vol)
	}
	// All particles coincident: geometric fallback, no empty boxes.
	same := make([]Particle, 50)
	for i := range same {
		same[i] = Particle{ID: int64(i), Pos: geom.V(3, 3, 3)}
	}
	d, err = DecomposeRCB(unitDomain(L), 4, true, same, 1)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if d.Block(r).Bounds.Empty() || d.Block(r).Bounds.Volume() == 0 {
			t.Fatalf("coincident input produced degenerate block %d: %+v", r, d.Block(r).Bounds)
		}
	}
	if _, err := DecomposeRCB(unitDomain(L), 0, true, nil, 1); err == nil {
		t.Error("0 blocks accepted")
	}
}

package diy

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/geom"
)

// Decomposition (de)serialization for checkpoint/restart: a resumed
// session must re-install the *identical* decomposition — block bounds
// bit-for-bit, RCB split planes and neighborhood links included — so
// that warm-state reuse and the targeted exchange behave exactly as in
// the uninterrupted run. The encoding is the same little-endian style
// as the mesh and blockio formats, with its own magic.

const decompMagic uint64 = 0x7465737344435031 // "tessDCP1"

type decWriter struct {
	buf bytes.Buffer
	err error
}

func (w *decWriter) u64(v uint64) { w.write(v) }
func (w *decWriter) i64(v int64)  { w.write(v) }
func (w *decWriter) i32(v int32)  { w.write(v) }
func (w *decWriter) f64(v float64) {
	w.write(math.Float64bits(v))
}
func (w *decWriter) vec(v geom.Vec3) { w.f64(v.X); w.f64(v.Y); w.f64(v.Z) }
func (w *decWriter) box(b geom.Box)  { w.vec(b.Min); w.vec(b.Max) }
func (w *decWriter) b(v bool) {
	var x byte
	if v {
		x = 1
	}
	w.write(x)
}
func (w *decWriter) write(v any) {
	if w.err == nil {
		w.err = binary.Write(&w.buf, binary.LittleEndian, v)
	}
}

// MarshalBinary serializes the decomposition, including the RCB split
// tree and precomputed neighborhood links when present.
func (d *Decomposition) MarshalBinary() ([]byte, error) {
	w := &decWriter{}
	w.u64(decompMagic)
	w.box(d.Domain)
	for a := 0; a < 3; a++ {
		w.i64(int64(d.Dims[a]))
	}
	w.b(d.Periodic)
	w.u64(uint64(len(d.blocks)))
	for _, b := range d.blocks {
		w.i64(int64(b.Rank))
		for a := 0; a < 3; a++ {
			w.i64(int64(b.Coords[a]))
		}
		w.box(b.Bounds)
	}
	w.b(d.rcb != nil)
	if d.rcb != nil {
		w.u64(uint64(len(d.rcb.nodes)))
		for _, nd := range d.rcb.nodes {
			w.i32(int32(nd.axis))
			w.f64(nd.split)
			w.i32(nd.left)
			w.i32(nd.right)
		}
		w.i32(d.rcb.root)
		w.f64(d.rcb.linkGhost)
		w.u64(uint64(len(d.rcb.links)))
		for _, ls := range d.rcb.links {
			w.u64(uint64(len(ls)))
			for _, n := range ls {
				w.i64(int64(n.Rank))
				for a := 0; a < 3; a++ {
					w.i64(int64(n.Dir[a]))
				}
				w.vec(n.Shift)
				w.b(n.Periodic)
			}
		}
	}
	if w.err != nil {
		return nil, w.err
	}
	return w.buf.Bytes(), nil
}

type decReader struct {
	buf *bytes.Reader
	err error
}

func (r *decReader) u64() uint64 {
	var v uint64
	r.read(&v)
	return v
}
func (r *decReader) i64() int64 {
	var v int64
	r.read(&v)
	return v
}
func (r *decReader) i32() int32 {
	var v int32
	r.read(&v)
	return v
}
func (r *decReader) f64() float64 {
	var v uint64
	r.read(&v)
	return math.Float64frombits(v)
}
func (r *decReader) vec() geom.Vec3 {
	return geom.Vec3{X: r.f64(), Y: r.f64(), Z: r.f64()}
}
func (r *decReader) box() geom.Box {
	return geom.Box{Min: r.vec(), Max: r.vec()}
}
func (r *decReader) b() bool {
	var v byte
	r.read(&v)
	return v != 0
}
func (r *decReader) read(v any) {
	if r.err == nil {
		r.err = binary.Read(r.buf, binary.LittleEndian, v)
	}
}

// count validates a length field against the remaining input so a
// corrupt count cannot drive a huge allocation.
func (r *decReader) count(what string) (int, error) {
	n := r.u64()
	if r.err != nil {
		return 0, r.err
	}
	if n > uint64(r.buf.Len())+1 {
		return 0, fmt.Errorf("diy: implausible %s count %d", what, n)
	}
	return int(n), nil
}

// UnmarshalDecomposition parses a decomposition produced by
// MarshalBinary.
func UnmarshalDecomposition(data []byte) (*Decomposition, error) {
	r := &decReader{buf: bytes.NewReader(data)}
	if magic := r.u64(); magic != decompMagic {
		return nil, fmt.Errorf("diy: bad decomposition magic %#x", magic)
	}
	d := &Decomposition{}
	d.Domain = r.box()
	for a := 0; a < 3; a++ {
		d.Dims[a] = int(r.i64())
	}
	d.Periodic = r.b()
	nb, err := r.count("block")
	if err != nil {
		return nil, err
	}
	d.blocks = make([]Block, nb)
	for i := range d.blocks {
		d.blocks[i].Rank = int(r.i64())
		for a := 0; a < 3; a++ {
			d.blocks[i].Coords[a] = int(r.i64())
		}
		d.blocks[i].Bounds = r.box()
	}
	if r.b() {
		s := &rcbState{}
		nn, err := r.count("rcb node")
		if err != nil {
			return nil, err
		}
		s.nodes = make([]rcbNode, nn)
		for i := range s.nodes {
			s.nodes[i].axis = int(r.i32())
			s.nodes[i].split = r.f64()
			s.nodes[i].left = r.i32()
			s.nodes[i].right = r.i32()
		}
		s.root = r.i32()
		s.linkGhost = r.f64()
		nl, err := r.count("link rank")
		if err != nil {
			return nil, err
		}
		if nl != nb {
			return nil, fmt.Errorf("diy: %d link lists for %d blocks", nl, nb)
		}
		s.links = make([][]Neighbor, nl)
		for i := range s.links {
			nk, err := r.count("link")
			if err != nil {
				return nil, err
			}
			s.links[i] = make([]Neighbor, nk)
			for j := range s.links[i] {
				n := &s.links[i][j]
				n.Rank = int(r.i64())
				for a := 0; a < 3; a++ {
					n.Dir[a] = int(r.i64())
				}
				n.Shift = r.vec()
				n.Periodic = r.b()
			}
		}
		d.rcb = s
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.buf.Len() != 0 {
		return nil, fmt.Errorf("diy: %d trailing bytes after decomposition", r.buf.Len())
	}
	return d, nil
}

package diy

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func unitDomain(L float64) geom.Box {
	return geom.NewBox(geom.V(0, 0, 0), geom.V(L, L, L))
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose(unitDomain(1), 0, true); err == nil {
		t.Error("0 blocks accepted")
	}
	if _, err := Decompose(geom.Box{Min: geom.V(1, 0, 0), Max: geom.V(0, 1, 1)}, 4, true); err == nil {
		t.Error("empty domain accepted")
	}
}

func TestFactor3(t *testing.T) {
	cases := map[int][3]int{
		1:  {1, 1, 1},
		2:  {2, 1, 1},
		4:  {2, 2, 1},
		8:  {2, 2, 2},
		6:  {3, 2, 1},
		12: {3, 2, 2},
		27: {3, 3, 3},
		64: {4, 4, 4},
	}
	cube := geom.V(1, 1, 1)
	for n, want := range cases {
		got := factor3(n, cube)
		if got != want {
			t.Errorf("factor3(%d) = %v, want %v", n, got, want)
		}
		if got[0]*got[1]*got[2] != n {
			t.Errorf("factor3(%d) product mismatch", n)
		}
	}
	// Primes degrade gracefully to slabs.
	if got := factor3(7, cube); got != [3]int{7, 1, 1} {
		t.Errorf("factor3(7) = %v", got)
	}
}

func TestFactor3AnisotropicOrientation(t *testing.T) {
	// Prime counts force slabs; the slabs must cut the longest axis so that
	// block surface area (ghost-exchange cost) stays minimal, instead of
	// always stacking along x.
	cases := []struct {
		n    int
		size geom.Vec3
		want [3]int
	}{
		{7, geom.V(100, 10, 10), [3]int{7, 1, 1}},
		{7, geom.V(10, 100, 10), [3]int{1, 7, 1}},
		{7, geom.V(10, 10, 100), [3]int{1, 1, 7}},
		{5, geom.V(10, 10, 100), [3]int{1, 1, 5}},
		// Composite counts orient their factors by aspect ratio too: 12
		// blocks in a 4:2:1 domain come out near-cubic (6.67x10x10), not
		// the cube-count layout {3,2,2} (13.3x10x5).
		{12, geom.V(40, 20, 10), [3]int{6, 2, 1}},
		{6, geom.V(10, 10, 100), [3]int{1, 1, 6}},
	}
	for _, c := range cases {
		if got := factor3(c.n, c.size); got != c.want {
			t.Errorf("factor3(%d, %v) = %v, want %v", c.n, c.size, got, c.want)
		}
	}
}

func TestDecomposePartitionsDomain(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8, 12, 16, 27} {
		d, err := Decompose(unitDomain(10), n, true)
		if err != nil {
			t.Fatal(err)
		}
		if d.NumBlocks() != n {
			t.Fatalf("n=%d: NumBlocks = %d", n, d.NumBlocks())
		}
		var vol float64
		for r := 0; r < n; r++ {
			b := d.Block(r)
			if b.Rank != r {
				t.Fatalf("block %d has Rank %d", r, b.Rank)
			}
			vol += b.Bounds.Volume()
		}
		if math.Abs(vol-1000) > 1e-9 {
			t.Fatalf("n=%d: blocks cover volume %v, want 1000", n, vol)
		}
	}
}

func TestLocateConsistency(t *testing.T) {
	d, err := Decompose(unitDomain(8), 8, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(24))
	for i := 0; i < 2000; i++ {
		p := geom.V(rng.Float64()*8, rng.Float64()*8, rng.Float64()*8)
		r := d.Locate(p)
		if !d.Block(r).Bounds.Contains(p) {
			t.Fatalf("Locate(%v) = %d but block bounds %+v do not contain it",
				p, r, d.Block(r).Bounds)
		}
	}
	// Boundary points.
	if r := d.Locate(geom.V(0, 0, 0)); r != 0 {
		t.Errorf("origin in block %d", r)
	}
	r := d.Locate(geom.V(8, 8, 8))
	if r != d.NumBlocks()-1 {
		t.Errorf("far corner in block %d", r)
	}
}

func TestRankAtPeriodicWrap(t *testing.T) {
	d, err := Decompose(unitDomain(8), 8, true) // 2x2x2
	if err != nil {
		t.Fatal(err)
	}
	if got := d.RankAt(-1, 0, 0); got != d.RankAt(1, 0, 0) {
		t.Errorf("wrap x: %d vs %d", got, d.RankAt(1, 0, 0))
	}
	if got := d.RankAt(2, 1, 1); got != d.RankAt(0, 1, 1) {
		t.Errorf("wrap +x: %d", got)
	}
	dn, _ := Decompose(unitDomain(8), 8, false)
	if got := dn.RankAt(-1, 0, 0); got != -1 {
		t.Errorf("non-periodic out of range = %d, want -1", got)
	}
}

func TestNeighbors26Periodic(t *testing.T) {
	d, err := Decompose(unitDomain(12), 27, true) // 3x3x3
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 27; r++ {
		nbs := d.Neighbors(r)
		if len(nbs) != 26 {
			t.Fatalf("rank %d has %d neighbors, want 26", r, len(nbs))
		}
		// In a 3x3x3 periodic grid, every link lands on a distinct rank.
		seen := map[int]bool{}
		for _, nb := range nbs {
			if seen[nb.Rank] {
				t.Fatalf("rank %d: duplicate neighbor %d", r, nb.Rank)
			}
			seen[nb.Rank] = true
		}
	}
}

func TestNeighborsCornerShifts(t *testing.T) {
	d, err := Decompose(unitDomain(12), 27, true)
	if err != nil {
		t.Fatal(err)
	}
	// Block (0,0,0): the (-1,-1,-1) link wraps in all three dims.
	nbs := d.Neighbors(0)
	var corner *Neighbor
	for i := range nbs {
		if nbs[i].Dir == [3]int{-1, -1, -1} {
			corner = &nbs[i]
		}
	}
	if corner == nil {
		t.Fatal("no (-1,-1,-1) link")
	}
	if !corner.Periodic {
		t.Error("corner wrap not marked periodic")
	}
	if corner.Shift != geom.V(12, 12, 12) {
		t.Errorf("corner shift = %v, want (12,12,12)", corner.Shift)
	}
	if corner.Rank != d.RankAt(2, 2, 2) {
		t.Errorf("corner rank = %d, want %d", corner.Rank, d.RankAt(2, 2, 2))
	}
	// Interior block (1,1,1) has no periodic links.
	center := d.RankAt(1, 1, 1)
	for _, nb := range d.Neighbors(center) {
		if nb.Periodic || nb.Shift != (geom.Vec3{}) {
			t.Errorf("interior block has periodic link %+v", nb)
		}
	}
}

func TestNeighborsNonPeriodicBoundary(t *testing.T) {
	d, err := Decompose(unitDomain(12), 27, false)
	if err != nil {
		t.Fatal(err)
	}
	// Corner block has only 7 neighbors without periodicity.
	if nbs := d.Neighbors(0); len(nbs) != 7 {
		t.Errorf("non-periodic corner has %d neighbors, want 7", len(nbs))
	}
	center := d.RankAt(1, 1, 1)
	if nbs := d.Neighbors(center); len(nbs) != 26 {
		t.Errorf("interior block has %d neighbors, want 26", len(nbs))
	}
}

func TestNeighborsThinGridSelfLinks(t *testing.T) {
	// A 1-block decomposition: all 26 links point at the block itself,
	// with shifts covering all combinations of +-L and 0.
	d, err := Decompose(unitDomain(5), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	nbs := d.Neighbors(0)
	if len(nbs) != 26 {
		t.Fatalf("1-block neighbors = %d, want 26", len(nbs))
	}
	shifts := map[geom.Vec3]bool{}
	for _, nb := range nbs {
		if nb.Rank != 0 {
			t.Fatalf("neighbor rank %d, want 0", nb.Rank)
		}
		if !nb.Periodic {
			t.Fatalf("self-link not periodic: %+v", nb)
		}
		shifts[nb.Shift] = true
	}
	if len(shifts) != 26 {
		t.Errorf("expected 26 distinct shifts, got %d", len(shifts))
	}
}

func TestNeighborShiftMapsIntoExpandedBounds(t *testing.T) {
	// The defining property of Shift: a particle near my boundary, after
	// adding Shift, lands inside (or near) the neighbor's bounds.
	d, err := Decompose(unitDomain(10), 8, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(25))
	for r := 0; r < d.NumBlocks(); r++ {
		b := d.Block(r)
		for _, nb := range d.Neighbors(r) {
			nbBounds := d.Block(nb.Rank).Bounds.Expand(1.0)
			// Sample points in my block within 1.0 of the face toward the
			// neighbor.
			for i := 0; i < 20; i++ {
				p := geom.Vec3{
					X: sampleToward(rng, b.Bounds.Min.X, b.Bounds.Max.X, nb.Dir[0], 1.0),
					Y: sampleToward(rng, b.Bounds.Min.Y, b.Bounds.Max.Y, nb.Dir[1], 1.0),
					Z: sampleToward(rng, b.Bounds.Min.Z, b.Bounds.Max.Z, nb.Dir[2], 1.0),
				}
				if !nbBounds.Contains(p.Add(nb.Shift)) {
					t.Fatalf("rank %d -> %+v: shifted point %v not in expanded neighbor bounds %+v",
						r, nb, p.Add(nb.Shift), nbBounds)
				}
			}
		}
	}
}

func sampleToward(rng *rand.Rand, lo, hi float64, dir int, ghost float64) float64 {
	switch dir {
	case -1:
		return lo + rng.Float64()*math.Min(ghost, hi-lo)
	case 1:
		return hi - rng.Float64()*math.Min(ghost, hi-lo)
	default:
		return lo + rng.Float64()*(hi-lo)
	}
}

package diy

import (
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/obs"
)

// Conservation law of the exchange layer: every byte posted by a source
// rank is consumed by its destination — per pair, not just in total — and
// the collective write obeys the same accounting. A violation means a
// message was dropped, duplicated, or misattributed to the wrong rank.
func TestExchangeByteConservation(t *testing.T) {
	for _, tc := range []struct {
		name   string
		blocks int
		ghost  float64
	}{
		{"2-blocks", 2, 2},
		{"8-blocks", 8, 2},
		{"8-blocks-wide-ghost", 8, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Decompose(unitDomain(10), tc.blocks, true)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(31))
			ps := randomParticles(rng, 600, 10)
			parts := PartitionParticles(d, ps)

			w := comm.NewWorld(tc.blocks)
			rec := obs.NewRecorder(tc.blocks)
			w.SetRecorder(rec)
			path := filepath.Join(t.TempDir(), "out.bin")
			var ghostsRecvd int64
			var mu sync.Mutex
			w.Run(func(rank int) {
				g := ExchangeGhost(w, d, rank, parts[rank], tc.ghost)
				mu.Lock()
				ghostsRecvd += int64(len(g))
				mu.Unlock()
				payload := make([]byte, 100*(rank+1))
				if _, err := CollectiveWrite(w, rank, path, payload); err != nil {
					t.Errorf("rank %d write: %v", rank, err)
				}
			})

			s := rec.Snapshot()
			if s.TotalSentMsgs == 0 {
				t.Fatal("exchange recorded no messages")
			}
			if s.TotalSentMsgs != s.TotalRecvdMsgs {
				t.Errorf("messages: sent %d, received %d", s.TotalSentMsgs, s.TotalRecvdMsgs)
			}
			if s.TotalSentBytes != s.TotalRecvdBytes {
				t.Errorf("bytes: sent %d, received %d", s.TotalSentBytes, s.TotalRecvdBytes)
			}
			for src := 0; src < tc.blocks; src++ {
				for dst := 0; dst < tc.blocks; dst++ {
					if s.SendBytes[src][dst] != s.RecvBytes[dst][src] {
						t.Errorf("pair (%d -> %d): posted %d bytes, consumed %d",
							src, dst, s.SendBytes[src][dst], s.RecvBytes[dst][src])
					}
					if s.SendMsgs[src][dst] != s.RecvMsgs[dst][src] {
						t.Errorf("pair (%d -> %d): posted %d msgs, consumed %d",
							src, dst, s.SendMsgs[src][dst], s.RecvMsgs[dst][src])
					}
				}
			}
			// With a multi-block periodic decomposition every rank has
			// neighbors, so every rank must have participated.
			if tc.blocks > 1 {
				for _, m := range s.PerRank {
					if m.SentMsgs == 0 {
						t.Errorf("rank %d sent nothing during the exchange", m.Rank)
					}
				}
			}
			// The ghost traffic itself must be visible in the byte totals:
			// each ghost particle is 32 bytes (ID + 3 coordinates) on the
			// wire, and the exchange also moves per-neighbor counts, so the
			// recorded volume must be at least the ghost payload.
			if s.TotalSentBytes < ghostsRecvd*32 {
				t.Errorf("recorded %d bytes for %d ghost particles (< %d payload bytes)",
					s.TotalSentBytes, ghostsRecvd, ghostsRecvd*32)
			}
		})
	}
}

package diy

import (
	"maps"
	"slices"

	"repro/internal/comm"
	"repro/internal/geom"
)

// Particle is a point with a stable global identity. Ghost copies received
// from other blocks keep the original ID, which is how tess resolves
// duplicated cells back to unique owners.
type Particle struct {
	ID  int64
	Pos geom.Vec3
}

const tagExchange = 100

// ExchangeGhost performs the bidirectional neighborhood particle exchange of
// the paper's Sec. III-C1 for one rank: every particle within ghost distance
// of a neighbor's region is sent to that neighbor (and only to neighbors
// near enough to need it — the "targeted" part), with coordinates
// transformed across periodic boundaries. It returns the ghost particles
// received from all neighbors, with positions already expressed in this
// block's frame.
//
// All ranks of the world must call ExchangeGhost collectively. The received
// ghosts do not include this block's own particles unless the decomposition
// is thin enough that the block is its own periodic neighbor, in which case
// the self-images arrive shifted by the domain period (as required for a
// correct periodic tessellation).
func ExchangeGhost(w *comm.World, d *Decomposition, rank int, local []Particle, ghost float64) []Particle {
	neighbors := d.Neighbors(rank)

	// Bucket outgoing particles per link. A particle goes to a link when
	// the neighbor's ghost-expanded bounds contain its shifted position.
	outgoing := make([][]Particle, len(neighbors))
	for li, nb := range neighbors {
		target := d.Block(nb.Rank).Bounds.Expand(ghost)
		var batch []Particle
		for _, p := range local {
			q := p.Pos.Add(nb.Shift)
			if target.Contains(q) {
				batch = append(batch, Particle{ID: p.ID, Pos: q})
			}
		}
		outgoing[li] = batch
	}

	// Coalesce links that point at the same rank into one message per
	// destination rank (message count is what the exchange cost tracks).
	perRank := make(map[int][]Particle)
	for li, nb := range neighbors {
		if _, ok := perRank[nb.Rank]; !ok {
			perRank[nb.Rank] = nil
		}
		perRank[nb.Rank] = append(perRank[nb.Rank], outgoing[li]...)
	}

	// Post all sends, then receive one message from every rank we are
	// linked to. The send-first pattern cannot deadlock here because each
	// rank posts at most one message per peer before receiving, well
	// within comm's per-pair queue capacity; a send CAN block once a
	// pair's queue fills (see comm.WithMailboxCapacity), in which case the
	// blocked send stays abortable and watchdog-visible rather than
	// silently hanging. Drain in ascending rank order: ranging over the
	// map directly would randomize the ghost concatenation order run to
	// run.
	ranks := slices.Sorted(maps.Keys(perRank))
	for _, dst := range ranks {
		w.Send(rank, dst, tagExchange, perRank[dst])
	}
	var ghosts []Particle
	for _, src := range ranks {
		batch := w.Recv(rank, src, tagExchange).([]Particle)
		ghosts = append(ghosts, batch...)
	}
	return ghosts
}

// PartitionParticles assigns each particle to the rank whose block contains
// it, returning one slice per rank. Positions must lie within the domain.
func PartitionParticles(d *Decomposition, particles []Particle) [][]Particle {
	out := make([][]Particle, d.NumBlocks())
	for _, p := range particles {
		r := d.Locate(p.Pos)
		out[r] = append(out[r], p)
	}
	return out
}

// GatherGhosts computes the same ghost set ExchangeGhost would deliver to
// rank, directly from the globally partitioned particle arrays and without
// a communicator. It exists for the sequential timing harness (which runs
// ranks one at a time to measure per-rank phase costs on a machine with
// fewer cores than ranks) and is verified against ExchangeGhost by tests.
//
// parts must be the per-rank particle partition (as from
// PartitionParticles).
func GatherGhosts(d *Decomposition, rank int, parts [][]Particle, ghost float64) []Particle {
	target := d.Block(rank).Bounds.Expand(ghost)
	var ghosts []Particle
	for _, link := range d.Neighbors(rank) {
		// The reverse of link (from link.Rank back to rank) carries the
		// negated shift.
		shift := link.Shift.Neg()
		for _, p := range parts[link.Rank] {
			q := p.Pos.Add(shift)
			if target.Contains(q) {
				ghosts = append(ghosts, Particle{ID: p.ID, Pos: q})
			}
		}
	}
	return ghosts
}

// BroadcastExchange is the non-targeted baseline used by the ablation
// benchmark: every particle within ghost distance of *any* block face is
// sent to *all* neighbors, instead of only the ones whose region needs it.
// Results are identical after the receiver filters, but message volume is
// larger.
func BroadcastExchange(w *comm.World, d *Decomposition, rank int, local []Particle, ghost float64) []Particle {
	neighbors := d.Neighbors(rank)
	myBounds := d.Block(rank).Bounds

	// Candidate set: particles near this block's own boundary.
	var boundary []Particle
	for _, p := range local {
		if myBounds.InteriorDist(p.Pos) <= ghost {
			boundary = append(boundary, p)
		}
	}

	perRank := make(map[int][]Particle)
	for _, nb := range neighbors {
		shifted := make([]Particle, len(boundary))
		for i, p := range boundary {
			shifted[i] = Particle{ID: p.ID, Pos: p.Pos.Add(nb.Shift)}
		}
		perRank[nb.Rank] = append(perRank[nb.Rank], shifted...)
	}
	ranks := slices.Sorted(maps.Keys(perRank))
	for _, dst := range ranks {
		w.Send(rank, dst, tagExchange, perRank[dst])
	}
	var ghosts []Particle
	mine := myBounds.Expand(ghost)
	for _, src := range ranks {
		batch := w.Recv(rank, src, tagExchange).([]Particle)
		for _, p := range batch {
			if mine.Contains(p.Pos) {
				ghosts = append(ghosts, p)
			}
		}
	}
	return ghosts
}

const tagRedistribute = 101

// Redistribute moves particles that have drifted out of their block to the
// block that now contains them — the step an in situ pipeline performs
// between simulation epochs so each rank again owns exactly the particles
// in its bounds. Positions must lie inside the domain (wrap before
// calling). All ranks call collectively; the returned slice is the rank's
// new local set (order not specified).
func Redistribute(w *comm.World, d *Decomposition, rank int, local []Particle) []Particle {
	outgoing := map[int][]Particle{}
	var keep []Particle
	for _, p := range local {
		owner := d.Locate(p.Pos)
		if owner == rank {
			keep = append(keep, p)
		} else {
			outgoing[owner] = append(outgoing[owner], p)
		}
	}
	// Every rank exchanges with every other rank (counts first would be an
	// optimization; at these scales a direct all-to-all of possibly empty
	// slices is simplest and still one message per pair).
	for dst := 0; dst < d.NumBlocks(); dst++ {
		if dst == rank {
			continue
		}
		w.Send(rank, dst, tagRedistribute, outgoing[dst])
	}
	for src := 0; src < d.NumBlocks(); src++ {
		if src == rank {
			continue
		}
		batch := w.Recv(rank, src, tagRedistribute).([]Particle)
		keep = append(keep, batch...)
	}
	return keep
}

package diy

import (
	"maps"
	"slices"

	"repro/internal/comm"
	"repro/internal/geom"
)

// Particle is a point with a stable global identity. Ghost copies received
// from other blocks keep the original ID, which is how tess resolves
// duplicated cells back to unique owners.
type Particle struct {
	ID  int64
	Pos geom.Vec3
}

const tagExchange = 100

// ExchangeGhost performs the bidirectional neighborhood particle exchange of
// the paper's Sec. III-C1 for one rank: every particle within ghost distance
// of a neighbor's region is sent to that neighbor (and only to neighbors
// near enough to need it — the "targeted" part), with coordinates
// transformed across periodic boundaries. It returns the ghost particles
// received from all neighbors, with positions already expressed in this
// block's frame.
//
// All ranks of the world must call ExchangeGhost collectively. The received
// ghosts do not include this block's own particles unless the decomposition
// is thin enough that the block is its own periodic neighbor, in which case
// the self-images arrive shifted by the domain period (as required for a
// correct periodic tessellation).
func ExchangeGhost(w *comm.World, d *Decomposition, rank int, local []Particle, ghost float64) []Particle {
	return NewExchanger(d, rank, ghost).Exchange(w, d, rank, local)
}

// Exchanger is the retained-state form of ExchangeGhost for persistent
// sessions: the link geometry (neighbor list, ghost-expanded target
// bounds, destination-rank coalescing) is derived once at construction,
// and the receive-side buffers (boundary candidate set, ghost
// concatenation) are reused across calls. Outgoing message payloads are
// still freshly allocated every call — a sent buffer transfers ownership
// to the receiver (the comm package's aliasing convention), so they are
// the one thing an exchanger must never retain.
//
// Exchange results are identical to ExchangeGhost in content and order;
// tests pin this. The returned ghost slice is valid until the next
// Exchange call. An Exchanger serves one (rank, ghost) pair and is not
// safe for concurrent use.
type Exchanger struct {
	ghost    float64
	targets  []geom.Box // ghost-expanded neighbor bounds, per link
	links    []Neighbor
	dsts     []int   // distinct destination ranks, ascending
	linksFor [][]int // link indices per destination, aligned with dsts

	// prefilterSlack widens the boundary-candidate test by a relative
	// epsilon so float roundoff in the per-link containment test can
	// never make the candidate set miss a particle the exact test would
	// send; candidates are always re-tested exactly per link.
	prefilterSlack float64

	boundary []Particle // retained candidate buffer
	ghosts   []Particle // retained receive buffer
}

// NewExchanger prepares the retained exchange state for one rank of the
// decomposition at the given ghost distance.
func NewExchanger(d *Decomposition, rank int, ghost float64) *Exchanger {
	e := &Exchanger{
		ghost:          ghost,
		links:          d.Neighbors(rank),
		prefilterSlack: 1e-9 * d.Domain.Size().MaxAbs(),
	}
	e.targets = make([]geom.Box, len(e.links))
	for li, nb := range e.links {
		e.targets[li] = d.Block(nb.Rank).Bounds.Expand(ghost)
	}
	// Coalesce links that point at the same rank into one message per
	// destination rank (message count is what the exchange cost tracks),
	// in ascending rank order so the ghost concatenation order is
	// deterministic.
	perRank := map[int][]int{}
	for li, nb := range e.links {
		perRank[nb.Rank] = append(perRank[nb.Rank], li)
	}
	e.dsts = slices.Sorted(maps.Keys(perRank))
	e.linksFor = make([][]int, len(e.dsts))
	for i, dst := range e.dsts {
		e.linksFor[i] = perRank[dst]
	}
	return e
}

// Exchange runs one collective ghost exchange through the retained state;
// all ranks of the world must call it (or ExchangeGhost) together. local
// must be the particles of the rank the Exchanger was built for.
func (e *Exchanger) Exchange(w *comm.World, d *Decomposition, rank int, local []Particle) []Particle {
	// Candidate prefilter: a particle can only be within ghost reach of a
	// neighbor's region if it is within ghost of this block's own
	// boundary, so the 26 per-link containment tests run over the
	// boundary shell only. The slack keeps the set a strict superset
	// under roundoff; the exact per-link test below decides membership,
	// so the sent batches match the unfiltered scan bit for bit.
	myBounds := d.Block(rank).Bounds
	cut := e.ghost + e.prefilterSlack
	e.boundary = e.boundary[:0]
	for _, p := range local {
		if myBounds.InteriorDist(p.Pos) <= cut {
			e.boundary = append(e.boundary, p)
		}
	}

	// Post all sends, then receive one message from every rank we are
	// linked to. The send-first pattern cannot deadlock here because each
	// rank posts at most one message per peer before receiving, well
	// within comm's per-pair queue capacity; a send CAN block once a
	// pair's queue fills (see comm.WithMailboxCapacity), in which case the
	// blocked send stays abortable and watchdog-visible rather than
	// silently hanging.
	for di, dst := range e.dsts {
		// One freshly allocated payload per destination: links to the same
		// rank concatenate in link order, particles in local order — the
		// same message content ExchangeGhost's per-link bucketing built.
		var payload []Particle
		for _, li := range e.linksFor[di] {
			nb, target := e.links[li], e.targets[li]
			for _, p := range e.boundary {
				q := p.Pos.Add(nb.Shift)
				if target.Contains(q) {
					payload = append(payload, Particle{ID: p.ID, Pos: q})
				}
			}
		}
		w.Send(rank, dst, tagExchange, payload)
	}
	e.ghosts = e.ghosts[:0]
	for _, src := range e.dsts {
		batch := w.Recv(rank, src, tagExchange).([]Particle)
		e.ghosts = append(e.ghosts, batch...)
	}
	return e.ghosts
}

// PartitionParticles assigns each particle to the rank whose block contains
// it, returning one slice per rank. Positions must lie within the domain.
func PartitionParticles(d *Decomposition, particles []Particle) [][]Particle {
	out := make([][]Particle, d.NumBlocks())
	for _, p := range particles {
		r := d.Locate(p.Pos)
		out[r] = append(out[r], p)
	}
	return out
}

// PartitionParticlesInto is PartitionParticles reusing the per-rank slices
// of buf (as returned by a previous call; nil starts fresh), so a
// persistent session partitions each step's particles without reallocating
// the per-rank arrays once they have grown to the working-set size. The
// partition content and order match PartitionParticles exactly.
func PartitionParticlesInto(d *Decomposition, particles []Particle, buf [][]Particle) [][]Particle {
	n := d.NumBlocks()
	if cap(buf) < n {
		buf = append(buf[:cap(buf)], make([][]Particle, n-cap(buf))...)
	}
	buf = buf[:n]
	for r := range buf {
		buf[r] = buf[r][:0]
	}
	for _, p := range particles {
		r := d.Locate(p.Pos)
		buf[r] = append(buf[r], p)
	}
	return buf
}

// ResetPartition returns buf resized to d.NumBlocks() ranks with every
// per-rank slice emptied (capacity retained), ready for chunk-wise
// PartitionParticlesAppend calls.
func ResetPartition(d *Decomposition, buf [][]Particle) [][]Particle {
	n := d.NumBlocks()
	if cap(buf) < n {
		buf = append(buf[:cap(buf)], make([][]Particle, n-cap(buf))...)
	}
	buf = buf[:n]
	for r := range buf {
		buf[r] = buf[r][:0]
	}
	return buf
}

// PartitionParticlesAppend partitions particles into buf *without*
// resetting the per-rank slices first. It is the out-of-core streaming
// path: a session partitions a snapshot chunk by chunk (ResetPartition
// once, then one append per chunk), and because chunk concatenation is
// the snapshot in order, the accumulated partition matches
// PartitionParticles of the whole snapshot exactly.
func PartitionParticlesAppend(d *Decomposition, particles []Particle, buf [][]Particle) [][]Particle {
	buf = buf[:d.NumBlocks()]
	for _, p := range particles {
		r := d.Locate(p.Pos)
		buf[r] = append(buf[r], p)
	}
	return buf
}

// GatherGhosts computes the same ghost set ExchangeGhost would deliver to
// rank, directly from the globally partitioned particle arrays and without
// a communicator. It exists for the sequential timing harness (which runs
// ranks one at a time to measure per-rank phase costs on a machine with
// fewer cores than ranks) and is verified against ExchangeGhost by tests.
//
// parts must be the per-rank particle partition (as from
// PartitionParticles).
func GatherGhosts(d *Decomposition, rank int, parts [][]Particle, ghost float64) []Particle {
	target := d.Block(rank).Bounds.Expand(ghost)
	var ghosts []Particle
	for _, link := range d.Neighbors(rank) {
		// The reverse of link (from link.Rank back to rank) carries the
		// negated shift.
		shift := link.Shift.Neg()
		for _, p := range parts[link.Rank] {
			q := p.Pos.Add(shift)
			if target.Contains(q) {
				ghosts = append(ghosts, Particle{ID: p.ID, Pos: q})
			}
		}
	}
	return ghosts
}

// BroadcastExchange is the non-targeted baseline used by the ablation
// benchmark: every particle within ghost distance of *any* block face is
// sent to *all* neighbors, instead of only the ones whose region needs it.
// Results are identical after the receiver filters, but message volume is
// larger.
func BroadcastExchange(w *comm.World, d *Decomposition, rank int, local []Particle, ghost float64) []Particle {
	neighbors := d.Neighbors(rank)
	myBounds := d.Block(rank).Bounds

	// Candidate set: particles near this block's own boundary.
	var boundary []Particle
	for _, p := range local {
		if myBounds.InteriorDist(p.Pos) <= ghost {
			boundary = append(boundary, p)
		}
	}

	perRank := make(map[int][]Particle)
	for _, nb := range neighbors {
		shifted := make([]Particle, len(boundary))
		for i, p := range boundary {
			shifted[i] = Particle{ID: p.ID, Pos: p.Pos.Add(nb.Shift)}
		}
		perRank[nb.Rank] = append(perRank[nb.Rank], shifted...)
	}
	ranks := slices.Sorted(maps.Keys(perRank))
	for _, dst := range ranks {
		w.Send(rank, dst, tagExchange, perRank[dst])
	}
	var ghosts []Particle
	mine := myBounds.Expand(ghost)
	for _, src := range ranks {
		batch := w.Recv(rank, src, tagExchange).([]Particle)
		for _, p := range batch {
			if mine.Contains(p.Pos) {
				ghosts = append(ghosts, p)
			}
		}
	}
	return ghosts
}

const tagRedistribute = 101

// Redistribute moves particles that have drifted out of their block to the
// block that now contains them — the step an in situ pipeline performs
// between simulation epochs so each rank again owns exactly the particles
// in its bounds. Positions must lie inside the domain (wrap before
// calling). All ranks call collectively; the returned slice is the rank's
// new local set (order not specified).
func Redistribute(w *comm.World, d *Decomposition, rank int, local []Particle) []Particle {
	outgoing := map[int][]Particle{}
	var keep []Particle
	for _, p := range local {
		owner := d.Locate(p.Pos)
		if owner == rank {
			keep = append(keep, p)
		} else {
			outgoing[owner] = append(outgoing[owner], p)
		}
	}
	// Every rank exchanges with every other rank (counts first would be an
	// optimization; at these scales a direct all-to-all of possibly empty
	// slices is simplest and still one message per pair).
	for dst := 0; dst < d.NumBlocks(); dst++ {
		if dst == rank {
			continue
		}
		w.Send(rank, dst, tagRedistribute, outgoing[dst])
	}
	for src := 0; src < d.NumBlocks(); src++ {
		if src == rank {
			continue
		}
		batch := w.Recv(rank, src, tagRedistribute).([]Particle)
		keep = append(keep, batch...)
	}
	return keep
}

package diy

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// Recursive coordinate bisection (RCB) decomposition: instead of the regular
// grid's equal-volume blocks, the domain is split recursively along the
// longest axis of each region at the weighted median of the particle
// positions, so every leaf block holds an approximately equal share of the
// particles. This is the particle-balancing strategy PARAVT uses for
// parallel Voronoi at scale: on clustered (evolved N-body) inputs the
// regular grid concentrates most of the compute phase in a few halo-heavy
// blocks while void blocks idle, and balancing counts instead of volume is
// what restores strong scaling.
//
// The leaves exactly tile the domain — children share the split coordinate
// bit-for-bit and outer faces are inherited from the parent, so no roundoff
// gap or overlap is possible — and ownership keeps the half-open
// Min <= p < Max convention via the tree walk in Locate (a point exactly at
// a split plane descends right).
//
// Because RCB leaves are not a grid, neighborhood links cannot come from
// the 26-connected coordinate graph. DecomposeRCB instead precomputes
// box-adjacency links: block b is a link target of block a (under periodic
// image shift s) exactly when a's bounds translated by s overlap b's bounds
// expanded by the ghost distance — the reach of the targeted exchange's
// containment test. Links are built once for all ranks in mirrored pairs,
// so the send/receive pattern is symmetric by construction (never split by
// a one-ulp float disagreement between two ranks), and Neighbors returns
// them in deterministic order. The Exchanger and GatherGhosts consume them
// through the same Neighbor interface the grid uses.

// rcbNode is one interior node of the RCB split tree. Children are node
// indices; a negative child c encodes the leaf block rank ^c.
type rcbNode struct {
	axis        int
	split       float64
	left, right int32
}

// rcbState is the RCB-specific portion of a Decomposition.
type rcbState struct {
	nodes []rcbNode
	root  int32
	// links[rank] is the precomputed adjacency of rank, sorted by target
	// rank (stable, preserving the mirrored per-pair ordering).
	links [][]Neighbor
	// linkGhost is the ghost margin the links were computed for; exchanges
	// with a larger ghost would need links this decomposition does not
	// have, which is what GhostCapacity reports.
	linkGhost float64
}

// DecomposeRCB partitions domain into n blocks holding approximately equal
// particle counts, via recursive coordinate bisection of the particle
// positions. ghost is the largest ghost distance the decomposition's
// neighborhood links must support (exchanges with any ghost <= this value
// are correct; see GhostCapacity). Particle positions must lie within the
// domain. For a periodic domain, ghost must not exceed half the smallest
// domain side: adjacency uses single-wrap periodic images, the same regime
// in which a periodic tessellation is well defined.
func DecomposeRCB(domain geom.Box, n int, periodic bool, particles []Particle, ghost float64) (*Decomposition, error) {
	if n <= 0 {
		return nil, fmt.Errorf("diy: cannot decompose into %d blocks", n)
	}
	if domain.Empty() {
		return nil, fmt.Errorf("diy: empty domain %+v", domain)
	}
	if ghost < 0 {
		ghost = 0
	}
	size := domain.Size()
	if periodic {
		minSide := math.Min(size.X, math.Min(size.Y, size.Z))
		if ghost > minSide/2 {
			return nil, fmt.Errorf("diy: RCB ghost %g exceeds half the smallest domain side %g "+
				"(single-wrap periodic links cannot reach farther)", ghost, minSide/2)
		}
	}
	d := &Decomposition{
		Domain:   domain,
		Periodic: periodic,
		rcb:      &rcbState{linkGhost: ghost},
	}
	// The builder partitions a scratch copy of the positions in place; the
	// caller's slice is never reordered.
	pts := make([]geom.Vec3, len(particles))
	for i, p := range particles {
		pts[i] = p.Pos
	}
	d.rcb.root = buildRCBTree(d, domain, n, pts)
	buildRCBLinks(d, ghost)
	return d, nil
}

// buildRCBTree recursively splits box into k leaves over pts, appending
// blocks (rank = emission order, left subtree first) and interior nodes to
// d. It returns the node reference: non-negative for an interior node
// index, ^rank for a leaf.
func buildRCBTree(d *Decomposition, box geom.Box, k int, pts []geom.Vec3) int32 {
	if k == 1 {
		rank := len(d.blocks)
		d.blocks = append(d.blocks, Block{Rank: rank, Bounds: box})
		return int32(^rank)
	}
	kl := k / 2
	axis := longestAxis(box)
	split, nLeft := rcbSplit(box, axis, pts, kl, k)

	// Partition pts around the split plane (p < split goes left), keeping
	// determinism: a stable partition is unnecessary because every later
	// split re-sorts its own axis, but the counts must match rcbSplit's.
	i, j := 0, len(pts)
	for i < j {
		if pts[i].Component(axis) < split {
			i++
		} else {
			j--
			pts[i], pts[j] = pts[j], pts[i]
		}
	}
	if i != nLeft {
		// rcbSplit counts and the partition disagree only if the plane
		// moved relative to a coordinate — impossible by construction, but
		// cheap to guard: fall back to the partition's own count.
		nLeft = i
	}

	leftBox, rightBox := box, box
	switch axis {
	case 0:
		leftBox.Max.X, rightBox.Min.X = split, split
	case 1:
		leftBox.Max.Y, rightBox.Min.Y = split, split
	default:
		leftBox.Max.Z, rightBox.Min.Z = split, split
	}

	idx := len(d.rcb.nodes)
	d.rcb.nodes = append(d.rcb.nodes, rcbNode{axis: axis, split: split})
	left := buildRCBTree(d, leftBox, kl, pts[:nLeft])
	right := buildRCBTree(d, rightBox, k-kl, pts[nLeft:])
	d.rcb.nodes[idx].left, d.rcb.nodes[idx].right = left, right
	return int32(idx)
}

// longestAxis returns the axis index of the box's longest side.
func longestAxis(box geom.Box) int {
	s := box.Size()
	axis, longest := 0, s.X
	if s.Y > longest {
		axis, longest = 1, s.Y
	}
	if s.Z > longest {
		axis = 2
	}
	return axis
}

// rcbSplit chooses the split coordinate along axis that sends a kl/k share
// of pts to the left child (the weighted median), and returns it with the
// exact number of points strictly below it. Ties on the split coordinate
// are broken toward the nearest achievable boundary; with no particles (or
// all coordinates equal) the split falls back to the geometric kl/k
// fraction of the box.
func rcbSplit(box geom.Box, axis int, pts []geom.Vec3, kl, k int) (split float64, nLeft int) {
	lo, hi := box.Min.Component(axis), box.Max.Component(axis)
	geomSplit := lo + (hi-lo)*float64(kl)/float64(k)
	if len(pts) == 0 {
		return geomSplit, 0
	}
	cs := make([]float64, len(pts))
	for i, p := range pts {
		cs[i] = p.Component(axis)
	}
	sort.Float64s(cs)
	target := float64(len(cs)) * float64(kl) / float64(k)

	// Candidate boundaries sit between consecutive distinct coordinate
	// values; pick the one whose left count is closest to the target.
	best, bestCount, found := 0.0, 0, false
	for i := 1; i < len(cs); i++ {
		if cs[i] == cs[i-1] {
			continue
		}
		mid := cs[i-1] + (cs[i]-cs[i-1])/2
		if mid <= cs[i-1] {
			// The gap is a single ulp and the midpoint rounded down; the
			// right value itself is a valid plane (points equal to it go
			// right).
			mid = cs[i]
		}
		if !(mid > lo && mid < hi) {
			continue
		}
		if !found || math.Abs(float64(i)-target) < math.Abs(float64(bestCount)-target) {
			best, bestCount, found = mid, i, true
		}
	}
	if !found {
		// All coordinates equal (or every boundary degenerate): split the
		// box geometrically; counts follow the strict comparison.
		split = geomSplit
		if !(split > lo && split < hi) {
			split = lo + (hi-lo)/2
		}
	} else {
		split = best
	}
	nLeft = sort.SearchFloat64s(cs, split)
	return split, nLeft
}

// locateRCB walks the split tree; points exactly on a split plane descend
// right, preserving the half-open Min <= p < Max ownership convention.
func (d *Decomposition) locateRCB(p geom.Vec3) int {
	ref := d.rcb.root
	for ref >= 0 {
		nd := &d.rcb.nodes[ref]
		if p.Component(nd.axis) < nd.split {
			ref = nd.left
		} else {
			ref = nd.right
		}
	}
	return int(^ref)
}

// buildRCBLinks precomputes the adjacency of every rank at the given ghost
// margin: for each block pair (and each single-wrap periodic image), the
// link exists when a particle anywhere in the source block could pass the
// targeted exchange's containment test against the destination's
// ghost-expanded bounds. Links are created in mirrored pairs (a->b with
// shift s and b->a with shift -s together, if either direction's float
// test passes), so the collective exchange's symmetric send/receive
// pattern can never be broken by rounding.
func buildRCBLinks(d *Decomposition, ghost float64) {
	n := len(d.blocks)
	L := d.Domain.Size()
	links := make([][]Neighbor, n)

	offsets := rcbImageOffsets(d.Periodic)
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			for _, o := range offsets {
				if a == b {
					// Self links come in +-s pairs; enumerate the canonical
					// (lexicographically positive) half only, and skip the
					// identity.
					if o[0] < 0 || (o[0] == 0 && (o[1] < 0 || (o[1] == 0 && o[2] <= 0))) {
						continue
					}
				}
				shift := geom.Vec3{
					X: float64(o[0]) * L.X,
					Y: float64(o[1]) * L.Y,
					Z: float64(o[2]) * L.Z,
				}
				neg := geom.Vec3{X: -shift.X, Y: -shift.Y, Z: -shift.Z}
				if !rcbLinkExists(d.blocks[a].Bounds, d.blocks[b].Bounds, shift, ghost) &&
					!rcbLinkExists(d.blocks[b].Bounds, d.blocks[a].Bounds, neg, ghost) {
					continue
				}
				periodic := o != [3]int{}
				dir := [3]int{-o[0], -o[1], -o[2]}
				rdir := o
				links[a] = append(links[a], Neighbor{Rank: b, Dir: dir, Shift: shift, Periodic: periodic})
				links[b] = append(links[b], Neighbor{Rank: a, Dir: rdir, Shift: neg, Periodic: periodic})
			}
		}
	}
	// Deterministic order, and the property the sequential GatherGhosts
	// harness relies on: each rank's links grouped by peer in ascending
	// rank order, with the per-pair sequence identical on both ends
	// (SliceStable preserves the mirrored insertion order within a pair).
	for r := range links {
		sort.SliceStable(links[r], func(i, j int) bool {
			return links[r][i].Rank < links[r][j].Rank
		})
	}
	d.rcb.links = links
}

// rcbImageOffsets enumerates the periodic image shifts adjacency must
// consider: only the identity for bounded domains, all 27 single-wrap
// offsets for periodic ones.
func rcbImageOffsets(periodic bool) [][3]int {
	if !periodic {
		return [][3]int{{0, 0, 0}}
	}
	out := make([][3]int, 0, 27)
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				out = append(out, [3]int{dx, dy, dz})
			}
		}
	}
	return out
}

// rcbLinkExists reports whether any point of src, translated by shift,
// could lie in dst expanded by ghost. The arithmetic mirrors the exchange
// path exactly — the shifted point is formed with the same Add and tested
// with the same closed Contains — so rounding that lets a particle pass
// the exchange test also makes the link exist.
func rcbLinkExists(src, dst geom.Box, shift geom.Vec3, ghost float64) bool {
	target := dst.Expand(ghost)
	shifted := geom.Box{Min: src.Min.Add(shift), Max: src.Max.Add(shift)}
	return shifted.Min.X <= target.Max.X && shifted.Max.X >= target.Min.X &&
		shifted.Min.Y <= target.Max.Y && shifted.Max.Y >= target.Min.Y &&
		shifted.Min.Z <= target.Max.Z && shifted.Max.Z >= target.Min.Z
}

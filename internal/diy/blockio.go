package diy

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/comm"
)

// Block I/O: all ranks write their serialized block into a single shared
// file, each at its own offset, followed by a footer index (offset and size
// per block) and a fixed-size trailer locating the footer. This mirrors
// DIY's single-file collective output that tess uses for its analysis
// results.
//
// File layout:
//
//	[block 0 bytes][block 1 bytes]...[block P-1 bytes]
//	[footer: P x (offset uint64, size uint64)]
//	[trailer: footerOffset uint64, numBlocks uint64, magic uint64]

const blockIOMagic = 0x7465737342494f31 // "tessBIO1"

const (
	tagIOSize = 200
)

// CollectiveWrite writes each rank's payload into path. All ranks must call
// it collectively; every rank writes its own section concurrently (the
// stand-in for MPI-IO collective writes). It returns the total file size in
// bytes on rank 0 and 0 elsewhere.
func CollectiveWrite(w *comm.World, rank int, path string, payload []byte) (int64, error) {
	sizes := comm.Allgather(w, rank, int64(len(payload)))
	offsets := make([]int64, len(sizes))
	var total int64
	for i, s := range sizes {
		offsets[i] = total
		total += s
	}

	// Rank 0 creates and sizes the file; everyone else waits.
	if rank == 0 {
		f, err := os.Create(path)
		if err != nil {
			// Propagate the failure to all ranks via the barrier value.
			comm.Allgather(w, rank, false)
			return 0, fmt.Errorf("diy: create %s: %w", path, err)
		}
		if err := f.Truncate(total); err != nil {
			f.Close()
			comm.Allgather(w, rank, false)
			return 0, fmt.Errorf("diy: truncate %s: %w", path, err)
		}
		f.Close()
		comm.Allgather(w, rank, true)
	} else {
		oks := comm.Allgather(w, rank, true)
		if !oks[0] {
			return 0, fmt.Errorf("diy: rank 0 failed to create %s", path)
		}
	}

	// Concurrent positioned writes.
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		comm.Allgather(w, rank, false)
		return 0, fmt.Errorf("diy: open %s: %w", path, err)
	}
	writeErr := error(nil)
	if len(payload) > 0 {
		if _, err := f.WriteAt(payload, offsets[rank]); err != nil {
			writeErr = err
		}
	}
	f.Close()
	oks := comm.Allgather(w, rank, writeErr == nil)
	for r, ok := range oks {
		if !ok {
			if writeErr != nil {
				return 0, fmt.Errorf("diy: write %s: %w", path, writeErr)
			}
			return 0, fmt.Errorf("diy: rank %d failed writing %s", r, path)
		}
	}

	// Rank 0 appends the footer.
	if rank != 0 {
		return 0, nil
	}
	f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return 0, fmt.Errorf("diy: footer open %s: %w", path, err)
	}
	defer f.Close()
	for i := range sizes {
		if err := binary.Write(f, binary.LittleEndian, uint64(offsets[i])); err != nil {
			return 0, err
		}
		if err := binary.Write(f, binary.LittleEndian, uint64(sizes[i])); err != nil {
			return 0, err
		}
	}
	trailer := []uint64{uint64(total), uint64(len(sizes)), blockIOMagic}
	for _, v := range trailer {
		if err := binary.Write(f, binary.LittleEndian, v); err != nil {
			return 0, err
		}
	}
	return total + int64(16*len(sizes)) + 24, nil
}

// BlockIndex describes the sections of a block file.
type BlockIndex struct {
	Offsets []int64
	Sizes   []int64
}

// ReadIndex reads the footer index of a block file.
func ReadIndex(path string) (*BlockIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < 24 {
		return nil, fmt.Errorf("diy: %s too small for a block file", path)
	}
	var trailer [3]uint64
	if _, err := f.Seek(st.Size()-24, io.SeekStart); err != nil {
		return nil, err
	}
	if err := binary.Read(f, binary.LittleEndian, &trailer); err != nil {
		return nil, err
	}
	if trailer[2] != blockIOMagic {
		return nil, fmt.Errorf("diy: %s is not a block file (bad magic)", path)
	}
	footerOff := int64(trailer[0])
	n := int(trailer[1])
	if footerOff < 0 || footerOff+int64(16*n)+24 != st.Size() {
		return nil, fmt.Errorf("diy: %s has inconsistent footer", path)
	}
	idx := &BlockIndex{Offsets: make([]int64, n), Sizes: make([]int64, n)}
	if _, err := f.Seek(footerOff, io.SeekStart); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var off, size uint64
		if err := binary.Read(f, binary.LittleEndian, &off); err != nil {
			return nil, err
		}
		if err := binary.Read(f, binary.LittleEndian, &size); err != nil {
			return nil, err
		}
		idx.Offsets[i] = int64(off)
		idx.Sizes[i] = int64(size)
	}
	return idx, nil
}

// ReadBlock reads block i from a block file.
func ReadBlock(path string, i int) ([]byte, error) {
	idx, err := ReadIndex(path)
	if err != nil {
		return nil, err
	}
	if i < 0 || i >= len(idx.Offsets) {
		return nil, fmt.Errorf("diy: block %d out of range [0, %d)", i, len(idx.Offsets))
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, idx.Sizes[i])
	if _, err := f.ReadAt(buf, idx.Offsets[i]); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadAllBlocks reads every block section of a block file.
func ReadAllBlocks(path string) ([][]byte, error) {
	idx, err := ReadIndex(path)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make([][]byte, len(idx.Offsets))
	for i := range out {
		out[i] = make([]byte, idx.Sizes[i])
		if _, err := f.ReadAt(out[i], idx.Offsets[i]); err != nil && !(err == io.EOF && idx.Sizes[i] == 0) {
			return nil, err
		}
	}
	return out, nil
}

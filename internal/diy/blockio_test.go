package diy

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/comm"
)

func writeBlocks(t *testing.T, path string, payloads [][]byte) int64 {
	t.Helper()
	w := comm.NewWorld(len(payloads))
	var total int64
	w.Run(func(rank int) {
		n, err := CollectiveWrite(w, rank, path, payloads[rank])
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
		if rank == 0 {
			total = n
		}
	})
	return total
}

func TestCollectiveWriteRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blocks.tess")
	rng := rand.New(rand.NewSource(31))
	payloads := make([][]byte, 6)
	for i := range payloads {
		payloads[i] = make([]byte, rng.Intn(2000)+1)
		rng.Read(payloads[i])
	}
	total := writeBlocks(t, path, payloads)

	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != total {
		t.Errorf("reported size %d, actual %d", total, st.Size())
	}

	idx, err := ReadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Offsets) != 6 {
		t.Fatalf("index has %d blocks", len(idx.Offsets))
	}
	for i, p := range payloads {
		got, err := ReadBlock(path, i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("block %d round trip mismatch (%d vs %d bytes)", i, len(got), len(p))
		}
	}
	all, err := ReadAllBlocks(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range all {
		if !bytes.Equal(all[i], payloads[i]) {
			t.Fatalf("ReadAllBlocks mismatch at %d", i)
		}
	}
}

func TestCollectiveWriteEmptyBlocks(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.tess")
	payloads := [][]byte{[]byte("abc"), nil, []byte("z")}
	writeBlocks(t, path, payloads)
	got, err := ReadAllBlocks(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0]) != "abc" || len(got[1]) != 0 || string(got[2]) != "z" {
		t.Errorf("blocks = %q", got)
	}
}

func TestCollectiveWriteSingleRank(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "one.tess")
	writeBlocks(t, path, [][]byte{[]byte("solo block")})
	got, err := ReadBlock(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "solo block" {
		t.Errorf("got %q", got)
	}
}

func TestReadBlockOutOfRange(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.tess")
	writeBlocks(t, path, [][]byte{[]byte("x")})
	if _, err := ReadBlock(path, 5); err == nil {
		t.Error("out-of-range block read succeeded")
	}
	if _, err := ReadBlock(path, -1); err == nil {
		t.Error("negative block read succeeded")
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage")
	if err := os.WriteFile(path, bytes.Repeat([]byte{0xAB}, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndex(path); err == nil {
		t.Error("garbage file accepted")
	}
	small := filepath.Join(dir, "small")
	if err := os.WriteFile(small, []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndex(small); err == nil {
		t.Error("tiny file accepted")
	}
	if _, err := ReadIndex(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCollectiveWriteCreateFailure(t *testing.T) {
	// Writing into a nonexistent directory fails on rank 0 and must
	// propagate an error to all ranks without deadlock.
	path := filepath.Join(string(os.PathSeparator), "no", "such", "dir", "f.tess")
	w := comm.NewWorld(4)
	errs := make([]error, 4)
	w.Run(func(rank int) {
		_, errs[rank] = CollectiveWrite(w, rank, path, []byte("x"))
	})
	for r, err := range errs {
		if err == nil {
			t.Errorf("rank %d got nil error", r)
		}
	}
}

// Package diy is the block-parallel data-movement substrate standing in for
// the DIY library the paper builds on (Peterka et al., LDAV 2011). It
// provides the three features tess needs:
//
//   - regular block decomposition of the periodic simulation domain, with a
//     near-cubic factorization of the rank count;
//   - neighborhood exchange over the 26-connected (face, edge, corner) block
//     graph with periodic boundary neighbors and *targeted* particle
//     exchange — a particle is sent only to those neighbors whose
//     ghost-expanded region contains it, with coordinates transformed when
//     the destination is across a periodic boundary (the two features the
//     paper added to DIY, Sec. III-C1);
//   - collective block I/O into a single file with a footer index
//     (Sec. III-C2's storage layer).
package diy

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Block is one rank's rectangular piece of the global domain.
type Block struct {
	// Rank is the owning rank, equal to the block's index.
	Rank int
	// Coords is the block's integer position in the block grid.
	Coords [3]int
	// Bounds is the block's region of the global domain (half-open on the
	// high side by convention: a particle belongs to the block whose bounds
	// contain it with Min <= p < Max).
	Bounds geom.Box
}

// Decomposition is a partition of a rectangular domain into blocks: either
// a regular Dims[0]*Dims[1]*Dims[2] grid (Decompose) or a
// particle-balanced recursive-bisection tree (DecomposeRCB, in which case
// Dims is zero and the grid-coordinate methods do not apply).
type Decomposition struct {
	Domain   geom.Box
	Dims     [3]int
	Periodic bool
	blocks   []Block
	rcb      *rcbState
}

// Decompose partitions domain into n blocks arranged in a grid chosen to
// minimize per-block surface area (near-cubic blocks for a cubic domain).
// It returns an error if n <= 0.
func Decompose(domain geom.Box, n int, periodic bool) (*Decomposition, error) {
	if n <= 0 {
		return nil, fmt.Errorf("diy: cannot decompose into %d blocks", n)
	}
	if domain.Empty() {
		return nil, fmt.Errorf("diy: empty domain %+v", domain)
	}
	dims := factor3(n, domain.Size())
	d := &Decomposition{Domain: domain, Dims: dims, Periodic: periodic}
	size := domain.Size()
	step := geom.Vec3{
		X: size.X / float64(dims[0]),
		Y: size.Y / float64(dims[1]),
		Z: size.Z / float64(dims[2]),
	}
	d.blocks = make([]Block, 0, n)
	for k := 0; k < dims[2]; k++ {
		for j := 0; j < dims[1]; j++ {
			for i := 0; i < dims[0]; i++ {
				min := geom.Vec3{
					X: domain.Min.X + float64(i)*step.X,
					Y: domain.Min.Y + float64(j)*step.Y,
					Z: domain.Min.Z + float64(k)*step.Z,
				}
				max := geom.Vec3{
					X: domain.Min.X + float64(i+1)*step.X,
					Y: domain.Min.Y + float64(j+1)*step.Y,
					Z: domain.Min.Z + float64(k+1)*step.Z,
				}
				// Snap the outer faces to the exact domain boundary so
				// roundoff cannot leave gaps.
				if i == dims[0]-1 {
					max.X = domain.Max.X
				}
				if j == dims[1]-1 {
					max.Y = domain.Max.Y
				}
				if k == dims[2]-1 {
					max.Z = domain.Max.Z
				}
				d.blocks = append(d.blocks, Block{
					Rank:   len(d.blocks),
					Coords: [3]int{i, j, k},
					Bounds: geom.Box{Min: min, Max: max},
				})
			}
		}
	}
	return d, nil
}

// factor3 factors n into per-axis block counts minimizing the surface area
// of a block for a domain with the given edge lengths — surface area is
// what the ghost exchange pays for, and for anisotropic domains (or prime
// n, where the only factorization is a slab) the orientation matters: 7
// blocks in a 100x10x10 domain must slab the long axis, not produce
// 1x1x7 slivers. All orientations of every factor triple are scored; ties
// keep the first candidate in descending-x enumeration order, so cubic
// domains get the traditional largest-count-first layout.
func factor3(n int, size geom.Vec3) [3]int {
	best := [3]int{n, 1, 1}
	bestScore := score3(best, size)
	for dx := n; dx >= 1; dx-- {
		if n%dx != 0 {
			continue
		}
		m := n / dx
		for dy := m; dy >= 1; dy-- {
			if m%dy != 0 {
				continue
			}
			cand := [3]int{dx, dy, m / dy}
			if s := score3(cand, size); s < bestScore {
				best, bestScore = cand, s
			}
		}
	}
	return best
}

// score3 orders factorizations by the surface area of one block when the
// domain of the given size is cut into f[0]*f[1]*f[2] blocks. The value is
// the area scaled by the constant f[0]*f[1]*f[2] (= n): written this way
// each face term is one product with no division, so permutations of the
// same factors score *exactly* equal on symmetric domains and the
// enumeration-order tie-break stays deterministic (plain sx*sy+sy*sz+sz*sx
// ties only up to float addition order).
func score3(f [3]int, size geom.Vec3) float64 {
	return size.X*size.Y*float64(f[2]) +
		size.Y*size.Z*float64(f[0]) +
		size.Z*size.X*float64(f[1])
}

// NumBlocks returns the total block count.
func (d *Decomposition) NumBlocks() int { return len(d.blocks) }

// Block returns the block owned by rank.
func (d *Decomposition) Block(rank int) Block { return d.blocks[rank] }

// GhostCapacity returns the largest ghost distance this decomposition's
// neighborhood links support: for a regular grid the smallest block side
// (beyond which a ghost region outruns the 26-neighborhood), for an RCB
// decomposition the ghost margin its links were built with.
func (d *Decomposition) GhostCapacity() float64 {
	if d.rcb != nil {
		return d.rcb.linkGhost
	}
	m := math.Inf(1)
	for _, b := range d.blocks {
		s := b.Bounds.Size()
		m = math.Min(m, math.Min(s.X, math.Min(s.Y, s.Z)))
	}
	return m
}

// RankAt returns the rank owning grid coordinates (i, j, k), applying
// periodic wrap when the decomposition is periodic. Out-of-range
// coordinates on a non-periodic decomposition return -1. RCB
// decompositions have no block grid; RankAt returns -1 for them.
func (d *Decomposition) RankAt(i, j, k int) int {
	if d.rcb != nil {
		return -1
	}
	c := [3]int{i, j, k}
	for a := 0; a < 3; a++ {
		if c[a] < 0 || c[a] >= d.Dims[a] {
			if !d.Periodic {
				return -1
			}
			c[a] = ((c[a] % d.Dims[a]) + d.Dims[a]) % d.Dims[a]
		}
	}
	return (c[2]*d.Dims[1]+c[1])*d.Dims[0] + c[0]
}

// Locate returns the rank of the block containing point p, which must lie
// inside the domain (points exactly on the high boundary are assigned to
// the last block in that dimension).
func (d *Decomposition) Locate(p geom.Vec3) int {
	if d.rcb != nil {
		return d.locateRCB(p)
	}
	size := d.Domain.Size()
	var c [3]int
	for a := 0; a < 3; a++ {
		frac := (p.Component(a) - d.Domain.Min.Component(a)) / size.Component(a)
		i := int(frac * float64(d.Dims[a]))
		if i < 0 {
			i = 0
		}
		if i >= d.Dims[a] {
			i = d.Dims[a] - 1
		}
		c[a] = i
	}
	// Roundoff near internal boundaries: verify containment and nudge.
	for a := 0; a < 3; a++ {
		b := d.blocks[(c[2]*d.Dims[1]+c[1])*d.Dims[0]+c[0]]
		x := p.Component(a)
		if x < b.Bounds.Min.Component(a) && c[a] > 0 {
			c[a]--
		} else if x >= b.Bounds.Max.Component(a) && c[a] < d.Dims[a]-1 {
			c[a]++
		}
	}
	return (c[2]*d.Dims[1]+c[1])*d.Dims[0] + c[0]
}

// Neighbor is a link from one block to an adjacent block (including
// diagonal and periodic links).
type Neighbor struct {
	// Rank of the adjacent block.
	Rank int
	// Dir is the grid offset (-1, 0, +1 per dimension, not all zero).
	Dir [3]int
	// Shift is the coordinate translation to apply to a particle when
	// sending it to this neighbor: nonzero only across periodic wraps.
	Shift geom.Vec3
	// Periodic reports whether this link wraps around the domain.
	Periodic bool
}

// Neighbors returns the neighborhood links of rank. For a regular grid
// these are the up-to-26 coordinate neighbors: with periodic boundaries
// every block has exactly 26 links (some may reference the same rank when
// the block grid is thin — e.g. 2 blocks per dimension — or even the block
// itself for a 1-block dimension; tess relies on the Shift of each link,
// so duplicates with distinct shifts are preserved). For an RCB
// decomposition they are the precomputed box-adjacency links (see
// DecomposeRCB), returned in deterministic ascending-rank order.
func (d *Decomposition) Neighbors(rank int) []Neighbor {
	if d.rcb != nil {
		return d.rcb.links[rank]
	}
	b := d.blocks[rank]
	size := d.Domain.Size()
	var out []Neighbor
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				ci := b.Coords[0] + dx
				cj := b.Coords[1] + dy
				ck := b.Coords[2] + dz
				nr := d.RankAt(ci, cj, ck)
				if nr < 0 {
					continue
				}
				var shift geom.Vec3
				periodic := false
				if ci < 0 {
					shift.X += size.X
					periodic = true
				}
				if ci >= d.Dims[0] {
					shift.X -= size.X
					periodic = true
				}
				if cj < 0 {
					shift.Y += size.Y
					periodic = true
				}
				if cj >= d.Dims[1] {
					shift.Y -= size.Y
					periodic = true
				}
				if ck < 0 {
					shift.Z += size.Z
					periodic = true
				}
				if ck >= d.Dims[2] {
					shift.Z -= size.Z
					periodic = true
				}
				out = append(out, Neighbor{Rank: nr, Dir: [3]int{dx, dy, dz}, Shift: shift, Periodic: periodic})
			}
		}
	}
	return out
}

package diy

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/geom"
)

func randomParticles(rng *rand.Rand, n int, L float64) []Particle {
	ps := make([]Particle, n)
	for i := range ps {
		ps[i] = Particle{
			ID:  int64(i),
			Pos: geom.V(rng.Float64()*L, rng.Float64()*L, rng.Float64()*L),
		}
	}
	return ps
}

func TestPartitionParticles(t *testing.T) {
	d, err := Decompose(unitDomain(10), 8, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(26))
	ps := randomParticles(rng, 1000, 10)
	parts := PartitionParticles(d, ps)
	total := 0
	for r, part := range parts {
		total += len(part)
		for _, p := range part {
			if !d.Block(r).Bounds.Contains(p.Pos) {
				t.Fatalf("particle %v assigned to wrong block %d", p.Pos, r)
			}
		}
	}
	if total != 1000 {
		t.Errorf("partition lost particles: %d", total)
	}
}

// runExchange partitions particles, runs the collective exchange on all
// ranks, and returns per-rank ghosts.
func runExchange(t *testing.T, d *Decomposition, ps []Particle, ghost float64,
	fn func(*comm.World, *Decomposition, int, []Particle, float64) []Particle) [][]Particle {
	t.Helper()
	parts := PartitionParticles(d, ps)
	w := comm.NewWorld(d.NumBlocks())
	ghosts := make([][]Particle, d.NumBlocks())
	var mu sync.Mutex
	w.Run(func(rank int) {
		g := fn(w, d, rank, parts[rank], ghost)
		mu.Lock()
		ghosts[rank] = g
		mu.Unlock()
	})
	return ghosts
}

func TestExchangeGhostCoverage(t *testing.T) {
	// Every rank must receive exactly the particles (or periodic images)
	// that fall inside its ghost-expanded bounds, minus its own originals.
	const L = 10.0
	const ghost = 1.5
	d, err := Decompose(unitDomain(L), 8, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(27))
	ps := randomParticles(rng, 800, L)
	parts := PartitionParticles(d, ps)
	ghosts := runExchange(t, d, ps, ghost, ExchangeGhost)

	for r := 0; r < d.NumBlocks(); r++ {
		expanded := d.Block(r).Bounds.Expand(ghost)
		local := map[int64]bool{}
		for _, p := range parts[r] {
			local[p.ID] = true
		}
		// Expected ghost images: for every particle and every image shift
		// in {-L,0,L}^3, the image is expected if it falls in the expanded
		// bounds and is not the particle's own unshifted copy in this block.
		type key struct {
			id      int64
			x, y, z float64
		}
		expect := map[key]bool{}
		for _, p := range ps {
			for _, sx := range []float64{-L, 0, L} {
				for _, sy := range []float64{-L, 0, L} {
					for _, sz := range []float64{-L, 0, L} {
						img := p.Pos.Add(geom.V(sx, sy, sz))
						if !expanded.Contains(img) {
							continue
						}
						if sx == 0 && sy == 0 && sz == 0 && local[p.ID] {
							continue // original, not a ghost
						}
						expect[key{p.ID, img.X, img.Y, img.Z}] = true
					}
				}
			}
		}
		got := map[key]bool{}
		for _, g := range ghosts[r] {
			k := key{g.ID, g.Pos.X, g.Pos.Y, g.Pos.Z}
			if got[k] {
				t.Fatalf("rank %d received duplicate ghost %+v", r, k)
			}
			got[k] = true
		}
		for k := range expect {
			if !got[k] {
				t.Fatalf("rank %d missing expected ghost %+v", r, k)
			}
		}
		for k := range got {
			if !expect[k] {
				t.Fatalf("rank %d received unexpected ghost %+v", r, k)
			}
		}
	}
}

func TestExchangeGhostSmallGhostSendsLess(t *testing.T) {
	const L = 10.0
	d, err := Decompose(unitDomain(L), 8, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(28))
	ps := randomParticles(rng, 500, L)
	small := runExchange(t, d, ps, 0.5, ExchangeGhost)
	large := runExchange(t, d, ps, 2.0, ExchangeGhost)
	for r := range small {
		if len(small[r]) > len(large[r]) {
			t.Fatalf("rank %d: smaller ghost received more particles (%d > %d)",
				r, len(small[r]), len(large[r]))
		}
	}
}

func TestExchangeGhostZero(t *testing.T) {
	// Ghost size zero exchanges (essentially) nothing: only particles
	// exactly on block faces would qualify, and random particles are not.
	const L = 10.0
	d, err := Decompose(unitDomain(L), 8, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	ps := randomParticles(rng, 500, L)
	ghosts := runExchange(t, d, ps, 0, ExchangeGhost)
	for r, g := range ghosts {
		if len(g) != 0 {
			t.Errorf("rank %d received %d ghosts with zero ghost size", r, len(g))
		}
	}
}

func TestBroadcastExchangeMatchesTargeted(t *testing.T) {
	// The broadcast baseline must deliver the same ghost sets as the
	// targeted exchange (it is only allowed to cost more traffic).
	const L = 12.0
	const ghost = 1.0
	d, err := Decompose(unitDomain(L), 27, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(30))
	ps := randomParticles(rng, 600, L)
	a := runExchange(t, d, ps, ghost, ExchangeGhost)
	b := runExchange(t, d, ps, ghost, BroadcastExchange)
	for r := range a {
		ka := ghostKeys(a[r])
		kb := ghostKeys(b[r])
		if len(ka) != len(kb) {
			t.Fatalf("rank %d: targeted %d ghosts, broadcast %d", r, len(ka), len(kb))
		}
		for i := range ka {
			if ka[i] != kb[i] {
				t.Fatalf("rank %d: ghost sets differ at %d: %v vs %v", r, i, ka[i], kb[i])
			}
		}
	}
}

func ghostKeys(ps []Particle) []Particle {
	out := append([]Particle(nil), ps...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID != out[j].ID {
			return out[i].ID < out[j].ID
		}
		if out[i].Pos.X != out[j].Pos.X {
			return out[i].Pos.X < out[j].Pos.X
		}
		if out[i].Pos.Y != out[j].Pos.Y {
			return out[i].Pos.Y < out[j].Pos.Y
		}
		return out[i].Pos.Z < out[j].Pos.Z
	})
	return out
}

func TestExchangeSingleBlockPeriodicImages(t *testing.T) {
	// With one block, the exchange must deliver the periodic self-images of
	// boundary particles — this is what makes the P=1 tessellation periodic.
	const L = 10.0
	d, err := Decompose(unitDomain(L), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	ps := []Particle{
		{ID: 0, Pos: geom.V(0.5, 5, 5)},   // near -x face
		{ID: 1, Pos: geom.V(5, 5, 5)},     // center: no images
		{ID: 2, Pos: geom.V(9.8, 9.9, 5)}, // near +x +y edge
	}
	ghosts := runExchange(t, d, ps, 1.0, ExchangeGhost)[0]
	hasImage := func(id int64, at geom.Vec3) bool {
		for _, g := range ghosts {
			if g.ID == id && g.Pos.Dist(at) < 1e-9 {
				return true
			}
		}
		return false
	}
	if !hasImage(0, geom.V(10.5, 5, 5)) {
		t.Errorf("missing +x image of particle 0: %v", ghosts)
	}
	if !hasImage(2, geom.V(-0.2, -0.1, 5)) {
		t.Errorf("missing corner image of particle 2: %v", ghosts)
	}
	for _, g := range ghosts {
		if g.Pos.Dist(geom.V(5, 5, 5)) < 1 {
			t.Errorf("center particle should have no images, found %v", g.Pos)
		}
	}
}

func TestGatherGhostsMatchesExchange(t *testing.T) {
	const L = 10.0
	for _, blocks := range []int{1, 2, 4, 8, 27} {
		d, err := Decompose(unitDomain(L), blocks, true)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(100 + blocks)))
		ps := randomParticles(rng, 400, L)
		parts := PartitionParticles(d, ps)
		exchanged := runExchange(t, d, ps, 1.2, ExchangeGhost)
		for r := 0; r < blocks; r++ {
			direct := GatherGhosts(d, r, parts, 1.2)
			ka := ghostKeys(exchanged[r])
			kb := ghostKeys(direct)
			if len(ka) != len(kb) {
				t.Fatalf("blocks=%d rank %d: exchange %d ghosts, gather %d",
					blocks, r, len(ka), len(kb))
			}
			for i := range ka {
				if ka[i].ID != kb[i].ID || ka[i].Pos.Dist(kb[i].Pos) > 1e-12 {
					t.Fatalf("blocks=%d rank %d: ghost %d differs: %+v vs %+v",
						blocks, r, i, ka[i], kb[i])
				}
			}
		}
	}
}

func TestRedistribute(t *testing.T) {
	const L = 10.0
	d, err := Decompose(unitDomain(L), 8, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(131))
	ps := randomParticles(rng, 600, L)
	parts := PartitionParticles(d, ps)

	// Scramble ownership: rotate each rank's particles to the next rank.
	scrambled := make([][]Particle, len(parts))
	for r := range parts {
		scrambled[(r+3)%len(parts)] = append(scrambled[(r+3)%len(parts)], parts[r]...)
	}

	w := comm.NewWorld(d.NumBlocks())
	result := make([][]Particle, d.NumBlocks())
	var mu sync.Mutex
	w.Run(func(rank int) {
		out := Redistribute(w, d, rank, scrambled[rank])
		mu.Lock()
		result[rank] = out
		mu.Unlock()
	})

	total := 0
	for r, out := range result {
		total += len(out)
		for _, p := range out {
			if !d.Block(r).Bounds.Contains(p.Pos) {
				t.Fatalf("rank %d received particle %v outside its bounds", r, p.Pos)
			}
		}
		// Same multiset as a fresh partition.
		if len(out) != len(parts[r]) {
			t.Fatalf("rank %d has %d particles, want %d", r, len(out), len(parts[r]))
		}
	}
	if total != len(ps) {
		t.Fatalf("redistribute lost particles: %d of %d", total, len(ps))
	}
}

func TestRedistributeNoop(t *testing.T) {
	const L = 8.0
	d, err := Decompose(unitDomain(L), 4, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(132))
	ps := randomParticles(rng, 200, L)
	parts := PartitionParticles(d, ps)
	w := comm.NewWorld(4)
	w.Run(func(rank int) {
		out := Redistribute(w, d, rank, parts[rank])
		if len(out) != len(parts[rank]) {
			t.Errorf("rank %d: noop redistribute changed count %d -> %d",
				rank, len(parts[rank]), len(out))
		}
	})
}

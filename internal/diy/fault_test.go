package diy

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/comm"
)

// A rank that skips its ExchangeGhost call (the classic mismatched
// collective) must surface as a watchdog stall dump, not a silent hang —
// and a rank that crashes mid-exchange must unblock its peers through the
// abort path. Both are regression guards for the fault-containment layer
// under the real exchange pattern.
func TestMissingExchangeGhostStalls(t *testing.T) {
	d, err := Decompose(unitDomain(10), 4, true)
	if err != nil {
		t.Fatal(err)
	}
	ps := randomParticles(rand.New(rand.NewSource(31)), 400, 10)
	parts := PartitionParticles(d, ps)

	w := comm.NewWorld(4, comm.WithWatchdog(50*time.Millisecond))
	start := time.Now()
	runErr := w.Run(func(rank int) {
		if rank == 2 {
			return // forgot to join the exchange
		}
		ExchangeGhost(w, d, rank, parts[rank], 2)
	})
	if runErr == nil {
		t.Fatal("missing ExchangeGhost did not abort")
	}
	var se *comm.StallError
	if !errors.As(runErr, &se) {
		t.Fatalf("err %v carries no *StallError", runErr)
	}
	if !errors.Is(runErr, comm.ErrWorldAborted) {
		t.Errorf("err %v does not match ErrWorldAborted", runErr)
	}
	if se.Waits[2].State != "exited" {
		t.Errorf("rank 2 state %q, want exited", se.Waits[2].State)
	}
	blocked := false
	for _, rw := range se.Waits {
		if rw.State == "recv" && rw.Peer == 2 {
			blocked = true
		}
	}
	if !blocked {
		t.Errorf("no rank attributed its wait to the missing rank: %v", se)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("stall detection took %v", elapsed)
	}
}

func TestCrashDuringExchangeAborts(t *testing.T) {
	d, err := Decompose(unitDomain(10), 4, true)
	if err != nil {
		t.Fatal(err)
	}
	ps := randomParticles(rand.New(rand.NewSource(32)), 400, 10)
	parts := PartitionParticles(d, ps)

	w := comm.NewWorld(4)
	runErr := w.Run(func(rank int) {
		if rank == 1 {
			panic("simulated crash mid-exchange")
		}
		ExchangeGhost(w, d, rank, parts[rank], 2)
	})
	var re *comm.RankError
	if !errors.As(runErr, &re) {
		t.Fatalf("err %v carries no *RankError", runErr)
	}
	if re.Rank != 1 {
		t.Errorf("RankError.Rank = %d, want 1", re.Rank)
	}
}

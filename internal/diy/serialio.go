package diy

import (
	"encoding/binary"
	"fmt"
	"os"
)

// Serial block I/O: WriteBlocks produces the same single-file layout as
// CollectiveWrite — payload sections, footer index, trailer — from one
// goroutine with no World. It is the writer behind snapshot files and
// checkpoint artifacts, which are produced outside any collective step
// (between steps, or by offline tools), while ReadIndex/ReadBlock serve
// both layouts identically.

// WriteBlocks writes one payload section per block into path, followed
// by the footer index and trailer, so the file is readable with
// ReadIndex/ReadBlock/ReadAllBlocks. It returns the total file size.
func WriteBlocks(path string, payloads [][]byte) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, fmt.Errorf("diy: create %s: %w", path, err)
	}
	defer f.Close()
	offsets := make([]int64, len(payloads))
	var total int64
	for i, p := range payloads {
		offsets[i] = total
		if _, err := f.Write(p); err != nil {
			return 0, fmt.Errorf("diy: write %s: %w", path, err)
		}
		total += int64(len(p))
	}
	for i, p := range payloads {
		if err := binary.Write(f, binary.LittleEndian, uint64(offsets[i])); err != nil {
			return 0, err
		}
		if err := binary.Write(f, binary.LittleEndian, uint64(len(p))); err != nil {
			return 0, err
		}
	}
	trailer := []uint64{uint64(total), uint64(len(payloads)), blockIOMagic}
	for _, v := range trailer {
		if err := binary.Write(f, binary.LittleEndian, v); err != nil {
			return 0, err
		}
	}
	if err := f.Sync(); err != nil {
		return 0, fmt.Errorf("diy: sync %s: %w", path, err)
	}
	return total + int64(16*len(payloads)) + 24, nil
}

package voids_test

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/diy"
	"repro/internal/geom"
	"repro/internal/voids"
)

// tessellate produces cell records for a perturbed lattice via the full
// parallel pipeline.
func tessellate(t testing.TB, n int, L float64, seed int64, blocks int, minVol float64) []voids.CellRecord {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	h := L / float64(n)
	var ps []diy.Particle
	id := int64(0)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				ps = append(ps, diy.Particle{
					ID: id,
					Pos: geom.V(
						(float64(x)+0.5)*h+(rng.Float64()-0.5)*0.9*h,
						(float64(y)+0.5)*h+(rng.Float64()-0.5)*0.9*h,
						(float64(z)+0.5)*h+(rng.Float64()-0.5)*0.9*h),
				})
				id++
			}
		}
	}
	domain := geom.NewBox(geom.V(0, 0, 0), geom.V(L, L, L))
	d, err := diy.Decompose(domain, blocks, true)
	if err != nil {
		t.Fatal(err)
	}
	ghost := 3.0
	if m := core.MaxGhost(d); m < ghost {
		ghost = m
	}
	cfg := core.Config{
		Domain:    domain,
		Periodic:  true,
		GhostSize: ghost,
		MinVolume: minVol,
	}
	out, err := core.Run(cfg, ps, blocks)
	if err != nil {
		t.Fatal(err)
	}
	var recs []voids.CellRecord
	for bi, m := range out.Meshes {
		recs = append(recs, voids.CellsFromMesh(m, bi)...)
	}
	return recs
}

func TestCellsFromMeshShape(t *testing.T) {
	recs := tessellate(t, 6, 6, 84, 4, 0)
	if len(recs) != 216 {
		t.Fatalf("records = %d, want 216", len(recs))
	}
	for _, r := range recs {
		if len(r.Neighbors) != len(r.FaceAreas) || len(r.Neighbors) != len(r.FaceVerts) {
			t.Fatal("face arrays misaligned")
		}
		if r.Volume <= 0 || r.Area <= 0 {
			t.Fatalf("cell %d has nonpositive geometry", r.ID)
		}
		var fa float64
		for _, a := range r.FaceAreas {
			fa += a
		}
		// Complete cells have no wall faces, so face areas sum to the total.
		if r.Complete && math.Abs(fa-r.Area) > 1e-6*r.Area {
			t.Fatalf("cell %d: face areas %v != area %v", r.ID, fa, r.Area)
		}
	}
}

func TestThreshold(t *testing.T) {
	recs := tessellate(t, 6, 6, 85, 2, 0)
	med := median(recs)
	surv := voids.Threshold(recs, med)
	if len(surv) == 0 || len(surv) == len(recs) {
		t.Fatalf("median threshold kept %d of %d", len(surv), len(recs))
	}
	for _, r := range surv {
		if r.Volume < med {
			t.Fatal("threshold kept a small cell")
		}
	}
	if got := voids.Threshold(recs, 0); len(got) != len(recs) {
		t.Error("zero threshold should keep everything")
	}
}

func median(recs []voids.CellRecord) float64 {
	vols := make([]float64, len(recs))
	for i, r := range recs {
		vols[i] = r.Volume
	}
	// Simple selection: sort copy.
	for i := 1; i < len(vols); i++ {
		for j := i; j > 0 && vols[j] < vols[j-1]; j-- {
			vols[j], vols[j-1] = vols[j-1], vols[j]
		}
	}
	return vols[len(vols)/2]
}

func TestConnectedComponentsAllCellsOneComponent(t *testing.T) {
	// With no threshold, the periodic tessellation is fully connected.
	recs := tessellate(t, 5, 5, 86, 2, 0)
	comps := voids.ConnectedComponents(recs)
	if len(comps) != 1 {
		t.Fatalf("full tessellation has %d components, want 1", len(comps))
	}
	if len(comps[0].CellIDs) != len(recs) {
		t.Errorf("component holds %d cells, want %d", len(comps[0].CellIDs), len(recs))
	}
	// Volume of the single component is the whole box.
	if math.Abs(comps[0].Functionals.Volume-125) > 1e-6*125 {
		t.Errorf("component volume = %v, want 125", comps[0].Functionals.Volume)
	}
	// A component covering the periodic box has no boundary at all.
	if comps[0].Functionals.Area > 1e-9 {
		t.Errorf("full-box component has boundary area %v", comps[0].Functionals.Area)
	}
}

func TestConnectedComponentsSplit(t *testing.T) {
	// Construct two artificial clusters connected internally but not to
	// each other.
	mk := func(id int64, nbs ...int64) voids.CellRecord {
		return voids.CellRecord{ID: id, Volume: 1, Neighbors: nbs,
			FaceAreas: make([]float64, len(nbs)), FaceVerts: make([][]geom.Vec3, len(nbs))}
	}
	cells := []voids.CellRecord{
		mk(1, 2), mk(2, 1, 3), mk(3, 2),
		mk(10, 11), mk(11, 10),
	}
	comps := voids.ConnectedComponents(cells)
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if len(comps[0].CellIDs) != 3 || len(comps[1].CellIDs) != 2 {
		t.Errorf("component sizes: %d, %d", len(comps[0].CellIDs), len(comps[1].CellIDs))
	}
}

func TestConnectedComponentsIgnoreNonSurvivors(t *testing.T) {
	mk := func(id int64, nbs ...int64) voids.CellRecord {
		return voids.CellRecord{ID: id, Volume: 1, Neighbors: nbs,
			FaceAreas: make([]float64, len(nbs)), FaceVerts: make([][]geom.Vec3, len(nbs))}
	}
	// 1-2 adjacency runs through 99, which is not in the set.
	cells := []voids.CellRecord{mk(1, 99), mk(2, 99)}
	comps := voids.ConnectedComponents(cells)
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2 (bridge cell absent)", len(comps))
	}
}

func TestComponentOrderIndependence(t *testing.T) {
	recs := tessellate(t, 5, 5, 87, 4, 0)
	med := median(recs)
	surv := voids.Threshold(recs, med)
	a := voids.ConnectedComponents(surv)
	rev := make([]voids.CellRecord, len(surv))
	for i := range surv {
		rev[len(surv)-1-i] = surv[i]
	}
	b := voids.ConnectedComponents(rev)
	if len(a) != len(b) {
		t.Fatalf("component count depends on order: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Label != b[i].Label || len(a[i].CellIDs) != len(b[i].CellIDs) {
			t.Fatalf("component %d differs across orders", i)
		}
	}
}

func TestMinkowskiSingleCubeCell(t *testing.T) {
	// A single isolated unit-cube cell: V=1, S=6, C = (1/2)*12*(pi/2) = 3pi,
	// chi = 2 (sphere topology), genus 0.
	cube := geom.NewBox(geom.V(0, 0, 0), geom.V(1, 1, 1))
	corners := cube.Corners()
	loops := [][]int{
		{0, 4, 7, 3}, {1, 2, 6, 5}, {0, 1, 5, 4},
		{2, 3, 7, 6}, {0, 3, 2, 1}, {4, 5, 6, 7},
	}
	rec := voids.CellRecord{ID: 1, Volume: 1, Area: 6}
	for _, lp := range loops {
		loop := make([]geom.Vec3, len(lp))
		for i, ci := range lp {
			loop[i] = corners[ci]
		}
		rec.Neighbors = append(rec.Neighbors, 99) // neighbor not in set
		rec.FaceAreas = append(rec.FaceAreas, geom.PolygonArea(loop))
		rec.FaceVerts = append(rec.FaceVerts, loop)
	}
	mk := voids.ComputeMinkowski([]*voids.CellRecord{&rec})
	if math.Abs(mk.Volume-1) > 1e-12 {
		t.Errorf("V = %v", mk.Volume)
	}
	if math.Abs(mk.Area-6) > 1e-9 {
		t.Errorf("S = %v", mk.Area)
	}
	if math.Abs(mk.MeanCurvature-3*math.Pi) > 1e-9 {
		t.Errorf("C = %v, want %v", mk.MeanCurvature, 3*math.Pi)
	}
	if mk.EulerChi != 2 {
		t.Errorf("chi = %d, want 2", mk.EulerChi)
	}
	if g := mk.Genus(); g != 0 {
		t.Errorf("genus = %v", g)
	}
	// Shapefinders of a cube: T = 3V/S = 0.5, B = S/C = 2/pi, L = C/4pi = 3/4.
	if math.Abs(mk.Thickness-0.5) > 1e-9 {
		t.Errorf("T = %v", mk.Thickness)
	}
	if math.Abs(mk.Breadth-2/math.Pi) > 1e-9 {
		t.Errorf("B = %v", mk.Breadth)
	}
	if math.Abs(mk.Length-0.75) > 1e-9 {
		t.Errorf("L = %v", mk.Length)
	}
}

func TestMinkowskiComponentsFromTessellation(t *testing.T) {
	recs := tessellate(t, 6, 6, 88, 4, 0)
	med := median(recs)
	comps := voids.ConnectedComponents(voids.Threshold(recs, med))
	if len(comps) == 0 {
		t.Fatal("no components")
	}
	var total float64
	for _, c := range comps {
		mk := c.Functionals
		if mk.Volume <= 0 {
			t.Fatal("component with nonpositive volume")
		}
		if mk.Area <= 0 {
			t.Fatal("thresholded component with no boundary")
		}
		if mk.Thickness <= 0 {
			t.Fatal("nonpositive thickness")
		}
		// chi is bounded for realistic voids: each boundary face adds at
		// most 2, and pinch points (cells of one component touching only
		// at a vertex) can make it odd, so only sanity-bound it.
		if mk.EulerChi > 2*len(c.CellIDs)*20 || mk.EulerChi < -2*len(c.CellIDs)*20 {
			t.Errorf("implausible Euler characteristic %d for %d cells", mk.EulerChi, len(c.CellIDs))
		}
		total += mk.Volume
	}
	// Total component volume equals total surviving cell volume.
	var surv float64
	for _, r := range voids.Threshold(recs, med) {
		surv += r.Volume
	}
	if math.Abs(total-surv) > 1e-9*surv {
		t.Errorf("component volumes %v != surviving volume %v", total, surv)
	}
}

func TestThresholdSweepMonotone(t *testing.T) {
	recs := tessellate(t, 6, 6, 89, 2, 0)
	ths := []float64{0, 0.5, 0.75, 1.0, 1.5}
	rows := voids.ThresholdSweep(recs, ths)
	if len(rows) != len(ths) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Cells > rows[i-1].Cells {
			t.Errorf("surviving cells increased with threshold: %+v", rows)
		}
	}
	if rows[0].Components != 1 {
		t.Errorf("zero threshold: %d components, want 1", rows[0].Components)
	}
}

func TestReadTessFile(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	const L = 6.0
	var ps []diy.Particle
	for i := 0; i < 216; i++ {
		ps = append(ps, diy.Particle{ID: int64(i), Pos: geom.V(rng.Float64()*L, rng.Float64()*L, rng.Float64()*L)})
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "t.tess")
	cfg := core.Config{
		Domain:     geom.NewBox(geom.V(0, 0, 0), geom.V(L, L, L)),
		Periodic:   true,
		GhostSize:  3,
		OutputPath: path,
	}
	if _, err := core.Run(cfg, ps, 4); err != nil {
		t.Fatal(err)
	}
	recs, err := voids.ReadTessFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records read")
	}
	if _, err := voids.ReadTessFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

package voids_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cosmo"
	"repro/internal/geom"
	"repro/internal/voids"
)

func TestCenterPeriodic(t *testing.T) {
	// A void straddling the box corner: the volume-weighted center wraps
	// correctly instead of averaging to the box middle.
	const L = 10.0
	members := []*voids.CellRecord{
		{ID: 1, Site: geom.V(9.8, 9.8, 9.8), Volume: 1},
		{ID: 2, Site: geom.V(0.2, 0.2, 0.2), Volume: 1},
	}
	c := voids.Center(members, L)
	d := cosmo.MinImage(c, geom.V(0, 0, 0), L).Norm()
	if d > 0.01 {
		t.Errorf("corner void center = %v (%.3f from corner)", c, d)
	}
	// Volume weighting: a heavier cell pulls the center toward it.
	members[0].Volume = 3
	c = voids.Center(members, L)
	d1 := cosmo.MinImage(c, members[0].Site, L).Norm()
	d2 := cosmo.MinImage(c, members[1].Site, L).Norm()
	if d1 >= d2 {
		t.Errorf("center not pulled toward heavier cell: %v vs %v", d1, d2)
	}
	if got := voids.Center(nil, L); got != (geom.Vec3{}) {
		t.Errorf("empty center = %v", got)
	}
}

func TestStackedProfileValidation(t *testing.T) {
	p := []geom.Vec3{{X: 1, Y: 1, Z: 1}}
	c := []geom.Vec3{{X: 2, Y: 2, Z: 2}}
	if _, err := voids.StackedProfile(nil, c, 8, 2, 4); err == nil {
		t.Error("no particles accepted")
	}
	if _, err := voids.StackedProfile(p, c, 8, 5, 4); err == nil {
		t.Error("rmax > box/2 accepted")
	}
	if _, err := voids.StackedProfile(p, c, 8, 2, 0); err == nil {
		t.Error("zero bins accepted")
	}
}

func TestStackedProfileUniform(t *testing.T) {
	// Uniform particles around arbitrary centers read density ~1 at all
	// radii.
	rng := rand.New(rand.NewSource(135))
	const L = 12.0
	pts := make([]geom.Vec3, 8000)
	for i := range pts {
		pts[i] = geom.V(rng.Float64()*L, rng.Float64()*L, rng.Float64()*L)
	}
	centers := []geom.Vec3{geom.V(3, 3, 3), geom.V(9, 9, 9)}
	prof, err := voids.StackedProfile(pts, centers, L, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range prof[1:] { // innermost bin has few particles
		if math.Abs(b.Density-1) > 0.25 {
			t.Errorf("uniform profile at r=%.2f reads %.3f, want ~1", b.R, b.Density)
		}
	}
}

func TestStackedProfileEmptyCenter(t *testing.T) {
	// Particles excluded from a ball around the center: the profile reads
	// ~0 inside the ball and ~1 outside (a synthetic void).
	rng := rand.New(rand.NewSource(136))
	const L = 12.0
	center := geom.V(6, 6, 6)
	const hole = 3.0
	var pts []geom.Vec3
	for len(pts) < 6000 {
		p := geom.V(rng.Float64()*L, rng.Float64()*L, rng.Float64()*L)
		if cosmo.MinImage(center, p, L).Norm() < hole {
			continue
		}
		pts = append(pts, p)
	}
	prof, err := voids.StackedProfile(pts, []geom.Vec3{center}, L, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Bins fully inside the hole: near zero.
	for _, b := range prof {
		if b.R < hole-1 && b.Density > 0.05 {
			t.Errorf("hole at r=%.2f reads %.3f", b.R, b.Density)
		}
		if b.R > hole+1 && math.Abs(b.Density-1) > 0.3 {
			t.Errorf("outside at r=%.2f reads %.3f, want ~1", b.R, b.Density)
		}
	}
}

func TestComponentCentersAndProfileOnTessellation(t *testing.T) {
	// End-to-end: find voids on a clustered box, stack their profiles; the
	// central density must be below the mean (that is what a void is).
	recs := tessellate(t, 8, 8, 137, 4, 0)
	var vols []float64
	var sites []geom.Vec3
	for _, r := range recs {
		vols = append(vols, r.Volume)
		sites = append(sites, r.Site)
	}
	// Threshold at twice the mean cell volume.
	comps := voids.ConnectedComponents(voids.Threshold(recs, 2.0))
	if len(comps) == 0 {
		t.Skip("no voids at this seed")
	}
	centers := voids.ComponentCenters(comps, recs, 8)
	if len(centers) != len(comps) {
		t.Fatalf("centers = %d, comps = %d", len(centers), len(comps))
	}
	prof, err := voids.StackedProfile(sites, centers, 8, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if prof[0].Density >= 1 {
		t.Errorf("void central density %.3f not below the mean", prof[0].Density)
	}
}

// Package voids implements the postprocessing analysis of the paper's
// ParaView cosmology-tools plugin (Sec. III-D and Fig. 7): reading tess
// output, volume-threshold filtering, connected-component labeling of
// Voronoi cells into voids, and Minkowski functionals with the derived
// shapefinders (thickness, breadth, length) used to characterize void
// geometry.
package voids

import (
	"fmt"
	"maps"
	"math"
	"slices"
	"sort"

	"repro/internal/diy"
	"repro/internal/geom"
	"repro/internal/meshio"
)

// CellRecord is one Voronoi cell as read back from storage, flattened
// across blocks.
type CellRecord struct {
	ID       int64
	Site     geom.Vec3
	Volume   float64
	Area     float64
	Block    int
	Complete bool
	// Neighbors are the particle IDs across each face (walls excluded).
	Neighbors []int64
	// FaceAreas align with Neighbors.
	FaceAreas []float64
	// FaceVerts are the face vertex loops in block-local coordinates,
	// aligned with Neighbors (used for curvature integrals).
	FaceVerts [][]geom.Vec3
}

// ReadTessFile loads every block of a tess output file into flat cell
// records — the plugin's "parallel reader".
func ReadTessFile(path string) ([]CellRecord, error) {
	blocks, err := diy.ReadAllBlocks(path)
	if err != nil {
		return nil, err
	}
	var out []CellRecord
	for bi, data := range blocks {
		m, err := meshio.DecodeBlockMesh(data)
		if err != nil {
			return nil, fmt.Errorf("voids: block %d: %w", bi, err)
		}
		out = append(out, CellsFromMesh(m, bi)...)
	}
	return out, nil
}

// CellsFromMesh flattens one block mesh into cell records.
func CellsFromMesh(m *meshio.BlockMesh, block int) []CellRecord {
	out := make([]CellRecord, 0, m.NumCells())
	for i := range m.Particles {
		rec := CellRecord{
			ID:       m.ParticleIDs[i],
			Site:     m.Particles[i],
			Volume:   m.Volumes[i],
			Area:     m.Areas[i],
			Block:    block,
			Complete: m.Complete[i],
		}
		for _, f := range m.Cells[i].Faces {
			loop := make([]geom.Vec3, len(f.Verts))
			for k, vi := range f.Verts {
				loop[k] = m.Verts[vi]
			}
			if f.Neighbor < 0 {
				continue
			}
			rec.Neighbors = append(rec.Neighbors, f.Neighbor)
			rec.FaceAreas = append(rec.FaceAreas, geom.PolygonArea(loop))
			rec.FaceVerts = append(rec.FaceVerts, loop)
		}
		out = append(out, rec)
	}
	return out
}

// Threshold returns the cells with Volume >= minVolume — the plugin's
// threshold filter, and the void-finding step of Fig. 9: low-density
// regions are exactly the cells with large Voronoi volumes.
func Threshold(cells []CellRecord, minVolume float64) []CellRecord {
	var out []CellRecord
	for _, c := range cells {
		if c.Volume >= minVolume {
			out = append(out, c)
		}
	}
	return out
}

// Component is one connected component of threshold-surviving cells — a
// cosmological void.
type Component struct {
	// Label is a stable component identifier (the smallest cell ID in it).
	Label int64
	// CellIDs lists the member cells.
	CellIDs []int64
	// Functionals are the component's Minkowski functionals.
	Functionals Minkowski
}

// union-find over int64 IDs.
type dsu struct {
	parent map[int64]int64
}

func newDSU() *dsu { return &dsu{parent: map[int64]int64{}} }

func (d *dsu) find(x int64) int64 {
	p, ok := d.parent[x]
	if !ok {
		d.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	r := d.find(p)
	d.parent[x] = r
	return r
}

func (d *dsu) union(a, b int64) {
	ra, rb := d.find(a), d.find(b)
	if ra != rb {
		if ra < rb {
			d.parent[rb] = ra
		} else {
			d.parent[ra] = rb
		}
	}
}

// ConnectedComponents groups cells into components via face adjacency:
// two surviving cells belong to the same component when they share a
// Voronoi face. Adjacency to cells that did not survive the threshold is
// ignored. The result is sorted by decreasing total volume.
func ConnectedComponents(cells []CellRecord) []Component {
	inSet := make(map[int64]*CellRecord, len(cells))
	for i := range cells {
		inSet[cells[i].ID] = &cells[i]
	}
	d := newDSU()
	for i := range cells {
		d.find(cells[i].ID)
		for _, nb := range cells[i].Neighbors {
			if _, ok := inSet[nb]; ok {
				d.union(cells[i].ID, nb)
			}
		}
	}
	groups := map[int64][]int64{}
	for i := range cells {
		r := d.find(cells[i].ID)
		groups[r] = append(groups[r], cells[i].ID)
	}
	var out []Component
	for _, label := range slices.Sorted(maps.Keys(groups)) {
		ids := groups[label]
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		comp := Component{Label: label, CellIDs: ids}
		members := make([]*CellRecord, len(ids))
		for i, id := range ids {
			members[i] = inSet[id]
		}
		comp.Functionals = ComputeMinkowski(members)
		out = append(out, comp)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Functionals.Volume != out[b].Functionals.Volume {
			return out[a].Functionals.Volume > out[b].Functionals.Volume
		}
		return out[a].Label < out[b].Label
	})
	return out
}

// Minkowski holds the four Minkowski functionals of a component's boundary
// surface plus the derived shapefinders of Sahni, Sathyaprakash & Shandarin
// used by the paper's plugin (Sec. III-D).
type Minkowski struct {
	// Volume is the enclosed volume (sum of member cell volumes).
	Volume float64
	// Area is the boundary surface area: faces between a member cell and
	// a non-member (or a wall of the computation).
	Area float64
	// MeanCurvature is the integrated mean curvature of the boundary,
	// approximated over boundary edges as (1/2) sum length * dihedral.
	MeanCurvature float64
	// EulerChi is the Euler characteristic of the boundary surface
	// (V - E + F); genus = 1 - EulerChi/2 for a closed orientable surface.
	EulerChi int
	// Thickness, Breadth, Length are the shapefinders T = 3V/S,
	// B = S/C, L = C/(4 pi); for nonpositive C the latter two are 0.
	Thickness float64
	Breadth   float64
	Length    float64
}

// Genus returns the genus implied by the Euler characteristic.
func (m Minkowski) Genus() float64 { return 1 - float64(m.EulerChi)/2 }

// ComputeMinkowski evaluates the functionals for a set of member cells.
// Boundary faces are those whose neighbor is not in the member set.
func ComputeMinkowski(members []*CellRecord) Minkowski {
	inSet := make(map[int64]bool, len(members))
	for _, c := range members {
		inSet[c.ID] = true
	}
	var mk Minkowski

	// Boundary surface bookkeeping for Euler characteristic and curvature:
	// vertices are welded by tolerance (checking neighboring hash buckets,
	// so near-bucket-boundary vertices still weld), and edges are keyed by
	// welded vertex IDs.
	weld := newVertexWelder(1e-5)
	type ekey [2]int
	mkEdge := func(a, b int) ekey {
		if a > b {
			a, b = b, a
		}
		return ekey{a, b}
	}
	// Edge accumulators for the dihedral-angle curvature integral.
	type edgeInfo struct {
		length  float64
		normals []geom.Vec3
		count   int
	}
	edges := map[ekey]*edgeInfo{}
	faces := 0

	for _, c := range members {
		mk.Volume += c.Volume
		for fi, nb := range c.Neighbors {
			if inSet[nb] {
				continue // interior face
			}
			mk.Area += c.FaceAreas[fi]
			faces++
			loop := c.FaceVerts[fi]
			n := geom.PolygonNormal(loop).Normalize()
			for i := range loop {
				a, b := loop[i], loop[(i+1)%len(loop)]
				ka, kb := weld.id(a), weld.id(b)
				e := mkEdge(ka, kb)
				info := edges[e]
				if info == nil {
					info = &edgeInfo{length: a.Dist(b)}
					edges[e] = info
				}
				info.normals = append(info.normals, n)
				info.count++
			}
		}
	}

	// Accumulate the curvature integral over edges in sorted key order:
	// float addition is not associative, so ranging over the map directly
	// would perturb MeanCurvature in the last bits from run to run.
	ekeys := slices.SortedFunc(maps.Keys(edges), func(a, b ekey) int {
		if a[0] != b[0] {
			return a[0] - b[0]
		}
		return a[1] - b[1]
	})
	for _, e := range ekeys {
		info := edges[e]
		if len(info.normals) == 2 {
			// Exterior dihedral angle between the two boundary faces.
			d := info.normals[0].Dot(info.normals[1])
			d = math.Max(-1, math.Min(1, d))
			angle := math.Acos(d)
			mk.MeanCurvature += 0.5 * info.length * angle
		}
	}
	mk.EulerChi = weld.count() - len(edges) + faces

	if mk.Area > 0 {
		mk.Thickness = 3 * mk.Volume / mk.Area
	}
	if mk.MeanCurvature > 0 {
		mk.Breadth = mk.Area / mk.MeanCurvature
		mk.Length = mk.MeanCurvature / (4 * math.Pi)
	}
	return mk
}

// vertexWelder assigns stable integer IDs to 3D points, merging points
// within tol of each other. Points are hashed to a grid of cell size tol
// and candidate matches are looked up in the 27 surrounding buckets, so
// points straddling a bucket boundary still weld.
type vertexWelder struct {
	tol     float64
	buckets map[[3]int64][]int
	pts     []geom.Vec3
}

func newVertexWelder(tol float64) *vertexWelder {
	return &vertexWelder{tol: tol, buckets: map[[3]int64][]int{}}
}

func (w *vertexWelder) key(v geom.Vec3) [3]int64 {
	return [3]int64{
		int64(math.Floor(v.X / w.tol)),
		int64(math.Floor(v.Y / w.tol)),
		int64(math.Floor(v.Z / w.tol)),
	}
}

func (w *vertexWelder) id(v geom.Vec3) int {
	k := w.key(v)
	for dx := int64(-1); dx <= 1; dx++ {
		for dy := int64(-1); dy <= 1; dy++ {
			for dz := int64(-1); dz <= 1; dz++ {
				for _, id := range w.buckets[[3]int64{k[0] + dx, k[1] + dy, k[2] + dz}] {
					if w.pts[id].Dist(v) <= w.tol {
						return id
					}
				}
			}
		}
	}
	id := len(w.pts)
	w.pts = append(w.pts, v)
	w.buckets[k] = append(w.buckets[k], id)
	return id
}

func (w *vertexWelder) count() int { return len(w.pts) }

// SweepResult is one row of a threshold sweep (the Fig. 9 series).
type SweepResult struct {
	MinVolume  float64
	Cells      int
	Components int
	// LargestVolume is the volume of the biggest component.
	LargestVolume float64
}

// ThresholdSweep runs the Fig. 9 experiment: progressively raising the
// minimum cell volume and counting the connected components (voids) that
// emerge.
func ThresholdSweep(cells []CellRecord, thresholds []float64) []SweepResult {
	out := make([]SweepResult, 0, len(thresholds))
	for _, th := range thresholds {
		surv := Threshold(cells, th)
		comps := ConnectedComponents(surv)
		r := SweepResult{MinVolume: th, Cells: len(surv), Components: len(comps)}
		if len(comps) > 0 {
			r.LargestVolume = comps[0].Functionals.Volume
		}
		out = append(out, r)
	}
	return out
}

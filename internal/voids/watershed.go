package voids

import (
	"fmt"
	"maps"
	"slices"
	"sort"
)

// Watershed void finding in the style of ZOBOV (Neyrinck 2008) and the
// Watershed Void Finder (Platen, van de Weygaert & Jones 2007), the
// paper's Sec. II-A lineage: instead of a single global volume threshold
// (Threshold + ConnectedComponents), the density field implied by the
// Voronoi cells is segmented into *zones* — basins of steepest descent
// toward local density minima — and zones are then merged into voids up to
// a density barrier ("filling a landscape with water, with the valleys
// acting as voids and the ridges between valleys as filaments and walls").

// Zone is one catchment basin of the density field.
type Zone struct {
	// Core is the cell ID of the zone's density minimum.
	Core int64
	// CellIDs are the member cells (sorted).
	CellIDs []int64
	// CoreDensity is the density (1/volume) at the core.
	CoreDensity float64
	// Volume is the total member cell volume.
	Volume float64
}

// Watershed segments the cells into zones: every cell descends to its
// lowest-density neighbor until it reaches a local minimum (a cell denser
// than all its surviving neighbors is its own zone core when isolated).
// Cells listed in recs but absent from the adjacency of others are
// permitted; wall faces are ignored. Zones are returned sorted by
// decreasing volume.
func Watershed(recs []CellRecord) ([]Zone, error) {
	byID := make(map[int64]*CellRecord, len(recs))
	for i := range recs {
		if _, dup := byID[recs[i].ID]; dup {
			return nil, fmt.Errorf("voids: duplicate cell ID %d", recs[i].ID)
		}
		byID[recs[i].ID] = &recs[i]
	}
	density := func(c *CellRecord) float64 {
		if c.Volume <= 0 {
			return 0
		}
		return 1 / c.Volume
	}

	// Steepest-descent target per cell: the neighbor with the lowest
	// density, if lower than own density.
	sink := make(map[int64]int64, len(recs))
	for i := range recs {
		c := &recs[i]
		best := c.ID
		bestD := density(c)
		for _, nb := range c.Neighbors {
			n, ok := byID[nb]
			if !ok {
				continue
			}
			if d := density(n); d < bestD || (d == bestD && n.ID < best) {
				best = n.ID
				bestD = d
			}
		}
		sink[c.ID] = best
	}

	// Follow descents to cores with path compression.
	var coreOf func(id int64) int64
	memo := make(map[int64]int64, len(recs))
	coreOf = func(id int64) int64 {
		if c, ok := memo[id]; ok {
			return c
		}
		// Iterative walk with cycle guard (ties broken by ID make cycles
		// impossible, but guard anyway).
		path := []int64{id}
		cur := id
		for {
			nxt := sink[cur]
			if nxt == cur {
				break
			}
			if c, ok := memo[nxt]; ok {
				cur = c
				break
			}
			cur = nxt
			path = append(path, cur)
			if len(path) > len(recs)+1 {
				// Defensive: should be unreachable.
				break
			}
		}
		core := cur
		if c, ok := memo[core]; ok {
			core = c
		}
		for _, p := range path {
			memo[p] = core
		}
		return core
	}

	groups := map[int64][]int64{}
	for i := range recs {
		core := coreOf(recs[i].ID)
		groups[core] = append(groups[core], recs[i].ID)
	}
	zones := make([]Zone, 0, len(groups))
	for _, core := range slices.Sorted(maps.Keys(groups)) {
		ids := groups[core]
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		z := Zone{Core: core, CellIDs: ids, CoreDensity: density(byID[core])}
		for _, id := range ids {
			z.Volume += byID[id].Volume
		}
		zones = append(zones, z)
	}
	sort.Slice(zones, func(a, b int) bool {
		if zones[a].Volume != zones[b].Volume {
			return zones[a].Volume > zones[b].Volume
		}
		return zones[a].Core < zones[b].Core
	})
	return zones, nil
}

// WatershedVoid is a void grown from a zone by flooding: neighboring zones
// are merged while the density on the ridge between them stays below the
// barrier.
type WatershedVoid struct {
	// Zones are the merged zone cores.
	Zones []int64
	// CellIDs are all member cells (sorted).
	CellIDs []int64
	// Volume is the total volume.
	Volume float64
}

// FloodZones merges zones into voids: two zones join when some pair of
// adjacent cells across their shared ridge both have density below
// barrier. This is the watershed transform's flooding level; barrier = 0
// returns the zones unmerged. Voids are sorted by decreasing volume.
func FloodZones(recs []CellRecord, zones []Zone, barrier float64) []WatershedVoid {
	zoneOf := map[int64]int64{}
	for _, z := range zones {
		for _, id := range z.CellIDs {
			zoneOf[id] = z.Core
		}
	}
	byID := make(map[int64]*CellRecord, len(recs))
	for i := range recs {
		byID[recs[i].ID] = &recs[i]
	}
	density := func(id int64) float64 {
		c := byID[id]
		if c == nil || c.Volume <= 0 {
			return 0
		}
		return 1 / c.Volume
	}

	parent := map[int64]int64{}
	var find func(int64) int64
	find = func(x int64) int64 {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b int64) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
	}
	for _, z := range zones {
		find(z.Core)
	}

	if barrier > 0 {
		for i := range recs {
			c := &recs[i]
			if density(c.ID) >= barrier {
				continue
			}
			za := zoneOf[c.ID]
			for _, nb := range c.Neighbors {
				zb, ok := zoneOf[nb]
				if !ok || zb == za {
					continue
				}
				if density(nb) < barrier {
					union(za, zb)
				}
			}
		}
	}

	merged := map[int64]*WatershedVoid{}
	for _, z := range zones {
		root := find(z.Core)
		v := merged[root]
		if v == nil {
			v = &WatershedVoid{}
			merged[root] = v
		}
		v.Zones = append(v.Zones, z.Core)
		v.CellIDs = append(v.CellIDs, z.CellIDs...)
		v.Volume += z.Volume
	}
	out := make([]WatershedVoid, 0, len(merged))
	for _, root := range slices.Sorted(maps.Keys(merged)) {
		v := merged[root]
		sort.Slice(v.CellIDs, func(a, b int) bool { return v.CellIDs[a] < v.CellIDs[b] })
		sort.Slice(v.Zones, func(a, b int) bool { return v.Zones[a] < v.Zones[b] })
		out = append(out, *v)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Volume != out[b].Volume {
			return out[a].Volume > out[b].Volume
		}
		return out[a].Zones[0] < out[b].Zones[0]
	})
	return out
}

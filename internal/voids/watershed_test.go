package voids_test

import (
	"math"
	"testing"

	"repro/internal/voids"
)

// mkChain builds a 1D chain of cells with prescribed volumes; neighbors
// are the chain links.
func mkChain(volumes ...float64) []voids.CellRecord {
	recs := make([]voids.CellRecord, len(volumes))
	for i, v := range volumes {
		recs[i] = voids.CellRecord{ID: int64(i), Volume: v}
		if i > 0 {
			recs[i].Neighbors = append(recs[i].Neighbors, int64(i-1))
		}
		if i < len(volumes)-1 {
			recs[i].Neighbors = append(recs[i].Neighbors, int64(i+1))
		}
		recs[i].FaceAreas = make([]float64, len(recs[i].Neighbors))
	}
	return recs
}

func TestWatershedSingleBasin(t *testing.T) {
	// Monotone volumes: one minimum-density (max-volume) core at the end.
	recs := mkChain(1, 2, 3, 4, 5)
	zones, err := voids.Watershed(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(zones) != 1 {
		t.Fatalf("zones = %d, want 1", len(zones))
	}
	if zones[0].Core != 4 {
		t.Errorf("core = %d, want 4 (largest cell)", zones[0].Core)
	}
	if len(zones[0].CellIDs) != 5 {
		t.Errorf("zone members = %d", len(zones[0].CellIDs))
	}
	if math.Abs(zones[0].Volume-15) > 1e-12 {
		t.Errorf("zone volume = %v", zones[0].Volume)
	}
	if math.Abs(zones[0].CoreDensity-0.2) > 1e-12 {
		t.Errorf("core density = %v", zones[0].CoreDensity)
	}
}

func TestWatershedTwoBasins(t *testing.T) {
	// Two valleys (large volumes at the ends) separated by a ridge (small
	// volume in the middle).
	recs := mkChain(5, 3, 1, 3.5, 6)
	zones, err := voids.Watershed(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(zones) != 2 {
		t.Fatalf("zones = %d, want 2", len(zones))
	}
	// Largest-volume zone first.
	if zones[0].Core != 4 || zones[1].Core != 0 {
		t.Errorf("cores = %d, %d", zones[0].Core, zones[1].Core)
	}
	// The ridge cell (ID 2) descends to its less dense neighbor (ID 3,
	// density 1/3.5 < 1/3 of ID 1), landing in the right-hand zone.
	found := false
	for _, id := range zones[0].CellIDs {
		if id == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("ridge cell not in right basin: %+v", zones)
	}
}

func TestWatershedDuplicateIDs(t *testing.T) {
	recs := []voids.CellRecord{{ID: 1, Volume: 1}, {ID: 1, Volume: 2}}
	if _, err := voids.Watershed(recs); err == nil {
		t.Error("duplicate IDs accepted")
	}
}

func TestWatershedZonesPartition(t *testing.T) {
	// On a real tessellation, zones partition the cells exactly.
	recs := tessellate(t, 6, 6, 120, 4, 0)
	zones, err := voids.Watershed(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(zones) == 0 {
		t.Fatal("no zones")
	}
	seen := map[int64]int{}
	var vol float64
	for _, z := range zones {
		vol += z.Volume
		for _, id := range z.CellIDs {
			seen[id]++
		}
	}
	if len(seen) != len(recs) {
		t.Fatalf("zones cover %d of %d cells", len(seen), len(recs))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("cell %d in %d zones", id, n)
		}
	}
	if math.Abs(vol-216) > 1e-6*216 {
		t.Errorf("zone volumes sum to %v, want 216", vol)
	}
	// Each zone core is a local density minimum among its surviving
	// neighbors within the record set.
	byID := map[int64]voids.CellRecord{}
	for _, r := range recs {
		byID[r.ID] = r
	}
	for _, z := range zones {
		core := byID[z.Core]
		for _, nb := range core.Neighbors {
			n, ok := byID[nb]
			if !ok {
				continue
			}
			if 1/n.Volume < 1/core.Volume {
				t.Fatalf("zone core %d is not a local minimum (neighbor %d is less dense)", z.Core, nb)
			}
		}
	}
}

func TestFloodZonesBarriers(t *testing.T) {
	// Two basins with a ridge: flooding merges them only once the barrier
	// exceeds the ridge saddle density.
	recs := mkChain(5, 3, 1, 3.5, 6)
	zones, err := voids.Watershed(recs)
	if err != nil {
		t.Fatal(err)
	}
	// Barrier 0: zones unmerged.
	vs := voids.FloodZones(recs, zones, 0)
	if len(vs) != 2 {
		t.Fatalf("barrier 0: %d voids, want 2", len(vs))
	}
	// Barrier below the wall density (1/1 = 1) but above the basins'
	// boundary cells: the saddle pair spanning the zones is (1,2) or
	// (2,3); cell 2 has density 1. A barrier of 0.5 admits densities
	// < 0.5 only: cells 0 (0.2), 1 (0.333), 3 (0.286), 4 (0.167). The
	// zone boundary pair (1,2)/(2,3) includes cell 2 (density 1) -> no
	// merge.
	vs = voids.FloodZones(recs, zones, 0.5)
	if len(vs) != 2 {
		t.Fatalf("barrier 0.5: %d voids, want 2 (ridge not submerged)", len(vs))
	}
	// Barrier above the ridge density merges everything.
	vs = voids.FloodZones(recs, zones, 1.5)
	if len(vs) != 1 {
		t.Fatalf("barrier 1.5: %d voids, want 1", len(vs))
	}
	if len(vs[0].Zones) != 2 || len(vs[0].CellIDs) != 5 {
		t.Errorf("merged void: %+v", vs[0])
	}
	if math.Abs(vs[0].Volume-18.5) > 1e-12 {
		t.Errorf("merged volume = %v", vs[0].Volume)
	}
}

func TestFloodZonesOnTessellation(t *testing.T) {
	recs := tessellate(t, 6, 6, 121, 2, 0)
	zones, err := voids.Watershed(recs)
	if err != nil {
		t.Fatal(err)
	}
	unmerged := voids.FloodZones(recs, zones, 0)
	if len(unmerged) != len(zones) {
		t.Fatalf("barrier 0 changed zone count: %d vs %d", len(unmerged), len(zones))
	}
	// A huge barrier merges every zone that shares any adjacency; the
	// count can only decrease.
	all := voids.FloodZones(recs, zones, 1e9)
	if len(all) > len(zones) {
		t.Fatalf("flooding increased void count")
	}
	var vol float64
	for _, v := range all {
		vol += v.Volume
	}
	if math.Abs(vol-216) > 1e-6*216 {
		t.Errorf("flooded volumes sum to %v", vol)
	}
}

package voids

import (
	"fmt"
	"math"

	"repro/internal/cosmo"
	"repro/internal/geom"
)

// Center returns the volume-weighted centroid of a component's cells (the
// conventional void center), periodic-aware: sites are unwrapped around
// the first member before averaging.
func Center(members []*CellRecord, boxSize float64) geom.Vec3 {
	if len(members) == 0 {
		return geom.Vec3{}
	}
	ref := members[0].Site
	var sum geom.Vec3
	var wsum float64
	for _, c := range members {
		p := ref.Add(cosmo.MinImage(ref, c.Site, boxSize))
		sum = sum.Add(p.Scale(c.Volume))
		wsum += c.Volume
	}
	if wsum == 0 {
		return cosmo.Wrap(ref, boxSize)
	}
	return cosmo.Wrap(sum.Scale(1/wsum), boxSize)
}

// ProfileBin is one shell of a stacked void density profile.
type ProfileBin struct {
	// R is the bin center radius.
	R float64
	// Density is the mean particle number density in the shell, in units
	// of the box mean (1 = mean density; voids read below 1 at the center
	// and approach or overshoot 1 at the walls).
	Density float64
	// Count is the number of particles accumulated over all stacked voids.
	Count int64
}

// StackedProfile measures the spherically averaged density profile around
// the given centers, stacked: the standard void statistic (density rises
// from a deep minimum at the center toward the compensation wall). rmax
// must not exceed half the box.
func StackedProfile(particles []geom.Vec3, centers []geom.Vec3, boxSize, rmax float64, bins int) ([]ProfileBin, error) {
	if len(particles) == 0 || len(centers) == 0 {
		return nil, fmt.Errorf("voids: need particles and centers")
	}
	if rmax <= 0 || rmax > boxSize/2 {
		return nil, fmt.Errorf("voids: rmax %g must be in (0, box/2]", rmax)
	}
	if bins <= 0 {
		return nil, fmt.Errorf("voids: bins %d", bins)
	}
	counts := make([]int64, bins)
	for _, c := range centers {
		for _, p := range particles {
			d := cosmo.MinImage(c, p, boxSize).Norm()
			if d >= rmax {
				continue
			}
			bi := int(d / rmax * float64(bins))
			if bi >= bins {
				bi = bins - 1
			}
			counts[bi]++
		}
	}
	meanDensity := float64(len(particles)) / (boxSize * boxSize * boxSize)
	dr := rmax / float64(bins)
	out := make([]ProfileBin, bins)
	for i := 0; i < bins; i++ {
		r1 := float64(i) * dr
		r2 := r1 + dr
		shellVol := 4 * math.Pi / 3 * (r2*r2*r2 - r1*r1*r1) * float64(len(centers))
		out[i] = ProfileBin{R: r1 + dr/2, Count: counts[i]}
		if shellVol > 0 {
			out[i].Density = float64(counts[i]) / shellVol / meanDensity
		}
	}
	return out, nil
}

// ComponentCenters returns the void centers of the given components,
// resolving member IDs through the full record set.
func ComponentCenters(comps []Component, recs []CellRecord, boxSize float64) []geom.Vec3 {
	byID := make(map[int64]*CellRecord, len(recs))
	for i := range recs {
		byID[recs[i].ID] = &recs[i]
	}
	out := make([]geom.Vec3, 0, len(comps))
	for _, c := range comps {
		var members []*CellRecord
		for _, id := range c.CellIDs {
			if r, ok := byID[id]; ok {
				members = append(members, r)
			}
		}
		out = append(out, Center(members, boxSize))
	}
	return out
}

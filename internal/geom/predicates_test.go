package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestOrient3DBasic(t *testing.T) {
	a, b, c := V(0, 0, 0), V(1, 0, 0), V(0, 1, 0)
	if got := Orient3D(a, b, c, V(0, 0, 1)); got != 1 {
		t.Errorf("above plane: Orient3D = %d, want 1", got)
	}
	if got := Orient3D(a, b, c, V(0, 0, -1)); got != -1 {
		t.Errorf("below plane: Orient3D = %d, want -1", got)
	}
	if got := Orient3D(a, b, c, V(0.3, 0.3, 0)); got != 0 {
		t.Errorf("coplanar: Orient3D = %d, want 0", got)
	}
}

func TestOrient3DAntisymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 500; i++ {
		a := randVec(rng, 10)
		b := randVec(rng, 10)
		c := randVec(rng, 10)
		d := randVec(rng, 10)
		// Swapping two arguments flips the sign.
		if Orient3D(a, b, c, d) != -Orient3D(b, a, c, d) {
			t.Fatalf("swap did not flip sign for %v %v %v %v", a, b, c, d)
		}
	}
}

func randVec(rng *rand.Rand, s float64) Vec3 {
	return V(rng.Float64()*s, rng.Float64()*s, rng.Float64()*s)
}

func TestInSphereBasic(t *testing.T) {
	// Unit tetrahedron, positively oriented.
	a, b, c, d := V(0, 0, 0), V(1, 0, 0), V(0, 1, 0), V(0, 0, 1)
	if Orient3D(a, b, c, d) <= 0 {
		t.Fatal("test tetrahedron not positively oriented")
	}
	if got := InSphere(a, b, c, d, V(0.25, 0.25, 0.25)); got != 1 {
		t.Errorf("interior point: InSphere = %d, want 1", got)
	}
	if got := InSphere(a, b, c, d, V(10, 10, 10)); got != -1 {
		t.Errorf("distant point: InSphere = %d, want -1", got)
	}
	// A vertex of the tetrahedron is on the sphere.
	if got := InSphere(a, b, c, d, a); got != 0 {
		t.Errorf("vertex: InSphere = %d, want 0", got)
	}
}

func TestInSphereAgainstCircumcenter(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for i := 0; i < 2000 && checked < 500; i++ {
		a, b, c, d := randVec(rng, 1), randVec(rng, 1), randVec(rng, 1), randVec(rng, 1)
		if Orient3D(a, b, c, d) <= 0 {
			a, b = b, a
		}
		if Orient3D(a, b, c, d) <= 0 {
			continue
		}
		cc, ok := Circumcenter(a, b, c, d)
		if !ok {
			continue
		}
		r := cc.Dist(a)
		e := randVec(rng, 1)
		de := cc.Dist(e)
		if math.Abs(de-r) < 1e-6*math.Max(r, 1) {
			continue // too close to the sphere to trust either method
		}
		want := -1
		if de < r {
			want = 1
		}
		if got := InSphere(a, b, c, d, e); got != want {
			t.Fatalf("InSphere=%d, circumcenter says %d (r=%v de=%v)", got, want, r, de)
		}
		checked++
	}
	if checked < 100 {
		t.Fatalf("too few valid cases checked: %d", checked)
	}
}

func TestCircumcenterEquidistant(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		a, b, c, d := randVec(rng, 5), randVec(rng, 5), randVec(rng, 5), randVec(rng, 5)
		cc, ok := Circumcenter(a, b, c, d)
		if !ok {
			continue
		}
		r := cc.Dist(a)
		for _, p := range []Vec3{b, c, d} {
			if math.Abs(cc.Dist(p)-r) > 1e-6*math.Max(1, r) {
				t.Fatalf("circumcenter not equidistant: %v vs %v", cc.Dist(p), r)
			}
		}
	}
}

func TestCircumcenterDegenerate(t *testing.T) {
	// Four coplanar points have no finite circumsphere.
	if _, ok := Circumcenter(V(0, 0, 0), V(1, 0, 0), V(0, 1, 0), V(1, 1, 0)); ok {
		t.Error("coplanar circumcenter reported ok")
	}
}

func TestTetVolume(t *testing.T) {
	got := TetVolume(V(0, 0, 0), V(1, 0, 0), V(0, 1, 0), V(0, 0, 1))
	if !almostEq(got, 1.0/6, 1e-15) {
		t.Errorf("TetVolume = %v, want 1/6", got)
	}
	// Volume is permutation invariant in magnitude.
	if got2 := TetVolume(V(1, 0, 0), V(0, 0, 0), V(0, 1, 0), V(0, 0, 1)); !almostEq(got, got2, 1e-15) {
		t.Errorf("permutation changed volume: %v vs %v", got, got2)
	}
}

func TestTriangleAndPolygonArea(t *testing.T) {
	if got := TriangleArea(V(0, 0, 0), V(2, 0, 0), V(0, 2, 0)); got != 2 {
		t.Errorf("TriangleArea = %v, want 2", got)
	}
	square := []Vec3{V(0, 0, 0), V(1, 0, 0), V(1, 1, 0), V(0, 1, 0)}
	if got := PolygonArea(square); !almostEq(got, 1, 1e-15) {
		t.Errorf("PolygonArea = %v, want 1", got)
	}
	if got := PolygonArea(square[:2]); got != 0 {
		t.Errorf("degenerate PolygonArea = %v, want 0", got)
	}
}

func TestPolygonNormal(t *testing.T) {
	square := []Vec3{V(0, 0, 5), V(1, 0, 5), V(1, 1, 5), V(0, 1, 5)}
	n := PolygonNormal(square).Normalize()
	if !vecAlmostEq(n, V(0, 0, 1), 1e-12) {
		t.Errorf("PolygonNormal = %v", n)
	}
	// Newell normal magnitude is twice the area.
	if got := PolygonNormal(square).Norm() / 2; !almostEq(got, 1, 1e-12) {
		t.Errorf("Newell area = %v, want 1", got)
	}
}

func TestOrient3DScaleInvariance(t *testing.T) {
	// The sign must be stable across coordinate magnitudes (unit box vs
	// simulation box of hundreds of units).
	a, b, c, d := V(0, 0, 0), V(1, 0, 0), V(0, 1, 0), V(0.2, 0.2, 0.7)
	for _, s := range []float64{1e-3, 1, 128, 1e6} {
		if got := Orient3D(a.Scale(s), b.Scale(s), c.Scale(s), d.Scale(s)); got != 1 {
			t.Errorf("scale %g: Orient3D = %d, want 1", s, got)
		}
	}
}

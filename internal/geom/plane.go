package geom

import "math"

// Plane is an oriented plane in Hessian-like form: the set of points x with
// N.Dot(x) + D == 0. N need not be unit length; signed "distances" returned
// by Eval are scaled by |N| accordingly. Callers that need metric distances
// should construct planes with unit normals (see NewPlane).
type Plane struct {
	N Vec3    // normal
	D float64 // offset
}

// NewPlane returns the plane through point p with unit normal in the
// direction of n.
func NewPlane(n, p Vec3) Plane {
	u := n.Normalize()
	return Plane{N: u, D: -u.Dot(p)}
}

// PlaneFromPoints returns the plane through three points with normal
// (b-a) x (c-a), normalized. Degenerate (collinear) triples yield a plane
// with zero normal; callers should check Degenerate.
func PlaneFromPoints(a, b, c Vec3) Plane {
	n := b.Sub(a).Cross(c.Sub(a))
	ln := n.Norm()
	if ln == 0 {
		return Plane{}
	}
	n = n.Scale(1 / ln)
	return Plane{N: n, D: -n.Dot(a)}
}

// Bisector returns the perpendicular bisector plane between points a and b,
// oriented so that a is on the negative side (Eval(a) < 0) and b on the
// positive side. This is the half-space orientation used for Voronoi cell
// clipping: the cell of a keeps the region where Eval <= 0.
func Bisector(a, b Vec3) Plane {
	n := b.Sub(a).Normalize()
	m := a.Mid(b)
	return Plane{N: n, D: -n.Dot(m)}
}

// Eval returns the signed distance of p from the plane (exact metric distance
// when N is unit length, which holds for all constructors in this package).
func (pl Plane) Eval(p Vec3) float64 {
	return pl.N.Dot(p) + pl.D
}

// Degenerate reports whether the plane has an (effectively) zero normal.
func (pl Plane) Degenerate() bool {
	return pl.N.Norm2() < 1e-300
}

// Flip returns the plane with reversed orientation.
func (pl Plane) Flip() Plane {
	return Plane{N: pl.N.Neg(), D: -pl.D}
}

// Project returns the orthogonal projection of p onto the plane.
func (pl Plane) Project(p Vec3) Vec3 {
	return p.Sub(pl.N.Scale(pl.Eval(p)))
}

// SegmentCross returns the parameter t in [0,1] at which the segment a->b
// crosses the plane, and true, if the endpoints are strictly on opposite
// sides; otherwise it returns 0, false.
func (pl Plane) SegmentCross(a, b Vec3) (float64, bool) {
	da, db := pl.Eval(a), pl.Eval(b)
	if da == 0 || db == 0 || (da > 0) == (db > 0) {
		return 0, false
	}
	denom := da - db
	if denom == 0 {
		return 0, false
	}
	t := da / denom
	if math.IsNaN(t) || t < 0 || t > 1 {
		return 0, false
	}
	return t, true
}

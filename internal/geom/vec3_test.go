package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func vecAlmostEq(a, b Vec3, tol float64) bool {
	return a.Sub(b).MaxAbs() <= tol
}

func TestVecArithmetic(t *testing.T) {
	a := V(1, 2, 3)
	b := V(-4, 5, 0.5)
	if got := a.Add(b); got != V(-3, 7, 3.5) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(5, -3, 2.5) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Neg(); got != V(-1, -2, -3) {
		t.Errorf("Neg = %v", got)
	}
	if got := a.Dot(b); got != -4+10+1.5 {
		t.Errorf("Dot = %v", got)
	}
}

func TestCrossOrthogonality(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := V(ax, ay, az), V(bx, by, bz)
		c := a.Cross(b)
		scale := a.Norm() * b.Norm()
		if scale == 0 || math.IsInf(scale, 0) || math.IsNaN(scale) {
			return true
		}
		return math.Abs(c.Dot(a)) <= 1e-9*scale*c.Norm()/math.Max(c.Norm(), 1) &&
			math.Abs(c.Dot(b)) <= 1e-9*scale*math.Max(c.Norm(), 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestCrossBasis(t *testing.T) {
	x, y, z := V(1, 0, 0), V(0, 1, 0), V(0, 0, 1)
	if x.Cross(y) != z {
		t.Errorf("x cross y = %v, want z", x.Cross(y))
	}
	if y.Cross(z) != x {
		t.Errorf("y cross z = %v, want x", y.Cross(z))
	}
	if z.Cross(x) != y {
		t.Errorf("z cross x = %v, want y", z.Cross(x))
	}
}

func TestNormAndDist(t *testing.T) {
	if got := V(3, 4, 0).Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := V(1, 1, 1).Norm2(); got != 3 {
		t.Errorf("Norm2 = %v, want 3", got)
	}
	if got := V(1, 0, 0).Dist(V(1, 3, 4)); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
}

func TestNormalize(t *testing.T) {
	v := V(0, -7, 0).Normalize()
	if v != V(0, -1, 0) {
		t.Errorf("Normalize = %v", v)
	}
	if z := (Vec3{}).Normalize(); z != (Vec3{}) {
		t.Errorf("Normalize zero = %v", z)
	}
	f := func(x, y, z float64) bool {
		v := V(x, y, z)
		if !v.IsFinite() || v.Norm() == 0 || v.Norm() > 1e150 {
			return true
		}
		return almostEq(v.Normalize().Norm(), 1, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

func TestMidLerp(t *testing.T) {
	a, b := V(0, 0, 0), V(2, 4, 6)
	if got := a.Mid(b); got != V(1, 2, 3) {
		t.Errorf("Mid = %v", got)
	}
	if got := a.Lerp(b, 0.25); got != V(0.5, 1, 1.5) {
		t.Errorf("Lerp = %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
}

func TestComponentAccess(t *testing.T) {
	v := V(7, 8, 9)
	for i, want := range []float64{7, 8, 9} {
		if got := v.Component(i); got != want {
			t.Errorf("Component(%d) = %v, want %v", i, got, want)
		}
	}
	if got := v.SetComponent(1, -1); got != V(7, -1, 9) {
		t.Errorf("SetComponent = %v", got)
	}
	if v != V(7, 8, 9) {
		t.Errorf("SetComponent mutated receiver: %v", v)
	}
}

func TestMaxAbs(t *testing.T) {
	if got := V(-5, 2, 3).MaxAbs(); got != 5 {
		t.Errorf("MaxAbs = %v", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !V(1, 2, 3).IsFinite() {
		t.Error("finite vector reported as non-finite")
	}
	if V(math.NaN(), 0, 0).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if V(0, math.Inf(1), 0).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestCentroid(t *testing.T) {
	pts := []Vec3{V(0, 0, 0), V(2, 0, 0), V(0, 2, 0), V(0, 0, 2)}
	if got := Centroid(pts); got != V(0.5, 0.5, 0.5) {
		t.Errorf("Centroid = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Centroid of empty set did not panic")
		}
	}()
	Centroid(nil)
}

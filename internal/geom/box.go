package geom

import "math"

// Box is an axis-aligned box [Min, Max] in R^3. A Box with any
// Min component greater than the corresponding Max component is empty.
type Box struct {
	Min, Max Vec3
}

// NewBox returns the box spanning the two corner points in any order.
func NewBox(a, b Vec3) Box {
	return Box{
		Min: Vec3{math.Min(a.X, b.X), math.Min(a.Y, b.Y), math.Min(a.Z, b.Z)},
		Max: Vec3{math.Max(a.X, b.X), math.Max(a.Y, b.Y), math.Max(a.Z, b.Z)},
	}
}

// Cube returns the axis-aligned cube centered at c with half-width h.
func Cube(c Vec3, h float64) Box {
	d := Vec3{h, h, h}
	return Box{Min: c.Sub(d), Max: c.Add(d)}
}

// BoundingBox returns the smallest box containing all points. It panics on
// an empty point set.
func BoundingBox(pts []Vec3) Box {
	if len(pts) == 0 {
		panic("geom: BoundingBox of empty point set")
	}
	b := Box{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		b = b.ExtendPoint(p)
	}
	return b
}

// Size returns the edge lengths of the box.
func (b Box) Size() Vec3 { return b.Max.Sub(b.Min) }

// Center returns the box center.
func (b Box) Center() Vec3 { return b.Min.Mid(b.Max) }

// Volume returns the box volume (0 for empty boxes).
func (b Box) Volume() float64 {
	s := b.Size()
	if s.X < 0 || s.Y < 0 || s.Z < 0 {
		return 0
	}
	return s.X * s.Y * s.Z
}

// Empty reports whether the box contains no points.
func (b Box) Empty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}

// Contains reports whether p lies inside or on the boundary of b.
func (b Box) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// ContainsOpen reports whether p lies strictly inside b.
func (b Box) ContainsOpen(p Vec3) bool {
	return p.X > b.Min.X && p.X < b.Max.X &&
		p.Y > b.Min.Y && p.Y < b.Max.Y &&
		p.Z > b.Min.Z && p.Z < b.Max.Z
}

// ExtendPoint returns the smallest box containing b and p.
func (b Box) ExtendPoint(p Vec3) Box {
	return Box{
		Min: Vec3{math.Min(b.Min.X, p.X), math.Min(b.Min.Y, p.Y), math.Min(b.Min.Z, p.Z)},
		Max: Vec3{math.Max(b.Max.X, p.X), math.Max(b.Max.Y, p.Y), math.Max(b.Max.Z, p.Z)},
	}
}

// Expand returns the box grown by d on every side (shrunk if d < 0).
func (b Box) Expand(d float64) Box {
	e := Vec3{d, d, d}
	return Box{Min: b.Min.Sub(e), Max: b.Max.Add(e)}
}

// Intersect returns the intersection of b and o (possibly empty).
func (b Box) Intersect(o Box) Box {
	return Box{
		Min: Vec3{math.Max(b.Min.X, o.Min.X), math.Max(b.Min.Y, o.Min.Y), math.Max(b.Min.Z, o.Min.Z)},
		Max: Vec3{math.Min(b.Max.X, o.Max.X), math.Min(b.Max.Y, o.Max.Y), math.Min(b.Max.Z, o.Max.Z)},
	}
}

// Overlaps reports whether the closed boxes b and o share any point.
func (b Box) Overlaps(o Box) bool {
	return !b.Intersect(o).Empty()
}

// Corners returns the eight corners of the box.
func (b Box) Corners() [8]Vec3 {
	return [8]Vec3{
		{b.Min.X, b.Min.Y, b.Min.Z},
		{b.Max.X, b.Min.Y, b.Min.Z},
		{b.Max.X, b.Max.Y, b.Min.Z},
		{b.Min.X, b.Max.Y, b.Min.Z},
		{b.Min.X, b.Min.Y, b.Max.Z},
		{b.Max.X, b.Min.Y, b.Max.Z},
		{b.Max.X, b.Max.Y, b.Max.Z},
		{b.Min.X, b.Max.Y, b.Max.Z},
	}
}

// Dist2 returns the squared distance from p to the closest point of b
// (0 when p is inside).
func (b Box) Dist2(p Vec3) float64 {
	var d2 float64
	for i := 0; i < 3; i++ {
		c := p.Component(i)
		lo, hi := b.Min.Component(i), b.Max.Component(i)
		if c < lo {
			d2 += (lo - c) * (lo - c)
		} else if c > hi {
			d2 += (c - hi) * (c - hi)
		}
	}
	return d2
}

// InteriorDist returns the minimum distance from p to any face of b when p
// is inside the box; for points outside it returns a negative value whose
// magnitude is the Chebyshev penetration distance outside the box.
func (b Box) InteriorDist(p Vec3) float64 {
	d := math.Inf(1)
	for i := 0; i < 3; i++ {
		c := p.Component(i)
		d = math.Min(d, c-b.Min.Component(i))
		d = math.Min(d, b.Max.Component(i)-c)
	}
	return d
}

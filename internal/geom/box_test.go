package geom

import (
	"math/rand"
	"testing"
)

func TestNewBoxOrdersCorners(t *testing.T) {
	b := NewBox(V(3, -1, 2), V(0, 4, -5))
	if b.Min != V(0, -1, -5) || b.Max != V(3, 4, 2) {
		t.Errorf("NewBox = %+v", b)
	}
}

func TestCube(t *testing.T) {
	b := Cube(V(1, 1, 1), 2)
	if b.Min != V(-1, -1, -1) || b.Max != V(3, 3, 3) {
		t.Errorf("Cube = %+v", b)
	}
	if b.Volume() != 64 {
		t.Errorf("Volume = %v", b.Volume())
	}
}

func TestBoundingBox(t *testing.T) {
	pts := []Vec3{V(1, 2, 3), V(-1, 5, 0), V(2, 2, 2)}
	b := BoundingBox(pts)
	if b.Min != V(-1, 2, 0) || b.Max != V(2, 5, 3) {
		t.Errorf("BoundingBox = %+v", b)
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("bounding box does not contain %v", p)
		}
	}
}

func TestBoxContains(t *testing.T) {
	b := NewBox(V(0, 0, 0), V(1, 1, 1))
	if !b.Contains(V(0, 0.5, 1)) {
		t.Error("boundary point should be contained")
	}
	if b.ContainsOpen(V(0, 0.5, 1)) {
		t.Error("boundary point should not be strictly inside")
	}
	if !b.ContainsOpen(V(0.5, 0.5, 0.5)) {
		t.Error("center should be strictly inside")
	}
	if b.Contains(V(1.0001, 0.5, 0.5)) {
		t.Error("outside point reported contained")
	}
}

func TestBoxIntersectOverlap(t *testing.T) {
	a := NewBox(V(0, 0, 0), V(2, 2, 2))
	b := NewBox(V(1, 1, 1), V(3, 3, 3))
	c := a.Intersect(b)
	if c.Min != V(1, 1, 1) || c.Max != V(2, 2, 2) {
		t.Errorf("Intersect = %+v", c)
	}
	if !a.Overlaps(b) {
		t.Error("overlapping boxes reported disjoint")
	}
	d := NewBox(V(5, 5, 5), V(6, 6, 6))
	if a.Overlaps(d) {
		t.Error("disjoint boxes reported overlapping")
	}
	if !a.Intersect(d).Empty() {
		t.Error("intersection of disjoint boxes should be empty")
	}
	if a.Intersect(d).Volume() != 0 {
		t.Error("empty box should have zero volume")
	}
}

func TestBoxExpand(t *testing.T) {
	b := NewBox(V(0, 0, 0), V(1, 1, 1)).Expand(0.5)
	if b.Min != V(-0.5, -0.5, -0.5) || b.Max != V(1.5, 1.5, 1.5) {
		t.Errorf("Expand = %+v", b)
	}
	if got := NewBox(V(0, 0, 0), V(1, 1, 1)).Expand(-0.6); !got.Empty() {
		t.Error("over-shrunk box should be empty")
	}
}

func TestBoxCorners(t *testing.T) {
	b := NewBox(V(0, 0, 0), V(1, 2, 3))
	seen := map[Vec3]bool{}
	for _, c := range b.Corners() {
		if !b.Contains(c) {
			t.Errorf("corner %v not contained", c)
		}
		seen[c] = true
	}
	if len(seen) != 8 {
		t.Errorf("expected 8 distinct corners, got %d", len(seen))
	}
}

func TestBoxDist2(t *testing.T) {
	b := NewBox(V(0, 0, 0), V(1, 1, 1))
	if d := b.Dist2(V(0.5, 0.5, 0.5)); d != 0 {
		t.Errorf("inside Dist2 = %v", d)
	}
	if d := b.Dist2(V(2, 0.5, 0.5)); d != 1 {
		t.Errorf("face Dist2 = %v, want 1", d)
	}
	if d := b.Dist2(V(2, 2, 2)); d != 3 {
		t.Errorf("corner Dist2 = %v, want 3", d)
	}
}

func TestInteriorDist(t *testing.T) {
	b := NewBox(V(0, 0, 0), V(10, 10, 10))
	if d := b.InteriorDist(V(3, 5, 5)); d != 3 {
		t.Errorf("InteriorDist = %v, want 3", d)
	}
	if d := b.InteriorDist(V(-2, 5, 5)); d != -2 {
		t.Errorf("outside InteriorDist = %v, want -2", d)
	}
}

func TestBoxDist2LowerBoundsPointDist(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := NewBox(V(0, 0, 0), V(1, 1, 1))
	for i := 0; i < 500; i++ {
		p := V(rng.Float64()*4-2, rng.Float64()*4-2, rng.Float64()*4-2)
		q := V(rng.Float64(), rng.Float64(), rng.Float64()) // inside b
		if b.Dist2(p) > p.Dist2(q)+1e-12 {
			t.Fatalf("Dist2(%v)=%v exceeds distance to interior point %v (%v)",
				p, b.Dist2(p), q, p.Dist2(q))
		}
	}
}

package geom

import "math"

// The predicates below use scaled-epsilon filters: the raw determinant is
// compared against a tolerance proportional to a bound on its roundoff
// error, derived from the magnitude of the operands. Values within the
// tolerance are reported as zero (degenerate). This is not exact arithmetic,
// but for the perturbed lattice and random inputs used throughout this
// repository it is robust in practice, and all downstream algorithms treat
// the zero case conservatively.

const epsUnit = 1e-12

// Orient3D returns +1 if d lies on the positive side of the plane through
// a, b, c (counterclockwise when viewed from the positive side), -1 if on
// the negative side, and 0 if the four points are coplanar within tolerance.
func Orient3D(a, b, c, d Vec3) int {
	ba, ca, da := b.Sub(a), c.Sub(a), d.Sub(a)
	det := det3(ba, ca, da)

	// Permanent-style error bound: sum of absolute values of the terms.
	perm := permDet3(ba, ca, da)
	tol := epsUnit * perm
	switch {
	case det > tol:
		return 1
	case det < -tol:
		return -1
	default:
		return 0
	}
}

// Orient3DVal returns the raw signed 6x(volume of tetrahedron abcd)
// determinant (b-a) x (c-a) . (d-a) without the tolerance filter. It is
// positive exactly when Orient3D would report +1 on well-separated inputs.
func Orient3DVal(a, b, c, d Vec3) float64 {
	return det3(b.Sub(a), c.Sub(a), d.Sub(a))
}

// InSphere returns +1 if point e lies strictly inside the circumsphere of
// the positively oriented tetrahedron (a,b,c,d), -1 if strictly outside,
// and 0 if on the sphere within tolerance. The tetrahedron must satisfy
// Orient3D(a,b,c,d) > 0; callers are responsible for orientation.
func InSphere(a, b, c, d, e Vec3) int {
	ae, be, ce, de := a.Sub(e), b.Sub(e), c.Sub(e), d.Sub(e)
	a2, b2, c2, d2 := ae.Norm2(), be.Norm2(), ce.Norm2(), de.Norm2()

	// 4x4 determinant | ae a2; be b2; ce c2; de d2 | expanded along the
	// last column.
	det := a2*det3(be, ce, de) - b2*det3(ae, ce, de) +
		c2*det3(ae, be, de) - d2*det3(ae, be, ce)

	perm := a2*permDet3(be, ce, de) + b2*permDet3(ae, ce, de) +
		c2*permDet3(ae, be, de) + d2*permDet3(ae, be, ce)
	tol := epsUnit * perm
	switch {
	case det > tol:
		return 1
	case det < -tol:
		return -1
	default:
		return 0
	}
}

func det3(u, v, w Vec3) float64 {
	return u.X*(v.Y*w.Z-v.Z*w.Y) - u.Y*(v.X*w.Z-v.Z*w.X) + u.Z*(v.X*w.Y-v.Y*w.X)
}

func permDet3(u, v, w Vec3) float64 {
	return math.Abs(u.X)*(math.Abs(v.Y)*math.Abs(w.Z)+math.Abs(v.Z)*math.Abs(w.Y)) +
		math.Abs(u.Y)*(math.Abs(v.X)*math.Abs(w.Z)+math.Abs(v.Z)*math.Abs(w.X)) +
		math.Abs(u.Z)*(math.Abs(v.X)*math.Abs(w.Y)+math.Abs(v.Y)*math.Abs(w.X))
}

// Circumcenter returns the center of the sphere through the four points of
// a non-degenerate tetrahedron, and true; for a degenerate (near-coplanar)
// tetrahedron it returns the centroid and false.
func Circumcenter(a, b, c, d Vec3) (Vec3, bool) {
	// Solve 2*(p_i - a) . x = |p_i|^2 - |a|^2 for i in {b, c, d}, relative
	// to a for conditioning.
	ba, ca, da := b.Sub(a), c.Sub(a), d.Sub(a)
	den := 2 * det3(ba, ca, da)
	scale := ba.MaxAbs() * ca.MaxAbs() * da.MaxAbs()
	if math.Abs(den) <= 1e-14*scale || den == 0 {
		return Centroid([]Vec3{a, b, c, d}), false
	}
	b2, c2, d2 := ba.Norm2(), ca.Norm2(), da.Norm2()
	x := b2*(ca.Y*da.Z-ca.Z*da.Y) + c2*(da.Y*ba.Z-da.Z*ba.Y) + d2*(ba.Y*ca.Z-ba.Z*ca.Y)
	y := b2*(ca.Z*da.X-ca.X*da.Z) + c2*(da.Z*ba.X-da.X*ba.Z) + d2*(ba.Z*ca.X-ba.X*ca.Z)
	z := b2*(ca.X*da.Y-ca.Y*da.X) + c2*(da.X*ba.Y-da.Y*ba.X) + d2*(ba.X*ca.Y-ba.Y*ca.X)
	return a.Add(Vec3{x / den, y / den, z / den}), true
}

// TetVolume returns the (positive) volume of tetrahedron abcd.
func TetVolume(a, b, c, d Vec3) float64 {
	return math.Abs(Orient3DVal(a, b, c, d)) / 6
}

// TriangleArea returns the area of triangle abc.
func TriangleArea(a, b, c Vec3) float64 {
	return b.Sub(a).Cross(c.Sub(a)).Norm() / 2
}

// PolygonArea returns the area of a planar polygon given by its vertex loop.
// Non-planar loops give the area of the fan triangulation from the first
// vertex.
func PolygonArea(loop []Vec3) float64 {
	if len(loop) < 3 {
		return 0
	}
	var area float64
	for i := 1; i+1 < len(loop); i++ {
		area += TriangleArea(loop[0], loop[i], loop[i+1])
	}
	return area
}

// PolygonNormal returns the (unnormalized) Newell normal of a polygon loop.
func PolygonNormal(loop []Vec3) Vec3 {
	var n Vec3
	for i := range loop {
		p, q := loop[i], loop[(i+1)%len(loop)]
		n.X += (p.Y - q.Y) * (p.Z + q.Z)
		n.Y += (p.Z - q.Z) * (p.X + q.X)
		n.Z += (p.X - q.X) * (p.Y + q.Y)
	}
	return n
}

package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewPlane(t *testing.T) {
	pl := NewPlane(V(0, 0, 2), V(1, 1, 5))
	if !almostEq(pl.Eval(V(0, 0, 5)), 0, 1e-12) {
		t.Errorf("point on plane has Eval = %v", pl.Eval(V(0, 0, 5)))
	}
	if !almostEq(pl.Eval(V(3, -2, 8)), 3, 1e-12) {
		t.Errorf("Eval above plane = %v, want 3", pl.Eval(V(3, -2, 8)))
	}
}

func TestPlaneFromPoints(t *testing.T) {
	a, b, c := V(0, 0, 1), V(1, 0, 1), V(0, 1, 1)
	pl := PlaneFromPoints(a, b, c)
	if !vecAlmostEq(pl.N, V(0, 0, 1), 1e-12) {
		t.Errorf("normal = %v", pl.N)
	}
	for _, p := range []Vec3{a, b, c} {
		if !almostEq(pl.Eval(p), 0, 1e-12) {
			t.Errorf("defining point %v has Eval %v", p, pl.Eval(p))
		}
	}
	if !PlaneFromPoints(a, a, c).Degenerate() {
		t.Error("collinear points should yield degenerate plane")
	}
}

func TestBisectorOrientation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		a := V(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		b := V(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		if a.Dist(b) < 1e-9 {
			continue
		}
		pl := Bisector(a, b)
		if pl.Eval(a) >= 0 {
			t.Fatalf("a on wrong side: %v", pl.Eval(a))
		}
		if pl.Eval(b) <= 0 {
			t.Fatalf("b on wrong side: %v", pl.Eval(b))
		}
		m := a.Mid(b)
		if !almostEq(pl.Eval(m), 0, 1e-9) {
			t.Fatalf("midpoint not on bisector: %v", pl.Eval(m))
		}
		// Bisector property: equidistance for points on the plane.
		p := pl.Project(V(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10))
		if !almostEq(p.Dist(a), p.Dist(b), 1e-7) {
			t.Fatalf("projected point not equidistant: %v vs %v", p.Dist(a), p.Dist(b))
		}
	}
}

func TestPlaneFlip(t *testing.T) {
	pl := NewPlane(V(1, 0, 0), V(2, 0, 0))
	fl := pl.Flip()
	p := V(5, 1, 1)
	if !almostEq(pl.Eval(p), -fl.Eval(p), 1e-12) {
		t.Errorf("flip did not negate Eval: %v vs %v", pl.Eval(p), fl.Eval(p))
	}
}

func TestPlaneProject(t *testing.T) {
	pl := NewPlane(V(0, 1, 0), V(0, 3, 0))
	got := pl.Project(V(7, 10, -2))
	if !vecAlmostEq(got, V(7, 3, -2), 1e-12) {
		t.Errorf("Project = %v", got)
	}
}

func TestSegmentCross(t *testing.T) {
	pl := NewPlane(V(0, 0, 1), V(0, 0, 0))
	if tt, ok := pl.SegmentCross(V(0, 0, -1), V(0, 0, 3)); !ok || !almostEq(tt, 0.25, 1e-12) {
		t.Errorf("SegmentCross = %v, %v", tt, ok)
	}
	if _, ok := pl.SegmentCross(V(0, 0, 1), V(0, 0, 3)); ok {
		t.Error("segment on one side should not cross")
	}
	if _, ok := pl.SegmentCross(V(0, 0, -1), V(0, 0, -3)); ok {
		t.Error("segment on negative side should not cross")
	}
}

func TestSegmentCrossPointOnPlane(t *testing.T) {
	pl := NewPlane(V(0, 0, 1), V(0, 0, 0))
	// Endpoint exactly on the plane: Eval(a)=0 counts as non-positive side,
	// so a zero-crossing from 0 to positive is not "strictly opposite".
	if _, ok := pl.SegmentCross(V(0, 0, 0), V(0, 0, 1)); ok {
		t.Error("endpoint-on-plane treated as strict crossing")
	}
}

func TestPlaneEvalIsMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		n := V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		if n.Norm() < 1e-6 {
			continue
		}
		p0 := V(rng.Float64(), rng.Float64(), rng.Float64())
		pl := NewPlane(n, p0)
		d := rng.Float64()*4 - 2
		p := p0.Add(n.Normalize().Scale(d))
		if math.Abs(pl.Eval(p)-d) > 1e-9 {
			t.Fatalf("Eval = %v, want %v", pl.Eval(p), d)
		}
	}
}

// Package geom provides the low-level 3D geometry kernel used by the
// tessellation stack: vectors, planes, axis-aligned boxes, and the robust-ish
// floating-point predicates (orientation, insphere, circumcenter) that the
// convex hull, Delaunay, and Voronoi packages are built on.
//
// All coordinates are float64. Predicates use an epsilon-scaled filter rather
// than exact arithmetic; the tolerance scales with the magnitude of the
// operands so that the same code is usable for unit boxes and for
// simulation-box coordinates in the hundreds of Mpc/h.
//
//tess:hotpath
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a point or vector in R^3.
type Vec3 struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Dot returns the scalar product v . w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the vector product v x w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Dist2 returns the squared Euclidean distance between v and w.
func (v Vec3) Dist2(w Vec3) float64 { return v.Sub(w).Norm2() }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Mid returns the midpoint of v and w.
func (v Vec3) Mid(w Vec3) Vec3 {
	return Vec3{(v.X + w.X) / 2, (v.Y + w.Y) / 2, (v.Z + w.Z) / 2}
}

// Lerp returns v + t*(w-v).
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{v.X + t*(w.X-v.X), v.Y + t*(w.Y-v.Y), v.Z + t*(w.Z-v.Z)}
}

// MaxAbs returns the largest absolute component of v.
func (v Vec3) MaxAbs() float64 {
	return math.Max(math.Abs(v.X), math.Max(math.Abs(v.Y), math.Abs(v.Z)))
}

// Component returns component i (0=X, 1=Y, 2=Z).
func (v Vec3) Component(i int) float64 {
	switch i {
	case 0:
		return v.X
	case 1:
		return v.Y
	default:
		return v.Z
	}
}

// SetComponent returns a copy of v with component i set to x.
func (v Vec3) SetComponent(i int, x float64) Vec3 {
	switch i {
	case 0:
		v.X = x
	case 1:
		v.Y = x
	default:
		v.Z = x
	}
	return v
}

// IsFinite reports whether all components are finite numbers.
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// String implements fmt.Stringer.
func (v Vec3) String() string {
	return fmt.Sprintf("(%g, %g, %g)", v.X, v.Y, v.Z)
}

// Centroid returns the arithmetic mean of the given points. It panics if
// pts is empty.
func Centroid(pts []Vec3) Vec3 {
	if len(pts) == 0 {
		panic("geom: Centroid of empty point set")
	}
	var c Vec3
	for _, p := range pts {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pts)))
}

// Package core implements tess, the paper's contribution: a distributed
// parallel 3D Voronoi tessellation that runs standalone or in situ with an
// N-body simulation. The per-rank pipeline follows Figure 5 of the paper:
//
//  1. exchange particles with the 26-neighborhood within the ghost distance
//     (bidirectional, targeted, with periodic boundary transforms);
//  2. compute local Voronoi cells;
//  3. (a) keep only cells sited at original particles — automatic here,
//     because cells are built per local site; (b) delete incomplete cells;
//     (c) delete cells safely below the volume threshold using a cheap
//     circumscribing-sphere bound; (d) order cell vertices into faces and
//     compute volume and surface area (optionally re-deriving them through
//     the Quickhull engine, the paper's step); (e) delete any other cells
//     outside the volume thresholds;
//  4. write local sites and cells collectively to storage.
//
// Each phase is timed separately, which is what populates Table II and the
// scaling study of Figure 10.
package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/comm"
	"repro/internal/diy"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/meshio"
	"repro/internal/obs"
	"repro/internal/qhull"
	"repro/internal/voronoi"
)

// DecompKind selects how the domain is split into blocks.
type DecompKind int

const (
	// DecomposeRegular is the paper's regular grid: equal-volume blocks in
	// a near-cubic arrangement. Simple and decomposition-state-free, but
	// on clustered particle sets the halo-heavy blocks dominate the
	// compute phase.
	DecomposeRegular DecompKind = iota
	// DecomposeRCB splits the domain by recursive coordinate bisection at
	// particle-count medians, so every block holds ~equal particle counts
	// (PARAVT's load-balancing strategy). The decomposition is built from
	// the particle positions of the run (for a Session, of its first step,
	// and rebuilt on rebalance); output is byte-identical to the regular
	// grid after meshio.MergeCanonical.
	DecomposeRCB
)

// Config controls one tessellation pass.
type Config struct {
	// Domain is the global simulation box.
	Domain geom.Box
	// Periodic selects periodic boundary conditions (the cosmology case).
	Periodic bool
	// Decomposition selects the block decomposition strategy (default
	// DecomposeRegular).
	Decomposition DecompKind
	// RebalanceThreshold arms warm re-decomposition for Sessions using
	// DecomposeRCB: after each step the per-rank compute-phase times yield
	// an imbalance ratio (slowest rank over mean), and when the ratio
	// exceeds this threshold the next step rebuilds the decomposition from
	// its particle positions while retaining scratch, pool, and recorder
	// state. 0 (or a regular decomposition) disables rebalancing.
	RebalanceThreshold float64
	// GhostSize is the ghost-region thickness exchanged with neighbors, in
	// the same units as the domain. The paper recommends at least twice the
	// expected cell size.
	GhostSize float64
	// MinVolume culls cells below this volume; 0 keeps everything.
	MinVolume float64
	// MaxVolume culls cells above this volume; 0 means no upper cut.
	MaxVolume float64
	// KeepIncomplete retains cells that could not be proven correct
	// (normally they are deleted, per step 3b); the accuracy study keeps
	// them to measure how wrong they are.
	KeepIncomplete bool
	// HullPass re-derives each kept cell's volume and area through the
	// Quickhull engine, mirroring the paper's use of Qhull to order cell
	// vertices and compute geometry. It is also the cross-check that the
	// two geometry engines agree.
	HullPass bool
	// OutputPath, when non-empty, writes all blocks to this single file
	// through the collective I/O layer.
	OutputPath string
	// CheckpointDir, when non-empty, is where Session.Checkpoint (and the
	// per-step auto-checkpoint armed by a positive StepOpts.CheckpointEvery)
	// persists session state for ResumeSession.
	CheckpointDir string
	// LabelVoids also labels connected components of cells above
	// VoidThreshold in situ, right after the tessellation (the paper's
	// Sec. V: "we plan to label connected components automatically in situ
	// as well"). Results appear in Output.Voids.
	LabelVoids bool
	// VoidThreshold is the minimum cell volume for void membership when
	// LabelVoids is set; 0 uses the mean cell volume.
	VoidThreshold float64
	// Workers is the number of intra-rank worker goroutines the compute
	// phase fans cell construction out over. 0 (the default) divides the
	// worker budget fairly among every concurrently-running rank — of this
	// pipeline and of every other pipeline sharing the budget — so a full
	// parallel run neither oversubscribes nor idles cores. Results are
	// identical for every worker count.
	Workers int
	// Budget is the shared worker budget this pipeline draws its default
	// worker count from. nil uses the process-wide SharedWorkerBudget, so
	// concurrent sessions (a multi-tenant daemon's jobs, or two plain Runs
	// racing) divide GOMAXPROCS instead of each assuming it owns the
	// machine. An explicit Workers setting bypasses the budget.
	Budget *WorkerBudget
	// Recorder, when non-nil, collects per-rank phase spans, comm counters,
	// and pipeline metrics for this pass (build one with
	// obs.NewRecorder(numBlocks)). The snapshot lands in Output.Obs and can
	// be exported as a Chrome trace. A nil recorder costs one pointer test
	// per phase; results are identical either way.
	Recorder *obs.Recorder
	// StallTimeout, when positive, arms the communication stall watchdog:
	// if every rank is blocked in a comm operation (or has exited) with no
	// progress for this long, the run aborts with a wait-for-graph
	// diagnostic (comm.StallError) instead of hanging. 0 disables the
	// watchdog; disabled it costs one pointer test per comm operation.
	StallTimeout time.Duration
	// Faults, when non-nil with an enabled plan, arms the deterministic
	// fault-injection layer (see internal/faultinject): seeded per-rank
	// compute slowdowns, message delivery delays, and rank
	// crash-at-step-N. Injected crashes surface as a comm.RankError from
	// the driver; delay-only plans leave results byte-identical to a
	// fault-free run.
	Faults *faultinject.Plan

	// injector is the plan materialized once per driver run and shared by
	// its ranks; TessellateBlock falls back to materializing its own when
	// driven directly (per-rank state keeps that deterministic too).
	injector *faultinject.Injector
}

// Names of the registered pipeline counters in Config.Recorder.
const (
	CounterGhosts    = "ghosts-recvd"
	CounterCellsKept = "cells-kept"
	CounterSites     = "sites"
)

// registerCounters resolves the pipeline counter IDs (idempotent; see
// obs.RegisterCounter).
func registerCounters(rec *obs.Recorder) (ghosts, kept, sites obs.CounterID) {
	return rec.RegisterCounter(CounterGhosts),
		rec.RegisterCounter(CounterCellsKept),
		rec.RegisterCounter(CounterSites)
}

// EffectiveWorkers resolves cfg.Workers for a run with concurrentRanks
// ranks executing at once: an explicit positive setting wins; otherwise
// the worker budget (cfg.Budget, or the process-wide shared budget) is
// divided fairly among every active rank — at least this pipeline's own
// concurrentRanks, plus the ranks of every other registered pipeline —
// never below one worker each. With a single pipeline this is the classic
// GOMAXPROCS / concurrentRanks division; with N concurrent sessions the
// machine is shared instead of oversubscribed N-fold. Sequential drivers
// like RunTimed pass concurrentRanks == 1 and so give each rank's compute
// phase the whole machine.
func EffectiveWorkers(cfg Config, concurrentRanks int) int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	b := cfg.Budget
	if b == nil {
		b = sharedBudget
	}
	return b.WorkersPerRank(concurrentRanks)
}

// Timing is the per-phase wall time of one tessellation pass, reduced to
// the slowest rank (the number a batch scheduler would observe).
type Timing struct {
	Exchange time.Duration
	Compute  time.Duration
	Output   time.Duration
	Total    time.Duration
	// OutputBytes is the total file size written (0 if no output).
	OutputBytes int64
}

// CellCounts tracks the fate of cells through the pipeline, summed over
// ranks.
type CellCounts struct {
	Sites       int64 // local sites tessellated
	Incomplete  int64 // deleted as incomplete (or kept if KeepIncomplete)
	CulledEarly int64 // deleted by the conservative pre-hull bound
	CulledExact int64 // deleted after exact volume computation
	Kept        int64 // cells in the output
}

// BlockResult is one rank's tessellation output.
type BlockResult struct {
	Rank   int
	Mesh   *meshio.BlockMesh
	Counts CellCounts
	// Ghosts is the number of ghost particles received.
	Ghosts int
}

// ValidateGhost checks that the ghost size does not exceed what the
// decomposition's neighborhood links can reach. For a regular grid that is
// the smallest block side: the exchange only reaches the 26 adjacent
// blocks, so a ghost region wider than a block would silently miss
// particles two blocks away and break the completeness proof (the same
// constraint DIY's nearest-neighbor exchange has). An RCB decomposition
// carries its own precomputed link reach — its clustered leaves can be
// arbitrarily thin without losing correctness, so the block-side bound
// deliberately does not apply.
func ValidateGhost(d *diy.Decomposition, ghost float64) error {
	if ghost <= 0 {
		return nil
	}
	if m := MaxGhost(d); ghost > m+1e-12 {
		return fmt.Errorf("core: ghost size %g exceeds the decomposition's link reach %g "+
			"(use fewer blocks or a smaller ghost)", ghost, m)
	}
	return nil
}

// MaxGhost returns the largest valid ghost size for a decomposition: the
// smallest block side length for a regular grid, the built-in link reach
// for RCB.
func MaxGhost(d *diy.Decomposition) float64 {
	return d.GhostCapacity()
}

// decomposeFor builds the decomposition a run over numBlocks blocks needs:
// the regular grid ignores particles; RCB bisects their positions at
// particle-count medians with links sized for cfg.GhostSize.
func decomposeFor(cfg Config, numBlocks int, particles []diy.Particle) (*diy.Decomposition, error) {
	if cfg.Decomposition == DecomposeRCB {
		return diy.DecomposeRCB(cfg.Domain, numBlocks, cfg.Periodic, particles, cfg.GhostSize)
	}
	return diy.Decompose(cfg.Domain, numBlocks, cfg.Periodic)
}

// TessellateBlock runs the tess pipeline for one rank. All ranks of the
// world must call it collectively with the same cfg. local holds the rank's
// own particles (inside its block bounds).
func TessellateBlock(w *comm.World, d *diy.Decomposition, rank int, local []diy.Particle, cfg Config) (*BlockResult, Timing, error) {
	var tm Timing
	rec := cfg.Recorder
	inj := cfg.injector
	if inj == nil && cfg.Faults != nil && cfg.Faults.Enabled() {
		inj = faultinject.New(*cfg.Faults, w.Size())
	}
	start := time.Now()
	block := d.Block(rank)

	// Phase 1: neighborhood ghost exchange. The fault checkpoints number
	// the pipeline steps each rank passes (1 = entering the exchange,
	// 2 = entering compute, 3 = entering output, 4 = pass complete); an
	// injected crash-at-step-N panics at the matching checkpoint and the
	// containment layer in comm.World.Run turns it into a RankError.
	inj.Checkpoint(rank, "exchange")
	t0 := time.Now()
	sp := rec.Begin(rank, obs.PhaseExchange)
	ghosts := diy.ExchangeGhost(w, d, rank, local, cfg.GhostSize)
	rec.End(rank, sp)
	tm.Exchange = time.Since(t0)

	// Phase 2+3: ghost merge into the spatial index, then local cells,
	// completeness, culling, hull pass. Both sub-phases fall under the
	// paper's "computation" time; the recorder keeps them apart.
	inj.Checkpoint(rank, "compute")
	t0 = time.Now()
	sp = rec.Begin(rank, obs.PhaseGhostMerge)
	bi := mergeGhosts(block, local, ghosts, cfg)
	rec.End(rank, sp)
	sp = rec.Begin(rank, obs.PhaseCompute)
	res, err := computeIndexedCells(bi, local, cfg, EffectiveWorkers(cfg, w.Size()))
	if err != nil {
		return nil, tm, err
	}
	rec.End(rank, sp)
	res.Rank = rank
	tm.Compute = time.Since(t0)

	// Phase 4: collective write.
	inj.Checkpoint(rank, "output")
	t0 = time.Now()
	sp = rec.Begin(rank, obs.PhaseOutput)
	if cfg.OutputPath != "" {
		payload, err := res.Mesh.Encode()
		if err != nil {
			return nil, tm, fmt.Errorf("core: rank %d encode: %w", rank, err)
		}
		n, err := diy.CollectiveWrite(w, rank, cfg.OutputPath, payload)
		if err != nil {
			return nil, tm, err
		}
		if rank == 0 {
			tm.OutputBytes = n
		}
	}
	rec.End(rank, sp)
	tm.Output = time.Since(t0)
	tm.Total = time.Since(start)
	inj.Checkpoint(rank, "done")
	if rec != nil {
		ghostsID, keptID, sitesID := registerCounters(rec)
		rec.Count(rank, ghostsID, int64(res.Ghosts))
		rec.Count(rank, keptID, res.Counts.Kept)
		rec.Count(rank, sitesID, res.Counts.Sites)
	}
	return res, tm, nil
}

// blockIndex is the merged local+ghost view of one block: the spatial
// index the cell computation clips against, plus the initial clipping box
// every local site starts from.
type blockIndex struct {
	ix      *voronoi.Index
	initBox geom.Box
	bounds  geom.Box
	ghosts  int
}

// mergeGhosts is the ghost-merge sub-phase: it concatenates local and ghost
// particles (local first, so site order is preserved) and builds the
// spatial index the clipping kernel traverses.
func mergeGhosts(block diy.Block, local, ghosts []diy.Particle, cfg Config) *blockIndex {
	all := make([]geom.Vec3, 0, len(local)+len(ghosts))
	ids := make([]int64, 0, len(local)+len(ghosts))
	for _, p := range local {
		all = append(all, p.Pos)
		ids = append(ids, p.ID)
	}
	for _, p := range ghosts {
		all = append(all, p.Pos)
		ids = append(ids, p.ID)
	}
	return &blockIndex{
		ix:      voronoi.NewIndex(all, ids, 0),
		initBox: initialClipBox(block, cfg),
		bounds:  block.Bounds,
		ghosts:  len(ghosts),
	}
}

// initialClipBox is the starting clipping volume of every local site of a
// block: the block bounds grown by the ghost distance (or a relative
// epsilon when there is no ghost region, so sites on the bounds stay
// strictly inside).
func initialClipBox(block diy.Block, cfg Config) geom.Box {
	return block.Bounds.Expand(math.Max(cfg.GhostSize, 1e-9*block.Bounds.Size().MaxAbs()))
}

// computeBlockCells is the compute stage of one block: Voronoi cells for
// every local site against local+ghost particles, completeness filtering,
// the two-stage volume cull, and the optional hull pass. It is the
// ghost-merge and cell-compute sub-phases run back to back; drivers that
// time the sub-phases separately call mergeGhosts and computeIndexedCells
// themselves.
func computeBlockCells(block diy.Block, local, ghosts []diy.Particle, cfg Config, workers int) (*BlockResult, error) {
	return computeIndexedCells(mergeGhosts(block, local, ghosts, cfg), local, cfg, workers)
}

// computeIndexedCells runs the per-site cell pipeline over a merged block
// index with fresh (single-pass) buffers. See computeIndexedCellsIn.
func computeIndexedCells(bi *blockIndex, local []diy.Particle, cfg Config, workers int) (*BlockResult, error) {
	return computeIndexedCellsIn(bi, local, cfg, workers, new(computeBuffers))
}

// computeBuffers is the retained storage of the compute stage: per-worker
// scratch spaces and cell pools, the per-site result and error slots, and
// the mesh builder. A persistent session keeps one per rank so that at
// steady state the whole compute phase allocates only what the builder's
// arenas grow by; a fresh zero value gives the classic single-pass
// behavior.
type computeBuffers struct {
	scratches []*voronoi.Scratch
	pools     []*voronoi.CellPool
	cells     []*voronoi.Cell
	errs      []error
	wcounts   []CellCounts
	kept      []*voronoi.Cell
	mb        meshio.MeshBuilder
}

// ensure readies the buffers for a pass of n sites over workers workers:
// per-worker state is created on first use and pools are reset (recycling
// every cell handed out last pass), per-site slots are zeroed.
func (cb *computeBuffers) ensure(workers, n int) {
	for len(cb.scratches) < workers {
		cb.scratches = append(cb.scratches, voronoi.NewScratch())
		cb.pools = append(cb.pools, new(voronoi.CellPool))
	}
	for _, p := range cb.pools[:workers] {
		p.Reset()
	}
	cb.cells = resizeZeroed(cb.cells, n)
	cb.errs = resizeZeroed(cb.errs, n)
	cb.wcounts = resizeZeroed(cb.wcounts, workers)
	cb.kept = cb.kept[:0]
}

// resizeZeroed returns s resized to n elements, all zero, reusing the
// backing array when it is large enough.
func resizeZeroed[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// computeIndexedCellsIn runs the per-site cell pipeline over a merged block
// index. The per-site loop fans out over a pool of workers goroutines
// claiming chunks of the site range from an atomic cursor; every worker
// reuses its own voronoi.Scratch and detaches finished cells into its own
// CellPool, so the steady state of a retained cb allocates next to
// nothing. The result is independent of the worker count: cells land in
// per-site slots and are collected in site order, counts are accumulated
// per worker and summed, and each cell's arithmetic is untouched by the
// fan-out.
//
// The returned BlockResult is a loan against cb: its mesh (and the cells
// it was built from) are valid only until cb's next pass.
func computeIndexedCellsIn(bi *blockIndex, local []diy.Particle, cfg Config, workers int, cb *computeBuffers) (*BlockResult, error) {
	ix, initBox := bi.ix, bi.initBox

	// Early-cull diameter bound: a convex cell with diameter d has volume
	// at most that of the ball with diameter d (isodiametric inequality),
	// so any cell whose squared diameter is below diamCut2 is safely below
	// MinVolume. Comparing squared distances skips a per-cell sqrt.
	diamCut2 := 0.0
	if cfg.MinVolume > 0 {
		dc := math.Cbrt(6 * cfg.MinVolume / math.Pi)
		diamCut2 = dc * dc
	}

	n := len(local)
	workers = voronoi.PoolWorkers(workers, n)
	cb.ensure(workers, n)
	cells := cb.cells // per-site slot; nil = culled/deleted
	errs := cb.errs
	wcounts := cb.wcounts
	voronoi.ParallelFor(n, workers, func(lo, hi, w int) {
		s := cb.scratches[w]
		pool := cb.pools[w]
		counts := &wcounts[w]
		for i := lo; i < hi; i++ {
			p := local[i]
			cell, err := voronoi.ComputeCellPooled(ix, p.Pos, p.ID, initBox, s, pool)
			if err != nil {
				errs[i] = fmt.Errorf("core: cell for particle %d: %w", p.ID, err)
				continue
			}
			if !cell.Complete {
				counts.Incomplete++
				if !cfg.KeepIncomplete {
					continue
				}
			}
			// Step 3(c): conservative early cull before any exact geometry.
			if diamCut2 > 0 && cellDiameter2(cell) < diamCut2 {
				counts.CulledEarly++
				continue
			}
			vol := cell.Volume()
			if cfg.HullPass {
				// The paper's step 3(d): run the convex hull of the cell's
				// vertices to order faces and derive volume. The hull of a
				// convex cell's vertices is the cell itself, so this agrees
				// with the clipping-derived value (asserted by tests); it is
				// kept as a faithful cost model and a live cross-check.
				if h, err := qhull.Compute(cell.Verts); err == nil {
					vol = h.Volume()
				}
			}
			if cfg.MinVolume > 0 && vol < cfg.MinVolume {
				counts.CulledExact++
				continue
			}
			if cfg.MaxVolume > 0 && vol > cfg.MaxVolume {
				counts.CulledExact++
				continue
			}
			counts.Kept++
			cells[i] = cell
		}
	})
	for _, err := range errs { // first error by site index, like the serial loop
		if err != nil {
			return nil, err
		}
	}
	counts := CellCounts{Sites: int64(n)}
	for _, wc := range wcounts {
		counts.Incomplete += wc.Incomplete
		counts.CulledEarly += wc.CulledEarly
		counts.CulledExact += wc.CulledExact
		counts.Kept += wc.Kept
	}
	for _, c := range cells {
		if c != nil {
			cb.kept = append(cb.kept, c)
		}
	}
	mesh := cb.mb.Build(cb.kept, bi.bounds, 0)
	return &BlockResult{Mesh: mesh, Counts: counts, Ghosts: bi.ghosts}, nil
}

// cellDiameter2 returns the maximum squared pairwise vertex distance, for
// comparison against a squared cutoff without the sqrt.
func cellDiameter2(c *voronoi.Cell) float64 {
	var m float64
	for i := 0; i < len(c.Verts); i++ {
		for j := i + 1; j < len(c.Verts); j++ {
			m = math.Max(m, c.Verts[i].Dist2(c.Verts[j]))
		}
	}
	return m
}

// ReduceTiming combines per-rank timings into the slowest-rank view and
// sums output bytes.
func ReduceTiming(w *comm.World, rank int, tm Timing) Timing {
	out := Timing{
		Exchange:    comm.Allreduce(w, rank, tm.Exchange, comm.MaxDuration),
		Compute:     comm.Allreduce(w, rank, tm.Compute, comm.MaxDuration),
		Output:      comm.Allreduce(w, rank, tm.Output, comm.MaxDuration),
		Total:       comm.Allreduce(w, rank, tm.Total, comm.MaxDuration),
		OutputBytes: comm.Allreduce(w, rank, tm.OutputBytes, comm.SumInt64),
	}
	return out
}

// SumCounts reduces per-rank cell counts to global totals.
func SumCounts(w *comm.World, rank int, c CellCounts) CellCounts {
	add := func(a, b CellCounts) CellCounts {
		return CellCounts{
			Sites:       a.Sites + b.Sites,
			Incomplete:  a.Incomplete + b.Incomplete,
			CulledEarly: a.CulledEarly + b.CulledEarly,
			CulledExact: a.CulledExact + b.CulledExact,
			Kept:        a.Kept + b.Kept,
		}
	}
	return comm.Allreduce(w, rank, c, add)
}

package core

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/diy"
	"repro/internal/geom"
	"repro/internal/meshio"
	"repro/internal/voronoi"
)

func perturbedParticles(rng *rand.Rand, n int, L, amp float64) []diy.Particle {
	h := L / float64(n)
	var ps []diy.Particle
	id := int64(0)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				ps = append(ps, diy.Particle{
					ID: id,
					Pos: geom.V(
						(float64(x)+0.5)*h+(rng.Float64()-0.5)*amp*h,
						(float64(y)+0.5)*h+(rng.Float64()-0.5)*amp*h,
						(float64(z)+0.5)*h+(rng.Float64()-0.5)*amp*h),
				})
				id++
			}
		}
	}
	return ps
}

func domainBox(L float64) geom.Box {
	return geom.NewBox(geom.V(0, 0, 0), geom.V(L, L, L))
}

func baseConfig(L float64) Config {
	return Config{
		Domain:    domainBox(L),
		Periodic:  true,
		GhostSize: 3,
	}
}

// serialReference computes the exact periodic tessellation summaries.
func serialReference(t testing.TB, ps []diy.Particle, L float64) []CellSummary {
	t.Helper()
	pts := make([]geom.Vec3, len(ps))
	ids := make([]int64, len(ps))
	for i, p := range ps {
		pts[i] = p.Pos
		ids[i] = p.ID
	}
	cells, err := voronoi.ComputePeriodic(pts, ids, L, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]CellSummary, len(cells))
	for i, c := range cells {
		out[i] = CellSummary{
			ID: c.SiteID, Site: c.Site, Volume: c.Volume(), Area: c.Area(),
			Faces: len(c.Faces), Complete: c.Complete,
		}
	}
	return out
}

func TestRunPartitionOfUnity(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	const L = 8.0
	ps := perturbedParticles(rng, 8, L, 0.8)
	for _, blocks := range []int{1, 2, 4, 8} {
		out, err := Run(baseConfig(L), ps, blocks)
		if err != nil {
			t.Fatalf("blocks=%d: %v", blocks, err)
		}
		if out.Counts.Kept != int64(len(ps)) {
			t.Fatalf("blocks=%d: kept %d of %d cells (incomplete %d)",
				blocks, out.Counts.Kept, len(ps), out.Counts.Incomplete)
		}
		var vol float64
		for _, v := range out.Volumes() {
			vol += v
		}
		if math.Abs(vol-L*L*L) > 1e-6*L*L*L {
			t.Fatalf("blocks=%d: total volume %v, want %v", blocks, vol, L*L*L)
		}
	}
}

func TestParallelMatchesSerialWithAdequateGhost(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	const L = 8.0
	ps := perturbedParticles(rng, 8, L, 0.9)
	ref := serialReference(t, ps, L)
	for _, blocks := range []int{2, 4, 8} {
		out, err := Run(baseConfig(L), ps, blocks)
		if err != nil {
			t.Fatal(err)
		}
		rep := CompareAccuracy(ref, out.Summaries(), 1e-6)
		if rep.Accuracy < 1.0 {
			t.Fatalf("blocks=%d: accuracy %.4f (%d/%d matching)",
				blocks, rep.Accuracy, rep.Matching, rep.ReferenceCells)
		}
	}
}

func TestAccuracyDegradesWithoutGhost(t *testing.T) {
	// The Table I effect: ghost size 0 produces wrong boundary cells, and
	// more blocks produce more errors.
	rng := rand.New(rand.NewSource(76))
	const L = 8.0
	ps := perturbedParticles(rng, 8, L, 0.9)
	ref := serialReference(t, ps, L)
	cfg := baseConfig(L)
	cfg.GhostSize = 0
	cfg.KeepIncomplete = true
	acc := make(map[int]float64)
	for _, blocks := range []int{2, 8} {
		out, err := Run(cfg, ps, blocks)
		if err != nil {
			t.Fatal(err)
		}
		rep := CompareAccuracy(ref, out.Summaries(), 1e-6)
		acc[blocks] = rep.Accuracy
		if rep.Accuracy >= 1.0 {
			t.Fatalf("blocks=%d: ghost 0 should not be fully accurate", blocks)
		}
	}
	if acc[8] > acc[2] {
		t.Errorf("more blocks should not improve ghost-0 accuracy: %v", acc)
	}
}

func TestIncompleteCellsDeletedByDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const L = 8.0
	ps := perturbedParticles(rng, 8, L, 0.9)
	cfg := baseConfig(L)
	cfg.GhostSize = 0.5 // too small: boundary cells cannot be proven
	out, err := Run(cfg, ps, 8)
	if err != nil {
		t.Fatal(err)
	}
	if out.Counts.Incomplete == 0 {
		t.Error("tiny ghost produced no incomplete cells")
	}
	if out.Counts.Kept+out.Counts.Incomplete != out.Counts.Sites {
		t.Errorf("counts don't add up: %+v", out.Counts)
	}
}

func TestVolumeThresholdCulling(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	const L = 8.0
	ps := perturbedParticles(rng, 8, L, 0.9)
	cfg := baseConfig(L)
	cfg.MinVolume = 1.0 // the mean cell volume; culls roughly half
	out, err := Run(cfg, ps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.Counts.CulledEarly+out.Counts.CulledExact == 0 {
		t.Error("threshold culled nothing")
	}
	if out.Counts.Kept == 0 {
		t.Error("threshold culled everything")
	}
	for _, v := range out.Volumes() {
		if v < cfg.MinVolume {
			t.Fatalf("kept cell with volume %v below threshold", v)
		}
	}
	// Early culling must agree with exact culling: re-run without the
	// early path via a config that disables MinVolume and apply the cut
	// manually.
	ref, err := Run(baseConfig(L), ps, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantKept := 0
	for _, v := range ref.Volumes() {
		if v >= cfg.MinVolume {
			wantKept++
		}
	}
	if int(out.Counts.Kept) != wantKept {
		t.Errorf("kept %d cells, exact filter keeps %d", out.Counts.Kept, wantKept)
	}
}

func TestMaxVolumeCut(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	const L = 6.0
	ps := perturbedParticles(rng, 6, L, 0.9)
	cfg := baseConfig(L)
	cfg.MaxVolume = 1.0
	out, err := Run(cfg, ps, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Volumes() {
		if v > cfg.MaxVolume {
			t.Fatalf("kept cell with volume %v above MaxVolume", v)
		}
	}
}

func TestHullPassAgreesWithClipping(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	const L = 6.0
	ps := perturbedParticles(rng, 6, L, 0.8)
	cfgHull := baseConfig(L)
	cfgHull.HullPass = true
	cfgHull.MinVolume = 0.7
	outHull, err := Run(cfgHull, ps, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfgClip := cfgHull
	cfgClip.HullPass = false
	outClip, err := Run(cfgClip, ps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if outHull.Counts.Kept != outClip.Counts.Kept {
		t.Errorf("hull pass changed survivor count: %d vs %d",
			outHull.Counts.Kept, outClip.Counts.Kept)
	}
}

func TestOutputFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	const L = 6.0
	ps := perturbedParticles(rng, 6, L, 0.8)
	dir := t.TempDir()
	cfg := baseConfig(L)
	cfg.OutputPath = filepath.Join(dir, "tess.out")
	out, err := Run(cfg, ps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.Timing.OutputBytes <= 0 {
		t.Error("no output bytes recorded")
	}
	st, err := os.Stat(cfg.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != out.Timing.OutputBytes {
		t.Errorf("file size %d, recorded %d", st.Size(), out.Timing.OutputBytes)
	}
	blocks, err := diy.ReadAllBlocks(cfg.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 4 {
		t.Fatalf("file has %d blocks", len(blocks))
	}
	total := 0
	for bi, data := range blocks {
		m, err := meshio.DecodeBlockMesh(data)
		if err != nil {
			t.Fatalf("block %d: %v", bi, err)
		}
		total += m.NumCells()
		// Written mesh matches the in-memory mesh.
		if m.NumCells() != out.Meshes[bi].NumCells() {
			t.Fatalf("block %d: %d cells on disk, %d in memory", bi, m.NumCells(), out.Meshes[bi].NumCells())
		}
	}
	if total != len(ps) {
		t.Errorf("file holds %d cells, want %d", total, len(ps))
	}
}

func TestRunRejectsOutOfDomainParticles(t *testing.T) {
	cfg := baseConfig(4)
	ps := []diy.Particle{{ID: 0, Pos: geom.V(10, 1, 1)}}
	if _, err := Run(cfg, ps, 2); err == nil {
		t.Error("out-of-domain particle accepted")
	}
}

func TestEachCellOwnedByExactlyOneBlock(t *testing.T) {
	// The paper's duplicate-resolution invariant (step 3a): across all
	// blocks, each particle ID appears exactly once.
	rng := rand.New(rand.NewSource(82))
	const L = 8.0
	ps := perturbedParticles(rng, 8, L, 0.9)
	out, err := Run(baseConfig(L), ps, 8)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]int{}
	for _, s := range out.Summaries() {
		seen[s.ID]++
	}
	if len(seen) != len(ps) {
		t.Fatalf("%d unique cells, want %d", len(seen), len(ps))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("particle %d owned by %d blocks", id, n)
		}
	}
}

func TestTimingsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	const L = 6.0
	ps := perturbedParticles(rng, 6, L, 0.8)
	out, err := Run(baseConfig(L), ps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.Timing.Compute <= 0 {
		t.Error("compute time not recorded")
	}
	if out.Timing.Total < out.Timing.Compute {
		t.Error("total < compute")
	}
	if out.Ghosts == 0 {
		t.Error("no ghosts recorded")
	}
}

func TestCompareAccuracyEdgeCases(t *testing.T) {
	rep := CompareAccuracy(nil, nil, 0)
	if rep.Accuracy != 0 || rep.Matching != 0 {
		t.Errorf("empty compare: %+v", rep)
	}
	ref := []CellSummary{{ID: 1, Volume: 2, Faces: 6}}
	par := []CellSummary{{ID: 1, Volume: 2, Faces: 6}, {ID: 9, Volume: 1, Faces: 4}}
	rep = CompareAccuracy(ref, par, 1e-9)
	if rep.Matching != 1 || rep.Accuracy != 1 {
		t.Errorf("match: %+v", rep)
	}
	// Volume off by more than tolerance: no match.
	par[0].Volume = 2.1
	rep = CompareAccuracy(ref, par, 1e-9)
	if rep.Matching != 0 {
		t.Errorf("tolerant match: %+v", rep)
	}
}

func TestRunTimedMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	const L = 8.0
	ps := perturbedParticles(rng, 8, L, 0.9)
	cfg := baseConfig(L)
	cfg.MinVolume = 0.5
	a, err := Run(cfg, ps, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTimed(cfg, ps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts != b.Counts {
		t.Fatalf("counts differ: %+v vs %+v", a.Counts, b.Counts)
	}
	sa, sb := a.Summaries(), b.Summaries()
	if len(sa) != len(sb) {
		t.Fatalf("cell counts differ: %d vs %d", len(sa), len(sb))
	}
	bm := map[int64]CellSummary{}
	for _, s := range sb {
		bm[s.ID] = s
	}
	for _, s := range sa {
		o, ok := bm[s.ID]
		if !ok {
			t.Fatalf("cell %d missing from timed run", s.ID)
		}
		if math.Abs(s.Volume-o.Volume) > 1e-12 || s.Faces != o.Faces {
			t.Fatalf("cell %d differs between drivers", s.ID)
		}
	}
	if b.SumCompute <= 0 || len(b.PerRankCompute) != 4 {
		t.Errorf("per-rank timings not populated")
	}
}

func TestRunTimedOutputFile(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const L = 6.0
	ps := perturbedParticles(rng, 6, L, 0.8)
	cfg := baseConfig(L)
	cfg.OutputPath = filepath.Join(t.TempDir(), "timed.out")
	out, err := RunTimed(cfg, ps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Timing.OutputBytes <= 0 {
		t.Error("no output bytes")
	}
	blocks, err := diy.ReadAllBlocks(cfg.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Errorf("blocks on disk = %d", len(blocks))
	}
}

func TestEstimateGhost(t *testing.T) {
	cfg := baseConfig(8)
	g, err := EstimateGhost(cfg, 512, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 512 particles in an 8^3 box: spacing 1, factor 4 -> ghost 4.
	if math.Abs(g-4) > 1e-9 {
		t.Errorf("ghost = %v, want 4", g)
	}
	// Clamped by thin blocks: 8 blocks -> sides 4.
	g, err = EstimateGhost(cfg, 512, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-4) > 1e-9 {
		t.Errorf("clamped ghost = %v, want 4", g)
	}
	if _, err := EstimateGhost(cfg, 0, 1, 0); err == nil {
		t.Error("zero particles accepted")
	}
}

func TestAutoRunFindsSufficientGhost(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	const L = 8.0
	ps := perturbedParticles(rng, 8, L, 0.9)
	cfg := baseConfig(L)
	cfg.GhostSize = 0.5 // deliberately too small: AutoRun must grow it
	out, ghost, err := AutoRun(cfg, ps, 8)
	if err != nil {
		t.Fatal(err)
	}
	if out.Counts.Incomplete != 0 {
		t.Fatalf("AutoRun left %d incomplete cells at ghost %g", out.Counts.Incomplete, ghost)
	}
	if ghost <= 0.5 {
		t.Errorf("ghost did not grow: %v", ghost)
	}
	if out.Counts.Kept != int64(len(ps)) {
		t.Errorf("kept %d of %d", out.Counts.Kept, len(ps))
	}
}

func TestAutoRunDefaultsGhost(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	const L = 8.0
	ps := perturbedParticles(rng, 8, L, 0.8)
	cfg := baseConfig(L)
	cfg.GhostSize = 0
	out, ghost, err := AutoRun(cfg, ps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ghost < 3 || ghost > 4.001 {
		t.Errorf("estimated ghost = %v", ghost)
	}
	if out.Counts.Incomplete != 0 {
		t.Errorf("incomplete cells with estimated ghost: %d", out.Counts.Incomplete)
	}
}

func TestAutoRunStopsAtMaxGhost(t *testing.T) {
	// A lone particle cluster in a huge empty box: cells can never be
	// proven complete; AutoRun must terminate at the max ghost and report
	// the incompleteness instead of looping.
	const L = 16.0
	var ps []diy.Particle
	rng := rand.New(rand.NewSource(112))
	for i := 0; i < 20; i++ {
		ps = append(ps, diy.Particle{ID: int64(i), Pos: geom.V(
			8+rng.Float64(), 8+rng.Float64(), 8+rng.Float64())})
	}
	cfg := baseConfig(L)
	cfg.GhostSize = 1
	out, ghost, err := AutoRun(cfg, ps, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ghost-8) > 1e-9 { // 8 blocks of side 8
		t.Errorf("final ghost = %v, want the max 8", ghost)
	}
	_ = out
}

func TestLabelVoidsInSitu(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	const L = 8.0
	ps := perturbedParticles(rng, 8, L, 0.9)
	cfg := baseConfig(L)
	cfg.LabelVoids = true
	out, err := Run(cfg, ps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Voids) == 0 {
		t.Fatal("in situ labeling produced no components")
	}
	// Components hold only above-threshold cells and are volume-sorted.
	for i := 1; i < len(out.Voids); i++ {
		if out.Voids[i].Functionals.Volume > out.Voids[i-1].Functionals.Volume {
			t.Fatal("components not sorted by volume")
		}
	}
	// Without the flag, no labeling happens.
	cfg.LabelVoids = false
	out2, err := Run(cfg, ps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Voids != nil {
		t.Error("labeling ran without the flag")
	}
}

package core

import (
	"fmt"

	"repro/internal/diy"
	"repro/internal/geom"
	"repro/internal/meshio"
	"repro/internal/storage"
)

// Checkpoint/restart rides on two facts. First, session reuse is purely
// structural: no floating-point state of a previous tessellation seeds
// the next one, so the resumable state is small — the decomposition,
// the step counter, and the warm/cold baseline (the previous step's
// site positions, which are advisory classification input, never
// geometry). Second, the warm rebalance decision feeds on a wall-clock
// imbalance ratio that is nondeterministic anyway, and MergeCanonical
// is decomposition-independent, so a resumed run's canonical merged
// output is byte-identical to the uninterrupted run even if the two
// made different rebalance choices after the checkpoint.

// decompKind names cfg's decomposition strategy in the manifest.
func decompKind(cfg Config) string {
	if cfg.Decomposition == DecomposeRCB {
		return "rcb"
	}
	return "grid"
}

func domainArray(b geom.Box) [6]float64 {
	return [6]float64{b.Min.X, b.Min.Y, b.Min.Z, b.Max.X, b.Max.Y, b.Max.Z}
}

// Checkpoint persists the session's resumable state into dir: the
// decomposition, the step counter, each rank's warm/cold baseline, and
// the last completed step's per-block meshes in the compact v2 format.
// It must run between steps (the meshes are the current step's loan)
// and commits atomically — a crash mid-checkpoint leaves the previous
// complete checkpoint, or none.
func (s *Session) Checkpoint(dir string) error {
	if s.closed {
		return fmt.Errorf("core: checkpoint of a closed session")
	}
	if s.terminal != nil {
		return fmt.Errorf("core: checkpoint of a terminally failed session: %w", s.terminal)
	}
	if s.steps == 0 || s.lastOut == nil || s.d == nil {
		return fmt.Errorf("core: nothing to checkpoint before the first completed step")
	}
	decomp, err := s.d.MarshalBinary()
	if err != nil {
		return fmt.Errorf("core: checkpoint decomposition: %w", err)
	}
	meshes := make([][]byte, s.numBlocks)
	for r, m := range s.lastOut.Meshes {
		if m == nil {
			return fmt.Errorf("core: checkpoint step has no mesh for rank %d", r)
		}
		if meshes[r], err = meshio.EncodeV2(m); err != nil {
			return fmt.Errorf("core: checkpoint mesh rank %d: %w", r, err)
		}
	}
	ck := &storage.Checkpoint{
		Manifest: storage.Manifest{
			Steps:         s.steps,
			NumBlocks:     s.numBlocks,
			Periodic:      s.cfg.Periodic,
			Domain:        domainArray(s.cfg.Domain),
			Ghost:         s.cfg.GhostSize,
			Decomp:        decompKind(s.cfg),
			Rebalances:    s.rebalances,
			LastImbalance: s.lastImbalance,
			WarmSites:     make([]int64, s.numBlocks),
			ColdSites:     make([]int64, s.numBlocks),
		},
		Decomp: decomp,
		Prev:   make([]map[int64]geom.Vec3, s.numBlocks),
		Meshes: meshes,
	}
	for r := range s.ranks {
		ck.Prev[r] = s.ranks[r].prev
		ck.Manifest.WarmSites[r] = s.ranks[r].warmSites
		ck.Manifest.ColdSites[r] = s.ranks[r].coldSites
	}
	return storage.Save(dir, ck)
}

// ResumeSession reopens the session checkpointed in dir at its recorded
// step count: the next StepSource is step N+1, and the canonical merged
// output of every subsequent step is byte-identical to the
// uninterrupted session's. cfg must agree with the checkpoint on
// domain, periodicity, ghost size, and decomposition kind; the block
// count comes from the checkpoint. Fault-injection checkpoint numbering
// (Config.Faults) restarts at zero in the resumed session, and warm
// density-pipeline state (StepDensity) is not checkpointed.
func ResumeSession(cfg Config, dir string) (*Session, error) {
	ck, err := storage.Load(dir)
	if err != nil {
		return nil, err
	}
	man := &ck.Manifest
	if got, want := domainArray(cfg.Domain), man.Domain; got != want {
		return nil, fmt.Errorf("core: resume domain %v does not match checkpoint %v", got, want)
	}
	if cfg.Periodic != man.Periodic {
		return nil, fmt.Errorf("core: resume periodic=%v does not match checkpoint %v", cfg.Periodic, man.Periodic)
	}
	if cfg.GhostSize != man.Ghost {
		return nil, fmt.Errorf("core: resume ghost %g does not match checkpoint %g", cfg.GhostSize, man.Ghost)
	}
	if got, want := decompKind(cfg), man.Decomp; got != want {
		return nil, fmt.Errorf("core: resume decomposition %q does not match checkpoint %q", got, want)
	}
	d, err := diy.UnmarshalDecomposition(ck.Decomp)
	if err != nil {
		return nil, err
	}
	if d.NumBlocks() != man.NumBlocks {
		return nil, fmt.Errorf("core: checkpoint decomposition has %d blocks, manifest says %d",
			d.NumBlocks(), man.NumBlocks)
	}
	s, err := OpenSession(cfg, man.NumBlocks)
	if err != nil {
		return nil, err
	}
	s.installDecomposition(d)
	s.steps = man.Steps
	s.rebalances = man.Rebalances
	s.lastImbalance = man.LastImbalance
	s.rebalanceNow = cfg.Decomposition == DecomposeRCB && cfg.RebalanceThreshold > 0 &&
		s.lastImbalance > cfg.RebalanceThreshold
	for r := range s.ranks {
		s.ranks[r].prev = ck.Prev[r]
		if len(man.WarmSites) == man.NumBlocks {
			s.ranks[r].warmSites = man.WarmSites[r]
		}
		if len(man.ColdSites) == man.NumBlocks {
			s.ranks[r].coldSites = man.ColdSites[r]
		}
	}
	return s, nil
}

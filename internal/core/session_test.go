package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/diy"
	"repro/internal/faultinject"
	"repro/internal/nbody"
	"repro/internal/obs"
)

// evolvingSnapshots runs the built-in N-body simulation and captures the
// particle state after each of the first `count` steps — genuinely
// evolving inputs (small displacements step to step), the session's target
// workload.
func evolvingSnapshots(t testing.TB, ng, count int) [][]diy.Particle {
	t.Helper()
	sim, err := nbody.New(nbody.DefaultConfig(ng))
	if err != nil {
		t.Fatal(err)
	}
	var snaps [][]diy.Particle
	sim.Run(count, func(s *nbody.Simulation) {
		ps := make([]diy.Particle, len(s.Pos))
		for i, p := range s.Pos {
			ps[i] = diy.Particle{ID: int64(i), Pos: p}
		}
		snaps = append(snaps, ps)
	})
	if len(snaps) != count {
		t.Fatalf("captured %d snapshots, want %d", len(snaps), count)
	}
	return snaps
}

// encodeMeshes serializes every block mesh of an output.
func encodeMeshes(t testing.TB, out *Output) [][]byte {
	t.Helper()
	enc := make([][]byte, len(out.Meshes))
	for i, m := range out.Meshes {
		b, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		enc[i] = b
	}
	return enc
}

// The session's central contract: every Step — first or warm-started,
// any block count, any worker count — produces output byte-identical to a
// fresh one-shot Run over the same particles.
func TestSessionStepByteIdenticalToRun(t *testing.T) {
	const ng, steps = 8, 3
	snaps := evolvingSnapshots(t, ng, steps)
	for _, blocks := range []int{1, 2, 8} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("blocks=%d/workers=%d", blocks, workers), func(t *testing.T) {
				cfg := baseConfig(float64(ng))
				cfg.Workers = workers
				s, err := OpenSession(cfg, blocks)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				for step, ps := range snaps {
					got, err := s.Step(ps)
					if err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					want, err := Run(cfg, ps, blocks)
					if err != nil {
						t.Fatalf("step %d reference: %v", step, err)
					}
					if got.Counts != want.Counts {
						t.Errorf("step %d: counts %+v, want %+v", step, got.Counts, want.Counts)
					}
					if got.Ghosts != want.Ghosts {
						t.Errorf("step %d: ghosts %d, want %d", step, got.Ghosts, want.Ghosts)
					}
					gotEnc, wantEnc := encodeMeshes(t, got), encodeMeshes(t, want)
					for r := range gotEnc {
						if !bytes.Equal(gotEnc[r], wantEnc[r]) {
							t.Errorf("step %d: block %d mesh bytes differ from one-shot Run", step, r)
						}
					}
				}
				if s.Steps() != steps {
					t.Errorf("Steps() = %d, want %d", s.Steps(), steps)
				}
				warm, cold := s.WarmStats()
				n := int64(ng * ng * ng)
				if warm+cold != int64(steps)*n {
					t.Errorf("warm %d + cold %d != %d sites", warm, cold, int64(steps)*n)
				}
				if cold < n {
					t.Errorf("cold %d < %d: the whole first step must be cold", cold, n)
				}
				if warm == 0 {
					t.Error("no warm sites across small-displacement steps")
				}
			})
		}
	}
}

// Output.Clone must detach a step's loaned output: after further steps
// overwrite the session buffers, the clone still matches the reference.
func TestSessionOutputCloneSurvivesNextStep(t *testing.T) {
	const ng = 8
	snaps := evolvingSnapshots(t, ng, 2)
	cfg := baseConfig(float64(ng))
	s, err := OpenSession(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	first, err := s.Step(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	clone := first.Clone()
	wantEnc := encodeMeshes(t, clone)
	if _, err := s.Step(snaps[1]); err != nil {
		t.Fatal(err)
	}
	ref, err := Run(cfg, snaps[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	refEnc := encodeMeshes(t, ref)
	gotEnc := encodeMeshes(t, clone)
	for r := range gotEnc {
		if !bytes.Equal(gotEnc[r], wantEnc[r]) || !bytes.Equal(gotEnc[r], refEnc[r]) {
			t.Errorf("block %d: cloned output changed after the next step", r)
		}
	}
}

// After an injected crash the session must fail terminally: the crashing
// step returns a structured RankError, and every later step returns an
// immediate error (no hang) carrying the original abort cause.
func TestSessionTerminalAfterAbort(t *testing.T) {
	const ng = 8
	snaps := evolvingSnapshots(t, ng, 2)
	cfg := baseConfig(float64(ng))
	cfg.StallTimeout = 2 * time.Second // belt and braces: any hang becomes a dump
	// Checkpoints accumulate across steps: 1..4 in the first pass, 5..8 in
	// the second. Step 6 is the second pass's compute checkpoint.
	cfg.Faults = &faultinject.Plan{Seed: 7, CrashRank: 1, CrashStep: 6}
	s, err := OpenSession(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Step(snaps[0]); err != nil {
		t.Fatalf("first step should succeed, got %v", err)
	}
	_, err = s.Step(snaps[1])
	var re *comm.RankError
	if !errors.As(err, &re) || re.Rank != 1 {
		t.Fatalf("second step: err %v, want *RankError for rank 1", err)
	}
	if !errors.Is(err, comm.ErrWorldAborted) {
		t.Errorf("second step: err %v does not match ErrWorldAborted", err)
	}
	start := time.Now()
	_, err = s.Step(snaps[1])
	if err == nil {
		t.Fatal("step after abort succeeded")
	}
	if !strings.Contains(err.Error(), "terminally failed") {
		t.Errorf("post-abort error %v does not name the terminal state", err)
	}
	if !errors.Is(err, comm.ErrWorldAborted) {
		t.Errorf("post-abort error %v does not carry the abort cause", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("post-abort step took %v, want immediate return", elapsed)
	}
	if s.Steps() != 1 {
		t.Errorf("Steps() = %d, want 1 (only the first step completed)", s.Steps())
	}
}

// A closed session refuses further steps.
func TestSessionClosedRefusesStep(t *testing.T) {
	cfg := baseConfig(10)
	s, err := OpenSession(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := s.Step(nil); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("step on closed session: err %v, want closed error", err)
	}
}

// Each step observes a fresh recorder epoch: per-step counters report that
// step alone (not a running total), and the session's warm/cold counters
// are populated.
func TestSessionRecorderResetsPerStep(t *testing.T) {
	const ng, blocks = 8, 2
	snaps := evolvingSnapshots(t, ng, 3)
	n := int64(ng * ng * ng)
	cfg := baseConfig(float64(ng))
	cfg.Recorder = obs.NewRecorder(blocks)
	s, err := OpenSession(cfg, blocks)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for step, ps := range snaps {
		out, err := s.Step(ps)
		if err != nil {
			t.Fatal(err)
		}
		if out.Obs == nil {
			t.Fatal("no obs snapshot despite recorder")
		}
		sum := func(name string) int64 {
			var total int64
			for _, v := range out.Obs.Counters[name] {
				total += v
			}
			return total
		}
		if got := sum(CounterSites); got != n {
			t.Errorf("step %d: %s = %d, want %d (per-step, not cumulative)", step, CounterSites, got, n)
		}
		if got := sum(CounterSitesWarm) + sum(CounterSitesCold); got != n {
			t.Errorf("step %d: warm+cold counters = %d, want %d", step, got, n)
		}
		if step == 0 && sum(CounterSitesWarm) != 0 {
			t.Errorf("first step reported %d warm sites", sum(CounterSitesWarm))
		}
		if step > 0 && sum(CounterSitesWarm) == 0 {
			t.Errorf("step %d reported no warm sites", step)
		}
	}
}

// The deprecated-alias contract: Run through a session-per-call must keep
// accepting per-step output paths via StepPath, including the empty path
// writing nothing.
func TestSessionStepPathOverridesConfig(t *testing.T) {
	const ng = 8
	snaps := evolvingSnapshots(t, ng, 1)
	dir := t.TempDir()
	cfg := baseConfig(float64(ng))
	s, err := OpenSession(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	path := dir + "/step.out"
	out, err := s.StepPath(snaps[0], path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Timing.OutputBytes <= 0 {
		t.Errorf("OutputBytes = %d after StepPath with a path", out.Timing.OutputBytes)
	}
}

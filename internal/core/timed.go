package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/diy"
	"repro/internal/meshio"
)

// TimedOutput extends Output with the per-rank phase times the performance
// study needs.
type TimedOutput struct {
	Output
	// PerRankExchange and PerRankCompute hold each rank's phase wall time.
	PerRankExchange []time.Duration
	PerRankCompute  []time.Duration
	// SumCompute is the total serial compute across all ranks (used for
	// efficiency accounting).
	SumCompute time.Duration
}

// RunTimed executes the tess pipeline with ranks timed one at a time and
// reports the slowest-rank time per phase — the wall time an MPI job with
// one dedicated core per rank would observe. On hosts with fewer cores
// than ranks (this reproduction's usual situation), timing concurrent
// goroutines would charge every rank for its neighbors' CPU time and erase
// the scaling signal; sequential per-rank timing measures what Table II and
// Figure 10 actually plot. The ghost sets are produced by a loopback
// equivalent of the neighborhood exchange that is test-verified to match
// the message-based path, and the collective write runs through the real
// communicator afterwards.
func RunTimed(cfg Config, particles []diy.Particle, numBlocks int) (*TimedOutput, error) {
	d, err := diy.Decompose(cfg.Domain, numBlocks, cfg.Periodic)
	if err != nil {
		return nil, err
	}
	if err := ValidateGhost(d, cfg.GhostSize); err != nil {
		return nil, err
	}
	for _, p := range particles {
		if !cfg.Domain.Contains(p.Pos) {
			return nil, fmt.Errorf("core: particle %d at %v outside domain", p.ID, p.Pos)
		}
	}
	parts := diy.PartitionParticles(d, particles)

	out := &TimedOutput{}
	out.Meshes = make([]*meshio.BlockMesh, numBlocks)
	out.PerRankExchange = make([]time.Duration, numBlocks)
	out.PerRankCompute = make([]time.Duration, numBlocks)

	for rank := 0; rank < numBlocks; rank++ {
		t0 := time.Now()
		ghosts := diy.GatherGhosts(d, rank, parts, cfg.GhostSize)
		out.PerRankExchange[rank] = time.Since(t0)

		t0 = time.Now()
		// Ranks run one at a time here, so each one's compute phase may use
		// the whole machine (concurrentRanks == 1).
		res, err := computeBlockCells(d.Block(rank), parts[rank], ghosts, cfg, EffectiveWorkers(cfg, 1))
		if err != nil {
			return nil, fmt.Errorf("core: rank %d: %w", rank, err)
		}
		out.PerRankCompute[rank] = time.Since(t0)

		out.Meshes[rank] = res.Mesh
		out.Counts.Sites += res.Counts.Sites
		out.Counts.Incomplete += res.Counts.Incomplete
		out.Counts.CulledEarly += res.Counts.CulledEarly
		out.Counts.CulledExact += res.Counts.CulledExact
		out.Counts.Kept += res.Counts.Kept
		out.Ghosts += res.Ghosts
	}

	for rank := 0; rank < numBlocks; rank++ {
		if out.PerRankExchange[rank] > out.Timing.Exchange {
			out.Timing.Exchange = out.PerRankExchange[rank]
		}
		if out.PerRankCompute[rank] > out.Timing.Compute {
			out.Timing.Compute = out.PerRankCompute[rank]
		}
		out.SumCompute += out.PerRankCompute[rank]
	}

	// Collective write through the real communicator (its cost is
	// I/O-bound, not core-bound, so concurrent ranks are representative).
	if cfg.OutputPath != "" {
		payloads := make([][]byte, numBlocks)
		for rank, m := range out.Meshes {
			data, err := m.Encode()
			if err != nil {
				return nil, fmt.Errorf("core: rank %d encode: %w", rank, err)
			}
			payloads[rank] = data
		}
		w := comm.NewWorld(numBlocks)
		errs := make([]error, numBlocks)
		var mu sync.Mutex
		t0 := time.Now()
		w.Run(func(rank int) {
			n, err := diy.CollectiveWrite(w, rank, cfg.OutputPath, payloads[rank])
			if err != nil {
				errs[rank] = err
				return
			}
			if rank == 0 {
				mu.Lock()
				out.Timing.OutputBytes = n
				mu.Unlock()
			}
		})
		out.Timing.Output = time.Since(t0)
		for r, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("core: rank %d write: %w", r, err)
			}
		}
	}
	out.Timing.Total = out.Timing.Exchange + out.Timing.Compute + out.Timing.Output
	return out, nil
}

package core

import (
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/diy"
	"repro/internal/faultinject"
	"repro/internal/meshio"
	"repro/internal/obs"
)

// TimedOutput extends Output with the per-rank phase times the performance
// study needs.
type TimedOutput struct {
	Output
	// PerRankExchange and PerRankCompute hold each rank's phase wall time.
	PerRankExchange []time.Duration
	PerRankCompute  []time.Duration
	// SumCompute is the total serial compute across all ranks (used for
	// efficiency accounting).
	SumCompute time.Duration
}

// RunTimed executes the tess pipeline with ranks timed one at a time and
// reports the slowest-rank time per phase — the wall time an MPI job with
// one dedicated core per rank would observe. On hosts with fewer cores
// than ranks (this reproduction's usual situation), timing concurrent
// goroutines would charge every rank for its neighbors' CPU time and erase
// the scaling signal; sequential per-rank timing measures what Table II and
// Figure 10 actually plot. The ghost sets are produced by a loopback
// equivalent of the neighborhood exchange that is test-verified to match
// the message-based path, and the collective write runs through the real
// communicator afterwards.
func RunTimed(cfg Config, particles []diy.Particle, numBlocks int) (*TimedOutput, error) {
	d, err := decomposeFor(cfg, numBlocks, particles)
	if err != nil {
		return nil, err
	}
	if err := ValidateGhost(d, cfg.GhostSize); err != nil {
		return nil, err
	}
	for _, p := range particles {
		if !cfg.Domain.Contains(p.Pos) {
			return nil, fmt.Errorf("core: particle %d at %v outside domain", p.ID, p.Pos)
		}
	}
	parts := diy.PartitionParticles(d, particles)

	rec := cfg.Recorder
	if rec != nil {
		if rec.Ranks() != numBlocks {
			return nil, fmt.Errorf("core: recorder sized for %d ranks, run has %d blocks", rec.Ranks(), numBlocks)
		}
		registerCounters(rec)
	}
	var inj *faultinject.Injector
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		inj = faultinject.New(*cfg.Faults, numBlocks)
	}

	out := &TimedOutput{}
	out.Meshes = make([]*meshio.BlockMesh, numBlocks)
	out.PerRankExchange = make([]time.Duration, numBlocks)
	out.PerRankCompute = make([]time.Duration, numBlocks)

	for rank := 0; rank < numBlocks; rank++ {
		res, err := runTimedRank(cfg, d, parts, rank, rec, inj, out)
		if err != nil {
			return nil, fmt.Errorf("core: rank %d: %w", rank, err)
		}

		out.Meshes[rank] = res.Mesh
		out.Counts.Sites += res.Counts.Sites
		out.Counts.Incomplete += res.Counts.Incomplete
		out.Counts.CulledEarly += res.Counts.CulledEarly
		out.Counts.CulledExact += res.Counts.CulledExact
		out.Counts.Kept += res.Counts.Kept
		out.Ghosts += res.Ghosts
	}

	for rank := 0; rank < numBlocks; rank++ {
		if out.PerRankExchange[rank] > out.Timing.Exchange {
			out.Timing.Exchange = out.PerRankExchange[rank]
		}
		if out.PerRankCompute[rank] > out.Timing.Compute {
			out.Timing.Compute = out.PerRankCompute[rank]
		}
		out.SumCompute += out.PerRankCompute[rank]
	}

	// Collective write through the real communicator (its cost is
	// I/O-bound, not core-bound, so concurrent ranks are representative).
	if cfg.OutputPath != "" {
		payloads := make([][]byte, numBlocks)
		for rank, m := range out.Meshes {
			data, err := m.Encode()
			if err != nil {
				return nil, fmt.Errorf("core: rank %d encode: %w", rank, err)
			}
			payloads[rank] = data
		}
		var opts []comm.Option
		if cfg.StallTimeout > 0 {
			opts = append(opts, comm.WithWatchdog(cfg.StallTimeout))
		}
		w := comm.NewWorld(numBlocks, opts...)
		w.SetRecorder(rec)
		errs := make([]error, numBlocks)
		var mu sync.Mutex
		t0 := time.Now()
		runErr := w.Run(func(rank int) {
			sp := rec.Begin(rank, obs.PhaseOutput)
			n, err := diy.CollectiveWrite(w, rank, cfg.OutputPath, payloads[rank])
			rec.End(rank, sp)
			if err != nil {
				errs[rank] = err
				// Peers are blocked in CollectiveWrite's own collectives;
				// without the abort they would wait on this rank forever.
				w.Abort(&comm.RankError{Rank: rank, Value: err})
				return
			}
			if rank == 0 {
				mu.Lock()
				out.Timing.OutputBytes = n
				mu.Unlock()
			}
		})
		out.Timing.Output = time.Since(t0)
		for r, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("core: rank %d write: %w", r, err)
			}
		}
		if runErr != nil {
			return nil, fmt.Errorf("core: %w", runErr)
		}
	}
	out.Timing.Total = out.Timing.Exchange + out.Timing.Compute + out.Timing.Output
	out.Obs = rec.Snapshot()
	return out, nil
}

// runTimedRank executes one rank's exchange + compute section of the
// sequential timing loop, with the same fault containment the concurrent
// driver gets from comm.World.Run: an injected (or genuine) panic is
// recovered into a *comm.RankError instead of killing the process.
func runTimedRank(cfg Config, d *diy.Decomposition, parts [][]diy.Particle, rank int,
	rec *obs.Recorder, inj *faultinject.Injector, out *TimedOutput) (res *BlockResult, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, &comm.RankError{Rank: rank, Value: v, Stack: debug.Stack()}
		}
	}()

	inj.Checkpoint(rank, "exchange")
	t0 := time.Now()
	sp := rec.Begin(rank, obs.PhaseExchange)
	ghosts := diy.GatherGhosts(d, rank, parts, cfg.GhostSize)
	rec.End(rank, sp)
	out.PerRankExchange[rank] = time.Since(t0)

	inj.Checkpoint(rank, "compute")
	t0 = time.Now()
	// Ranks run one at a time here, so each one's compute phase may use
	// the whole machine (concurrentRanks == 1). PerRankCompute keeps the
	// combined merge+compute semantics; the recorder splits the two.
	sp = rec.Begin(rank, obs.PhaseGhostMerge)
	bi := mergeGhosts(d.Block(rank), parts[rank], ghosts, cfg)
	rec.End(rank, sp)
	sp = rec.Begin(rank, obs.PhaseCompute)
	res, err = computeIndexedCells(bi, parts[rank], cfg, EffectiveWorkers(cfg, 1))
	if err != nil {
		return nil, err
	}
	rec.End(rank, sp)
	out.PerRankCompute[rank] = time.Since(t0)

	if rec != nil {
		ghostsID, keptID, sitesID := registerCounters(rec)
		rec.Count(rank, ghostsID, int64(res.Ghosts))
		rec.Count(rank, keptID, res.Counts.Kept)
		rec.Count(rank, sitesID, res.Counts.Sites)
	}
	return res, nil
}

package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/density"
	"repro/internal/diy"
	"repro/internal/dtfe"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/meshio"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/voronoi"
)

// Names of the session warm-start counters in Config.Recorder (registered
// alongside the pipeline counters when a session has a recorder).
const (
	// CounterSitesWarm counts local sites whose particle moved no farther
	// than the ghost distance since the previous step, so every retained
	// structure sized for them is already at working-set size.
	CounterSitesWarm = "sites-warm"
	// CounterSitesCold counts sites seen for the first time (or displaced
	// beyond the ghost distance), including every site of a session's
	// first step.
	CounterSitesCold = "sites-cold"
)

// Session is a persistent tessellation pipeline: the domain decomposition,
// the communication world, the per-rank ghost-exchange state, the spatial
// index and compute scratch/pool storage, and the output mesh builders are
// set up once by OpenSession and reused by every Step. For an in situ loop
// tessellating many snapshots of the same simulation this amortizes all of
// the setup and nearly all of the per-step allocation away, while keeping
// every Step's results byte-identical to a standalone Run of the same
// particles (tests pin this across block counts, worker counts, and warm
// versus cold sessions).
//
// Reuse across steps is purely structural — buffers, pools, and cached
// link geometry. No geometric state of the previous tessellation seeds the
// next one: the cell clipping stream is replayed exactly, because its
// floating-point results are history-dependent (see DESIGN.md, "Session
// lifecycle & warm-start reuse"). The previous step's site positions are
// retained only to classify sites warm versus cold (displacement within
// the ghost distance or not), published via WarmStats and the
// CounterSitesWarm/CounterSitesCold recorder counters.
//
// The *Output returned by Step is a loan: its meshes live in the session's
// retained builders and are overwritten by the next Step. Callers that
// keep a step's output past the next call must deep-copy it with
// Output.Clone. A Session is not safe for concurrent use; drive it from
// one goroutine.
//
// After any aborted step (injected crash, watchdog stall, pipeline error)
// the underlying world is dead and the session is terminally failed: every
// later Step returns the original abort error immediately, without
// hanging. Close releases the session; it is idempotent.
type Session struct {
	cfg       Config
	d         *diy.Decomposition
	w         *comm.World
	numBlocks int

	steps    int
	terminal error // sticky first abort; session unusable once set
	closed   bool
	opened   time.Time

	// budget is the shared worker budget the session's ranks are
	// registered with from OpenSession to Close (cfg.Budget, or the
	// process-wide shared budget); EffectiveWorkers divides its total by
	// the ranks active across every registered pipeline.
	budget *WorkerBudget

	parts [][]diy.Particle // retained per-rank partition buffers
	ranks []rankState

	// Warm re-decomposition state (DecomposeRCB only). The decomposition is
	// built lazily from the first Step's particles (s.d == nil until then);
	// after each step the per-rank compute times yield lastImbalance, and
	// when it crosses cfg.RebalanceThreshold the next Step rebuilds the
	// decomposition from its particles before partitioning.
	computeTm     []time.Duration
	lastImbalance float64
	rebalanceNow  bool
	rebalances    int

	warmID, coldID obs.CounterID // valid when cfg.Recorder != nil

	// lastOut is the most recent successful step's Output loan — the
	// meshes Checkpoint persists. Valid until the next step overwrites
	// the retained builders, which is why Checkpoint runs between steps.
	lastOut *Output

	// Warm density-pipeline state (StepDensity). The pipeline retains its
	// triangulation scratch, estimator accumulators, and grid buffers
	// across steps; it is rebuilt only when the density config changes.
	dens         *density.Pipeline
	densCfg      density.Config
	densPts      []geom.Vec3
	densStats    []dtfe.SampleStats
	densitySteps int
}

// rankState is the retained per-rank pipeline state of a session.
type rankState struct {
	ex  *diy.Exchanger
	all []geom.Vec3 // merged local+ghost positions, local first
	ids []int64     // merged IDs, parallel to all
	ix  voronoi.Index
	bi  blockIndex
	cb  computeBuffers

	prev                 map[int64]geom.Vec3 // site positions of the previous step
	warmSites, coldSites int64               // accumulated across steps
}

// OpenSession builds the persistent state for repeated tessellation passes
// of numBlocks blocks under cfg: the decomposition, the communication
// world (with watchdog and fault injection armed per cfg, the injector's
// per-rank step counters accumulating across the session's steps), the
// per-rank exchange state, and the recorder registration. cfg.OutputPath
// is the default output destination of Step; StepPath overrides it per
// step.
func OpenSession(cfg Config, numBlocks int) (*Session, error) {
	var d *diy.Decomposition
	if cfg.Decomposition == DecomposeRCB {
		// RCB needs particle positions, which Open does not have: the real
		// decomposition is built by the first Step. Build (and discard) a
		// particle-free one here so invalid parameters still fail at Open.
		if _, err := decomposeFor(cfg, numBlocks, nil); err != nil {
			return nil, err
		}
	} else {
		var err error
		d, err = decomposeFor(cfg, numBlocks, nil)
		if err != nil {
			return nil, err
		}
		if err := ValidateGhost(d, cfg.GhostSize); err != nil {
			return nil, err
		}
	}
	var opts []comm.Option
	if cfg.StallTimeout > 0 {
		opts = append(opts, comm.WithWatchdog(cfg.StallTimeout))
	}
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		inj := faultinject.New(*cfg.Faults, numBlocks)
		cfg.injector = inj
		if cfg.Faults.SendDelayMax > 0 {
			opts = append(opts, comm.WithSendDelay(inj.SendDelay))
		}
	}
	s := &Session{
		cfg:       cfg,
		w:         comm.NewWorld(numBlocks, opts...),
		numBlocks: numBlocks,
		ranks:     make([]rankState, numBlocks),
		computeTm: make([]time.Duration, numBlocks),
	}
	if cfg.Recorder != nil {
		if cfg.Recorder.Ranks() != numBlocks {
			return nil, fmt.Errorf("core: recorder sized for %d ranks, run has %d blocks", cfg.Recorder.Ranks(), numBlocks)
		}
		// Pre-register the pipeline counters so concurrent ranks never race
		// a first-use registration against in-flight Count calls.
		registerCounters(cfg.Recorder)
		s.warmID = cfg.Recorder.RegisterCounter(CounterSitesWarm)
		s.coldID = cfg.Recorder.RegisterCounter(CounterSitesCold)
		s.w.SetRecorder(cfg.Recorder)
	}
	for r := range s.ranks {
		s.ranks[r].prev = map[int64]geom.Vec3{}
	}
	if d != nil {
		s.installDecomposition(d)
	}
	// Register the session's ranks with the worker budget for its whole
	// lifetime (released by Close): every error return is behind us, so the
	// acquire/release pairing is exact.
	s.budget = cfg.Budget
	if s.budget == nil {
		s.budget = sharedBudget
	}
	s.cfg.Budget = s.budget
	s.budget.acquire(numBlocks)
	s.opened = time.Now()
	return s, nil
}

// installDecomposition makes d the session's active decomposition and
// rebuilds the per-rank exchangers for its link geometry. Everything else —
// compute buffers, index storage, mesh builders, recorder registrations —
// is deliberately untouched: a re-decomposition is structural, and the
// retained scratch state carries over.
func (s *Session) installDecomposition(d *diy.Decomposition) {
	s.d = d
	for r := range s.ranks {
		s.ranks[r].ex = diy.NewExchanger(d, r, s.cfg.GhostSize)
	}
}

// StepOpts carries the per-step options of StepSource; the public tess
// layer builds it from functional StepOption values.
type StepOpts struct {
	// OutputPath is this step's collective output destination; empty
	// writes nothing.
	OutputPath string
	// CheckpointEvery, when positive, checkpoints the session into
	// Config.CheckpointDir after every CheckpointEvery-th completed
	// step.
	CheckpointEvery int
}

// Step runs one full tessellation pass over particles through the
// session's retained state, writing to cfg.OutputPath if set. The returned
// Output is a loan valid until the next Step (see Session); its content is
// byte-identical to Run(cfg, particles, numBlocks) with the session's
// configuration.
//
//tess:loaned
func (s *Session) Step(particles []diy.Particle) (*Output, error) {
	return s.StepSource(storage.NewSliceSource(particles), StepOpts{OutputPath: s.cfg.OutputPath})
}

// StepPath is Step with a per-step output destination (empty writes
// nothing), the in situ pattern of one file per selected timestep.
//
//tess:loaned
func (s *Session) StepPath(particles []diy.Particle, outputPath string) (*Output, error) {
	return s.StepSource(storage.NewSliceSource(particles), StepOpts{OutputPath: outputPath})
}

// StepSource is the step path every variant routes through: one full
// tessellation pass over the particles supplied by src, consumed chunk
// by chunk so a windowed FileSource never stages the whole snapshot.
// Inline Steps arrive here as single-chunk SliceSources; the output is
// byte-identical either way because chunk concatenation is the snapshot
// in order and partitioning is order-preserving.
//
// The exception is a step that must (re)build an RCB decomposition —
// the first step of an RCB session, or a warm rebalance — which needs
// every particle position at once and therefore materializes the
// source for that step only.
//
//tess:loaned
func (s *Session) StepSource(src storage.Source, opts StepOpts) (*Output, error) {
	if s.closed {
		return nil, fmt.Errorf("core: session is closed")
	}
	if s.terminal == nil {
		// An Abort between steps (a tenant canceled from another goroutine
		// while no Step was in flight) kills the world without a Step there
		// to observe it; adopt it now so the session fails fast instead of
		// entering a dead world.
		if werr := s.w.Err(); werr != nil {
			s.terminal = werr
		}
	}
	if s.terminal != nil {
		return nil, fmt.Errorf("core: session terminally failed at step %d: %w", s.steps, s.terminal)
	}
	if opts.CheckpointEvery > 0 && s.cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("core: CheckpointEvery requires Config.CheckpointDir")
	}
	if s.d == nil || s.rebalanceNow {
		// First RCB step, or a warm re-decomposition: (re)build the
		// decomposition from this step's particle positions. Only the
		// decomposition and link geometry change; all retained buffers and
		// the recorder carry over, and because each step's geometry depends
		// only on its own decomposition and particles, the merged canonical
		// output stays byte-identical to a standalone run.
		particles, err := materializeSource(src, s.cfg.Domain)
		if err != nil {
			return nil, err
		}
		d, err := decomposeFor(s.cfg, s.numBlocks, particles)
		if err != nil {
			return nil, err
		}
		if err := ValidateGhost(d, s.cfg.GhostSize); err != nil {
			return nil, err
		}
		if s.d != nil {
			s.rebalances++
			// Sites land on different ranks now; the warm/cold classifier's
			// per-rank position memory no longer applies. A rebalanced step
			// honestly counts as cold.
			for r := range s.ranks {
				clear(s.ranks[r].prev)
			}
		}
		s.installDecomposition(d)
		s.rebalanceNow = false
		s.parts = diy.PartitionParticlesInto(s.d, particles, s.parts)
	} else {
		// Streaming path: load, validate, partition, and release one
		// chunk at a time, so the resident staging set is the source's
		// window, not the snapshot.
		s.parts = diy.ResetPartition(s.d, s.parts)
		for c, n := 0, src.Chunks(); c < n; c++ {
			chunk, err := src.Chunk(c)
			if err != nil {
				return nil, fmt.Errorf("core: source chunk %d: %w", c, err)
			}
			if err := checkInDomain(chunk, s.cfg.Domain); err != nil {
				return nil, err
			}
			s.parts = diy.PartitionParticlesAppend(s.d, chunk, s.parts)
			src.Release(c)
		}
	}
	rec := s.cfg.Recorder
	if rec != nil && s.steps > 0 {
		// Each step gets a fresh observation epoch; counter registrations
		// (and their IDs) survive the reset.
		rec.Reset()
	}

	out := &Output{Meshes: make([]*meshio.BlockMesh, s.numBlocks)}
	errs := make([]error, s.numBlocks)
	var mu sync.Mutex
	runErr := s.w.Run(func(rank int) {
		res, tm, err := s.tessellateRank(rank, opts.OutputPath)
		s.computeTm[rank] = tm.Compute
		if err != nil {
			errs[rank] = err
			// Abort the world: the peers of a failed rank are (or soon
			// will be) blocked in the timing/count collectives below, and
			// without the abort they would wait forever on a rank that is
			// never coming.
			s.w.Abort(&comm.RankError{Rank: rank, Value: err})
			return
		}
		gtm := ReduceTiming(s.w, rank, tm)
		gcnt := SumCounts(s.w, rank, res.Counts)
		gghost := comm.Allreduce(s.w, rank, int64(res.Ghosts), comm.SumInt64)
		mu.Lock()
		out.Meshes[rank] = res.Mesh
		if rank == 0 {
			out.Timing = gtm
			out.Counts = gcnt
			out.Ghosts = int(gghost)
		}
		mu.Unlock()
	})
	if werr := s.w.Err(); werr != nil {
		// The world is dead (aborted ranks, possibly blocked peers released
		// by the abort); no further step can run through it.
		s.terminal = werr
	}
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: rank %d: %w", r, err)
		}
	}
	if runErr != nil {
		// A contained panic (or watchdog stall) rather than a returned
		// pipeline error: surface the structured abort cause.
		return nil, fmt.Errorf("core: %w", runErr)
	}
	if s.cfg.LabelVoids {
		out.labelVoids(s.cfg.VoidThreshold)
	}
	if rec != nil {
		out.Obs = rec.Snapshot()
	}
	s.lastImbalance = imbalanceRatio(s.computeTm)
	if s.cfg.Decomposition == DecomposeRCB && s.cfg.RebalanceThreshold > 0 &&
		s.lastImbalance > s.cfg.RebalanceThreshold {
		s.rebalanceNow = true
	}
	s.steps++
	s.lastOut = out
	if opts.CheckpointEvery > 0 && s.steps%opts.CheckpointEvery == 0 {
		if err := s.Checkpoint(s.cfg.CheckpointDir); err != nil {
			return nil, fmt.Errorf("core: step %d checkpoint: %w", s.steps, err)
		}
	}
	return out, nil
}

// materializeSource drains src into one slice (validating domain
// containment chunk by chunk), for the decomposition-(re)building steps
// that need every position at once.
func materializeSource(src storage.Source, domain geom.Box) ([]diy.Particle, error) {
	var all []diy.Particle
	for c, n := 0, src.Chunks(); c < n; c++ {
		chunk, err := src.Chunk(c)
		if err != nil {
			return nil, fmt.Errorf("core: source chunk %d: %w", c, err)
		}
		if err := checkInDomain(chunk, domain); err != nil {
			return nil, err
		}
		all = append(all, chunk...)
		src.Release(c)
	}
	return all, nil
}

// checkInDomain rejects particles outside the configured domain before
// they can reach Locate.
func checkInDomain(ps []diy.Particle, domain geom.Box) error {
	for _, p := range ps {
		if !domain.Contains(p.Pos) {
			return fmt.Errorf("core: particle %d at %v outside domain", p.ID, p.Pos)
		}
	}
	return nil
}

// imbalanceRatio is the slowest-over-mean ratio of the per-rank durations
// (1 = perfectly balanced; 0 when nothing was measured).
func imbalanceRatio(ds []time.Duration) float64 {
	var sum, max time.Duration
	for _, d := range ds {
		sum += d
		if d > max {
			max = d
		}
	}
	if sum <= 0 {
		return 0
	}
	mean := float64(sum) / float64(len(ds))
	return float64(max) / mean
}

// tessellateRank is the session's per-rank pipeline body — TessellateBlock
// rebuilt on the rank's retained state (exchanger, merged-point arrays,
// index, compute buffers, mesh builder). The phase structure, fault
// checkpoints, recorder spans, and arithmetic are identical to
// TessellateBlock; only the storage the phases run in is reused.
func (s *Session) tessellateRank(rank int, outputPath string) (*BlockResult, Timing, error) {
	var tm Timing
	rec := s.cfg.Recorder
	inj := s.cfg.injector
	rs := &s.ranks[rank]
	local := s.parts[rank]
	start := time.Now()
	block := s.d.Block(rank)

	// Warm/cold bookkeeping: a site is warm when its particle moved at
	// most the ghost distance since the previous step, the regime the
	// retained buffers are sized for. The classification is advisory (it
	// feeds WarmStats and the recorder); the pipeline below runs the same
	// exact code either way.
	warm, cold := 0, 0
	for _, p := range local {
		if q, ok := rs.prev[p.ID]; ok && q.Dist(p.Pos) <= s.cfg.GhostSize {
			warm++
		} else {
			cold++
		}
	}
	rs.warmSites += int64(warm)
	rs.coldSites += int64(cold)
	clear(rs.prev)
	for _, p := range local {
		rs.prev[p.ID] = p.Pos
	}

	// Phase 1: neighborhood ghost exchange, through the retained link
	// geometry and receive buffers. Fault checkpoints number the pipeline
	// steps each rank passes, accumulating across the session's steps
	// (step 1..4 in the first Step, 5..8 in the second, and so on), so a
	// crash-at-step-N plan can target any step of a long session.
	inj.Checkpoint(rank, "exchange")
	t0 := time.Now()
	sp := rec.Begin(rank, obs.PhaseExchange)
	ghosts := rs.ex.Exchange(s.w, s.d, rank, local)
	rec.End(rank, sp)
	tm.Exchange = time.Since(t0)

	// Phase 2+3: ghost merge into the retained spatial index, then local
	// cells through the retained compute buffers.
	inj.Checkpoint(rank, "compute")
	t0 = time.Now()
	sp = rec.Begin(rank, obs.PhaseGhostMerge)
	rs.mergeGhosts(block, local, ghosts, s.cfg)
	rec.End(rank, sp)
	sp = rec.Begin(rank, obs.PhaseCompute)
	res, err := computeIndexedCellsIn(&rs.bi, local, s.cfg, EffectiveWorkers(s.cfg, s.w.Size()), &rs.cb)
	if err != nil {
		return nil, tm, err
	}
	rec.End(rank, sp)
	res.Rank = rank
	tm.Compute = time.Since(t0)

	// Phase 4: collective write.
	inj.Checkpoint(rank, "output")
	t0 = time.Now()
	sp = rec.Begin(rank, obs.PhaseOutput)
	if outputPath != "" {
		payload, err := res.Mesh.Encode()
		if err != nil {
			return nil, tm, fmt.Errorf("core: rank %d encode: %w", rank, err)
		}
		n, err := diy.CollectiveWrite(s.w, rank, outputPath, payload)
		if err != nil {
			return nil, tm, err
		}
		if rank == 0 {
			tm.OutputBytes = n
		}
	}
	rec.End(rank, sp)
	tm.Output = time.Since(t0)
	tm.Total = time.Since(start)
	inj.Checkpoint(rank, "done")
	if rec != nil {
		ghostsID, keptID, sitesID := registerCounters(rec)
		rec.Count(rank, ghostsID, int64(res.Ghosts))
		rec.Count(rank, keptID, res.Counts.Kept)
		rec.Count(rank, sitesID, res.Counts.Sites)
		rec.Count(rank, s.warmID, int64(warm))
		rec.Count(rank, s.coldID, int64(cold))
	}
	return res, tm, nil
}

// mergeGhosts is the retained-storage ghost-merge sub-phase: local and
// ghost particles concatenate (local first, preserving site order) into
// the rank's reused arrays, and the spatial index rebuilds in place. The
// resulting index and clipping box are identical to the single-pass
// mergeGhosts.
func (rs *rankState) mergeGhosts(block diy.Block, local, ghosts []diy.Particle, cfg Config) {
	rs.all, rs.ids = rs.all[:0], rs.ids[:0]
	for _, p := range local {
		rs.all = append(rs.all, p.Pos)
		rs.ids = append(rs.ids, p.ID)
	}
	for _, p := range ghosts {
		rs.all = append(rs.all, p.Pos)
		rs.ids = append(rs.ids, p.ID)
	}
	rs.ix.Rebuild(rs.all, rs.ids, 0)
	rs.bi = blockIndex{
		ix:      &rs.ix,
		initBox: initialClipBox(block, cfg),
		bounds:  block.Bounds,
		ghosts:  len(ghosts),
	}
}

// Close releases the session. The per-step loan contract ends with it: the
// last Step's Output stays readable (nothing will overwrite it any more),
// but no further Step may run. Close is idempotent and returns nil.
func (s *Session) Close() error {
	if !s.closed {
		s.closed = true
		s.budget.release(s.numBlocks)
	}
	return nil
}

// Abort kills the session's communication world with cause, from any
// goroutine: a Step in flight unblocks and returns an error whose chain
// carries cause (and comm.ErrWorldAborted), and every later Step fails
// fast with the same cause. It is the tenant-cancellation entry point of a
// daemon multiplexing many sessions — one goroutine drives the session's
// Steps while another may abort it. Aborting an already-dead world is a
// no-op; Close must still be called to release the session.
func (s *Session) Abort(cause error) {
	s.w.Abort(cause)
}

// Steps returns the number of completed (successful) steps.
func (s *Session) Steps() int { return s.steps }

// DefaultOutputPath returns cfg.OutputPath — the destination a Step
// without an explicit per-step path writes to.
func (s *Session) DefaultOutputPath() string { return s.cfg.OutputPath }

// WarmStats returns the cumulative warm/cold site classification over all
// steps and ranks: warm sites moved at most the ghost distance since the
// step before, cold sites were new or displaced farther (every site of the
// first step is cold).
func (s *Session) WarmStats() (warm, cold int64) {
	for r := range s.ranks {
		warm += s.ranks[r].warmSites
		cold += s.ranks[r].coldSites
	}
	return warm, cold
}

// Uptime returns how long the session has been open. It keeps counting
// after Close (the session's total age), and — like Steps and WarmStats —
// is cumulative session state that a per-step Recorder Reset never clears.
func (s *Session) Uptime() time.Duration { return time.Since(s.opened) }

// Rebalances returns how many warm re-decompositions the session has
// performed (always 0 without DecomposeRCB and a RebalanceThreshold).
func (s *Session) Rebalances() int { return s.rebalances }

// LastImbalance returns the compute-phase imbalance ratio (slowest rank
// over mean) of the most recent step, 0 before the first step. This is the
// signal compared against Config.RebalanceThreshold.
func (s *Session) LastImbalance() float64 { return s.lastImbalance }

package core

import (
	"fmt"
	"runtime"
	"sync"
)

// WorkerBudget arbitrates the machine's cores among every concurrently
// running tessellation pipeline that draws on it. Each open Session
// registers its rank count with the budget for its whole lifetime
// (OpenSession to Close), and EffectiveWorkers divides the budget's total
// by the number of ranks active across *all* registered pipelines — so N
// concurrent sessions share GOMAXPROCS fairly instead of each assuming it
// owns the machine, which is what a multi-tenant daemon multiplexing many
// tenant sessions needs and what two plain Runs racing in one process get
// for free (both draw on the process-wide shared budget by default).
//
// The division is advisory scheduling only: worker counts never change any
// computed value (pinned by the determinism tests), so the budget can
// resize under a running session without affecting its output.
type WorkerBudget struct {
	mu        sync.Mutex
	total     int // 0 tracks runtime.GOMAXPROCS(0) at query time
	ranks     int // sum of rank counts of active pipelines
	pipelines int // number of active pipelines
}

// NewWorkerBudget returns a budget of total workers. total <= 0 tracks
// runtime.GOMAXPROCS(0) at query time, so a budget built once follows
// later GOMAXPROCS changes.
func NewWorkerBudget(total int) *WorkerBudget {
	if total < 0 {
		total = 0
	}
	return &WorkerBudget{total: total}
}

// sharedBudget is the process-wide default: every Session (and therefore
// every Run) whose Config.Budget is nil draws on it, so concurrent
// pipelines in one process divide the machine even when nobody wired a
// budget explicitly.
var sharedBudget = NewWorkerBudget(0)

// SharedWorkerBudget returns the process-wide budget used when
// Config.Budget is nil.
func SharedWorkerBudget() *WorkerBudget { return sharedBudget }

// Total returns the budget's worker total (GOMAXPROCS when tracking).
func (b *WorkerBudget) Total() int {
	if b.total > 0 {
		return b.total
	}
	return runtime.GOMAXPROCS(0)
}

// Active returns the number of registered pipelines and the sum of their
// rank counts.
func (b *WorkerBudget) Active() (pipelines, ranks int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pipelines, b.ranks
}

// acquire registers a pipeline of ranks concurrent ranks with the budget.
func (b *WorkerBudget) acquire(ranks int) {
	if ranks <= 0 {
		panic(fmt.Sprintf("core: budget acquire of %d ranks", ranks))
	}
	b.mu.Lock()
	b.ranks += ranks
	b.pipelines++
	b.mu.Unlock()
}

// release deregisters a pipeline previously registered with acquire.
func (b *WorkerBudget) release(ranks int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ranks -= ranks
	b.pipelines--
	if b.ranks < 0 || b.pipelines < 0 {
		panic(fmt.Sprintf("core: budget release underflow (ranks %d, pipelines %d)", b.ranks, b.pipelines))
	}
}

// WorkersPerRank returns the fair per-rank worker count for a pipeline of
// ranks concurrent ranks drawing on the budget now: the total divided by
// the ranks active across all registered pipelines (at least the asking
// pipeline's own, so an unregistered caller gets the classic single-tenant
// division), never below one worker per rank.
func (b *WorkerBudget) WorkersPerRank(ranks int) int {
	if ranks < 1 {
		ranks = 1
	}
	b.mu.Lock()
	active := b.ranks
	b.mu.Unlock()
	if active < ranks {
		active = ranks
	}
	w := b.Total() / active
	if w < 1 {
		w = 1
	}
	return w
}

package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/diy"
)

// The compute phase must produce byte-identical meshes and identical
// counts for every worker count: cells land by site index, counts merge by
// summation, and no cell's arithmetic depends on the fan-out.
func TestComputeBlockCellsDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	const L = 8.0
	ps := perturbedParticles(rng, 8, L, 0.8)
	cfg := baseConfig(L)
	cfg.MinVolume = 0.05 // exercise both cull stages
	cfg.HullPass = true

	d, err := diy.Decompose(cfg.Domain, 4, cfg.Periodic)
	if err != nil {
		t.Fatal(err)
	}
	parts := diy.PartitionParticles(d, ps)

	for rank := 0; rank < d.NumBlocks(); rank++ {
		ghosts := diy.GatherGhosts(d, rank, parts, cfg.GhostSize)
		var refBytes []byte
		var refCounts CellCounts
		for _, workers := range []int{1, 2, 8} {
			res, err := computeBlockCells(d.Block(rank), parts[rank], ghosts, cfg, workers)
			if err != nil {
				t.Fatalf("rank %d workers %d: %v", rank, workers, err)
			}
			enc, err := res.Mesh.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if workers == 1 {
				refBytes, refCounts = enc, res.Counts
				continue
			}
			if !bytes.Equal(enc, refBytes) {
				t.Errorf("rank %d: mesh encoding differs between workers=1 and workers=%d", rank, workers)
			}
			if res.Counts != refCounts {
				t.Errorf("rank %d: counts differ between workers=1 (%+v) and workers=%d (%+v)",
					rank, refCounts, workers, res.Counts)
			}
		}
	}
}

// The same property through the public entry point: a full Run with an
// explicit Workers setting matches the default.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	const L = 8.0
	ps := perturbedParticles(rng, 6, L, 0.8)

	encode := func(workers int) ([][]byte, CellCounts) {
		cfg := baseConfig(L)
		cfg.Workers = workers
		out, err := Run(cfg, ps, 2)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		encs := make([][]byte, len(out.Meshes))
		for i, m := range out.Meshes {
			enc, err := m.Encode()
			if err != nil {
				t.Fatal(err)
			}
			encs[i] = enc
		}
		return encs, out.Counts
	}

	refEncs, refCounts := encode(1)
	for _, workers := range []int{2, 8} {
		encs, counts := encode(workers)
		for i := range refEncs {
			if !bytes.Equal(encs[i], refEncs[i]) {
				t.Errorf("block %d: mesh differs between Workers=1 and Workers=%d", i, workers)
			}
		}
		if counts != refCounts {
			t.Errorf("counts differ between Workers=1 (%+v) and Workers=%d (%+v)", refCounts, workers, counts)
		}
	}
}

func TestEffectiveWorkers(t *testing.T) {
	if got := EffectiveWorkers(Config{Workers: 3}, 8); got != 3 {
		t.Errorf("explicit Workers=3 -> %d", got)
	}
	if got := EffectiveWorkers(Config{}, 1<<20); got != 1 {
		t.Errorf("many ranks -> %d, want floor of 1", got)
	}
	if got := EffectiveWorkers(Config{}, 0); got < 1 {
		t.Errorf("concurrentRanks=0 -> %d, want >= 1", got)
	}
}

package core

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/density"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/obs"
)

// The density pipeline's central contract, mirroring the MergeCanonical
// oracle: every StepDensity — any block count, any worker count, warm or
// cold — produces grid bytes identical to a direct single-process
// density.Compute of the same particles.
func TestStepDensityByteIdenticalAcrossDecompositions(t *testing.T) {
	const ng, steps = 8, 3
	snaps := evolvingSnapshots(t, ng, steps)
	cfg := baseConfig(float64(ng))
	dc := density.Config{GridN: 16, Spectrum: true}

	// Reference: the direct run, with the defaults a session applies.
	refCfg := dc
	refCfg.Box = cfg.Domain
	refCfg.Periodic = cfg.Periodic
	refCfg.Pad = cfg.GhostSize
	var refs [][]byte
	var refResults []*density.Result
	for _, ps := range snaps {
		pts := make([]geom.Vec3, len(ps))
		for i, p := range ps {
			pts[i] = p.Pos
		}
		res, err := density.Compute(refCfg, pts, nil)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, density.EncodeGrid(res.Grid))
		refResults = append(refResults, res)
	}

	for _, blocks := range []int{1, 2, 8} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("blocks=%d/workers=%d", blocks, workers), func(t *testing.T) {
				scfg := cfg
				scfg.Workers = workers
				s, err := OpenSession(scfg, blocks)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				for step, ps := range snaps {
					res, err := s.StepDensity(ps, dc)
					if err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					if !bytes.Equal(density.EncodeGrid(res.Grid), refs[step]) {
						t.Fatalf("step %d: grid bytes differ from direct density.Compute", step)
					}
					if res.Sample != refResults[step].Sample {
						t.Errorf("step %d: sample stats %+v != %+v", step, res.Sample, refResults[step].Sample)
					}
					if !reflect.DeepEqual(res.Stats, refResults[step].Stats) {
						t.Errorf("step %d: stats differ:\n  got  %+v\n  want %+v",
							step, res.Stats, refResults[step].Stats)
					}
				}
				if s.DensitySteps() != steps {
					t.Errorf("DensitySteps() = %d, want %d", s.DensitySteps(), steps)
				}
			})
		}
	}
}

func TestStepDensityRecordsPhases(t *testing.T) {
	const ng = 8
	snaps := evolvingSnapshots(t, ng, 1)
	cfg := baseConfig(float64(ng))
	cfg.Recorder = obs.NewRecorder(2)
	s, err := OpenSession(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.StepDensity(snaps[0], density.Config{GridN: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs == nil {
		t.Fatal("no obs snapshot on a recorded session")
	}
	if res.Obs.PhaseTotal(obs.PhaseTriangulate) <= 0 {
		t.Error("no triangulate span recorded")
	}
	if res.Obs.PhaseTotal(obs.PhaseInterpolate) <= 0 {
		t.Error("no interpolate span recorded")
	}
	if res.Obs.PhaseTotal(obs.PhaseSpectrum) <= 0 {
		t.Error("no spectrum span recorded")
	}
}

// An injected crash at the density checkpoint must degrade like any other
// rank failure: a structured error now, a terminally failed session after.
func TestStepDensityFaultContainment(t *testing.T) {
	const ng = 8
	snaps := evolvingSnapshots(t, ng, 1)
	cfg := baseConfig(float64(ng))
	cfg.StallTimeout = 2 * time.Second
	cfg.Faults = &faultinject.Plan{Seed: 11, CrashRank: 1, CrashStep: 1}
	s, err := OpenSession(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, err = s.StepDensity(snaps[0], density.Config{GridN: 8})
	if err == nil {
		t.Fatal("injected crash produced no error")
	}
	var re *comm.RankError
	if !errors.As(err, &re) {
		t.Fatalf("crash error %v does not carry a RankError", err)
	}
	if _, err := s.StepDensity(snaps[0], density.Config{GridN: 8}); err == nil {
		t.Fatal("session not terminal after an aborted density step")
	}
}

// Density steps and tessellation steps interleave on one session: the
// snapshot's Step output and StepDensity grid must both match their
// standalone references.
func TestStepDensityInterleavesWithTessellation(t *testing.T) {
	const ng = 8
	snaps := evolvingSnapshots(t, ng, 2)
	cfg := baseConfig(float64(ng))
	s, err := OpenSession(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	dc := density.Config{GridN: 8}
	refCfg := dc
	refCfg.Box = cfg.Domain
	refCfg.Periodic = true
	refCfg.Pad = cfg.GhostSize
	for step, ps := range snaps {
		out, err := s.Step(ps)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		want, err := Run(cfg, ps, 2)
		if err != nil {
			t.Fatal(err)
		}
		if out.Counts != want.Counts {
			t.Errorf("step %d: tessellation counts diverge after density interleaving", step)
		}
		res, err := s.StepDensity(ps, dc)
		if err != nil {
			t.Fatalf("density step %d: %v", step, err)
		}
		pts := make([]geom.Vec3, len(ps))
		for i, p := range ps {
			pts[i] = p.Pos
		}
		ref, err := density.Compute(refCfg, pts, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(density.EncodeGrid(res.Grid), density.EncodeGrid(ref.Grid)) {
			t.Fatalf("step %d: interleaved density grid differs from direct run", step)
		}
	}
}

package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/density"
	"repro/internal/diy"
	"repro/internal/dtfe"
	"repro/internal/geom"
	"repro/internal/obs"
)

// StepDensity runs the streaming density pipeline over one snapshot's
// particles through the session's ranks: rank 0 triangulates (phase
// "triangulate"), every rank interpolates a contiguous grid slab with its
// worker share (phase "interpolate"), and the statistics/spectrum
// reduction (phase "spectrum") runs after the ranks join. The pipeline is
// retained across steps — triangulation scratch, estimator accumulators,
// and the sample grid all stay warm — and is rebuilt only when dc changes.
//
// A zero dc.Box inherits the session's domain, periodicity, and ghost
// size as the periodic padding depth. Faults injected at the "density"
// checkpoint and stalls degrade exactly like tessellation steps: the
// world aborts, the error is structured, and the session turns terminal.
//
// Grid bytes are byte-identical to a direct density.Compute of the same
// particles under the same config, for any block or worker count: slab
// interpolation only reads the immutable triangulation through a
// deterministic locator (the decomposition-independence oracle pinned by
// the tests).
//
// The returned Result is a loan like Step's Output: its grid lives in the
// pipeline's retained buffer and is overwritten by the next StepDensity.
// Clone it to keep it.
//
//tess:loaned
func (s *Session) StepDensity(particles []diy.Particle, dc density.Config) (*density.Result, error) {
	if s.closed {
		return nil, fmt.Errorf("core: session is closed")
	}
	if s.terminal == nil {
		if werr := s.w.Err(); werr != nil {
			s.terminal = werr
		}
	}
	if s.terminal != nil {
		return nil, fmt.Errorf("core: session terminally failed at step %d: %w", s.steps, s.terminal)
	}
	if dc.Box == (geom.Box{}) {
		dc.Box = s.cfg.Domain
		dc.Periodic = s.cfg.Periodic
		if dc.Pad <= 0 {
			dc.Pad = s.cfg.GhostSize
		}
	}
	if dc.Periodic {
		for _, p := range particles {
			if !dc.Box.Contains(p.Pos) {
				return nil, fmt.Errorf("core: particle %d at %v outside periodic density box", p.ID, p.Pos)
			}
		}
	}
	if s.dens == nil || !sameDensityConfig(s.densCfg, dc) {
		p, err := density.New(dc)
		if err != nil {
			return nil, err
		}
		s.dens = p
		s.densCfg = dc
	}
	s.densPts = s.densPts[:0]
	for _, p := range particles {
		s.densPts = append(s.densPts, p.Pos)
	}
	if s.densStats == nil {
		s.densStats = make([]dtfe.SampleStats, s.numBlocks)
	}

	// Spans append to the current recorder epoch (no Reset here): a
	// snapshot's Step and StepDensity share one observation window, so the
	// trace shows tessellation and density phases side by side.
	rec := s.cfg.Recorder
	inj := s.cfg.injector
	n := dc.GridN
	blocks := s.numBlocks
	workers := EffectiveWorkers(s.cfg, s.w.Size())
	var triErr error
	runErr := s.w.Run(func(rank int) {
		inj.Checkpoint(rank, "density")
		if rank == 0 {
			sp := rec.Begin(0, obs.PhaseTriangulate)
			err := s.dens.Triangulate(s.densPts, nil)
			rec.End(0, sp)
			if err != nil {
				triErr = err
				// Release the peers blocked in the barrier below: without
				// the abort they would wait forever on a phase that is
				// never coming.
				s.w.Abort(&comm.RankError{Rank: 0, Value: err})
			}
		}
		// Barrier gives every rank a happens-before edge on rank 0's
		// triangulation (or unwinds if it aborted).
		s.w.BarrierRank(rank)
		sp := rec.Begin(rank, obs.PhaseInterpolate)
		s.densStats[rank] = s.dens.InterpolateSlab(rank*n/blocks, (rank+1)*n/blocks, workers)
		rec.End(rank, sp)
		s.w.BarrierRank(rank)
	})
	if werr := s.w.Err(); werr != nil {
		s.terminal = werr
	}
	if triErr != nil {
		return nil, fmt.Errorf("core: density step: %w", triErr)
	}
	if runErr != nil {
		return nil, fmt.Errorf("core: %w", runErr)
	}

	var sample dtfe.SampleStats
	for _, st := range s.densStats {
		sample.Add(st)
	}
	// The reduction is serial; Run's join makes the grid visible here, and
	// rank 0's recorder slot has no other writer after the world returned.
	sp := rec.Begin(0, obs.PhaseSpectrum)
	res := s.dens.Finalize(sample)
	rec.End(0, sp)
	if rec != nil {
		res.Obs = rec.Snapshot()
	}
	s.densitySteps++
	return res, nil
}

// DensitySteps returns the number of completed density pipeline steps.
func (s *Session) DensitySteps() int { return s.densitySteps }

// sameDensityConfig reports whether two density configs describe the same
// workload (so the retained pipeline can be reused).
func sameDensityConfig(a, b density.Config) bool {
	if a.GridN != b.GridN || a.Box != b.Box || a.Periodic != b.Periodic ||
		a.Pad != b.Pad || a.Spectrum != b.Spectrum || a.VoidThreshold != b.VoidThreshold {
		return false
	}
	if len(a.Percentiles) != len(b.Percentiles) {
		return false
	}
	for i := range a.Percentiles {
		if a.Percentiles[i] != b.Percentiles[i] {
			return false
		}
	}
	return true
}

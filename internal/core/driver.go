package core

import (
	"fmt"
	"sync"

	"repro/internal/comm"
	"repro/internal/diy"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/meshio"
	"repro/internal/obs"
	"repro/internal/voids"
)

// Output is the gathered result of a full tessellation pass.
type Output struct {
	Meshes []*meshio.BlockMesh // indexed by rank
	Counts CellCounts          // global totals
	Timing Timing              // slowest-rank per phase
	Ghosts int                 // total ghost particles exchanged
	// Voids holds the in situ component labeling when Config.LabelVoids is
	// set (sorted by decreasing volume).
	Voids []voids.Component
	// Obs is the observability snapshot of the pass — per-rank phase spans,
	// comm counters, and pipeline metrics — when Config.Recorder was set
	// (nil otherwise).
	Obs *obs.Snapshot
}

// labelVoids runs the in situ connected-component pass over the gathered
// meshes.
func (o *Output) labelVoids(threshold float64) {
	var recs []voids.CellRecord
	for bi, m := range o.Meshes {
		if m == nil {
			continue
		}
		recs = append(recs, voids.CellsFromMesh(m, bi)...)
	}
	if len(recs) == 0 {
		return
	}
	if threshold <= 0 {
		var sum float64
		for _, r := range recs {
			sum += r.Volume
		}
		threshold = sum / float64(len(recs))
	}
	o.Voids = voids.ConnectedComponents(voids.Threshold(recs, threshold))
}

// Run executes a complete parallel tessellation: it decomposes the domain
// into numBlocks blocks, partitions the particles, spawns one rank per
// block, and runs the tess pipeline collectively. It is the standalone-mode
// entry point; in situ callers drive TessellateBlock directly from their
// simulation ranks. Each rank's compute phase additionally fans out over
// Config.Workers goroutines (by default GOMAXPROCS divided among the
// numBlocks concurrent ranks), forming the ranks x workers hierarchy
// described in DESIGN.md.
func Run(cfg Config, particles []diy.Particle, numBlocks int) (*Output, error) {
	d, err := diy.Decompose(cfg.Domain, numBlocks, cfg.Periodic)
	if err != nil {
		return nil, err
	}
	if err := ValidateGhost(d, cfg.GhostSize); err != nil {
		return nil, err
	}
	for _, p := range particles {
		if !cfg.Domain.Contains(p.Pos) {
			return nil, fmt.Errorf("core: particle %d at %v outside domain", p.ID, p.Pos)
		}
	}
	parts := diy.PartitionParticles(d, particles)

	var opts []comm.Option
	if cfg.StallTimeout > 0 {
		opts = append(opts, comm.WithWatchdog(cfg.StallTimeout))
	}
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		inj := faultinject.New(*cfg.Faults, numBlocks)
		cfg.injector = inj
		if cfg.Faults.SendDelayMax > 0 {
			opts = append(opts, comm.WithSendDelay(inj.SendDelay))
		}
	}
	w := comm.NewWorld(numBlocks, opts...)
	if cfg.Recorder != nil {
		if cfg.Recorder.Ranks() != numBlocks {
			return nil, fmt.Errorf("core: recorder sized for %d ranks, run has %d blocks", cfg.Recorder.Ranks(), numBlocks)
		}
		// Pre-register the pipeline counters so concurrent ranks never race
		// a first-use registration against in-flight Count calls.
		registerCounters(cfg.Recorder)
		w.SetRecorder(cfg.Recorder)
	}
	out := &Output{Meshes: make([]*meshio.BlockMesh, numBlocks)}
	errs := make([]error, numBlocks)
	var mu sync.Mutex
	runErr := w.Run(func(rank int) {
		res, tm, err := TessellateBlock(w, d, rank, parts[rank], cfg)
		if err != nil {
			errs[rank] = err
			// Abort the world: the peers of a failed rank are (or soon
			// will be) blocked in the timing/count collectives below, and
			// without the abort they would wait forever on a rank that is
			// never coming.
			w.Abort(&comm.RankError{Rank: rank, Value: err})
			return
		}
		gtm := ReduceTiming(w, rank, tm)
		gcnt := SumCounts(w, rank, res.Counts)
		gghost := comm.Allreduce(w, rank, int64(res.Ghosts), comm.SumInt64)
		mu.Lock()
		out.Meshes[rank] = res.Mesh
		if rank == 0 {
			out.Timing = gtm
			out.Counts = gcnt
			out.Ghosts = int(gghost)
		}
		mu.Unlock()
	})
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: rank %d: %w", r, err)
		}
	}
	if runErr != nil {
		// A contained panic (or watchdog stall) rather than a returned
		// pipeline error: surface the structured abort cause.
		return nil, fmt.Errorf("core: %w", runErr)
	}
	if cfg.LabelVoids {
		out.labelVoids(cfg.VoidThreshold)
	}
	if cfg.Recorder != nil {
		out.Obs = cfg.Recorder.Snapshot()
	}
	return out, nil
}

// CellSummary is the per-cell view used by the accuracy study and the
// statistics harnesses: one row per kept cell, identified by particle ID.
type CellSummary struct {
	ID       int64
	Site     geom.Vec3
	Volume   float64
	Area     float64
	Faces    int
	Complete bool
}

// Summaries flattens gathered meshes into per-cell rows.
func (o *Output) Summaries() []CellSummary {
	var out []CellSummary
	for _, m := range o.Meshes {
		if m == nil {
			continue
		}
		for i := range m.Particles {
			out = append(out, CellSummary{
				ID:       m.ParticleIDs[i],
				Site:     m.Particles[i],
				Volume:   m.Volumes[i],
				Area:     m.Areas[i],
				Faces:    len(m.Cells[i].Faces),
				Complete: m.Complete[i],
			})
		}
	}
	return out
}

// Volumes returns all kept cell volumes.
func (o *Output) Volumes() []float64 {
	var out []float64
	for _, m := range o.Meshes {
		if m == nil {
			continue
		}
		out = append(out, m.Volumes...)
	}
	return out
}

// AccuracyReport compares a parallel run against a reference (serial) run,
// reproducing Table I's "matching cells" metric: a cell matches when the
// reference contains the same particle ID with the same face count and a
// volume equal to relative tolerance tol.
type AccuracyReport struct {
	ReferenceCells int
	ParallelCells  int
	Matching       int
	// Accuracy is Matching / ReferenceCells.
	Accuracy float64
}

// CompareAccuracy matches parallel cells against reference cells by ID.
func CompareAccuracy(reference, parallel []CellSummary, tol float64) AccuracyReport {
	if tol <= 0 {
		tol = 1e-6
	}
	ref := make(map[int64]CellSummary, len(reference))
	for _, c := range reference {
		ref[c.ID] = c
	}
	rep := AccuracyReport{ReferenceCells: len(reference), ParallelCells: len(parallel)}
	for _, c := range parallel {
		r, ok := ref[c.ID]
		if !ok {
			continue
		}
		dv := c.Volume - r.Volume
		if dv < 0 {
			dv = -dv
		}
		if c.Faces == r.Faces && dv <= tol*r.Volume {
			rep.Matching++
		}
	}
	if rep.ReferenceCells > 0 {
		rep.Accuracy = float64(rep.Matching) / float64(rep.ReferenceCells)
	}
	return rep
}

package core

import (
	"repro/internal/diy"
	"repro/internal/geom"
	"repro/internal/meshio"
	"repro/internal/obs"
	"repro/internal/voids"
)

// Output is the gathered result of a full tessellation pass.
type Output struct {
	Meshes []*meshio.BlockMesh // indexed by rank
	Counts CellCounts          // global totals
	Timing Timing              // slowest-rank per phase
	Ghosts int                 // total ghost particles exchanged
	// Voids holds the in situ component labeling when Config.LabelVoids is
	// set (sorted by decreasing volume).
	Voids []voids.Component
	// Obs is the observability snapshot of the pass — per-rank phase spans,
	// comm counters, and pipeline metrics — when Config.Recorder was set
	// (nil otherwise).
	Obs *obs.Snapshot
}

// labelVoids runs the in situ connected-component pass over the gathered
// meshes.
func (o *Output) labelVoids(threshold float64) {
	var recs []voids.CellRecord
	for bi, m := range o.Meshes {
		if m == nil {
			continue
		}
		recs = append(recs, voids.CellsFromMesh(m, bi)...)
	}
	if len(recs) == 0 {
		return
	}
	if threshold <= 0 {
		var sum float64
		for _, r := range recs {
			sum += r.Volume
		}
		threshold = sum / float64(len(recs))
	}
	o.Voids = voids.ConnectedComponents(voids.Threshold(recs, threshold))
}

// Run executes a complete parallel tessellation: it decomposes the domain
// into numBlocks blocks, partitions the particles, spawns one rank per
// block, and runs the tess pipeline collectively. It is the standalone-mode
// entry point, implemented as a single-step session (OpenSession, one Step,
// Close); in situ callers that tessellate many snapshots keep the Session
// open instead and amortize the setup across steps. Each rank's compute
// phase additionally fans out over Config.Workers goroutines (by default
// GOMAXPROCS divided among the numBlocks concurrent ranks), forming the
// ranks x workers hierarchy described in DESIGN.md.
//
// The returned Output owns its memory: the session it briefly lived in is
// closed before Run returns, so nothing will overwrite it.
func Run(cfg Config, particles []diy.Particle, numBlocks int) (*Output, error) {
	s, err := OpenSession(cfg, numBlocks)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	//lint:ignore loanretain the deferred Close ends the session before Run returns, so no later Step can overwrite this Output: the loan becomes ownership
	return s.Step(particles)
}

// Clone returns a deep copy of the output that owns all of its memory,
// detaching it from the session loan it came from (see Session). Void
// components and the observability snapshot are immutable once built and
// are shared, not copied.
func (o *Output) Clone() *Output {
	out := *o
	out.Meshes = make([]*meshio.BlockMesh, len(o.Meshes))
	for i, m := range o.Meshes {
		if m != nil {
			out.Meshes[i] = m.Clone()
		}
	}
	out.Voids = append([]voids.Component(nil), o.Voids...)
	return &out
}

// CellSummary is the per-cell view used by the accuracy study and the
// statistics harnesses: one row per kept cell, identified by particle ID.
type CellSummary struct {
	ID       int64
	Site     geom.Vec3
	Volume   float64
	Area     float64
	Faces    int
	Complete bool
}

// Summaries flattens gathered meshes into per-cell rows.
func (o *Output) Summaries() []CellSummary {
	var out []CellSummary
	for _, m := range o.Meshes {
		if m == nil {
			continue
		}
		for i := range m.Particles {
			out = append(out, CellSummary{
				ID:       m.ParticleIDs[i],
				Site:     m.Particles[i],
				Volume:   m.Volumes[i],
				Area:     m.Areas[i],
				Faces:    len(m.Cells[i].Faces),
				Complete: m.Complete[i],
			})
		}
	}
	return out
}

// Volumes returns all kept cell volumes.
func (o *Output) Volumes() []float64 {
	var out []float64
	for _, m := range o.Meshes {
		if m == nil {
			continue
		}
		out = append(out, m.Volumes...)
	}
	return out
}

// AccuracyReport compares a parallel run against a reference (serial) run,
// reproducing Table I's "matching cells" metric: a cell matches when the
// reference contains the same particle ID with the same face count and a
// volume equal to relative tolerance tol.
type AccuracyReport struct {
	ReferenceCells int
	ParallelCells  int
	Matching       int
	// Accuracy is Matching / ReferenceCells.
	Accuracy float64
}

// CompareAccuracy matches parallel cells against reference cells by ID.
func CompareAccuracy(reference, parallel []CellSummary, tol float64) AccuracyReport {
	if tol <= 0 {
		tol = 1e-6
	}
	ref := make(map[int64]CellSummary, len(reference))
	for _, c := range reference {
		ref[c.ID] = c
	}
	rep := AccuracyReport{ReferenceCells: len(reference), ParallelCells: len(parallel)}
	for _, c := range parallel {
		r, ok := ref[c.ID]
		if !ok {
			continue
		}
		dv := c.Volume - r.Volume
		if dv < 0 {
			dv = -dv
		}
		if c.Faces == r.Faces && dv <= tol*r.Volume {
			rep.Matching++
		}
	}
	if rep.ReferenceCells > 0 {
		rep.Accuracy = float64(rep.Matching) / float64(rep.ReferenceCells)
	}
	return rep
}

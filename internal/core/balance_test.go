package core

import (
	"bytes"
	"testing"

	"repro/internal/cosmo"
	"repro/internal/diy"
	"repro/internal/geom"
	"repro/internal/meshio"
)

// balanceGhost is the ghost size of every byte-identity test here. The
// completeness proof is only sound when ghost regions comfortably exceed
// cell diameters (Table I measures what happens below that), and clustered
// input has large void cells, so these oracles run with a wide ghost: at
// this size the 2-, 4-, and 8-block runs of both decompositions reproduce
// the single-block tessellation exactly (verified while choosing it).
const balanceGhost = 4.5

// clusteredParticles builds the deterministic halo-mock particle set the
// load-balance tests and benches share: tight Plummer halos over a uniform
// background (the background keeps every Voronoi cell small enough that a
// moderate ghost proves all cells complete, which the byte-identity oracle
// requires).
func clusteredParticles(t testing.TB, n int, L float64, seed int64) []diy.Particle {
	t.Helper()
	p := cosmo.DefaultClusterParams()
	p.Seed = seed
	p.BackgroundFrac = 0.4
	pos := cosmo.ClusteredPositions(n, L, p)
	ps := make([]diy.Particle, len(pos))
	for i, q := range pos {
		ps[i] = diy.Particle{ID: int64(i), Pos: q}
	}
	return ps
}

// mergedBytes canonically merges an output's meshes and returns the
// encoding, failing the test if any cell was incomplete (the merge oracle
// is only defined for complete tessellations).
func mergedBytes(t testing.TB, out *Output, cfg Config) []byte {
	t.Helper()
	if out.Counts.Incomplete != 0 {
		t.Fatalf("tessellation has %d incomplete cells; byte-identity oracle needs 0 "+
			"(grow the ghost or the background fraction)", out.Counts.Incomplete)
	}
	m, err := meshio.MergeCanonical(out.Meshes, cfg.Domain, cfg.Periodic)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// The decomposition-independence oracle on clustered input: the canonical
// merged mesh must be byte-identical whether the blocks are an
// equal-volume grid or particle-balanced RCB leaves.
func TestMergeCanonicalByteIdenticalRegularVsRCB(t *testing.T) {
	const L = 12.0
	ps := clusteredParticles(t, 700, L, 42)
	for _, blocks := range []int{2, 4, 8} {
		cfg := baseConfig(L)
		cfg.GhostSize = balanceGhost
		regular, err := Run(cfg, ps, blocks)
		if err != nil {
			t.Fatalf("blocks=%d regular: %v", blocks, err)
		}
		want := mergedBytes(t, regular, cfg)

		cfg.Decomposition = DecomposeRCB
		rcb, err := Run(cfg, ps, blocks)
		if err != nil {
			t.Fatalf("blocks=%d rcb: %v", blocks, err)
		}
		got := mergedBytes(t, rcb, cfg)

		if regular.Counts != rcb.Counts {
			t.Errorf("blocks=%d: counts differ: grid %+v, rcb %+v", blocks, regular.Counts, rcb.Counts)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("blocks=%d: canonical merged mesh differs between grid and RCB", blocks)
		}
	}
}

// RunTimed must produce the same tessellation as Run under RCB (it shares
// decomposeFor and the loopback exchange is test-verified against the
// message path).
func TestRunTimedRCBMatchesRun(t *testing.T) {
	const L = 12.0
	ps := clusteredParticles(t, 500, L, 7)
	cfg := baseConfig(L)
	cfg.GhostSize = balanceGhost
	cfg.Decomposition = DecomposeRCB
	a, err := Run(cfg, ps, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTimed(cfg, ps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts != b.Counts {
		t.Errorf("counts differ: Run %+v, RunTimed %+v", a.Counts, b.Counts)
	}
	if !bytes.Equal(mergedBytes(t, a, cfg), mergedBytes(t, &b.Output, cfg)) {
		t.Error("canonical merged mesh differs between Run and RunTimed under RCB")
	}
}

// driftedParticles translates every particle by a deterministic per-step
// displacement, wrapped into the box — an evolving workload whose motion
// eventually invalidates any fixed particle-balanced decomposition.
func driftedParticles(ps []diy.Particle, L float64, step int) []diy.Particle {
	d := geom.V(0.31, 0.17, 0.23).Scale(float64(step))
	out := make([]diy.Particle, len(ps))
	for i, p := range ps {
		out[i] = diy.Particle{ID: p.ID, Pos: cosmo.Wrap(p.Pos.Add(d), L)}
	}
	return out
}

// Warm re-decomposition: with an always-tripping threshold, every step
// after the first rebuilds the RCB decomposition from the new positions —
// and each step's canonical merged output must stay byte-identical to a
// standalone regular-grid run over the same particles.
func TestSessionRCBRebalanceByteIdentity(t *testing.T) {
	const L = 12.0
	const blocks = 4
	const steps = 3
	base := clusteredParticles(t, 600, L, 11)

	cfg := baseConfig(L)
	cfg.GhostSize = balanceGhost
	cfg.Decomposition = DecomposeRCB
	// Imbalance ratio is always >= 1, so any threshold below 1 requests a
	// re-decomposition after every step.
	cfg.RebalanceThreshold = 0.9
	s, err := OpenSession(cfg, blocks)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	refCfg := baseConfig(L)
	refCfg.GhostSize = balanceGhost
	for step := 0; step < steps; step++ {
		ps := driftedParticles(base, L, step)
		got, err := s.Step(ps)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		want, err := Run(refCfg, ps, blocks)
		if err != nil {
			t.Fatalf("step %d reference: %v", step, err)
		}
		if got.Counts != want.Counts {
			t.Errorf("step %d: counts %+v, want %+v", step, got.Counts, want.Counts)
		}
		if !bytes.Equal(mergedBytes(t, got, cfg), mergedBytes(t, want, refCfg)) {
			t.Errorf("step %d: rebalanced session output diverges from regular-grid run", step)
		}
	}
	if got := s.Rebalances(); got != steps-1 {
		t.Errorf("Rebalances() = %d, want %d (every step after the first)", got, steps-1)
	}
	if s.LastImbalance() <= 0 {
		t.Errorf("LastImbalance() = %g, want > 0 after steps", s.LastImbalance())
	}
}

// Without a threshold (or with an unreachable one) an RCB session must
// never rebalance: the first step's decomposition serves the whole run.
func TestSessionRCBNoRebalanceWithoutThreshold(t *testing.T) {
	const L = 12.0
	base := clusteredParticles(t, 400, L, 13)
	cfg := baseConfig(L)
	cfg.Decomposition = DecomposeRCB
	s, err := OpenSession(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for step := 0; step < 2; step++ {
		if _, err := s.Step(driftedParticles(base, L, step)); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	if got := s.Rebalances(); got != 0 {
		t.Errorf("Rebalances() = %d, want 0", got)
	}

	// A huge threshold likewise never trips.
	cfg.RebalanceThreshold = 1e9
	s2, err := OpenSession(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for step := 0; step < 2; step++ {
		if _, err := s2.Step(driftedParticles(base, L, step)); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	if got := s2.Rebalances(); got != 0 {
		t.Errorf("threshold 1e9: Rebalances() = %d, want 0", got)
	}
}

// An RCB session must reject ghosts its periodic links cannot support —
// at Open, before any particles are seen.
func TestSessionRCBOversizedGhostFailsAtOpen(t *testing.T) {
	cfg := baseConfig(8)
	cfg.Decomposition = DecomposeRCB
	cfg.GhostSize = 5 // > L/2 = 4
	if _, err := OpenSession(cfg, 4); err == nil {
		t.Fatal("oversized RCB ghost accepted at Open")
	}
}

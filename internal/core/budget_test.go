package core

import (
	"math/rand"
	"runtime"
	"testing"
)

func TestWorkerBudgetTotals(t *testing.T) {
	if got := NewWorkerBudget(8).Total(); got != 8 {
		t.Errorf("fixed budget Total = %d, want 8", got)
	}
	if got := NewWorkerBudget(0).Total(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("tracking budget Total = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := NewWorkerBudget(-3).Total(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("negative-total budget Total = %d, want GOMAXPROCS", got)
	}
	if SharedWorkerBudget() == nil {
		t.Fatal("no process-wide shared budget")
	}
}

// The fair-share arithmetic: total divided by all active ranks, floored at
// one worker per rank, with the asking pipeline's own ranks as the minimum
// denominator for unregistered callers.
func TestWorkerBudgetWorkersPerRank(t *testing.T) {
	b := NewWorkerBudget(8)

	// Nobody registered: classic single-tenant division by own ranks.
	for _, tc := range []struct{ ranks, want int }{
		{1, 8}, {2, 4}, {3, 2}, {8, 1}, {16, 1}, {0, 8},
	} {
		if got := b.WorkersPerRank(tc.ranks); got != tc.want {
			t.Errorf("idle budget WorkersPerRank(%d) = %d, want %d", tc.ranks, got, tc.want)
		}
	}

	// Two pipelines of 2 ranks each: everyone divides by 4.
	b.acquire(2)
	b.acquire(2)
	if p, r := b.Active(); p != 2 || r != 4 {
		t.Fatalf("Active = (%d, %d), want (2, 4)", p, r)
	}
	if got := b.WorkersPerRank(2); got != 2 {
		t.Errorf("WorkersPerRank(2) with 4 active ranks = %d, want 2", got)
	}
	// An unregistered pipeline asking for more ranks than are active
	// divides by its own count.
	if got := b.WorkersPerRank(8); got != 1 {
		t.Errorf("WorkersPerRank(8) = %d, want 1", got)
	}

	// One pipeline leaves: back to dividing by 2.
	b.release(2)
	if got := b.WorkersPerRank(2); got != 4 {
		t.Errorf("WorkersPerRank(2) after release = %d, want 4", got)
	}
	b.release(2)
	if p, r := b.Active(); p != 0 || r != 0 {
		t.Fatalf("Active after full release = (%d, %d), want (0, 0)", p, r)
	}
}

func TestWorkerBudgetMisuse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("acquire(0)", func() { NewWorkerBudget(4).acquire(0) })
	mustPanic("release underflow", func() { NewWorkerBudget(4).release(1) })
}

// EffectiveWorkers draws on the config's budget (the shared one when nil):
// an explicit Workers pin wins, otherwise the fair share.
func TestEffectiveWorkersUsesBudget(t *testing.T) {
	b := NewWorkerBudget(12)
	cfg := Config{Budget: b}
	if got := EffectiveWorkers(cfg, 3); got != 4 {
		t.Errorf("EffectiveWorkers(budget 12, 3 ranks) = %d, want 4", got)
	}
	cfg.Workers = 2
	if got := EffectiveWorkers(cfg, 3); got != 2 {
		t.Errorf("EffectiveWorkers with Workers pin = %d, want 2", got)
	}
	// Nil budget falls back to the process-wide shared budget (whose
	// state other pipelines may be using — compare against it, not
	// against an assumed-idle machine).
	if got, want := EffectiveWorkers(Config{}, 2), SharedWorkerBudget().WorkersPerRank(2); got != want {
		t.Errorf("EffectiveWorkers(nil budget, 2 ranks) = %d, want shared budget's %d", got, want)
	}
}

// Concurrent sessions on one budget divide it for their whole lifetime:
// the fix for N sessions each assuming GOMAXPROCS is all theirs. Closing
// a session returns its share, and double Close releases only once.
func TestSessionsShareWorkerBudget(t *testing.T) {
	b := NewWorkerBudget(16)
	cfg := baseConfig(10)
	cfg.Budget = b

	s1, err := OpenSession(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := EffectiveWorkers(cfg, 2); got != 8 {
		t.Errorf("one session of 2 ranks: EffectiveWorkers = %d, want 8", got)
	}
	s2, err := OpenSession(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p, r := b.Active(); p != 2 || r != 4 {
		t.Fatalf("Active with two sessions = (%d, %d), want (2, 4)", p, r)
	}
	if got := EffectiveWorkers(cfg, 2); got != 4 {
		t.Errorf("two sessions of 2 ranks: EffectiveWorkers = %d, want 4", got)
	}

	// The division is advisory only: both sessions still produce output
	// (byte-identity across worker counts is pinned elsewhere).
	rng := rand.New(rand.NewSource(5))
	ps := perturbedParticles(rng, 6, 10, 0.3)
	if _, err := s1.Step(ps); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Step(ps); err != nil {
		t.Fatal(err)
	}

	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if got := EffectiveWorkers(cfg, 2); got != 8 {
		t.Errorf("after one Close: EffectiveWorkers = %d, want 8", got)
	}
	if err := s1.Close(); err != nil { // idempotent: must not release twice
		t.Fatal(err)
	}
	if p, r := b.Active(); p != 1 || r != 2 {
		t.Fatalf("Active after double Close = (%d, %d), want (1, 2)", p, r)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if p, r := b.Active(); p != 0 || r != 0 {
		t.Fatalf("Active after all Closes = (%d, %d), want (0, 0)", p, r)
	}
}

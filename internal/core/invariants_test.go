package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/meshio"
	"repro/internal/obs"
)

// Partition of unity as a property test: in a periodic box the Voronoi cells
// tile the domain exactly, so the kept volumes must sum to the box volume to
// within 1e-9 relative error for every decomposition and worker count. This
// is the paper's strongest correctness invariant (every particle's cell,
// counted once, no matter which block computed it).
func TestVolumePartitionProperty(t *testing.T) {
	const L = 8.0
	cases := []struct {
		name    string
		seed    int64
		n       int
		amp     float64
		blocks  int
		workers int
		ghost   float64 // 0 = baseConfig default
	}{
		{"uniform-b1-w1", 101, 8, 0.8, 1, 1, 0},
		{"uniform-b1-w4", 101, 8, 0.8, 1, 4, 0},
		{"uniform-b2-w1", 101, 8, 0.8, 2, 1, 0},
		{"uniform-b2-w4", 101, 8, 0.8, 2, 4, 0},
		{"uniform-b8-w1", 101, 8, 0.8, 8, 1, 0},
		{"uniform-b8-w4", 101, 8, 0.8, 8, 4, 0},
		{"clustered-b2-w4", 202, 6, 0.3, 2, 4, 0},
		{"clustered-b8-w4", 202, 6, 0.3, 8, 4, 0},
		// Sparse cells are large: the ghost must cover the widest cell or
		// the exchange under-resolves the tessellation.
		{"sparse-b8-w1", 303, 4, 0.9, 8, 1, 3.9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			ps := perturbedParticles(rng, tc.n, L, tc.amp)
			cfg := baseConfig(L)
			cfg.Workers = tc.workers
			if tc.ghost > 0 {
				cfg.GhostSize = tc.ghost
			}
			out, err := Run(cfg, ps, tc.blocks)
			if err != nil {
				t.Fatal(err)
			}
			if got := int(out.Counts.Kept); got != len(ps) {
				t.Fatalf("kept %d cells, want %d", got, len(ps))
			}
			var sum float64
			for _, v := range out.Volumes() {
				if v <= 0 {
					t.Fatalf("non-positive cell volume %g", v)
				}
				sum += v
			}
			want := L * L * L
			if rel := math.Abs(sum-want) / want; rel > 1e-9 {
				t.Errorf("volumes sum to %.15g, want %.15g (rel err %.3g > 1e-9)", sum, want, rel)
			}
		})
	}
}

// Cross-decomposition determinism: the same particles tessellated with 1, 2,
// and 8 blocks must merge to byte-identical global meshes. Block-local
// geometry drifts at the ulp level with the decomposition (clip order and
// the block-dependent initial box), so this exercises the canonical merge's
// full vertex re-derivation — any topology difference or nondeterministic
// ordering anywhere in the pipeline breaks the byte comparison.
func TestCrossDecompositionByteIdentical(t *testing.T) {
	const L = 8.0
	for _, seed := range []int64{7, 19} {
		rng := rand.New(rand.NewSource(seed))
		ps := perturbedParticles(rng, 6, L, 0.7)
		var ref []byte
		var refBlocks int
		for _, blocks := range []int{1, 2, 8} {
			out, err := Run(baseConfig(L), ps, blocks)
			if err != nil {
				t.Fatalf("seed %d blocks %d: %v", seed, blocks, err)
			}
			merged, err := meshio.MergeCanonical(out.Meshes, domainBox(L), true)
			if err != nil {
				t.Fatalf("seed %d blocks %d merge: %v", seed, blocks, err)
			}
			if merged.NumCells() != len(ps) {
				t.Fatalf("seed %d blocks %d: merged %d cells, want %d", seed, blocks, merged.NumCells(), len(ps))
			}
			enc, err := merged.Encode()
			if err != nil {
				t.Fatalf("seed %d blocks %d encode: %v", seed, blocks, err)
			}
			if ref == nil {
				ref, refBlocks = enc, blocks
				// The canonical volumes must still tile the box.
				var sum float64
				for _, v := range merged.Volumes {
					sum += v
				}
				if rel := math.Abs(sum-L*L*L) / (L * L * L); rel > 1e-9 {
					t.Fatalf("seed %d: canonical volumes sum rel err %.3g", seed, rel)
				}
				continue
			}
			if !bytes.Equal(ref, enc) {
				t.Errorf("seed %d: %d-block merge differs from %d-block merge (%d vs %d bytes)",
					seed, blocks, refBlocks, len(enc), len(ref))
			}
		}
	}
}

// The concurrent driver must populate Output.Obs with spans for every
// pipeline phase on every rank and with pipeline counters consistent with
// the pipeline's own counts.
func TestRunRecorderSnapshot(t *testing.T) {
	const L = 8.0
	rng := rand.New(rand.NewSource(42))
	ps := perturbedParticles(rng, 6, L, 0.8)
	cfg := baseConfig(L)
	cfg.OutputPath = t.TempDir() + "/mesh.bin"
	const blocks = 4
	cfg.Recorder = obs.NewRecorder(blocks)
	out, err := Run(cfg, ps, blocks)
	if err != nil {
		t.Fatal(err)
	}
	s := out.Obs
	if s == nil {
		t.Fatal("Output.Obs is nil with a recorder configured")
	}
	if s.Ranks != blocks {
		t.Fatalf("snapshot over %d ranks, want %d", s.Ranks, blocks)
	}
	for rank := 0; rank < blocks; rank++ {
		seen := map[obs.Phase]bool{}
		for _, sp := range s.Spans {
			if int(sp.Rank) == rank {
				seen[sp.Phase] = true
			}
		}
		for _, ph := range []obs.Phase{obs.PhaseExchange, obs.PhaseGhostMerge, obs.PhaseCompute, obs.PhaseOutput} {
			if !seen[ph] {
				t.Errorf("rank %d has no %s span", rank, ph)
			}
		}
	}
	if s.TotalSentBytes == 0 || s.TotalSentBytes != s.TotalRecvdBytes {
		t.Errorf("comm bytes: sent %d, received %d", s.TotalSentBytes, s.TotalRecvdBytes)
	}
	sumCounter := func(name string) int64 {
		var tot int64
		for _, v := range s.Counters[name] {
			tot += v
		}
		return tot
	}
	if got := sumCounter(CounterSites); got != out.Counts.Sites {
		t.Errorf("sites counter %d, want %d", got, out.Counts.Sites)
	}
	if got := sumCounter(CounterCellsKept); got != out.Counts.Kept {
		t.Errorf("cells-kept counter %d, want %d", got, out.Counts.Kept)
	}
	if got := sumCounter(CounterGhosts); got != int64(out.Ghosts) {
		t.Errorf("ghosts counter %d, want %d", got, out.Ghosts)
	}
	if s.ComputeImbalance < 1.0 {
		t.Errorf("compute imbalance %g < 1", s.ComputeImbalance)
	}
}

// The sequential timing driver must produce the same snapshot structure,
// including the split ghost-merge/compute spans and output-phase comm
// counters from the collective write.
func TestRunTimedRecorderSnapshot(t *testing.T) {
	const L = 8.0
	rng := rand.New(rand.NewSource(42))
	ps := perturbedParticles(rng, 5, L, 0.8)
	cfg := baseConfig(L)
	cfg.OutputPath = t.TempDir() + "/mesh.bin"
	const blocks = 2
	cfg.Recorder = obs.NewRecorder(blocks)
	out, err := RunTimed(cfg, ps, blocks)
	if err != nil {
		t.Fatal(err)
	}
	s := out.Obs
	if s == nil {
		t.Fatal("TimedOutput.Obs is nil with a recorder configured")
	}
	for rank := 0; rank < blocks; rank++ {
		ph := s.PerRank[rank].Phase
		if ph.Exchange <= 0 || ph.GhostMerge <= 0 || ph.Compute <= 0 || ph.Output <= 0 {
			t.Errorf("rank %d phase breakdown has empty phases: %+v", rank, ph)
		}
		// The recorder's merge+compute must bound-match the driver's
		// combined compute measurement.
		if ph.GhostMerge+ph.Compute > out.PerRankCompute[rank] {
			t.Errorf("rank %d recorder compute %v exceeds measured %v",
				rank, ph.GhostMerge+ph.Compute, out.PerRankCompute[rank])
		}
	}
	if s.TotalSentBytes != s.TotalRecvdBytes {
		t.Errorf("comm bytes: sent %d, received %d", s.TotalSentBytes, s.TotalRecvdBytes)
	}
	if s.TotalSentMsgs == 0 {
		t.Error("collective write recorded no messages")
	}
}

// A recorder sized for the wrong world must be rejected up front by both
// drivers.
func TestRecorderSizeMismatch(t *testing.T) {
	const L = 8.0
	rng := rand.New(rand.NewSource(1))
	ps := perturbedParticles(rng, 4, L, 0.5)
	cfg := baseConfig(L)
	cfg.Recorder = obs.NewRecorder(3)
	if _, err := Run(cfg, ps, 2); err == nil {
		t.Error("Run accepted a recorder sized for a different world")
	}
	if _, err := RunTimed(cfg, ps, 2); err == nil {
		t.Error("RunTimed accepted a recorder sized for a different world")
	}
}

package core

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/faultinject"
)

// The headline containment guarantee: a seeded crash at any pipeline step
// of any rank surfaces as a structured *RankError from Run — no hang, no
// process exit — for both a small and a larger decomposition.
func TestCrashAtStepReturnsRankError(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	ps := perturbedParticles(rng, 8, 10, 0.3)
	for _, blocks := range []int{2, 8} {
		for step := 1; step <= 4; step++ {
			cfg := baseConfig(10)
			cfg.StallTimeout = 2 * time.Second // belt and braces: any hang becomes a dump
			cfg.Faults = &faultinject.Plan{Seed: 9, CrashRank: 1, CrashStep: step}
			out, err := Run(cfg, ps, blocks)
			if err == nil {
				t.Fatalf("blocks=%d step=%d: Run returned output %v despite injected crash", blocks, step, out)
			}
			var re *comm.RankError
			if !errors.As(err, &re) {
				t.Fatalf("blocks=%d step=%d: err %v carries no *RankError", blocks, step, err)
			}
			if re.Rank != 1 {
				t.Errorf("blocks=%d step=%d: failing rank %d, want 1", blocks, step, re.Rank)
			}
			var crash *faultinject.Crash
			if !errors.As(err, &crash) {
				t.Fatalf("blocks=%d step=%d: err %v carries no *faultinject.Crash", blocks, step, err)
			}
			if crash.Step != step {
				t.Errorf("blocks=%d: crashed at step %d, want %d", blocks, crash.Step, step)
			}
			if !errors.Is(err, comm.ErrWorldAborted) {
				t.Errorf("blocks=%d step=%d: err %v does not match ErrWorldAborted", blocks, step, err)
			}
		}
	}
}

// A crash during the collective output phase must abort the peers blocked
// in CollectiveWrite's internal collectives, not leave them waiting.
func TestCrashDuringOutputAborts(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ps := perturbedParticles(rng, 6, 10, 0.3)
	cfg := baseConfig(10)
	cfg.OutputPath = filepath.Join(t.TempDir(), "crash.tess")
	cfg.StallTimeout = 2 * time.Second
	cfg.Faults = &faultinject.Plan{Seed: 3, CrashRank: 0, CrashStep: 3} // step 3 = "output"
	_, err := Run(cfg, ps, 4)
	var re *comm.RankError
	if !errors.As(err, &re) || re.Rank != 0 {
		t.Fatalf("err %v, want *RankError for rank 0", err)
	}
}

// Injected delays stretch the schedule but must not change a single
// output byte: fault-free and delay-only runs are indistinguishable on
// disk (and injection disabled means a plan-free code path).
func TestDelayOnlyRunByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ps := perturbedParticles(rng, 6, 10, 0.3)
	dir := t.TempDir()

	run := func(name string, plan *faultinject.Plan) []byte {
		cfg := baseConfig(10)
		cfg.OutputPath = filepath.Join(dir, name)
		cfg.Faults = plan
		if _, err := Run(cfg, ps, 4); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		data, err := os.ReadFile(cfg.OutputPath)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	clean := run("clean.tess", nil)
	delayed := run("delayed.tess", &faultinject.Plan{
		Seed:            7,
		ComputeDelayMax: 2 * time.Millisecond,
		SendDelayMax:    time.Millisecond,
	})
	disabled := run("disabled.tess", &faultinject.Plan{Seed: 7}) // plan present but inert

	if string(clean) != string(delayed) {
		t.Errorf("delay-only run diverged from fault-free run (%d vs %d bytes)", len(clean), len(delayed))
	}
	if string(clean) != string(disabled) {
		t.Errorf("disabled plan diverged from fault-free run")
	}
}

// The sequential timing driver gets the same containment: an injected
// crash comes back as an error, not a process exit.
func TestRunTimedCrashContained(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	ps := perturbedParticles(rng, 6, 10, 0.3)
	cfg := baseConfig(10)
	cfg.Faults = &faultinject.Plan{Seed: 5, CrashRank: 2, CrashStep: 2}
	_, err := RunTimed(cfg, ps, 4)
	var re *comm.RankError
	if !errors.As(err, &re) {
		t.Fatalf("err %v carries no *RankError", err)
	}
	if re.Rank != 2 {
		t.Errorf("failing rank %d, want 2", re.Rank)
	}
	var crash *faultinject.Crash
	if !errors.As(err, &crash) || crash.Step != 2 {
		t.Errorf("err %v lacks the injected *Crash at step 2", err)
	}
}

// With the watchdog armed and no fault injected, runs succeed and produce
// the same result as an unwatched run — the monitoring is observational.
func TestWatchdogTransparentOnHealthyRun(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	ps := perturbedParticles(rng, 6, 10, 0.3)
	cfg := baseConfig(10)
	plain, err := Run(cfg, ps, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg.StallTimeout = 50 * time.Millisecond
	watched, err := Run(cfg, ps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Counts != watched.Counts {
		t.Errorf("watchdog changed results: %+v vs %+v", plain.Counts, watched.Counts)
	}
}

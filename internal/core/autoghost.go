package core

import (
	"fmt"
	"math"

	"repro/internal/diy"
)

// EstimateGhost proposes a ghost size for a particle set: a multiple of the
// mean interparticle spacing (the paper: "the average cell size is on the
// order of the initial particle spacing", and the ghost region should be at
// least twice the cell size). factor <= 0 defaults to 4. The estimate is
// clamped to the largest ghost the decomposition supports.
func EstimateGhost(cfg Config, numParticles, numBlocks int, factor float64) (float64, error) {
	if numParticles <= 0 {
		return 0, fmt.Errorf("core: no particles to estimate from")
	}
	if factor <= 0 {
		factor = 4
	}
	spacing := math.Cbrt(cfg.Domain.Volume() / float64(numParticles))
	g := factor * spacing
	m, err := ghostCeiling(cfg, numBlocks)
	if err != nil {
		return 0, err
	}
	if g > m {
		g = m
	}
	return g, nil
}

// ghostCeiling is the largest ghost size cfg's decomposition strategy can
// support for numBlocks blocks, before any particles are seen. The regular
// grid is capped by its smallest block side; RCB by the single-wrap
// periodic-image constraint (half the smallest domain side), or the
// largest domain side when non-periodic (beyond which a wider ghost cannot
// reach anything new).
func ghostCeiling(cfg Config, numBlocks int) (float64, error) {
	if cfg.Decomposition == DecomposeRCB {
		s := cfg.Domain.Size()
		if cfg.Periodic {
			return math.Min(s.X, math.Min(s.Y, s.Z)) / 2, nil
		}
		return math.Max(s.X, math.Max(s.Y, s.Z)), nil
	}
	d, err := diy.Decompose(cfg.Domain, numBlocks, cfg.Periodic)
	if err != nil {
		return 0, err
	}
	return MaxGhost(d), nil
}

// AutoRun addresses the paper's stated follow-up of determining the ghost
// size automatically (Sec. IV-A, Sec. V): it starts from EstimateGhost and
// retessellates with a grown ghost region until every cell is proven
// complete or the decomposition's maximum ghost is reached. It returns the
// output of the final attempt and the ghost size that produced it.
//
// The retry loop is safe because incomplete cells are detected, never
// silently wrong: an insufficient ghost manifests as Counts.Incomplete > 0.
// Cells deleted by the volume thresholds do not trigger retries.
func AutoRun(cfg Config, particles []diy.Particle, numBlocks int) (*Output, float64, error) {
	if cfg.GhostSize <= 0 {
		g, err := EstimateGhost(cfg, len(particles), numBlocks, 0)
		if err != nil {
			return nil, 0, err
		}
		cfg.GhostSize = g
	}
	maxGhost, err := ghostCeiling(cfg, numBlocks)
	if err != nil {
		return nil, 0, err
	}
	if cfg.GhostSize > maxGhost {
		cfg.GhostSize = maxGhost
	}

	const growth = 1.6
	for {
		out, err := Run(cfg, particles, numBlocks)
		if err != nil {
			return nil, 0, err
		}
		if out.Counts.Incomplete == 0 {
			return out, cfg.GhostSize, nil
		}
		if cfg.GhostSize >= maxGhost {
			// The decomposition cannot host a wider ghost; report the best
			// achievable result with its incompleteness visible.
			return out, cfg.GhostSize, nil
		}
		cfg.GhostSize = math.Min(cfg.GhostSize*growth, maxGhost)
	}
}

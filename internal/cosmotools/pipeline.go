package cosmotools

import (
	"fmt"
	"maps"
	"slices"
	"time"

	"repro/internal/nbody"
	"repro/internal/track"
)

// Context is what the framework hands each analysis invocation.
type Context struct {
	// Sim is the live simulation (read-only by convention: analyses must
	// not mutate particle state).
	Sim *nbody.Simulation
	// Step is the simulation step the analysis runs after.
	Step int
	// OutputDir receives analysis files ("" disables file output).
	OutputDir string
}

// Result is one analysis invocation's summary.
type Result struct {
	Analysis string
	Step     int
	Summary  string
	Metrics  map[string]float64
	Elapsed  time.Duration
}

// Analysis is a level-1 in situ analysis tool.
type Analysis interface {
	// Name identifies the tool (the deck section name).
	Name() string
	// Every is the execution period in steps (always run on the final
	// step as well).
	Every() int
	// Run executes the analysis on the current simulation state.
	Run(ctx *Context) (Result, error)
}

// builder constructs an analysis from its deck section, given the
// simulation configuration (for box size and particle counts).
type builder func(s *Section, simCfg nbody.Config) (Analysis, error)

var registry = map[string]builder{
	"correlation": newCorrelationAnalysis,
	"tess":        newTessAnalysis,
	"halo":        newHaloAnalysis,
	"multistream": newMultistreamAnalysis,
	"powerspec":   newPowerSpectrumAnalysis,
	"voids":       newVoidsAnalysis,
}

// KnownAnalyses lists the registered analysis names.
func KnownAnalyses() []string {
	return slices.Sorted(maps.Keys(registry))
}

// Pipeline drives a set of analyses over a simulation run, mirroring the
// paper's Figure 4: the simulation invokes the framework each step, and
// each enabled tool runs at its configured frequency.
type Pipeline struct {
	Analyses  []Analysis
	OutputDir string
	// Results accumulates every invocation in execution order.
	Results []Result

	steps int
	err   error
}

// NewPipeline builds the analyses named in the deck.
func NewPipeline(cfg *Config, simCfg nbody.Config, outputDir string) (*Pipeline, error) {
	p := &Pipeline{OutputDir: outputDir}
	for i := range cfg.Sections {
		s := &cfg.Sections[i]
		build, ok := registry[s.Name]
		if !ok {
			return nil, fmt.Errorf("cosmotools: unknown analysis %q (known: %v)", s.Name, KnownAnalyses())
		}
		a, err := build(s, simCfg)
		if err != nil {
			return nil, err
		}
		p.Analyses = append(p.Analyses, a)
	}
	if len(p.Analyses) == 0 {
		return nil, fmt.Errorf("cosmotools: configuration enables no analyses")
	}
	return p, nil
}

// Hook returns the per-step callback to pass to Simulation.Run; totalSteps
// lets the hook force a final-step invocation of every tool.
func (p *Pipeline) Hook(totalSteps int) func(*nbody.Simulation) {
	p.steps = totalSteps
	return func(sim *nbody.Simulation) {
		if p.err != nil {
			return
		}
		for _, a := range p.Analyses {
			due := a.Every() > 0 && sim.Step%a.Every() == 0
			last := sim.Step == totalSteps
			if !due && !last {
				continue
			}
			ctx := &Context{Sim: sim, Step: sim.Step, OutputDir: p.OutputDir}
			t0 := time.Now()
			res, err := a.Run(ctx)
			if err != nil {
				p.err = fmt.Errorf("cosmotools: %s at step %d: %w", a.Name(), sim.Step, err)
				return
			}
			res.Analysis = a.Name()
			res.Step = sim.Step
			res.Elapsed = time.Since(t0)
			p.Results = append(p.Results, res)
		}
	}
}

// Err returns the first analysis error, if any.
func (p *Pipeline) Err() error { return p.err }

// Close releases every analysis that holds persistent resources (the
// tessellation-backed tools keep a session of retained worlds and buffers
// open across invocations). It is idempotent and returns the first close
// error.
func (p *Pipeline) Close() error {
	var first error
	for _, a := range p.Analyses {
		c, ok := a.(interface{ Close() error })
		if !ok {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ResultsFor returns the invocations of one analysis in step order.
func (p *Pipeline) ResultsFor(name string) []Result {
	var out []Result
	for _, r := range p.Results {
		if r.Analysis == name {
			out = append(out, r)
		}
	}
	return out
}

// Run executes a fresh simulation with the pipeline attached, closing the
// analyses' persistent sessions when the run finishes.
func (p *Pipeline) Run(simCfg nbody.Config, steps int) error {
	sim, err := nbody.New(simCfg)
	if err != nil {
		return err
	}
	defer p.Close()
	sim.Run(steps, p.Hook(steps))
	return p.err
}

// HaloTree builds the merger tree over the halos accumulated by the
// pipeline's halo analysis (Fig. 4 lists "merger trees" among the level-1
// tools): halos are matched across snapshots by particle membership, so
// Merge events are halo mergers and Birth events are newly collapsed
// halos. minOverlapFrac is passed to track.Build.
func (p *Pipeline) HaloTree(minOverlapFrac float64) (*track.Tree, error) {
	for _, a := range p.Analyses {
		ha, ok := a.(*haloAnalysis)
		if !ok {
			continue
		}
		snaps := make([]track.Snapshot, len(ha.snapshots))
		for i, s := range ha.snapshots {
			feats := make([]track.Feature, len(s.halos))
			for j, h := range s.halos {
				ids := make([]int64, len(h.Members))
				for k, m := range h.Members {
					ids[k] = int64(m)
				}
				feats[j] = track.Feature{IDs: ids, Weight: float64(h.Mass())}
			}
			snaps[i] = track.Snapshot{Step: s.step, Features: feats}
		}
		return track.Build(snaps, minOverlapFrac)
	}
	return nil, fmt.Errorf("cosmotools: pipeline has no halo analysis")
}

// VoidTree builds the feature tree (internal/track) over the void
// components accumulated by the pipeline's voids analysis — the temporal
// evolution study of the paper's Sec. V. minOverlapFrac is passed to
// track.Build.
func (p *Pipeline) VoidTree(minOverlapFrac float64) (*track.Tree, error) {
	for _, a := range p.Analyses {
		va, ok := a.(*voidsAnalysis)
		if !ok {
			continue
		}
		snaps := make([]track.Snapshot, len(va.snapshots))
		for i, s := range va.snapshots {
			feats := make([]track.Feature, len(s.comps))
			for j, c := range s.comps {
				feats[j] = track.Feature{IDs: c.CellIDs, Weight: c.Functionals.Volume}
			}
			snaps[i] = track.Snapshot{Step: s.step, Features: feats}
		}
		return track.Build(snaps, minOverlapFrac)
	}
	return nil, fmt.Errorf("cosmotools: pipeline has no voids analysis")
}

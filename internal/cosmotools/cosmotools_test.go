package cosmotools

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/nbody"
)

func parse(t *testing.T, deck string) *Config {
	t.Helper()
	cfg, err := ParseConfig(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestParseConfigBasic(t *testing.T) {
	cfg := parse(t, `
# a deck
[tess]
every = 5
ghost = 4

[halo]
linking_length = 0.25
`)
	if len(cfg.Sections) != 2 {
		t.Fatalf("sections = %d", len(cfg.Sections))
	}
	if cfg.Sections[0].Name != "tess" || cfg.Sections[0].Params["every"] != "5" {
		t.Errorf("section 0: %+v", cfg.Sections[0])
	}
	if cfg.Sections[1].Params["linking_length"] != "0.25" {
		t.Errorf("section 1: %+v", cfg.Sections[1])
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []string{
		"[tess\nevery = 5",    // malformed section
		"[]\n",                // empty name
		"[a]\n[a]\n",          // duplicate section
		"every = 5\n",         // key outside section
		"[a]\nnot a pair\n",   // missing '='
		"[a]\n = 5\n",         // empty key
		"[a]\nx = 1\nx = 2\n", // duplicate key
	}
	for _, deck := range cases {
		if _, err := ParseConfig(strings.NewReader(deck)); err == nil {
			t.Errorf("deck %q accepted", deck)
		}
	}
}

func TestSectionTypedAccessors(t *testing.T) {
	cfg := parse(t, "[a]\nf = 2.5\ni = 7\nb = true\nbad = xyz\n")
	s := &cfg.Sections[0]
	if v, err := s.Float("f", 0); err != nil || v != 2.5 {
		t.Errorf("Float = %v, %v", v, err)
	}
	if v, err := s.Float("missing", 9); err != nil || v != 9 {
		t.Errorf("Float default = %v, %v", v, err)
	}
	if v, err := s.Int("i", 0); err != nil || v != 7 {
		t.Errorf("Int = %v, %v", v, err)
	}
	if v, err := s.Bool("b", false); err != nil || !v {
		t.Errorf("Bool = %v, %v", v, err)
	}
	if _, err := s.Float("bad", 0); err == nil {
		t.Error("bad float accepted")
	}
	if _, err := s.Int("bad", 0); err == nil {
		t.Error("bad int accepted")
	}
	if _, err := s.Bool("bad", false); err == nil {
		t.Error("bad bool accepted")
	}
	if bad := s.UnknownKeys("f", "i", "b"); len(bad) != 1 || bad[0] != "bad" {
		t.Errorf("UnknownKeys = %v", bad)
	}
}

func TestNewPipelineValidation(t *testing.T) {
	simCfg := nbody.DefaultConfig(8)
	if _, err := NewPipeline(parse(t, "[nope]\n"), simCfg, ""); err == nil {
		t.Error("unknown analysis accepted")
	}
	if _, err := NewPipeline(&Config{}, simCfg, ""); err == nil {
		t.Error("empty pipeline accepted")
	}
	if _, err := NewPipeline(parse(t, "[tess]\ntypo = 1\n"), simCfg, ""); err == nil {
		t.Error("unknown key accepted")
	}
	if _, err := NewPipeline(parse(t, "[halo]\nevery = zzz\n"), simCfg, ""); err == nil {
		t.Error("bad int accepted")
	}
}

func TestKnownAnalyses(t *testing.T) {
	known := KnownAnalyses()
	want := []string{"correlation", "halo", "multistream", "powerspec", "tess", "voids"}
	if len(known) != len(want) {
		t.Fatalf("known = %v", known)
	}
	for i := range want {
		if known[i] != want[i] {
			t.Errorf("known[%d] = %s, want %s", i, known[i], want[i])
		}
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	dir := t.TempDir()
	deck := `
[tess]
every = 5
blocks = 4
write = true

[halo]
every = 5
linking_length = 0.3
min_members = 5

[multistream]
every = 10
grid = 16

[powerspec]
every = 10
bins = 4

[voids]
every = 5
blocks = 4
`
	simCfg := nbody.DefaultConfig(8)
	p, err := NewPipeline(parse(t, deck), simCfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(simCfg, 10); err != nil {
		t.Fatal(err)
	}

	// tess, halo, voids run at steps 5 and 10; multistream and powerspec
	// at 10 only.
	counts := map[string]int{}
	for _, r := range p.Results {
		counts[r.Analysis]++
		if r.Elapsed <= 0 {
			t.Errorf("%s: elapsed not recorded", r.Analysis)
		}
		if r.Summary == "" {
			t.Errorf("%s: empty summary", r.Analysis)
		}
	}
	want := map[string]int{"tess": 2, "halo": 2, "voids": 2, "multistream": 1, "powerspec": 1}
	for name, n := range want {
		if counts[name] != n {
			t.Errorf("%s ran %d times, want %d (all: %v)", name, counts[name], n, counts)
		}
	}

	// tess wrote its files.
	if _, err := os.Stat(filepath.Join(dir, "tess-step-0005.out")); err != nil {
		t.Errorf("missing tess output at step 5: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "tess-step-0010.out")); err != nil {
		t.Errorf("missing tess output at step 10: %v", err)
	}

	// Metrics are populated and sane.
	tessResults := p.ResultsFor("tess")
	if len(tessResults) != 2 {
		t.Fatalf("tess results = %d", len(tessResults))
	}
	if tessResults[0].Metrics["cells"] != 512 {
		t.Errorf("tess cells = %v", tessResults[0].Metrics["cells"])
	}

	// The void feature tree spans both snapshots.
	tree, err := p.VoidTree(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Snapshots) != 2 {
		t.Fatalf("void tree snapshots = %d", len(tree.Snapshots))
	}
	if len(tree.Links) != 1 {
		t.Fatalf("void tree link sets = %d", len(tree.Links))
	}
	if _, err := tree.EventsAt(0); err != nil {
		t.Fatal(err)
	}
}

func TestVoidTreeRequiresVoidsAnalysis(t *testing.T) {
	simCfg := nbody.DefaultConfig(8)
	p, err := NewPipeline(parse(t, "[halo]\n"), simCfg, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.VoidTree(0.5); err == nil {
		t.Error("VoidTree without voids analysis accepted")
	}
}

func TestHookFinalStepAlwaysRuns(t *testing.T) {
	simCfg := nbody.DefaultConfig(8)
	p, err := NewPipeline(parse(t, "[halo]\nevery = 100\n"), simCfg, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(simCfg, 3); err != nil {
		t.Fatal(err)
	}
	if len(p.Results) != 1 || p.Results[0].Step != 3 {
		t.Errorf("final-step invocation missing: %+v", p.Results)
	}
}

func TestHaloTree(t *testing.T) {
	simCfg := nbody.DefaultConfig(8)
	// Stronger coupling so halos exist in a short test run.
	simCfg.G = 2
	p, err := NewPipeline(parse(t, "[halo]\nevery = 10\nlinking_length = 0.4\nmin_members = 5\n"), simCfg, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(simCfg, 20); err != nil {
		t.Fatal(err)
	}
	tree, err := p.HaloTree(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Snapshots) != 2 {
		t.Fatalf("halo tree snapshots = %d", len(tree.Snapshots))
	}
	if _, err := tree.EventsAt(0); err != nil {
		t.Fatal(err)
	}
}

func TestHaloTreeRequiresHaloAnalysis(t *testing.T) {
	simCfg := nbody.DefaultConfig(8)
	p, err := NewPipeline(parse(t, "[powerspec]\n"), simCfg, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.HaloTree(0.5); err == nil {
		t.Error("HaloTree without halo analysis accepted")
	}
}

func TestTessWithHaloSites(t *testing.T) {
	// The paper's Sec. V suggestion: reconstruct with halos as Voronoi
	// sites instead of the tracer particles.
	simCfg := nbody.DefaultConfig(8)
	simCfg.G = 2 // cluster quickly so halos exist
	deck := "[tess]\nevery = 20\nsites = halos\nlinking_length = 0.4\nmin_members = 5\nwrite = false\nblocks = 2\n"
	p, err := NewPipeline(parse(t, deck), simCfg, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(simCfg, 20); err != nil {
		t.Fatal(err)
	}
	res := p.ResultsFor("tess")
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	// Far fewer cells than particles: one per halo.
	if res[0].Metrics["cells"] >= 512 || res[0].Metrics["cells"] < 1 {
		t.Errorf("halo-site tessellation has %v cells", res[0].Metrics["cells"])
	}
}

func TestTessSitesValidation(t *testing.T) {
	simCfg := nbody.DefaultConfig(8)
	if _, err := NewPipeline(parse(t, "[tess]\nsites = galaxies\n"), simCfg, ""); err == nil {
		t.Error("bad sites value accepted")
	}
}

package cosmotools

import (
	"fmt"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/cosmo"
	"repro/internal/diy"
	"repro/internal/geom"
	"repro/internal/halo"
	"repro/internal/multistream"
	"repro/internal/nbody"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/voids"
)

func checkUnknown(s *Section, allowed ...string) error {
	if bad := s.UnknownKeys(allowed...); len(bad) > 0 {
		return fmt.Errorf("cosmotools: [%s] has unknown keys %v", s.Name, bad)
	}
	return nil
}

func particlesOf(sim *nbody.Simulation) []diy.Particle {
	out := make([]diy.Particle, len(sim.Pos))
	for i, p := range sim.Pos {
		out[i] = diy.Particle{ID: int64(i), Pos: p}
	}
	return out
}

// --- tess: the Voronoi tessellation tool ---

type tessAnalysis struct {
	every     int
	blocks    int
	ghost     float64 // 0 = widest valid
	minVolume float64
	write     bool
	sites     string // "particles" or "halos"
	linking   float64
	minMemb   int
	spacing   float64
	domain    geom.Box

	// sess is the persistent tessellation session, opened lazily on the
	// first invocation and reused for every later step of the run (the
	// framework calls Close when the pipeline finishes).
	sess *core.Session
}

func newTessAnalysis(s *Section, simCfg nbody.Config) (Analysis, error) {
	if err := checkUnknown(s, "every", "blocks", "ghost", "min_volume", "write",
		"sites", "linking_length", "min_members"); err != nil {
		return nil, err
	}
	a := &tessAnalysis{spacing: simCfg.BoxSize / float64(simCfg.Ng)}
	var err error
	if a.every, err = s.Int("every", 10); err != nil {
		return nil, err
	}
	if a.blocks, err = s.Int("blocks", 8); err != nil {
		return nil, err
	}
	if a.ghost, err = s.Float("ghost", 0); err != nil {
		return nil, err
	}
	if a.minVolume, err = s.Float("min_volume", 0); err != nil {
		return nil, err
	}
	if a.write, err = s.Bool("write", true); err != nil {
		return nil, err
	}
	// The paper's Sec. V suggestion: tessellate halo centers instead of
	// tracer particles ("halos can be matched to direct observables such
	// as galaxies"). sites = halos runs FOF first and uses halo centers as
	// Voronoi sites.
	a.sites = "particles"
	if v, ok := s.Params["sites"]; ok {
		if v != "particles" && v != "halos" {
			return nil, fmt.Errorf("cosmotools: [tess] sites must be particles or halos, got %q", v)
		}
		a.sites = v
	}
	if a.linking, err = s.Float("linking_length", 0.2); err != nil {
		return nil, err
	}
	if a.minMemb, err = s.Int("min_members", 10); err != nil {
		return nil, err
	}
	L := simCfg.BoxSize
	a.domain = geom.NewBox(geom.V(0, 0, 0), geom.V(L, L, L))
	return a, nil
}

// siteParticles returns the Voronoi sites for this invocation: the tracer
// particles, or the FOF halo centers in halos mode.
func (a *tessAnalysis) siteParticles(ctx *Context) ([]diy.Particle, error) {
	if a.sites != "halos" {
		return particlesOf(ctx.Sim), nil
	}
	halos, err := halo.Find(ctx.Sim.Pos, halo.Config{
		BoxSize:       a.domain.Size().X,
		LinkingLength: a.linking * a.spacing,
		MinMembers:    a.minMemb,
	})
	if err != nil {
		return nil, err
	}
	if len(halos) == 0 {
		return nil, fmt.Errorf("cosmotools: no halos to tessellate at step %d", ctx.Step)
	}
	out := make([]diy.Particle, len(halos))
	for i, h := range halos {
		out[i] = diy.Particle{ID: int64(i), Pos: h.Center}
	}
	return out, nil
}

func (a *tessAnalysis) Name() string { return "tess" }
func (a *tessAnalysis) Every() int   { return a.every }

func (a *tessAnalysis) tessConfig() (core.Config, error) {
	cfg := core.Config{
		Domain:    a.domain,
		Periodic:  true,
		GhostSize: a.ghost,
		MinVolume: a.minVolume,
	}
	d, err := diy.Decompose(a.domain, a.blocks, true)
	if err != nil {
		return cfg, err
	}
	if cfg.GhostSize <= 0 {
		cfg.GhostSize = core.MaxGhost(d)
	}
	if a.sites == "halos" {
		// Halo sites are sparse: proving completeness would need a ghost
		// wider than the blocks; retain the (correct-by-security-radius or
		// flagged) cells rather than deleting them.
		cfg.KeepIncomplete = true
	}
	return cfg, nil
}

// Close releases the analysis's persistent session, if one was opened.
func (a *tessAnalysis) Close() error {
	if a.sess != nil {
		return a.sess.Close()
	}
	return nil
}

func (a *tessAnalysis) Run(ctx *Context) (Result, error) {
	if a.sess == nil {
		cfg, err := a.tessConfig()
		if err != nil {
			return Result{}, err
		}
		if a.sess, err = core.OpenSession(cfg, a.blocks); err != nil {
			return Result{}, err
		}
	}
	sites, err := a.siteParticles(ctx)
	if err != nil {
		return Result{}, err
	}
	outputPath := ""
	if a.write && ctx.OutputDir != "" {
		outputPath = filepath.Join(ctx.OutputDir, fmt.Sprintf("tess-step-%04d.out", ctx.Step))
	}
	out, err := a.sess.StepSource(storage.NewSliceSource(sites), core.StepOpts{OutputPath: outputPath})
	if err != nil {
		return Result{}, err
	}
	m := stats.ComputeMoments(out.Volumes())
	return Result{
		Summary: fmt.Sprintf("%d cells (%d incomplete, %d culled), volume skewness %.2f",
			out.Counts.Kept, out.Counts.Incomplete,
			out.Counts.CulledEarly+out.Counts.CulledExact, m.Skewness),
		Metrics: map[string]float64{
			"cells":           float64(out.Counts.Kept),
			"incomplete":      float64(out.Counts.Incomplete),
			"volume_skewness": m.Skewness,
			"volume_kurtosis": m.Kurtosis,
			"output_bytes":    float64(out.Timing.OutputBytes),
		},
	}, nil
}

// --- halo: friends-of-friends halo finding ---

type haloAnalysis struct {
	every      int
	linking    float64 // in units of mean interparticle spacing
	minMembers int
	boxSize    float64
	spacing    float64

	// snapshots accumulate across invocations for merger trees.
	snapshots []haloSnapshot
}

type haloSnapshot struct {
	step  int
	halos []halo.Halo
}

func newHaloAnalysis(s *Section, simCfg nbody.Config) (Analysis, error) {
	if err := checkUnknown(s, "every", "linking_length", "min_members"); err != nil {
		return nil, err
	}
	a := &haloAnalysis{boxSize: simCfg.BoxSize, spacing: simCfg.BoxSize / float64(simCfg.Ng)}
	var err error
	if a.every, err = s.Int("every", 10); err != nil {
		return nil, err
	}
	if a.linking, err = s.Float("linking_length", 0.2); err != nil {
		return nil, err
	}
	if a.minMembers, err = s.Int("min_members", 10); err != nil {
		return nil, err
	}
	return a, nil
}

func (a *haloAnalysis) Name() string { return "halo" }
func (a *haloAnalysis) Every() int   { return a.every }

func (a *haloAnalysis) Run(ctx *Context) (Result, error) {
	halos, err := halo.Find(ctx.Sim.Pos, halo.Config{
		BoxSize:       a.boxSize,
		LinkingLength: a.linking * a.spacing,
		MinMembers:    a.minMembers,
	})
	if err != nil {
		return Result{}, err
	}
	a.snapshots = append(a.snapshots, haloSnapshot{step: ctx.Step, halos: halos})
	largest := 0
	inHalos := 0
	for _, h := range halos {
		inHalos += h.Mass()
		if h.Mass() > largest {
			largest = h.Mass()
		}
	}
	return Result{
		Summary: fmt.Sprintf("%d halos, largest %d particles, %.1f%% of mass in halos",
			len(halos), largest, 100*float64(inHalos)/float64(len(ctx.Sim.Pos))),
		Metrics: map[string]float64{
			"halos":         float64(len(halos)),
			"largest_mass":  float64(largest),
			"mass_fraction": float64(inHalos) / float64(len(ctx.Sim.Pos)),
		},
	}, nil
}

// --- multistream: stream counting ---

type multistreamAnalysis struct {
	every   int
	grid    int
	ng      int
	boxSize float64
}

func newMultistreamAnalysis(s *Section, simCfg nbody.Config) (Analysis, error) {
	if err := checkUnknown(s, "every", "grid"); err != nil {
		return nil, err
	}
	a := &multistreamAnalysis{ng: simCfg.Ng, boxSize: simCfg.BoxSize}
	var err error
	if a.every, err = s.Int("every", 10); err != nil {
		return nil, err
	}
	if a.grid, err = s.Int("grid", 2*simCfg.Ng); err != nil {
		return nil, err
	}
	return a, nil
}

func (a *multistreamAnalysis) Name() string { return "multistream" }
func (a *multistreamAnalysis) Every() int   { return a.every }

func (a *multistreamAnalysis) Run(ctx *Context) (Result, error) {
	f, err := multistream.Compute(ctx.Sim.Pos, a.ng, a.boxSize, a.grid)
	if err != nil {
		return Result{}, err
	}
	st := f.Summarize()
	return Result{
		Summary: fmt.Sprintf("%.1f%% single-stream, %.1f%% collapsed (3+), max %d streams",
			100*st.SingleStream, 100*st.ThreePlus, st.Max),
		Metrics: map[string]float64{
			"single_stream": st.SingleStream,
			"three_plus":    st.ThreePlus,
			"max_streams":   float64(st.Max),
			"mean_streams":  st.Mean,
		},
	}, nil
}

// --- powerspec: matter power spectrum ---

type powerSpectrumAnalysis struct {
	every   int
	bins    int
	ng      int
	boxSize float64
}

func newPowerSpectrumAnalysis(s *Section, simCfg nbody.Config) (Analysis, error) {
	if err := checkUnknown(s, "every", "bins"); err != nil {
		return nil, err
	}
	a := &powerSpectrumAnalysis{ng: simCfg.Ng, boxSize: simCfg.BoxSize}
	var err error
	if a.every, err = s.Int("every", 10); err != nil {
		return nil, err
	}
	if a.bins, err = s.Int("bins", 8); err != nil {
		return nil, err
	}
	return a, nil
}

func (a *powerSpectrumAnalysis) Name() string { return "powerspec" }
func (a *powerSpectrumAnalysis) Every() int   { return a.every }

func (a *powerSpectrumAnalysis) Run(ctx *Context) (Result, error) {
	pk, err := cosmo.PowerSpectrum(ctx.Sim.Pos, a.ng, a.boxSize, a.bins)
	if err != nil {
		return Result{}, err
	}
	if len(pk) == 0 {
		return Result{}, fmt.Errorf("cosmotools: empty power spectrum")
	}
	return Result{
		Summary: fmt.Sprintf("P(k=%.2f) = %.3f over %d bins", pk[0].K, pk[0].P, len(pk)),
		Metrics: map[string]float64{
			"k_low":    pk[0].K,
			"p_low":    pk[0].P,
			"p_high":   pk[len(pk)-1].P,
			"num_bins": float64(len(pk)),
		},
	}, nil
}

// --- correlation: two-point correlation function ---

type correlationAnalysis struct {
	every   int
	rmax    float64
	bins    int
	boxSize float64
}

func newCorrelationAnalysis(s *Section, simCfg nbody.Config) (Analysis, error) {
	if err := checkUnknown(s, "every", "rmax", "bins"); err != nil {
		return nil, err
	}
	a := &correlationAnalysis{boxSize: simCfg.BoxSize}
	var err error
	if a.every, err = s.Int("every", 10); err != nil {
		return nil, err
	}
	if a.rmax, err = s.Float("rmax", simCfg.BoxSize/4); err != nil {
		return nil, err
	}
	if a.bins, err = s.Int("bins", 8); err != nil {
		return nil, err
	}
	return a, nil
}

func (a *correlationAnalysis) Name() string { return "correlation" }
func (a *correlationAnalysis) Every() int   { return a.every }

func (a *correlationAnalysis) Run(ctx *Context) (Result, error) {
	xi, err := cosmo.CorrelationFunction(ctx.Sim.Pos, a.boxSize, a.rmax, a.bins)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Summary: fmt.Sprintf("xi(%.2f) = %.3f, xi(%.2f) = %.3f",
			xi[0].R, xi[0].Xi, xi[len(xi)-1].R, xi[len(xi)-1].Xi),
		Metrics: map[string]float64{
			"xi_small": xi[0].Xi,
			"xi_large": xi[len(xi)-1].Xi,
			"r_small":  xi[0].R,
			"r_large":  xi[len(xi)-1].R,
		},
	}, nil
}

// --- voids: threshold + connected components + feature tracking ---

type voidsAnalysis struct {
	every     int
	blocks    int
	threshold float64 // 0 = mean cell volume
	domain    geom.Box

	// sess is the persistent tessellation session, opened lazily on the
	// first invocation (the framework calls Close when the pipeline
	// finishes).
	sess *core.Session

	// snapshots accumulate across invocations for feature tracking.
	snapshots []voidSnapshot
}

type voidSnapshot struct {
	step  int
	comps []voids.Component
}

func newVoidsAnalysis(s *Section, simCfg nbody.Config) (Analysis, error) {
	if err := checkUnknown(s, "every", "blocks", "threshold"); err != nil {
		return nil, err
	}
	a := &voidsAnalysis{}
	var err error
	if a.every, err = s.Int("every", 10); err != nil {
		return nil, err
	}
	if a.blocks, err = s.Int("blocks", 8); err != nil {
		return nil, err
	}
	if a.threshold, err = s.Float("threshold", 0); err != nil {
		return nil, err
	}
	L := simCfg.BoxSize
	a.domain = geom.NewBox(geom.V(0, 0, 0), geom.V(L, L, L))
	return a, nil
}

func (a *voidsAnalysis) Name() string { return "voids" }
func (a *voidsAnalysis) Every() int   { return a.every }

// Close releases the analysis's persistent session, if one was opened.
func (a *voidsAnalysis) Close() error {
	if a.sess != nil {
		return a.sess.Close()
	}
	return nil
}

func (a *voidsAnalysis) Run(ctx *Context) (Result, error) {
	if a.sess == nil {
		d, err := diy.Decompose(a.domain, a.blocks, true)
		if err != nil {
			return Result{}, err
		}
		cfg := core.Config{
			Domain:    a.domain,
			Periodic:  true,
			GhostSize: core.MaxGhost(d),
		}
		if a.sess, err = core.OpenSession(cfg, a.blocks); err != nil {
			return Result{}, err
		}
	}
	out, err := a.sess.Step(particlesOf(ctx.Sim))
	if err != nil {
		return Result{}, err
	}
	var recs []voids.CellRecord
	for bi, m := range out.Meshes {
		recs = append(recs, voids.CellsFromMesh(m, bi)...)
	}
	th := a.threshold
	if th <= 0 {
		var sum float64
		for _, r := range recs {
			sum += r.Volume
		}
		th = sum / float64(len(recs))
	}
	comps := voids.ConnectedComponents(voids.Threshold(recs, th))
	a.snapshots = append(a.snapshots, voidSnapshot{step: ctx.Step, comps: comps})

	largest := 0.0
	if len(comps) > 0 {
		largest = comps[0].Functionals.Volume
	}
	return Result{
		Summary: fmt.Sprintf("%d voids above volume %.3f, largest %.1f", len(comps), th, largest),
		Metrics: map[string]float64{
			"voids":          float64(len(comps)),
			"threshold":      th,
			"largest_volume": largest,
		},
	}, nil
}

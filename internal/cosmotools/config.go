// Package cosmotools is the in situ analysis framework of the paper's
// Figure 4: a suite of level-1 analysis tools (Voronoi tessellation, halo
// finding, multistream classification, feature tracking, power spectra)
// run at selected time steps of the simulation under a common interface.
// Tools are enabled and parameterized through a configuration deck, their
// execution frequency is configurable, and results go to parallel storage
// for postprocessing or to a live endpoint (internal/catalyst) for
// run-time inspection.
package cosmotools

import (
	"bufio"
	"fmt"
	"io"
	"maps"
	"slices"
	"strconv"
	"strings"
)

// Config is a parsed cosmology-tools configuration deck: a sequence of
// analysis sections with key = value parameters, e.g.
//
//	# analyses run in situ
//	[tess]
//	every = 10
//	ghost = 4
//
//	[halo]
//	every = 20
//	linking_length = 0.2
type Config struct {
	// Sections preserves deck order; duplicate section names are an error.
	Sections []Section
}

// Section is one analysis block of the deck.
type Section struct {
	Name   string
	Params map[string]string
}

// ParseConfig reads a configuration deck. Blank lines and #-comments are
// ignored; keys are lowercase identifiers.
func ParseConfig(r io.Reader) (*Config, error) {
	cfg := &Config{}
	seen := map[string]bool{}
	var cur *Section
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("cosmotools: line %d: malformed section %q", lineNo, line)
			}
			name := strings.TrimSpace(line[1 : len(line)-1])
			if name == "" {
				return nil, fmt.Errorf("cosmotools: line %d: empty section name", lineNo)
			}
			if seen[name] {
				return nil, fmt.Errorf("cosmotools: line %d: duplicate section %q", lineNo, name)
			}
			seen[name] = true
			cfg.Sections = append(cfg.Sections, Section{Name: name, Params: map[string]string{}})
			cur = &cfg.Sections[len(cfg.Sections)-1]
			continue
		}
		eq := strings.Index(line, "=")
		if eq < 0 {
			return nil, fmt.Errorf("cosmotools: line %d: expected key = value, got %q", lineNo, line)
		}
		if cur == nil {
			return nil, fmt.Errorf("cosmotools: line %d: key outside any [section]", lineNo)
		}
		key := strings.TrimSpace(line[:eq])
		val := strings.TrimSpace(line[eq+1:])
		if key == "" {
			return nil, fmt.Errorf("cosmotools: line %d: empty key", lineNo)
		}
		if _, dup := cur.Params[key]; dup {
			return nil, fmt.Errorf("cosmotools: line %d: duplicate key %q in [%s]", lineNo, key, cur.Name)
		}
		cur.Params[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// Float returns the named parameter as a float, or def when absent.
func (s *Section) Float(key string, def float64) (float64, error) {
	v, ok := s.Params[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("cosmotools: [%s] %s: %w", s.Name, key, err)
	}
	return f, nil
}

// Int returns the named parameter as an int, or def when absent.
func (s *Section) Int(key string, def int) (int, error) {
	v, ok := s.Params[key]
	if !ok {
		return def, nil
	}
	i, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("cosmotools: [%s] %s: %w", s.Name, key, err)
	}
	return i, nil
}

// Bool returns the named parameter as a bool, or def when absent.
func (s *Section) Bool(key string, def bool) (bool, error) {
	v, ok := s.Params[key]
	if !ok {
		return def, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("cosmotools: [%s] %s: %w", s.Name, key, err)
	}
	return b, nil
}

// UnknownKeys returns parameters not in the allowed set — analyses use it
// to reject typos in decks.
func (s *Section) UnknownKeys(allowed ...string) []string {
	ok := map[string]bool{}
	for _, k := range allowed {
		ok[k] = true
	}
	var bad []string
	for _, k := range slices.Sorted(maps.Keys(s.Params)) {
		if !ok[k] {
			bad = append(bad, k)
		}
	}
	return bad
}

// Package track follows features (connected components of Voronoi cells —
// voids) across simulation time steps, the temporal analysis the paper
// plans via the feature-tree method of Chen, Silver & Jiang (reference
// [23]; Sec. V: "We will also look to tracking temporal evolution of
// connected components by using the feature tree method").
//
// Features are matched between consecutive snapshots by the overlap of
// their member cell IDs (particle IDs are stable across time, so set
// intersection is exact). The resulting feature tree classifies each
// feature's fate: continuation, merge, split, birth, or death.
package track

import (
	"fmt"
	"maps"
	"slices"
	"sort"
)

// Feature is one component at one time step: a sorted set of member cell
// IDs plus an arbitrary scalar (typically the component volume).
type Feature struct {
	IDs    []int64
	Weight float64
}

// Snapshot is the feature set of one time step.
type Snapshot struct {
	Step     int
	Features []Feature
}

// Link connects feature From of snapshot i to feature To of snapshot i+1.
type Link struct {
	From, To int
	// Overlap is the number of shared member IDs.
	Overlap int
}

// EventType classifies a feature transition.
type EventType int

const (
	// Continuation: one feature maps to exactly one successor and is that
	// successor's only predecessor.
	Continuation EventType = iota
	// Merge: a successor with several predecessors.
	Merge
	// Split: a predecessor with several successors.
	Split
	// Birth: a feature with no predecessor.
	Birth
	// Death: a feature with no successor.
	Death
)

// String implements fmt.Stringer.
func (e EventType) String() string {
	switch e {
	case Continuation:
		return "continuation"
	case Merge:
		return "merge"
	case Split:
		return "split"
	case Birth:
		return "birth"
	case Death:
		return "death"
	default:
		return fmt.Sprintf("EventType(%d)", int(e))
	}
}

// Event is one classified transition between snapshots i and i+1.
type Event struct {
	Type EventType
	// From are feature indices in snapshot i (empty for births).
	From []int
	// To are feature indices in snapshot i+1 (empty for deaths).
	To []int
}

// Tree is the feature tree over a snapshot sequence: Links[i] holds the
// matched transitions between Snapshots[i] and Snapshots[i+1].
type Tree struct {
	Snapshots []Snapshot
	Links     [][]Link
}

// Build matches features across consecutive snapshots. A link is created
// when the ID overlap is at least minOverlapFrac of the smaller feature
// (pass 0 for the default of 0.5).
func Build(snaps []Snapshot, minOverlapFrac float64) (*Tree, error) {
	if minOverlapFrac <= 0 {
		minOverlapFrac = 0.5
	}
	if minOverlapFrac > 1 {
		return nil, fmt.Errorf("track: overlap fraction %g > 1", minOverlapFrac)
	}
	for si := range snaps {
		for fi := range snaps[si].Features {
			if !sort.SliceIsSorted(snaps[si].Features[fi].IDs, func(a, b int) bool {
				return snaps[si].Features[fi].IDs[a] < snaps[si].Features[fi].IDs[b]
			}) {
				return nil, fmt.Errorf("track: snapshot %d feature %d has unsorted IDs", si, fi)
			}
		}
	}
	t := &Tree{Snapshots: snaps}
	if len(snaps) < 2 {
		return t, nil
	}
	t.Links = make([][]Link, len(snaps)-1)
	for i := 0; i+1 < len(snaps); i++ {
		t.Links[i] = matchSnapshots(snaps[i], snaps[i+1], minOverlapFrac)
	}
	return t, nil
}

// matchSnapshots links features by ID overlap.
func matchSnapshots(a, b Snapshot, frac float64) []Link {
	// Invert b: cell ID -> feature index.
	owner := map[int64]int{}
	for bi, f := range b.Features {
		for _, id := range f.IDs {
			owner[id] = bi
		}
	}
	var links []Link
	for ai, f := range a.Features {
		counts := map[int]int{}
		for _, id := range f.IDs {
			if bi, ok := owner[id]; ok {
				counts[bi]++
			}
		}
		bis := slices.Sorted(maps.Keys(counts))
		for _, bi := range bis {
			ov := counts[bi]
			small := len(f.IDs)
			if len(b.Features[bi].IDs) < small {
				small = len(b.Features[bi].IDs)
			}
			if float64(ov) >= frac*float64(small) {
				links = append(links, Link{From: ai, To: bi, Overlap: ov})
			}
		}
	}
	return links
}

// EventsAt classifies the transitions between snapshots i and i+1.
func (t *Tree) EventsAt(i int) ([]Event, error) {
	if i < 0 || i >= len(t.Links) {
		return nil, fmt.Errorf("track: no links at %d", i)
	}
	links := t.Links[i]
	out := map[int][]int{} // from -> successors
	in := map[int][]int{}  // to -> predecessors
	for _, l := range links {
		out[l.From] = append(out[l.From], l.To)
		in[l.To] = append(in[l.To], l.From)
	}

	var events []Event
	// Births: features of i+1 with no predecessor.
	for bi := range t.Snapshots[i+1].Features {
		if len(in[bi]) == 0 {
			events = append(events, Event{Type: Birth, To: []int{bi}})
		}
	}
	// Deaths: features of i with no successor.
	for ai := range t.Snapshots[i].Features {
		if len(out[ai]) == 0 {
			events = append(events, Event{Type: Death, From: []int{ai}})
		}
	}
	// Merges: successors with several predecessors.
	merged := map[int]bool{}
	for _, bi := range slices.Sorted(maps.Keys(in)) {
		preds := in[bi]
		if len(preds) > 1 {
			sort.Ints(preds)
			events = append(events, Event{Type: Merge, From: preds, To: []int{bi}})
			merged[bi] = true
		}
	}
	// Splits: predecessors with several successors.
	split := map[int]bool{}
	for _, ai := range slices.Sorted(maps.Keys(out)) {
		succs := out[ai]
		if len(succs) > 1 {
			sort.Ints(succs)
			events = append(events, Event{Type: Split, From: []int{ai}, To: succs})
			split[ai] = true
		}
	}
	// Continuations: unique both ways, not already part of merge/split.
	for _, ai := range slices.Sorted(maps.Keys(out)) {
		succs := out[ai]
		if len(succs) != 1 || split[ai] {
			continue
		}
		bi := succs[0]
		if len(in[bi]) == 1 && !merged[bi] {
			events = append(events, Event{Type: Continuation, From: []int{ai}, To: []int{bi}})
		}
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].Type != events[b].Type {
			return events[a].Type < events[b].Type
		}
		return eventKey(events[a]) < eventKey(events[b])
	})
	return events, nil
}

func eventKey(e Event) int {
	if len(e.From) > 0 {
		return e.From[0]
	}
	if len(e.To) > 0 {
		return e.To[0] + 1<<20
	}
	return 1 << 30
}

// Lineage follows a feature forward through continuations (and the largest
// branch of splits/merges), returning the feature index at each subsequent
// snapshot until the track ends. It is the "history of one void" query.
func (t *Tree) Lineage(start int) []int {
	path := []int{start}
	cur := start
	for i := 0; i < len(t.Links); i++ {
		best, bestOv := -1, 0
		for _, l := range t.Links[i] {
			if l.From == cur && l.Overlap > bestOv {
				best, bestOv = l.To, l.Overlap
			}
		}
		if best < 0 {
			break
		}
		path = append(path, best)
		cur = best
	}
	return path
}

package track

import (
	"testing"
)

func feat(ids ...int64) Feature { return Feature{IDs: ids} }

func snap(step int, fs ...Feature) Snapshot { return Snapshot{Step: step, Features: fs} }

func TestBuildValidation(t *testing.T) {
	if _, err := Build([]Snapshot{snap(0, Feature{IDs: []int64{3, 1}})}, 0); err == nil {
		t.Error("unsorted IDs accepted")
	}
	if _, err := Build(nil, 2); err == nil {
		t.Error("overlap fraction > 1 accepted")
	}
	tree, err := Build([]Snapshot{snap(0, feat(1, 2))}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Links) != 0 {
		t.Error("single snapshot should have no links")
	}
}

func TestContinuation(t *testing.T) {
	tree, err := Build([]Snapshot{
		snap(0, feat(1, 2, 3), feat(10, 11)),
		snap(1, feat(1, 2, 3, 4), feat(10, 11, 12)),
	}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	events, err := tree.EventsAt(0)
	if err != nil {
		t.Fatal(err)
	}
	cont := 0
	for _, e := range events {
		if e.Type != Continuation {
			t.Errorf("unexpected event %v", e)
		}
		cont++
	}
	if cont != 2 {
		t.Errorf("continuations = %d, want 2", cont)
	}
}

func TestMerge(t *testing.T) {
	tree, err := Build([]Snapshot{
		snap(0, feat(1, 2, 3), feat(7, 8, 9)),
		snap(1, feat(1, 2, 3, 7, 8, 9)),
	}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	events, err := tree.EventsAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Type != Merge {
		t.Fatalf("events = %v, want one merge", events)
	}
	if len(events[0].From) != 2 || events[0].To[0] != 0 {
		t.Errorf("merge shape: %+v", events[0])
	}
}

func TestSplit(t *testing.T) {
	tree, err := Build([]Snapshot{
		snap(0, feat(1, 2, 3, 7, 8, 9)),
		snap(1, feat(1, 2, 3), feat(7, 8, 9)),
	}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	events, err := tree.EventsAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Type != Split {
		t.Fatalf("events = %v, want one split", events)
	}
	if len(events[0].To) != 2 {
		t.Errorf("split successors: %+v", events[0])
	}
}

func TestBirthAndDeath(t *testing.T) {
	tree, err := Build([]Snapshot{
		snap(0, feat(1, 2, 3), feat(50, 51, 52)),
		snap(1, feat(1, 2, 3), feat(100, 101)),
	}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	events, err := tree.EventsAt(0)
	if err != nil {
		t.Fatal(err)
	}
	var types []EventType
	for _, e := range events {
		types = append(types, e.Type)
	}
	wantTypes := map[EventType]int{Continuation: 1, Birth: 1, Death: 1}
	got := map[EventType]int{}
	for _, ty := range types {
		got[ty]++
	}
	for ty, n := range wantTypes {
		if got[ty] != n {
			t.Errorf("%v events = %d, want %d (all: %v)", ty, got[ty], n, types)
		}
	}
}

func TestOverlapFractionThreshold(t *testing.T) {
	// Features share 1 of 4 IDs: linked at frac 0.25, not at 0.5.
	snaps := []Snapshot{
		snap(0, feat(1, 2, 3, 4)),
		snap(1, feat(4, 10, 11, 12)),
	}
	loose, err := Build(snaps, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(loose.Links[0]) != 1 {
		t.Errorf("loose threshold: %d links, want 1", len(loose.Links[0]))
	}
	strict, err := Build(snaps, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.Links[0]) != 0 {
		t.Errorf("strict threshold: %d links, want 0", len(strict.Links[0]))
	}
}

func TestLineageFollowsLargestBranch(t *testing.T) {
	// Feature 0 splits; its lineage follows the bigger piece; then merges.
	tree, err := Build([]Snapshot{
		snap(0, feat(1, 2, 3, 4, 5)),
		snap(1, feat(1, 2, 3), feat(4, 5)),
		snap(2, feat(1, 2, 3, 4, 5)),
	}, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	lineage := tree.Lineage(0)
	if len(lineage) != 3 {
		t.Fatalf("lineage = %v", lineage)
	}
	if lineage[1] != 0 {
		t.Errorf("lineage should follow the larger split piece: %v", lineage)
	}
	if lineage[2] != 0 {
		t.Errorf("lineage should reach the merged feature: %v", lineage)
	}
}

func TestLineageEndsAtDeath(t *testing.T) {
	tree, err := Build([]Snapshot{
		snap(0, feat(1, 2)),
		snap(1, feat(900)),
		snap(2, feat(900)),
	}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	lineage := tree.Lineage(0)
	if len(lineage) != 1 {
		t.Errorf("dead feature lineage = %v, want just the start", lineage)
	}
}

func TestEventsAtRange(t *testing.T) {
	tree, err := Build([]Snapshot{snap(0, feat(1)), snap(1, feat(1))}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.EventsAt(5); err == nil {
		t.Error("out-of-range EventsAt accepted")
	}
	if _, err := tree.EventsAt(-1); err == nil {
		t.Error("negative EventsAt accepted")
	}
}

func TestEventTypeString(t *testing.T) {
	names := map[EventType]string{
		Continuation: "continuation", Merge: "merge", Split: "split",
		Birth: "birth", Death: "death", EventType(99): "EventType(99)",
	}
	for ty, want := range names {
		if got := ty.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(ty), got, want)
		}
	}
}

// Package faultinject is a deterministic, seeded chaos layer for the
// comm/core stack: per-rank compute slowdowns, per-message delivery
// delays, and rank crash-at-step-N, all derived from a single seed so a
// failing schedule can be replayed exactly.
//
// The layer is built for proving graceful degradation, not for load
// testing: injected delays stretch the schedule without changing any
// computed value (fault-free and delay-only runs are byte-identical), and
// an injected crash must surface as a structured error from the driver —
// never a hang, never a process exit. A nil *Injector is the disabled
// layer and costs one pointer test per hook, like the observability
// recorder.
//
// Threading model: Checkpoint(rank, …) and SendDelay(src, …) touch only
// the slot of the rank they name, and each rank is one goroutine
// (comm.World.Run), so the per-rank counters need no locks — the same
// single-writer sharding the obs recorder uses.
package faultinject

import (
	"fmt"
	"time"
)

// Plan is the declarative description of the faults to inject. The zero
// value injects nothing.
type Plan struct {
	// Seed drives every pseudo-random choice; runs with equal plans are
	// identical.
	Seed int64
	// CrashRank and CrashStep select a deterministic crash: rank
	// CrashRank panics with a *Crash when it reaches its CrashStep-th
	// checkpoint (steps count from 1). CrashStep <= 0 disables crashing.
	CrashRank int
	CrashStep int
	// ComputeDelayMax, when positive, sleeps each rank at every
	// checkpoint for a deterministic per-(rank, step) duration in
	// [0, ComputeDelayMax) — the stand-in for a rank slowed by its share
	// of a clustered region.
	ComputeDelayMax time.Duration
	// SendDelayMax, when positive, delays each message's delivery by a
	// deterministic per-(src, message-index) duration in [0, SendDelayMax)
	// — the stand-in for a congested link.
	SendDelayMax time.Duration
}

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool {
	return p.CrashStep > 0 || p.ComputeDelayMax > 0 || p.SendDelayMax > 0
}

// Crash is the panic value of an injected rank crash; the containment
// layer surfaces it inside a comm.RankError.
type Crash struct {
	Rank int
	Step int
	// Site names the pipeline checkpoint that tripped the crash.
	Site string
}

func (c *Crash) Error() string {
	return fmt.Sprintf("faultinject: rank %d crashed at step %d (%s)", c.Rank, c.Step, c.Site)
}

// Injector is a materialized Plan for a run over a fixed number of ranks.
type Injector struct {
	plan  Plan
	steps []slot // per-rank checkpoint counter
	msgs  []slot // per-rank outgoing-message counter
}

// slot pads each rank's counter onto its own cache line (counters sit on
// the exchange hot path when delays are armed).
type slot struct {
	n int64
	_ [56]byte
}

// New materializes plan for a run over ranks ranks.
func New(plan Plan, ranks int) *Injector {
	if ranks <= 0 {
		panic(fmt.Sprintf("faultinject: ranks %d", ranks))
	}
	return &Injector{plan: plan, steps: make([]slot, ranks), msgs: make([]slot, ranks)}
}

// Plan returns the plan the injector was built from.
func (in *Injector) Plan() Plan { return in.plan }

// Checkpoint marks rank passing one pipeline step: it applies the plan's
// compute slowdown for this (rank, step) and panics with a *Crash when
// the crash schedule names it. site labels the checkpoint in the crash
// diagnostic. Safe (and free) on a nil Injector.
func (in *Injector) Checkpoint(rank int, site string) {
	if in == nil {
		return
	}
	in.steps[rank].n++
	step := in.steps[rank].n
	if in.plan.ComputeDelayMax > 0 {
		time.Sleep(in.draw(uint64(rank), uint64(step), 0x636f6d70, in.plan.ComputeDelayMax))
	}
	if in.plan.CrashStep > 0 && rank == in.plan.CrashRank && step == int64(in.plan.CrashStep) {
		panic(&Crash{Rank: rank, Step: int(step), Site: site})
	}
}

// SendDelay is the comm.WithSendDelay hook: a deterministic delivery
// delay for the next message src posts. dst and tag are accepted for
// signature compatibility; determinism keys on (seed, src, message
// index) so the delay sequence does not depend on map-order-free but
// schedule-dependent destination interleavings. Safe on a nil Injector.
func (in *Injector) SendDelay(src, dst, tag int) time.Duration {
	if in == nil || in.plan.SendDelayMax <= 0 {
		return 0
	}
	in.msgs[src].n++
	return in.draw(uint64(src), uint64(in.msgs[src].n), 0x73656e64, in.plan.SendDelayMax)
}

// draw maps (seed, a, b, domain) to a duration in [0, max) via a
// splitmix64-style hash: stateless, so equal plans give equal schedules.
func (in *Injector) draw(a, b, domain uint64, max time.Duration) time.Duration {
	x := uint64(in.plan.Seed) ^ domain ^ a<<32 ^ b
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	x ^= x >> 31
	return time.Duration(x % uint64(max))
}

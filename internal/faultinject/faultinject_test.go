package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestZeroPlanDisabled(t *testing.T) {
	if (Plan{}).Enabled() {
		t.Fatal("zero plan reports enabled")
	}
	for _, p := range []Plan{
		{CrashStep: 1},
		{ComputeDelayMax: time.Millisecond},
		{SendDelayMax: time.Millisecond},
	} {
		if !p.Enabled() {
			t.Errorf("plan %+v reports disabled", p)
		}
	}
	// CrashStep <= 0 must not arm the crash path even with CrashRank set.
	if (Plan{CrashRank: 2}).Enabled() {
		t.Fatal("plan with only CrashRank reports enabled")
	}
}

// A nil injector is the disabled layer: every hook must be a safe no-op.
func TestNilInjectorNoOp(t *testing.T) {
	var in *Injector
	in.Checkpoint(0, "exchange")
	if d := in.SendDelay(0, 1, 7); d != 0 {
		t.Fatalf("nil injector send delay %v", d)
	}
}

// The crash must fire at exactly the configured (rank, step) with the
// site label of that checkpoint, and at no other checkpoint.
func TestCrashAtExactStep(t *testing.T) {
	in := New(Plan{Seed: 1, CrashRank: 1, CrashStep: 3}, 4)
	sites := []string{"exchange", "compute", "output", "done"}

	// Other ranks pass every checkpoint untouched.
	for _, site := range sites {
		in.Checkpoint(0, site)
		in.Checkpoint(2, site)
	}

	in.Checkpoint(1, sites[0])
	in.Checkpoint(1, sites[1])
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("no crash at step 3")
		}
		c, ok := v.(*Crash)
		if !ok {
			t.Fatalf("panic value %T, want *Crash", v)
		}
		if c.Rank != 1 || c.Step != 3 || c.Site != "output" {
			t.Fatalf("crash %+v, want rank 1 step 3 site output", c)
		}
		var err error = c
		var target *Crash
		if !errors.As(err, &target) {
			t.Fatal("*Crash does not satisfy errors.As")
		}
	}()
	in.Checkpoint(1, sites[2])
}

// Equal plans must give bit-identical schedules; different seeds must not.
func TestDeterministicSchedules(t *testing.T) {
	plan := Plan{Seed: 42, ComputeDelayMax: time.Millisecond, SendDelayMax: time.Millisecond}
	a, b := New(plan, 3), New(plan, 3)
	other := New(Plan{Seed: 43, ComputeDelayMax: time.Millisecond, SendDelayMax: time.Millisecond}, 3)

	differs := false
	for i := 0; i < 64; i++ {
		da := a.SendDelay(1, 0, 7)
		db := b.SendDelay(1, 0, 7)
		dc := other.SendDelay(1, 0, 7)
		if da != db {
			t.Fatalf("message %d: same seed gave %v vs %v", i, da, db)
		}
		if da < 0 || da >= plan.SendDelayMax {
			t.Fatalf("message %d: delay %v outside [0, %v)", i, da, plan.SendDelayMax)
		}
		if da != dc {
			differs = true
		}
	}
	if !differs {
		t.Fatal("64 draws identical across different seeds")
	}
}

// Per-rank counters are independent: rank 0's traffic must not shift rank
// 1's schedule (the single-writer sharding contract).
func TestPerRankIndependence(t *testing.T) {
	plan := Plan{Seed: 7, SendDelayMax: time.Millisecond}
	solo := New(plan, 2)
	mixed := New(plan, 2)

	var want []time.Duration
	for i := 0; i < 16; i++ {
		want = append(want, solo.SendDelay(1, 0, 0))
	}
	for i := 0; i < 16; i++ {
		mixed.SendDelay(0, 1, 0) // interleaved rank-0 traffic
		if got := mixed.SendDelay(1, 0, 0); got != want[i] {
			t.Fatalf("message %d: rank 0 traffic shifted rank 1's delay %v -> %v", i, want[i], got)
		}
	}
}

func TestNewPanicsOnBadRanks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(plan, 0) did not panic")
		}
	}()
	New(Plan{}, 0)
}

package obs

import "reflect"

// PayloadBytes estimates the wire size of a message payload: the shallow
// in-memory size of the value, with slices counted as length x element
// size. The comm substrate passes payloads by reference, so this is the
// byte volume an MPI transport would move for the same message — what the
// paper's exchange-cost accounting (Table II) charges.
//
// The estimate is deterministic for a given payload type and length, which
// is what the conservation invariant (bytes sent == bytes received) and
// the cross-run comparisons need; it does not chase pointers inside
// elements, and none of the tessellation's message types contain any.
func PayloadBytes(v any) int64 {
	switch x := v.(type) {
	case nil:
		return 0
	case []byte:
		return int64(len(x))
	case string:
		return int64(len(x))
	}
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Slice, reflect.Array:
		return int64(rv.Len()) * int64(rv.Type().Elem().Size())
	case reflect.Ptr:
		if rv.IsNil() {
			return 0
		}
		return int64(rv.Type().Elem().Size())
	default:
		return int64(rv.Type().Size())
	}
}

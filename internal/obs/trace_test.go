package obs

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"
)

func traceFixture() *Snapshot {
	r := NewRecorder(2)
	r.RecordSpan(0, PhaseExchange, 0, 2*time.Millisecond)
	r.RecordSpan(0, PhaseCompute, 2*time.Millisecond, 5*time.Millisecond)
	r.RecordSpan(0, PhaseOutput, 7*time.Millisecond, time.Millisecond)
	r.RecordSpan(1, PhaseExchange, 0, 3*time.Millisecond)
	r.RecordSpan(1, PhaseCompute, 3*time.Millisecond, 4*time.Millisecond)
	r.RecordSpan(1, PhaseOutput, 7*time.Millisecond, time.Millisecond)
	r.CountSend(0, 1, 1000)
	r.CountRecv(1, 0, 1000)
	id := r.RegisterCounter("ghosts")
	r.Count(0, id, 11)
	r.Count(1, id, 13)
	return r.Snapshot()
}

func TestWriteTraceValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := traceFixture().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}

	// Every rank must carry a complete event for each pipeline phase.
	phases := map[int]map[string]bool{}
	var commBytesSent int64
	var ghostCounters int
	for _, e := range tf.TraceEvents {
		switch e.Ph {
		case "X":
			if e.Dur <= 0 {
				t.Errorf("span %q has non-positive dur %v", e.Name, e.Dur)
			}
			if phases[e.Tid] == nil {
				phases[e.Tid] = map[string]bool{}
			}
			phases[e.Tid][e.Name] = true
		case "C":
			if e.Name == "comm-bytes" {
				commBytesSent += int64(e.Args["sent"].(float64))
			}
			if e.Name == "ghosts" {
				ghostCounters++
			}
		case "M":
			// metadata
		default:
			t.Errorf("unexpected event type %q", e.Ph)
		}
	}
	for rank := 0; rank < 2; rank++ {
		for _, ph := range []string{"exchange", "compute", "output"} {
			if !phases[rank][ph] {
				t.Errorf("rank %d missing %q span", rank, ph)
			}
		}
	}
	if commBytesSent != 1000 {
		t.Errorf("summed comm-bytes sent counters = %d, want 1000", commBytesSent)
	}
	if ghostCounters != 2 {
		t.Errorf("got %d ghost counter events, want 2", ghostCounters)
	}
}

func TestWriteTraceDeterministic(t *testing.T) {
	s := traceFixture()
	var a, b bytes.Buffer
	if err := s.WriteTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("repeated WriteTrace of one snapshot differs")
	}
}

func TestWriteTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := traceFixture().WriteTraceFile(path); err != nil {
		t.Fatal(err)
	}
	if err := traceFixture().WriteTraceFile(filepath.Join(t.TempDir(), "no", "such", "dir.json")); err == nil {
		t.Error("writing into a missing directory should fail")
	}
}

package obs

import (
	"sync"
	"testing"
	"time"
)

func TestRecorderSpansAndTotals(t *testing.T) {
	r := NewRecorder(2)
	m := r.Begin(0, PhaseExchange)
	time.Sleep(time.Millisecond)
	r.End(0, m)
	m = r.Begin(1, PhaseCompute)
	r.End(1, m)
	r.RecordSpan(1, PhaseOutput, 5*time.Millisecond, 2*time.Millisecond)

	s := r.Snapshot()
	if s.Ranks != 2 {
		t.Fatalf("Ranks = %d", s.Ranks)
	}
	if len(s.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(s.Spans))
	}
	if s.PerRank[0].Phase.Exchange <= 0 {
		t.Errorf("rank 0 exchange total = %v, want > 0", s.PerRank[0].Phase.Exchange)
	}
	if s.PerRank[1].Phase.Output != 2*time.Millisecond {
		t.Errorf("rank 1 output total = %v, want 2ms", s.PerRank[1].Phase.Output)
	}
	// Spans are ordered by rank then start.
	for i := 1; i < len(s.Spans); i++ {
		a, b := s.Spans[i-1], s.Spans[i]
		if a.Rank > b.Rank || (a.Rank == b.Rank && a.Start > b.Start) {
			t.Errorf("spans out of order at %d: %+v then %+v", i, a, b)
		}
	}
	if got := s.SlowestRank(PhaseOutput); got != 2*time.Millisecond {
		t.Errorf("SlowestRank(Output) = %v", got)
	}
	if got := s.PhaseTotal(PhaseOutput); got != 2*time.Millisecond {
		t.Errorf("PhaseTotal(Output) = %v", got)
	}
}

func TestRecorderCommCounters(t *testing.T) {
	r := NewRecorder(3)
	var wg sync.WaitGroup
	// Each rank records only into its own slot: single-writer sharding.
	for rank := 0; rank < 3; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for dst := 0; dst < 3; dst++ {
				if dst == rank {
					continue
				}
				r.CountSend(rank, dst, 100)
				r.CountRecv(rank, dst, 100)
			}
			r.AddBarrierWait(rank, time.Millisecond)
			r.CountCollective(rank, 64)
		}(rank)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.TotalSentBytes != 600 || s.TotalRecvdBytes != 600 {
		t.Errorf("totals sent=%d recvd=%d, want 600/600", s.TotalSentBytes, s.TotalRecvdBytes)
	}
	if s.TotalSentMsgs != 6 || s.TotalRecvdMsgs != 6 {
		t.Errorf("msg totals sent=%d recvd=%d, want 6/6", s.TotalSentMsgs, s.TotalRecvdMsgs)
	}
	if s.SendBytes[0][1] != 100 || s.RecvBytes[0][1] != 100 {
		t.Errorf("pair counters: send[0][1]=%d recv[0][1]=%d", s.SendBytes[0][1], s.RecvBytes[0][1])
	}
	if s.SendBytes[0][0] != 0 {
		t.Errorf("self pair counted: %d", s.SendBytes[0][0])
	}
	for _, m := range s.PerRank {
		if m.BarrierWait != time.Millisecond {
			t.Errorf("rank %d barrier wait %v", m.Rank, m.BarrierWait)
		}
		if m.Collectives != 1 || m.CollectiveBytes != 64 {
			t.Errorf("rank %d collectives %d/%d", m.Rank, m.Collectives, m.CollectiveBytes)
		}
		if m.Phase.Barrier != time.Millisecond {
			t.Errorf("rank %d barrier phase total %v", m.Rank, m.Phase.Barrier)
		}
	}
}

func TestRegisteredCounters(t *testing.T) {
	r := NewRecorder(2)
	ghosts := r.RegisterCounter("ghosts")
	again := r.RegisterCounter("ghosts")
	if ghosts != again {
		t.Errorf("re-registering returned %d, want %d", again, ghosts)
	}
	cells := r.RegisterCounter("cells")
	r.Count(0, ghosts, 7)
	r.Count(1, ghosts, 5)
	r.Count(1, cells, 100)
	s := r.Snapshot()
	if got := s.Counters["ghosts"]; got[0] != 7 || got[1] != 5 {
		t.Errorf("ghosts = %v", got)
	}
	if got := s.Counters["cells"]; got[0] != 0 || got[1] != 100 {
		t.Errorf("cells = %v", got)
	}
}

func TestComputeImbalance(t *testing.T) {
	r := NewRecorder(2)
	r.RecordSpan(0, PhaseCompute, 0, 30*time.Millisecond)
	r.RecordSpan(1, PhaseCompute, 0, 10*time.Millisecond)
	s := r.Snapshot()
	if want := 1.5; s.ComputeImbalance < want-1e-9 || s.ComputeImbalance > want+1e-9 {
		t.Errorf("imbalance = %v, want %v", s.ComputeImbalance, want)
	}
}

// TestNilRecorderZeroAlloc pins the disabled-instrumentation contract: a
// nil recorder's hooks allocate nothing and are safe to call from any
// path, so production code can thread the recorder unconditionally.
func TestNilRecorderZeroAlloc(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		m := r.Begin(0, PhaseCompute)
		r.End(0, m)
		r.CountSend(0, 1, 128)
		r.CountRecv(1, 0, 128)
		r.AddBarrierWait(0, time.Millisecond)
		r.CountCollective(0, 8)
		r.Count(0, r.RegisterCounter("x"), 1)
		r.RecordSpan(0, PhaseOutput, 0, time.Second)
	})
	if allocs != 0 {
		t.Fatalf("nil-recorder hooks allocate %v per run, want 0", allocs)
	}
	if r.Snapshot() != nil {
		t.Fatal("nil recorder snapshot should be nil")
	}
	if r.Ranks() != 0 {
		t.Fatal("nil recorder Ranks should be 0")
	}
}

func TestPayloadBytes(t *testing.T) {
	cases := []struct {
		v    any
		want int64
	}{
		{nil, 0},
		{[]byte{1, 2, 3}, 3},
		{"hello", 5},
		{int64(9), 8},
		{true, 1},
		{[]int64{1, 2, 3, 4}, 32},
		{[]float64{1, 2}, 16},
		{[4]int32{}, 16},
		{(*int64)(nil), 0},
	}
	for _, c := range cases {
		if got := PayloadBytes(c.v); got != c.want {
			t.Errorf("PayloadBytes(%#v) = %d, want %d", c.v, got, c.want)
		}
	}
	// A struct slice counts element size deterministically.
	type pt struct {
		ID int64
		X  [3]float64
	}
	if got := PayloadBytes(make([]pt, 10)); got != 320 {
		t.Errorf("struct slice = %d, want 320", got)
	}
	if got := PayloadBytes(&pt{}); got != 32 {
		t.Errorf("struct pointer = %d, want 32", got)
	}
}

func TestPhaseString(t *testing.T) {
	names := map[Phase]string{
		PhaseExchange:   "exchange",
		PhaseGhostMerge: "ghost-merge",
		PhaseCompute:    "compute",
		PhaseOutput:     "output",
		PhaseBarrier:    "barrier",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
	if got := Phase(200).String(); got != "phase(200)" {
		t.Errorf("out of range = %q", got)
	}
}

func TestNewRecorderPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRecorder(0) did not panic")
		}
	}()
	NewRecorder(0)
}

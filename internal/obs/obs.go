// Package obs is the always-on observability layer of the tessellation
// stack: per-rank phase spans, communication counters, and a named metrics
// registry, recorded with no locks on any hot path and exportable as Chrome
// trace-event JSON (chrome://tracing / Perfetto).
//
// The design follows the per-phase timers that PARAVT and the multithreaded
// VORO++ extension ship as first-class library features, generalized to the
// paper's per-rank evaluation axes (Table II, Figures 7-10): exchange vs.
// compute vs. output time per rank, message and byte counts per rank pair,
// barrier wait time, and collective payload sizes.
//
// Concurrency model: a Recorder pre-allocates one slot per rank, and every
// mutating method writes only to the slot its rank argument names. Ranks in
// this codebase are goroutines (comm.World.Run), so each slot has exactly
// one writer and recording needs no atomics or locks; the comm-counter
// matrices are likewise sharded so that entry [src][dst] of the send side is
// written only by src and entry [dst][src] of the receive side only by dst.
// Snapshot must be called only after the recorded activity has completed
// (e.g. after World.Run returns, whose WaitGroup provides the
// happens-before edge).
//
// Disabled path: every method has a nil-receiver fast path that returns
// immediately without reading the clock or allocating, so production code
// threads *Recorder values unconditionally and a nil recorder compiles to a
// pointer test. bench_test.go at the repository root and
// TestNilRecorderZeroAlloc here pin the 0 allocs/op contract.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Phase identifies one stage of the per-rank tess pipeline (Figure 5 of the
// paper), plus the communication-substrate phases.
type Phase uint8

const (
	// PhaseExchange is the neighborhood ghost-particle exchange.
	PhaseExchange Phase = iota
	// PhaseGhostMerge is the merge of local+ghost particles into the
	// spatial index that seeds the cell computation.
	PhaseGhostMerge
	// PhaseCompute is the local Voronoi cell construction.
	PhaseCompute
	// PhaseOutput is the collective write of the block meshes.
	PhaseOutput
	// PhaseBarrier aggregates time spent waiting in barriers.
	PhaseBarrier
	// PhaseTriangulate is the Delaunay build of the density pipeline.
	PhaseTriangulate
	// PhaseInterpolate is the DTFE grid interpolation of the density
	// pipeline (one span per rank slab).
	PhaseInterpolate
	// PhaseSpectrum is the power-spectrum / statistics reduction of the
	// density pipeline.
	PhaseSpectrum
	numPhases
)

var phaseNames = [numPhases]string{
	PhaseExchange:    "exchange",
	PhaseGhostMerge:  "ghost-merge",
	PhaseCompute:     "compute",
	PhaseOutput:      "output",
	PhaseBarrier:     "barrier",
	PhaseTriangulate: "triangulate",
	PhaseInterpolate: "interpolate",
	PhaseSpectrum:    "spectrum",
}

// String returns the phase name used in traces and reports.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// NumPhases is the number of defined phases.
const NumPhases = int(numPhases)

// Span is one timed interval of a phase on one rank. Start is relative to
// the Recorder's epoch.
type Span struct {
	Phase Phase
	Rank  int32
	Start time.Duration
	Dur   time.Duration
}

// SpanMark is the in-flight handle returned by Begin and consumed by End.
// The zero SpanMark (from a nil Recorder) is inert.
type SpanMark struct {
	phase Phase
	valid bool
	start time.Time
}

// CounterID names a registered counter; see RegisterCounter.
type CounterID int

// rankState is the single-writer per-rank recording slot. The trailing pad
// keeps adjacent ranks' hot scalar fields on separate cache lines.
type rankState struct {
	spans      []Span
	phaseTotal [numPhases]time.Duration

	// Comm counters: entry [peer] counts traffic with that rank.
	sentMsgs, sentBytes   []int64
	recvdMsgs, recvdBytes []int64

	barrierWait     time.Duration
	collectives     int64
	collectiveBytes int64

	// counters is a fixed array rather than a slice so that registering a
	// new counter (which happens under the registry mutex) never resizes
	// storage a concurrently-recording rank is writing into.
	counters [MaxCounters]int64

	_ [64]byte
}

// MaxCounters bounds the registry size; RegisterCounter panics beyond it.
const MaxCounters = 16

// Recorder collects spans and counters for a fixed number of ranks.
// The zero value is not usable; a nil *Recorder is the disabled layer.
type Recorder struct {
	epoch time.Time
	ranks []rankState

	// Counter registration happens before concurrent recording starts and
	// is the only mutation guarded by a lock.
	mu           sync.Mutex
	counterNames []string
}

// NewRecorder returns a recorder for a world of ranks ranks.
// It panics if ranks <= 0.
func NewRecorder(ranks int) *Recorder {
	if ranks <= 0 {
		panic(fmt.Sprintf("obs: recorder over %d ranks", ranks))
	}
	r := &Recorder{epoch: time.Now(), ranks: make([]rankState, ranks)}
	for i := range r.ranks {
		s := &r.ranks[i]
		s.sentMsgs = make([]int64, ranks)
		s.sentBytes = make([]int64, ranks)
		s.recvdMsgs = make([]int64, ranks)
		s.recvdBytes = make([]int64, ranks)
	}
	return r
}

// Reset clears all recorded spans, comm counters, and counter values and
// starts a new epoch, keeping the counter-name registry (previously issued
// CounterIDs stay valid) and all per-rank buffer capacity. A persistent
// tessellation session calls it between steps so each pass's snapshot
// covers only its own activity, at steady state without allocating.
//
// Reset must only be called while no recorded activity is in flight — for
// a session, between World.Run invocations, whose WaitGroup provides the
// happens-before edge with every rank's writes.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.epoch = time.Now()
	for i := range r.ranks {
		s := &r.ranks[i]
		s.spans = s.spans[:0]
		s.phaseTotal = [numPhases]time.Duration{}
		for p := range s.sentMsgs {
			s.sentMsgs[p] = 0
			s.sentBytes[p] = 0
			s.recvdMsgs[p] = 0
			s.recvdBytes[p] = 0
		}
		s.barrierWait = 0
		s.collectives = 0
		s.collectiveBytes = 0
		s.counters = [MaxCounters]int64{}
	}
}

// Ranks returns the world size the recorder was built for, or 0 for a nil
// recorder.
func (r *Recorder) Ranks() int {
	if r == nil {
		return 0
	}
	return len(r.ranks)
}

// Begin opens a span of phase ph on rank. On a nil recorder it returns an
// inert mark without reading the clock.
func (r *Recorder) Begin(rank int, ph Phase) SpanMark {
	if r == nil {
		return SpanMark{}
	}
	return SpanMark{phase: ph, valid: true, start: time.Now()}
}

// End closes a span opened by Begin, recording it on rank.
func (r *Recorder) End(rank int, m SpanMark) {
	if r == nil || !m.valid {
		return
	}
	now := time.Now()
	s := &r.ranks[rank]
	s.spans = append(s.spans, Span{
		Phase: m.phase,
		Rank:  int32(rank),
		Start: m.start.Sub(r.epoch),
		Dur:   now.Sub(m.start),
	})
	s.phaseTotal[m.phase] += now.Sub(m.start)
}

// RecordSpan records an externally timed interval (used by the sequential
// timing harness, which measures ranks one at a time and replays the
// measured phases into the recorder).
func (r *Recorder) RecordSpan(rank int, ph Phase, start, dur time.Duration) {
	if r == nil {
		return
	}
	s := &r.ranks[rank]
	s.spans = append(s.spans, Span{Phase: ph, Rank: int32(rank), Start: start, Dur: dur})
	s.phaseTotal[ph] += dur
}

// CountSend records one message of n bytes from src to dst. Only rank src
// may call it (single-writer sharding).
func (r *Recorder) CountSend(src, dst int, n int64) {
	if r == nil {
		return
	}
	s := &r.ranks[src]
	s.sentMsgs[dst]++
	s.sentBytes[dst] += n
}

// CountRecv records the receipt at dst of one message of n bytes from src.
// Only rank dst may call it.
func (r *Recorder) CountRecv(dst, src int, n int64) {
	if r == nil {
		return
	}
	s := &r.ranks[dst]
	s.recvdMsgs[src]++
	s.recvdBytes[src] += n
}

// AddBarrierWait records time rank spent blocked in a barrier.
func (r *Recorder) AddBarrierWait(rank int, d time.Duration) {
	if r == nil {
		return
	}
	s := &r.ranks[rank]
	s.barrierWait += d
	s.phaseTotal[PhaseBarrier] += d
}

// CountCollective records rank's participation in one collective carrying
// n payload bytes.
func (r *Recorder) CountCollective(rank int, n int64) {
	if r == nil {
		return
	}
	s := &r.ranks[rank]
	s.collectives++
	s.collectiveBytes += n
}

// RegisterCounter adds a named per-rank counter to the registry and returns
// its ID; registering an existing name returns its ID, so ranks may call it
// concurrently to resolve well-known names. Per-rank counter storage is
// fixed-size, so registration never perturbs ranks that are already
// counting. Panics past MaxCounters; a nil recorder returns -1 (Count
// ignores it).
func (r *Recorder) RegisterCounter(name string) CounterID {
	if r == nil {
		return -1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, n := range r.counterNames {
		if n == name {
			return CounterID(i)
		}
	}
	if len(r.counterNames) == MaxCounters {
		panic(fmt.Sprintf("obs: more than %d registered counters", MaxCounters))
	}
	r.counterNames = append(r.counterNames, name)
	return CounterID(len(r.counterNames) - 1)
}

// Count adds delta to a registered counter on rank.
func (r *Recorder) Count(rank int, id CounterID, delta int64) {
	if r == nil || id < 0 {
		return
	}
	r.ranks[rank].counters[id] += delta
}

// PhaseBreakdown is the accumulated per-phase wall time of one rank.
type PhaseBreakdown struct {
	Exchange   time.Duration
	GhostMerge time.Duration
	Compute    time.Duration
	Output     time.Duration
	Barrier    time.Duration
	// Density-pipeline phases (zero on tessellation-only steps).
	Triangulate time.Duration
	Interpolate time.Duration
	Spectrum    time.Duration
}

// Get returns the component for a phase.
func (b PhaseBreakdown) Get(p Phase) time.Duration {
	switch p {
	case PhaseExchange:
		return b.Exchange
	case PhaseGhostMerge:
		return b.GhostMerge
	case PhaseCompute:
		return b.Compute
	case PhaseOutput:
		return b.Output
	case PhaseBarrier:
		return b.Barrier
	case PhaseTriangulate:
		return b.Triangulate
	case PhaseInterpolate:
		return b.Interpolate
	case PhaseSpectrum:
		return b.Spectrum
	}
	return 0
}

// RankMetrics is the aggregated view of one rank.
type RankMetrics struct {
	Rank  int
	Phase PhaseBreakdown
	// SentMsgs/SentBytes count messages this rank posted; RecvdMsgs and
	// RecvdBytes count messages it consumed.
	SentMsgs, SentBytes   int64
	RecvdMsgs, RecvdBytes int64
	BarrierWait           time.Duration
	Collectives           int64
	CollectiveBytes       int64
}

// Snapshot is the immutable aggregate of a Recorder: the metrics registry
// view exposed on Output/TimedOutput and consumed by the trace exporter and
// the EXPERIMENTS tables.
type Snapshot struct {
	Ranks int
	// Spans holds every recorded span, ordered by rank then start time.
	Spans []Span
	// PerRank holds one aggregated row per rank.
	PerRank []RankMetrics
	// SendMsgs[src][dst] / SendBytes[src][dst] count posted messages;
	// RecvMsgs[dst][src] / RecvBytes[dst][src] count consumed ones. A
	// conservation-clean exchange has SendBytes[s][d] == RecvBytes[d][s]
	// for every pair.
	SendMsgs, SendBytes [][]int64
	RecvMsgs, RecvBytes [][]int64
	// Totals over all ranks.
	TotalSentMsgs, TotalSentBytes   int64
	TotalRecvdMsgs, TotalRecvdBytes int64
	// Counters maps each registered counter name to its per-rank values;
	// CounterNames lists the names sorted, for deterministic iteration.
	Counters     map[string][]int64
	CounterNames []string
	// ComputeImbalance is slowest-rank compute time over mean compute time
	// (1.0 = perfectly balanced), the load-imbalance number PARAVT reports.
	ComputeImbalance float64
}

// Snapshot aggregates the recorder. Call only after recorded activity has
// completed. A nil recorder returns nil.
func (r *Recorder) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	n := len(r.ranks)
	snap := &Snapshot{
		Ranks:     n,
		PerRank:   make([]RankMetrics, n),
		SendMsgs:  make([][]int64, n),
		SendBytes: make([][]int64, n),
		RecvMsgs:  make([][]int64, n),
		RecvBytes: make([][]int64, n),
		Counters:  make(map[string][]int64, len(r.counterNames)),
	}
	for i := range r.ranks {
		s := &r.ranks[i]
		snap.Spans = append(snap.Spans, s.spans...)
		m := RankMetrics{
			Rank: i,
			Phase: PhaseBreakdown{
				Exchange:    s.phaseTotal[PhaseExchange],
				GhostMerge:  s.phaseTotal[PhaseGhostMerge],
				Compute:     s.phaseTotal[PhaseCompute],
				Output:      s.phaseTotal[PhaseOutput],
				Barrier:     s.phaseTotal[PhaseBarrier],
				Triangulate: s.phaseTotal[PhaseTriangulate],
				Interpolate: s.phaseTotal[PhaseInterpolate],
				Spectrum:    s.phaseTotal[PhaseSpectrum],
			},
			BarrierWait:     s.barrierWait,
			Collectives:     s.collectives,
			CollectiveBytes: s.collectiveBytes,
		}
		snap.SendMsgs[i] = append([]int64(nil), s.sentMsgs...)
		snap.SendBytes[i] = append([]int64(nil), s.sentBytes...)
		snap.RecvMsgs[i] = append([]int64(nil), s.recvdMsgs...)
		snap.RecvBytes[i] = append([]int64(nil), s.recvdBytes...)
		for p := 0; p < n; p++ {
			m.SentMsgs += s.sentMsgs[p]
			m.SentBytes += s.sentBytes[p]
			m.RecvdMsgs += s.recvdMsgs[p]
			m.RecvdBytes += s.recvdBytes[p]
		}
		snap.PerRank[i] = m
		snap.TotalSentMsgs += m.SentMsgs
		snap.TotalSentBytes += m.SentBytes
		snap.TotalRecvdMsgs += m.RecvdMsgs
		snap.TotalRecvdBytes += m.RecvdBytes
	}
	sort.SliceStable(snap.Spans, func(a, b int) bool {
		if snap.Spans[a].Rank != snap.Spans[b].Rank {
			return snap.Spans[a].Rank < snap.Spans[b].Rank
		}
		return snap.Spans[a].Start < snap.Spans[b].Start
	})
	r.mu.Lock()
	names := append([]string(nil), r.counterNames...)
	r.mu.Unlock()
	for id, name := range names {
		vals := make([]int64, n)
		for i := range r.ranks {
			vals[i] = r.ranks[i].counters[id]
		}
		snap.Counters[name] = vals
	}
	sort.Strings(names)
	snap.CounterNames = names
	snap.ComputeImbalance = snap.Imbalance(PhaseCompute)
	return snap
}

// Imbalance returns the load-imbalance ratio of one phase: slowest-rank
// time over mean rank time (1.0 = perfectly balanced, 0 when the phase
// recorded no time). ComputeImbalance is this number for PhaseCompute; the
// generic form lets callers inspect the exchange or output phases the same
// way.
func (s *Snapshot) Imbalance(p Phase) float64 {
	if len(s.PerRank) == 0 {
		return 0
	}
	var sum, max time.Duration
	for _, m := range s.PerRank {
		d := m.Phase.Get(p)
		sum += d
		if d > max {
			max = d
		}
	}
	if sum <= 0 {
		return 0
	}
	mean := float64(sum) / float64(len(s.PerRank))
	return float64(max) / mean
}

// PhaseTotal sums one phase's time over all ranks.
func (s *Snapshot) PhaseTotal(p Phase) time.Duration {
	var t time.Duration
	for _, m := range s.PerRank {
		t += m.Phase.Get(p)
	}
	return t
}

// SlowestRank returns the maximum per-rank time of one phase — the number a
// batch scheduler observes and the reduction Table II reports.
func (s *Snapshot) SlowestRank(p Phase) time.Duration {
	var t time.Duration
	for _, m := range s.PerRank {
		if d := m.Phase.Get(p); d > t {
			t = d
		}
	}
	return t
}

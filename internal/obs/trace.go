package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Chrome trace-event export: the snapshot serializes to the JSON object
// format understood by chrome://tracing and https://ui.perfetto.dev, with
// one trace thread per rank, one complete ("X") event per recorded span,
// and counter ("C") events for the comm byte totals. Timestamps are in
// microseconds per the format specification.
//
// Format reference: the "Trace Event Format" document of the Chromium
// project (JSON object format with a traceEvents array).

// traceEvent is one entry of the traceEvents array.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

const tracePid = 1

// WriteTrace serializes the snapshot as Chrome trace-event JSON.
func (s *Snapshot) WriteTrace(w io.Writer) error {
	tf := traceFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}
	tf.TraceEvents = append(tf.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", Pid: tracePid,
		Args: map[string]any{"name": "tess"},
	})
	for r := 0; r < s.Ranks; r++ {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: tracePid, Tid: r,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", r)},
		})
	}
	for _, sp := range s.Spans {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: sp.Phase.String(),
			Cat:  "phase",
			Ph:   "X",
			Ts:   float64(sp.Start.Microseconds()),
			Dur:  durUS(sp),
			Pid:  tracePid,
			Tid:  int(sp.Rank),
		})
	}
	// One counter sample per rank at the end of its last span, carrying the
	// rank's cumulative comm volume; Perfetto renders these as step tracks.
	for _, m := range s.PerRank {
		ts := rankEnd(s, m.Rank)
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "comm-bytes",
			Ph:   "C",
			Ts:   ts,
			Pid:  tracePid,
			Tid:  m.Rank,
			Args: map[string]any{
				"sent":  m.SentBytes,
				"recvd": m.RecvdBytes,
			},
		})
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "comm-msgs",
			Ph:   "C",
			Ts:   ts,
			Pid:  tracePid,
			Tid:  m.Rank,
			Args: map[string]any{
				"sent":  m.SentMsgs,
				"recvd": m.RecvdMsgs,
			},
		})
	}
	// Registered counters, in sorted-name order so the export is
	// deterministic.
	for _, name := range s.CounterNames {
		vals := s.Counters[name]
		for r, v := range vals {
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: name,
				Ph:   "C",
				Ts:   rankEnd(s, r),
				Pid:  tracePid,
				Tid:  r,
				Args: map[string]any{"value": v},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&tf)
}

// WriteTraceFile writes the trace to path.
func (s *Snapshot) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: trace %s: %w", path, err)
	}
	if err := s.WriteTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: trace %s: %w", path, err)
	}
	return f.Close()
}

// durUS returns a span duration in microseconds, floored at a sliver so
// zero-length spans stay visible in the viewer.
func durUS(sp Span) float64 {
	us := float64(sp.Dur.Microseconds())
	if us <= 0 {
		us = 0.1
	}
	return us
}

// rankEnd returns the end timestamp (us) of a rank's last span, or 0.
func rankEnd(s *Snapshot, rank int) float64 {
	var end float64
	for _, sp := range s.Spans {
		if int(sp.Rank) != rank {
			continue
		}
		if e := float64(sp.Start.Microseconds()) + durUS(sp); e > end {
			end = e
		}
	}
	return end
}

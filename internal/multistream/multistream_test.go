package multistream

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cosmo"
	"repro/internal/geom"
)

func TestComputeValidation(t *testing.T) {
	if _, err := Compute(make([]geom.Vec3, 7), 2, 8, 4); err == nil {
		t.Error("wrong position count accepted")
	}
	if _, err := Compute(make([]geom.Vec3, 8), 2, 8, 0); err == nil {
		t.Error("zero grid accepted")
	}
	if _, err := Compute(make([]geom.Vec3, 8), 2, -1, 4); err == nil {
		t.Error("negative box accepted")
	}
}

func TestUnperturbedLatticeIsSingleStream(t *testing.T) {
	const ng = 8
	const L = 8.0
	pos := cosmo.LatticePositions(ng, L)
	f, err := Compute(pos, ng, L, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range f.Streams {
		if v != 1 {
			t.Fatalf("sample %d has %d streams on an unperturbed lattice", i, v)
		}
	}
	s := f.Summarize()
	if s.SingleStream != 1 || s.ThreePlus != 0 || s.Max != 1 {
		t.Errorf("stats: %+v", s)
	}
}

func TestSmallPerturbationStaysSingleStream(t *testing.T) {
	const ng = 8
	const L = 8.0
	rng := rand.New(rand.NewSource(107))
	pos := cosmo.LatticePositions(ng, L)
	for i := range pos {
		pos[i] = cosmo.Wrap(pos[i].Add(geom.V(
			(rng.Float64()-0.5)*0.2, (rng.Float64()-0.5)*0.2, (rng.Float64()-0.5)*0.2)), L)
	}
	f, err := Compute(pos, ng, L, 16)
	if err != nil {
		t.Fatal(err)
	}
	s := f.Summarize()
	// No shell crossing: mean stays ~1, no 3-stream regions.
	if s.ThreePlus > 0.01 {
		t.Errorf("pre-shell-crossing field has %.2f%% multistream samples", 100*s.ThreePlus)
	}
	if math.Abs(s.Mean-1) > 0.05 {
		t.Errorf("mean streams = %v, want ~1", s.Mean)
	}
}

func TestSinusoidalFoldCreatesThreeStreams(t *testing.T) {
	// Displace particles along x by A*sin(2 pi x / L) with A large enough
	// that the Lagrangian map folds (A * 2pi/L > 1): the classic Zel'dovich
	// pancake. The fold produces 3-stream regions.
	const ng = 16
	const L = 16.0
	pos := cosmo.LatticePositions(ng, L)
	A := 1.8 * L / (2 * math.Pi) // fold factor 1.8
	for i := range pos {
		dx := A * math.Sin(2*math.Pi*pos[i].X/L)
		pos[i] = cosmo.Wrap(pos[i].Add(geom.V(dx, 0, 0)), L)
	}
	f, err := Compute(pos, ng, L, 32)
	if err != nil {
		t.Fatal(err)
	}
	s := f.Summarize()
	if s.Max < 3 {
		t.Fatalf("fold produced max %d streams, want >= 3", s.Max)
	}
	if s.ThreePlus == 0 {
		t.Fatal("no 3-stream samples in a folded flow")
	}
	if s.SingleStream == 0 {
		t.Fatal("no single-stream (void) samples remain")
	}
	// Mass conservation with multiplicity: mean streams = total Lagrangian
	// volume / box volume = 1 only without folds; with folds it exceeds 1.
	if s.Mean <= 1 {
		t.Errorf("mean streams %v should exceed 1 after folding", s.Mean)
	}
}

func TestStreamCountIsOddInGenericRegions(t *testing.T) {
	// In 1D folds, the stream count at a generic point is odd (1 or 3).
	const ng = 16
	const L = 16.0
	pos := cosmo.LatticePositions(ng, L)
	A := 1.5 * L / (2 * math.Pi)
	for i := range pos {
		dx := A * math.Sin(2*math.Pi*pos[i].X/L)
		pos[i] = cosmo.Wrap(pos[i].Add(geom.V(dx, 0, 0)), L)
	}
	f, err := Compute(pos, ng, L, 32)
	if err != nil {
		t.Fatal(err)
	}
	odd, even := 0, 0
	for _, v := range f.Streams {
		if v%2 == 1 {
			odd++
		} else {
			even++
		}
	}
	// Caustic surfaces (even counts) are measure-zero; allow a small
	// fraction from samples landing near them.
	if frac := float64(even) / float64(odd+even); frac > 0.15 {
		t.Errorf("%.1f%% of samples have even stream counts; expected odd counts generically", 100*frac)
	}
}

func TestFieldAtAccessor(t *testing.T) {
	const ng = 4
	const L = 4.0
	pos := cosmo.LatticePositions(ng, L)
	f, err := Compute(pos, ng, L, 8)
	if err != nil {
		t.Fatal(err)
	}
	if f.At(0, 0, 0) != f.Streams[0] {
		t.Error("At(0,0,0) mismatch")
	}
	if f.At(7, 7, 7) != f.Streams[len(f.Streams)-1] {
		t.Error("At(7,7,7) mismatch")
	}
}

// Package multistream computes the multistream field of Shandarin, Habib &
// Heitmann (2012), one of the level-1 feature classifiers in the paper's in
// situ framework (Fig. 4 lists "multistream detection" beside the Voronoi
// tessellation; reference [8] combines tessellations with multistream
// techniques to identify Zel'dovich pancakes).
//
// The field counts, at each sample point, how many streams of the dark
// matter flow pass through it: the initial Lagrangian lattice is decomposed
// into tetrahedra, each tetrahedron is carried forward by its corner
// particles, and the number of deformed tetrahedra covering a point is the
// local stream count. Single-stream regions are voids; three and more
// streams mark collapsed structures (pancakes, filaments, halos).
package multistream

import (
	"fmt"
	"math"

	"repro/internal/cosmo"
	"repro/internal/geom"
)

// sampleOff are the per-axis fractional offsets of sample points within
// their grid cells. They are deliberately irrational-ish and unequal so
// that no sample point can lie exactly on a tetrahedron facet of lattice
// or near-lattice particle configurations (cell centers would sit exactly
// on the Kuhn cut planes and be counted by several tetrahedra at once).
var sampleOff = [3]float64{0.5 + 1/math.Pi/7, 0.5 - 1/math.E/9, 0.5 + 1/math.Sqrt2/11}

// Field is a multistream field sampled on an m^3 grid over the periodic
// box; sample (x, y, z) is at ((x+ox)h, (y+oy)h, (z+oz)h) with the
// tie-breaking offsets above.
type Field struct {
	M       int
	BoxSize float64
	// Streams[(z*M+y)*M+x] is the stream count at sample (x, y, z).
	Streams []int32
}

// At returns the stream count at sample (x, y, z).
func (f *Field) At(x, y, z int) int32 { return f.Streams[(z*f.M+y)*f.M+x] }

// kuhnTets is the 6-tetrahedron (Kuhn) decomposition of the unit cube,
// each row holding 4 corner indices into the cube corner ordering
// (i, j, k) -> i + 2j + 4k.
var kuhnTets = [6][4]int{
	{0, 1, 3, 7},
	{0, 1, 5, 7},
	{0, 2, 3, 7},
	{0, 2, 6, 7},
	{0, 4, 5, 7},
	{0, 4, 6, 7},
}

// Compute builds the multistream field from the current particle positions
// pos, which must be indexed by initial lattice site ((z*ng+y)*ng+x) as
// produced by cosmo.ZeldovichIC and preserved by the N-body integrator.
// The field is sampled on an m^3 grid.
func Compute(pos []geom.Vec3, ng int, boxSize float64, m int) (*Field, error) {
	if len(pos) != ng*ng*ng {
		return nil, fmt.Errorf("multistream: %d positions for ng=%d (want %d)", len(pos), ng, ng*ng*ng)
	}
	if m <= 0 || boxSize <= 0 {
		return nil, fmt.Errorf("multistream: invalid grid %d or box %g", m, boxSize)
	}
	f := &Field{M: m, BoxSize: boxSize, Streams: make([]int32, m*m*m)}
	h := boxSize / float64(m)

	latIdx := func(i, j, k int) int {
		i = ((i % ng) + ng) % ng
		j = ((j % ng) + ng) % ng
		k = ((k % ng) + ng) % ng
		return (k*ng+j)*ng + i
	}

	// For each Lagrangian cube, unwrap its 8 corner positions into a
	// coherent neighborhood of the corner (0,0,0) particle, split into
	// Kuhn tetrahedra, and rasterize each tetrahedron onto the sample
	// grid.
	var corners [8]geom.Vec3
	for k := 0; k < ng; k++ {
		for j := 0; j < ng; j++ {
			for i := 0; i < ng; i++ {
				ref := pos[latIdx(i, j, k)]
				for c := 0; c < 8; c++ {
					ci, cj, ck := c&1, (c>>1)&1, (c>>2)&1
					p := pos[latIdx(i+ci, j+cj, k+ck)]
					corners[c] = ref.Add(cosmo.MinImage(ref, p, boxSize))
				}
				for _, t := range kuhnTets {
					rasterizeTet(f, h,
						corners[t[0]], corners[t[1]], corners[t[2]], corners[t[3]])
				}
			}
		}
	}
	return f, nil
}

// rasterizeTet adds 1 to every sample point inside the tetrahedron. Sample
// points are cell centers (x+0.5)*h; the tetrahedron may hang outside the
// box, in which case the counts wrap periodically.
func rasterizeTet(f *Field, h float64, a, b, c, d geom.Vec3) {
	vol := geom.Orient3DVal(a, b, c, d)
	if vol == 0 {
		return
	}
	bb := geom.BoundingBox([]geom.Vec3{a, b, c, d})
	lo := [3]int{
		int(math.Floor(bb.Min.X/h - sampleOff[0])),
		int(math.Floor(bb.Min.Y/h - sampleOff[1])),
		int(math.Floor(bb.Min.Z/h - sampleOff[2])),
	}
	hi := [3]int{
		int(math.Ceil(bb.Max.X/h - sampleOff[0])),
		int(math.Ceil(bb.Max.Y/h - sampleOff[1])),
		int(math.Ceil(bb.Max.Z/h - sampleOff[2])),
	}
	m := f.M
	for z := lo[2]; z <= hi[2]; z++ {
		for y := lo[1]; y <= hi[1]; y++ {
			for x := lo[0]; x <= hi[0]; x++ {
				p := geom.Vec3{
					X: (float64(x) + sampleOff[0]) * h,
					Y: (float64(y) + sampleOff[1]) * h,
					Z: (float64(z) + sampleOff[2]) * h,
				}
				if !inTet(p, a, b, c, d, vol) {
					continue
				}
				xi := ((x % m) + m) % m
				yi := ((y % m) + m) % m
				zi := ((z % m) + m) % m
				f.Streams[(zi*m+yi)*m+xi]++
			}
		}
	}
}

// inTet reports whether p lies strictly inside the tetrahedron: every
// sub-volume must carry the same strict sign as vol. Facet points are
// excluded for both orientations; the sample offsets guarantee they do not
// occur for (near-)lattice inputs.
func inTet(p, a, b, c, d geom.Vec3, vol float64) bool {
	sgn := 1.0
	if vol < 0 {
		sgn = -1
	}
	if sgn*geom.Orient3DVal(p, b, c, d) <= 0 {
		return false
	}
	if sgn*geom.Orient3DVal(a, p, c, d) <= 0 {
		return false
	}
	if sgn*geom.Orient3DVal(a, b, p, d) <= 0 {
		return false
	}
	if sgn*geom.Orient3DVal(a, b, c, p) <= 0 {
		return false
	}
	return true
}

// Stats summarizes a multistream field: the fraction of samples with 1
// stream (void regions), 3 or more (collapsed), and the maximum.
type Stats struct {
	SingleStream float64
	ThreePlus    float64
	Max          int32
	Mean         float64
}

// Summarize computes the field statistics.
func (f *Field) Summarize() Stats {
	var s Stats
	var sum int64
	for _, v := range f.Streams {
		sum += int64(v)
		if v == 1 {
			s.SingleStream++
		}
		if v >= 3 {
			s.ThreePlus++
		}
		if v > s.Max {
			s.Max = v
		}
	}
	n := float64(len(f.Streams))
	s.SingleStream /= n
	s.ThreePlus /= n
	s.Mean = float64(sum) / n
	return s
}

package qhull

import (
	"maps"
	"math"
	"slices"

	"repro/internal/geom"
)

// MergedFace is a planar polygonal facet assembled from coplanar adjacent
// triangles, given as an ordered loop of input point indices
// (counterclockwise from outside).
type MergedFace struct {
	Loop  []int
	Plane geom.Plane
}

// MergedFaces groups coplanar adjacent triangles into polygonal facets —
// the view Qhull reports for merged facets and the one the paper's data
// model stores (cells averaging ~15 faces with ~5 vertices per face).
// angleTol is the cosine tolerance for normal agreement; pass 0 for the
// default of 1e-9.
func (h *Hull) MergedFaces(angleTol float64) []MergedFace {
	if angleTol <= 0 {
		angleTol = 1e-9
	}
	n := len(h.Faces)
	if n == 0 {
		return nil
	}

	// Union-find over triangles, merging across shared edges with parallel
	// normals and mutual coplanarity.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	// Map directed edges to triangle index.
	edgeOwner := make(map[[2]int]int, 3*n)
	for fi, f := range h.Faces {
		for i := 0; i < 3; i++ {
			edgeOwner[[2]int{f.V[i], f.V[(i+1)%3]}] = fi
		}
	}
	for fi, f := range h.Faces {
		for i := 0; i < 3; i++ {
			twin, ok := edgeOwner[[2]int{f.V[(i+1)%3], f.V[i]}]
			if !ok || twin <= fi {
				continue
			}
			g := h.Faces[twin]
			if f.Plane.N.Dot(g.Plane.N) >= 1-angleTol && coplanarTris(h, f, g) {
				union(fi, twin)
			}
		}
	}

	// Collect boundary edges per group: a directed edge is on the facet
	// boundary when its twin belongs to a different group.
	groupEdges := map[int][][2]int{}
	for fi, f := range h.Faces {
		gi := find(fi)
		for i := 0; i < 3; i++ {
			e := [2]int{f.V[i], f.V[(i+1)%3]}
			twin, ok := edgeOwner[[2]int{e[1], e[0]}]
			if ok && find(twin) == gi {
				continue
			}
			groupEdges[gi] = append(groupEdges[gi], e)
		}
	}

	var out []MergedFace
	for _, gi := range slices.Sorted(maps.Keys(groupEdges)) {
		loop := chainLoop(groupEdges[gi])
		if len(loop) < 3 {
			continue
		}
		out = append(out, MergedFace{Loop: loop, Plane: h.Faces[gi].Plane})
	}
	return out
}

func coplanarTris(h *Hull, f, g Face) bool {
	for _, vi := range g.V {
		if math.Abs(f.Plane.Eval(h.Points[vi])) > 1e3*h.eps {
			return false
		}
	}
	return true
}

// chainLoop orders directed boundary edges into a single vertex loop. For a
// convex facet the boundary is one simple cycle.
func chainLoop(edges [][2]int) []int {
	next := make(map[int]int, len(edges))
	for _, e := range edges {
		next[e[0]] = e[1]
	}
	if len(next) != len(edges) {
		return nil // non-manifold boundary; give up on this facet
	}
	start := edges[0][0]
	loop := []int{start}
	for cur := next[start]; cur != start; cur = next[cur] {
		loop = append(loop, cur)
		if len(loop) > len(edges) {
			return nil // not a single cycle
		}
	}
	if len(loop) != len(edges) {
		return nil
	}
	return loop
}

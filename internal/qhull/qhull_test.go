package qhull

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func cubeCorners(s float64) []geom.Vec3 {
	b := geom.NewBox(geom.V(0, 0, 0), geom.V(s, s, s))
	c := b.Corners()
	return c[:]
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute([]geom.Vec3{{}, {X: 1}, {Y: 1}}); err != ErrDegenerate {
		t.Errorf("3 points: err = %v", err)
	}
	// Collinear.
	col := []geom.Vec3{{}, {X: 1}, {X: 2}, {X: 3}, {X: 4}}
	if _, err := Compute(col); err != ErrDegenerate {
		t.Errorf("collinear: err = %v", err)
	}
	// Coplanar.
	cop := []geom.Vec3{{}, {X: 1}, {Y: 1}, {X: 1, Y: 1}, {X: 0.5, Y: 0.5}}
	if _, err := Compute(cop); err != ErrDegenerate {
		t.Errorf("coplanar: err = %v", err)
	}
	// Non-finite.
	bad := []geom.Vec3{{}, {X: 1}, {Y: 1}, {Z: math.NaN()}}
	if _, err := Compute(bad); err == nil {
		t.Error("NaN input accepted")
	}
}

func TestTetrahedron(t *testing.T) {
	pts := []geom.Vec3{{}, {X: 1}, {Y: 1}, {Z: 1}}
	h, err := Compute(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Faces) != 4 {
		t.Errorf("faces = %d, want 4", len(h.Faces))
	}
	if len(h.VertexIndices) != 4 {
		t.Errorf("vertices = %d, want 4", len(h.VertexIndices))
	}
	if got := h.Volume(); math.Abs(got-1.0/6) > 1e-12 {
		t.Errorf("volume = %v, want 1/6", got)
	}
	wantArea := 1.5 + math.Sqrt(3)/2
	if got := h.Area(); math.Abs(got-wantArea) > 1e-12 {
		t.Errorf("area = %v, want %v", got, wantArea)
	}
}

func TestCube(t *testing.T) {
	pts := cubeCorners(2)
	h, err := Compute(pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Volume(); math.Abs(got-8) > 1e-9 {
		t.Errorf("cube volume = %v, want 8", got)
	}
	if got := h.Area(); math.Abs(got-24) > 1e-9 {
		t.Errorf("cube area = %v, want 24", got)
	}
	if len(h.VertexIndices) != 8 {
		t.Errorf("cube hull vertices = %d, want 8", len(h.VertexIndices))
	}
	if len(h.Faces) != 12 {
		t.Errorf("cube triangles = %d, want 12", len(h.Faces))
	}
}

func TestCubeWithInteriorPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	pts := cubeCorners(2)
	for i := 0; i < 500; i++ {
		pts = append(pts, geom.V(rng.Float64()*2, rng.Float64()*2, rng.Float64()*2))
	}
	h, err := Compute(pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Volume(); math.Abs(got-8) > 1e-9 {
		t.Errorf("volume = %v, want 8", got)
	}
	// Interior points are not hull vertices.
	for _, vi := range h.VertexIndices {
		if vi >= 8 {
			t.Errorf("interior point %d on hull", vi)
		}
	}
}

func TestAllPointsInsideHull(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.Intn(200)
		pts := make([]geom.Vec3, n)
		for i := range pts {
			pts[i] = geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		}
		h, err := Compute(pts)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pts {
			if !h.Contains(p) {
				t.Fatalf("trial %d: input point %d (%v) outside hull", trial, i, p)
			}
		}
	}
}

func TestHullOfHullIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	pts := make([]geom.Vec3, 300)
	for i := range pts {
		pts[i] = geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
	}
	h1, err := Compute(pts)
	if err != nil {
		t.Fatal(err)
	}
	sub := make([]geom.Vec3, len(h1.VertexIndices))
	for i, vi := range h1.VertexIndices {
		sub[i] = pts[vi]
	}
	h2, err := Compute(sub)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h1.Volume()-h2.Volume()) > 1e-9*math.Max(h1.Volume(), 1) {
		t.Errorf("volumes differ: %v vs %v", h1.Volume(), h2.Volume())
	}
	if math.Abs(h1.Area()-h2.Area()) > 1e-9*math.Max(h1.Area(), 1) {
		t.Errorf("areas differ: %v vs %v", h1.Area(), h2.Area())
	}
	if len(h2.VertexIndices) != len(h1.VertexIndices) {
		t.Errorf("vertex counts differ: %d vs %d", len(h1.VertexIndices), len(h2.VertexIndices))
	}
}

func TestVolumePermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	pts := make([]geom.Vec3, 60)
	for i := range pts {
		pts[i] = geom.V(rng.Float64()*5, rng.Float64()*5, rng.Float64()*5)
	}
	h1, err := Compute(pts)
	if err != nil {
		t.Fatal(err)
	}
	perm := append([]geom.Vec3(nil), pts...)
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	h2, err := Compute(perm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h1.Volume()-h2.Volume()) > 1e-9*h1.Volume() {
		t.Errorf("volume changed under permutation: %v vs %v", h1.Volume(), h2.Volume())
	}
}

func TestVolumeRigidMotionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	pts := make([]geom.Vec3, 80)
	for i := range pts {
		pts[i] = geom.V(rng.Float64(), rng.Float64(), rng.Float64())
	}
	h1, err := Compute(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Rotate by 30 degrees about z and translate.
	c, s := math.Cos(math.Pi/6), math.Sin(math.Pi/6)
	moved := make([]geom.Vec3, len(pts))
	for i, p := range pts {
		moved[i] = geom.V(c*p.X-s*p.Y+10, s*p.X+c*p.Y-3, p.Z+7)
	}
	h2, err := Compute(moved)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h1.Volume()-h2.Volume()) > 1e-8*math.Max(h1.Volume(), 1) {
		t.Errorf("volume changed under rigid motion: %v vs %v", h1.Volume(), h2.Volume())
	}
}

func TestSphereVolumeConverges(t *testing.T) {
	// Hull of many points on a unit sphere approximates sphere volume and
	// area from below.
	rng := rand.New(rand.NewSource(37))
	n := 2000
	pts := make([]geom.Vec3, n)
	for i := range pts {
		v := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Normalize()
		pts[i] = v
	}
	h, err := Compute(pts)
	if err != nil {
		t.Fatal(err)
	}
	sphereVol := 4 * math.Pi / 3
	if h.Volume() > sphereVol {
		t.Errorf("hull volume %v exceeds sphere volume %v", h.Volume(), sphereVol)
	}
	if h.Volume() < 0.97*sphereVol {
		t.Errorf("hull volume %v too far below sphere volume %v", h.Volume(), sphereVol)
	}
	if h.Area() > 4*math.Pi || h.Area() < 0.97*4*math.Pi {
		t.Errorf("hull area %v vs sphere area %v", h.Area(), 4*math.Pi)
	}
}

func TestEulerFormula(t *testing.T) {
	// For a triangulated convex polytope: V - E + F = 2, E = 3F/2.
	rng := rand.New(rand.NewSource(38))
	for trial := 0; trial < 20; trial++ {
		pts := make([]geom.Vec3, 30+rng.Intn(100))
		for i := range pts {
			pts[i] = geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		}
		h, err := Compute(pts)
		if err != nil {
			t.Fatal(err)
		}
		v := len(h.VertexIndices)
		f := len(h.Faces)
		if f%2 != 0 {
			t.Fatalf("odd face count %d", f)
		}
		e := 3 * f / 2
		if v-e+f != 2 {
			t.Fatalf("Euler violated: V=%d E=%d F=%d", v, e, f)
		}
	}
}

func TestFacesOutwardOriented(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	pts := make([]geom.Vec3, 100)
	for i := range pts {
		pts[i] = geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
	}
	h, err := Compute(pts)
	if err != nil {
		t.Fatal(err)
	}
	c := h.Centroid()
	for _, f := range h.Faces {
		if f.Plane.Eval(c) >= 0 {
			t.Fatalf("face %v does not face away from centroid (eval %v)", f.V, f.Plane.Eval(c))
		}
	}
}

func TestMergedFacesCube(t *testing.T) {
	h, err := Compute(cubeCorners(1))
	if err != nil {
		t.Fatal(err)
	}
	mf := h.MergedFaces(0)
	if len(mf) != 6 {
		t.Fatalf("cube merged faces = %d, want 6", len(mf))
	}
	var area float64
	for _, f := range mf {
		if len(f.Loop) != 4 {
			t.Errorf("cube facet has %d vertices, want 4", len(f.Loop))
		}
		loop := make([]geom.Vec3, len(f.Loop))
		for i, vi := range f.Loop {
			loop[i] = h.Points[vi]
		}
		area += geom.PolygonArea(loop)
	}
	if math.Abs(area-6) > 1e-9 {
		t.Errorf("merged area = %v, want 6", area)
	}
}

func TestMergedFacesRandomConsistent(t *testing.T) {
	// On random (generic) points, no triangles merge; merged faces are the
	// triangles themselves and total area matches.
	rng := rand.New(rand.NewSource(40))
	pts := make([]geom.Vec3, 50)
	for i := range pts {
		pts[i] = geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
	}
	h, err := Compute(pts)
	if err != nil {
		t.Fatal(err)
	}
	mf := h.MergedFaces(0)
	var area float64
	for _, f := range mf {
		loop := make([]geom.Vec3, len(f.Loop))
		for i, vi := range f.Loop {
			loop[i] = h.Points[vi]
		}
		area += geom.PolygonArea(loop)
	}
	if math.Abs(area-h.Area()) > 1e-6*h.Area() {
		t.Errorf("merged area %v vs triangle area %v", area, h.Area())
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := cubeCorners(1)
	pts = append(pts, pts...) // every corner twice
	h, err := Compute(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Volume()-1) > 1e-9 {
		t.Errorf("volume with duplicates = %v", h.Volume())
	}
}

func TestNearDegenerateThin(t *testing.T) {
	// A very thin slab is still full-dimensional; volume should match.
	rng := rand.New(rand.NewSource(41))
	pts := make([]geom.Vec3, 200)
	for i := range pts {
		pts[i] = geom.V(rng.Float64(), rng.Float64(), rng.Float64()*1e-3)
	}
	h, err := Compute(pts)
	if err != nil {
		t.Fatal(err)
	}
	if h.Volume() <= 0 || h.Volume() > 1e-3 {
		t.Errorf("thin slab volume = %v", h.Volume())
	}
	for i, p := range pts {
		if !h.Contains(p) {
			t.Fatalf("point %d escaped thin hull", i)
		}
	}
}

func BenchmarkHull1000(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	pts := make([]geom.Vec3, 1000)
	for i := range pts {
		pts[i] = geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHullCell35(b *testing.B) {
	// Typical Voronoi cell size from the paper: ~35 vertices.
	rng := rand.New(rand.NewSource(43))
	pts := make([]geom.Vec3, 35)
	for i := range pts {
		pts[i] = geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(pts); err != nil {
			b.Fatal(err)
		}
	}
}

package qhull

import (
	"math"

	"repro/internal/geom"
)

// Point2 is a point in the plane.
type Point2 struct {
	X, Y float64
}

// Hull2D returns the convex hull of 2D points in counterclockwise order
// (Andrew's monotone chain), with collinear boundary points omitted. The
// paper's related work surveys 2D parallel hulls (Miller & Stout); this
// serial kernel completes the computational-geometry toolkit and is used
// for planar cross-sections of cells. Fewer than 3 distinct points return
// the distinct points in sorted order.
func Hull2D(pts []Point2) []Point2 {
	s := append([]Point2(nil), pts...)
	sortPoints2(s)
	// Dedupe.
	uniq := s[:0]
	for i, p := range s {
		if i == 0 || p != s[i-1] {
			uniq = append(uniq, p)
		}
	}
	s = uniq
	if len(s) < 3 {
		return append([]Point2(nil), s...)
	}

	cross := func(o, a, b Point2) float64 {
		return (a.X-o.X)*(b.Y-o.Y) - (a.Y-o.Y)*(b.X-o.X)
	}
	var lower, upper []Point2
	for _, p := range s {
		for len(lower) >= 2 && cross(lower[len(lower)-2], lower[len(lower)-1], p) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	for i := len(s) - 1; i >= 0; i-- {
		p := s[i]
		for len(upper) >= 2 && cross(upper[len(upper)-2], upper[len(upper)-1], p) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	if len(hull) < 3 {
		// All points collinear: return the two extremes.
		return []Point2{s[0], s[len(s)-1]}
	}
	return hull
}

// Area2D returns the area enclosed by a counterclockwise polygon.
func Area2D(poly []Point2) float64 {
	if len(poly) < 3 {
		return 0
	}
	var a float64
	for i := range poly {
		p, q := poly[i], poly[(i+1)%len(poly)]
		a += p.X*q.Y - q.X*p.Y
	}
	return a / 2
}

// CrossSection intersects a convex cell (given as vertices of its hull)
// with the plane and returns the counterclockwise polygon of the section
// in the plane's 2D frame, or nil when the plane misses the cell. It is
// the 2D slice view used for Figure-1-style renderings.
func CrossSection(verts []geom.Vec3, pl geom.Plane) []Point2 {
	// Build the section points as intersections of hull edges with the
	// plane: take the 3D hull, clip each edge.
	h, err := Compute(verts)
	if err != nil {
		return nil
	}
	// Orthonormal frame in the plane.
	n := pl.N.Normalize()
	var ref geom.Vec3
	if n.X*n.X < 0.9 {
		ref = geom.Vec3{X: 1}
	} else {
		ref = geom.Vec3{Y: 1}
	}
	e1 := n.Cross(ref).Normalize()
	e2 := n.Cross(e1)
	origin := pl.Project(geom.Vec3{})

	// Sections are small (<= tens of points): weld near-duplicates from
	// adjacent triangulated faces by distance.
	tol := 1e-9 * (1 + geom.BoundingBox(verts).Size().MaxAbs())
	var pts2 []Point2
	add := func(p geom.Vec3) {
		u := p.Sub(origin)
		q := Point2{X: u.Dot(e1), Y: u.Dot(e2)}
		for _, ex := range pts2 {
			if math.Abs(ex.X-q.X) <= tol && math.Abs(ex.Y-q.Y) <= tol {
				return
			}
		}
		pts2 = append(pts2, q)
	}
	for _, f := range h.Faces {
		for i := 0; i < 3; i++ {
			a := h.Points[f.V[i]]
			b := h.Points[f.V[(i+1)%3]]
			if t, ok := pl.SegmentCross(a, b); ok {
				add(a.Lerp(b, t))
			}
		}
	}
	if len(pts2) < 3 {
		return nil
	}
	hull := Hull2D(pts2)
	// The triangulated 3D hull also yields intersection points on face
	// diagonals; they lie on the section polygon's edges and must be
	// dropped as (numerically near-)collinear.
	return dropCollinear(hull, tol)
}

// dropCollinear removes vertices within tol of the segment joining their
// neighbors.
func dropCollinear(poly []Point2, tol float64) []Point2 {
	if len(poly) < 4 {
		return poly
	}
	out := append([]Point2(nil), poly...)
	for changed := true; changed && len(out) > 3; {
		changed = false
		for i := 0; i < len(out); i++ {
			a := out[(i-1+len(out))%len(out)]
			b := out[i]
			c := out[(i+1)%len(out)]
			ux, uy := c.X-a.X, c.Y-a.Y
			vx, vy := b.X-a.X, b.Y-a.Y
			cross := ux*vy - uy*vx
			norm := math.Hypot(ux, uy)
			if norm == 0 || math.Abs(cross)/norm <= tol {
				out = append(out[:i], out[i+1:]...)
				changed = true
				break
			}
		}
	}
	return out
}

// lessPoint2 orders points lexicographically by (X, Y).
func lessPoint2(a, b Point2) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}

// sortPoints2 sorts lexicographically without the sort.Slice closure
// allocation (the hull sits on the per-cell hot path): quicksort with
// median-of-three pivots, insertion sort below a small cutoff.
func sortPoints2(a []Point2) {
	for len(a) > 12 {
		lo, mid, hi := 0, len(a)/2, len(a)-1
		if lessPoint2(a[mid], a[lo]) {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if lessPoint2(a[hi], a[lo]) {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if lessPoint2(a[hi], a[mid]) {
			a[hi], a[mid] = a[mid], a[hi]
		}
		a[lo], a[mid] = a[mid], a[lo]
		pivot := a[lo]
		i, j := 1, len(a)-1
		for {
			for i <= j && lessPoint2(a[i], pivot) {
				i++
			}
			for i <= j && lessPoint2(pivot, a[j]) {
				j--
			}
			if i > j {
				break
			}
			a[i], a[j] = a[j], a[i]
			i++
			j--
		}
		a[lo], a[j] = a[j], a[lo]
		// Recurse into the smaller side, loop on the larger.
		if j < len(a)-1-j {
			sortPoints2(a[:j])
			a = a[j+1:]
		} else {
			sortPoints2(a[j+1:])
			a = a[:j]
		}
	}
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && lessPoint2(v, a[j]) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

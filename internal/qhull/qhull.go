// Package qhull is a from-scratch implementation of the 3D Quickhull convex
// hull algorithm (Barber, Dobkin, Huhdanpaa 1996), standing in for the Qhull
// library the paper parallelizes. tess uses it exactly where the paper uses
// Qhull's hull pass: ordering the vertices of each Voronoi cell into faces
// and computing cell volumes and surface areas.
//
// The implementation follows the classic structure: an initial simplex from
// extreme points, per-face conflict lists, horizon detection by visibility
// BFS, and cone construction over the horizon. Coplanarity is handled with
// an epsilon scaled to the input extent; points within tolerance of a face
// are treated as interior (Qhull's "coplanar points" behaviour with merged
// facets).
//
//tess:hotpath
package qhull

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
)

// ErrDegenerate is returned when the input has no full-dimensional hull
// (fewer than 4 points, or all points coplanar/collinear within tolerance).
var ErrDegenerate = errors.New("qhull: degenerate input (not full-dimensional)")

// Face is a triangular hull facet with outward orientation: vertices are
// counterclockwise when viewed from outside.
type Face struct {
	V     [3]int // indices into the input point slice
	Plane geom.Plane
}

// Hull is a 3D convex hull.
type Hull struct {
	// Points is the input point slice (not copied).
	Points []geom.Vec3
	// Faces are the triangular facets with outward normals.
	Faces []Face
	// VertexIndices lists the indices of input points that are hull
	// vertices, in increasing order.
	VertexIndices []int

	eps float64
}

type face struct {
	v         [3]int
	plane     geom.Plane
	neighbors [3]*face // across edge (v[i], v[(i+1)%3])
	conflicts []int
	dead      bool
	visited   bool
}

// thirdVertex returns the face vertex that is not u and not v.
func (f *face) thirdVertex(u, v int) int {
	for _, w := range f.v {
		if w != u && w != v {
			return w
		}
	}
	return f.v[0]
}

// Compute returns the convex hull of pts. It returns ErrDegenerate when the
// points do not span three dimensions within tolerance.
func Compute(pts []geom.Vec3) (*Hull, error) {
	if len(pts) < 4 {
		return nil, ErrDegenerate
	}
	for _, p := range pts {
		if !p.IsFinite() {
			return nil, fmt.Errorf("qhull: non-finite input point %v", p)
		}
	}

	// Tolerance scaled to the extent of the input.
	bb := geom.BoundingBox(pts)
	scale := math.Max(bb.Size().MaxAbs(), bb.Max.MaxAbs())
	eps := 1e-9 * math.Max(scale, 1e-30)

	initial, err := initialSimplex(pts, eps)
	if err != nil {
		return nil, err
	}

	// The initial simplex centroid stays strictly interior as the hull only
	// grows; it anchors the outward orientation of every cone facet (sliver
	// facets over near-coplanar horizon edges can otherwise come out with
	// inverted normals, silently corrupting visibility for later points).
	interior := pts[initial[0]].Add(pts[initial[1]]).Add(pts[initial[2]]).Add(pts[initial[3]]).Scale(0.25)

	faces := makeSimplexFaces(pts, initial)

	// Initial conflict assignment.
	inSimplex := map[int]bool{initial[0]: true, initial[1]: true, initial[2]: true, initial[3]: true}
	for i := range pts {
		if inSimplex[i] {
			continue
		}
		assignConflict(faces, i, pts, eps)
	}

	// Work queue of faces that may have conflicts.
	queue := append([]*face(nil), faces...)
	live := faces
	// Cone workspace, reused across insertions so the queue loop does not
	// allocate a fresh slice and hash table per point.
	var newFaces []*face
	edgeToFace := make(map[[2]int]*face, 64)
	drain := func() error {
		for len(queue) > 0 {
			f := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if f.dead || len(f.conflicts) == 0 {
				continue
			}
			// Farthest conflict point of f.
			best, bestD := -1, -math.Inf(1)
			for _, ci := range f.conflicts {
				if d := f.plane.Eval(pts[ci]); d > bestD {
					best, bestD = ci, d
				}
			}
			if bestD <= eps {
				f.conflicts = nil
				continue
			}
			p := best

			visible := findVisible(f, pts[p], eps)
			horizon := findHorizon(visible)
			// If p is already a hull vertex (repair re-insertions), the cone
			// is sound only when p's entire face ring is inside the visible
			// set; a retained face keeping p as a vertex would leave p with
			// two disjoint face fans — a pinched, non-manifold vertex whose
			// neighborhood later rebuilds duplicate facets. findVisible
			// leaves visited set on the visible faces, so retained faces are
			// exactly the live unvisited ones.
			pinched := false
			for _, lf := range live {
				if !lf.dead && !lf.visited && (lf.v[0] == p || lf.v[1] == p || lf.v[2] == p) {
					pinched = true
					break
				}
			}
			if len(horizon) < 3 || pinched {
				// Numerical trouble: treat the point as interior.
				for _, vf := range visible {
					vf.visited = false
				}
				removeConflict(f, p)
				queue = append(queue, f)
				continue
			}

			// Build the cone of new faces over the horizon.
			newFaces = newFaces[:0]
			clear(edgeToFace)
			for _, h := range horizon {
				nf := &face{v: [3]int{h.u, h.v, p}}
				nf.plane = geom.PlaneFromPoints(pts[h.u], pts[h.v], pts[p])
				if nf.plane.Degenerate() {
					// Fall back to a plane through the edge facing away from
					// the hull centroid; conflicts will sort themselves out on
					// later insertions.
					nf.plane = h.outside.plane
				} else {
					// Orient outward against the retained neighbor's off-edge
					// vertex: it is a hull vertex, so it must lie on the
					// non-positive side, and it is face-local — on anisotropic
					// inputs the far simplex centroid amplifies the normal's
					// angular noise by its distance and can pick the wrong
					// sign. Fall back to the interior anchor only when the
					// neighbor is cofacial and carries no signal.
					w := pts[h.outside.thirdVertex(h.u, h.v)]
					if d := nf.plane.Eval(w); d > eps {
						nf.plane = nf.plane.Flip()
					} else if d >= -eps && nf.plane.Eval(interior) > 0 {
						nf.plane = nf.plane.Flip()
					}
				}
				nf.neighbors[0] = h.outside
				// Update the retained face's pointer toward the dead region.
				for i := 0; i < 3; i++ {
					if h.outside.neighbors[i] == h.inside {
						h.outside.neighbors[i] = nf
					}
				}
				edgeToFace[[2]int{h.v, p}] = nf
				edgeToFace[[2]int{p, h.u}] = nf
				newFaces = append(newFaces, nf)
			}
			// Link new faces to each other: edge (v,p) of one is twin of (p,v)
			// of the next.
			for _, nf := range newFaces {
				// neighbors[1] is across (v, p); twin is (p, v).
				nf.neighbors[1] = edgeToFace[[2]int{p, nf.v[1]}]
				// neighbors[2] is across (p, u); twin is (u, p) == (v', p) of
				// the previous cone face.
				nf.neighbors[2] = edgeToFace[[2]int{nf.v[0], p}]
				if nf.neighbors[1] == nil || nf.neighbors[2] == nil {
					return fmt.Errorf("qhull: broken horizon linkage")
				}
			}

			// Reassign conflicts of dead faces.
			for _, vf := range visible {
				vf.dead = true
				for _, ci := range vf.conflicts {
					if ci == p {
						continue
					}
					assignConflictFaces(newFaces, ci, pts, eps)
				}
				vf.conflicts = nil
			}
			live = append(live, newFaces...)
			queue = append(queue, newFaces...)
		}
		return nil
	}
	if err := drain(); err != nil {
		return nil, err
	}

	// Convexity repair. Engulfing a coplanar patch and rebuilding it anchored
	// at a near-duplicate of one of its vertices tilts the rebuilt facets by
	// far more than eps, leaving already-inserted vertices outside a reflex
	// seam; the conflict lists never revisit them, and a later BFS from an
	// unrelated seed cannot reach the seam because the visible region of a
	// non-convex surface is disconnected. Re-seed the worst violator as a
	// conflict of the facet it violates — the BFS then starts at the seam —
	// and re-drain, a bounded number of times. Production Qhull solves this
	// class with facet merging; bounded repair plus an explicit failure keeps
	// this engine honest without that machinery.
	const maxRepairRounds = 16
	for round := 0; ; round++ {
		var wf *face
		wp, wd := -1, eps
		for _, f := range live {
			if f.dead {
				continue
			}
			for i := range pts {
				if d := f.plane.Eval(pts[i]); d > wd {
					wf, wp, wd = f, i, d
				}
			}
		}
		if wp < 0 {
			break
		}
		if round == maxRepairRounds {
			return nil, fmt.Errorf("qhull: convexity repair stalled: point %d outside by %g", wp, wd)
		}
		wf.conflicts = append(wf.conflicts, wp)
		queue = append(queue, wf)
		if err := drain(); err != nil {
			return nil, err
		}
	}

	h := &Hull{Points: pts, eps: eps}
	seen := make([]bool, len(pts))
	for _, f := range live {
		if f.dead {
			continue
		}
		h.Faces = append(h.Faces, Face{V: f.v, Plane: f.plane})
		for _, vi := range f.v {
			seen[vi] = true
		}
	}
	if len(h.Faces) < 4 {
		return nil, ErrDegenerate
	}
	// The index scan yields VertexIndices already in increasing order.
	for vi, on := range seen {
		if on {
			h.VertexIndices = append(h.VertexIndices, vi)
		}
	}
	return h, nil
}

// initialSimplex picks four points spanning a non-degenerate tetrahedron:
// the two most distant extreme points, the point farthest from their line,
// and the point farthest from the resulting plane.
func initialSimplex(pts []geom.Vec3, eps float64) ([4]int, error) {
	var out [4]int
	// Extreme points along each axis.
	ext := make([]int, 0, 6)
	for axis := 0; axis < 3; axis++ {
		lo, hi := 0, 0
		for i, p := range pts {
			if p.Component(axis) < pts[lo].Component(axis) {
				lo = i
			}
			if p.Component(axis) > pts[hi].Component(axis) {
				hi = i
			}
		}
		ext = append(ext, lo, hi)
	}
	// Most distant pair among extremes.
	bestD := -1.0
	for i := 0; i < len(ext); i++ {
		for j := i + 1; j < len(ext); j++ {
			if d := pts[ext[i]].Dist2(pts[ext[j]]); d > bestD {
				bestD = d
				out[0], out[1] = ext[i], ext[j]
			}
		}
	}
	if bestD <= eps*eps {
		return out, ErrDegenerate
	}
	// Farthest from the line (out[0], out[1]).
	a, b := pts[out[0]], pts[out[1]]
	ab := b.Sub(a)
	bestD = -1.0
	for i, p := range pts {
		d := ab.Cross(p.Sub(a)).Norm2()
		if d > bestD {
			bestD = d
			out[2] = i
		}
	}
	if bestD <= eps*eps*ab.Norm2() {
		return out, ErrDegenerate
	}
	// Farthest from the plane (out[0], out[1], out[2]).
	pl := geom.PlaneFromPoints(a, b, pts[out[2]])
	bestAbs := -1.0
	for i, p := range pts {
		d := math.Abs(pl.Eval(p))
		if d > bestAbs {
			bestAbs = d
			out[3] = i
		}
	}
	if bestAbs <= eps {
		return out, ErrDegenerate
	}
	return out, nil
}

// makeSimplexFaces builds the four outward-oriented faces of the initial
// tetrahedron with neighbor links.
func makeSimplexFaces(pts []geom.Vec3, s [4]int) []*face {
	a, b, c, d := s[0], s[1], s[2], s[3]
	// Ensure positive orientation: d above plane (a, b, c).
	if geom.Orient3DVal(pts[a], pts[b], pts[c], pts[d]) < 0 {
		b, c = c, b
	}
	// Faces of tetrahedron (a,b,c,d) with outward CCW orientation.
	tris := [4][3]int{
		{a, c, b}, // bottom, outward away from d
		{a, b, d},
		{b, c, d},
		{c, a, d},
	}
	faces := make([]*face, 4)
	for i, t := range tris {
		faces[i] = &face{v: t, plane: geom.PlaneFromPoints(pts[t[0]], pts[t[1]], pts[t[2]])}
	}
	// Link neighbors by directed edge twins.
	edge := map[[2]int]*face{}
	for _, f := range faces {
		for i := 0; i < 3; i++ {
			edge[[2]int{f.v[i], f.v[(i+1)%3]}] = f
		}
	}
	for _, f := range faces {
		for i := 0; i < 3; i++ {
			f.neighbors[i] = edge[[2]int{f.v[(i+1)%3], f.v[i]}]
		}
	}
	return faces
}

func assignConflict(faces []*face, pi int, pts []geom.Vec3, eps float64) {
	for _, f := range faces {
		if f.plane.Eval(pts[pi]) > eps {
			f.conflicts = append(f.conflicts, pi)
			return
		}
	}
}

func assignConflictFaces(faces []*face, pi int, pts []geom.Vec3, eps float64) {
	for _, f := range faces {
		if !f.dead && f.plane.Eval(pts[pi]) > eps {
			f.conflicts = append(f.conflicts, pi)
			return
		}
	}
}

func removeConflict(f *face, pi int) {
	for i, ci := range f.conflicts {
		if ci == pi {
			f.conflicts[i] = f.conflicts[len(f.conflicts)-1]
			f.conflicts = f.conflicts[:len(f.conflicts)-1]
			return
		}
	}
}

// findVisible returns all live faces visible from p, found by BFS from the
// seed face. Neighbors the point is merely coplanar with (|Eval| <= eps)
// count as visible: engulfing the coplanar patch rebuilds it as part of the
// cone, where leaving it in place would stitch the new facets onto a
// non-convex seam that no later insertion revisits (the classic failure of
// eps-fuzzy incremental hulls on inputs with 4+ cofacial points). Visited
// flags are left set on the returned faces; callers clear them via death or
// explicitly on abort.
func findVisible(seed *face, p geom.Vec3, eps float64) []*face {
	seed.visited = true
	stack := []*face{seed}
	var out []*face
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, f)
		for _, nb := range f.neighbors {
			if nb == nil || nb.visited || nb.dead {
				continue
			}
			if nb.plane.Eval(p) > -eps {
				nb.visited = true
				stack = append(stack, nb)
			}
		}
	}
	return out
}

// horizonEdge is a directed edge (u → v) on the boundary between the
// visible region (inside) and a retained face (outside), directed as it
// appears in the visible face.
type horizonEdge struct {
	u, v    int
	inside  *face
	outside *face
}

// findHorizon collects the boundary edges of the visible region in
// arbitrary order.
func findHorizon(visible []*face) []horizonEdge {
	var out []horizonEdge
	for _, f := range visible {
		for i := 0; i < 3; i++ {
			nb := f.neighbors[i]
			if nb == nil || nb.dead {
				continue
			}
			if !nb.visited {
				out = append(out, horizonEdge{
					u:       f.v[i],
					v:       f.v[(i+1)%3],
					inside:  f,
					outside: nb,
				})
			}
		}
	}
	return out
}

// Volume returns the enclosed volume of the hull.
func (h *Hull) Volume() float64 {
	if len(h.Faces) == 0 {
		return 0
	}
	// Signed sum of tetrahedra from an interior reference point; outward
	// orientation makes each term positive up to roundoff.
	ref := h.Points[h.VertexIndices[0]]
	var vol float64
	for _, f := range h.Faces {
		vol += geom.Orient3DVal(ref, h.Points[f.V[0]], h.Points[f.V[1]], h.Points[f.V[2]])
	}
	return math.Abs(vol) / 6
}

// Area returns the total surface area of the hull.
func (h *Hull) Area() float64 {
	var area float64
	for _, f := range h.Faces {
		area += geom.TriangleArea(h.Points[f.V[0]], h.Points[f.V[1]], h.Points[f.V[2]])
	}
	return area
}

// Centroid returns the centroid of the hull vertices (not the volumetric
// centroid).
func (h *Hull) Centroid() geom.Vec3 {
	var c geom.Vec3
	for _, vi := range h.VertexIndices {
		c = c.Add(h.Points[vi])
	}
	return c.Scale(1 / float64(len(h.VertexIndices)))
}

// Contains reports whether p lies inside or on the hull (within tolerance).
func (h *Hull) Contains(p geom.Vec3) bool {
	for _, f := range h.Faces {
		if f.Plane.Eval(p) > h.eps {
			return false
		}
	}
	return true
}

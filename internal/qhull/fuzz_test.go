package qhull

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/geom"
)

// fuzzPoints decodes a fuzz payload as packed little-endian float64 triples,
// capped so pathological inputs stay fast.
func fuzzPoints(data []byte) []geom.Vec3 {
	const maxPts = 48
	n := len(data) / 24
	if n > maxPts {
		n = maxPts
	}
	pts := make([]geom.Vec3, n)
	for i := 0; i < n; i++ {
		pts[i] = geom.V(
			math.Float64frombits(binary.LittleEndian.Uint64(data[24*i:])),
			math.Float64frombits(binary.LittleEndian.Uint64(data[24*i+8:])),
			math.Float64frombits(binary.LittleEndian.Uint64(data[24*i+16:])),
		)
	}
	return pts
}

func marshalPoints(pts []geom.Vec3) []byte {
	out := make([]byte, 24*len(pts))
	for i, p := range pts {
		binary.LittleEndian.PutUint64(out[24*i:], math.Float64bits(p.X))
		binary.LittleEndian.PutUint64(out[24*i+8:], math.Float64bits(p.Y))
		binary.LittleEndian.PutUint64(out[24*i+16:], math.Float64bits(p.Z))
	}
	return out
}

// FuzzCompute drives the hull engine with adversarial point sets — the
// degenerate configurations (coplanar, collinear, cospherical, duplicated
// sites) that Qhull's joggle/merge machinery exists to survive. Compute
// must never panic; it either rejects the input (ErrDegenerate, non-finite
// points) or returns a hull satisfying the convexity invariants:
// containment of every input point, outward face planes, and Euler's
// relation for a triangulated closed surface.
func FuzzCompute(f *testing.F) {
	cube := []geom.Vec3{
		{X: 0, Y: 0, Z: 0}, {X: 1, Y: 0, Z: 0}, {X: 0, Y: 1, Z: 0}, {X: 1, Y: 1, Z: 0},
		{X: 0, Y: 0, Z: 1}, {X: 1, Y: 0, Z: 1}, {X: 0, Y: 1, Z: 1}, {X: 1, Y: 1, Z: 1},
	}
	f.Add(marshalPoints(cube))
	// Duplicate sites: the cube with every corner repeated.
	f.Add(marshalPoints(append(append([]geom.Vec3{}, cube...), cube...)))
	// Coplanar grid (degenerate: no 3D hull).
	var plane []geom.Vec3
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			plane = append(plane, geom.V(float64(x), float64(y), 2))
		}
	}
	f.Add(marshalPoints(plane))
	// Collinear points.
	f.Add(marshalPoints([]geom.Vec3{{}, {X: 1}, {X: 2}, {X: 3}, {X: 4}}))
	// Cospherical points (icosahedron): every point is a hull vertex and
	// many 4-point subsets are nearly coplanar.
	phi := (1 + math.Sqrt(5)) / 2
	ico := []geom.Vec3{
		{Y: 1, Z: phi}, {Y: 1, Z: -phi}, {Y: -1, Z: phi}, {Y: -1, Z: -phi},
		{X: 1, Y: phi}, {X: 1, Y: -phi}, {X: -1, Y: phi}, {X: -1, Y: -phi},
		{X: phi, Z: 1}, {X: phi, Z: -1}, {X: -phi, Z: 1}, {X: -phi, Z: -1},
	}
	f.Add(marshalPoints(ico))
	// Near-coplanar: a flat box a hair thicker than the tolerance.
	thin := append([]geom.Vec3{}, plane...)
	thin = append(thin, geom.V(1.5, 1.5, 2+1e-7))
	f.Add(marshalPoints(thin))
	// Tiny simplex plus a far outlier (scale stress).
	f.Add(marshalPoints([]geom.Vec3{
		{}, {X: 1e-8}, {Y: 1e-8}, {Z: 1e-8}, {X: 1e8, Y: 1e8, Z: 1e8},
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		pts := fuzzPoints(data)
		h, err := Compute(pts)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		if len(h.Faces) < 4 {
			t.Fatalf("accepted hull with %d faces", len(h.Faces))
		}
		// Euler's relation for a closed triangulated surface: every face
		// has 3 edges, each shared by 2 faces, so V = 2 + F/2.
		if len(h.Faces)%2 != 0 {
			t.Fatalf("odd face count %d on a closed triangulated hull", len(h.Faces))
		}
		if v := len(h.VertexIndices); v != 2+len(h.Faces)/2 {
			t.Fatalf("Euler violation: %d vertices, %d faces (want V = 2 + F/2)", v, len(h.Faces))
		}
		// Containment: no input point may lie meaningfully outside any face.
		// The check is conditioning-aware. The engine's construction epsilon
		// is 1e-9 of the input extent; a facet whose triangle spans less
		// than ~eps in some direction (sliver faces from duplicate or
		// cospherical sites) has its *orientation* decided by eps-scale
		// data, with angular uncertainty about eps*maxEdge/(2*area). The
		// plane-evaluation error at a point grows with that uncertainty
		// times the point's distance, so that is the allowance; facets
		// whose orientation is entirely unconstrained (uncertainty ~1 rad)
		// check nothing and are skipped. Production Qhull merges such
		// facets away; this engine keeps them simplicial. Well-conditioned
		// facets keep a tight absolute tolerance.
		bb := geom.BoundingBox(pts)
		scale := math.Max(bb.Size().MaxAbs(), math.Max(bb.Max.MaxAbs(), 1e-30))
		tol := 1e-7 * scale
		eps := 1e-9 * scale
		c := h.Centroid()
		for _, fc := range h.Faces {
			a, fb, fcv := h.Points[fc.V[0]], h.Points[fc.V[1]], h.Points[fc.V[2]]
			area2 := fb.Sub(a).Cross(fcv.Sub(a)).Norm() // 2*area
			if area2 < 1e-30*scale*scale {
				continue // zero-area sliver: its plane constrains nothing
			}
			maxE := math.Sqrt(math.Max(a.Dist2(fb), math.Max(fb.Dist2(fcv), a.Dist2(fcv))))
			dirErr := 2 * eps * maxE / area2
			if dirErr > 0.5 {
				continue // orientation numerically unconstrained
			}
			for i, p := range pts {
				allow := tol + dirErr*p.Dist(a)
				if d := fc.Plane.Eval(p); d > allow {
					t.Fatalf("point %d lies %g outside hull face %v (allowed %g)", i, d, fc.V, allow)
				}
			}
			// Outward orientation: the hull centroid stays inside.
			if d := fc.Plane.Eval(c); d > tol+dirErr*c.Dist(a) {
				t.Fatalf("centroid %g outside face %v: not outward-oriented", d, fc.V)
			}
		}
		if vol := h.Volume(); vol < 0 || math.IsNaN(vol) {
			t.Fatalf("hull volume %g", vol)
		}
	})
}

package qhull

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestHull2DSquare(t *testing.T) {
	pts := []Point2{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}, {0.2, 0.8}}
	h := Hull2D(pts)
	if len(h) != 4 {
		t.Fatalf("hull size %d, want 4", len(h))
	}
	if got := Area2D(h); math.Abs(got-1) > 1e-12 {
		t.Errorf("area = %v, want 1", got)
	}
	// CCW orientation: positive area.
	if Area2D(h) <= 0 {
		t.Error("hull not counterclockwise")
	}
}

func TestHull2DDegenerate(t *testing.T) {
	if h := Hull2D(nil); len(h) != 0 {
		t.Errorf("empty input: %v", h)
	}
	if h := Hull2D([]Point2{{1, 2}}); len(h) != 1 {
		t.Errorf("single point: %v", h)
	}
	if h := Hull2D([]Point2{{1, 2}, {1, 2}, {1, 2}}); len(h) != 1 {
		t.Errorf("duplicates: %v", h)
	}
	// Collinear points reduce to the two extremes.
	col := []Point2{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	h := Hull2D(col)
	if len(h) != 2 || h[0] != (Point2{0, 0}) || h[1] != (Point2{3, 3}) {
		t.Errorf("collinear hull: %v", h)
	}
}

func TestHull2DContainsAllPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(117))
	pts := make([]Point2, 500)
	for i := range pts {
		pts[i] = Point2{rng.NormFloat64(), rng.NormFloat64()}
	}
	h := Hull2D(pts)
	cross := func(o, a, b Point2) float64 {
		return (a.X-o.X)*(b.Y-o.Y) - (a.Y-o.Y)*(b.X-o.X)
	}
	for _, p := range pts {
		for i := range h {
			a, b := h[i], h[(i+1)%len(h)]
			if cross(a, b, p) < -1e-9 {
				t.Fatalf("point %v outside hull edge %v-%v", p, a, b)
			}
		}
	}
}

func TestHull2DCircleArea(t *testing.T) {
	n := 1000
	pts := make([]Point2, n)
	for i := range pts {
		a := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = Point2{math.Cos(a), math.Sin(a)}
	}
	h := Hull2D(pts)
	if got := Area2D(h); math.Abs(got-math.Pi) > 0.01 {
		t.Errorf("circle hull area = %v, want ~pi", got)
	}
}

func TestCrossSectionCube(t *testing.T) {
	// Slicing the unit cube at z = 0.5 yields a unit square of area 1.
	cube := geom.NewBox(geom.V(0, 0, 0), geom.V(1, 1, 1))
	corners := cube.Corners()
	pl := geom.NewPlane(geom.V(0, 0, 1), geom.V(0, 0, 0.5))
	sect := CrossSection(corners[:], pl)
	if sect == nil {
		t.Fatal("no section")
	}
	if got := Area2D(sect); math.Abs(got-1) > 1e-9 {
		t.Errorf("section area = %v, want 1", got)
	}
	// Diagonal slice through the center: x+y+z = 1.5 gives a regular
	// hexagon of area 3*sqrt(3)/4 * (sqrt(2)/2 * 2)... known: hexagon side
	// sqrt(2)/2, area = (3*sqrt(3)/2) * s^2 = 3*sqrt(3)/4.
	diag := geom.NewPlane(geom.V(1, 1, 1), geom.V(0.5, 0.5, 0.5))
	hex := CrossSection(corners[:], diag)
	if len(hex) != 6 {
		t.Fatalf("diagonal section has %d vertices, want 6", len(hex))
	}
	want := 3 * math.Sqrt(3) / 4
	if got := Area2D(hex); math.Abs(got-want) > 1e-9 {
		t.Errorf("hexagon area = %v, want %v", got, want)
	}
	// A plane missing the cube yields nil.
	if s := CrossSection(corners[:], geom.NewPlane(geom.V(0, 0, 1), geom.V(0, 0, 5))); s != nil {
		t.Errorf("missing plane produced section %v", s)
	}
}

func TestCrossSectionDegenerateInput(t *testing.T) {
	if s := CrossSection([]geom.Vec3{{X: 1}}, geom.NewPlane(geom.V(0, 0, 1), geom.Vec3{})); s != nil {
		t.Errorf("degenerate input produced %v", s)
	}
}

package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 6, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestNewPlanPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewPlan(12)
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		NewPlan(n).Forward(got)
		for i := range got {
			if cmplx.Abs(got[i]-want[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d bin %d: got %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k*j) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = s
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{2, 8, 128, 512} {
		p := NewPlan(n)
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		p.Forward(x)
		p.Inverse(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-10 {
				t.Fatalf("n=%d round trip diverged at %d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := 256
	x := make([]complex128, n)
	var timeE float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		timeE += real(x[i] * cmplx.Conj(x[i]))
	}
	NewPlan(n).Forward(x)
	var freqE float64
	for i := range x {
		freqE += real(x[i] * cmplx.Conj(x[i]))
	}
	if math.Abs(freqE/float64(n)-timeE) > 1e-8*timeE {
		t.Errorf("Parseval violated: time %v, freq/N %v", timeE, freqE/float64(n))
	}
}

func TestImpulseIsFlat(t *testing.T) {
	n := 32
	x := make([]complex128, n)
	x[0] = 1
	NewPlan(n).Forward(x)
	for i := range x {
		if cmplx.Abs(x[i]-1) > 1e-12 {
			t.Fatalf("impulse spectrum not flat at %d: %v", i, x[i])
		}
	}
}

func TestSingleModeDetection(t *testing.T) {
	n := 64
	k := 5
	x := make([]complex128, n)
	for j := range x {
		x[j] = cmplx.Exp(complex(0, 2*math.Pi*float64(k*j)/float64(n)))
	}
	NewPlan(n).Forward(x)
	for i := range x {
		want := 0.0
		if i == k {
			want = float64(n)
		}
		if cmplx.Abs(x[i]-complex(want, 0)) > 1e-9 {
			t.Fatalf("mode leakage at bin %d: %v", i, x[i])
		}
	}
}

func TestFreqIndex(t *testing.T) {
	cases := []struct{ i, n, want int }{
		{0, 8, 0}, {1, 8, 1}, {3, 8, 3}, {4, 8, -4}, {7, 8, -1},
	}
	for _, c := range cases {
		if got := FreqIndex(c.i, c.n); got != c.want {
			t.Errorf("FreqIndex(%d, %d) = %d, want %d", c.i, c.n, got, c.want)
		}
	}
}

func TestGrid3RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := NewGrid3(8)
	for i := range g.Data {
		g.Data[i] = complex(rng.NormFloat64(), 0)
	}
	orig := g.Clone()
	Forward3(g)
	Inverse3(g)
	for i := range g.Data {
		if cmplx.Abs(g.Data[i]-orig.Data[i]) > 1e-10 {
			t.Fatalf("3D round trip diverged at %d", i)
		}
	}
}

func TestGrid3SingleMode(t *testing.T) {
	n := 8
	g := NewGrid3(n)
	kx, ky, kz := 2, 3, 1
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				ph := 2 * math.Pi * float64(kx*x+ky*y+kz*z) / float64(n)
				g.Set(x, y, z, cmplx.Exp(complex(0, ph)))
			}
		}
	}
	Forward3(g)
	n3 := float64(n * n * n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				want := 0.0
				if x == kx && y == ky && z == kz {
					want = n3
				}
				if cmplx.Abs(g.At(x, y, z)-complex(want, 0)) > 1e-7 {
					t.Fatalf("3D mode leakage at (%d,%d,%d): %v", x, y, z, g.At(x, y, z))
				}
			}
		}
	}
}

func TestSolvePoissonSingleMode(t *testing.T) {
	// For rho = cos(k.x), the solution of del^2 phi = rho is
	// phi = -cos(k.x)/|k|^2.
	n := 16
	L := 2 * math.Pi // so k0 = 1
	g := NewGrid3(n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				xx := L * float64(x) / float64(n)
				g.Set(x, y, z, complex(math.Cos(2*xx), 0))
			}
		}
	}
	SolvePoisson(g, L)
	for x := 0; x < n; x++ {
		xx := L * float64(x) / float64(n)
		want := -math.Cos(2*xx) / 4
		got := real(g.At(x, 3, 5))
		if math.Abs(got-want) > 1e-10 {
			t.Fatalf("phi(%d) = %v, want %v", x, got, want)
		}
		if math.Abs(imag(g.At(x, 3, 5))) > 1e-10 {
			t.Fatalf("phi has imaginary part %v", imag(g.At(x, 3, 5)))
		}
	}
}

func TestSolvePoissonZeroMean(t *testing.T) {
	// A constant density has no fluctuation: phi must be identically zero.
	g := NewGrid3(8)
	for i := range g.Data {
		g.Data[i] = 7
	}
	SolvePoisson(g, 1)
	for i := range g.Data {
		if cmplx.Abs(g.Data[i]) > 1e-10 {
			t.Fatalf("constant rho produced nonzero phi: %v", g.Data[i])
		}
	}
}

func TestGridIndexing(t *testing.T) {
	g := NewGrid3(4)
	g.Set(1, 2, 3, 42)
	if g.At(1, 2, 3) != 42 {
		t.Error("Set/At mismatch")
	}
	if g.Index(1, 2, 3) != (3*4+2)*4+1 {
		t.Errorf("Index = %d", g.Index(1, 2, 3))
	}
}

func BenchmarkFFT1D_1024(b *testing.B) {
	p := NewPlan(1024)
	x := make([]complex128, 1024)
	rng := rand.New(rand.NewSource(16))
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func BenchmarkPoisson3D_32(b *testing.B) {
	g := NewGrid3(32)
	rng := rand.New(rand.NewSource(17))
	for i := range g.Data {
		g.Data[i] = complex(rng.NormFloat64(), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolvePoisson(g, 32)
	}
}

// Package fft implements the fast Fourier transforms needed by the
// particle-mesh gravity solver: an iterative radix-2 complex transform and
// 3D transforms over cubic grids. Grid sizes must be powers of two, which is
// the convention for PM codes (HACC's grids are powers of two as well).
//
// The inverse transform is normalized by 1/N so that Inverse(Forward(x)) == x.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Plan caches twiddle factors and the bit-reversal permutation for 1D
// transforms of a fixed power-of-two length. Plans are safe for concurrent
// use by multiple goroutines once created.
type Plan struct {
	n       int
	rev     []int
	twiddle []complex128 // e^{-2πik/n} for k in [0, n/2)
}

// NewPlan returns a transform plan for length n. It panics if n is not a
// positive power of two.
func NewPlan(n int) *Plan {
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	p := &Plan{n: n}
	logn := bits.TrailingZeros(uint(n))
	p.rev = make([]int, n)
	for i := 0; i < n; i++ {
		p.rev[i] = int(bits.Reverse(uint(i)) >> (bits.UintSize - logn))
	}
	p.twiddle = make([]complex128, n/2)
	for k := range p.twiddle {
		angle := -2 * math.Pi * float64(k) / float64(n)
		p.twiddle[k] = cmplx.Exp(complex(0, angle))
	}
	return p
}

// N returns the transform length.
func (p *Plan) N() int { return p.n }

// Forward computes the in-place forward DFT of x. len(x) must equal the plan
// length.
func (p *Plan) Forward(x []complex128) { p.transform(x, false) }

// Inverse computes the in-place inverse DFT of x, normalized by 1/N.
func (p *Plan) Inverse(x []complex128) {
	p.transform(x, true)
	inv := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] *= inv
	}
}

func (p *Plan) transform(x []complex128, inverse bool) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: length mismatch: plan %d, input %d", p.n, len(x)))
	}
	// Bit-reversal permutation.
	for i, j := range p.rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Iterative Cooley-Tukey butterflies.
	for size := 2; size <= p.n; size <<= 1 {
		half := size >> 1
		step := p.n / size
		for start := 0; start < p.n; start += size {
			for k := 0; k < half; k++ {
				w := p.twiddle[k*step]
				if inverse {
					w = cmplx.Conj(w)
				}
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// Grid3 is a cubic complex-valued grid of side N, stored row-major as
// Data[(z*N+y)*N+x].
type Grid3 struct {
	N    int
	Data []complex128
}

// NewGrid3 allocates a zeroed N^3 grid. It panics if n is not a positive
// power of two.
func NewGrid3(n int) *Grid3 {
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: grid side %d is not a power of two", n))
	}
	return &Grid3{N: n, Data: make([]complex128, n*n*n)}
}

// Index returns the linear index of (x, y, z).
func (g *Grid3) Index(x, y, z int) int { return (z*g.N+y)*g.N + x }

// At returns the value at (x, y, z).
func (g *Grid3) At(x, y, z int) complex128 { return g.Data[g.Index(x, y, z)] }

// Set stores v at (x, y, z).
func (g *Grid3) Set(x, y, z int, v complex128) { g.Data[g.Index(x, y, z)] = v }

// Clone returns a deep copy of the grid.
func (g *Grid3) Clone() *Grid3 {
	c := &Grid3{N: g.N, Data: make([]complex128, len(g.Data))}
	copy(c.Data, g.Data)
	return c
}

// Forward3 computes the in-place 3D forward DFT of g by transforming along
// x, then y, then z.
func Forward3(g *Grid3) { transform3(g, false) }

// Inverse3 computes the in-place 3D inverse DFT of g (normalized so that
// Inverse3(Forward3(g)) == g).
func Inverse3(g *Grid3) { transform3(g, true) }

func transform3(g *Grid3, inverse bool) {
	n := g.N
	plan := NewPlan(n)
	buf := make([]complex128, n)
	// X lines are contiguous.
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			row := g.Data[g.Index(0, y, z) : g.Index(0, y, z)+n]
			if inverse {
				plan.Inverse(row)
			} else {
				plan.Forward(row)
			}
		}
	}
	// Y lines.
	for z := 0; z < n; z++ {
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				buf[y] = g.Data[g.Index(x, y, z)]
			}
			if inverse {
				plan.Inverse(buf)
			} else {
				plan.Forward(buf)
			}
			for y := 0; y < n; y++ {
				g.Data[g.Index(x, y, z)] = buf[y]
			}
		}
	}
	// Z lines.
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			for z := 0; z < n; z++ {
				buf[z] = g.Data[g.Index(x, y, z)]
			}
			if inverse {
				plan.Inverse(buf)
			} else {
				plan.Forward(buf)
			}
			for z := 0; z < n; z++ {
				g.Data[g.Index(x, y, z)] = buf[z]
			}
		}
	}
}

// FreqIndex maps grid index i in [0, n) to its signed frequency in
// [-n/2, n/2): 0, 1, ..., n/2-1, -n/2, ..., -1.
func FreqIndex(i, n int) int {
	if i < n/2 {
		return i
	}
	return i - n
}

// SolvePoisson solves del^2 phi = rho on a periodic cube of physical side L
// in place: rho is replaced by phi. The k=0 (mean) mode is set to zero,
// which corresponds to solving for the fluctuation about the mean density —
// the standard convention in cosmological PM codes.
func SolvePoisson(rho *Grid3, boxSize float64) {
	n := rho.N
	Forward3(rho)
	k0 := 2 * math.Pi / boxSize
	for z := 0; z < n; z++ {
		kz := float64(FreqIndex(z, n)) * k0
		for y := 0; y < n; y++ {
			ky := float64(FreqIndex(y, n)) * k0
			for x := 0; x < n; x++ {
				kx := float64(FreqIndex(x, n)) * k0
				k2 := kx*kx + ky*ky + kz*kz
				idx := rho.Index(x, y, z)
				if k2 == 0 {
					rho.Data[idx] = 0
					continue
				}
				rho.Data[idx] *= complex(-1/k2, 0)
			}
		}
	}
	Inverse3(rho)
}

// Package stats provides the summary statistics used by the paper's
// evaluation: fixed-width histograms over cell volumes and density
// contrasts, and the sample moments (mean, variance, skewness, kurtosis)
// reported alongside Figures 8 and 11.
//
// Kurtosis follows the paper's convention of the raw standardized fourth
// moment m4/m2^2 (a normal distribution has kurtosis 3, not 0).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Moments summarizes a sample.
type Moments struct {
	N        int
	Mean     float64
	Variance float64 // population variance (divide by N)
	Skewness float64 // m3 / m2^(3/2)
	Kurtosis float64 // m4 / m2^2 (normal = 3)
	Min, Max float64
}

// ComputeMoments returns the sample moments of xs. An empty sample yields a
// zero Moments value with N == 0.
func ComputeMoments(xs []float64) Moments {
	m := Moments{N: len(xs)}
	if m.N == 0 {
		return m
	}
	m.Min, m.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		m.Min = math.Min(m.Min, x)
		m.Max = math.Max(m.Max, x)
	}
	n := float64(m.N)
	m.Mean = sum / n
	var m2, m3, m4 float64
	for _, x := range xs {
		d := x - m.Mean
		d2 := d * d
		m2 += d2
		m3 += d2 * d
		m4 += d2 * d2
	}
	m2 /= n
	m3 /= n
	m4 /= n
	m.Variance = m2
	if m2 > 0 {
		m.Skewness = m3 / math.Pow(m2, 1.5)
		m.Kurtosis = m4 / (m2 * m2)
	}
	return m
}

// StdDev returns the population standard deviation.
func (m Moments) StdDev() float64 { return math.Sqrt(m.Variance) }

// Histogram is a fixed-width binning of a sample over [Lo, Hi). Values
// outside the range are counted in Under/Over and excluded from Counts.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
	Total  int // number of values added, including under/overflow
}

// NewHistogram returns an empty histogram with the given number of bins
// over [lo, hi). It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic(fmt.Sprintf("stats: NewHistogram with %d bins", bins))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: NewHistogram with empty range [%g, %g)", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add counts one value.
func (h *Histogram) Add(x float64) {
	h.Total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i >= len(h.Counts) { // guard against roundoff at the top edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// AddAll counts every value in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 {
	return (h.Hi - h.Lo) / float64(len(h.Counts))
}

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// MaxCount returns the largest bin count.
func (h *Histogram) MaxCount() int {
	m := 0
	for _, c := range h.Counts {
		if c > m {
			m = c
		}
	}
	return m
}

// InRange returns the number of counted values that fell inside [Lo, Hi).
func (h *Histogram) InRange() int { return h.Total - h.Under - h.Over }

// Render draws an ASCII bar chart of the histogram, width columns wide,
// in the style used by the experiment harnesses to stand in for the paper's
// plotted figures.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	var sb strings.Builder
	max := h.MaxCount()
	if max == 0 {
		max = 1
	}
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*width/max)
		fmt.Fprintf(&sb, "%10.4f |%-*s| %d\n", h.BinCenter(i), width, bar, c)
	}
	return sb.String()
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on an empty sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty sample")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}

// FractionBelow returns the fraction of xs that are strictly below x.
func FractionBelow(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range xs {
		if v < x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

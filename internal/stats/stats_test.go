package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMomentsConstantSample(t *testing.T) {
	m := ComputeMoments([]float64{2, 2, 2, 2})
	if m.N != 4 || m.Mean != 2 || m.Variance != 0 {
		t.Errorf("constant sample: %+v", m)
	}
	if m.Skewness != 0 || m.Kurtosis != 0 {
		t.Errorf("degenerate skew/kurt should be 0: %+v", m)
	}
	if m.Min != 2 || m.Max != 2 {
		t.Errorf("min/max: %+v", m)
	}
}

func TestMomentsEmpty(t *testing.T) {
	m := ComputeMoments(nil)
	if m.N != 0 {
		t.Errorf("empty sample: %+v", m)
	}
}

func TestMomentsKnownSample(t *testing.T) {
	// Symmetric two-point sample: mean 0, var 1, skew 0, kurtosis 1.
	m := ComputeMoments([]float64{-1, 1})
	if m.Mean != 0 || m.Variance != 1 || m.Skewness != 0 || m.Kurtosis != 1 {
		t.Errorf("two-point sample: %+v", m)
	}
}

func TestMomentsGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 5
	}
	m := ComputeMoments(xs)
	if math.Abs(m.Mean-5) > 0.05 {
		t.Errorf("Gaussian mean = %v", m.Mean)
	}
	if math.Abs(m.StdDev()-3) > 0.05 {
		t.Errorf("Gaussian sd = %v", m.StdDev())
	}
	if math.Abs(m.Skewness) > 0.05 {
		t.Errorf("Gaussian skewness = %v", m.Skewness)
	}
	if math.Abs(m.Kurtosis-3) > 0.1 {
		t.Errorf("Gaussian kurtosis = %v (convention: normal = 3)", m.Kurtosis)
	}
}

func TestMomentsExponentialSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	m := ComputeMoments(xs)
	if math.Abs(m.Skewness-2) > 0.15 {
		t.Errorf("exponential skewness = %v, want ~2", m.Skewness)
	}
	if math.Abs(m.Kurtosis-9) > 1.0 {
		t.Errorf("exponential kurtosis = %v, want ~9", m.Kurtosis)
	}
}

func TestMomentsShiftInvariance(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		xs := []float64{a, b, c, d}
		for _, x := range xs {
			if math.Abs(x) > 1e6 || math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		m1 := ComputeMoments(xs)
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + 100
		}
		m2 := ComputeMoments(shifted)
		tol := 1e-6 * math.Max(1, m1.Variance)
		return math.Abs(m1.Variance-m2.Variance) < tol &&
			math.Abs(m2.Mean-m1.Mean-100) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.AddAll([]float64{0, 0.5, 1, 9.999, 10, -0.1, 5})
	if h.Counts[0] != 2 { // 0 and 0.5
		t.Errorf("bin 0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[5] != 1 || h.Counts[9] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Over != 1 || h.Under != 1 {
		t.Errorf("over=%d under=%d", h.Over, h.Under)
	}
	if h.Total != 7 || h.InRange() != 5 {
		t.Errorf("total=%d inrange=%d", h.Total, h.InRange())
	}
}

func TestHistogramEdgeRoundoff(t *testing.T) {
	h := NewHistogram(0, 0.3, 3)
	// 0.3 - tiny epsilon could round into bin 3; the guard must clamp it.
	h.Add(math.Nextafter(0.3, 0))
	if h.Counts[2] != 1 {
		t.Errorf("top-edge value not clamped into last bin: %v", h.Counts)
	}
}

func TestHistogramBinCentersAndWidth(t *testing.T) {
	h := NewHistogram(0.02, 2, 99)
	if math.Abs(h.BinWidth()-0.02) > 1e-12 {
		t.Errorf("BinWidth = %v", h.BinWidth())
	}
	if math.Abs(h.BinCenter(0)-0.03) > 1e-12 {
		t.Errorf("BinCenter(0) = %v", h.BinCenter(0))
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHistogramConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram(-1, 1, 17)
		n := 500
		for i := 0; i < n; i++ {
			h.Add(rng.NormFloat64())
		}
		sum := h.Under + h.Over
		for _, c := range h.Counts {
			sum += c
		}
		return sum == n && h.Total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRender(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.AddAll([]float64{0.5, 0.5, 1.5})
	out := h.Render(10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("Render lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "##########") {
		t.Errorf("max bin not full width: %q", lines[0])
	}
	if !strings.Contains(lines[1], "#####") {
		t.Errorf("half bin wrong: %q", lines[1])
	}
	empty := NewHistogram(0, 1, 1)
	if !strings.Contains(empty.Render(5), "| 0") {
		t.Error("empty histogram render failed")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Errorf("median = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := FractionBelow(xs, 3); got != 0.5 {
		t.Errorf("FractionBelow = %v", got)
	}
	if got := FractionBelow(nil, 3); got != 0 {
		t.Errorf("empty FractionBelow = %v", got)
	}
}

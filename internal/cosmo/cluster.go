package cosmo

import (
	"math"
	"math/rand"

	"repro/internal/geom"
)

// ClusterParams configures the clustered halo-mock generator: a seeded,
// fully deterministic stand-in for an evolved N-body snapshot. Particles
// are drawn from a set of Plummer-sphere halos (the classic analytic
// cluster profile, rho ~ (1 + r^2/a^2)^(-5/2)) at uniformly random centers,
// plus a uniform background fraction, all wrapped into the periodic box.
// The point of the generator is reproducible *imbalance*: a regular
// equal-volume decomposition of such a snapshot concentrates most of the
// tessellation compute in the few halo-heavy blocks, which is the regime
// the RCB decomposition exists to fix.
type ClusterParams struct {
	// Seed seeds the single deterministic RNG stream.
	Seed int64
	// Halos is the number of Plummer spheres (at least 1).
	Halos int
	// Concentration is the ratio of the box side to the Plummer scale
	// radius a: larger values make tighter, more imbalanced halos.
	Concentration float64
	// BackgroundFrac in [0,1] is the fraction of particles drawn uniformly
	// over the whole box instead of from a halo. A nonzero background keeps
	// Voronoi cells finite everywhere, which bounds the ghost size complete
	// tessellations need.
	BackgroundFrac float64
	// MaxRadiusFrac caps the halo-centric radius at this fraction of the
	// box side (the Plummer distribution has unbounded tails). Zero means
	// the default 0.25.
	MaxRadiusFrac float64
}

// DefaultClusterParams returns a moderately concentrated four-halo setup
// with a 20% uniform background — enough clustering that equal-volume
// blocks are badly imbalanced, enough background that complete
// tessellations remain cheap.
func DefaultClusterParams() ClusterParams {
	return ClusterParams{
		Seed:           1,
		Halos:          4,
		Concentration:  24,
		BackgroundFrac: 0.2,
		MaxRadiusFrac:  0.25,
	}
}

// ClusteredPositions generates n deterministic clustered positions in the
// periodic box [0, L)^3 according to p. The same (n, L, p) always produces
// the same positions.
func ClusteredPositions(n int, L float64, p ClusterParams) []geom.Vec3 {
	if p.Halos < 1 {
		p.Halos = 1
	}
	if p.Concentration <= 0 {
		p.Concentration = DefaultClusterParams().Concentration
	}
	if p.MaxRadiusFrac <= 0 {
		p.MaxRadiusFrac = 0.25
	}
	bg := p.BackgroundFrac
	if bg < 0 {
		bg = 0
	}
	if bg > 1 {
		bg = 1
	}

	rng := rand.New(rand.NewSource(p.Seed))
	centers := make([]geom.Vec3, p.Halos)
	for i := range centers {
		centers[i] = geom.V(rng.Float64()*L, rng.Float64()*L, rng.Float64()*L)
	}

	a := L / p.Concentration
	rmax := p.MaxRadiusFrac * L
	// Plummer radii come from inverting the enclosed-mass fraction
	// M(<r)/M = (1 + a^2/r^2)^(-3/2): r(u) = a / sqrt(u^(-2/3) - 1) is
	// increasing in u, so capping r at rmax means sampling u uniformly on
	// (0, umax] instead of rejecting the tail — deterministic in the number
	// of RNG draws.
	umax := math.Pow(1+(a/rmax)*(a/rmax), -1.5)

	nBackground := int(math.Round(float64(n) * bg))
	out := make([]geom.Vec3, 0, n)
	for i := 0; i < n; i++ {
		if i < nBackground {
			out = append(out, geom.V(rng.Float64()*L, rng.Float64()*L, rng.Float64()*L))
			continue
		}
		c := centers[(i-nBackground)%p.Halos]
		u := rng.Float64() * umax
		var r float64
		if u > 0 {
			r = a / math.Sqrt(math.Pow(u, -2.0/3.0)-1)
		}
		// Uniform direction on the sphere.
		z := 2*rng.Float64() - 1
		phi := 2 * math.Pi * rng.Float64()
		s := math.Sqrt(1 - z*z)
		dir := geom.V(s*math.Cos(phi), s*math.Sin(phi), z)
		out = append(out, Wrap(c.Add(dir.Scale(r)), L))
	}
	return out
}

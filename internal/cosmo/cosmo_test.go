package cosmo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestBBKSLimits(t *testing.T) {
	p := DefaultParams()
	if got := p.BBKS(0); got != 1 {
		t.Errorf("BBKS(0) = %v, want 1", got)
	}
	if got := p.BBKS(1e-6); math.Abs(got-1) > 1e-3 {
		t.Errorf("BBKS(k->0) = %v, want ~1", got)
	}
	// Transfer function decreases monotonically with k.
	prev := p.BBKS(1e-4)
	for k := 1e-3; k < 100; k *= 2 {
		cur := p.BBKS(k)
		if cur > prev {
			t.Errorf("BBKS not decreasing at k=%g: %v > %v", k, cur, prev)
		}
		prev = cur
	}
	if p.BBKS(100) > 1e-3 {
		t.Errorf("BBKS at high k too large: %v", p.BBKS(100))
	}
}

func TestPowerSpectrumShape(t *testing.T) {
	p := DefaultParams()
	if p.Power(0) != 0 || p.Power(-1) != 0 {
		t.Error("Power at k<=0 should be 0")
	}
	// P(k) rises at low k (primordial slope) and falls at high k.
	if p.Power(0.01) >= p.Power(0.05) && p.Power(0.001) > p.Power(0.01) {
		t.Error("power spectrum has no rising branch")
	}
	if p.Power(10) >= p.Power(0.1) {
		t.Error("power spectrum does not fall at high k")
	}
}

func TestGrowthFactor(t *testing.T) {
	if GrowthFactor(1) != 1 {
		t.Error("D(1) != 1")
	}
	if GrowthFactor(0.5) != 0.5 {
		t.Error("matter-era growth should be proportional to a")
	}
}

func TestGenerateDisplacementsBasic(t *testing.T) {
	p := DefaultParams()
	ng := 8
	df, err := GenerateDisplacements(p, ng, float64(ng))
	if err != nil {
		t.Fatal(err)
	}
	if len(df.Psi) != ng*ng*ng {
		t.Fatalf("len(Psi) = %d", len(df.Psi))
	}
	// RMS displacement should equal Sigma8Like * spacing (spacing = 1).
	var sum2 float64
	for _, v := range df.Psi {
		if !v.IsFinite() {
			t.Fatal("non-finite displacement")
		}
		sum2 += v.Norm2()
	}
	rms := math.Sqrt(sum2 / float64(len(df.Psi)))
	if math.Abs(rms-p.Sigma8Like) > 1e-9 {
		t.Errorf("rms displacement = %v, want %v", rms, p.Sigma8Like)
	}
	// Mean displacement is ~zero (k=0 mode removed).
	var mean geom.Vec3
	for _, v := range df.Psi {
		mean = mean.Add(v)
	}
	mean = mean.Scale(1 / float64(len(df.Psi)))
	if mean.MaxAbs() > 1e-10 {
		t.Errorf("mean displacement = %v, want ~0", mean)
	}
}

func TestGenerateDisplacementsDeterministic(t *testing.T) {
	p := DefaultParams()
	a, err := GenerateDisplacements(p, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDisplacements(p, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Psi {
		if a.Psi[i] != b.Psi[i] {
			t.Fatal("same seed produced different fields")
		}
	}
	p.Seed = 99
	c, err := GenerateDisplacements(p, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Psi {
		if a.Psi[i] != c.Psi[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fields")
	}
}

func TestGenerateDisplacementsErrors(t *testing.T) {
	p := DefaultParams()
	if _, err := GenerateDisplacements(p, 7, 7); err == nil {
		t.Error("non-pow2 ng accepted")
	}
	if _, err := GenerateDisplacements(p, 8, -1); err == nil {
		t.Error("negative box accepted")
	}
}

func TestLatticePositions(t *testing.T) {
	pts := LatticePositions(4, 8)
	if len(pts) != 64 {
		t.Fatalf("len = %d", len(pts))
	}
	box := geom.NewBox(geom.V(0, 0, 0), geom.V(8, 8, 8))
	for _, p := range pts {
		if !box.ContainsOpen(p) {
			t.Fatalf("lattice point %v outside open box", p)
		}
	}
	// First point is at half spacing.
	if pts[0] != geom.V(1, 1, 1) {
		t.Errorf("pts[0] = %v, want (1,1,1)", pts[0])
	}
	// All distinct.
	seen := map[geom.Vec3]bool{}
	for _, p := range pts {
		if seen[p] {
			t.Fatalf("duplicate lattice point %v", p)
		}
		seen[p] = true
	}
}

func TestZeldovichIC(t *testing.T) {
	p := DefaultParams()
	pos, vel, err := ZeldovichIC(p, 8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) != 512 || len(vel) != 512 {
		t.Fatalf("lengths %d, %d", len(pos), len(vel))
	}
	box := geom.NewBox(geom.V(0, 0, 0), geom.V(8, 8, 8))
	lattice := LatticePositions(8, 8)
	var maxDisp float64
	for i := range pos {
		if !box.Contains(pos[i]) || pos[i].X >= 8 || pos[i].Y >= 8 || pos[i].Z >= 8 {
			t.Fatalf("position %v not wrapped into box", pos[i])
		}
		d := MinImage(lattice[i], pos[i], 8).Norm()
		maxDisp = math.Max(maxDisp, d)
	}
	if maxDisp == 0 {
		t.Error("no particle was displaced")
	}
	if maxDisp > 4 {
		t.Errorf("implausibly large displacement %v", maxDisp)
	}
}

func TestWrap(t *testing.T) {
	cases := []struct {
		in   geom.Vec3
		want geom.Vec3
	}{
		{geom.V(0, 0, 0), geom.V(0, 0, 0)},
		{geom.V(10, 3, 5), geom.V(0, 3, 5)},
		{geom.V(-1, 11, 5), geom.V(9, 1, 5)},
		{geom.V(25, -25, 5), geom.V(5, 5, 5)},
	}
	for _, c := range cases {
		if got := Wrap(c.in, 10); got != c.want {
			t.Errorf("Wrap(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// The nasty case: a tiny negative value must wrap to [0, L), not L.
	w := Wrap(geom.V(-1e-17, 0, 0), 10)
	if w.X >= 10 || w.X < 0 {
		t.Errorf("Wrap(-1e-17) = %v", w.X)
	}
}

func TestWrapProperty(t *testing.T) {
	f := func(x, y, z float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 ||
			math.IsNaN(y) || math.IsInf(y, 0) || math.Abs(y) > 1e12 ||
			math.IsNaN(z) || math.IsInf(z, 0) || math.Abs(z) > 1e12 {
			return true
		}
		w := Wrap(geom.V(x, y, z), 7)
		return w.X >= 0 && w.X < 7 && w.Y >= 0 && w.Y < 7 && w.Z >= 0 && w.Z < 7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(18))}); err != nil {
		t.Error(err)
	}
}

func TestMinImage(t *testing.T) {
	L := 10.0
	a := geom.V(9.5, 5, 5)
	b := geom.V(0.5, 5, 5)
	d := MinImage(a, b, L)
	if !d.Sub(geom.V(1, 0, 0)).IsFinite() || math.Abs(d.X-1) > 1e-12 || d.Y != 0 || d.Z != 0 {
		t.Errorf("MinImage across boundary = %v, want (1,0,0)", d)
	}
	// Symmetry: MinImage(a,b) == -MinImage(b,a).
	e := MinImage(b, a, L)
	if d.Add(e).MaxAbs() > 1e-12 {
		t.Errorf("MinImage not antisymmetric: %v vs %v", d, e)
	}
	// Magnitude never exceeds the half-diagonal.
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 500; i++ {
		p := geom.V(rng.Float64()*L, rng.Float64()*L, rng.Float64()*L)
		q := geom.V(rng.Float64()*L, rng.Float64()*L, rng.Float64()*L)
		m := MinImage(p, q, L)
		if math.Abs(m.X) > L/2 || math.Abs(m.Y) > L/2 || math.Abs(m.Z) > L/2 {
			t.Fatalf("MinImage component exceeds L/2: %v", m)
		}
		// Consistency: p + m == q (mod L).
		r := Wrap(p.Add(m), L)
		diff := MinImage(r, q, L).Norm()
		if diff > 1e-9 {
			t.Fatalf("p+m != q mod L (diff %v)", diff)
		}
	}
}

func TestDensityContrast(t *testing.T) {
	d := DensityContrast([]float64{1, 2, 3})
	want := []float64{-0.5, 0, 0.5}
	for i := range d {
		if math.Abs(d[i]-want[i]) > 1e-12 {
			t.Errorf("delta[%d] = %v, want %v", i, d[i], want[i])
		}
	}
	if DensityContrast(nil) != nil {
		t.Error("empty input should yield nil")
	}
	if DensityContrast([]float64{0, 0}) != nil {
		t.Error("zero-mean input should yield nil")
	}
	// Mean of delta is zero by construction.
	rng := rand.New(rand.NewSource(20))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Float64() + 0.5
	}
	dl := DensityContrast(xs)
	var sum float64
	for _, v := range dl {
		sum += v
	}
	if math.Abs(sum/float64(len(dl))) > 1e-12 {
		t.Errorf("mean delta = %v, want 0", sum/float64(len(dl)))
	}
}

func TestDisplacementFieldIsSmooth(t *testing.T) {
	// Zel'dovich displacements from a red spectrum should be spatially
	// correlated: neighboring lattice sites move coherently. Check that the
	// mean difference between adjacent sites is well below 2x RMS.
	p := DefaultParams()
	ng := 16
	df, err := GenerateDisplacements(p, ng, float64(ng))
	if err != nil {
		t.Fatal(err)
	}
	var sum2, diff2 float64
	n := 0
	for z := 0; z < ng; z++ {
		for y := 0; y < ng; y++ {
			for x := 0; x < ng; x++ {
				i := (z*ng+y)*ng + x
				j := (z*ng+y)*ng + (x+1)%ng
				sum2 += df.Psi[i].Norm2()
				diff2 += df.Psi[i].Sub(df.Psi[j]).Norm2()
				n++
			}
		}
	}
	rms := math.Sqrt(sum2 / float64(n))
	diffRMS := math.Sqrt(diff2 / float64(n))
	if diffRMS >= rms*math.Sqrt2 {
		t.Errorf("field looks uncorrelated: diffRMS %v vs rms %v", diffRMS, rms)
	}
}

package cosmo

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestPowerSpectrumValidation(t *testing.T) {
	pts := []geom.Vec3{{X: 1, Y: 1, Z: 1}}
	if _, err := PowerSpectrum(pts, 7, 8, 4); err == nil {
		t.Error("non-pow2 grid accepted")
	}
	if _, err := PowerSpectrum(pts, 8, 0, 4); err == nil {
		t.Error("zero box accepted")
	}
	if _, err := PowerSpectrum(nil, 8, 8, 4); err == nil {
		t.Error("empty particles accepted")
	}
}

func TestPowerSpectrumShotNoise(t *testing.T) {
	// Poisson particles: flat spectrum at the shot-noise level V/N.
	rng := rand.New(rand.NewSource(108))
	const L = 16.0
	n := 20000
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.V(rng.Float64()*L, rng.Float64()*L, rng.Float64()*L)
	}
	pk, err := PowerSpectrum(pts, 16, L, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := ShotNoise(n, L)
	for _, b := range pk {
		if b.Modes < 10 {
			continue
		}
		if b.P < want/3 || b.P > want*3 {
			t.Errorf("k=%.2f: P=%.3f, shot noise %.3f (off by >3x)", b.K, b.P, want)
		}
	}
}

func TestPowerSpectrumSingleMode(t *testing.T) {
	// Particles displaced sinusoidally at wavevector k1 produce, to linear
	// order, a density mode at k1: the measured power must peak in that
	// bin.
	const ng = 16
	const L = 16.0
	pts := LatticePositions(ng, L)
	k1 := 2 * 2 * math.Pi / L // second harmonic along x
	amp := 0.05
	for i := range pts {
		pts[i] = Wrap(pts[i].Add(geom.V(amp*math.Sin(k1*pts[i].X), 0, 0)), L)
	}
	pk, err := PowerSpectrum(pts, ng, L, 8)
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i, b := range pk {
		if b.P > pk[best].P {
			best = i
		}
	}
	if math.Abs(pk[best].K-k1) > 0.25*k1 {
		t.Errorf("power peaks at k=%.3f, want ~%.3f", pk[best].K, k1)
	}
	// The peak dominates everything else by a wide margin.
	for i, b := range pk {
		if i != best && b.P > pk[best].P/5 {
			t.Errorf("bin k=%.3f has comparable power %.3g to peak %.3g", b.K, b.P, pk[best].P)
		}
	}
}

func TestPowerSpectrumGrowsUnderGravity(t *testing.T) {
	// Zel'dovich ICs have the shaped spectrum; the same particles with
	// doubled displacements have ~4x the power (P ~ amplitude^2).
	p := DefaultParams()
	const ng = 16
	const L = 16.0
	df, err := GenerateDisplacements(p, ng, L)
	if err != nil {
		t.Fatal(err)
	}
	lattice := LatticePositions(ng, L)
	mk := func(scale float64) []geom.Vec3 {
		out := make([]geom.Vec3, len(lattice))
		for i := range lattice {
			out[i] = Wrap(lattice[i].Add(df.Psi[i].Scale(scale)), L)
		}
		return out
	}
	pk1, err := PowerSpectrum(mk(1), ng, L, 5)
	if err != nil {
		t.Fatal(err)
	}
	pk2, err := PowerSpectrum(mk(2), ng, L, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the lowest-k bin (most linear).
	ratio := pk2[0].P / pk1[0].P
	if ratio < 2.5 || ratio > 6 {
		t.Errorf("doubling displacements scaled low-k power by %.2f, want ~4", ratio)
	}
}

func TestPowerSpectrumBinsOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	pts := make([]geom.Vec3, 1000)
	for i := range pts {
		pts[i] = geom.V(rng.Float64()*8, rng.Float64()*8, rng.Float64()*8)
	}
	pk, err := PowerSpectrum(pts, 8, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pk); i++ {
		if pk[i].K <= pk[i-1].K {
			t.Errorf("bins not ordered: %v", pk)
		}
	}
	totalModes := 0
	for _, b := range pk {
		totalModes += b.Modes
	}
	if totalModes == 0 {
		t.Error("no modes measured")
	}
}

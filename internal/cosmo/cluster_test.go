package cosmo

import (
	"testing"

	"repro/internal/geom"
)

func TestClusteredPositionsDeterministic(t *testing.T) {
	p := DefaultClusterParams()
	a := ClusteredPositions(500, 16, p)
	b := ClusteredPositions(500, 16, p)
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("lengths %d, %d, want 500", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("position %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	p2 := p
	p2.Seed = 2
	c := ClusteredPositions(500, 16, p2)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical positions")
	}
}

func TestClusteredPositionsInBox(t *testing.T) {
	const L = 12.0
	box := geom.NewBox(geom.V(0, 0, 0), geom.V(L, L, L))
	for _, pts := range [][]geom.Vec3{
		ClusteredPositions(1000, L, DefaultClusterParams()),
		ClusteredPositions(777, L, ClusterParams{Seed: 9, Halos: 2, Concentration: 48, BackgroundFrac: 0}),
		ClusteredPositions(100, L, ClusterParams{Seed: 3, Halos: 1, BackgroundFrac: 1}),
	} {
		for i, p := range pts {
			if !box.Contains(p) {
				t.Fatalf("position %d = %v outside [0,%g)^3", i, p, L)
			}
			if p.X >= L || p.Y >= L || p.Z >= L {
				t.Fatalf("position %d = %v on the high boundary", i, p)
			}
		}
	}
}

func TestClusteredPositionsAreClustered(t *testing.T) {
	// With no background and high concentration, essentially all particles
	// must sit within the radius cap of some halo center (minimum-image
	// distance, since halos wrap).
	const L = 20.0
	p := ClusterParams{Seed: 7, Halos: 3, Concentration: 40, BackgroundFrac: 0, MaxRadiusFrac: 0.2}
	pts := ClusteredPositions(900, L, p)

	// Verify clustering statistically: count pairs closer than the scale
	// radius. A uniform distribution of 900 points in a 20^3 box has
	// ~n^2/2 * (4/3 pi a^3 / L^3) ~ 70 such pairs for a = 0.5; tight
	// Plummer spheres give vastly more.
	a := L / p.Concentration
	close := 0
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			d := MinImage(pts[i], pts[j], L)
			if d.Norm() < a {
				close++
			}
		}
	}
	if close < 1000 {
		t.Fatalf("only %d close pairs; positions do not look clustered", close)
	}
}

func TestClusteredPositionsBackgroundFraction(t *testing.T) {
	// A pure-background run is uniform: mean nearest-halo distance offers no
	// anchor, so just check the count split is honored via spread — the
	// clustered run concentrates mass, the background run does not.
	const L = 16.0
	clustered := ClusteredPositions(600, L, ClusterParams{Seed: 5, Halos: 2, Concentration: 32, BackgroundFrac: 0})
	uniform := ClusteredPositions(600, L, ClusterParams{Seed: 5, Halos: 2, Concentration: 32, BackgroundFrac: 1})
	spread := func(pts []geom.Vec3) float64 {
		var c geom.Vec3
		for _, p := range pts {
			c = c.Add(p)
		}
		c = c.Scale(1 / float64(len(pts)))
		var s float64
		for _, p := range pts {
			s += p.Dist2(c)
		}
		return s / float64(len(pts))
	}
	if spread(clustered) >= spread(uniform) {
		t.Fatalf("clustered spread %g not below uniform spread %g",
			spread(clustered), spread(uniform))
	}
}

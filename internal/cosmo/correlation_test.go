package cosmo

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestCorrelationValidation(t *testing.T) {
	pts := []geom.Vec3{{X: 1, Y: 1, Z: 1}, {X: 2, Y: 2, Z: 2}}
	if _, err := CorrelationFunction(pts[:1], 8, 2, 4); err == nil {
		t.Error("single particle accepted")
	}
	if _, err := CorrelationFunction(pts, 0, 2, 4); err == nil {
		t.Error("zero box accepted")
	}
	if _, err := CorrelationFunction(pts, 8, 5, 4); err == nil {
		t.Error("rmax > box/2 accepted")
	}
	if _, err := CorrelationFunction(pts, 8, 2, 0); err == nil {
		t.Error("zero bins accepted")
	}
}

func TestCorrelationPoissonIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(128))
	const L = 16.0
	pts := make([]geom.Vec3, 4000)
	for i := range pts {
		pts[i] = geom.V(rng.Float64()*L, rng.Float64()*L, rng.Float64()*L)
	}
	xi, err := CorrelationFunction(pts, L, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range xi[1:] { // skip the tiny first bin (few pairs)
		if math.Abs(b.Xi) > 0.15 {
			t.Errorf("Poisson xi(%.2f) = %.3f, want ~0", b.R, b.Xi)
		}
	}
}

func TestCorrelationClusteredIsPositive(t *testing.T) {
	// Pairs injected at small separations produce xi > 0 at small r and
	// ~0 at large r.
	rng := rand.New(rand.NewSource(129))
	const L = 16.0
	var pts []geom.Vec3
	for i := 0; i < 1500; i++ {
		p := geom.V(rng.Float64()*L, rng.Float64()*L, rng.Float64()*L)
		pts = append(pts, p)
		// A companion within 0.3 for half the points.
		if i%2 == 0 {
			pts = append(pts, Wrap(p.Add(geom.V(
				rng.NormFloat64()*0.15, rng.NormFloat64()*0.15, rng.NormFloat64()*0.15)), L))
		}
	}
	xi, err := CorrelationFunction(pts, L, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if xi[0].Xi < 1 {
		t.Errorf("small-scale xi = %.3f, want strongly positive", xi[0].Xi)
	}
	last := xi[len(xi)-1]
	if math.Abs(last.Xi) > 0.2 {
		t.Errorf("large-scale xi(%.2f) = %.3f, want ~0", last.R, last.Xi)
	}
}

func TestCorrelationPairConservation(t *testing.T) {
	// All pairs within rmax are counted exactly once: compare the bucketed
	// count against a brute-force count.
	rng := rand.New(rand.NewSource(130))
	const L = 10.0
	pts := make([]geom.Vec3, 300)
	for i := range pts {
		pts[i] = geom.V(rng.Float64()*L, rng.Float64()*L, rng.Float64()*L)
	}
	const rmax = 3.0
	xi, err := CorrelationFunction(pts, L, rmax, 6)
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	for _, b := range xi {
		got += b.Pairs
	}
	var want int64
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if MinImage(pts[i], pts[j], L).Norm2() <= rmax*rmax {
				want++
			}
		}
	}
	// Boundary-of-bin effects: the top edge uses <= in both counts.
	if got != want {
		t.Errorf("bucketed pairs %d != brute force %d", got, want)
	}
}

func TestCorrelationGrowsUnderClustering(t *testing.T) {
	// Zel'dovich-displaced particles are positively correlated on large
	// scales; doubling the displacements strengthens xi.
	p := DefaultParams()
	const ng = 16
	const L = 16.0
	df, err := GenerateDisplacements(p, ng, L)
	if err != nil {
		t.Fatal(err)
	}
	lattice := LatticePositions(ng, L)
	mk := func(scale float64) []geom.Vec3 {
		out := make([]geom.Vec3, len(lattice))
		for i := range lattice {
			out[i] = Wrap(lattice[i].Add(df.Psi[i].Scale(scale)), L)
		}
		return out
	}
	xi1, err := CorrelationFunction(mk(2), L, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	xi2, err := CorrelationFunction(mk(4), L, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the second bin (first is dominated by lattice discreteness).
	if xi2[1].Xi <= xi1[1].Xi {
		t.Errorf("stronger displacements did not raise xi: %.4f vs %.4f", xi2[1].Xi, xi1[1].Xi)
	}
}

// Package cosmo provides the cosmological ingredients needed to stand in
// for HACC's initializer: a CDM-like matter power spectrum (power law times
// a BBKS transfer function), Gaussian random field realizations on a grid,
// and Zel'dovich-approximation particle displacements used as initial
// conditions for the N-body solver.
//
// Conventions follow the paper's setup: particles are initialized on a
// regular lattice with ng grid points per dimension, a box of physical size
// equal to ng (so the initial interparticle spacing is 1 Mpc/h), and then
// displaced by the Zel'dovich field.
package cosmo

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/fft"
	"repro/internal/geom"
)

// Params holds the cosmology and realization parameters for initial
// conditions.
type Params struct {
	// OmegaM is the matter density parameter (used by the BBKS shape).
	OmegaM float64
	// H is the dimensionless Hubble parameter h.
	H float64
	// SpectralIndex is the primordial power-law index n_s.
	SpectralIndex float64
	// Sigma8Like sets the overall normalization of the displacement field:
	// it is the target RMS displacement in units of the interparticle
	// spacing. Values around 0.1-0.3 give a gentle, perturbative start;
	// larger values start the run closer to shell crossing.
	Sigma8Like float64
	// Seed seeds the Gaussian random field realization.
	Seed int64
}

// DefaultParams returns a WMAP7-flavored parameter set scaled for the
// laptop-size runs used by the reproduction harness.
func DefaultParams() Params {
	return Params{
		OmegaM:        0.265,
		H:             0.71,
		SpectralIndex: 0.963,
		Sigma8Like:    0.1,
		Seed:          1,
	}
}

// BBKS returns the BBKS (Bardeen-Bond-Kaiser-Szalay 1986) CDM transfer
// function T(k) for wavenumber k in h/Mpc, using shape parameter
// Gamma = OmegaM * h.
func (p Params) BBKS(k float64) float64 {
	if k <= 0 {
		return 1
	}
	gamma := p.OmegaM * p.H
	if gamma <= 0 {
		gamma = 0.2
	}
	q := k / gamma
	return math.Log(1+2.34*q) / (2.34 * q) *
		math.Pow(1+3.89*q+math.Pow(16.1*q, 2)+math.Pow(5.46*q, 3)+math.Pow(6.71*q, 4), -0.25)
}

// Power returns the (unnormalized) matter power spectrum
// P(k) = k^n T(k)^2 used to shape the Gaussian random field.
func (p Params) Power(k float64) float64 {
	if k <= 0 {
		return 0
	}
	t := p.BBKS(k)
	return math.Pow(k, p.SpectralIndex) * t * t
}

// GrowthFactor returns the linear growth factor D(a) for an
// Einstein-de-Sitter-like matter era, normalized to D(1) = 1. The paper's
// analysis only needs qualitative growth (cell statistics steepen over
// time), for which D(a) = a is the standard matter-dominated behaviour.
func GrowthFactor(a float64) float64 { return a }

// DisplacementField is a Zel'dovich displacement realization on an ng^3
// lattice: Psi[i] is the comoving displacement of lattice site i, indexed
// like fft.Grid3 ((z*ng+y)*ng+x).
type DisplacementField struct {
	Ng  int
	Box float64
	Psi []geom.Vec3
}

// GenerateDisplacements builds a Zel'dovich displacement field on an ng^3
// lattice in a periodic box of side boxSize. The field is derived from a
// Gaussian random density contrast delta with spectrum Power(k):
// Psi(k) = i k/k^2 delta(k), evaluated with three inverse FFTs. The result
// is rescaled so the RMS displacement equals Sigma8Like times the
// interparticle spacing.
func GenerateDisplacements(p Params, ng int, boxSize float64) (*DisplacementField, error) {
	if !fft.IsPow2(ng) {
		return nil, fmt.Errorf("cosmo: ng = %d is not a power of two", ng)
	}
	if boxSize <= 0 {
		return nil, fmt.Errorf("cosmo: non-positive box size %g", boxSize)
	}
	rng := rand.New(rand.NewSource(p.Seed))

	// Real-space white noise, then shape it in Fourier space. Building the
	// field from real-space noise guarantees the Hermitian symmetry that
	// makes the displacements real.
	delta := fft.NewGrid3(ng)
	for i := range delta.Data {
		delta.Data[i] = complex(rng.NormFloat64(), 0)
	}
	fft.Forward3(delta)

	k0 := 2 * math.Pi / boxSize
	for z := 0; z < ng; z++ {
		kz := float64(fft.FreqIndex(z, ng)) * k0
		for y := 0; y < ng; y++ {
			ky := float64(fft.FreqIndex(y, ng)) * k0
			for x := 0; x < ng; x++ {
				kx := float64(fft.FreqIndex(x, ng)) * k0
				k := math.Sqrt(kx*kx + ky*ky + kz*kz)
				idx := delta.Index(x, y, z)
				if k == 0 {
					delta.Data[idx] = 0
					continue
				}
				delta.Data[idx] *= complex(math.Sqrt(p.Power(k)), 0)
			}
		}
	}

	// Psi_j(k) = i k_j / k^2 * delta(k).
	psi := make([]geom.Vec3, ng*ng*ng)
	comp := fft.NewGrid3(ng)
	for j := 0; j < 3; j++ {
		for z := 0; z < ng; z++ {
			kz := float64(fft.FreqIndex(z, ng)) * k0
			for y := 0; y < ng; y++ {
				ky := float64(fft.FreqIndex(y, ng)) * k0
				for x := 0; x < ng; x++ {
					kx := float64(fft.FreqIndex(x, ng)) * k0
					k2 := kx*kx + ky*ky + kz*kz
					idx := comp.Index(x, y, z)
					if k2 == 0 {
						comp.Data[idx] = 0
						continue
					}
					kj := [3]float64{kx, ky, kz}[j]
					comp.Data[idx] = delta.Data[idx] * complex(0, kj/k2)
				}
			}
		}
		fft.Inverse3(comp)
		for i := range psi {
			switch j {
			case 0:
				psi[i].X = real(comp.Data[i])
			case 1:
				psi[i].Y = real(comp.Data[i])
			default:
				psi[i].Z = real(comp.Data[i])
			}
		}
	}

	// Normalize RMS displacement to Sigma8Like * spacing.
	var sum2 float64
	for _, v := range psi {
		sum2 += v.Norm2()
	}
	rms := math.Sqrt(sum2 / float64(len(psi)))
	spacing := boxSize / float64(ng)
	if rms > 0 {
		scale := p.Sigma8Like * spacing / rms
		for i := range psi {
			psi[i] = psi[i].Scale(scale)
		}
	}
	return &DisplacementField{Ng: ng, Box: boxSize, Psi: psi}, nil
}

// LatticePositions returns the ng^3 unperturbed lattice positions for a
// periodic box of side boxSize, ordered like fft.Grid3 indexing.
func LatticePositions(ng int, boxSize float64) []geom.Vec3 {
	spacing := boxSize / float64(ng)
	pts := make([]geom.Vec3, 0, ng*ng*ng)
	for z := 0; z < ng; z++ {
		for y := 0; y < ng; y++ {
			for x := 0; x < ng; x++ {
				pts = append(pts, geom.Vec3{
					X: (float64(x) + 0.5) * spacing,
					Y: (float64(y) + 0.5) * spacing,
					Z: (float64(z) + 0.5) * spacing,
				})
			}
		}
	}
	return pts
}

// ZeldovichIC returns particle positions and velocities from the Zel'dovich
// approximation: x = q + D(a) Psi(q), v = dD/da * adot * Psi ~ Psi (we use
// the growing-mode proportionality and let the N-body integrator's time
// units absorb constants). Positions are wrapped into the periodic box.
func ZeldovichIC(p Params, ng int, boxSize float64, a float64) (pos, vel []geom.Vec3, err error) {
	df, err := GenerateDisplacements(p, ng, boxSize)
	if err != nil {
		return nil, nil, err
	}
	lattice := LatticePositions(ng, boxSize)
	d := GrowthFactor(a)
	pos = make([]geom.Vec3, len(lattice))
	vel = make([]geom.Vec3, len(lattice))
	for i := range lattice {
		pos[i] = Wrap(lattice[i].Add(df.Psi[i].Scale(d)), boxSize)
		vel[i] = df.Psi[i].Scale(d)
	}
	return pos, vel, nil
}

// Wrap maps a point into the periodic box [0, L)^3.
func Wrap(v geom.Vec3, L float64) geom.Vec3 {
	return geom.Vec3{X: wrap1(v.X, L), Y: wrap1(v.Y, L), Z: wrap1(v.Z, L)}
}

func wrap1(x, L float64) float64 {
	x = math.Mod(x, L)
	if x < 0 {
		x += L
	}
	// math.Mod can return exactly L for inputs like -1e-17.
	if x >= L {
		x = 0
	}
	return x
}

// MinImage returns the minimum-image displacement from a to b in a periodic
// box of side L: the shortest vector d such that a + d == b modulo L.
func MinImage(a, b geom.Vec3, L float64) geom.Vec3 {
	d := b.Sub(a)
	return geom.Vec3{X: minImage1(d.X, L), Y: minImage1(d.Y, L), Z: minImage1(d.Z, L)}
}

func minImage1(d, L float64) float64 {
	d = math.Mod(d, L)
	switch {
	case d > L/2:
		d -= L
	case d < -L/2:
		d += L
	}
	return d
}

// DensityContrast converts cell densities to density contrasts
// delta = (d - mean)/mean, the quantity histogrammed in the paper's
// Figure 11 (Eq. 2). A zero or negative mean yields a nil slice.
func DensityContrast(density []float64) []float64 {
	if len(density) == 0 {
		return nil
	}
	var sum float64
	for _, d := range density {
		sum += d
	}
	mean := sum / float64(len(density))
	if mean <= 0 {
		return nil
	}
	out := make([]float64, len(density))
	for i, d := range density {
		out[i] = (d - mean) / mean
	}
	return out
}

package cosmo

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// XiBin is one radial bin of the two-point correlation function.
type XiBin struct {
	// R is the bin center separation.
	R float64
	// Xi is the estimated correlation: DD(r)/RR(r) - 1 with the analytic
	// random pair count for a periodic box.
	Xi float64
	// Pairs is the number of data pairs counted in the bin.
	Pairs int64
}

// CorrelationFunction measures the two-point correlation function xi(r) of
// a periodic particle distribution by direct pair counting against the
// analytic uniform expectation — the second of the paper's "traditional
// two-point statistics such as power spectrum and correlation" (Sec. II-A).
// Separations use the minimum image convention; rmax must not exceed half
// the box. Bins are linear in r.
func CorrelationFunction(pos []geom.Vec3, boxSize, rmax float64, bins int) ([]XiBin, error) {
	if len(pos) < 2 {
		return nil, fmt.Errorf("cosmo: need at least 2 particles")
	}
	if boxSize <= 0 || bins <= 0 {
		return nil, fmt.Errorf("cosmo: invalid box %g or bins %d", boxSize, bins)
	}
	if rmax <= 0 || rmax > boxSize/2 {
		return nil, fmt.Errorf("cosmo: rmax %g must be in (0, box/2]", rmax)
	}

	// Grid buckets sized >= rmax: all pairs within rmax lie in adjacent
	// (periodic) cells.
	n := int(boxSize / rmax)
	if n < 1 {
		n = 1
	}
	if n > 64 {
		n = 64
	}
	cell := boxSize / float64(n)
	buckets := make([][]int32, n*n*n)
	bucketOf := func(p geom.Vec3) int {
		f := func(x float64) int {
			i := int(x / cell)
			if i >= n {
				i = n - 1
			}
			if i < 0 {
				i = 0
			}
			return i
		}
		return (f(p.Z)*n+f(p.Y))*n + f(p.X)
	}
	for i, p := range pos {
		b := bucketOf(p)
		buckets[b] = append(buckets[b], int32(i))
	}

	counts := make([]int64, bins)
	r2max := rmax * rmax
	countPair := func(a, b int32) {
		d2 := MinImage(pos[a], pos[b], boxSize).Norm2()
		if d2 > r2max || d2 == 0 {
			return
		}
		bi := int(math.Sqrt(d2) / rmax * float64(bins))
		if bi >= bins {
			bi = bins - 1
		}
		counts[bi]++
	}

	// Same-cell pairs plus half the neighbor offsets (to count each pair
	// once). With n <= 2 the offsets alias, so fall back to the direct
	// O(N^2) loop, which is fine at the sizes where n is that small.
	if n <= 2 {
		for i := 0; i < len(pos); i++ {
			for j := i + 1; j < len(pos); j++ {
				countPair(int32(i), int32(j))
			}
		}
	} else {
		half := [13][3]int{
			{1, 0, 0}, {0, 1, 0}, {0, 0, 1},
			{1, 1, 0}, {1, -1, 0}, {1, 0, 1}, {1, 0, -1},
			{0, 1, 1}, {0, 1, -1},
			{1, 1, 1}, {1, 1, -1}, {1, -1, 1}, {1, -1, -1},
		}
		for bz := 0; bz < n; bz++ {
			for by := 0; by < n; by++ {
				for bx := 0; bx < n; bx++ {
					home := buckets[(bz*n+by)*n+bx]
					for i := 0; i < len(home); i++ {
						for j := i + 1; j < len(home); j++ {
							countPair(home[i], home[j])
						}
					}
					for _, d := range half {
						nx := ((bx+d[0])%n + n) % n
						ny := ((by+d[1])%n + n) % n
						nz := ((bz+d[2])%n + n) % n
						other := buckets[(nz*n+ny)*n+nx]
						for _, a := range home {
							for _, c := range other {
								countPair(a, c)
							}
						}
					}
				}
			}
		}
	}

	// Analytic RR for a uniform periodic box: expected pairs in [r1, r2)
	// is Npairs_total * shellVolume / boxVolume.
	np := float64(len(pos))
	totPairs := np * (np - 1) / 2
	vol := boxSize * boxSize * boxSize
	out := make([]XiBin, bins)
	dr := rmax / float64(bins)
	for i := 0; i < bins; i++ {
		r1 := float64(i) * dr
		r2 := r1 + dr
		shell := 4 * math.Pi / 3 * (r2*r2*r2 - r1*r1*r1)
		rr := totPairs * shell / vol
		out[i] = XiBin{R: r1 + dr/2, Pairs: counts[i]}
		if rr > 0 {
			out[i].Xi = float64(counts[i])/rr - 1
		}
	}
	return out, nil
}

package cosmo

import (
	"fmt"
	"math"

	"repro/internal/fft"
	"repro/internal/geom"
)

// PkBin is one shell of a measured power spectrum.
type PkBin struct {
	// K is the mean wavenumber of the modes in the shell.
	K float64
	// P is the shell-averaged power <|delta_k|^2> * V / N_modes... in the
	// standard volume normalization P(k) = V <|delta_k|^2> with delta_k the
	// discrete Fourier transform of the density contrast divided by the
	// number of grid cells.
	P float64
	// Modes is the number of Fourier modes averaged.
	Modes int
}

// PowerSpectrum measures the matter power spectrum of a particle
// distribution in a periodic box: CIC density assignment on an ng^3 grid,
// FFT, and shell-averaging of |delta_k|^2. This is the "traditional
// two-point statistic" the paper contrasts the tessellation analysis with
// (Sec. II-A), and a convergence diagnostic for the N-body substrate.
//
// The CIC assignment window is deconvolved (divided out) so that measured
// large-scale power is unbiased.
func PowerSpectrum(pos []geom.Vec3, ng int, boxSize float64, bins int) ([]PkBin, error) {
	if !fft.IsPow2(ng) {
		return nil, fmt.Errorf("cosmo: ng = %d is not a power of two", ng)
	}
	if boxSize <= 0 || bins <= 0 {
		return nil, fmt.Errorf("cosmo: invalid box %g or bins %d", boxSize, bins)
	}
	if len(pos) == 0 {
		return nil, fmt.Errorf("cosmo: no particles")
	}

	// CIC density contrast.
	grid := fft.NewGrid3(ng)
	h := boxSize / float64(ng)
	for _, p := range pos {
		xi0, xi1, wx0, wx1 := cicW(p.X, h, ng)
		yi0, yi1, wy0, wy1 := cicW(p.Y, h, ng)
		zi0, zi1, wz0, wz1 := cicW(p.Z, h, ng)
		for _, zc := range [2]struct {
			i int
			w float64
		}{{zi0, wz0}, {zi1, wz1}} {
			for _, yc := range [2]struct {
				i int
				w float64
			}{{yi0, wy0}, {yi1, wy1}} {
				base := (zc.i*ng + yc.i) * ng
				w := zc.w * yc.w
				grid.Data[base+xi0] += complex(w*wx0, 0)
				grid.Data[base+xi1] += complex(w*wx1, 0)
			}
		}
	}
	mean := float64(len(pos)) / float64(ng*ng*ng)
	for i := range grid.Data {
		grid.Data[i] = grid.Data[i]/complex(mean, 0) - 1
	}
	fft.Forward3(grid)

	// Shell average with CIC window deconvolution.
	k0 := 2 * math.Pi / boxSize
	kNyq := math.Pi * float64(ng) / boxSize
	sumP := make([]float64, bins)
	sumK := make([]float64, bins)
	count := make([]int, bins)
	n3 := float64(ng * ng * ng)
	for z := 0; z < ng; z++ {
		kz := float64(fft.FreqIndex(z, ng)) * k0
		for y := 0; y < ng; y++ {
			ky := float64(fft.FreqIndex(y, ng)) * k0
			for x := 0; x < ng; x++ {
				kx := float64(fft.FreqIndex(x, ng)) * k0
				k := math.Sqrt(kx*kx + ky*ky + kz*kz)
				if k == 0 || k >= kNyq {
					continue
				}
				d := grid.At(x, y, z)
				p := (real(d)*real(d) + imag(d)*imag(d)) / (n3 * n3)
				// CIC window: W(k) = prod_j sinc^2(k_j h / 2).
				w := cicWindow(kx, h) * cicWindow(ky, h) * cicWindow(kz, h)
				if w > 1e-12 {
					p /= w * w
				}
				bi := int(k / kNyq * float64(bins))
				if bi >= bins {
					bi = bins - 1
				}
				sumP[bi] += p
				sumK[bi] += k
				count[bi]++
			}
		}
	}
	vol := boxSize * boxSize * boxSize
	out := make([]PkBin, 0, bins)
	for i := 0; i < bins; i++ {
		if count[i] == 0 {
			continue
		}
		out = append(out, PkBin{
			K:     sumK[i] / float64(count[i]),
			P:     vol * sumP[i] / float64(count[i]),
			Modes: count[i],
		})
	}
	return out, nil
}

// cicW mirrors the N-body solver's cell-centered CIC weights.
func cicW(x, h float64, n int) (i0, i1 int, w0, w1 float64) {
	u := x/h - 0.5
	i := int(math.Floor(u))
	f := u - float64(i)
	i0 = ((i % n) + n) % n
	i1 = (i0 + 1) % n
	return i0, i1, 1 - f, f
}

// cicWindow is the squared sinc of one axis of the CIC assignment window.
func cicWindow(k, h float64) float64 {
	if k == 0 {
		return 1
	}
	s := math.Sin(k*h/2) / (k * h / 2)
	return s * s
}

// ShotNoise returns the Poisson shot-noise level V/N expected for n
// unclustered particles in a box of volume V.
func ShotNoise(n int, boxSize float64) float64 {
	return boxSize * boxSize * boxSize / float64(n)
}

// Package dtfe implements the Delaunay Tessellation Field Estimator
// (Schaap & van de Weygaert), the density reconstruction that underlies the
// void finders discussed in the paper's background (ZOBOV and the Watershed
// Void Finder both start from a DTFE field). The estimate at each tracer
// point is rho_i = (D+1) m_i / V(star_i), where V(star_i) is the volume of
// the Delaunay tetrahedra incident to point i, and the field is linearly
// interpolated inside each tetrahedron.
package dtfe

import (
	"errors"
	"fmt"

	"repro/internal/delaunay"
	"repro/internal/geom"
)

// Field is a DTFE density field over a tetrahedralized point set.
type Field struct {
	Tri *delaunay.Triangulation
	// Density is the estimated density at each input point (zero for
	// points that were merged away as duplicates).
	Density []float64
}

// Estimate builds the DTFE field for the given points. masses may be nil
// for unit-mass tracers; otherwise it must have one entry per point.
func Estimate(pts []geom.Vec3, masses []float64) (*Field, error) {
	if masses != nil && len(masses) != len(pts) {
		return nil, fmt.Errorf("dtfe: %d points but %d masses", len(pts), len(masses))
	}
	tr, err := delaunay.Build(pts)
	if err != nil {
		return nil, err
	}
	stars := tr.VertexStars()
	density := make([]float64, len(pts))
	for vi, star := range stars {
		var vol float64
		for _, ti := range star {
			vol += tr.TetVolume(ti)
		}
		if vol <= 0 {
			continue
		}
		m := 1.0
		if masses != nil {
			m = masses[vi]
		}
		// (D+1) = 4 in three dimensions: each tet's volume is shared by
		// its 4 vertices.
		density[vi] = 4 * m / vol
	}
	return &Field{Tri: tr, Density: density}, nil
}

// ErrOutside is returned when a sample point lies outside the convex hull
// of the tracers.
var ErrOutside = errors.New("dtfe: point outside the triangulated region")

// DensityAt linearly interpolates the density at p within its containing
// tetrahedron.
func (f *Field) DensityAt(p geom.Vec3) (float64, error) {
	ti := f.Tri.Locate(p)
	if ti < 0 {
		return 0, ErrOutside
	}
	t := f.Tri.Tets[ti]
	a := f.Tri.Points[t.V[0]]
	b := f.Tri.Points[t.V[1]]
	c := f.Tri.Points[t.V[2]]
	d := f.Tri.Points[t.V[3]]
	// Barycentric coordinates via sub-tetrahedron volumes.
	vTot := geom.Orient3DVal(a, b, c, d)
	if vTot == 0 {
		return 0, fmt.Errorf("dtfe: degenerate containing tetrahedron")
	}
	w0 := geom.Orient3DVal(p, b, c, d) / vTot
	w1 := geom.Orient3DVal(a, p, c, d) / vTot
	w2 := geom.Orient3DVal(a, b, p, d) / vTot
	w3 := geom.Orient3DVal(a, b, c, p) / vTot
	return w0*f.Density[t.V[0]] + w1*f.Density[t.V[1]] +
		w2*f.Density[t.V[2]] + w3*f.Density[t.V[3]], nil
}

// SampleGrid evaluates the field on an n^3 grid of cell centers spanning
// box. Samples outside the convex hull are zero.
func (f *Field) SampleGrid(n int, box geom.Box) []float64 {
	out := make([]float64, n*n*n)
	size := box.Size()
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				p := geom.Vec3{
					X: box.Min.X + (float64(i)+0.5)*size.X/float64(n),
					Y: box.Min.Y + (float64(j)+0.5)*size.Y/float64(n),
					Z: box.Min.Z + (float64(k)+0.5)*size.Z/float64(n),
				}
				if d, err := f.DensityAt(p); err == nil {
					out[(k*n+j)*n+i] = d
				}
			}
		}
	}
	return out
}

// Package dtfe implements the Delaunay Tessellation Field Estimator
// (Schaap & van de Weygaert), the density reconstruction that underlies the
// void finders discussed in the paper's background (ZOBOV and the Watershed
// Void Finder both start from a DTFE field). The estimate at each tracer
// point is rho_i = (D+1) m_i / V(star_i), where V(star_i) is the volume of
// the Delaunay tetrahedra incident to point i, and the field is linearly
// interpolated inside each tetrahedron.
package dtfe

import (
	"errors"
	"fmt"

	"repro/internal/delaunay"
	"repro/internal/geom"
)

// Field is a DTFE density field over a tetrahedralized point set.
type Field struct {
	Tri *delaunay.Triangulation
	// Density is the estimated density at each input point. Points merged
	// away as duplicates carry their representative vertex's density (the
	// representative's estimate in turn includes the duplicates' mass).
	Density []float64
}

// Estimator retains the accumulator buffers of the density estimate so
// warm in situ pipelines can re-estimate every snapshot without
// reallocating. The zero value is ready to use. The Field returned by
// Estimate aliases the Estimator's buffers and is valid until the next
// Estimate on the same Estimator.
type Estimator struct {
	density []float64
	starVol []float64
	mass    []float64
}

// Estimate builds the DTFE field for the given points. masses may be nil
// for unit-mass tracers; otherwise it must have one entry per point.
func Estimate(pts []geom.Vec3, masses []float64) (*Field, error) {
	if masses != nil && len(masses) != len(pts) {
		return nil, fmt.Errorf("dtfe: %d points but %d masses", len(pts), len(masses))
	}
	tr, err := delaunay.Build(pts)
	if err != nil {
		return nil, err
	}
	var e Estimator
	return e.Estimate(tr, masses)
}

// Estimate computes the DTFE field over an existing triangulation, reusing
// the Estimator's buffers. masses may be nil for unit-mass tracers.
func (e *Estimator) Estimate(tr *delaunay.Triangulation, masses []float64) (*Field, error) {
	n := len(tr.Points)
	if masses != nil && len(masses) != n {
		return nil, fmt.Errorf("dtfe: %d points but %d masses", n, len(masses))
	}
	e.density = resize(e.density, n)
	e.starVol = resize(e.starVol, n)
	e.mass = resize(e.mass, n)

	// Star volumes in a single pass over the tets. Each vertex accumulates
	// in ascending tet order, so the floating-point sums are deterministic.
	for ti := range tr.Tets {
		v := tr.TetVolume(ti)
		for _, vi := range tr.Tets[ti].V {
			e.starVol[vi] += v
		}
	}

	// Fold the mass of merged duplicates onto their representative vertex.
	// A tracer dropped during triangulation still carries mass; losing it
	// would break mass conservation (the integral of the field must equal
	// the total tracer mass, see IntegratedMass).
	for i := 0; i < n; i++ {
		m := 1.0
		if masses != nil {
			m = masses[i]
		}
		e.mass[tr.Representative(i)] += m
	}

	for i := 0; i < n; i++ {
		if e.starVol[i] > 0 {
			// (D+1) = 4 in three dimensions: each tet's volume is shared
			// by its 4 vertices.
			e.density[i] = 4 * e.mass[i] / e.starVol[i]
		}
	}
	// Merged duplicates take their representative's density so downstream
	// consumers of Density never see phantom zeros at coincident tracers.
	for i := 0; i < n; i++ {
		if r := tr.Representative(i); r != i {
			e.density[i] = e.density[r]
		}
	}
	return &Field{Tri: tr, Density: e.density}, nil
}

func resize(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// ErrOutside is returned when a sample point lies outside the convex hull
// of the tracers.
var ErrOutside = errors.New("dtfe: point outside the triangulated region")

// ErrDegenerate is returned when the containing tetrahedron has zero
// volume, so barycentric interpolation is undefined. This is a numerical
// failure of the triangulation — callers must not conflate it with
// ErrOutside, which legitimately reads as empty space.
var ErrDegenerate = errors.New("dtfe: degenerate containing tetrahedron")

// DensityAt linearly interpolates the density at p within its containing
// tetrahedron, using exhaustive point location. For bulk sampling build a
// locator once and use SampleWith.
func (f *Field) DensityAt(p geom.Vec3) (float64, error) {
	ti := f.Tri.Locate(p)
	if ti < 0 {
		return 0, ErrOutside
	}
	return f.DensityInTet(ti, p)
}

// SampleWith interpolates the density at p, locating the containing tet
// through loc (which must be built over f.Tri).
func (f *Field) SampleWith(loc *delaunay.Locator, p geom.Vec3) (float64, error) {
	ti := loc.Locate(p)
	if ti < 0 {
		return 0, ErrOutside
	}
	return f.DensityInTet(ti, p)
}

// NewLocator builds a point locator over the field's triangulation with an
// automatically chosen seed resolution.
func (f *Field) NewLocator() *delaunay.Locator {
	return f.Tri.NewLocator(0)
}

// DensityInTet linearly interpolates the density at p inside tet ti via
// barycentric coordinates.
func (f *Field) DensityInTet(ti int, p geom.Vec3) (float64, error) {
	t := f.Tri.Tets[ti]
	a := f.Tri.Points[t.V[0]]
	b := f.Tri.Points[t.V[1]]
	c := f.Tri.Points[t.V[2]]
	d := f.Tri.Points[t.V[3]]
	// Barycentric coordinates via sub-tetrahedron volumes.
	vTot := geom.Orient3DVal(a, b, c, d)
	if vTot == 0 {
		return 0, ErrDegenerate
	}
	w0 := geom.Orient3DVal(p, b, c, d) / vTot
	w1 := geom.Orient3DVal(a, p, c, d) / vTot
	w2 := geom.Orient3DVal(a, b, p, d) / vTot
	w3 := geom.Orient3DVal(a, b, c, p) / vTot
	return w0*f.Density[t.V[0]] + w1*f.Density[t.V[1]] +
		w2*f.Density[t.V[2]] + w3*f.Density[t.V[3]], nil
}

// SampleStats counts the outcome of every sample in a grid evaluation.
// Degenerate > 0 means the triangulation produced zero-volume containing
// tets — a numerical failure, not empty space.
type SampleStats struct {
	Inside     int
	Outside    int
	Degenerate int
}

// Add accumulates o into s.
func (s *SampleStats) Add(o SampleStats) {
	s.Inside += o.Inside
	s.Outside += o.Outside
	s.Degenerate += o.Degenerate
}

// SampleGrid evaluates the field on an n^3 grid of cell centers spanning
// box. Samples outside the convex hull are zero and counted in
// stats.Outside; degenerate-tet failures are zero but counted separately
// in stats.Degenerate so a broken triangulation cannot masquerade as
// empty space.
func (f *Field) SampleGrid(n int, box geom.Box) ([]float64, SampleStats) {
	return f.SampleGridInto(nil, n, box)
}

// SampleGridInto is SampleGrid reusing dst when it has capacity.
func (f *Field) SampleGridInto(dst []float64, n int, box geom.Box) ([]float64, SampleStats) {
	out := resize(dst, n*n*n)
	loc := f.NewLocator()
	var st SampleStats
	size := box.Size()
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				p := geom.Vec3{
					X: box.Min.X + (float64(i)+0.5)*size.X/float64(n),
					Y: box.Min.Y + (float64(j)+0.5)*size.Y/float64(n),
					Z: box.Min.Z + (float64(k)+0.5)*size.Z/float64(n),
				}
				d, err := f.SampleWith(loc, p)
				switch {
				case err == nil:
					out[(k*n+j)*n+i] = d
					st.Inside++
				case errors.Is(err, ErrOutside):
					st.Outside++
				default:
					st.Degenerate++
				}
			}
		}
	}
	return out, st
}

// IntegratedMass integrates the interpolated field over the triangulated
// hull. The field is linear on each tet, so the integral is exactly
// sum_t V_t * mean(corner densities), which telescopes to
// sum_i rho_i V(star_i)/4 = sum_i m_i: the estimator conserves mass, and
// the conservation tests pin this identity against the tracer masses.
func (f *Field) IntegratedMass() float64 {
	var total float64
	for ti, t := range f.Tri.Tets {
		v := f.Tri.TetVolume(ti)
		s := f.Density[t.V[0]] + f.Density[t.V[1]] + f.Density[t.V[2]] + f.Density[t.V[3]]
		total += v * s / 4
	}
	return total
}

package dtfe

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestEstimateErrors(t *testing.T) {
	pts := []geom.Vec3{{}, {X: 1}, {Y: 1}, {Z: 1}}
	if _, err := Estimate(pts, []float64{1, 2}); err == nil {
		t.Error("mass length mismatch accepted")
	}
	if _, err := Estimate(pts[:2], nil); err == nil {
		t.Error("degenerate input accepted")
	}
}

func TestUniformFieldIsRoughlyFlat(t *testing.T) {
	// A perturbed lattice has near-uniform DTFE density away from the hull
	// boundary (boundary vertices have truncated stars and read high).
	rng := rand.New(rand.NewSource(91))
	var pts []geom.Vec3
	const n = 7
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				pts = append(pts, geom.V(
					float64(x)+0.2*rng.Float64(),
					float64(y)+0.2*rng.Float64(),
					float64(z)+0.2*rng.Float64()))
			}
		}
	}
	f, err := Estimate(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Interior vertices: index with all coords in [2, n-3].
	var interior []float64
	for z := 2; z < n-2; z++ {
		for y := 2; y < n-2; y++ {
			for x := 2; x < n-2; x++ {
				interior = append(interior, f.Density[(z*n+y)*n+x])
			}
		}
	}
	var sum float64
	for _, d := range interior {
		sum += d
	}
	mean := sum / float64(len(interior))
	// Unit lattice spacing: expect density near 1 tracer per unit volume.
	if mean < 0.5 || mean > 2 {
		t.Errorf("interior mean density = %v, want ~1", mean)
	}
	for _, d := range interior {
		if d < mean/5 || d > mean*5 {
			t.Errorf("interior density %v far from mean %v", d, mean)
		}
	}
}

func TestClusterReadsDenser(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	var pts []geom.Vec3
	// Sparse background.
	for i := 0; i < 200; i++ {
		pts = append(pts, geom.V(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10))
	}
	// Tight cluster near the center.
	clusterStart := len(pts)
	for i := 0; i < 100; i++ {
		pts = append(pts, geom.V(
			5+rng.NormFloat64()*0.3, 5+rng.NormFloat64()*0.3, 5+rng.NormFloat64()*0.3))
	}
	f, err := Estimate(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	var bg, cl float64
	var nbg, ncl int
	for i, d := range f.Density {
		if d == 0 {
			continue
		}
		if i >= clusterStart {
			cl += d
			ncl++
		} else {
			bg += d
			nbg++
		}
	}
	if cl/float64(ncl) < 5*bg/float64(nbg) {
		t.Errorf("cluster density %v not well above background %v",
			cl/float64(ncl), bg/float64(nbg))
	}
}

func TestDensityAtVertexApproximation(t *testing.T) {
	// Sampling right next to a vertex reads close to that vertex's value.
	rng := rand.New(rand.NewSource(93))
	pts := make([]geom.Vec3, 100)
	for i := range pts {
		pts[i] = geom.V(rng.Float64()*5, rng.Float64()*5, rng.Float64()*5)
	}
	f, err := Estimate(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for vi := 0; vi < len(pts) && checked < 20; vi++ {
		if f.Density[vi] == 0 {
			continue
		}
		d, err := f.DensityAt(pts[vi])
		if err != nil {
			continue
		}
		// Exactly at the vertex, barycentric interpolation yields the
		// vertex value.
		if math.Abs(d-f.Density[vi]) > 1e-6*f.Density[vi] {
			t.Errorf("vertex %d: interpolated %v, stored %v", vi, d, f.Density[vi])
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no vertices checked")
	}
}

func TestDensityAtOutside(t *testing.T) {
	pts := []geom.Vec3{{}, {X: 1}, {Y: 1}, {Z: 1}}
	f, err := Estimate(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.DensityAt(geom.V(100, 100, 100)); err != ErrOutside {
		t.Errorf("outside sample: %v", err)
	}
}

func TestMassWeighting(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	pts := make([]geom.Vec3, 80)
	for i := range pts {
		pts[i] = geom.V(rng.Float64()*4, rng.Float64()*4, rng.Float64()*4)
	}
	unit, err := Estimate(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	masses := make([]float64, len(pts))
	for i := range masses {
		masses[i] = 3
	}
	weighted, err := Estimate(pts, masses)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if math.Abs(weighted.Density[i]-3*unit.Density[i]) > 1e-9*(1+unit.Density[i]) {
			t.Fatalf("vertex %d: mass scaling broken", i)
		}
	}
}

func TestSampleGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	pts := make([]geom.Vec3, 200)
	for i := range pts {
		pts[i] = geom.V(rng.Float64()*4, rng.Float64()*4, rng.Float64()*4)
	}
	f, err := Estimate(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	grid, sst := f.SampleGrid(8, geom.NewBox(geom.V(0, 0, 0), geom.V(4, 4, 4)))
	if len(grid) != 512 {
		t.Fatalf("grid size %d", len(grid))
	}
	if sst.Degenerate != 0 {
		t.Fatalf("%d degenerate samples on a healthy triangulation", sst.Degenerate)
	}
	if sst.Inside+sst.Outside != len(grid) {
		t.Fatalf("stats don't add up: %+v", sst)
	}
	nonzero := 0
	for _, d := range grid {
		if d < 0 {
			t.Fatal("negative density")
		}
		if d > 0 {
			nonzero++
		}
	}
	if nonzero < len(grid)/2 {
		t.Errorf("only %d of %d samples inside hull", nonzero, len(grid))
	}
}

package dtfe

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/delaunay"
	"repro/internal/geom"
)

func cloud(seed int64, n int, scale float64) []geom.Vec3 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.V(rng.Float64()*scale, rng.Float64()*scale, rng.Float64()*scale)
	}
	return pts
}

// Regression: tracers merged away as duplicates used to keep density zero
// (and their mass vanished from the estimate). They must read their
// representative's density, and the representative must carry the combined
// mass.
func TestDuplicateTracersKeepDensityAndMass(t *testing.T) {
	base := cloud(21, 60, 4)
	pts := append(append([]geom.Vec3(nil), base...), base[5], base[12], base[12])
	f, err := Estimate(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, dup := range []int{60, 61, 62} {
		if f.Density[dup] == 0 {
			t.Errorf("duplicate tracer %d has zero density", dup)
		}
	}
	if f.Density[60] != f.Density[5] {
		t.Errorf("duplicate density %v != representative %v", f.Density[60], f.Density[5])
	}
	if f.Density[61] != f.Density[12] || f.Density[62] != f.Density[12] {
		t.Error("triple-merged tracers disagree with representative")
	}

	// The representative's estimate must include the duplicate's mass:
	// compare against the deduplicated cloud with explicit summed masses.
	masses := make([]float64, len(base))
	for i := range masses {
		masses[i] = 1
	}
	masses[5] = 2  // one duplicate folded in
	masses[12] = 3 // two duplicates folded in
	ref, err := Estimate(base, masses)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if math.Abs(f.Density[i]-ref.Density[i]) > 1e-12*(1+ref.Density[i]) {
			t.Fatalf("vertex %d: density %v with duplicates, %v with explicit masses",
				i, f.Density[i], ref.Density[i])
		}
	}
}

// Regression: the integral of the interpolated field over the hull must
// equal the total tracer mass — including mass carried by merged
// duplicates, and for both the unit-mass and explicit-mass paths.
func TestMassConservation(t *testing.T) {
	pts := cloud(33, 150, 5)
	pts = append(pts, pts[0], pts[70], pts[149]) // duplicates carry mass too

	t.Run("unit", func(t *testing.T) {
		f, err := Estimate(pts, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(len(pts))
		got := f.IntegratedMass()
		if math.Abs(got-want) > 1e-9*want {
			t.Fatalf("integrated mass %v, want %v (unit tracers)", got, want)
		}
	})

	t.Run("weighted", func(t *testing.T) {
		rng := rand.New(rand.NewSource(34))
		masses := make([]float64, len(pts))
		var want float64
		for i := range masses {
			masses[i] = 0.5 + rng.Float64()
			want += masses[i]
		}
		f, err := Estimate(pts, masses)
		if err != nil {
			t.Fatal(err)
		}
		got := f.IntegratedMass()
		if math.Abs(got-want) > 1e-9*want {
			t.Fatalf("integrated mass %v, want %v (weighted tracers)", got, want)
		}
	})
}

// Regression: SampleGrid used to swallow every interpolation error, so a
// degenerate (zero-volume) containing tet was indistinguishable from empty
// space. Degenerate failures must surface in the sample stats and
// DensityAt must return the ErrDegenerate sentinel.
func TestDegenerateTetSurfacesInStats(t *testing.T) {
	// A hand-built "triangulation" whose only tet is four coplanar points:
	// zero volume, so barycentric interpolation is undefined everywhere.
	tr := &delaunay.Triangulation{
		Points: []geom.Vec3{geom.V(0, 0, 0), geom.V(3, 0, 0), geom.V(0, 3, 0), geom.V(3, 3, 0)},
		Tets:   []delaunay.Tet{{V: [4]int{0, 1, 2, 3}, Nb: [4]int{-1, -1, -1, -1}}},
	}
	f := &Field{Tri: tr, Density: []float64{1, 1, 1, 1}}

	if _, err := f.DensityAt(geom.V(1, 1, 0)); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("DensityAt on a flat tet: err = %v, want ErrDegenerate", err)
	}
	if _, err := f.DensityAt(geom.V(1, 1, 0)); errors.Is(err, ErrOutside) {
		t.Fatal("degenerate failure misreported as outside-hull")
	}

	// n=3 over z in [-1,1]: the middle plane of cell centers lies exactly
	// in the flat tet's plane, so those samples hit the degenerate tet.
	_, st := f.SampleGrid(3, geom.NewBox(geom.V(0, 0, -1), geom.V(3, 3, 1)))
	if st.Degenerate == 0 {
		t.Fatal("degenerate containing tets not counted by SampleGrid")
	}
	if st.Inside != 0 {
		t.Fatalf("%d samples claim success on a zero-volume triangulation", st.Inside)
	}
}

// The estimator must produce identical bytes whether run through a fresh
// Estimate or a warm Estimator reused across snapshots.
func TestEstimatorReuseMatchesFresh(t *testing.T) {
	var est Estimator
	var scratch delaunay.Builder
	for round := 0; round < 3; round++ {
		pts := cloud(int64(40+round), 100+20*round, 4)
		tr, err := scratch.Build(pts)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := est.Estimate(tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := Estimate(pts, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(warm.Density) != len(cold.Density) {
			t.Fatal("length mismatch")
		}
		for i := range warm.Density {
			if warm.Density[i] != cold.Density[i] {
				t.Fatalf("round %d vertex %d: warm %v != cold %v",
					round, i, warm.Density[i], cold.Density[i])
			}
		}
	}
}

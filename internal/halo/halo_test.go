package halo

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cosmo"
	"repro/internal/geom"
)

func TestFindValidation(t *testing.T) {
	pos := []geom.Vec3{{X: 1, Y: 1, Z: 1}}
	if _, err := Find(pos, Config{BoxSize: 0, LinkingLength: 1}); err == nil {
		t.Error("zero box accepted")
	}
	if _, err := Find(pos, Config{BoxSize: 10, LinkingLength: 0}); err == nil {
		t.Error("zero linking length accepted")
	}
	if _, err := Find(pos, Config{BoxSize: 10, LinkingLength: 6}); err == nil {
		t.Error("oversized linking length accepted")
	}
}

func cluster(rng *rand.Rand, center geom.Vec3, n int, sigma float64, L float64) []geom.Vec3 {
	out := make([]geom.Vec3, n)
	for i := range out {
		out[i] = cosmo.Wrap(center.Add(geom.V(
			rng.NormFloat64()*sigma, rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)), L)
	}
	return out
}

func TestTwoSeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	const L = 20.0
	pos := append(
		cluster(rng, geom.V(5, 5, 5), 50, 0.1, L),
		cluster(rng, geom.V(15, 15, 15), 30, 0.1, L)...)
	halos, err := Find(pos, Config{BoxSize: L, LinkingLength: 0.5, MinMembers: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(halos) != 2 {
		t.Fatalf("found %d halos, want 2", len(halos))
	}
	if halos[0].Mass() != 50 || halos[1].Mass() != 30 {
		t.Errorf("masses %d, %d; want 50, 30", halos[0].Mass(), halos[1].Mass())
	}
	if halos[0].Center.Dist(geom.V(5, 5, 5)) > 0.2 {
		t.Errorf("halo 0 center %v, want ~(5,5,5)", halos[0].Center)
	}
	if halos[1].Center.Dist(geom.V(15, 15, 15)) > 0.2 {
		t.Errorf("halo 1 center %v", halos[1].Center)
	}
	if halos[0].Radius <= 0 || halos[0].Radius > 1 {
		t.Errorf("halo 0 radius %v", halos[0].Radius)
	}
}

func TestMinMembersFiltersFieldParticles(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	const L = 20.0
	pos := cluster(rng, geom.V(10, 10, 10), 40, 0.1, L)
	// Sprinkle isolated field particles.
	for i := 0; i < 30; i++ {
		pos = append(pos, geom.V(rng.Float64()*L, rng.Float64()*L, rng.Float64()*L))
	}
	halos, err := Find(pos, Config{BoxSize: L, LinkingLength: 0.4, MinMembers: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(halos) != 1 {
		t.Fatalf("found %d halos, want 1 (field particles must not form halos)", len(halos))
	}
	if halos[0].Mass() < 40 {
		t.Errorf("halo lost members: %d", halos[0].Mass())
	}
}

func TestPeriodicHaloAcrossBoundary(t *testing.T) {
	// A cluster straddling the box corner must be found as one halo with
	// its center near the corner.
	rng := rand.New(rand.NewSource(105))
	const L = 10.0
	pos := cluster(rng, geom.V(0.05, 0.05, 0.05), 60, 0.2, L)
	halos, err := Find(pos, Config{BoxSize: L, LinkingLength: 0.8, MinMembers: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(halos) != 1 {
		t.Fatalf("found %d halos, want 1", len(halos))
	}
	if halos[0].Mass() != 60 {
		t.Errorf("halo mass %d, want 60", halos[0].Mass())
	}
	// Center is near the corner modulo the box.
	d := cosmo.MinImage(halos[0].Center, geom.V(0.05, 0.05, 0.05), L).Norm()
	if d > 0.3 {
		t.Errorf("center %v is %v away from the true corner cluster", halos[0].Center, d)
	}
}

func TestUniformLatticeNoHalos(t *testing.T) {
	const n = 8
	const L = 8.0
	pts := cosmo.LatticePositions(n, L)
	halos, err := Find(pts, Config{BoxSize: L, LinkingLength: 0.5, MinMembers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(halos) != 0 {
		t.Errorf("lattice with b < spacing formed %d halos", len(halos))
	}
	// With b >= spacing the whole lattice links into one group.
	halos, err = Find(pts, Config{BoxSize: L, LinkingLength: 1.01, MinMembers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(halos) != 1 || halos[0].Mass() != n*n*n {
		t.Errorf("percolating lattice: %d halos", len(halos))
	}
}

func TestLinkingChain(t *testing.T) {
	// FOF is transitive: a chain of particles each within b of the next is
	// one group even though the ends are far apart.
	var pos []geom.Vec3
	for i := 0; i < 20; i++ {
		pos = append(pos, geom.V(1+float64(i)*0.4, 5, 5))
	}
	halos, err := Find(pos, Config{BoxSize: 20, LinkingLength: 0.45, MinMembers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(halos) != 1 || halos[0].Mass() != 20 {
		t.Fatalf("chain not linked: %v", halos)
	}
	// Shorter linking length breaks the chain into singletons.
	halos, err = Find(pos, Config{BoxSize: 20, LinkingLength: 0.35, MinMembers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(halos) != 0 {
		t.Fatalf("broken chain still formed halos: %v", halos)
	}
}

func TestDeterministicAcrossOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	const L = 15.0
	pos := append(
		cluster(rng, geom.V(3, 3, 3), 25, 0.2, L),
		cluster(rng, geom.V(10, 10, 10), 35, 0.2, L)...)
	a, err := Find(pos, Config{BoxSize: L, LinkingLength: 0.7, MinMembers: 5})
	if err != nil {
		t.Fatal(err)
	}
	rev := make([]geom.Vec3, len(pos))
	for i := range pos {
		rev[len(pos)-1-i] = pos[i]
	}
	b, err := Find(rev, Config{BoxSize: L, LinkingLength: 0.7, MinMembers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("halo count depends on input order: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Mass() != b[i].Mass() {
			t.Errorf("halo %d mass differs across orders", i)
		}
		if math.Abs(a[i].Radius-b[i].Radius) > 1e-9 {
			t.Errorf("halo %d radius differs across orders", i)
		}
	}
}

func TestMassFunction(t *testing.T) {
	halos := []Halo{
		{Members: make([]int, 100)},
		{Members: make([]int, 50)},
		{Members: make([]int, 20)},
	}
	got := MassFunction(halos, []int{10, 30, 60, 200})
	want := []int{3, 2, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("N(>%d) = %d, want %d", []int{10, 30, 60, 200}[i], got[i], want[i])
		}
	}
}

func TestSORadius(t *testing.T) {
	// A dense Gaussian clump in a sparse background: the SO radius at
	// overdensity 200 encloses most of the clump and far exceeds zero.
	rng := rand.New(rand.NewSource(133))
	const L = 20.0
	pos := cluster(rng, geom.V(10, 10, 10), 200, 0.3, L)
	for i := 0; i < 200; i++ {
		pos = append(pos, geom.V(rng.Float64()*L, rng.Float64()*L, rng.Float64()*L))
	}
	halos, err := Find(pos, Config{BoxSize: L, LinkingLength: 0.5, MinMembers: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(halos) == 0 {
		t.Fatal("no halo found")
	}
	r := SORadius(pos, &halos[0], L, 200)
	if r <= 0 {
		t.Fatal("SO radius is zero for a dense clump")
	}
	if r > 5 {
		t.Errorf("SO radius %v implausibly large", r)
	}
	// Enclosed density at r is at least the target.
	n := 0
	for _, p := range pos {
		if cosmo.MinImage(halos[0].Center, p, L).Norm() <= r {
			n++
		}
	}
	mean := float64(len(pos)) / (L * L * L)
	enclosed := float64(n) / (4 * math.Pi / 3 * r * r * r)
	if enclosed < 200*mean*0.9 {
		t.Errorf("enclosed density %v below 200x mean %v", enclosed, 200*mean)
	}
	// Higher overdensity -> smaller radius.
	r500 := SORadius(pos, &halos[0], L, 500)
	if r500 > r {
		t.Errorf("R500 %v > R200 %v", r500, r)
	}
}

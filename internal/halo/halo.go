// Package halo implements a friends-of-friends (FOF) halo finder, one of
// the level-1 analysis tools of the paper's in situ cosmology framework
// (Fig. 4 lists halo finders alongside the Voronoi tessellation; Woodring
// et al. 2010 describe the ParaView halo-finding pipeline the framework
// wraps). Two particles are friends when they lie within the linking
// length b of each other (minimum-image distance in the periodic box);
// halos are the transitive closures with at least MinMembers particles.
package halo

import (
	"fmt"
	"maps"
	"math"
	"slices"
	"sort"

	"repro/internal/cosmo"
	"repro/internal/geom"
)

// Config controls the finder.
type Config struct {
	// BoxSize is the periodic box side.
	BoxSize float64
	// LinkingLength is the FOF linking length b, in absolute units (the
	// cosmology convention of b = 0.2 x mean interparticle spacing is the
	// usual choice).
	LinkingLength float64
	// MinMembers is the minimum particle count for a group to be reported
	// as a halo (smaller groups are field particles). Defaults to 10.
	MinMembers int
}

// Halo is one friends-of-friends group.
type Halo struct {
	// Members are the indices of the particles in the group.
	Members []int
	// Center is the periodic-aware center of mass.
	Center geom.Vec3
	// Radius is the RMS member distance from the center (minimum image).
	Radius float64
}

// Mass returns the halo mass in particle counts (unit masses).
func (h *Halo) Mass() int { return len(h.Members) }

// Find runs FOF over the particle positions and returns halos sorted by
// decreasing mass.
func Find(pos []geom.Vec3, cfg Config) ([]Halo, error) {
	if cfg.BoxSize <= 0 {
		return nil, fmt.Errorf("halo: non-positive box size %g", cfg.BoxSize)
	}
	if cfg.LinkingLength <= 0 {
		return nil, fmt.Errorf("halo: non-positive linking length %g", cfg.LinkingLength)
	}
	if cfg.LinkingLength*2 > cfg.BoxSize {
		return nil, fmt.Errorf("halo: linking length %g too large for box %g", cfg.LinkingLength, cfg.BoxSize)
	}
	minMembers := cfg.MinMembers
	if minMembers <= 0 {
		minMembers = 10
	}

	// Grid buckets with cell size >= b: friends are always in the same or
	// an adjacent (periodic) cell.
	n := int(cfg.BoxSize / cfg.LinkingLength)
	if n < 1 {
		n = 1
	}
	if n > 256 {
		n = 256
	}
	cell := cfg.BoxSize / float64(n)
	bucketOf := func(p geom.Vec3) (int, int, int) {
		f := func(x float64) int {
			i := int(x / cell)
			if i >= n {
				i = n - 1
			}
			if i < 0 {
				i = 0
			}
			return i
		}
		return f(p.X), f(p.Y), f(p.Z)
	}
	buckets := make([][]int32, n*n*n)
	for i, p := range pos {
		bx, by, bz := bucketOf(p)
		bi := (bz*n+by)*n + bx
		buckets[bi] = append(buckets[bi], int32(i))
	}

	parent := make([]int32, len(pos))
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	b2 := cfg.LinkingLength * cfg.LinkingLength
	for bz := 0; bz < n; bz++ {
		for by := 0; by < n; by++ {
			for bx := 0; bx < n; bx++ {
				home := buckets[(bz*n+by)*n+bx]
				if len(home) == 0 {
					continue
				}
				// Pairs within the home bucket.
				for i := 0; i < len(home); i++ {
					for j := i + 1; j < len(home); j++ {
						if cosmo.MinImage(pos[home[i]], pos[home[j]], cfg.BoxSize).Norm2() <= b2 {
							union(home[i], home[j])
						}
					}
				}
				// Pairs against half the neighbor cells (the other half is
				// covered from the neighbor's side).
				for _, d := range halfNeighborhood {
					nx := ((bx+d[0])%n + n) % n
					ny := ((by+d[1])%n + n) % n
					nz := ((bz+d[2])%n + n) % n
					other := buckets[(nz*n+ny)*n+nx]
					for _, a := range home {
						for _, c := range other {
							if cosmo.MinImage(pos[a], pos[c], cfg.BoxSize).Norm2() <= b2 {
								union(a, c)
							}
						}
					}
				}
			}
		}
	}

	groups := map[int32][]int{}
	for i := range pos {
		r := find(int32(i))
		groups[r] = append(groups[r], i)
	}
	var halos []Halo
	for _, r := range slices.Sorted(maps.Keys(groups)) {
		members := groups[r]
		if len(members) < minMembers {
			continue
		}
		halos = append(halos, summarize(pos, members, cfg.BoxSize))
	}
	sort.Slice(halos, func(i, j int) bool {
		if len(halos[i].Members) != len(halos[j].Members) {
			return len(halos[i].Members) > len(halos[j].Members)
		}
		return halos[i].Members[0] < halos[j].Members[0]
	})
	return halos, nil
}

// halfNeighborhood is the 13 of the 26 neighbor offsets that, together
// with each cell's own pairs, cover every adjacent-cell pair exactly once.
var halfNeighborhood = [13][3]int{
	{1, 0, 0}, {0, 1, 0}, {0, 0, 1},
	{1, 1, 0}, {1, -1, 0}, {1, 0, 1}, {1, 0, -1},
	{0, 1, 1}, {0, 1, -1},
	{1, 1, 1}, {1, 1, -1}, {1, -1, 1}, {1, -1, -1},
}

// summarize computes the periodic-aware center and radius of a group:
// member positions are unwrapped relative to the first member before
// averaging, then the center is wrapped back into the box.
func summarize(pos []geom.Vec3, members []int, L float64) Halo {
	sort.Ints(members)
	ref := pos[members[0]]
	var sum geom.Vec3
	for _, mi := range members {
		sum = sum.Add(ref.Add(cosmo.MinImage(ref, pos[mi], L)))
	}
	center := sum.Scale(1 / float64(len(members)))
	var r2 float64
	for _, mi := range members {
		r2 += cosmo.MinImage(center, pos[mi], L).Norm2()
	}
	return Halo{
		Members: members,
		Center:  cosmo.Wrap(center, L),
		Radius:  math.Sqrt(r2 / float64(len(members))),
	}
}

// MassFunction bins halo masses into a cumulative count N(>M), the
// standard summary statistic for halo populations.
func MassFunction(halos []Halo, massBins []int) []int {
	out := make([]int, len(massBins))
	for i, m := range massBins {
		for _, h := range halos {
			if h.Mass() >= m {
				out[i]++
			}
		}
	}
	return out
}

// SORadius returns the spherical-overdensity radius of a halo: the radius
// around the FOF center enclosing a mean density of `overdensity` times the
// box's mean particle density (the conventional R200 uses overdensity 200).
// It returns 0 when even the innermost particle exceeds the target density
// shell, which does not occur for genuine halos.
func SORadius(pos []geom.Vec3, h *Halo, boxSize, overdensity float64) float64 {
	meanDensity := float64(len(pos)) / (boxSize * boxSize * boxSize)
	target := overdensity * meanDensity

	// Distances of all particles (not just FOF members: SO masses include
	// the diffuse envelope) from the halo center, minimum image.
	dists := make([]float64, 0, len(pos))
	// Limit to a generous search radius to avoid sorting the whole box.
	maxR := boxSize / 4
	for _, p := range pos {
		d := cosmo.MinImage(h.Center, p, boxSize).Norm()
		if d <= maxR {
			dists = append(dists, d)
		}
	}
	sort.Float64s(dists)

	// Walk outward: enclosed density n(<r) / (4/3 pi r^3) falls below the
	// target at the SO radius.
	best := 0.0
	for i, r := range dists {
		if r == 0 {
			continue
		}
		enclosed := float64(i+1) / (4 * math.Pi / 3 * r * r * r)
		if enclosed >= target {
			best = r
		}
	}
	return best
}

package meshio

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestAugmentParticles(t *testing.T) {
	cells := buildTestCells(t, 3, 3, 114)
	ext := geom.NewBox(geom.V(0, 0, 0), geom.V(3, 3, 3))
	m := BuildBlockMesh(cells, ext, 0)
	ps := AugmentParticles(m)
	if len(ps) != m.NumCells() {
		t.Fatalf("augmented %d of %d particles", len(ps), m.NumCells())
	}
	for i, p := range ps {
		if p.ID != m.ParticleIDs[i] || p.Pos != m.Particles[i] {
			t.Fatalf("particle %d identity mismatch", i)
		}
		if math.Abs(p.Density*p.Volume-1) > 1e-12 {
			t.Fatalf("particle %d: density %v not inverse of volume %v", i, p.Density, p.Volume)
		}
	}
	// Densities sum-weighted by volumes give the box volume back.
	var vol float64
	for _, p := range ps {
		vol += p.Volume
	}
	if math.Abs(vol-27) > 1e-6*27 {
		t.Errorf("volumes sum to %v, want 27", vol)
	}
}

func TestAugmentedRoundTrip(t *testing.T) {
	ps := []AugmentedParticle{
		{ID: 7, Pos: geom.V(1, 2, 3), Volume: 0.5, Density: 2},
		{ID: -1, Pos: geom.V(-4, 0, 9.25), Volume: 2, Density: 0.5},
	}
	data, err := EncodeAugmented(ps)
	if err != nil {
		t.Fatal(err)
	}
	// 16-byte header + 56 bytes per particle.
	if len(data) != 16+56*2 {
		t.Errorf("encoded %d bytes, want %d", len(data), 16+56*2)
	}
	got, err := DecodeAugmented(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d particles", len(got))
	}
	for i := range ps {
		if got[i] != ps[i] {
			t.Errorf("particle %d: %+v != %+v", i, got[i], ps[i])
		}
	}
}

func TestAugmentedRejectsCorruption(t *testing.T) {
	data, err := EncodeAugmented([]AugmentedParticle{{ID: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeAugmented(data[:20]); err == nil {
		t.Error("truncated data accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if _, err := DecodeAugmented(bad); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := DecodeAugmented(append(data, 1, 2, 3)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestAugmentedEmpty(t *testing.T) {
	data, err := EncodeAugmented(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAugmented(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("decoded %d particles from empty set", len(got))
	}
}

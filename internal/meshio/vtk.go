package meshio

import (
	"bufio"
	"fmt"
	"io"
)

// WriteVTK exports block meshes as a legacy-VTK polydata file (ASCII) with
// one polygon per cell face and per-polygon scalars for cell volume and
// block rank — loadable by ParaView and similar tools, standing in for the
// paper's cosmology-tools plugin rendering path.
func WriteVTK(w io.Writer, meshes []*BlockMesh) error {
	bw := bufio.NewWriter(w)

	totalVerts := 0
	totalPolys := 0
	totalIdx := 0
	for _, m := range meshes {
		totalVerts += len(m.Verts)
		for _, c := range m.Cells {
			totalPolys += len(c.Faces)
			for _, f := range c.Faces {
				totalIdx += len(f.Verts)
			}
		}
	}

	fmt.Fprintln(bw, "# vtk DataFile Version 3.0")
	fmt.Fprintln(bw, "tess Voronoi tessellation")
	fmt.Fprintln(bw, "ASCII")
	fmt.Fprintln(bw, "DATASET POLYDATA")
	fmt.Fprintf(bw, "POINTS %d double\n", totalVerts)
	for _, m := range meshes {
		for _, v := range m.Verts {
			fmt.Fprintf(bw, "%g %g %g\n", v.X, v.Y, v.Z)
		}
	}
	fmt.Fprintf(bw, "POLYGONS %d %d\n", totalPolys, totalPolys+totalIdx)
	base := 0
	for _, m := range meshes {
		for _, c := range m.Cells {
			for _, f := range c.Faces {
				fmt.Fprintf(bw, "%d", len(f.Verts))
				for _, vi := range f.Verts {
					fmt.Fprintf(bw, " %d", base+int(vi))
				}
				fmt.Fprintln(bw)
			}
		}
		base += len(m.Verts)
	}

	fmt.Fprintf(bw, "CELL_DATA %d\n", totalPolys)
	fmt.Fprintln(bw, "SCALARS cell_volume double 1")
	fmt.Fprintln(bw, "LOOKUP_TABLE default")
	for _, m := range meshes {
		for ci, c := range m.Cells {
			for range c.Faces {
				fmt.Fprintf(bw, "%g\n", m.Volumes[ci])
			}
		}
	}
	fmt.Fprintln(bw, "SCALARS block int 1")
	fmt.Fprintln(bw, "LOOKUP_TABLE default")
	for bi, m := range meshes {
		for _, c := range m.Cells {
			for range c.Faces {
				fmt.Fprintf(bw, "%d\n", bi)
			}
		}
	}
	return bw.Flush()
}
